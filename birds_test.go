package birds_test

import (
	"strings"
	"testing"

	"birds"
)

const unionSrc = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func fastOpts() birds.Options {
	return birds.Options{Oracle: birds.OracleConfig{
		MaxTuples: 3, RandomTrials: 600, ExhaustiveBudget: 20000, GuideBudget: 20000, Seed: 1,
	}}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	s, err := birds.Load(unionSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Class().LVGN() {
		t.Error("union strategy should be LVGN")
	}
	res, err := s.ValidateWith(nil, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("should validate: %v", res.Failure)
	}
	dput, err := s.Incrementalize()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dput.String(), "+v(") {
		t.Errorf("∂put should reference the view delta:\n%s", dput)
	}
	sql, err := s.CompileSQL(res.Get)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "CREATE OR REPLACE VIEW v") || !strings.Contains(sql, "CREATE TRIGGER") {
		t.Error("compiled SQL incomplete")
	}
	if _, err := s.CompileSQL(nil); err == nil {
		t.Error("CompileSQL without get must fail")
	}
}

func TestPublicAPIEngine(t *testing.T) {
	db := birds.NewDB()
	prog, err := birds.Parse("source r1(a:int).\nsource r2(a:int).\nview v(a:int).")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range prog.Sources {
		if err := db.CreateTable(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.LoadTable("r1", []birds.Tuple{{birds.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	oracle := fastOpts().Oracle
	if _, err := db.CreateView(unionSrc, birds.ViewOptions{Incremental: true, Oracle: &oracle}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(birds.Insert("v", birds.Int(3))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(birds.Delete("v", birds.Eq("a", birds.Int(1)))); err != nil {
		t.Fatal(err)
	}
	r1, err := db.Rel("r1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Len() != 1 || !r1.Contains(birds.Tuple{birds.Int(3)}) {
		t.Errorf("r1 = %v, want {3}", r1)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := birds.ParseRules("v(X) :- r1(X).\nv(X) :- r2(X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %d", len(rules))
	}
	if _, err := birds.ParseRules("not a rule"); err == nil {
		t.Error("garbage must fail")
	}
	empty, err := birds.ParseRules("  \n ")
	if err != nil || empty != nil {
		t.Error("blank input should yield no rules")
	}
}

func TestLoadRejectsBadPrograms(t *testing.T) {
	if _, err := birds.Load("syntax error("); err == nil {
		t.Error("syntax error must fail")
	}
	if _, err := birds.Load("source r(a:int).\n+r(X) :- r(X)."); err == nil {
		t.Error("missing view must fail")
	}
}

func TestCompileIncrementalSQL(t *testing.T) {
	s, err := birds.Load(unionSrc)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := s.CompileIncrementalSQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "v_update_strategy_inc") || !strings.Contains(sql, "__ins_v") {
		t.Errorf("incremental SQL incomplete:\n%s", sql)
	}
	// A non-linear-view strategy cannot be incrementalized this way.
	join, err := birds.Load(`
source a(x:int).
view j(x:int, y:int).
+a(X) :- j(X,Y), j(Y,X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := join.CompileIncrementalSQL(); err == nil {
		t.Error("self-join strategy must be rejected")
	}
}
