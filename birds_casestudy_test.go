package birds_test

import (
	"testing"

	"birds"
)

// The complete Section 3.3 case study through the public API: the base
// tables, the four-view stack, cascading updates, constraint rejections,
// and the derived view definitions. This is the examples/hr walkthrough as
// an asserted test.
func TestCaseStudySection33(t *testing.T) {
	const (
		residentsStrategy = `
source male(emp_name:string, birth_date:date).
source female(emp_name:string, birth_date:date).
source others(emp_name:string, birth_date:date, gender:string).
view residents(emp_name:string, birth_date:date, gender:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`
		cedStrategy = `
source ed(emp_name:string, dept_name:string).
source eed(emp_name:string, dept_name:string).
view ced(emp_name:string, dept_name:string).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`
		r1962Strategy = `
source residents(emp_name:string, birth_date:date, gender:string).
view residents1962(emp_name:string, birth_date:date, gender:string).
_|_ :- residents1962(E,B,G), B > '1962-12-31'.
_|_ :- residents1962(E,B,G), B < '1962-01-01'.
+residents(E,B,G) :- residents1962(E,B,G), not residents(E,B,G).
-residents(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31', not residents1962(E,B,G).
`
		retiredStrategy = `
source residents(emp_name:string, birth_date:date, gender:string).
source ced(emp_name:string, dept_name:string).
view retired(emp_name:string).
-ced(E,D) :- ced(E,D), retired(E).
+ced(E,D) :- residents(E,_,_), not retired(E), not ced(E,_), D = 'unknown'.
+residents(E,B,G) :- retired(E), G = 'unknown', not residents(E,_,_), B = '00-00-00'.
`
	)
	oracle := birds.OracleConfig{
		MaxTuples: 3, RandomTrials: 600, ExhaustiveBudget: 20000, GuideBudget: 20000, Seed: 1,
	}

	db := birds.NewDB()
	schema, err := birds.Parse(`
source male(emp_name:string, birth_date:date).
source female(emp_name:string, birth_date:date).
source others(emp_name:string, birth_date:date, gender:string).
source ed(emp_name:string, dept_name:string).
source eed(emp_name:string, dept_name:string).
view unused(x:int).
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range schema.Sources {
		if err := db.CreateTable(d); err != nil {
			t.Fatal(err)
		}
	}
	row := func(vals ...string) birds.Tuple {
		out := make(birds.Tuple, len(vals))
		for i, v := range vals {
			out[i] = birds.Str(v)
		}
		return out
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.LoadTable("male", []birds.Tuple{row("bob", "1962-03-01"), row("jim", "1950-07-20")}))
	must(db.LoadTable("female", []birds.Tuple{row("ann", "1962-07-15")}))
	must(db.LoadTable("ed", []birds.Tuple{row("bob", "sales"), row("jim", "cs"), row("ann", "cs")}))
	must(db.LoadTable("eed", []birds.Tuple{row("bob", "cs")}))

	for _, src := range []string{residentsStrategy, cedStrategy, r1962Strategy, retiredStrategy} {
		if _, err := db.CreateView(src, birds.ViewOptions{Incremental: true, Oracle: &oracle}); err != nil {
			t.Fatal(err)
		}
	}

	// Derived view definitions exist for every view (Theorem 2.1).
	for _, name := range []string{"residents", "ced", "residents1962", "retired"} {
		v := db.View(name)
		if v == nil || len(v.Get) == 0 {
			t.Fatalf("view %s has no derived get", name)
		}
	}

	// Initial state checks.
	rel := func(name string) *birds.Relation {
		t.Helper()
		r, err := db.Rel(name)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if rel("residents").Len() != 3 {
		t.Fatalf("residents = %v", rel("residents"))
	}
	if !rel("ced").Contains(row("bob", "sales")) || rel("ced").Contains(row("bob", "cs")) {
		t.Fatalf("ced = %v (bob's cs department is former)", rel("ced"))
	}
	if rel("residents1962").Len() != 2 {
		t.Fatalf("residents1962 = %v", rel("residents1962"))
	}
	if rel("retired").Len() != 0 {
		t.Fatalf("retired = %v (everyone has a department)", rel("retired"))
	}

	// Insert through the top view: cascades residents1962 → residents →
	// female.
	must(db.Exec(birds.Insert("residents1962", birds.Str("eva"), birds.Str("1962-11-30"), birds.Str("F"))))
	if !rel("female").Contains(row("eva", "1962-11-30")) {
		t.Fatalf("eva must land in female: %v", rel("female"))
	}
	// Eva has no department, so she is now retired.
	if !rel("retired").Contains(row("eva")) {
		t.Fatalf("eva has no current department: %v", rel("retired"))
	}

	// Constraint rejection at the top of the stack.
	if err := db.Exec(birds.Insert("residents1962", birds.Str("tom"), birds.Str("1980-01-01"), birds.Str("M"))); err == nil {
		t.Fatal("1980 birthdate must violate the 1962 constraints")
	}
	if rel("residents").Contains(row("tom", "1980-01-01", "M")) {
		t.Fatal("rejected insert must not leak into residents")
	}

	// Retire bob via the retired view: his ced departments move to eed.
	must(db.Exec(birds.Insert("retired", birds.Str("bob"))))
	if rel("ced").Contains(row("bob", "sales")) {
		t.Fatalf("bob should have no current department: %v", rel("ced"))
	}
	if !rel("eed").Contains(row("bob", "sales")) {
		t.Fatalf("bob's sales dept must become former: %v", rel("eed"))
	}
	if !rel("retired").Contains(row("bob")) {
		t.Fatalf("retired = %v", rel("retired"))
	}

	// Un-retire bob: the strategy assigns an 'unknown' department.
	must(db.Exec(birds.Delete("retired", birds.Eq("emp_name", birds.Str("bob")))))
	if !rel("ced").Contains(row("bob", "unknown")) {
		t.Fatalf("un-retiring must create an unknown department: %v", rel("ced"))
	}

	// Move ann's department through ced: UPDATE cascades to ed/eed.
	must(db.Exec(birds.Update("ced",
		[]birds.Assignment{{Col: "dept_name", Val: birds.Str("hr")}},
		birds.Eq("emp_name", birds.Str("ann")))))
	ced := rel("ced")
	if !ced.Contains(row("ann", "hr")) || ced.Contains(row("ann", "cs")) {
		t.Fatalf("ced after move = %v", ced)
	}
	if !rel("eed").Contains(row("ann", "cs")) {
		t.Fatalf("ann's cs must be former: %v", rel("eed"))
	}
	// ed keeps full history.
	if !rel("ed").Contains(row("ann", "cs")) || !rel("ed").Contains(row("ann", "hr")) {
		t.Fatalf("ed history = %v", rel("ed"))
	}
}
