// Sharding: a single logical relation served by two physical shards — the
// measurement workload of Table 1 (row 19) and a classic use of
// programmable update strategies. The view measurement unifies shards m1
// (ids below 1000) and m2 (ids from 1000); the strategy routes insertions
// to the correct shard by key range, and shard invariants are expressed as
// integrity constraints.
package main

import (
	"fmt"
	"log"

	"birds"
)

const shardStrategy = `
source m1(mid:int, val:int).
source m2(mid:int, val:int).
view measurement(mid:int, val:int).

% Shard invariants (preconditions on the stored data).
_|_ :- m1(I,V), not I < 1000.
_|_ :- m2(I,V), I < 1000.
% Domain constraint on the view: measurements are positive.
_|_ :- measurement(I,V), not V > 0.

% Routing: insertions go to the shard owning the key range.
+m1(I,V) :- measurement(I,V), I < 1000, not m1(I,V).
+m2(I,V) :- measurement(I,V), not I < 1000, not m2(I,V).
-m1(I,V) :- m1(I,V), V > 0, not measurement(I,V).
-m2(I,V) :- m2(I,V), V > 0, not measurement(I,V).
`

func main() {
	// Validate once and show the derived view definition and SQL artifact.
	s, err := birds.Load(shardStrategy)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Validate(nil)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Valid {
		log.Fatalf("strategy rejected: %v", res.Failure)
	}
	fmt.Println("derived view definition:")
	for _, r := range res.Get {
		fmt.Println(" ", r)
	}

	db := birds.NewDB()
	decls, err := birds.Parse("source m1(mid:int, val:int).\nsource m2(mid:int, val:int).\nview x(a:int).")
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decls.Sources {
		if err := db.CreateTable(d); err != nil {
			log.Fatal(err)
		}
	}
	must(db.LoadTable("m1", []birds.Tuple{
		{birds.Int(17), birds.Int(40)},
		{birds.Int(230), birds.Int(7)},
	}))
	must(db.LoadTable("m2", []birds.Tuple{
		{birds.Int(4096), birds.Int(12)},
	}))
	if _, err := db.CreateView(shardStrategy, birds.ViewOptions{Incremental: true}); err != nil {
		log.Fatal(err)
	}

	show := func() {
		for _, n := range []string{"m1", "m2", "measurement"} {
			r, err := db.Rel(n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s = %s\n", n, r)
		}
	}
	fmt.Println("\ninitial state:")
	show()

	// One transaction inserting into both shards through the view; the
	// strategy routes each tuple by key range.
	fmt.Println("\nBEGIN; INSERT (500, 99); INSERT (2000, 5); END")
	must(db.Exec(
		birds.Insert("measurement", birds.Int(500), birds.Int(99)),
		birds.Insert("measurement", birds.Int(2000), birds.Int(5)),
	))
	show()

	// Within one transaction, a later delete overrides an earlier insert
	// (Algorithm 2 of the paper): the net effect on id 777 is nothing.
	fmt.Println("\nBEGIN; INSERT (777, 1); DELETE WHERE mid = 777; DELETE WHERE mid = 17; END")
	must(db.Exec(
		birds.Insert("measurement", birds.Int(777), birds.Int(1)),
		birds.Delete("measurement", birds.Eq("mid", birds.Int(777))),
		birds.Delete("measurement", birds.Eq("mid", birds.Int(17))),
	))
	show()

	// A non-positive measurement violates the view's domain constraint.
	fmt.Println("\nINSERT INTO measurement VALUES (3, 0)")
	if err := db.Exec(birds.Insert("measurement", birds.Int(3), birds.Int(0))); err != nil {
		fmt.Println("  rejected as expected:", err)
	} else {
		log.Fatal("constraint violation not caught")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
