// Catalog: a left-join view (Table 1 row 29, "products") — each product
// joined with its category name, or the sentinel 'none' when it has no
// category. Join views are outside LVGN-Datalog (the key constraints are
// not negation guarded), but the strategy is still validated by the
// bounded-oracle path and runs on the engine; updating through the view
// rewires the product→category foreign keys.
package main

import (
	"fmt"
	"log"

	"birds"
)

const productsStrategy = `
source prod(pid:int, pname:string, cid:int).
source cats(cid:int, cname:string).
view products(pid:int, pname:string, cname:string).

% Key and inclusion preconditions on the stored data.
_|_ :- cats(I,C1), cats(I,C2), not C1 = C2.
_|_ :- cats(I1,C), cats(I2,C), not I1 = I2.
_|_ :- prod(P,N1,I1), prod(P,N2,I2), not N1 = N2.
_|_ :- prod(P,N1,I1), prod(P,N2,I2), not I1 = I2.
_|_ :- prod(P,N,I), not I = -1, not cats(I,_).
_|_ :- cats(I,C), I = -1.
_|_ :- cats(I,C), C = 'none'.

% View constraints: one row per product; category names must exist.
_|_ :- products(P,N1,C1), products(P,N2,C2), not N1 = N2.
_|_ :- products(P,N1,C1), products(P,N2,C2), not C1 = C2.
_|_ :- products(P,N,C), not C = 'none', not catname(C).
catname(C) :- cats(_,C).

+prod(P,N,I) :- products(P,N,C), C = 'none', I = -1, not prod(P,N,I).
+prod(P,N,I) :- products(P,N,C), cats(I,C), not prod(P,N,I).
-prod(P,N,I) :- prod(P,N,I), cats(I,C), not products(P,N,C).
-prod(P,N,I) :- prod(P,N,I), I = -1, not products(P,N,'none').
`

const expectedGet = `
products(P,N,C) :- prod(P,N,I), cats(I,C).
products(P,N,'none') :- prod(P,N,I), I = -1.
`

func main() {
	s, err := birds.Load(productsStrategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragment: LVGN = %v (join views are outside LVGN), NR-Datalog = %v\n",
		s.Class().LVGN(), s.Class().NRDatalog())

	expected, err := birds.ParseRules(expectedGet)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Validate(expected)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Valid {
		log.Fatalf("strategy rejected: %v", res.Failure)
	}
	fmt.Printf("validated in %.2fs; expected get confirmed = %v\n", res.Elapsed.Seconds(), res.UsedExpected)

	db := birds.NewDB()
	decls, err := birds.Parse("source prod(pid:int, pname:string, cid:int).\nsource cats(cid:int, cname:string).\nview x(a:int).")
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decls.Sources {
		if err := db.CreateTable(d); err != nil {
			log.Fatal(err)
		}
	}
	must(db.LoadTable("cats", []birds.Tuple{
		{birds.Int(1), birds.Str("tools")},
		{birds.Int(2), birds.Str("toys")},
	}))
	must(db.LoadTable("prod", []birds.Tuple{
		{birds.Int(10), birds.Str("hammer"), birds.Int(1)},
		{birds.Int(11), birds.Str("kite"), birds.Int(2)},
		{birds.Int(12), birds.Str("widget"), birds.Int(-1)}, // uncategorized
	}))
	if _, err := db.CreateView(productsStrategy, birds.ViewOptions{
		SkipValidation: true, // validated above
		ExpectedGet:    expected,
	}); err != nil {
		log.Fatal(err)
	}

	show := func() {
		for _, n := range []string{"prod", "cats", "products"} {
			r, err := db.Rel(n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-9s = %s\n", n, r)
		}
	}
	fmt.Println("\ninitial state:")
	show()

	// Recategorize the kite through the view: the strategy rewires the
	// foreign key to the tools category.
	fmt.Println("\nUPDATE products SET cname = 'tools' WHERE pid = 11")
	must(db.Exec(birds.Update("products",
		[]birds.Assignment{{Col: "cname", Val: birds.Str("tools")}},
		birds.Eq("pid", birds.Int(11)))))
	show()

	// Give the widget a category; then take the hammer's away.
	fmt.Println("\nUPDATE products SET cname = 'toys' WHERE pid = 12")
	must(db.Exec(birds.Update("products",
		[]birds.Assignment{{Col: "cname", Val: birds.Str("toys")}},
		birds.Eq("pid", birds.Int(12)))))
	fmt.Println("UPDATE products SET cname = 'none' WHERE pid = 10")
	must(db.Exec(birds.Update("products",
		[]birds.Assignment{{Col: "cname", Val: birds.Str("none")}},
		birds.Eq("pid", birds.Int(10)))))
	show()

	// An unknown category name is rejected by the view constraint.
	fmt.Println("\nINSERT INTO products VALUES (13, 'drone', 'gadgets')")
	if err := db.Exec(birds.Insert("products",
		birds.Int(13), birds.Str("drone"), birds.Str("gadgets"))); err != nil {
		fmt.Println("  rejected as expected:", err)
	} else {
		log.Fatal("constraint violation not caught")
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
