// HR: the full case study of Section 3.3 of the paper — a stack of
// updatable views over a personnel database:
//
//	male / female / others / ed / eed      (base tables)
//	residents  = male ∪ female ∪ others    (dispatch by gender)
//	ced        = ed \ eed                  (current departments)
//	residents1962 over residents           (selection; view over a view)
//	retired over residents + ced           (semijoin with negation)
//
// Updates on the higher views cascade through the lower views' strategies
// down to the base tables.
package main

import (
	"fmt"
	"log"

	"birds"
)

const residentsStrategy = `
source male(emp_name:string, birth_date:date).
source female(emp_name:string, birth_date:date).
source others(emp_name:string, birth_date:date, gender:string).
view residents(emp_name:string, birth_date:date, gender:string).

+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`

const cedStrategy = `
source ed(emp_name:string, dept_name:string).
source eed(emp_name:string, dept_name:string).
view ced(emp_name:string, dept_name:string).

+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`

const residents1962Strategy = `
source residents(emp_name:string, birth_date:date, gender:string).
view residents1962(emp_name:string, birth_date:date, gender:string).

_|_ :- residents1962(E,B,G), B > '1962-12-31'.
_|_ :- residents1962(E,B,G), B < '1962-01-01'.
+residents(E,B,G) :- residents1962(E,B,G), not residents(E,B,G).
-residents(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31', not residents1962(E,B,G).
`

const retiredStrategy = `
source residents(emp_name:string, birth_date:date, gender:string).
source ced(emp_name:string, dept_name:string).
view retired(emp_name:string).

-ced(E,D) :- ced(E,D), retired(E).
+ced(E,D) :- residents(E,_,_), not retired(E), not ced(E,_), D = 'unknown'.
+residents(E,B,G) :- retired(E), G = 'unknown', not residents(E,_,_), B = '00-00-00'.
`

func main() {
	db := birds.NewDB()
	schema, err := birds.Parse(`
source male(emp_name:string, birth_date:date).
source female(emp_name:string, birth_date:date).
source others(emp_name:string, birth_date:date, gender:string).
source ed(emp_name:string, dept_name:string).
source eed(emp_name:string, dept_name:string).
view unused(x:int).
`)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range schema.Sources {
		if err := db.CreateTable(d); err != nil {
			log.Fatal(err)
		}
	}

	// Seed data.
	must(db.LoadTable("male", rows("bob|1962-03-01", "jim|1950-07-20")))
	must(db.LoadTable("female", rows("ann|1962-07-15")))
	must(db.LoadTable("others", rows("kit|1958-02-02|X")))
	must(db.LoadTable("ed", rows("bob|sales", "jim|cs", "ann|cs")))
	must(db.LoadTable("eed", rows("bob|cs")))

	// Install the view stack. Each CREATE VIEW validates the strategy
	// first (Algorithm 1), then materializes the view.
	for _, v := range []struct{ name, src string }{
		{"residents", residentsStrategy},
		{"ced", cedStrategy},
		{"residents1962", residents1962Strategy},
		{"retired", retiredStrategy},
	} {
		if _, err := db.CreateView(v.src, birds.ViewOptions{Incremental: true}); err != nil {
			log.Fatalf("create view %s: %v", v.name, err)
		}
		fmt.Printf("created updatable view %s\n", v.name)
	}

	show := func(names ...string) {
		for _, n := range names {
			r, err := db.Rel(n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s = %s\n", n, r)
		}
	}
	fmt.Println("\ninitial views:")
	show("residents", "ced", "residents1962", "retired")

	// Update through residents1962: a new 1962-born female. The strategy
	// inserts into residents, whose own strategy routes her to the female
	// base table.
	fmt.Println("\nINSERT INTO residents1962 VALUES ('eva', '1962-11-30', 'F')")
	must(db.Exec(birds.Insert("residents1962",
		birds.Str("eva"), birds.Str("1962-11-30"), birds.Str("F"))))
	show("female", "residents", "residents1962")

	// An out-of-range birthdate violates the view's constraints.
	fmt.Println("\nINSERT INTO residents1962 VALUES ('tom', '1980-01-01', 'M')")
	if err := db.Exec(birds.Insert("residents1962",
		birds.Str("tom"), birds.Str("1980-01-01"), birds.Str("M"))); err != nil {
		fmt.Println("  rejected as expected:", err)
	} else {
		log.Fatal("constraint violation not caught")
	}

	// Retire bob through the retired view: his current departments move to
	// eed-free deletion from ced, i.e. -ced cascades into ed/eed updates.
	fmt.Println("\nINSERT INTO retired VALUES ('bob')")
	must(db.Exec(birds.Insert("retired", birds.Str("bob"))))
	show("retired", "ced", "ed", "eed")

	// Update a department through ced: ann moves from cs to hr.
	fmt.Println("\nUPDATE ced SET dept_name = 'hr' WHERE emp_name = 'ann'")
	must(db.Exec(birds.Update("ced",
		[]birds.Assignment{{Col: "dept_name", Val: birds.Str("hr")}},
		birds.Eq("emp_name", birds.Str("ann")))))
	show("ced", "ed", "eed")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// rows parses "a|b|c" specs into string tuples.
func rows(specs ...string) []birds.Tuple {
	var out []birds.Tuple
	for _, s := range specs {
		out = append(out, splitTuple(s))
	}
	return out
}

func splitTuple(s string) birds.Tuple {
	var t birds.Tuple
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '|' {
			t = append(t, birds.Str(s[start:i]))
			start = i + 1
		}
	}
	return t
}
