// Quickstart: the union view of Example 3.1 of the paper, end to end —
// program a view update strategy in Datalog, validate it (the view
// definition is derived automatically), install it as an updatable view on
// the in-memory engine, and update through the view.
package main

import (
	"fmt"
	"log"

	"birds"
)

const strategy = `
% A view v over the union of r1 and r2. Updates are disambiguated by this
% strategy: deletions are propagated to whichever table holds the tuple,
% and insertions go to r1.
source r1(a:int).
source r2(a:int).
view v(a:int).

-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func main() {
	// 1. Load and validate the strategy. Validation derives the view
	// definition get from the update strategy (Theorem 2.1: it is unique).
	s, err := birds.Load(strategy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fragment: LVGN-Datalog = %v\n", s.Class().LVGN())

	res, err := s.Validate(nil)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Valid {
		log.Fatalf("strategy rejected: %v", res.Failure)
	}
	fmt.Println("strategy is valid; derived view definition:")
	for _, r := range res.Get {
		fmt.Println(" ", r)
	}

	// 2. Install it on the engine with the paper's Example 3.1 instance.
	db := birds.NewDB()
	decls, err := birds.Parse("source r1(a:int).\nsource r2(a:int).\nview v(a:int).")
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range decls.Sources {
		if err := db.CreateTable(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.LoadTable("r1", []birds.Tuple{{birds.Int(1)}}); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTable("r2", []birds.Tuple{{birds.Int(2)}, {birds.Int(4)}}); err != nil {
		log.Fatal(err)
	}
	if _, err := db.CreateView(strategy, birds.ViewOptions{Incremental: true}); err != nil {
		log.Fatal(err)
	}

	show := func(label string) {
		for _, rel := range []string{"r1", "r2", "v"} {
			r, err := db.Rel(rel)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s = %s\n", rel, r)
		}
		fmt.Println(" ", label)
	}
	fmt.Println("initial state:")
	show("")

	// 3. Update the view: V becomes {1, 3, 4} (insert 3, delete 2). The
	// strategy propagates: +r1(3), -r2(2), exactly as in the paper.
	if err := db.Exec(birds.Insert("v", birds.Int(3))); err != nil {
		log.Fatal(err)
	}
	if err := db.Exec(birds.Delete("v", birds.Eq("a", birds.Int(2)))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after inserting 3 and deleting 2 through the view:")
	show("(r1 gained 3; r2 lost 2)")

	// 4. The compiled SQL artifact for running the same strategy on
	// PostgreSQL.
	sql, err := s.CompileSQL(res.Get)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled SQL program: %d bytes (CREATE VIEW + INSTEAD OF trigger)\n", len(sql))
}
