// Package birds is a Go implementation of "Programmable View Update
// Strategies on Relations" (Tran, Kato, Hu — VLDB 2020): updatable
// relational views whose update strategies are programmed in nonrecursive
// Datalog with negation, statically validated for well-behavedness,
// incrementalized, and compiled to SQL.
//
// A view update strategy (a putback program) maps the original source
// database and an updated view to delta relations (+r / -r) on the
// sources:
//
//	src := `
//	source r1(a:int).
//	source r2(a:int).
//	view v(a:int).
//	-r1(X) :- r1(X), not v(X).
//	-r2(X) :- r2(X), not v(X).
//	+r1(X) :- v(X), not r1(X), not r2(X).
//	`
//	strategy, err := birds.Load(src)            // parse + compile
//	result, err := strategy.Validate(nil)       // Algorithm 1; derives get
//	dput, err := strategy.Incrementalize()      // Lemma 5.2 ∂put
//	sql, err := strategy.CompileSQL(result.Get) // CREATE VIEW + trigger
//
// To actually serve updates, register the strategy on the in-memory
// engine:
//
//	db := birds.NewDB()
//	db.CreateTable(...); db.LoadTable(...)
//	db.CreateView(src, birds.ViewOptions{Incremental: true})
//	db.Exec(birds.Insert("v", birds.Int(3)))
package birds

import (
	"fmt"

	"birds/internal/analysis"
	"birds/internal/bench"
	"birds/internal/cdc"
	"birds/internal/core"
	"birds/internal/datalog"
	"birds/internal/engine"
	"birds/internal/eval"
	"birds/internal/sat"
	"birds/internal/sqlgen"
	"birds/internal/value"
	"birds/internal/wal"
)

// Re-exported language and engine types. The aliases make the full
// functionality of the internal packages available through the public API.
type (
	// Program is a parsed putback program.
	Program = datalog.Program
	// Rule is one Datalog rule or integrity constraint.
	Rule = datalog.Rule
	// RelDecl declares a relation schema.
	RelDecl = datalog.RelDecl
	// Class is the language-fragment classification (LVGN / NR-Datalog).
	Class = analysis.Class
	// ValidationResult is the outcome of Algorithm 1.
	ValidationResult = core.Result
	// ValidationFailure explains a rejected strategy, with a witness.
	ValidationFailure = core.Failure
	// Options configures validation.
	Options = core.Options
	// OracleConfig bounds the satisfiability oracle.
	OracleConfig = sat.Config

	// Value is a typed scalar constant.
	Value = value.Value
	// Tuple is one relation row.
	Tuple = value.Tuple
	// Relation is a set of tuples.
	Relation = value.Relation

	// DB is the in-memory RDBMS with updatable views.
	DB = engine.DB
	// ViewOptions configures DB.CreateView.
	ViewOptions = engine.ViewOptions
	// Statement is a DML statement.
	Statement = engine.Statement
	// Condition is a WHERE conjunct.
	Condition = engine.Condition
	// Assignment is an UPDATE SET clause.
	Assignment = engine.Assignment
	// Batcher is the group-commit write pipeline handle (DB.Batch,
	// DB.SetBatching): admitted transactions stage their coalesced net
	// deltas and flush as one view-maintenance pass. Batcher.ExecWait
	// blocks until the transaction's batch is flushed (the session
	// acknowledgment point cmd/birds-serve is built on), and
	// Batcher.Stats exposes the pipeline's counters.
	Batcher = engine.Batcher
	// BatcherStats is a snapshot of a Batcher's counters: admissions,
	// flushes, coalesced-away rows, and queue depth.
	BatcherStats = engine.BatcherStats
	// Commit is the flush handle of one admitted transaction
	// (Batcher.ExecAsync).
	Commit = engine.Commit
	// BatchOptions configures a Batcher's flush triggers.
	BatchOptions = engine.BatchOptions
	// DurabilityOptions configures DB.EnableDurability: the write-ahead-log
	// directory, the fsync mode, the automatic checkpoint cadence, and the
	// WAL segment rotation threshold.
	DurabilityOptions = engine.DurabilityOptions
	// RecoverStats summarizes a Recover: loaded checkpoint LSN, last
	// replayed LSN, records replayed, and whether a torn tail was skipped.
	RecoverStats = engine.RecoverStats
	// SyncMode selects when the write-ahead log is fsynced.
	SyncMode = wal.SyncMode

	// Subscription is one change-data-capture stream (DB.Subscribe): an
	// initial snapshot event followed by ordered per-visibility-point net
	// delta events, with explicit Resync events on loss — never silent
	// divergence.
	Subscription = cdc.Subscription
	// SubOptions configures a subscription's buffer and slow-consumer
	// policy.
	SubOptions = cdc.SubOptions
	// ChangeEvent is one element of a subscription stream.
	ChangeEvent = cdc.Event
	// CDCStats aggregates the subscription hub's counters.
	CDCStats = cdc.HubStats
)

// Slow-consumer policies for SubOptions.Policy.
const (
	// DropAndResync never delays the write path: a lagging subscriber
	// loses events and receives one explicit Resync.
	DropAndResync = cdc.DropAndResync
	// BlockWithDeadline delays the publisher up to SubOptions.BlockDeadline
	// before falling back to DropAndResync.
	BlockWithDeadline = cdc.BlockWithDeadline
)

// ApplyChange folds one subscription event into a client-side mirror
// relation and returns the new mirror (cdc.ApplyEvent).
var ApplyChange = cdc.ApplyEvent

// Write-ahead-log fsync modes.
const (
	// SyncOff never fsyncs the log (crash durability up to the OS page
	// cache only; the record stream is still torn-tail safe).
	SyncOff = wal.SyncOff
	// SyncOnCommit fsyncs every record — full per-transaction durability.
	SyncOnCommit = wal.SyncOnCommit
	// SyncOnFlush fsyncs group-commit flush records only, amortizing one
	// fsync across the whole batch; direct transactions ride along with the
	// next synced record.
	SyncOnFlush = wal.SyncOnFlush
)

// DefaultCheckpointEvery is the automatic-checkpoint record cadence used
// when DurabilityOptions.CheckpointEvery is 0.
const DefaultCheckpointEvery = engine.DefaultCheckpointEvery

// DefaultSegmentBytes is the WAL segment rotation threshold used when
// DurabilityOptions.SegmentBytes is 0.
const DefaultSegmentBytes = wal.DefaultSegmentBytes

// ErrReadOnly is returned (wrapped) by every write path while the engine is
// in read-only degraded mode after a storage failure; DB.Reopen recovers
// from disk and restores writes. Test with errors.Is.
var ErrReadOnly = engine.ErrReadOnly

// ParseSyncMode parses "off", "commit" or "flush" into a SyncMode.
var ParseSyncMode = wal.ParseSyncMode

// HasDurableState reports whether dir holds recoverable durable state:
// true means open it with Recover, false means DB.EnableDurability is safe.
var HasDurableState = engine.HasDurableState

// Recover rebuilds a database from the durable state in dir: latest valid
// checkpoint, WAL-tail replay (skipping a torn trailing record, erroring on
// mid-log corruption), and view re-derivation from base state. The returned
// engine has durability re-enabled on dir.
func Recover(dir string) (*DB, RecoverStats, error) { return engine.Recover(dir) }

// DefaultBatchSize is the batch-size trigger used when
// BatchOptions.MaxTxns is 0.
const DefaultBatchSize = engine.DefaultBatchSize

// Value constructors.
var (
	// Int builds an integer value.
	Int = value.Int
	// Float builds a floating-point value.
	Float = value.Float
	// Str builds a string value.
	Str = value.Str
	// Bool builds a boolean value.
	Bool = value.Bool
)

// DML statement constructors.
var (
	// Insert builds an INSERT statement.
	Insert = engine.Insert
	// Delete builds a DELETE statement.
	Delete = engine.Delete
	// Update builds an UPDATE statement.
	Update = engine.Update
	// Eq builds an equality WHERE condition.
	Eq = engine.Eq
)

// NewDB creates an empty in-memory database.
func NewDB() *DB { return engine.NewDB() }

// DefaultParallelism is the GOMAXPROCS-derived evaluator worker count used
// when a parallelism knob is set to "auto" (DB.SetParallelism(0),
// ViewOptions.Parallelism < 0, Strategy.SetParallelism(0)).
func DefaultParallelism() int { return eval.DefaultParallelism() }

// Parse parses a putback program: source/view declarations followed by
// update rules and integrity constraints.
func Parse(src string) (*Program, error) { return datalog.Parse(src) }

// ParseRules parses newline-separated Datalog rules (e.g. an expected view
// definition).
func ParseRules(src string) ([]*Rule, error) { return bench.ParseGetRules(src) }

// Strategy is a loaded, compiled view update strategy.
type Strategy struct {
	pb *core.Putback
}

// Load parses and compiles a putback program, checking its structural
// obligations (declared view, delta heads on declared sources, arities,
// safety, nonrecursion).
func Load(src string) (*Strategy, error) {
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	return LoadProgram(prog)
}

// LoadProgram is Load for an already-parsed program.
func LoadProgram(prog *Program) (*Strategy, error) {
	pb, err := core.NewPutback(prog)
	if err != nil {
		return nil, err
	}
	return &Strategy{pb: pb}, nil
}

// Program returns the underlying program.
func (s *Strategy) Program() *Program { return s.pb.Prog }

// SetParallelism sets the worker-goroutine budget of the strategy's compiled
// evaluator (used by Put-style evaluation over large source tables). p <= 0
// selects DefaultParallelism, 1 restores sequential evaluation. Parallel and
// sequential evaluation produce identical relations.
func (s *Strategy) SetParallelism(p int) { s.pb.Evaluator().SetParallelism(p) }

// Class reports the language-fragment classification of the strategy.
func (s *Strategy) Class() Class { return s.pb.Class }

// Validate runs Algorithm 1 of the paper: well-definedness, existence of a
// view definition satisfying GetPut (confirming expectedGet or deriving
// one), and PutGet. A nil expectedGet asks for derivation.
func (s *Strategy) Validate(expectedGet []*Rule) (*ValidationResult, error) {
	return core.Validate(s.pb, expectedGet, core.DefaultOptions())
}

// ValidateWith is Validate with explicit options.
func (s *Strategy) ValidateWith(expectedGet []*Rule, opts Options) (*ValidationResult, error) {
	return core.Validate(s.pb, expectedGet, opts)
}

// Incrementalize derives the ∂put program of Section 5 (Lemma 5.2 plus
// delta-rule unfolding); it requires the linear-view restriction.
func (s *Strategy) Incrementalize() (*Program, error) {
	return core.Incrementalize(s.pb.Prog)
}

// GeneralIncremental is the Figure 7 / Appendix C incremental pipeline,
// which also covers strategies outside LVGN-Datalog.
type GeneralIncremental = core.GeneralIncremental

// IncrementalizeGeneral derives the general incremental pipeline of
// Appendix C: the program is binarized (Lemma C.1) and the four rewrite
// rules of Figure 7 produce delta rules for every intermediate relation.
// Unlike Incrementalize, this works for any NR-Datalog¬ strategy.
func (s *Strategy) IncrementalizeGeneral() (*GeneralIncremental, error) {
	return core.NewGeneralIncremental(s.pb.Prog)
}

// Binarize exposes Lemma C.1: an equivalent program in which every IDB
// relation is defined from at most two other relations.
func Binarize(prog *Program) (*Program, error) { return core.Binarize(prog) }

// CompileSQL compiles the strategy and its view definition to a
// PostgreSQL-dialect SQL program: CREATE VIEW plus an INSTEAD OF trigger.
func (s *Strategy) CompileSQL(getRules []*Rule) (string, error) {
	if getRules == nil {
		return "", fmt.Errorf("birds: CompileSQL needs the view definition; run Validate first")
	}
	return sqlgen.New(s.pb.Prog).Compile(getRules)
}

// CompileIncrementalSQL compiles the incrementalized trigger program (the
// §6.2 artifact): the same INSTEAD OF scaffolding, with delta queries that
// read the view-delta temp tables instead of the full view. It requires
// the strategy to be incrementalizable (LVGN's linear view).
func (s *Strategy) CompileIncrementalSQL() (string, error) {
	dput, err := core.Incrementalize(s.pb.Prog)
	if err != nil {
		return "", err
	}
	return sqlgen.New(s.pb.Prog).CompileIncrementalTrigger(dput)
}

// LawsConfig bounds CheckLaws.
type LawsConfig = core.LawsConfig

// LawViolation is a concrete GetPut/PutGet counterexample from CheckLaws.
type LawViolation = core.LawViolation

// CheckLaws property-tests the round-tripping laws of the paper's §2.2
// (GetPut and PutGet) on random instances — a complement to Validate's
// adversarial small-scope search. It returns a *LawViolation carrying the
// witness instance when a law fails.
func (s *Strategy) CheckLaws(getRules []*Rule, cfg LawsConfig) error {
	return core.CheckLaws(s.pb, getRules, cfg)
}
