// Command table1 regenerates Table 1 of the paper: for each of the 32
// benchmark views it classifies the update strategy (LVGN-Datalog /
// NR-Datalog), runs the validation algorithm against the expected view
// definition, and compiles the strategy to SQL, reporting program size,
// validation time and compiled-SQL size.
package main

import (
	"flag"
	"fmt"

	"birds/internal/bench"
	"birds/internal/core"
	"birds/internal/sat"
)

func main() {
	var (
		trials   = flag.Int("trials", 3000, "randomized oracle trials")
		budget   = flag.Int("budget", 150000, "exhaustive/guided oracle budget")
		parallel = flag.Int("parallel", -1, "concurrent view validations (-1 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	opts := core.Options{Oracle: sat.Config{
		MaxTuples:        3,
		RandomTrials:     *trials,
		ExhaustiveBudget: *budget,
		GuideBudget:      *budget,
		Seed:             1,
	}}
	var rows []bench.Table1Row
	heap := bench.MeasureHeapPeak(func() {
		rows = bench.RunTable1Parallel(opts, *parallel)
	})
	fmt.Println("Table 1: validation results (reproduction)")
	fmt.Println()
	fmt.Print(bench.FormatTable1(rows))

	var valid, lvgn, nr int
	for _, r := range rows {
		if r.Valid {
			valid++
		}
		if r.LVGN {
			lvgn++
		}
		if r.NR {
			nr++
		}
	}
	fmt.Printf("\nsummary: %d/32 validated, %d LVGN-Datalog, %d NR-Datalog, 1 not expressible (aggregation)\n",
		valid, lvgn, nr)
	fmt.Printf("memory: %.1f MB peak heap over baseline during validation, %.1f MB retained\n",
		float64(heap.PeakOverhead())/1e6, float64(heap.LiveOverhead())/1e6)
}
