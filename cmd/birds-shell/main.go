// Command birds-shell is an interactive session against the in-memory
// engine: declare base tables, install updatable views from putback
// programs, and update through them with SQL DML.
//
//	$ go run ./cmd/birds-shell
//	birds> source r1(a:int).
//	birds> source r2(a:int).
//	birds> \beginview
//	  ... paste a putback program, then \endview
//	birds> INSERT INTO v VALUES (3);
//	birds> \show r1
//
// Commands: \tables, \show REL, \sql VIEW, \explain VIEW, \csv TABLE FILE,
// \view FILE [inc], \beginview/\endview [inc], \flush, \checkpoint, \help,
// \quit.
//
// With -batch-size and/or -flush-interval, table DML goes through the
// group-commit write pipeline: transactions stage until the batch flushes
// (size or interval trigger, \flush, or a view-targeted statement) and
// then propagate into the materialized views as one maintenance pass.
//
// With -durable DIR the session writes a crash-consistent write-ahead log:
// a fresh directory starts empty, a directory holding durable state from a
// previous session (clean exit or crash) is recovered — checkpoint load
// plus WAL replay — before the prompt appears. -fsync picks the sync mode
// (off, commit, flush) and \checkpoint forces a snapshot checkpoint.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"birds"
	"birds/internal/sqlgen"
)

func main() {
	batchSize := flag.Int("batch-size", 0,
		"group-commit batch size: flush after this many transactions (0 disables batching unless -flush-interval is set; with batching on, 0 means the default size)")
	flushInterval := flag.Duration("flush-interval", 0,
		"flush a non-empty batch this long after its first admission (0 disables the interval trigger)")
	durable := flag.String("durable", "",
		"write-ahead-log directory: log every committed write for crash recovery, recovering first if the directory already holds durable state")
	fsync := flag.String("fsync", "commit",
		"WAL fsync mode with -durable: off, commit (every record), or flush (group-commit flush records only)")
	flag.Parse()

	var db *birds.DB
	if *durable != "" {
		syncMode, err := birds.ParseSyncMode(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "birds-shell:", err)
			os.Exit(2)
		}
		if birds.HasDurableState(*durable) {
			rec, stats, err := birds.Recover(*durable)
			if err != nil {
				fmt.Fprintln(os.Stderr, "birds-shell: recover:", err)
				os.Exit(1)
			}
			db = rec
			fmt.Printf("recovered %s: checkpoint lsn=%d, %d record(s) replayed", *durable, stats.CheckpointLSN, stats.Replayed)
			if stats.TornTail {
				fmt.Print(", torn tail skipped")
			}
			fmt.Println()
		} else {
			db = birds.NewDB()
			if err := db.EnableDurability(birds.DurabilityOptions{Dir: *durable, Sync: syncMode}); err != nil {
				fmt.Fprintln(os.Stderr, "birds-shell:", err)
				os.Exit(1)
			}
			fmt.Printf("durability enabled (dir=%s, fsync=%s)\n", *durable, syncMode)
		}
	} else {
		db = birds.NewDB()
	}
	defer db.Close()
	if *batchSize != 0 || *flushInterval > 0 {
		db.SetBatching(birds.BatchOptions{MaxTxns: *batchSize, FlushInterval: *flushInterval})
		fmt.Printf("batching enabled (batch-size=%d, flush-interval=%s); \\flush forces a flush\n",
			*batchSize, *flushInterval)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Println("birds-shell — type \\help for commands")

	var viewBuf *strings.Builder
	var viewInc bool
	prompt := func() {
		if viewBuf != nil {
			fmt.Print("  ...> ")
		} else {
			fmt.Print("birds> ")
		}
	}
	for prompt(); sc.Scan(); prompt() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if viewBuf != nil {
			if strings.EqualFold(line, `\endview`) {
				src := viewBuf.String()
				viewBuf = nil
				if _, err := db.CreateView(src, birds.ViewOptions{Incremental: viewInc}); err != nil {
					fmt.Println("error:", err)
				} else {
					fmt.Println("view created (strategy validated)")
				}
				continue
			}
			viewBuf.WriteString(line)
			viewBuf.WriteByte('\n')
			continue
		}
		if err := execLine(db, line, &viewBuf, &viewInc); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func execLine(db *birds.DB, line string, viewBuf **strings.Builder, viewInc *bool) error {
	switch {
	case strings.HasPrefix(line, `\`):
		return command(db, line, viewBuf, viewInc)
	case strings.HasPrefix(strings.ToLower(line), "source "):
		prog, err := birds.Parse(line)
		if err != nil {
			return err
		}
		for _, d := range prog.Sources {
			if err := db.CreateTable(d); err != nil {
				return err
			}
			fmt.Printf("table %s created\n", d)
		}
		return nil
	default:
		return db.ExecSQL(line)
	}
}

func command(db *birds.DB, line string, viewBuf **strings.Builder, viewInc *bool) error {
	fields := strings.Fields(line)
	switch strings.ToLower(fields[0]) {
	case `\help`:
		fmt.Println(`statements:
  source NAME(col:type, ...).      create a base table
  INSERT INTO rel VALUES (...);    DML through tables and views
  DELETE FROM rel WHERE col = v;
  UPDATE rel SET col = v WHERE ...;
commands:
  \beginview [inc]   start entering a putback program (\endview to finish)
  \view FILE [inc]   create a view from a .dtl file
  \csv TABLE FILE    bulk-load a table from CSV (header row expected)
  \show REL          print a relation
  \tables            list relations
  \sql VIEW          print the compiled SQL program
  \explain VIEW      print the strategy's query plans
  \flush             flush the pending group-commit batch (see -batch-size)
  \checkpoint        write a snapshot checkpoint and truncate the WAL (see -durable)
  \quit`)
		return nil
	case `\checkpoint`:
		if !db.Durable() {
			fmt.Println("durability is not enabled (start the shell with -durable DIR)")
			return nil
		}
		if err := db.Checkpoint(); err != nil {
			return err
		}
		fmt.Printf("checkpoint written (lsn=%d)\n", db.LastLSN())
		return nil
	case `\flush`:
		if !db.Batching() {
			fmt.Println("batching is not enabled (start the shell with -batch-size or -flush-interval)")
			return nil
		}
		if err := db.Flush(); err != nil {
			return err
		}
		fmt.Println("batch flushed")
		return nil
	case `\quit`, `\q`:
		db.Close()
		os.Exit(0)
	case `\beginview`:
		*viewInc = len(fields) > 1 && fields[1] == "inc"
		*viewBuf = &strings.Builder{}
		fmt.Println("enter the putback program; finish with \\endview")
		return nil
	case `\view`:
		if len(fields) < 2 {
			return fmt.Errorf("usage: \\view FILE [inc]")
		}
		data, err := os.ReadFile(fields[1])
		if err != nil {
			return err
		}
		inc := len(fields) > 2 && fields[2] == "inc"
		if _, err := db.CreateView(string(data), birds.ViewOptions{Incremental: inc}); err != nil {
			return err
		}
		fmt.Println("view created (strategy validated)")
		return nil
	case `\csv`:
		if len(fields) != 3 {
			return fmt.Errorf("usage: \\csv TABLE FILE")
		}
		f, err := os.Open(fields[2])
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := db.LoadCSV(fields[1], f, true)
		if err != nil {
			return err
		}
		fmt.Printf("%d rows loaded\n", n)
		return nil
	case `\show`:
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\show REL")
		}
		rel, err := db.Rel(fields[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s (%d tuples) = %s\n", fields[1], rel.Len(), rel)
		return nil
	case `\sql`:
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\sql VIEW")
		}
		v := db.View(fields[1])
		if v == nil {
			return fmt.Errorf("unknown view %q", fields[1])
		}
		sqlText, err := sqlgen.New(v.Strategy.Prog).Compile(v.Get)
		if err != nil {
			return err
		}
		fmt.Println(sqlText)
		return nil
	case `\explain`:
		if len(fields) != 2 {
			return fmt.Errorf("usage: \\explain VIEW")
		}
		v := db.View(fields[1])
		if v == nil {
			return fmt.Errorf("unknown view %q", fields[1])
		}
		fmt.Print(v.Strategy.Evaluator().Explain())
		return nil
	case `\tables`:
		for _, info := range db.Relations() {
			mode := ""
			if info.Kind == "view" {
				mode = " (original strategy)"
				if info.Incremental {
					mode = " (incremental strategy)"
				}
			}
			fmt.Printf("  %-6s %s%s\n", info.Kind, info.Decl, mode)
		}
		return nil
	default:
		return fmt.Errorf("unknown command %s (try \\help)", fields[0])
	}
	return nil
}
