// Command dmlbench measures the engine's steady-state DML write path on
// the DML-maintenance fixture (a 10k+ row base table with a selection view
// and a join view maintained by counting IVM): per-write cost with and
// without the group-commit write pipeline, sweeping the batch size.
//
//	$ go run ./cmd/dmlbench -n 10000 -writes 20000 -batch-sizes 1,8,64,512
//	$ go run ./cmd/dmlbench -batch-size 64 -flush-interval 5ms -stream window
//
// With -batch-size (and optionally -flush-interval) a single configuration
// runs instead of the sweep — the same knobs cmd/birds-shell exposes, so
// the whole pipeline is reachable end-to-end from the command line.
//
// -durable attaches a write-ahead log to every measured configuration
// (each gets a fresh subdirectory), and -fsync picks the sync mode, so the
// durability tax of each mode is measurable against the in-memory numbers.
// -wal-segment-bytes and -checkpoint-every additionally exercise segment
// rotation and *background* checkpoints inside the measured stream; because
// checkpoints persist off the engine lock, the p99 column with checkpoints
// enabled should stay close to the checkpoint-free p99 (that comparison is
// the "checkpoints block no write" acceptance check):
//
//	$ go run ./cmd/dmlbench -durable /tmp/walbench -fsync flush
//	$ go run ./cmd/dmlbench -durable /tmp/walbench -fsync flush \
//	    -wal-segment-bytes 262144 -checkpoint-every 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"birds/internal/bench"
	"birds/internal/engine"
	"birds/internal/wal"
)

func main() {
	var (
		n          = flag.Int("n", 10000, "base-table rows")
		writes     = flag.Int("writes", 20000, "measured write transactions per configuration")
		stream     = flag.String("stream", "coalesce", "write stream: coalesce (PR 3 stream, insert/delete pairs cancel inside a batch) or window (non-cancelling)")
		sizesArg   = flag.String("batch-sizes", "1,8,64,512", "comma-separated batch sizes to sweep")
		batchSize  = flag.Int("batch-size", 0, "run a single batch size instead of the sweep")
		flushEvery = flag.Duration("flush-interval", 0, "interval flush trigger for the single-configuration run (0 = size trigger only)")
		durable    = flag.String("durable", "", "write-ahead-log directory: attach a WAL to every configuration (each batch size logs into its own subdirectory)")
		fsync      = flag.String("fsync", "flush", "WAL fsync mode with -durable: off, commit, or flush")
		segBytes   = flag.Int64("wal-segment-bytes", 0, "with -durable: rotate WAL segments at this size (0 = engine default)")
		ckptEvery  = flag.Int("checkpoint-every", -1, "with -durable: background-checkpoint every N WAL records (-1 disables, 0 = engine default)")
	)
	flag.Parse()

	syncMode, err := wal.ParseSyncMode(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmlbench:", err)
		os.Exit(2)
	}

	txn := bench.BatchedDMLTxn
	switch *stream {
	case "coalesce":
	case "window":
		txn = bench.BatchedDMLWindowTxn
	default:
		fmt.Fprintln(os.Stderr, "dmlbench: unknown -stream (want coalesce or window)")
		os.Exit(2)
	}

	var sizes []int
	if *batchSize != 0 {
		sizes = []int{*batchSize}
	} else {
		for _, s := range strings.Split(*sizesArg, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmlbench: bad batch size:", err)
				os.Exit(2)
			}
			sizes = append(sizes, b)
		}
	}

	if *durable != "" {
		fmt.Printf("dmlbench: n=%d writes=%d stream=%s durable=%s fsync=%s segment-bytes=%d checkpoint-every=%d\n",
			*n, *writes, *stream, *durable, syncMode, *segBytes, *ckptEvery)
	} else {
		fmt.Printf("dmlbench: n=%d writes=%d stream=%s\n", *n, *writes, *stream)
	}
	fmt.Printf("%-12s %14s %14s %12s %12s %12s %10s\n",
		"batch", "ns/write", "writes/s", "p50", "p95", "p99", "peak-MB")
	var base float64
	for _, bs := range sizes {
		perWrite, lat, heap, err := run(*n, *writes, bs, *flushEvery, txn, *durable, syncMode, *segBytes, *ckptEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmlbench:", err)
			os.Exit(1)
		}
		if base == 0 {
			base = perWrite
		}
		fmt.Printf("%-12d %14.0f %14.0f %12v %12v %12v %10.1f   (%.2fx vs batch=%d)\n",
			bs, perWrite, 1e9/perWrite,
			pct(lat, 0.50), pct(lat, 0.95), pct(lat, 0.99),
			float64(heap.PeakOverhead())/1e6,
			base/perWrite, sizes[0])
	}
}

// pct returns the q-quantile of a sorted latency sample.
func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// run measures one configuration: writes transactions through a fresh
// fixture and batcher, returning the amortized ns per write (final flush
// included), the sorted per-write latency sample, and the heap measurement
// of the measured stream (peak overhead above the resident fixture). With
// durableDir set, the fixture logs into a per-batch-size subdirectory so
// the sweep's configurations don't share a WAL.
func run(n, writes, batch int, flushEvery time.Duration, txn func(*engine.Batcher, int, int) error, durableDir string, sync wal.SyncMode, segBytes int64, ckptEvery int) (float64, []time.Duration, bench.HeapStats, error) {
	var db *engine.DB
	var bt *engine.Batcher
	var err error
	if durableDir != "" {
		dir := filepath.Join(durableDir, fmt.Sprintf("batch%d", batch))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, nil, bench.HeapStats{}, err
		}
		db, bt, err = bench.SetupBatchedDMLDurableOpts(n, batch, 1, engine.DurabilityOptions{
			Dir:             dir,
			Sync:            sync,
			SegmentBytes:    segBytes,
			CheckpointEvery: ckptEvery,
		})
	} else {
		db, bt, err = bench.SetupBatchedDML(n, batch, 1)
	}
	if err != nil {
		return 0, nil, bench.HeapStats{}, err
	}
	defer db.Close()
	if flushEvery > 0 {
		bt.Close()
		bt = db.Batch(engine.BatchOptions{MaxTxns: batch, FlushInterval: flushEvery})
	}
	lat := make([]time.Duration, 0, writes)
	var elapsed time.Duration
	heap := bench.MeasureHeapPeak(func() {
		start := time.Now()
		for i := 1; i <= writes; i++ {
			t0 := time.Now()
			if err = txn(bt, n, i); err != nil {
				return
			}
			lat = append(lat, time.Since(t0))
		}
		err = bt.Close()
		elapsed = time.Since(start)
	})
	if err != nil {
		return 0, nil, bench.HeapStats{}, err
	}
	for _, vn := range bench.DMLMaintenanceViews() {
		if db.Stale(vn) {
			return 0, nil, bench.HeapStats{}, fmt.Errorf("view %s fell off the incremental path", vn)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return float64(elapsed.Nanoseconds()) / float64(writes), lat, heap, nil
}
