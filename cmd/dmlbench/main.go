// Command dmlbench measures the engine's steady-state DML write path on
// the DML-maintenance fixture (a 10k+ row base table with a selection view
// and a join view maintained by counting IVM): per-write cost with and
// without the group-commit write pipeline, sweeping the batch size.
//
//	$ go run ./cmd/dmlbench -n 10000 -writes 20000 -batch-sizes 1,8,64,512
//	$ go run ./cmd/dmlbench -batch-size 64 -flush-interval 5ms -stream window
//
// With -batch-size (and optionally -flush-interval) a single configuration
// runs instead of the sweep — the same knobs cmd/birds-shell exposes, so
// the whole pipeline is reachable end-to-end from the command line.
//
// -durable attaches a write-ahead log to every measured configuration
// (each gets a fresh subdirectory), and -fsync picks the sync mode, so the
// durability tax of each mode is measurable against the in-memory numbers:
//
//	$ go run ./cmd/dmlbench -durable /tmp/walbench -fsync flush
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"birds/internal/bench"
	"birds/internal/engine"
	"birds/internal/wal"
)

func main() {
	var (
		n          = flag.Int("n", 10000, "base-table rows")
		writes     = flag.Int("writes", 20000, "measured write transactions per configuration")
		stream     = flag.String("stream", "coalesce", "write stream: coalesce (PR 3 stream, insert/delete pairs cancel inside a batch) or window (non-cancelling)")
		sizesArg   = flag.String("batch-sizes", "1,8,64,512", "comma-separated batch sizes to sweep")
		batchSize  = flag.Int("batch-size", 0, "run a single batch size instead of the sweep")
		flushEvery = flag.Duration("flush-interval", 0, "interval flush trigger for the single-configuration run (0 = size trigger only)")
		durable    = flag.String("durable", "", "write-ahead-log directory: attach a WAL to every configuration (each batch size logs into its own subdirectory)")
		fsync      = flag.String("fsync", "flush", "WAL fsync mode with -durable: off, commit, or flush")
	)
	flag.Parse()

	syncMode, err := wal.ParseSyncMode(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmlbench:", err)
		os.Exit(2)
	}

	txn := bench.BatchedDMLTxn
	switch *stream {
	case "coalesce":
	case "window":
		txn = bench.BatchedDMLWindowTxn
	default:
		fmt.Fprintln(os.Stderr, "dmlbench: unknown -stream (want coalesce or window)")
		os.Exit(2)
	}

	var sizes []int
	if *batchSize != 0 {
		sizes = []int{*batchSize}
	} else {
		for _, s := range strings.Split(*sizesArg, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmlbench: bad batch size:", err)
				os.Exit(2)
			}
			sizes = append(sizes, b)
		}
	}

	if *durable != "" {
		fmt.Printf("dmlbench: n=%d writes=%d stream=%s durable=%s fsync=%s\n",
			*n, *writes, *stream, *durable, syncMode)
	} else {
		fmt.Printf("dmlbench: n=%d writes=%d stream=%s\n", *n, *writes, *stream)
	}
	fmt.Printf("%-12s %14s %14s\n", "batch", "ns/write", "writes/s")
	var base float64
	for _, bs := range sizes {
		perWrite, err := run(*n, *writes, bs, *flushEvery, txn, *durable, syncMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmlbench:", err)
			os.Exit(1)
		}
		if base == 0 {
			base = perWrite
		}
		fmt.Printf("%-12d %14.0f %14.0f   (%.2fx vs batch=%d)\n",
			bs, perWrite, 1e9/perWrite, base/perWrite, sizes[0])
	}
}

// run measures one configuration: writes transactions through a fresh
// fixture and batcher, returning the amortized ns per write (final flush
// included). With durableDir set, the fixture logs into a per-batch-size
// subdirectory so the sweep's configurations don't share a WAL.
func run(n, writes, batch int, flushEvery time.Duration, txn func(*engine.Batcher, int, int) error, durableDir string, sync wal.SyncMode) (float64, error) {
	var db *engine.DB
	var bt *engine.Batcher
	var err error
	if durableDir != "" {
		dir := filepath.Join(durableDir, fmt.Sprintf("batch%d", batch))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return 0, err
		}
		db, bt, err = bench.SetupBatchedDMLDurable(n, batch, 1, dir, sync)
	} else {
		db, bt, err = bench.SetupBatchedDML(n, batch, 1)
	}
	if err != nil {
		return 0, err
	}
	defer db.Close()
	if flushEvery > 0 {
		bt.Close()
		bt = db.Batch(engine.BatchOptions{MaxTxns: batch, FlushInterval: flushEvery})
	}
	start := time.Now()
	for i := 1; i <= writes; i++ {
		if err := txn(bt, n, i); err != nil {
			return 0, err
		}
	}
	if err := bt.Close(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	for _, vn := range bench.DMLMaintenanceViews() {
		if db.Stale(vn) {
			return 0, fmt.Errorf("view %s fell off the incremental path", vn)
		}
	}
	return float64(elapsed.Nanoseconds()) / float64(writes), nil
}
