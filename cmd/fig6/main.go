// Command fig6 regenerates Figure 6 of the paper: view-updating time
// against base-table size, for the original update strategy versus the
// incrementalized one, on the four benchmark views (luxuryitems /
// officeinfo / outstanding_task / vw_brands).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"birds/internal/bench"
)

func main() {
	var (
		viewName = flag.String("view", "all", "view to sweep (luxuryitems, officeinfo, outstanding_task, vw_brands, or all)")
		sizesArg = flag.String("sizes", "", "comma-separated base-table sizes (default 25k..400k)")
		rounds   = flag.Int("rounds", 6, "measured update rounds per size (first round is warm-up)")
		parallel = flag.Int("parallel", -1, "evaluator workers per update (-1 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	sizes := bench.DefaultFig6Sizes()
	if *sizesArg != "" {
		sizes = nil
		for _, s := range strings.Split(*sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig6: bad size:", err)
				os.Exit(2)
			}
			sizes = append(sizes, n)
		}
	}

	var views []bench.Fig6View
	if *viewName == "all" {
		views = bench.Fig6Views()
	} else {
		v, err := bench.Fig6ViewByName(*viewName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			os.Exit(2)
		}
		views = []bench.Fig6View{v}
	}

	fmt.Println("Figure 6: view updating time (reproduction)")
	for _, v := range views {
		fmt.Printf("\n%s\n%-12s %-18s %-18s %s\n", v.Name, "base size", "original (ms)", "incremental (ms)", "speedup")
		orig, err := bench.RunFig6(v, sizes, false, *rounds, 1, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			os.Exit(1)
		}
		inc, err := bench.RunFig6(v, sizes, true, *rounds, 1, *parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig6:", err)
			os.Exit(1)
		}
		for i := range orig {
			o := orig[i].PerUpdate.Seconds() * 1000
			n := inc[i].PerUpdate.Seconds() * 1000
			speedup := "-"
			if n > 0 {
				speedup = fmt.Sprintf("%.1fx", o/n)
			}
			fmt.Printf("%-12d %-18.3f %-18.3f %s\n", orig[i].Size, o, n, speedup)
		}
	}
}
