// Command birds-serve serves a birds database over HTTP/JSON: DML through
// the group-commit write pipeline, atomic multi-relation queries, DDL for
// base tables and updatable views, and admin endpoints (flush, checkpoint,
// stats). Every client session is multiplexed onto one batcher, so N
// concurrent writers coalesce into single view-maintenance passes and —
// with -durable — single WAL fsyncs.
//
//	$ birds-serve -addr :8344 -durable ./data -fsync flush
//
// A 200 from POST /exec means the transaction's batch has flushed: its
// effects are visible to all subsequent reads and (with -durable) its WAL
// record is on disk. On SIGTERM/SIGINT the server stops accepting, lets
// in-flight requests finish, flushes the remaining batch and writes a
// final checkpoint before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"birds"
	"birds/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "birds-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8344", "listen address")
	batchSize := flag.Int("batch-size", 64,
		"group-commit batch size: flush after this many admitted transactions (1 serves unbatched, every write flushes alone)")
	flushInterval := flag.Duration("flush-interval", server.DefaultFlushInterval,
		"flush a partially filled batch this long after its first admission (bounds commit latency under low traffic)")
	timeout := flag.Duration("timeout", server.DefaultRequestTimeout,
		"per-request timeout, including the wait for the transaction's flush")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "request body size cap in bytes")
	maxInflight := flag.Int("max-inflight", server.DefaultMaxInflight,
		"shed data-plane requests beyond this many in flight with 503 + Retry-After (negative disables shedding)")
	heartbeat := flag.Duration("heartbeat", server.DefaultHeartbeat,
		"idle-ping interval of GET /subscribe streams (negative disables pings)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"graceful-shutdown deadline on SIGTERM/SIGINT: in-flight requests get this long before the final flush and checkpoint")
	durable := flag.String("durable", "",
		"write-ahead-log directory: recover it on boot if it holds durable state, else start empty with durability enabled")
	fsync := flag.String("fsync", "flush",
		"WAL fsync mode with -durable: off, commit (every record), or flush (one fsync per group-commit batch)")
	segmentBytes := flag.Int64("wal-segment-bytes", 0,
		"WAL segment rotation threshold with -durable: 0 selects the default, negative keeps one unbounded segment")
	addrFile := flag.String("addr-file", "",
		"write the bound listen address to this file once serving (for test harnesses using -addr :0)")
	flag.Parse()

	db, err := openDB(*durable, *fsync, *segmentBytes)
	if err != nil {
		return err
	}
	defer db.Close()

	srv := server.New(db, server.Config{
		BatchSize:      *batchSize,
		FlushInterval:  *flushInterval,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxInflight:    *maxInflight,
		Heartbeat:      *heartbeat,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("birds-serve: listening on %s (batch-size=%d, flush-interval=%s, durable=%v)\n",
		ln.Addr(), *batchSize, *flushInterval, *durable != "")
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("birds-serve: shutting down (drain, flush, checkpoint)")

	// Stop accepting, let in-flight requests finish (bounded), then flush
	// the remaining batch and checkpoint — every acknowledged AND every
	// admitted-but-unflushed transaction commits before exit.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Subscription streams never end on their own; end them so Shutdown's
	// wait for in-flight handlers can finish.
	srv.DisconnectSubscribers()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "birds-serve: shutdown:", err)
	}
	return srv.Drain()
}

// openDB boots the database: plain in-memory without -durable; with it,
// recover the directory's durable state or enable durability on a fresh
// directory (the birds-shell boot pattern).
func openDB(dir, fsync string, segmentBytes int64) (*birds.DB, error) {
	if dir == "" {
		return birds.NewDB(), nil
	}
	syncMode, err := birds.ParseSyncMode(fsync)
	if err != nil {
		return nil, err
	}
	if birds.HasDurableState(dir) {
		db, stats, err := birds.Recover(dir)
		if err != nil {
			return nil, fmt.Errorf("recover %s: %w", dir, err)
		}
		fmt.Printf("birds-serve: recovered %s: checkpoint lsn=%d, %d record(s) replayed, torn tail=%v\n",
			dir, stats.CheckpointLSN, stats.Replayed, stats.TornTail)
		return db, nil
	}
	db := birds.NewDB()
	if err := db.EnableDurability(birds.DurabilityOptions{Dir: dir, Sync: syncMode, SegmentBytes: segmentBytes}); err != nil {
		return nil, err
	}
	return db, nil
}
