// Command birds is the compiler CLI: it reads a Datalog putback program,
// runs the validation algorithm (Algorithm 1 of the paper), prints the
// derived or confirmed view definition, and optionally emits the
// incrementalized ∂put program and the compiled SQL trigger program.
//
// Usage:
//
//	birds -f strategy.dtl [-expected-get get.dtl] [-inc] [-sql out.sql]
//	cat strategy.dtl | birds
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"birds"
)

func main() {
	var (
		file     = flag.String("f", "", "putback program file (default: stdin)")
		getFile  = flag.String("expected-get", "", "file with the expected view definition rules")
		emitInc  = flag.Bool("inc", false, "print the incrementalized ∂put program")
		sqlOut   = flag.String("sql", "", "write the compiled SQL program to this file ('-' for stdout)")
		trials   = flag.Int("trials", 3000, "randomized oracle trials")
		budget   = flag.Int("budget", 150000, "exhaustive/guided oracle budget")
		validate = flag.Bool("validate", true, "run the validation algorithm")
	)
	flag.Parse()

	src, err := readSource(*file)
	if err != nil {
		fatal(err)
	}
	strategy, err := birds.Load(src)
	if err != nil {
		fatal(err)
	}
	class := strategy.Class()
	fmt.Printf("program: %d rules, view %s\n", strategy.Program().LOC(), strategy.Program().View.Name)
	fmt.Printf("fragment: LVGN-Datalog=%v NR-Datalog=%v\n", class.LVGN(), class.NRDatalog())
	for _, v := range class.Violations {
		fmt.Printf("  note: %s\n", v)
	}

	var getRules []*birds.Rule
	if *getFile != "" {
		data, err := os.ReadFile(*getFile)
		if err != nil {
			fatal(err)
		}
		if getRules, err = birds.ParseRules(string(data)); err != nil {
			fatal(err)
		}
	}

	if *validate {
		opts := birds.Options{Oracle: birds.OracleConfig{
			MaxTuples:        3,
			RandomTrials:     *trials,
			ExhaustiveBudget: *budget,
			GuideBudget:      *budget,
			Seed:             1,
		}}
		res, err := strategy.ValidateWith(getRules, opts)
		if err != nil {
			fatal(err)
		}
		if !res.Valid {
			fmt.Printf("INVALID: %s check failed: %s\n", res.Failure.Pass, res.Failure.Detail)
			if res.Failure.Witness != nil {
				fmt.Printf("counterexample instance:\n%s", res.Failure.Witness)
			}
			os.Exit(1)
		}
		origin := "derived"
		if res.UsedExpected {
			origin = "confirmed expected"
		}
		fmt.Printf("VALID (%.3fs, bounded oracle)\nview definition (%s):\n", res.Elapsed.Seconds(), origin)
		for _, r := range res.Get {
			fmt.Printf("  %s\n", r)
		}
		getRules = res.Get
	}

	if *emitInc {
		dput, err := strategy.Incrementalize()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("incrementalized program (∂put):\n%s", dput)
		incSQL, err := strategy.CompileIncrementalSQL()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("incrementalized trigger program: %d bytes (use -sql for the original)\n", len(incSQL))
	}

	if *sqlOut != "" {
		if getRules == nil {
			fatal(fmt.Errorf("birds: -sql requires a view definition (enable -validate or pass -expected-get)"))
		}
		sql, err := strategy.CompileSQL(getRules)
		if err != nil {
			fatal(err)
		}
		if *sqlOut == "-" {
			fmt.Print(sql)
		} else if err := os.WriteFile(*sqlOut, []byte(sql), 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Printf("compiled SQL written to %s (%d bytes)\n", *sqlOut, len(sql))
		}
	}
}

func readSource(file string) (string, error) {
	if file == "" {
		data, err := io.ReadAll(os.Stdin)
		return string(data), err
	}
	data, err := os.ReadFile(file)
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "birds:", err)
	os.Exit(2)
}
