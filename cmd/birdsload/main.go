// Command birdsload is the load generator for birds-serve: N concurrent
// sessions drive coalescing write streams through POST /exec and the tool
// reports throughput and latency percentiles per concurrency level.
//
//	$ birds-serve -addr :8344 -durable ./data -fsync flush &
//	$ birdsload -addr 127.0.0.1:8344 -setup -sessions 1,8,64 -writes 500 -json BENCH_serve.json
//
// Each session writes into a private id range of the shared items table:
// write i inserts a fresh hot row and deletes the previous one — the
// steady-state stream of the DML maintenance benchmark, where group commit
// coalesces consecutive writes into small net deltas. Every write is an
// acknowledged transaction: the request returns only after the batch
// holding it has flushed (and, on a durable server, fsynced per the
// server's mode), so the measured latency is commit latency, not
// enqueue latency.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type result struct {
	Sessions      int     `json:"sessions"`
	WritesPerSess int     `json:"writes_per_session"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Retries       int     `json:"retries"`
	Shed          int     `json:"shed"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50us         float64 `json:"p50_us"`
	P95us         float64 `json:"p95_us"`
	P99us         float64 `json:"p99_us"`
	Flushes       uint64  `json:"flushes"`
	Admitted      uint64  `json:"admitted"`
	CoalescedRows uint64  `json:"coalesced_rows"`
	TxnsPerFlush  float64 `json:"txns_per_flush"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "birdsload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8344", "server address (host:port)")
	sessions := flag.String("sessions", "1,8,64", "comma-separated sweep of concurrent session counts")
	writes := flag.Int("writes", 500, "acknowledged write transactions per session")
	setup := flag.Bool("setup", false, "create the items table and luxury view fixture first (idempotent only on a fresh server)")
	retries := flag.Int("max-retries", 5, "retry budget per write for transient failures (connection errors, 503 shed/overload)")
	jsonOut := flag.String("json", "", "write the results array to this file")
	label := flag.String("label", "", "label recorded with each result (e.g. batched/unbatched)")
	flag.Parse()

	base := "http://" + *addr
	if err := waitHealthy(base, 5*time.Second); err != nil {
		return err
	}
	if *setup {
		if err := setupFixture(base); err != nil {
			return fmt.Errorf("setup: %w", err)
		}
	}

	var levels []int
	for _, f := range strings.Split(*sessions, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -sessions entry %q", f)
		}
		levels = append(levels, n)
	}

	var results []any
	idBase := 1_000_000 // keep sweep points in disjoint id ranges
	for _, n := range levels {
		res, err := sweep(base, n, *writes, idBase, *retries)
		if err != nil {
			return err
		}
		idBase += 2 * n * (*writes + 2)
		fmt.Printf("sessions=%-3d writes/sess=%-5d throughput=%8.0f req/s  p50=%7.0fµs p95=%7.0fµs p99=%7.0fµs  txns/flush=%.1f  retries=%d shed=%d errs=%d\n",
			n, *writes, res.ThroughputRPS, res.P50us, res.P95us, res.P99us, res.TxnsPerFlush, res.Retries, res.Shed, res.Errors)
		if *label != "" {
			results = append(results, struct {
				Label string `json:"label"`
				result
			}{*label, res})
		} else {
			results = append(results, res)
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
	}
	return nil
}

// sweep runs one concurrency level: n sessions, each issuing `writes`
// acknowledged transactions into a private id range.
func sweep(base string, n, writes, idBase, maxRetries int) (result, error) {
	// One pooled connection per session: the default transport keeps only
	// two idle connections per host, which would turn a 64-session sweep
	// into a TCP re-dial storm and measure the dialer instead of the
	// server.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        n + 8,
		MaxIdleConnsPerHost: n + 8,
	}}
	bs, err := batcherStats(base)
	if err != nil {
		return result{}, err
	}

	lat := make([][]time.Duration, n)
	errCounts := make([]int, n)
	retryCounts := make([]int, n)
	shedCounts := make([]int, n)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			sess := fmt.Sprintf("load-%d", w)
			lo := idBase + 2*w*(writes+2)
			lat[w] = make([]time.Duration, 0, writes)
			for i := 0; i < writes; i++ {
				id := lo + i
				stmts := []map[string]any{{
					"op": "insert", "target": "items",
					"row": []any{id, fmt.Sprintf("hot%d", id), 1500},
				}}
				if i > 0 {
					stmts = append(stmts, map[string]any{
						"op": "delete", "target": "items",
						"where": []map[string]any{{"col": "iid", "op": "=", "val": id - 1}},
					})
				}
				// Latency spans the whole acked attempt, backoffs included:
				// under shedding the client-observed commit latency is what a
				// real session would see.
				t0 := time.Now()
				r, s, err := execRetry(client, base+"/exec",
					map[string]any{"stmts": stmts, "session": sess}, maxRetries, rng)
				retryCounts[w] += r
				shedCounts[w] += s
				if err != nil {
					errCounts[w]++
					continue
				}
				lat[w] = append(lat[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := batcherStats(base)
	if err != nil {
		return result{}, err
	}

	var all []time.Duration
	errs, nRetries, nShed := 0, 0, 0
	for w := range lat {
		all = append(all, lat[w]...)
		errs += errCounts[w]
		nRetries += retryCounts[w]
		nShed += shedCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := result{
		Sessions:      n,
		WritesPerSess: writes,
		Requests:      len(all),
		Errors:        errs,
		Retries:       nRetries,
		Shed:          nShed,
		WallMS:        float64(wall.Microseconds()) / 1e3,
		Flushes:       after.Flushes - bs.Flushes,
		Admitted:      after.Admitted - bs.Admitted,
		CoalescedRows: after.CoalescedRows - bs.CoalescedRows,
	}
	if len(all) > 0 {
		res.ThroughputRPS = float64(len(all)) / wall.Seconds()
		res.P50us = float64(pct(all, 0.50).Microseconds())
		res.P95us = float64(pct(all, 0.95).Microseconds())
		res.P99us = float64(pct(all, 0.99).Microseconds())
	}
	if res.Flushes > 0 {
		res.TxnsPerFlush = float64(res.Admitted) / float64(res.Flushes)
	}
	return res, nil
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// setupFixture creates the DML-maintenance fixture over the wire: the
// items base table and the luxury selection view (registered with its
// expected get, skipping oracle validation — this is a load fixture).
func setupFixture(base string) error {
	client := &http.Client{}
	if err := post(client, base+"/ddl", map[string]any{
		"source": "source items(iid:int, iname:string, price:int).",
	}, nil); err != nil {
		return err
	}
	return post(client, base+"/ddl", map[string]any{
		"view": `
source items(iid:int, iname:string, price:int).
view luxury(iid:int, iname:string, price:int).
-items(I,N,P) :- items(I,N,P), P > 1000, not luxury(I,N,P).
`,
		"incremental":     true,
		"skip_validation": true,
		"expected_get":    []string{"luxury(I,N,P) :- items(I,N,P), P > 1000."},
	}, nil)
}

func post(client *http.Client, url string, body any, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	code, _, data, err := doPost(client, url, buf)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, code, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// doPost issues one POST and reports the status code, the Retry-After
// header, and the body. err is non-nil only for transport failures.
func doPost(client *http.Client, url string, buf []byte) (int, string, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), data, nil
}

// execRetry posts a write with a transient-failure budget: transport errors
// (connection reset, refused) and 503 (the server shedding load or riding
// out a degraded spell) are retried with capped exponential backoff plus
// jitter, sleeping at least Retry-After when the server names a delay. Any
// other non-200 is permanent. Returns the retries consumed and the 503s
// absorbed alongside the final error, so the sweep can report how hard the
// server pushed back even when every write eventually lands.
func execRetry(client *http.Client, url string, body any, maxRetries int, rng *rand.Rand) (retries, shed int, err error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	backoff := 5 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for attempt := 0; ; attempt++ {
		code, retryAfter, data, err := doPost(client, url, buf)
		if err == nil {
			if code == http.StatusOK {
				return retries, shed, nil
			}
			if code != http.StatusServiceUnavailable {
				return retries, shed, fmt.Errorf("%s: HTTP %d: %s", url, code, bytes.TrimSpace(data))
			}
			shed++
		}
		if attempt == maxRetries {
			if err == nil {
				err = fmt.Errorf("%s: HTTP %d after %d retries: %s", url, code, retries, bytes.TrimSpace(data))
			}
			return retries, shed, err
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		if s, perr := strconv.Atoi(strings.TrimSpace(retryAfter)); perr == nil && s > 0 {
			if ra := time.Duration(s) * time.Second; ra > sleep {
				sleep = ra
			}
		}
		time.Sleep(sleep)
		retries++
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

type batcherCounters struct {
	Flushes       uint64 `json:"flushes"`
	Admitted      uint64 `json:"admitted"`
	CoalescedRows uint64 `json:"coalesced_rows"`
}

func batcherStats(base string) (batcherCounters, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return batcherCounters{}, err
	}
	defer resp.Body.Close()
	var payload struct {
		Batch batcherCounters `json:"batcher"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return batcherCounters{}, err
	}
	return payload.Batch, nil
}

func waitHealthy(base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", base, d)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
