// Command birdsload is the load generator for birds-serve: N concurrent
// sessions drive coalescing write streams through POST /exec and the tool
// reports throughput and latency percentiles per concurrency level.
//
//	$ birds-serve -addr :8344 -durable ./data -fsync flush &
//	$ birdsload -addr 127.0.0.1:8344 -setup -sessions 1,8,64 -writes 500 -json BENCH_serve.json
//
// Each session writes into a private id range of the shared items table:
// write i inserts a fresh hot row and deletes the previous one — the
// steady-state stream of the DML maintenance benchmark, where group commit
// coalesces consecutive writes into small net deltas. Every write is an
// acknowledged transaction: the request returns only after the batch
// holding it has flushed (and, on a durable server, fsynced per the
// server's mode), so the measured latency is commit latency, not
// enqueue latency.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type result struct {
	Sessions      int     `json:"sessions"`
	WritesPerSess int     `json:"writes_per_session"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Retries       int     `json:"retries"`
	Shed          int     `json:"shed"`
	WallMS        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50us         float64 `json:"p50_us"`
	P95us         float64 `json:"p95_us"`
	P99us         float64 `json:"p99_us"`
	Flushes       uint64  `json:"flushes"`
	Admitted      uint64  `json:"admitted"`
	CoalescedRows uint64  `json:"coalesced_rows"`
	TxnsPerFlush  float64 `json:"txns_per_flush"`

	// CDC delta-latency measurement (-subscribe N): N concurrent
	// GET /subscribe/luxury streams record when each inserted row's delta
	// event arrives. Delivery latency is arrival minus the write's ack
	// (the CDC fan-out cost on top of commit — the headline number);
	// end-to-end latency is arrival minus the write's POST start (what a
	// dashboard behind the stream actually waits after the client acts).
	Subscribers   int     `json:"subscribers,omitempty"`
	DeltaSamples  int     `json:"delta_samples,omitempty"`
	DeliveryP50us float64 `json:"delivery_p50_us,omitempty"`
	DeliveryP95us float64 `json:"delivery_p95_us,omitempty"`
	DeliveryP99us float64 `json:"delivery_p99_us,omitempty"`
	E2EP50us      float64 `json:"e2e_p50_us,omitempty"`
	E2EP95us      float64 `json:"e2e_p95_us,omitempty"`
	E2EP99us      float64 `json:"e2e_p99_us,omitempty"`
	SubResyncs    int     `json:"sub_resyncs,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "birdsload:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8344", "server address (host:port)")
	sessions := flag.String("sessions", "1,8,64", "comma-separated sweep of concurrent session counts")
	writes := flag.Int("writes", 500, "acknowledged write transactions per session")
	setup := flag.Bool("setup", false, "create the items table and luxury view fixture first (idempotent only on a fresh server)")
	retries := flag.Int("max-retries", 5, "retry budget per write for transient failures (connection errors, 503 shed/overload)")
	subscribe := flag.Int("subscribe", 0,
		"open this many GET /subscribe/luxury CDC streams during each sweep and report delta-latency percentiles")
	subBuffer := flag.Int("subscribe-buffer", 1024, "per-stream subscription buffer in events")
	jsonOut := flag.String("json", "", "write the results array to this file")
	label := flag.String("label", "", "label recorded with each result (e.g. batched/unbatched)")
	flag.Parse()

	base := "http://" + *addr
	if err := waitHealthy(base, 5*time.Second); err != nil {
		return err
	}
	if *setup {
		if err := setupFixture(base); err != nil {
			return fmt.Errorf("setup: %w", err)
		}
	}

	var levels []int
	for _, f := range strings.Split(*sessions, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -sessions entry %q", f)
		}
		levels = append(levels, n)
	}

	var results []any
	idBase := 1_000_000 // keep sweep points in disjoint id ranges
	for _, n := range levels {
		res, err := sweep(base, n, *writes, idBase, *retries, *subscribe, *subBuffer)
		if err != nil {
			return err
		}
		idBase += 2 * n * (*writes + 2)
		fmt.Printf("sessions=%-3d writes/sess=%-5d throughput=%8.0f req/s  p50=%7.0fµs p95=%7.0fµs p99=%7.0fµs  txns/flush=%.1f  retries=%d shed=%d errs=%d\n",
			n, *writes, res.ThroughputRPS, res.P50us, res.P95us, res.P99us, res.TxnsPerFlush, res.Retries, res.Shed, res.Errors)
		if *label != "" {
			results = append(results, struct {
				Label string `json:"label"`
				result
			}{*label, res})
		} else {
			results = append(results, res)
		}
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*jsonOut, append(buf, '\n'), 0o644)
	}
	return nil
}

// deltaTracker correlates write acknowledgments with CDC event arrivals
// across the load goroutines and every subscriber stream. An inserted id
// yields one (delivery, e2e) sample per subscriber that sees it; event
// arrivals racing ahead of the ack response (common — the hub publishes
// under the same lock that flushes the batch) park in pending until the
// ack lands and then clamp to zero delivery latency.
type deltaTracker struct {
	mu       sync.Mutex
	start    map[int]time.Time   // POST start per inserted id
	ack      map[int]time.Time   // ack time per inserted id
	pending  map[int][]time.Time // event arrivals seen before the ack
	delivery []time.Duration
	e2e      []time.Duration
	resyncs  int
}

func newDeltaTracker() *deltaTracker {
	return &deltaTracker{
		start:   make(map[int]time.Time),
		ack:     make(map[int]time.Time),
		pending: make(map[int][]time.Time),
	}
}

func (t *deltaTracker) preWrite(id int, at time.Time) {
	t.mu.Lock()
	t.start[id] = at
	t.mu.Unlock()
}

func (t *deltaTracker) sampleLocked(id int, arrival time.Time) {
	d := arrival.Sub(t.ack[id])
	if d < 0 {
		d = 0
	}
	t.delivery = append(t.delivery, d)
	t.e2e = append(t.e2e, arrival.Sub(t.start[id]))
}

func (t *deltaTracker) acked(id int, at time.Time) {
	t.mu.Lock()
	t.ack[id] = at
	for _, arrival := range t.pending[id] {
		t.sampleLocked(id, arrival)
	}
	delete(t.pending, id)
	t.mu.Unlock()
}

func (t *deltaTracker) arrived(id int, at time.Time) {
	t.mu.Lock()
	if _, ok := t.start[id]; !ok { // not one of ours (another sweep level)
		t.mu.Unlock()
		return
	}
	if _, ok := t.ack[id]; ok {
		t.sampleLocked(id, at)
	} else {
		t.pending[id] = append(t.pending[id], at)
	}
	t.mu.Unlock()
}

func (t *deltaTracker) samples() (delivery, e2e []time.Duration, resyncs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]time.Duration(nil), t.delivery...), append([]time.Duration(nil), t.e2e...), t.resyncs
}

// subscriber tails /subscribe/luxury and feeds insert-row arrival times
// into the tracker. It returns when ctx is canceled or the stream ends.
func subscriber(ctx context.Context, base string, buffer int, tr *deltaTracker, ready *sync.WaitGroup) error {
	live := false
	markLive := func() {
		if !live {
			live = true
			ready.Done()
		}
	}
	defer markLive() // never leave the sweep waiting on a failed stream
	url := fmt.Sprintf("%s/subscribe/luxury?buffer=%d&policy=drop", base, buffer)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	client := &http.Client{} // dedicated connection: streams must not share the writers' pool
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("subscribe: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		var ev struct {
			Type   string  `json:"type"`
			Insert [][]any `json:"insert"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return err
		}
		markLive() // the snapshot line arrived: the stream is live
		switch ev.Type {
		case "delta":
			now := time.Now()
			for _, row := range ev.Insert {
				if len(row) == 0 {
					continue
				}
				if id, ok := row[0].(float64); ok {
					tr.arrived(int(id), now)
				}
			}
		case "resync":
			tr.mu.Lock()
			tr.resyncs++
			tr.mu.Unlock()
		}
	}
	return sc.Err()
}

// sweep runs one concurrency level: n sessions, each issuing `writes`
// acknowledged transactions into a private id range; with nSubs > 0,
// nSubs CDC streams measure delta latency alongside.
func sweep(base string, n, writes, idBase, maxRetries, nSubs, subBuffer int) (result, error) {
	// One pooled connection per session: the default transport keeps only
	// two idle connections per host, which would turn a 64-session sweep
	// into a TCP re-dial storm and measure the dialer instead of the
	// server.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        n + 8,
		MaxIdleConnsPerHost: n + 8,
	}}
	bs, err := batcherStats(base)
	if err != nil {
		return result{}, err
	}

	// Open the CDC streams first and wait until every one has its
	// snapshot: a stream that connects mid-run would miss early deltas
	// and skew the latency tail.
	var tr *deltaTracker
	subCtx, subCancel := context.WithCancel(context.Background())
	defer subCancel()
	var subWG sync.WaitGroup
	subErrs := make([]error, nSubs)
	if nSubs > 0 {
		tr = newDeltaTracker()
		var ready sync.WaitGroup
		ready.Add(nSubs)
		for i := 0; i < nSubs; i++ {
			subWG.Add(1)
			go func(i int) {
				defer subWG.Done()
				subErrs[i] = subscriber(subCtx, base, subBuffer, tr, &ready)
			}(i)
		}
		ready.Wait()
	}

	lat := make([][]time.Duration, n)
	errCounts := make([]int, n)
	retryCounts := make([]int, n)
	shedCounts := make([]int, n)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			sess := fmt.Sprintf("load-%d", w)
			lo := idBase + 2*w*(writes+2)
			lat[w] = make([]time.Duration, 0, writes)
			for i := 0; i < writes; i++ {
				id := lo + i
				stmts := []map[string]any{{
					"op": "insert", "target": "items",
					"row": []any{id, fmt.Sprintf("hot%d", id), 1500},
				}}
				if i > 0 {
					stmts = append(stmts, map[string]any{
						"op": "delete", "target": "items",
						"where": []map[string]any{{"col": "iid", "op": "=", "val": id - 1}},
					})
				}
				// Latency spans the whole acked attempt, backoffs included:
				// under shedding the client-observed commit latency is what a
				// real session would see.
				t0 := time.Now()
				if tr != nil {
					tr.preWrite(id, t0)
				}
				r, s, err := execRetry(client, base+"/exec",
					map[string]any{"stmts": stmts, "session": sess}, maxRetries, rng)
				retryCounts[w] += r
				shedCounts[w] += s
				if err != nil {
					errCounts[w]++
					continue
				}
				if tr != nil {
					tr.acked(id, time.Now())
				}
				lat[w] = append(lat[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	// Let in-flight delta events drain to the streams: stop once the
	// sample count goes quiet (or after a hard cap).
	if tr != nil {
		last, lastChange := -1, time.Now()
		for time.Since(lastChange) < 300*time.Millisecond && time.Since(start) < wall+5*time.Second {
			d, _, _ := tr.samples()
			if len(d) != last {
				last, lastChange = len(d), time.Now()
			}
			time.Sleep(20 * time.Millisecond)
		}
		subCancel()
		subWG.Wait()
	}

	after, err := batcherStats(base)
	if err != nil {
		return result{}, err
	}

	var all []time.Duration
	errs, nRetries, nShed := 0, 0, 0
	for w := range lat {
		all = append(all, lat[w]...)
		errs += errCounts[w]
		nRetries += retryCounts[w]
		nShed += shedCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := result{
		Sessions:      n,
		WritesPerSess: writes,
		Requests:      len(all),
		Errors:        errs,
		Retries:       nRetries,
		Shed:          nShed,
		WallMS:        float64(wall.Microseconds()) / 1e3,
		Flushes:       after.Flushes - bs.Flushes,
		Admitted:      after.Admitted - bs.Admitted,
		CoalescedRows: after.CoalescedRows - bs.CoalescedRows,
	}
	if len(all) > 0 {
		res.ThroughputRPS = float64(len(all)) / wall.Seconds()
		res.P50us = float64(pct(all, 0.50).Microseconds())
		res.P95us = float64(pct(all, 0.95).Microseconds())
		res.P99us = float64(pct(all, 0.99).Microseconds())
	}
	if res.Flushes > 0 {
		res.TxnsPerFlush = float64(res.Admitted) / float64(res.Flushes)
	}
	if tr != nil {
		delivery, e2e, resyncs := tr.samples()
		sort.Slice(delivery, func(i, j int) bool { return delivery[i] < delivery[j] })
		sort.Slice(e2e, func(i, j int) bool { return e2e[i] < e2e[j] })
		res.Subscribers = nSubs
		res.DeltaSamples = len(delivery)
		res.SubResyncs = resyncs
		if len(delivery) > 0 {
			res.DeliveryP50us = float64(pct(delivery, 0.50).Microseconds())
			res.DeliveryP95us = float64(pct(delivery, 0.95).Microseconds())
			res.DeliveryP99us = float64(pct(delivery, 0.99).Microseconds())
			res.E2EP50us = float64(pct(e2e, 0.50).Microseconds())
			res.E2EP95us = float64(pct(e2e, 0.95).Microseconds())
			res.E2EP99us = float64(pct(e2e, 0.99).Microseconds())
		}
		for _, err := range subErrs {
			if err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "birdsload: subscriber:", err)
			}
		}
		fmt.Printf("  cdc: subscribers=%d samples=%d delivery p50=%.0fµs p95=%.0fµs p99=%.0fµs  e2e p50=%.0fµs  resyncs=%d\n",
			nSubs, res.DeltaSamples, res.DeliveryP50us, res.DeliveryP95us, res.DeliveryP99us, res.E2EP50us, resyncs)
	}
	return res, nil
}

func pct(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// setupFixture creates the DML-maintenance fixture over the wire: the
// items base table and the luxury selection view (registered with its
// expected get, skipping oracle validation — this is a load fixture).
func setupFixture(base string) error {
	client := &http.Client{}
	if err := post(client, base+"/ddl", map[string]any{
		"source": "source items(iid:int, iname:string, price:int).",
	}, nil); err != nil {
		return err
	}
	return post(client, base+"/ddl", map[string]any{
		"view": `
source items(iid:int, iname:string, price:int).
view luxury(iid:int, iname:string, price:int).
-items(I,N,P) :- items(I,N,P), P > 1000, not luxury(I,N,P).
`,
		"incremental":     true,
		"skip_validation": true,
		"expected_get":    []string{"luxury(I,N,P) :- items(I,N,P), P > 1000."},
	}, nil)
}

func post(client *http.Client, url string, body any, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	code, _, data, err := doPost(client, url, buf)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d: %s", url, code, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// doPost issues one POST and reports the status code, the Retry-After
// header, and the body. err is non-nil only for transport failures.
func doPost(client *http.Client, url string, buf []byte) (int, string, []byte, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), data, nil
}

// execRetry posts a write with a transient-failure budget: transport errors
// (connection reset, refused) and 503 (the server shedding load or riding
// out a degraded spell) are retried with capped exponential backoff plus
// jitter, sleeping at least Retry-After when the server names a delay. Any
// other non-200 is permanent. Returns the retries consumed and the 503s
// absorbed alongside the final error, so the sweep can report how hard the
// server pushed back even when every write eventually lands.
func execRetry(client *http.Client, url string, body any, maxRetries int, rng *rand.Rand) (retries, shed int, err error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, 0, err
	}
	backoff := 5 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for attempt := 0; ; attempt++ {
		code, retryAfter, data, err := doPost(client, url, buf)
		if err == nil {
			if code == http.StatusOK {
				return retries, shed, nil
			}
			if code != http.StatusServiceUnavailable {
				return retries, shed, fmt.Errorf("%s: HTTP %d: %s", url, code, bytes.TrimSpace(data))
			}
			shed++
		}
		if attempt == maxRetries {
			if err == nil {
				err = fmt.Errorf("%s: HTTP %d after %d retries: %s", url, code, retries, bytes.TrimSpace(data))
			}
			return retries, shed, err
		}
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)))
		if s, perr := strconv.Atoi(strings.TrimSpace(retryAfter)); perr == nil && s > 0 {
			if ra := time.Duration(s) * time.Second; ra > sleep {
				sleep = ra
			}
		}
		time.Sleep(sleep)
		retries++
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

type batcherCounters struct {
	Flushes       uint64 `json:"flushes"`
	Admitted      uint64 `json:"admitted"`
	CoalescedRows uint64 `json:"coalesced_rows"`
}

func batcherStats(base string) (batcherCounters, error) {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return batcherCounters{}, err
	}
	defer resp.Body.Close()
	var payload struct {
		Batch batcherCounters `json:"batcher"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return batcherCounters{}, err
	}
	return payload.Batch, nil
}

func waitHealthy(base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", base, d)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
