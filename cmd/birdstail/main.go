// Command birdstail tails a relation's change-data-capture stream over
// HTTP (GET /subscribe/{view} on a birds-serve instance), printing one
// line per visibility point and optionally maintaining a client-side
// mirror of the relation from the snapshot-then-deltas stream.
//
//	$ birdstail -addr 127.0.0.1:8344 -view luxury -mirror
//	snapshot seq=17 rows=3
//	delta    seq=21 +1 -0 (mirror: 4 rows, lag 0)
//	resync   seq=40 rows=9 (fell behind, restarted from snapshot)
//
// The lag printed with each line is how many sequence numbers the stream
// is behind the hub (0 = fully caught up); idle heartbeat pings keep it
// fresh even when the tailed view is quiet.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strings"
)

type wireEvent struct {
	Type   string  `json:"type"`
	View   string  `json:"view"`
	Seq    uint64  `json:"seq"`
	Count  int     `json:"count"`
	Rows   [][]any `json:"rows"`
	Insert [][]any `json:"insert"`
	Delete [][]any `json:"delete"`
	Lag    uint64  `json:"lag"`
	Error  string  `json:"error"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "birdstail:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8344", "birds-serve address")
	view := flag.String("view", "", "relation (table or view) to tail")
	mirror := flag.Bool("mirror", false, "maintain a client-side mirror and print its row count")
	events := flag.Int("events", 0, "exit after this many delta/resync events (0 = run forever)")
	buffer := flag.Int("buffer", 0, "server-side subscription buffer in events (0 = server default)")
	policy := flag.String("policy", "drop", "slow-consumer policy: drop or block")
	quiet := flag.Bool("quiet", false, "suppress ping lines")
	session := flag.String("session", "", "session id to attribute the stream to")
	flag.Parse()
	if *view == "" {
		return fmt.Errorf("-view is required")
	}

	q := url.Values{}
	if *buffer > 0 {
		q.Set("buffer", fmt.Sprint(*buffer))
	}
	if *policy != "" {
		q.Set("policy", *policy)
	}
	if *session != "" {
		q.Set("session", *session)
	}
	u := fmt.Sprintf("http://%s/subscribe/%s", *addr, url.PathEscape(*view))
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := bufio.NewReader(resp.Body).ReadString('\n')
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(body))
	}

	// The mirror is a set of rows keyed by their canonical JSON — the
	// client-side equivalent of the engine's relation, rebuilt from the
	// snapshot and maintained by deltas (and rebuilt again on resync).
	rows := make(map[string]struct{})
	key := func(row []any) string {
		b, _ := json.Marshal(row)
		return string(b)
	}
	rebuild := func(ev wireEvent) {
		clear(rows)
		for _, r := range ev.Rows {
			rows[key(r)] = struct{}{}
		}
	}
	mirrorNote := func() string {
		if !*mirror {
			return ""
		}
		return fmt.Sprintf(" (mirror: %d rows)", len(rows))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	seen := 0
	for sc.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("bad stream line: %w", err)
		}
		switch ev.Type {
		case "snapshot":
			rebuild(ev)
			fmt.Printf("snapshot seq=%d rows=%d%s\n", ev.Seq, ev.Count, mirrorNote())
		case "resync":
			rebuild(ev)
			seen++
			fmt.Printf("resync   seq=%d rows=%d (fell behind or view rebuilt, restarted from snapshot)%s\n",
				ev.Seq, ev.Count, mirrorNote())
		case "delta":
			for _, r := range ev.Delete {
				delete(rows, key(r))
			}
			for _, r := range ev.Insert {
				rows[key(r)] = struct{}{}
			}
			seen++
			fmt.Printf("delta    seq=%d +%d -%d%s\n", ev.Seq, len(ev.Insert), len(ev.Delete), mirrorNote())
		case "ping":
			if !*quiet {
				fmt.Printf("ping     seq=%d lag=%d\n", ev.Seq, ev.Lag)
			}
		case "error":
			return fmt.Errorf("stream error: %s", ev.Error)
		}
		if *events > 0 && seen >= *events {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("stream ended (server shut down?)")
}
