package birds_test

import (
	"fmt"
	"log"

	"birds"
)

// The union view of the paper's Example 3.1: load a strategy, validate it
// (deriving the view definition), and inspect the result.
func Example_validate() {
	s, err := birds.Load(`
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.ValidateWith(nil, birds.Options{Oracle: birds.OracleConfig{
		MaxTuples: 3, RandomTrials: 600, ExhaustiveBudget: 20000, GuideBudget: 20000, Seed: 1,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid:", res.Valid)
	fmt.Println("LVGN:", s.Class().LVGN())
	for _, r := range res.Get {
		fmt.Println(r)
	}
	// Output:
	// valid: true
	// LVGN: true
	// v(Y1) :- r1(Y1).
	// v(Y1) :- r2(Y1).
}

// Updating through a view on the in-memory engine: the strategy routes the
// insertion to r1 and the deletion to whichever table holds the tuple.
func Example_engine() {
	const strategy = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`
	db := birds.NewDB()
	decls, _ := birds.Parse("source r1(a:int).\nsource r2(a:int).\nview x(a:int).")
	for _, d := range decls.Sources {
		if err := db.CreateTable(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.LoadTable("r1", []birds.Tuple{{birds.Int(1)}}); err != nil {
		log.Fatal(err)
	}
	if err := db.LoadTable("r2", []birds.Tuple{{birds.Int(2)}, {birds.Int(4)}}); err != nil {
		log.Fatal(err)
	}
	get, _ := birds.ParseRules("v(X) :- r1(X).\nv(X) :- r2(X).")
	if _, err := db.CreateView(strategy, birds.ViewOptions{
		Incremental: true, SkipValidation: true, ExpectedGet: get,
	}); err != nil {
		log.Fatal(err)
	}

	if err := db.ExecSQL("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;"); err != nil {
		log.Fatal(err)
	}
	r1, _ := db.Rel("r1")
	r2, _ := db.Rel("r2")
	fmt.Println("r1 =", r1)
	fmt.Println("r2 =", r2)
	// Output:
	// r1 = {(1), (3)}
	// r2 = {(4)}
}

// Incrementalizing a strategy shows the ∂put program of the paper's
// Section 5: the view literals are replaced by view-delta literals.
func Example_incrementalize() {
	s, err := birds.Load(`
source r(a:int, b:int).
view v(a:int, b:int).
_|_ :- v(X,Y), not Y > 2.
+r(X,Y) :- v(X,Y), not r(X,Y).
m(X,Y) :- r(X,Y), Y > 2.
-r(X,Y) :- m(X,Y), not v(X,Y).
`)
	if err != nil {
		log.Fatal(err)
	}
	dput, err := s.Incrementalize()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range dput.NonConstraintRules() {
		fmt.Println(r)
	}
	// Output:
	// +r(X, Y) :- +v(X, Y), not r(X, Y).
	// -r(X, Y) :- r(X, Y), Y > 2, -v(X, Y).
}
