package birds_test

import (
	"strings"
	"testing"

	"birds"
)

func TestPublicAPIGeneralIncrementalization(t *testing.T) {
	// A join view outside LVGN: Lemma 5.2 must refuse, the general
	// Figure 7 pipeline must work.
	s, err := birds.Load(`
source a(x:int, q:int).
source b(t:int, x:int).
view j(t:int, x:int, q:int).
_|_ :- a(X,Q1), a(X,Q2), not Q1 = Q2.
_|_ :- b(T,X), not a(X,_).
_|_ :- j(T1,X,Q1), j(T2,X,Q2), not Q1 = Q2.
vb(T,X) :- j(T,X,_).
va(X) :- j(_,X,_).
aq(X,Q) :- j(_,X,Q).
+b(T,X) :- j(T,X,Q), not b(T,X).
-b(T,X) :- b(T,X), not vb(T,X).
+a(X,Q) :- aq(X,Q), not a(X,Q).
-a(X,Q) :- a(X,Q), va(X), not aq(X,Q).
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Class().LVGN() {
		t.Fatal("join view should be outside LVGN")
	}
	if _, err := s.Incrementalize(); err == nil {
		t.Error("Lemma 5.2 must refuse a non-linear-view program")
	}
	gi, err := s.IncrementalizeGeneral()
	if err != nil {
		t.Fatal(err)
	}
	if gi.DeltaProgram().LOC() == 0 {
		t.Error("general delta program is empty")
	}
	text := gi.DeltaProgram().String()
	if !strings.Contains(text, "+j(") && !strings.Contains(text, "-j(") {
		t.Errorf("delta program should be driven by view deltas:\n%s", text)
	}
}

func TestPublicAPIBinarize(t *testing.T) {
	prog, err := birds.Parse(`
source r(a:int, b:int).
source s(b:int, c:int).
source u(c:int, d:int).
view v(a:int).
wide(A,D) :- r(A,B), s(B,C), u(C,D), not r(D,A), A > 0.
`)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := birds.Binarize(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range bin.Rules {
		atoms := 0
		for _, l := range r.Body {
			if l.Atom != nil {
				atoms++
			}
		}
		if atoms > 2 {
			t.Errorf("binarized rule %q has %d relation atoms", r, atoms)
		}
	}
}

func TestPublicAPIExecSQL(t *testing.T) {
	db := birds.NewDB()
	decls, err := birds.Parse("source r1(a:int).\nsource r2(a:int).\nview x(a:int).")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range decls.Sources {
		if err := db.CreateTable(d); err != nil {
			t.Fatal(err)
		}
	}
	get, err := birds.ParseRules("v(X) :- r1(X).\nv(X) :- r2(X).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateView(unionSrc, birds.ViewOptions{
		Incremental: true, SkipValidation: true, ExpectedGet: get,
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecSQL(`
BEGIN;
INSERT INTO v VALUES (10), (20);
DELETE FROM v WHERE a = 10;
END;
`); err != nil {
		t.Fatal(err)
	}
	v, err := db.Rel("v")
	if err != nil {
		t.Fatal(err)
	}
	if v.Contains(birds.Tuple{birds.Int(10)}) || !v.Contains(birds.Tuple{birds.Int(20)}) {
		t.Errorf("v = %v", v)
	}
	r1, _ := db.Rel("r1")
	if !r1.Contains(birds.Tuple{birds.Int(20)}) {
		t.Errorf("r1 = %v", r1)
	}
}
