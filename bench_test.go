// Benchmarks regenerating the paper's evaluation artifacts:
//
//   - BenchmarkTable1Validation — Table 1: validation time per benchmark
//     view (the "Validation Time (s)" column; run with -bench Table1).
//   - BenchmarkFig6 — Figure 6 (a–d): per-update view-updating time for the
//     original strategy vs the incrementalized one across base-table sizes.
//     The original grows linearly with the base size; the incremental one
//     stays flat — the paper's headline result.
//   - BenchmarkAblation* — design-choice ablations called out in DESIGN.md:
//     delta-rule unfolding inside ∂put, expected-get vs derivation in the
//     validator, and Algorithm 2 transaction merging.
//
// go test -bench=. -benchmem runs everything; cmd/table1 and cmd/fig6 print
// the paper-shaped tables instead.
package birds_test

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"birds"
	"birds/internal/bench"
	"birds/internal/core"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/sat"
	"birds/internal/value"
)

// benchEnvInt reads an integer benchmark tunable from the environment,
// falling back to def when unset or malformed.
func benchEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func benchOracle() sat.Config {
	return sat.Config{
		MaxTuples:        3,
		RandomTrials:     800,
		ExhaustiveBudget: 30000,
		GuideBudget:      30000,
		Seed:             1,
	}
}

// BenchmarkTable1Validation regenerates the validation-time column of
// Table 1, one sub-benchmark per view.
func BenchmarkTable1Validation(b *testing.B) {
	opts := core.Options{Oracle: benchOracle()}
	for _, e := range bench.Table1() {
		if e.Program == "" {
			continue // row 23: aggregation, not expressible
		}
		e := e
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := bench.RunTable1Entry(e, opts)
				if row.Err != nil || !row.Valid {
					b.Fatalf("%s: %v %s", e.Name, row.Err, row.FailureDetail)
				}
			}
		})
	}
}

// BenchmarkTable1ValidationParallel is BenchmarkTable1Validation with the
// witness search inside each validation fanned out over GOMAXPROCS oracle
// workers — the per-entry effect of the parallelism knob.
func BenchmarkTable1ValidationParallel(b *testing.B) {
	oracle := benchOracle()
	oracle.Parallelism = runtime.GOMAXPROCS(0)
	opts := core.Options{Oracle: oracle}
	for _, e := range bench.Table1() {
		if e.Program == "" {
			continue
		}
		e := e
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := bench.RunTable1Entry(e, opts)
				if row.Err != nil || !row.Valid {
					b.Fatalf("%s: %v %s", e.Name, row.Err, row.FailureDetail)
				}
			}
		})
	}
}

// BenchmarkTable1Suite measures the whole 32-view suite end to end,
// sequentially and with the entries validated concurrently.
func BenchmarkTable1Suite(b *testing.B) {
	opts := core.Options{Oracle: benchOracle()}
	check := func(b *testing.B, rows []bench.Table1Row) {
		for _, r := range rows {
			if r.Entry.Program != "" && (r.Err != nil || !r.Valid) {
				b.Fatalf("%s: %v %s", r.Entry.Name, r.Err, r.FailureDetail)
			}
		}
	}
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check(b, bench.RunTable1(opts))
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			check(b, bench.RunTable1Parallel(opts, 0))
		}
	})
}

// fig6Sizes is the benchmark sweep (cmd/fig6 defaults to larger sizes).
var fig6Sizes = []int{10000, 40000, 160000}

// BenchmarkFig6 regenerates the four panels of Figure 6, in both execution
// modes and with the evaluator sequential (seq) vs hash-shard parallel
// (par, GOMAXPROCS workers). The differential harness in internal/bench
// verifies the two produce identical relations.
func BenchmarkFig6(b *testing.B) {
	for _, v := range bench.Fig6Views() {
		v := v
		for _, mode := range []struct {
			name        string
			incremental bool
		}{{"original", false}, {"incremental", true}} {
			for _, par := range []struct {
				name string
				p    int
			}{{"seq", 1}, {"par", -1}} {
				for _, n := range fig6Sizes {
					mode, par, n := mode, par, n
					b.Run(fmt.Sprintf("%s/%s/%s/n=%d", v.Name, mode.name, par.name, n), func(b *testing.B) {
						db, err := bench.SetupFig6(v, n, mode.incremental, 1, par.p)
						if err != nil {
							b.Fatal(err)
						}
						// Warm-up: build the maintained hash indexes.
						for round := 1; round <= 2; round++ {
							for _, txn := range v.Update(n, round) {
								if err := db.Exec(txn...); err != nil {
									b.Fatal(err)
								}
							}
						}
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							for _, txn := range v.Update(n, i+3) {
								if err := db.Exec(txn...); err != nil {
									b.Fatal(err)
								}
							}
						}
					})
				}
			}
		}
	}
}

// BenchmarkDMLMaintenance measures the engine's steady-state table-write
// path with dependent views (a selection and a join) maintained by
// counting IVM, sweeping the base size at a fixed per-transaction delta.
// The expected curve is flat: growing the base 10× must not grow the
// per-write cost materially (the acceptance bound is < 2×), because every
// write propagates O(|Δ|) join work instead of rematerializing O(|DB|)
// views. CI emits this benchmark as the BENCH_main.json artifact.
func BenchmarkDMLMaintenance(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			db, err := bench.SetupDMLMaintenance(n, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bench.DMLMaintenanceTxn(db, n, i+1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			for _, vn := range bench.DMLMaintenanceViews() {
				if db.Stale(vn) {
					b.Fatalf("view %s fell off the incremental path", vn)
				}
			}
		})
	}
}

// BenchmarkBatchedDML measures the group-commit write pipeline: steady-
// state write transactions (fixed two-tuple delta each) admitted through
// an engine.Batcher, sweeping the batch size at a fixed base size. batch=1
// flushes — and therefore runs one full view-maintenance pass — per write;
// larger batches run ONE pass per batch. Two streams: "coalesce" is the
// PR 3 DMLMaintenance stream, where transaction i's insert and i+1's
// delete cancel in the staged buffer (the full group-commit effect —
// coalescing plus pass amortization); "window" never cancels inside a
// batch, isolating pure pass amortization. CI emits this benchmark as the
// BENCH_batch.json artifact; the acceptance bound for this PR is
// coalesce/batch=64 ≥ 3× cheaper per write than batch=1.
func BenchmarkBatchedDML(b *testing.B) {
	const n = 10000
	streams := []struct {
		name string
		txn  func(*birds.Batcher, int, int) error
	}{
		{"coalesce", bench.BatchedDMLTxn},     // PR 3 stream: pairs cancel inside a batch
		{"window", bench.BatchedDMLWindowTxn}, // non-cancelling: pure pass amortization
	}
	for _, stream := range streams {
		for _, batch := range []int{1, 8, 64, 512} {
			batch := batch
			b.Run(fmt.Sprintf("stream=%s/batch=%d", stream.name, batch), func(b *testing.B) {
				db, bt, err := bench.SetupBatchedDML(n, batch, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := stream.txn(bt, n, i+1); err != nil {
						b.Fatal(err)
					}
				}
				if err := bt.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, vn := range bench.DMLMaintenanceViews() {
					if db.Stale(vn) {
						b.Fatalf("view %s fell off the incremental path", vn)
					}
				}
			})
		}
	}
}

// BenchmarkWALDML measures the durability tax on the group-commit write
// pipeline: the BatchedDML coalesce stream with a write-ahead log attached,
// sweeping fsync mode × batch size. "off" appends without syncing (the pure
// encode+write cost), "commit" fsyncs every record, "flush" fsyncs once per
// group-commit flush record — the mode group commit exists for, amortizing
// the ~100µs fsync across the batch exactly like the maintenance pass. CI
// emits this benchmark as the BENCH_wal.json artifact; the acceptance bound
// for this PR is flush/batch=64 < 2× the PR 4 in-memory per-write figure.
func BenchmarkWALDML(b *testing.B) {
	const n = 10000
	// BIRDS_WAL_SEGMENT_BYTES / BIRDS_WAL_CHECKPOINT_EVERY select the
	// segmented-log + background-checkpoint configuration (rotation and
	// off-lock snapshot persistence inside the timed region). The defaults
	// keep the historical single-file, checkpoint-free measurement.
	segBytes := int64(benchEnvInt("BIRDS_WAL_SEGMENT_BYTES", 0))
	ckptEvery := benchEnvInt("BIRDS_WAL_CHECKPOINT_EVERY", -1)
	// Synced modes run before "off": the off-mode fixtures leave the whole
	// log as dirty page cache, and kernel writeback of those pages would
	// contend with the timed fsyncs of any sub-benchmark running after.
	for _, mode := range []birds.SyncMode{birds.SyncOnFlush, birds.SyncOnCommit, birds.SyncOff} {
		for _, batch := range []int{64, 1} {
			mode, batch := mode, batch
			b.Run(fmt.Sprintf("fsync=%s/batch=%d", mode, batch), func(b *testing.B) {
				db, bt, err := bench.SetupBatchedDMLDurableOpts(n, batch, 1, birds.DurabilityOptions{
					Dir:             b.TempDir(),
					Sync:            mode,
					SegmentBytes:    segBytes,
					CheckpointEvery: ckptEvery,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := bench.BatchedDMLTxn(bt, n, i+1); err != nil {
						b.Fatal(err)
					}
				}
				if err := bt.Flush(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, vn := range bench.DMLMaintenanceViews() {
					if db.Stale(vn) {
						b.Fatalf("view %s fell off the incremental path", vn)
					}
				}
				// Drain this fixture's dirty pages outside the timer so they
				// don't bleed into the next sub-benchmark's measurements.
				if err := db.WALLog().Sync(); err != nil {
					b.Fatal(err)
				}
				if err := db.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkWALRecover measures cold recovery: load the checkpoint (10k-row
// base snapshot), replay a WAL tail of the given length, and rebuild both
// views (materialization plus support counts) through the counted IVM
// initialization. One iteration is one full Recover.
func BenchmarkWALRecover(b *testing.B) {
	const n = 10000
	for _, tail := range []int{0, 1000, 10000} {
		tail := tail
		b.Run(fmt.Sprintf("tail=%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			db, bt, err := bench.SetupBatchedDMLDurable(n, 64, 1, dir, birds.SyncOff)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < tail; i++ {
				if err := bench.BatchedDMLTxn(bt, n, i+1); err != nil {
					b.Fatal(err)
				}
			}
			if err := bt.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := db.Close(); err != nil {
				b.Fatal(err)
			}
			// Recovery itself checkpoints and truncates the log, so every
			// iteration restores the crashed-state directory image first
			// (outside the timer).
			image := readDirImage(b, dir)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				restoreDirImage(b, dir, image)
				b.StartTimer()
				rec, _, err := birds.Recover(dir)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := rec.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

func readDirImage(b *testing.B, dir string) map[string][]byte {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	image := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		image[e.Name()] = data
	}
	return image
}

func restoreDirImage(b *testing.B, dir string, image map[string][]byte) {
	b.Helper()
	if err := os.RemoveAll(dir); err != nil {
		b.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	for name, data := range image {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationUnfolding compares ∂put evaluation with and without the
// delta-rule unfolding optimization (Lemma 5.2 substitution alone leaves
// intermediate relations like m(X,Y) :- r(X,Y), Y > 2 materialized over the
// full base table on every update).
func BenchmarkAblationUnfolding(b *testing.B) {
	prog, err := datalog.Parse(bench.LuxuryItemsProgram)
	if err != nil {
		b.Fatal(err)
	}
	const n = 50000
	mkDB := func() *eval.Database {
		db := eval.NewDatabase()
		items := value.NewRelation(3)
		for i := 0; i < n; i++ {
			items.Add(value.Tuple{value.Int(int64(i)), value.Str(fmt.Sprintf("it%d", i)), value.Int(int64(i%2000 + 1))})
		}
		db.Set(datalog.Pred("items"), items)
		return db
	}
	runUpdates := func(b *testing.B, ev *eval.Evaluator) {
		db := mkDB()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := int64(n + i)
			ins := value.RelationOf(3, value.Tuple{value.Int(id), value.Str("x"), value.Int(1500)})
			db.Set(datalog.Ins("luxuryitems"), ins)
			db.Set(datalog.Del("luxuryitems"), value.NewRelation(3))
			if err := ev.Eval(db); err != nil {
				b.Fatal(err)
			}
			if _, _, err := eval.ApplyDeltas(db, prog.Sources); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("lemma52-only", func(b *testing.B) {
		inc, err := core.IncrementalizeLVGN(prog)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := eval.New(inc)
		if err != nil {
			b.Fatal(err)
		}
		runUpdates(b, ev)
	})
	b.Run("with-unfolding", func(b *testing.B) {
		inc, err := core.Incrementalize(prog)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := eval.New(inc)
		if err != nil {
			b.Fatal(err)
		}
		runUpdates(b, ev)
	})
}

// BenchmarkAblationGeneralVsLVGN compares the two incrementalization
// algorithms on an LVGN view where both apply: the Lemma 5.2 substitution
// (with unfolding) against the general Figure 7 pipeline, which maintains
// materialized intermediates and their new versions.
func BenchmarkAblationGeneralVsLVGN(b *testing.B) {
	prog, err := datalog.Parse(bench.LuxuryItemsProgram)
	if err != nil {
		b.Fatal(err)
	}
	const n = 20000
	mkDB := func() *eval.Database {
		db := eval.NewDatabase()
		items := value.NewRelation(3)
		for i := 0; i < n; i++ {
			items.Add(value.Tuple{value.Int(int64(i)), value.Str(fmt.Sprintf("it%d", i)), value.Int(int64(i%2000 + 1))})
		}
		db.Set(datalog.Pred("items"), items)
		return db
	}
	viewOf := func(db *eval.Database) *value.Relation {
		getEv, err := eval.New(core.GetProgram(prog, mustRulesB(b,
			"luxuryitems(I,N,P) :- items(I,N,P), P > 1000.")))
		if err != nil {
			b.Fatal(err)
		}
		rel, err := getEv.EvalQuery(db, datalog.Pred("luxuryitems"))
		if err != nil {
			b.Fatal(err)
		}
		return rel.Clone()
	}
	b.Run("lvgn-dput", func(b *testing.B) {
		inc, err := core.Incrementalize(prog)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := eval.New(inc)
		if err != nil {
			b.Fatal(err)
		}
		db := mkDB()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := int64(2*n + i)
			db.Set(datalog.Ins("luxuryitems"), value.RelationOf(3,
				value.Tuple{value.Int(id), value.Str("x"), value.Int(1500)}))
			db.Set(datalog.Del("luxuryitems"), value.NewRelation(3))
			if err := ev.Eval(db); err != nil {
				b.Fatal(err)
			}
			if _, _, err := eval.ApplyDeltas(db, prog.Sources); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("general-figure7", func(b *testing.B) {
		gi, err := core.NewGeneralIncremental(prog)
		if err != nil {
			b.Fatal(err)
		}
		db := mkDB()
		db.Set(datalog.Pred("luxuryitems"), viewOf(db))
		if err := gi.Init(db); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := int64(4*n + i)
			ins := value.RelationOf(3, value.Tuple{value.Int(id), value.Str("x"), value.Int(1500)})
			if err := gi.Apply(db, ins, value.NewRelation(3)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func mustRulesB(b *testing.B, srcs ...string) []*datalog.Rule {
	b.Helper()
	var out []*datalog.Rule
	for _, s := range srcs {
		r, err := datalog.ParseRule(s)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// BenchmarkAblationExpectedGet compares Algorithm 1 with the expected view
// definition supplied (confirmation) against derivation from φ2.
func BenchmarkAblationExpectedGet(b *testing.B) {
	var entry bench.Table1Entry
	for _, e := range bench.Table1() {
		if e.Name == "residents" {
			entry = e
		}
	}
	prog, err := datalog.Parse(entry.Program)
	if err != nil {
		b.Fatal(err)
	}
	expected, err := bench.ParseGetRules(entry.ExpectedGet)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Oracle: benchOracle()}
	b.Run("expected-get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pb, err := core.NewPutback(prog)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Validate(pb, expected, opts)
			if err != nil || !res.Valid {
				b.Fatalf("%v %v", err, res.Failure)
			}
		}
	})
	b.Run("derivation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pb, err := core.NewPutback(prog)
			if err != nil {
				b.Fatal(err)
			}
			res, err := core.Validate(pb, nil, opts)
			if err != nil || !res.Valid {
				b.Fatalf("%v %v", err, res.Failure)
			}
		}
	})
}

// BenchmarkAblationTransactionMerge compares one merged transaction of k
// statements (Algorithm 2) against k single-statement transactions.
func BenchmarkAblationTransactionMerge(b *testing.B) {
	const n = 20000
	const k = 16
	v, err := bench.Fig6ViewByName("luxuryitems")
	if err != nil {
		b.Fatal(err)
	}
	setup := func(b *testing.B) *birds.DB {
		db, err := bench.SetupFig6(v, n, true, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Warm indexes.
		if err := db.Exec(birds.Insert("luxuryitems", birds.Int(n+1), birds.Str("w"), birds.Int(1500))); err != nil {
			b.Fatal(err)
		}
		return db
	}
	stmts := func(base int) []birds.Statement {
		out := make([]birds.Statement, 0, k)
		for j := 0; j < k; j++ {
			out = append(out, birds.Insert("luxuryitems",
				birds.Int(int64(base+j)), birds.Str("m"), birds.Int(2000)))
		}
		return out
	}
	b.Run("merged", func(b *testing.B) {
		db := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Exec(stmts(2*n + i*k)...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("separate", func(b *testing.B) {
		db := setup(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range stmts(4*n + i*k) {
				if err := db.Exec(s); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
