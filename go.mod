module birds

go 1.24
