package cdc

import (
	"sync"
	"sync/atomic"

	"birds/internal/value"
)

// Hub fans per-relation deltas out to subscriptions. The engine owns the
// hub and calls Subscribe, Publish and MarkAllLost under its write lock,
// which is what serializes publishers and makes the sequence number a
// total order identical to commit order. Consumers (Recv, Close, Stats)
// synchronize only on hub and subscription mutexes, never on the engine
// lock — except the resync pull, which re-enters the engine through the
// closure the engine installed at Subscribe time.
//
// Lock order: engine lock → Hub.mu → Subscription.mu. Events are handed
// to subscriptions outside Hub.mu, so a publisher delayed by a
// BlockWithDeadline subscriber never holds the hub lock.
type Hub struct {
	mu   sync.RWMutex
	subs map[string][]*Subscription
	seq  uint64 // advances once per Publish call (= per visibility point)

	published uint64 // Publish calls that carried at least one update or loss
	// Counters of closed subscriptions, folded in by remove so hub totals
	// are monotonic across subscriber churn.
	retiredDelivered uint64
	retiredDropped   uint64
	retiredResyncs   uint64

	// active mirrors the live subscription count so the engine's publish
	// hook can skip all work without taking any lock.
	active atomic.Int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[string][]*Subscription)}
}

// Quiet reports whether the hub has no live subscriptions. Lock-free; the
// engine's publish hook uses it to keep the zero-subscriber write path
// allocation-free.
func (h *Hub) Quiet() bool { return h.active.Load() == 0 }

// Seq returns the current sequence number — the seq of the most recent
// visibility point that published anything.
func (h *Hub) Seq() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.seq
}

// Subscribed reports whether any live subscription watches the relation.
func (h *Hub) Subscribed(view string) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.subs[view]) > 0
}

// Subscribe registers a subscription whose stream opens with a Resync
// event carrying snap. Must be called under the engine write lock, with
// snap taken under that same lock: the snapshot then corresponds exactly
// to the current sequence number, which is what makes snapshot ⊕ replayed
// deltas ≡ live view. resnap is the engine-provided resync pull: it must
// re-acquire the engine lock, produce a fresh snapshot plus its sequence
// number, and re-arm the subscription (Rearm) before releasing the lock.
func (h *Hub) Subscribe(view string, snap *value.Relation, opts SubOptions, resnap func() (*value.Relation, uint64, error)) *Subscription {
	if opts.Buffer <= 0 {
		opts.Buffer = DefaultBuffer
	}
	if opts.BlockDeadline <= 0 {
		opts.BlockDeadline = DefaultBlockDeadline
	}
	s := &Subscription{
		hub:    h,
		view:   view,
		opts:   opts,
		resnap: resnap,
		ring:   make([]Event, opts.Buffer),
		notify: make(chan struct{}, 1),
		space:  make(chan struct{}, 1),
	}
	h.mu.Lock()
	seq := h.seq
	s.ring[0] = Event{Seq: seq, View: view, Resync: true, Snapshot: snap}
	s.count = 1
	s.lastEnq, s.lastDeq = seq, seq
	h.subs[view] = append(h.subs[view], s)
	h.mu.Unlock()
	h.active.Add(1)
	return s
}

// delivery pairs an event with its target, collected under Hub.mu and
// delivered outside it.
type delivery struct {
	sub *Subscription
	ev  Event
}

// Publish records one visibility point: every update is offered to the
// relation's subscribers under a single new sequence number, and every
// subscription of a relation in lost (a view the engine could only mark
// dirty — no delta exists) is marked lost so its consumer resyncs. Must
// run under the engine write lock; callers should skip the call entirely
// when Quiet() (and may skip updates for relations not Subscribed).
func (h *Hub) Publish(updates []Update, lost []string) {
	if len(updates) == 0 && len(lost) == 0 {
		return
	}
	h.mu.Lock()
	h.seq++
	seq := h.seq
	h.published++
	var dels []delivery
	for _, u := range updates {
		subs := h.subs[u.View]
		if len(subs) == 0 {
			continue
		}
		ev := Event{Seq: seq, View: u.View, Inserts: u.Inserts, Deletes: u.Deletes}
		for _, s := range subs {
			dels = append(dels, delivery{s, ev})
		}
	}
	var lostSubs []*Subscription
	for _, name := range lost {
		lostSubs = append(lostSubs, h.subs[name]...)
	}
	h.mu.Unlock()
	for _, d := range dels {
		d.sub.offer(d.ev)
	}
	for _, s := range lostSubs {
		s.markLost(seq)
	}
}

// MarkAllLost marks every live subscription lost — used when the engine
// state is replaced wholesale (Reopen after degraded mode), where no delta
// relates the old state to the new. Every consumer then resyncs against
// the recovered state. Must run under the engine write lock.
func (h *Hub) MarkAllLost() {
	h.mu.Lock()
	seq := h.seq
	var all []*Subscription
	for _, subs := range h.subs {
		all = append(all, subs...)
	}
	h.mu.Unlock()
	for _, s := range all {
		s.markLost(seq)
	}
}

// remove unregisters a closed subscription and folds its counters into
// the hub's retired totals.
func (h *Hub) remove(sub *Subscription) {
	h.mu.Lock()
	defer h.mu.Unlock()
	subs := h.subs[sub.view]
	for i, s := range subs {
		if s == sub {
			h.subs[sub.view] = append(subs[:i], subs[i+1:]...)
			if len(h.subs[sub.view]) == 0 {
				delete(h.subs, sub.view)
			}
			st := sub.Stats()
			h.retiredDelivered += st.Delivered
			h.retiredDropped += st.Dropped
			h.retiredResyncs += st.Resyncs
			h.active.Add(-1)
			return
		}
	}
}

// HubStats is a point-in-time aggregate over the hub and its live
// subscriptions (plus totals of already-closed ones).
type HubStats struct {
	Subscribers int    `json:"subscribers"`
	Seq         uint64 `json:"seq"`
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	Resyncs     uint64 `json:"resyncs"`
	MaxLagSeqs  uint64 `json:"max_lag_seqs"`
}

// Stats aggregates hub counters.
func (h *Hub) Stats() HubStats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	st := HubStats{
		Seq:       h.seq,
		Published: h.published,
		Delivered: h.retiredDelivered,
		Dropped:   h.retiredDropped,
		Resyncs:   h.retiredResyncs,
	}
	for _, subs := range h.subs {
		for _, s := range subs {
			ss := s.Stats()
			st.Subscribers++
			st.Delivered += ss.Delivered
			st.Dropped += ss.Dropped
			st.Resyncs += ss.Resyncs
			if ss.LagSeqs > st.MaxLagSeqs {
				st.MaxLagSeqs = ss.LagSeqs
			}
		}
	}
	return st
}
