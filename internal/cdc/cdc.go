// Package cdc is the change-data-capture subsystem: a subscription hub
// that captures the per-view net deltas the counting IVM computes at every
// visibility point (direct transaction, group-commit flush, bulk load —
// the same points that get a WAL record) and fans them out to many
// subscribers.
//
// Delivery contract:
//
//   - A subscription opens with one Resync event carrying an O(1)
//     copy-on-write snapshot of the relation, taken under the same engine
//     lock that defines its sequence number. Folding every subsequent
//     event into that snapshot (ApplyEvent) reproduces the live relation
//     exactly as of each event's sequence number.
//   - Events arrive in strictly increasing Seq order. One visibility
//     point is one sequence number: a group-commit batch that changes
//     several subscribed relations publishes all of their deltas under a
//     single Seq, so a batch is observed all-or-nothing. Gaps in Seq are
//     normal (other relations changed).
//   - Buffers are bounded. A subscriber that falls behind either delays
//     the publisher briefly (BlockWithDeadline) or loses events — and
//     loss is never silent: the subscription is marked lost, and the next
//     Recv after the buffered prefix drains returns exactly one Resync
//     event with a fresh snapshot to restart the mirror from.
//   - When the engine itself cannot produce a delta (a maintenance
//     fallback marks the view dirty — bulk load, maintenance error, dirty
//     source), subscribers of that view are marked lost the same way, so
//     a mirror never silently diverges.
//
// The hub costs nothing when no subscriber exists: the engine skips the
// publish hook entirely (nil hub, zero allocations on the write path).
package cdc

import (
	"errors"
	"time"

	"birds/internal/value"
)

// Policy selects what a publisher does when a subscriber's buffer is full.
type Policy uint8

const (
	// DropAndResync (the default) never delays the publisher: the
	// subscription is marked lost, later events are dropped, and the
	// subscriber receives one explicit Resync event after draining the
	// buffered prefix.
	DropAndResync Policy = iota
	// BlockWithDeadline delays the publisher up to BlockDeadline waiting
	// for the subscriber to drain; if the deadline expires the publisher
	// falls back to DropAndResync for this loss. The write path is thus
	// delayed at most once per loss, never blocked indefinitely.
	BlockWithDeadline
)

func (p Policy) String() string {
	if p == BlockWithDeadline {
		return "block"
	}
	return "drop"
}

// Defaults applied by Hub.Subscribe when SubOptions fields are zero.
const (
	DefaultBuffer        = 256
	DefaultBlockDeadline = 10 * time.Millisecond
)

// SubOptions configures one subscription.
type SubOptions struct {
	// Buffer is the per-subscriber event ring capacity (events, not rows).
	// The initial snapshot event occupies one slot. <= 0 selects
	// DefaultBuffer.
	Buffer int
	// Policy is the slow-consumer policy; the zero value is DropAndResync.
	Policy Policy
	// BlockDeadline bounds the publisher delay under BlockWithDeadline.
	// <= 0 selects DefaultBlockDeadline.
	BlockDeadline time.Duration
}

// Event is one element of a subscription's stream.
//
// A delta event (Resync false) carries the exact net row delta of one
// visibility point: Inserts are rows that became members, Deletes rows
// that ceased to be, and the two never overlap. A resync event (Resync
// true) carries a full Snapshot instead and restarts the mirror: the first
// event of every subscription is a resync, and so is the recovery event
// after a loss. The Snapshot is an immutable copy-on-write view — a
// client may keep applying later deltas to it (mutation quietly diverts it
// onto private storage) but must not assume it is private storage.
type Event struct {
	Seq      uint64
	View     string
	Resync   bool
	Snapshot *value.Relation // resync events only
	Inserts  []value.Tuple   // delta events only
	Deletes  []value.Tuple
}

// Update is one relation's net delta at a visibility point, as handed to
// Hub.Publish by the engine. Tuple slices are owned by the hub from then
// on (the engine reports freshly built delta relations).
type Update struct {
	View     string
	Inserts  []value.Tuple
	Deletes  []value.Tuple
}

// ErrClosed is returned by Recv once the subscription is closed and its
// buffered events are drained.
var ErrClosed = errors.New("cdc: subscription closed")

// ApplyEvent folds one event into a client-side mirror and returns the new
// mirror: a resync event replaces the mirror with the event's snapshot,
// a delta event applies Deletes then Inserts in place. Starting from nil
// and folding every event of a subscription yields a relation identical to
// the live view at every event's sequence number.
func ApplyEvent(mirror *value.Relation, ev Event) *value.Relation {
	if ev.Resync {
		return ev.Snapshot
	}
	for _, t := range ev.Deletes {
		mirror.Remove(t)
	}
	for _, t := range ev.Inserts {
		mirror.Add(t)
	}
	return mirror
}
