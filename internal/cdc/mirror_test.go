package cdc_test

// The differential mirror harness: N subscribers race a mix of direct
// transactions, group-commit batches, view-targeted writes, and bulk
// loads, each folding its event stream into a client-side mirror. The
// invariant under test is the delivery contract itself — snapshot ⊕
// replayed deltas ≡ the live relation at every event's sequence number,
// including across forced drop-and-resync — checked two ways:
//
//   - online, against engine snapshots: a sampler thread calls
//     db.SnapshotAt and each subscriber compares XOR-of-row-hash
//     fingerprints whenever its stream reaches the sampled seq exactly;
//   - at quiesce, bit-identical: after writers stop and streams drain,
//     every mirror must Equal db.Get(view).
//
// Tunables (for CI sweeps): BIRDS_CDC_TRIALS, BIRDS_CDC_SEED,
// BIRDS_CDC_WRITES.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"birds/internal/cdc"
	"birds/internal/datalog"
	"birds/internal/engine"
	"birds/internal/value"
)

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// mirrorDB builds the same schema as the engine package's maintenance
// fixture through the public API: tables r1(a,b), r2(b,c), a join view j,
// and a negation view lonely.
func mirrorDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	for _, d := range []string{"source r1(a:int, b:int).", "source r2(b:int, c:int)."} {
		p, err := datalog.Parse(d)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable(p.Sources[0]); err != nil {
			t.Fatal(err)
		}
	}
	create := func(program, get string) {
		t.Helper()
		var rules []*datalog.Rule
		for _, line := range strings.Split(get, "\n") {
			if line = strings.TrimSpace(line); line == "" {
				continue
			}
			r, err := datalog.ParseRule(line)
			if err != nil {
				t.Fatal(err)
			}
			rules = append(rules, r)
		}
		if _, err := db.CreateView(program, engine.ViewOptions{SkipValidation: true, ExpectedGet: rules}); err != nil {
			t.Fatal(err)
		}
	}
	create(`
source r1(a:int, b:int).
source r2(b:int, c:int).
view j(a:int, c:int).
-r1(A,B) :- r1(A,B), not jkeep(A).
jkeep(A) :- j(A,_).
`, "j(A,C) :- r1(A,B), r2(B,C).")
	create(`
source r1(a:int, b:int).
source r2(b:int, c:int).
view lonely(a:int).
-r1(A,B) :- r1(A,B), not lonely(A).
`, "lonely(A) :- r1(A,B), not r2(B,_).")
	return db
}

// fingerprint is the XOR of all row hashes — order-independent, O(1) to
// maintain incrementally, and collision-resistant enough to catch a
// diverged mirror within a trial.
func fingerprint(r *value.Relation) uint64 {
	var fp uint64
	for _, t := range r.Tuples() {
		fp ^= t.Hash()
	}
	return fp
}

// sample is one engine-side observation: relation state (as fingerprint)
// at an exact hub sequence number.
type sample struct {
	view string
	seq  uint64
	fp   uint64
	rows int
}

// mirrorState is one subscriber's client-side replica.
type mirrorState struct {
	rel     *value.Relation
	fp      uint64
	seq     uint64
	resyncs int
	events  int
}

func (m *mirrorState) apply(ev cdc.Event) {
	m.rel = cdc.ApplyEvent(m.rel, ev)
	if ev.Resync {
		m.fp = fingerprint(m.rel)
		m.resyncs++
	} else {
		for _, t := range ev.Deletes {
			m.fp ^= t.Hash()
		}
		for _, t := range ev.Inserts {
			m.fp ^= t.Hash()
		}
	}
	m.seq = ev.Seq
	m.events++
}

func TestDifferentialMirror(t *testing.T) {
	trials := envInt("BIRDS_CDC_TRIALS", 3)
	seed := int64(envInt("BIRDS_CDC_SEED", 1))
	writes := envInt("BIRDS_CDC_WRITES", 400)
	if testing.Short() {
		trials, writes = 1, 120
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runMirrorTrial(t, seed+int64(trial), writes)
		})
	}
}

func runMirrorTrial(t *testing.T, seed int64, writes int) {
	db := mirrorDB(t)
	views := []string{"r1", "j", "lonely"}

	// Subscriber set: healthy big-buffer subscribers on every relation,
	// plus deliberately tiny buffers (forced drop-and-resync) and a
	// block-policy subscriber with a short deadline.
	type subCfg struct {
		view string
		opts cdc.SubOptions
		slow time.Duration // artificial per-event consumer delay, to force loss
	}
	cfgs := []subCfg{
		{view: "r1", opts: cdc.SubOptions{Buffer: 4096}},
		{view: "j", opts: cdc.SubOptions{Buffer: 4096}},
		{view: "lonely", opts: cdc.SubOptions{Buffer: 4096}},
		// Deliberately slow consumers on tiny buffers: guaranteed to fall
		// behind while the writers are pumping, guaranteed to catch up
		// (via resync) once they stop.
		{view: "j", opts: cdc.SubOptions{Buffer: 2}, slow: 2 * time.Millisecond},
		{view: "r1", opts: cdc.SubOptions{Buffer: 4, Policy: cdc.BlockWithDeadline, BlockDeadline: time.Millisecond}, slow: 2 * time.Millisecond},
		{view: "lonely", opts: cdc.SubOptions{Buffer: 3}, slow: time.Millisecond},
	}

	subs := make([]*cdc.Subscription, len(cfgs))
	for i, c := range cfgs {
		sub, err := db.Subscribe(c.view, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
		defer sub.Close()
	}

	// Engine-side sampler: a stream of (view, seq, fingerprint) ground
	// truths taken under the engine lock. Subscribers whose stream passes
	// through seq exactly (same seq, no interposed resync unknowable gap)
	// must match.
	samplesMu := sync.Mutex{}
	samples := make(map[string][]sample) // view -> ordered by seq
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for ctx.Err() == nil {
			for _, v := range views {
				rel, seq, err := db.SnapshotAt(v)
				if err != nil {
					continue // transient: concurrent DDL never happens here, but stay robust
				}
				s := sample{view: v, seq: seq, fp: fingerprint(rel), rows: rel.Len()}
				samplesMu.Lock()
				samples[v] = append(samples[v], s)
				samplesMu.Unlock()
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Consumers: fold events into mirrors; whenever the mirror sits
	// exactly at a sampled seq, fingerprints must agree. Samples are
	// appended in seq order and mirror seqs are monotone, so each consumer
	// keeps a position pointer instead of rescanning.
	var consumerWG sync.WaitGroup
	errCh := make(chan error, len(subs))
	mirrors := make([]*mirrorState, len(subs))
	for i, sub := range subs {
		i, sub := i, sub
		consumerWG.Add(1)
		go func() {
			defer consumerWG.Done()
			m := &mirrorState{}
			mirrors[i] = m
			pos := 0
			for {
				rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
				ev, err := sub.Recv(rctx)
				rcancel()
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					errCh <- fmt.Errorf("sub %d (%s): %v", i, cfgs[i].view, err)
					return
				}
				if d := cfgs[i].slow; d > 0 && ctx.Err() == nil {
					time.Sleep(d)
				}
				m.apply(ev)
				samplesMu.Lock()
				vs := samples[cfgs[i].view]
				for pos < len(vs) && vs[pos].seq < m.seq {
					pos++
				}
				for pos < len(vs) && vs[pos].seq == m.seq {
					s := vs[pos]
					if s.fp != m.fp || s.rows != m.rel.Len() {
						samplesMu.Unlock()
						errCh <- fmt.Errorf("sub %d (%s) diverged at seq %d: mirror fp=%x rows=%d, engine fp=%x rows=%d",
							i, cfgs[i].view, m.seq, m.fp, m.rel.Len(), s.fp, s.rows)
						return
					}
					pos++
				}
				samplesMu.Unlock()
			}
		}()
	}

	// Writers: one direct, one batched, one view-targeted + bulk loader,
	// racing over a bounded key space so deletes hit real rows.
	keyOf := func(r *rand.Rand) int64 { return int64(r.Intn(40)) }
	var writerWG sync.WaitGroup
	writerErr := make(chan error, 3)
	writerWG.Add(3)
	go func() { // direct transactions on r1/r2
		defer writerWG.Done()
		r := rand.New(rand.NewSource(seed * 7))
		for n := 0; n < writes; n++ {
			a, b := keyOf(r), keyOf(r)
			var err error
			switch r.Intn(3) {
			case 0:
				err = db.Exec(engine.Insert("r1", value.Int(a), value.Int(b)))
			case 1:
				err = db.Exec(engine.Insert("r2", value.Int(b), value.Int(a)))
			default:
				err = db.Exec(engine.Delete("r1", engine.Eq("a", value.Int(a))))
			}
			if err != nil {
				writerErr <- err
				return
			}
		}
	}()
	go func() { // group-commit batches
		defer writerWG.Done()
		r := rand.New(rand.NewSource(seed * 13))
		b := db.Batch(engine.BatchOptions{MaxTxns: -1})
		defer b.Close()
		for n := 0; n < writes; n++ {
			var err error
			if r.Intn(2) == 0 {
				err = b.Exec(engine.Insert("r1", value.Int(keyOf(r)), value.Int(keyOf(r))))
			} else {
				err = b.Exec(engine.Insert("r2", value.Int(keyOf(r)), value.Int(keyOf(r))))
			}
			if err != nil {
				writerErr <- err
				return
			}
			if n%7 == 6 {
				if err := b.Flush(); err != nil {
					writerErr <- err
					return
				}
			}
		}
		if err := b.Flush(); err != nil {
			writerErr <- err
		}
	}()
	go func() { // view-targeted deletes + bulk loads (the fallback paths)
		defer writerWG.Done()
		r := rand.New(rand.NewSource(seed * 29))
		for n := 0; n < writes/10; n++ {
			var err error
			if r.Intn(2) == 0 {
				err = db.Exec(engine.Delete("j", engine.Eq("a", value.Int(keyOf(r)))))
			} else {
				rows := make([]value.Tuple, 0, 3)
				for k := 0; k < 3; k++ {
					rows = append(rows, value.Tuple{value.Int(keyOf(r)), value.Int(keyOf(r))})
				}
				err = db.LoadTable("r1", rows)
			}
			if err != nil {
				writerErr <- err
				return
			}
			time.Sleep(time.Duration(r.Intn(3)) * time.Millisecond)
		}
	}()
	writerWG.Wait()
	close(writerErr)
	for err := range writerErr {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// Quiesce: stop sampling, give every stream time to drain to the
	// final seq, then compare each mirror bit-identically to the live
	// relation. The consumers are still running; poll their subscriptions'
	// lag until all report caught-up (or resync pending).
	deadline := time.Now().Add(20 * time.Second)
	for {
		caughtUp := true
		for _, sub := range subs {
			st := sub.Stats()
			if st.LagSeqs != 0 || st.Buffered != 0 || st.Lost {
				caughtUp = false
				break
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			for i, sub := range subs {
				t.Logf("sub %d (%s): %+v", i, cfgs[i].view, sub.Stats())
			}
			t.Fatal("streams did not quiesce")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	consumerWG.Wait()
	samplerWG.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The tiny-buffer subscribers must actually have exercised the loss
	// path, else the trial proved less than it claims.
	for i, sub := range subs {
		st := sub.Stats()
		if i >= 3 && st.Resyncs == 0 {
			t.Errorf("sub %d (%s, buffer %d) never resynced — the loss path was not exercised",
				i, cfgs[i].view, cfgs[i].opts.Buffer)
		}
	}

	// Quiesced, drained, stopped: every mirror must now be bit-identical
	// to the live relation.
	live := make(map[string]*value.Relation)
	for _, v := range views {
		rel, err := db.Get(v)
		if err != nil {
			t.Fatal(err)
		}
		live[v] = rel
	}
	for i, m := range mirrors {
		if m == nil || m.events == 0 {
			t.Errorf("sub %d (%s) consumed nothing", i, cfgs[i].view)
			continue
		}
		if !m.rel.Equal(live[cfgs[i].view]) {
			t.Errorf("sub %d (%s): final mirror (%d rows) != live relation (%d rows) after %d events, %d resyncs",
				i, cfgs[i].view, m.rel.Len(), live[cfgs[i].view].Len(), m.events, m.resyncs)
		}
	}
	if st := db.CDCStats(); st.Published == 0 || st.Resyncs == 0 {
		t.Errorf("trial exercised nothing: %+v", st)
	}
}
