package cdc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"birds/internal/value"
)

// Subscription is one subscriber's end of the hub: a bounded ring of
// events filled by publishers (engine write path) and drained by exactly
// one consumer goroutine via Recv. All methods are safe for concurrent
// use, but events are a stream — concurrent Recv calls would split it.
type Subscription struct {
	hub    *Hub
	view   string
	opts   SubOptions
	resnap func() (*value.Relation, uint64, error)

	mu     sync.Mutex
	ring   []Event
	head   int
	count  int
	lost   bool // events were (or will be) missed; consumer must resync
	closed bool

	delivered uint64
	dropped   uint64
	resyncs   uint64
	lastEnq   uint64 // seq of the last event offered (delivered or dropped)
	lastDeq   uint64 // seq of the last event the consumer received

	notify chan struct{} // cap 1: ring gained an event / lost / closed
	space  chan struct{} // cap 1: ring gained free space / closed
}

// View returns the subscribed relation name.
func (s *Subscription) View() string { return s.view }

// signal posts a non-blocking wakeup on a capacity-1 channel.
func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// offer enqueues one event, applying the slow-consumer policy when the
// ring is full. Publishers are serialized by the engine write lock, so at
// most one offer runs at a time; the ring's buffered prefix is kept on
// loss (it is a valid prefix of the stream — the consumer drains it, then
// resyncs).
func (s *Subscription) offer(ev Event) {
	var deadline time.Time
	expired := false
	for {
		s.mu.Lock()
		switch {
		case s.closed:
			s.mu.Unlock()
			return
		case s.lost:
			s.dropped++
			s.lastEnq = ev.Seq
			s.mu.Unlock()
			return
		case s.count < len(s.ring):
			s.ring[(s.head+s.count)%len(s.ring)] = ev
			s.count++
			s.lastEnq = ev.Seq
			s.mu.Unlock()
			signal(s.notify)
			return
		}
		// Ring full.
		if s.opts.Policy == BlockWithDeadline && !expired {
			// Clear a stale space signal while still holding the lock (the
			// ring is full right now, so any buffered signal is obsolete),
			// then wait outside it for the consumer to drain.
			select {
			case <-s.space:
			default:
			}
			s.mu.Unlock()
			if deadline.IsZero() {
				deadline = time.Now().Add(s.opts.BlockDeadline)
			}
			t := time.NewTimer(time.Until(deadline))
			select {
			case <-s.space:
				t.Stop()
			case <-t.C:
				expired = true
			}
			continue
		}
		s.lost = true
		s.dropped++
		s.lastEnq = ev.Seq
		s.mu.Unlock()
		signal(s.notify)
		return
	}
}

// markLost marks the subscription lost without an event — the engine's
// signal that the stream cannot represent what just happened (fallback
// refresh, state replacement). The buffered prefix stays deliverable.
func (s *Subscription) markLost(seq uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.lost = true
	if seq > s.lastEnq {
		s.lastEnq = seq
	}
	s.mu.Unlock()
	signal(s.notify)
}

// Rearm clears the lost flag after a resync snapshot was taken at seq.
// Called only by the engine's resnap closure, under the engine write lock
// — which is what guarantees no event can be published (and missed)
// between the snapshot and the re-arm.
func (s *Subscription) Rearm(seq uint64) {
	s.mu.Lock()
	s.lost = false
	if seq > s.lastEnq {
		s.lastEnq = seq
	}
	s.mu.Unlock()
}

// Recv returns the next event of the stream, blocking until one is
// available or ctx is done. Buffered events are delivered first — even
// after Close or a loss. Once the buffer is drained: a lost subscription
// pulls a fresh snapshot through the engine and returns exactly one Resync
// event; a closed subscription returns ErrClosed.
func (s *Subscription) Recv(ctx context.Context) (Event, error) {
	for {
		s.mu.Lock()
		if s.count > 0 {
			ev := s.ring[s.head]
			s.ring[s.head] = Event{}
			s.head = (s.head + 1) % len(s.ring)
			s.count--
			s.delivered++
			s.lastDeq = ev.Seq
			s.mu.Unlock()
			signal(s.space)
			return ev, nil
		}
		if s.closed {
			s.mu.Unlock()
			return Event{}, ErrClosed
		}
		if s.lost {
			s.mu.Unlock()
			snap, seq, err := s.resnap()
			if err != nil {
				return Event{}, fmt.Errorf("cdc: resync %q: %w", s.view, err)
			}
			// resnap re-armed the subscription under the engine lock; any
			// event published since has seq > this snapshot's and sits
			// behind the resync in the ring.
			s.mu.Lock()
			s.resyncs++
			s.delivered++
			if seq > s.lastDeq {
				s.lastDeq = seq
			}
			s.mu.Unlock()
			return Event{Seq: seq, View: s.view, Resync: true, Snapshot: snap}, nil
		}
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return Event{}, ctx.Err()
		case <-s.notify:
		}
	}
}

// Close ends the subscription: publishers stop offering to it, a blocked
// publisher wakes, the consumer may still drain buffered events and then
// gets ErrClosed. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	signal(s.notify)
	signal(s.space)
	s.hub.remove(s)
}

// SubStats is a point-in-time snapshot of one subscription's counters.
type SubStats struct {
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Resyncs   uint64 `json:"resyncs"`
	LagSeqs   uint64 `json:"lag_seqs"` // last offered seq minus last received seq
	Buffered  int    `json:"buffered"`
	Lost      bool   `json:"lost"`
}

// Stats returns the subscription's counters.
func (s *Subscription) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SubStats{
		Delivered: s.delivered,
		Dropped:   s.dropped,
		Resyncs:   s.resyncs,
		Buffered:  s.count,
		Lost:      s.lost,
	}
	if s.lastEnq > s.lastDeq {
		st.LagSeqs = s.lastEnq - s.lastDeq
	}
	return st
}
