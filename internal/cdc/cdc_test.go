package cdc_test

// Unit tests for the hub/subscription machinery against a miniature
// "engine": a mutex (standing in for the engine write lock), a live
// relation the publisher maintains, and a resnap closure that snapshots
// it under that mutex — the same protocol engine.Subscribe installs.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"birds/internal/cdc"
	"birds/internal/value"
)

// fakeEngine is the minimal publisher side of the CDC protocol.
type fakeEngine struct {
	mu   sync.Mutex // the "engine write lock"
	hub  *cdc.Hub
	view string
	live *value.Relation
}

func newFakeEngine(view string) *fakeEngine {
	return &fakeEngine{hub: cdc.NewHub(), view: view, live: value.NewRelation(1)}
}

// subscribe opens a subscription with the engine-side resnap closure.
func (e *fakeEngine) subscribe(opts cdc.SubOptions) *cdc.Subscription {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sub *cdc.Subscription
	resnap := func() (*value.Relation, uint64, error) {
		e.mu.Lock()
		defer e.mu.Unlock()
		snap := e.live.Snapshot()
		seq := e.hub.Seq()
		sub.Rearm(seq)
		return snap, seq, nil
	}
	sub = e.hub.Subscribe(e.view, e.live.Snapshot(), opts, resnap)
	return sub
}

// publish applies one visibility point to the live relation and the hub.
func (e *fakeEngine) publish(ins, del []value.Tuple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, t := range del {
		e.live.Remove(t)
	}
	for _, t := range ins {
		e.live.Add(t)
	}
	e.hub.Publish([]cdc.Update{{View: e.view, Inserts: ins, Deletes: del}}, nil)
}

func row(i int) value.Tuple { return value.Tuple{value.Int(int64(i))} }

func recvOne(t *testing.T, sub *cdc.Subscription) cdc.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ev, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return ev
}

func TestSnapshotThenOrderedDeltas(t *testing.T) {
	e := newFakeEngine("v")
	e.publish([]value.Tuple{row(1)}, nil) // pre-subscription state
	sub := e.subscribe(cdc.SubOptions{})
	defer sub.Close()

	first := recvOne(t, sub)
	if !first.Resync || first.Snapshot == nil || first.Snapshot.Len() != 1 {
		t.Fatalf("first event must be the snapshot, got %+v", first)
	}
	mirror := cdc.ApplyEvent(nil, first)

	e.publish([]value.Tuple{row(2)}, nil)
	e.publish([]value.Tuple{row(3)}, []value.Tuple{row(1)})
	e.publish(nil, []value.Tuple{row(2)})

	last := first.Seq
	for i := 0; i < 3; i++ {
		ev := recvOne(t, sub)
		if ev.Resync {
			t.Fatalf("unexpected resync at event %d", i)
		}
		if ev.Seq <= last {
			t.Fatalf("seq not strictly increasing: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
		mirror = cdc.ApplyEvent(mirror, ev)
	}
	e.mu.Lock()
	same := mirror.Equal(e.live)
	e.mu.Unlock()
	if !same {
		t.Fatalf("mirror diverged: %v vs %v", mirror, e.live)
	}
	st := sub.Stats()
	if st.Delivered != 4 || st.Dropped != 0 || st.Resyncs != 0 || st.LagSeqs != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBatchIsOneSeqAcrossViews(t *testing.T) {
	h := cdc.NewHub()
	subA := h.Subscribe("a", value.NewRelation(1).Snapshot(), cdc.SubOptions{}, nil)
	defer subA.Close()
	subB := h.Subscribe("b", value.NewRelation(1).Snapshot(), cdc.SubOptions{}, nil)
	defer subB.Close()

	// One visibility point touching both relations: one Publish call.
	h.Publish([]cdc.Update{
		{View: "a", Inserts: []value.Tuple{row(1)}},
		{View: "b", Inserts: []value.Tuple{row(2)}},
	}, nil)

	recvOne(t, subA) // initial snapshots
	recvOne(t, subB)
	evA, evB := recvOne(t, subA), recvOne(t, subB)
	if evA.Seq != evB.Seq {
		t.Fatalf("one visibility point split into seqs %d and %d", evA.Seq, evB.Seq)
	}
}

func TestDropAndResyncExactlyOnce(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{Buffer: 2}) // snapshot takes one slot
	defer sub.Close()

	for i := 1; i <= 5; i++ { // 1 fits, 4 dropped
		e.publish([]value.Tuple{row(i)}, nil)
	}

	// Buffered prefix first: snapshot, then the single event that fit.
	if ev := recvOne(t, sub); !ev.Resync {
		t.Fatalf("want snapshot first, got %+v", ev)
	}
	if ev := recvOne(t, sub); ev.Resync || len(ev.Inserts) != 1 {
		t.Fatalf("want the buffered delta, got %+v", ev)
	}
	// Then exactly one resync carrying the full current state.
	ev := recvOne(t, sub)
	if !ev.Resync {
		t.Fatalf("want resync after loss, got %+v", ev)
	}
	if ev.Snapshot.Len() != 5 {
		t.Fatalf("resync snapshot has %d rows, want 5", ev.Snapshot.Len())
	}
	// The stream is healthy again: no second resync, new deltas flow.
	e.publish([]value.Tuple{row(6)}, nil)
	if ev := recvOne(t, sub); ev.Resync || len(ev.Inserts) != 1 {
		t.Fatalf("stream not healthy after resync: %+v", ev)
	}
	st := sub.Stats()
	if st.Resyncs != 1 {
		t.Fatalf("want exactly 1 resync, got %d (stats %+v)", st.Resyncs, st)
	}
	if st.Dropped != 4 {
		t.Fatalf("want 4 dropped, got %d", st.Dropped)
	}
}

func TestBlockWithDeadlineWaitsForConsumer(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{Buffer: 2, Policy: cdc.BlockWithDeadline, BlockDeadline: 2 * time.Second})
	defer sub.Close()

	e.publish([]value.Tuple{row(1)}, nil) // ring now full (snapshot + delta)
	done := make(chan struct{})
	go func() {
		e.publish([]value.Tuple{row(2)}, nil) // must wait for a Recv
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("publisher did not block on a full ring")
	case <-time.After(50 * time.Millisecond):
	}
	recvOne(t, sub) // frees a slot
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher still blocked after consumer drained")
	}
	recvOne(t, sub)
	recvOne(t, sub)
	if st := sub.Stats(); st.Resyncs != 0 || st.Dropped != 0 {
		t.Fatalf("no loss expected: %+v", st)
	}
}

func TestBlockWithDeadlineFallsBackToResync(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{Buffer: 1, Policy: cdc.BlockWithDeadline, BlockDeadline: 30 * time.Millisecond})
	defer sub.Close()

	start := time.Now()
	for i := 1; i <= 10; i++ {
		e.publish([]value.Tuple{row(i)}, nil)
	}
	// Only the first overflow waits out the deadline; once lost, the rest
	// are dropped without delay.
	if el := time.Since(start); el > 10*30*time.Millisecond {
		t.Fatalf("every publish waited (%v) — lost subscriptions must not delay the writer", el)
	}
	recvOne(t, sub) // snapshot
	ev := recvOne(t, sub)
	if !ev.Resync || ev.Snapshot.Len() != 10 {
		t.Fatalf("want resync with full state, got %+v", ev)
	}
	if st := sub.Stats(); st.Resyncs != 1 {
		t.Fatalf("want exactly 1 resync, got %+v", st)
	}
}

func TestCloseUnblocksPublisherAndEndsStream(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{Buffer: 1, Policy: cdc.BlockWithDeadline, BlockDeadline: 10 * time.Second})

	done := make(chan struct{})
	go func() {
		e.publish([]value.Tuple{row(1)}, nil) // ring full with the snapshot
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	sub.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock the publisher")
	}
	// Buffered prefix still drains, then ErrClosed.
	recvOne(t, sub)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := sub.Recv(ctx); !errors.Is(err, cdc.ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if st := e.hub.Stats(); st.Subscribers != 0 {
		t.Fatalf("closed subscription still registered: %+v", st)
	}
	if st := sub.Stats(); st.Delivered != 1 {
		t.Fatalf("post-close drain not counted: %+v", st)
	}
}

func TestRecvHonorsContext(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{})
	defer sub.Close()
	recvOne(t, sub) // snapshot
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := sub.Recv(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestMarkAllLostForcesResyncEverywhere(t *testing.T) {
	e := newFakeEngine("v")
	s1 := e.subscribe(cdc.SubOptions{})
	defer s1.Close()
	s2 := e.subscribe(cdc.SubOptions{})
	defer s2.Close()
	recvOne(t, s1)
	recvOne(t, s2)

	e.mu.Lock()
	e.live.Add(row(42)) // state changed with no event — e.g. state swap
	e.hub.MarkAllLost()
	e.mu.Unlock()

	for _, sub := range []*cdc.Subscription{s1, s2} {
		ev := recvOne(t, sub)
		if !ev.Resync || !ev.Snapshot.Contains(row(42)) {
			t.Fatalf("want resync with swapped state, got %+v", ev)
		}
	}
	if st := e.hub.Stats(); st.Resyncs != 2 {
		t.Fatalf("want 2 resyncs, got %+v", st)
	}
}

func TestLagCounting(t *testing.T) {
	e := newFakeEngine("v")
	sub := e.subscribe(cdc.SubOptions{Buffer: 8})
	defer sub.Close()
	recvOne(t, sub)
	for i := 1; i <= 3; i++ {
		e.publish([]value.Tuple{row(i)}, nil)
	}
	if st := sub.Stats(); st.LagSeqs != 3 || st.Buffered != 3 {
		t.Fatalf("want lag 3, got %+v", st)
	}
	recvOne(t, sub)
	recvOne(t, sub)
	recvOne(t, sub)
	if st := sub.Stats(); st.LagSeqs != 0 {
		t.Fatalf("want lag 0 after drain, got %+v", st)
	}
	if hs := e.hub.Stats(); hs.MaxLagSeqs != 0 || hs.Subscribers != 1 {
		t.Fatalf("hub stats: %+v", hs)
	}
}
