// Streaming execution for full evaluation: rule plans run as lazy pipelines
// that stream their largest input and build only small, ephemeral probe
// tables, instead of registering maintained hash indexes on every probed
// relation. Three pieces cooperate:
//
//   - Driver variants (compileRule): every rule is compiled once per
//     positive body atom, with that atom forced first as the streamed outer
//     scan. At evaluation time pickVariant scores each variant by the total
//     size of the relations its keyed steps would have to hash (relations
//     already covered by a maintained index cost nothing) and picks the
//     cheapest — the symmetric-hash-join build-side choice: stream the big
//     relation, hash the small ones.
//
//   - Ephemeral tables (joinTable, existTable): the probe structures built
//     for one evaluation. A joinTable is a compact chained hash table —
//     one flat tuple slice, one int32 chain, one hash→head map — several
//     times smaller than the Database's maintained hashIndex (which keeps a
//     per-distinct-key group with its own slice). An existTable keeps only
//     one representative tuple per distinct key projection: all a negated
//     atom's existence probe needs, O(distinct keys) instead of O(tuples).
//     Neither is registered on the Database; both die with the evaluation.
//
//   - The per-evaluation cache (evalCtx): tables are keyed by (relation
//     pointer, key positions), so two rules probing the same relation the
//     same way share one table, and a relation replaced by db.Update (new
//     pointer) can never be observed through a stale table.
//
// Maintained indexes that already exist are still used — as pure reads,
// without marking them hot, so the streaming path never causes the Database
// to build or keep an index. Only stratum outputs (the IDB relations
// installed after each predicate's fixpoint, and the counted-IVM support
// state) are materialized; everything between a scan and a head emit is a
// tuple at a time. The steady-state EvalDelta path is untouched: it keeps
// its lazy Database probes and its allocation profile.
package eval

import (
	"birds/internal/datalog"
	"birds/internal/value"
)

// ExecMode selects how Eval (and the counted-IVM initialization) executes
// compiled plans. The zero value is ExecStreaming.
type ExecMode uint8

const (
	// ExecStreaming (the default) streams each rule's chosen driver
	// relation and probes ephemeral per-evaluation tables built on the
	// smaller inputs.
	ExecStreaming ExecMode = iota
	// ExecMaterialized is the pre-streaming behavior: plans keep their
	// compile-time join order and probe maintained hash indexes built (and
	// registered) on the Database. Kept as the differential-test oracle and
	// as an escape hatch.
	ExecMaterialized
)

func (m ExecMode) String() string {
	if m == ExecMaterialized {
		return "materialized"
	}
	return "streaming"
}

// SetExecMode selects the execution mode for full evaluations. It must not
// be called concurrently with Eval.
func (e *Evaluator) SetExecMode(m ExecMode) { e.mode = m }

// ExecModeOf reports the configured execution mode.
func (e *Evaluator) ExecModeOf() ExecMode { return e.mode }

// --- ephemeral probe tables -------------------------------------------

// joinTable is a compact chained hash table over one relation's projection
// onto key positions, built for one evaluation and discarded. Layout: all
// tuples in one flat slice, a parallel int32 chain linking tuples that share
// a key hash, and a map from key hash to chain head. Compared to the
// maintained hashIndex it has no per-key group structs and no per-key tuple
// slices — a fraction of the heap per tuple — at the cost of re-checking
// the key projection while walking a chain (hash collisions are rare).
type joinTable struct {
	positions []int
	heads     map[uint64]int32
	next      []int32
	tuples    []value.Tuple
}

// buildJoinTable hashes every tuple of rel on positions. Chains are int32;
// relations at the 2³¹-tuple scale must use a maintained index instead
// (prepareStream guards this).
func buildJoinTable(rel *value.Relation, positions []int) *joinTable {
	n := rel.Len()
	jt := &joinTable{
		positions: positions,
		heads:     make(map[uint64]int32, n),
		next:      make([]int32, 0, n),
		tuples:    make([]value.Tuple, 0, n),
	}
	for t := range rel.All() {
		h := value.HashSeed
		for _, p := range positions {
			h = value.HashMix(h, t[p])
		}
		i := int32(len(jt.tuples))
		jt.tuples = append(jt.tuples, t)
		prev, ok := jt.heads[h]
		if !ok {
			prev = -1
		}
		jt.next = append(jt.next, prev)
		jt.heads[h] = i
	}
	return jt
}

// tabCursor walks the chain of tuples matching one probe key. It is a value
// type so a per-outer-tuple probe allocates nothing.
type tabCursor struct {
	jt  *joinTable
	i   int32
	key value.Tuple
}

// cursor starts a probe for key (the projection values, in positions order).
func (jt *joinTable) cursor(key value.Tuple) tabCursor {
	h := value.HashSeed
	for _, v := range key {
		h = value.HashMix(h, v)
	}
	i, ok := jt.heads[h]
	if !ok {
		i = -1
	}
	return tabCursor{jt: jt, i: i, key: key}
}

// next returns the next tuple whose projection equals the probe key.
func (c *tabCursor) next() (value.Tuple, bool) {
	for c.i >= 0 {
		t := c.jt.tuples[c.i]
		c.i = c.jt.next[c.i]
		if projMatches(t, c.jt.positions, c.key) {
			return t, true
		}
	}
	return nil, false
}

// hasMatch reports whether any tuple matches the probe key.
func (jt *joinTable) hasMatch(key value.Tuple) bool {
	c := jt.cursor(key)
	_, ok := c.next()
	return ok
}

// existTable answers existence probes (negated atoms) with one
// representative tuple per distinct key projection — O(distinct keys)
// heap, however many tuples share a key.
type existTable struct {
	positions []int
	buckets   map[uint64][]value.Tuple // one representative per distinct projection
}

func buildExistTable(rel *value.Relation, positions []int) *existTable {
	et := &existTable{positions: positions, buckets: make(map[uint64][]value.Tuple)}
	for t := range rel.All() {
		h := value.HashSeed
		for _, p := range positions {
			h = value.HashMix(h, t[p])
		}
		reps := et.buckets[h]
		seen := false
		for _, r := range reps {
			if projEqual(r, t, positions) {
				seen = true
				break
			}
		}
		if !seen {
			et.buckets[h] = append(reps, t)
		}
	}
	return et
}

// has reports whether any tuple's projection equals key.
func (et *existTable) has(key value.Tuple) bool {
	h := value.HashSeed
	for _, v := range key {
		h = value.HashMix(h, v)
	}
	for _, r := range et.buckets[h] {
		if projMatches(r, et.positions, key) {
			return true
		}
	}
	return false
}

// --- per-evaluation context -------------------------------------------

// tabKey identifies an ephemeral table: the relation (by pointer, so a
// relation replaced via db.Update can never hit a stale entry) and the key
// positions rendered as a mask.
type tabKey struct {
	rel  *value.Relation
	mask string
}

// evalCtx carries the ephemeral probe tables of one full evaluation.
// Tables are shared across the rules (and parallel-level prepares) of that
// evaluation and dropped when it returns.
type evalCtx struct {
	tables map[tabKey]*joinTable
	exists map[tabKey]*existTable
}

func newEvalCtx() *evalCtx {
	return &evalCtx{
		tables: make(map[tabKey]*joinTable),
		exists: make(map[tabKey]*existTable),
	}
}

func (ec *evalCtx) joinTab(rel *value.Relation, positions []int) *joinTable {
	k := tabKey{rel: rel, mask: maskOf(positions)}
	if jt, ok := ec.tables[k]; ok {
		return jt
	}
	jt := buildJoinTable(rel, positions)
	ec.tables[k] = jt
	return jt
}

func (ec *evalCtx) existTab(rel *value.Relation, positions []int) *existTable {
	k := tabKey{rel: rel, mask: maskOf(positions)}
	if et, ok := ec.exists[k]; ok {
		return et
	}
	et := buildExistTable(rel, positions)
	ec.exists[k] = et
	return et
}

// --- variant choice and preparation -----------------------------------

// maxJoinTableLen is the largest relation an ephemeral joinTable will hold
// (int32 chain links); beyond it prepareStream falls back to a maintained
// index. Unreachable for in-memory relations in practice.
const maxJoinTableLen = 1 << 31 - 1

// streamCost scores a plan for streaming execution: the total number of
// tuples its keyed steps would have to hash into ephemeral tables. A keyed
// step whose relation already has a maintained index on exactly its key
// positions costs nothing (the index is reused as a pure read); a full-key
// negation probes the relation directly and costs nothing. The score
// deliberately ignores the evalCtx cache so that variant choice depends
// only on the database state, not on the order rules happened to run in.
func streamCost(db *Database, plan *compiledRule) int {
	cost := 0
	for i := range plan.steps {
		st := &plan.steps[i]
		if st.kind == stepBuiltin || len(st.keyPos) == 0 {
			continue
		}
		if st.kind == stepNegAtom && st.fullKey {
			continue
		}
		rel := db.Rel(st.pred)
		if rel == nil {
			continue
		}
		if db.existingIndex(st.pred, st.keyPos) != nil {
			continue
		}
		cost += rel.Len()
	}
	return cost
}

// pickVariant returns the cheapest driver variant of the rule for the
// current database (ties break toward the earliest body atom, so the choice
// is deterministic). Rules without positive atoms keep their compiled plan.
func (cr *compiledRule) pickVariant(db *Database) *compiledRule {
	if len(cr.variants) == 0 {
		return cr
	}
	best, bestCost := cr.variants[0], streamCost(db, cr.variants[0])
	for _, v := range cr.variants[1:] {
		if c := streamCost(db, v); c < bestCost {
			best, bestCost = v, c
		}
	}
	return best
}

// prepareStream resolves the plan's relations and probe structures for one
// streaming run: maintained indexes that already exist are reused as pure
// reads (never built, never marked hot); every other keyed step gets an
// ephemeral table from the evaluation's cache. Like prepare, it does all
// its work on the calling goroutine, so the returned context is a pure
// read over db — safe to share across parallel workers.
func (cr *compiledRule) prepareStream(db *Database, ec *evalCtx) *runCtx {
	rc := &runCtx{
		db:   db,
		rels: make([]*value.Relation, len(cr.steps)),
		ixs:  make([]*hashIndex, len(cr.steps)),
		tabs: make([]*joinTable, len(cr.steps)),
		exts: make([]*existTable, len(cr.steps)),
	}
	for i := range cr.steps {
		st := &cr.steps[i]
		if st.kind == stepBuiltin {
			continue
		}
		rel := db.Rel(st.pred)
		rc.rels[i] = rel
		if rel == nil || len(st.keyPos) == 0 {
			continue
		}
		if ix := db.existingIndex(st.pred, st.keyPos); ix != nil {
			rc.ixs[i] = ix
			continue
		}
		switch {
		case st.kind == stepNegAtom:
			rc.exts[i] = ec.existTab(rel, st.keyPos)
		case rel.Len() > maxJoinTableLen:
			rc.ixs[i] = db.Index(st.pred, st.keyPos)
		default:
			rc.tabs[i] = ec.joinTab(rel, st.keyPos)
		}
	}
	return rc
}

// runStreaming executes the rule's cheapest variant over db with ephemeral
// probe tables, emitting every derived head tuple — the streaming analogue
// of compiledRule.run.
func runStreaming(db *Database, ec *evalCtx, cr *compiledRule, emit func(value.Tuple) bool) error {
	v := cr.pickVariant(db)
	rc := v.prepareStream(db, ec)
	en := v.en
	for i := range en.set {
		en.set[i] = false
	}
	_, err := v.exec(rc, en, 0, emit)
	return err
}

// runFull executes one rule for a full evaluation in the mode selected by
// ec: streaming (non-nil) or the lazy materialized path.
func runFull(db *Database, ec *evalCtx, cr *compiledRule, emit func(value.Tuple) bool) error {
	if ec != nil {
		return runStreaming(db, ec, cr, emit)
	}
	return cr.run(db, emit)
}

// evalPredStreaming evaluates one IDB predicate's rules with the streaming
// executor and installs the result — the streaming counterpart of
// evalPredSequential.
func (e *Evaluator) evalPredStreaming(db *Database, ec *evalCtx, sym datalog.PredSym) error {
	out := value.NewRelation(e.arities[sym])
	for _, cr := range e.rules[sym] {
		if err := runStreaming(db, ec, cr, func(t value.Tuple) bool {
			out.Add(t)
			return true
		}); err != nil {
			return err
		}
	}
	e.installEval(db, sym, out)
	return nil
}
