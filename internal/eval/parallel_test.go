package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// This file is the trust harness for the parallel evaluator: differential
// fuzzing against the sequential evaluator and the naive reference
// (reference_test.go), and determinism checks across worker counts and
// repeated runs — the failure modes parallel evaluators are notorious for
// (merge-order leaks, shard-boundary drops, racy index probes). Run with
// -race: the prepared read-only probe discipline is part of what is tested.

// forceParallelPath drops the size thresholds so even tiny relations go
// through prepare/shard/merge, restoring them when the test ends.
func forceParallelPath(t *testing.T) {
	t.Helper()
	oldShard, oldWork := shardMinTuples, parallelMinWork
	shardMinTuples, parallelMinWork = 1, 1
	t.Cleanup(func() { shardMinTuples, parallelMinWork = oldShard, oldWork })
}

// assertSameIDB fails unless a and b hold identical relations for every IDB
// predicate of prog.
func assertSameIDB(t *testing.T, prog *datalog.Program, a, b *Database, label string) {
	t.Helper()
	for sym := range prog.IDBPreds() {
		ra, rb := a.Rel(sym), b.Rel(sym)
		if (ra == nil) != (rb == nil) || (ra != nil && !ra.Equal(rb)) {
			t.Fatalf("%s: relation %s differs\na=%v\nb=%v", label, sym, ra, rb)
		}
	}
}

// --- random program generation -----------------------------------------

// genCtx carries the state of one random program build.
type genCtx struct {
	rng   *rand.Rand
	preds []genPred // sources then generated IDB predicates
}

type genPred struct {
	name  string
	arity int
}

var genVarPool = []string{"X", "Y", "Z", "W"}

func (g *genCtx) constant() string { return fmt.Sprint(g.rng.Intn(4)) }

// genRule emits one safe rule text for head. Safety is by construction:
// every head, negation, and comparison variable is bound by a positive atom
// or a positive equality with a constant.
func (g *genCtx) genRule(head genPred, avail []genPred) string {
	bound := []string{}
	isBound := func(v string) bool {
		for _, b := range bound {
			if b == v {
				return true
			}
		}
		return false
	}
	var body []string

	// 1-2 positive atoms over the available predicates.
	for n := 1 + g.rng.Intn(2); n > 0; n-- {
		p := avail[g.rng.Intn(len(avail))]
		args := make([]string, p.arity)
		for i := range args {
			if g.rng.Intn(10) < 7 {
				v := genVarPool[g.rng.Intn(len(genVarPool))]
				args[i] = v
				if !isBound(v) {
					bound = append(bound, v)
				}
			} else {
				args[i] = g.constant()
			}
		}
		body = append(body, p.name+"("+strings.Join(args, ",")+")")
	}

	// Maybe an equality binding a fresh variable to a constant.
	if g.rng.Intn(10) < 3 {
		for _, v := range genVarPool {
			if !isBound(v) {
				body = append(body, v+" = "+g.constant())
				bound = append(bound, v)
				break
			}
		}
	}
	// boundOrConst picks a bound variable, falling back to a constant for
	// the (all-constant-atoms) case where nothing is bound.
	boundOrConst := func() string {
		if len(bound) == 0 {
			return g.constant()
		}
		return bound[g.rng.Intn(len(bound))]
	}
	// Maybe a comparison over a bound variable.
	if len(bound) > 0 && g.rng.Intn(10) < 4 {
		ops := []string{"<", "<=", ">", ">=", "<>"}
		v := bound[g.rng.Intn(len(bound))]
		body = append(body, v+" "+ops[g.rng.Intn(len(ops))]+" "+g.constant())
	}
	// Maybe a negated atom (vars bound, anonymous columns allowed).
	if g.rng.Intn(10) < 4 {
		p := avail[g.rng.Intn(len(avail))]
		args := make([]string, p.arity)
		for i := range args {
			switch r := g.rng.Intn(10); {
			case r < 6:
				args[i] = boundOrConst()
			case r < 8:
				args[i] = g.constant()
			default:
				args[i] = "_"
			}
		}
		body = append(body, "not "+p.name+"("+strings.Join(args, ",")+")")
	}

	headArgs := make([]string, head.arity)
	for i := range headArgs {
		if g.rng.Intn(4) < 3 {
			headArgs[i] = boundOrConst()
		} else {
			headArgs[i] = g.constant()
		}
	}
	return head.name + "(" + strings.Join(headArgs, ",") + ") :- " + strings.Join(body, ", ") + "."
}

// genProgram builds a random well-formed nonrecursive program: three int
// sources of arity 1-3 and a layered chain of IDB predicates whose rules
// only reference sources and earlier layers.
func genProgram(rng *rand.Rand) string {
	g := &genCtx{rng: rng, preds: []genPred{{"r0", 1}, {"r1", 2}, {"r2", 3}}}
	var b strings.Builder
	b.WriteString("source r0(a:int).\nsource r1(a:int, b:int).\nsource r2(a:int, b:int, c:int).\nview v(a:int).\n")
	nIDB := 2 + rng.Intn(4)
	for i := 0; i < nIDB; i++ {
		head := genPred{name: fmt.Sprintf("p%d", i), arity: 1 + rng.Intn(3)}
		avail := append([]genPred(nil), g.preds...)
		for n := 1 + rng.Intn(2); n > 0; n-- {
			b.WriteString(g.genRule(head, avail) + "\n")
		}
		g.preds = append(g.preds, head)
	}
	return b.String()
}

// genEDB populates the three sources with random small relations.
func genEDB(rng *rand.Rand) *Database {
	db := NewDatabase()
	for _, s := range []genPred{{"r0", 1}, {"r1", 2}, {"r2", 3}} {
		rel := value.NewRelation(s.arity)
		for i := 0; i < rng.Intn(6); i++ {
			tu := make(value.Tuple, s.arity)
			for j := range tu {
				tu[j] = value.Int(int64(rng.Intn(4)))
			}
			rel.Add(tu)
		}
		db.Set(datalog.Pred(s.name), rel)
	}
	return db
}

// TestParallelFuzzDifferential generates random well-formed nonrecursive
// programs and random EDBs and asserts that parallel evaluation (with the
// parallel machinery forced on), sequential evaluation, and the naive
// reference evaluator all agree.
func TestParallelFuzzDifferential(t *testing.T) {
	forceParallelPath(t)
	rng := rand.New(rand.NewSource(1234))
	const programs, trials = 25, 4
	for pi := 0; pi < programs; pi++ {
		src := genProgram(rng)
		prog := mustProg(t, src)
		seqEv, err := New(prog)
		if err != nil {
			t.Fatalf("program %d does not compile (generator bug):\n%s\n%v", pi, src, err)
		}
		parEv, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		parEv.SetParallelism(4)
		for trial := 0; trial < trials; trial++ {
			db := genEDB(rng)
			want := refEval(t, prog, db)
			seq := db.Clone()
			if err := seqEv.Eval(seq); err != nil {
				t.Fatalf("program %d trial %d: sequential: %v\n%s", pi, trial, err, src)
			}
			par := db.Clone()
			if err := parEv.Eval(par); err != nil {
				t.Fatalf("program %d trial %d: parallel: %v\n%s", pi, trial, err, src)
			}
			for sym := range prog.IDBPreds() {
				w, s, p := want.Rel(sym), seq.Rel(sym), par.Rel(sym)
				if (s == nil) != (w == nil) || (s != nil && !s.Equal(w)) {
					t.Fatalf("program %d trial %d: sequential %s differs from reference\nseq=%v\nref=%v\nprogram:\n%s\nEDB:\n%s",
						pi, trial, sym, s, w, src, db)
				}
				if (p == nil) != (w == nil) || (p != nil && !p.Equal(w)) {
					t.Fatalf("program %d trial %d: parallel %s differs from reference\npar=%v\nref=%v\nprogram:\n%s\nEDB:\n%s",
						pi, trial, sym, p, w, src, db)
				}
			}
		}
	}
}

// TestParallelMatchesSequentialCorpus runs the hand-shaped reference corpus
// through the forced parallel path as well.
func TestParallelMatchesSequentialCorpus(t *testing.T) {
	forceParallelPath(t)
	rng := rand.New(rand.NewSource(7))
	for pi, src := range referenceCorpus {
		prog := mustProg(t, src)
		seqEv, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		parEv, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		parEv.SetParallelism(3)
		edb := map[string]int{}
		for _, s := range prog.Sources {
			edb[s.Name] = s.Arity()
		}
		edb[prog.View.Name] = prog.View.Arity()
		for trial := 0; trial < 20; trial++ {
			db := NewDatabase()
			for name, arity := range edb {
				rel := value.NewRelation(arity)
				for i := 0; i < rng.Intn(6); i++ {
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					rel.Add(tu)
				}
				db.Set(datalog.Pred(name), rel)
			}
			seq := db.Clone()
			if err := seqEv.Eval(seq); err != nil {
				t.Fatal(err)
			}
			par := db.Clone()
			if err := parEv.Eval(par); err != nil {
				t.Fatal(err)
			}
			assertSameIDB(t, prog, seq, par, fmt.Sprintf("corpus program %d trial %d", pi, trial))
		}
	}
}

// --- determinism ---------------------------------------------------------

// bigJoinProgram exercises real sharding at the default thresholds: a
// 6000-tuple outer scan, an indexed join, an anti-join, a comparison layer,
// and a two-rule union merged from different shards.
const bigJoinProgram = `
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int).
j(X,Z) :- r(X,Y), s(Y,Z).
lone(X,Y) :- r(X,Y), not s(Y,_).
top(X) :- j(X,Z), Z > 150.
u(X) :- top(X).
u(X) :- lone(X,Y), Y >= 300.
`

func bigJoinDB() *Database {
	db := NewDatabase()
	r := value.NewRelation(2)
	for i := 0; i < 6000; i++ {
		r.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 500))})
	}
	s := value.NewRelation(2)
	for k := 0; k < 300; k++ {
		s.Add(value.Tuple{value.Int(int64(k)), value.Int(int64(k * 3))})
	}
	db.Set(datalog.Pred("r"), r)
	db.Set(datalog.Pred("s"), s)
	return db
}

// fingerprint renders the evaluation-observable state: every IDB relation
// (sorted) plus index state observed through point lookups on the join
// result, with lookup results compared as sorted sets (bucket order within
// an index is not part of the evaluator's contract).
func fingerprint(t *testing.T, prog *datalog.Program, db *Database) string {
	t.Helper()
	var b strings.Builder
	syms := make([]string, 0)
	for sym := range prog.IDBPreds() {
		syms = append(syms, sym.String())
	}
	sort.Strings(syms)
	for _, name := range syms {
		rel := db.Rel(datalog.Pred(name))
		fmt.Fprintf(&b, "%s = %v\n", name, rel)
	}
	for probe := 0; probe < 50; probe++ {
		key := value.Tuple{value.Int(int64(probe * 7 % 6000))}
		hits := db.Lookup(datalog.Pred("j"), []int{0}, key)
		lines := make([]string, len(hits))
		for i, h := range hits {
			lines[i] = h.String()
		}
		sort.Strings(lines)
		fmt.Fprintf(&b, "lookup j(%v) = %s\n", key, strings.Join(lines, " "))
	}
	return b.String()
}

// TestParallelDeterminism runs the big-join workload repeatedly at
// parallelism 1, 2 and 8 over the same database and requires every run to
// produce identical relations and lookup-observable index contents —
// the test that catches merge-order leaks.
func TestParallelDeterminism(t *testing.T) {
	prog := mustProg(t, bigJoinProgram)
	db := bigJoinDB()
	var want string
	for _, p := range []int{1, 2, 8} {
		ev, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetParallelism(p)
		for run := 0; run < 3; run++ {
			if err := ev.Eval(db); err != nil {
				t.Fatal(err)
			}
			got := fingerprint(t, prog, db)
			if want == "" {
				want = got
			} else if got != want {
				t.Fatalf("parallelism %d run %d diverged:\n--- got ---\n%s\n--- want ---\n%s", p, run, got, want)
			}
		}
	}
}

// TestParallelLargeMatchesSequential checks the default-threshold sharded
// path (no forcing) against sequential output on the large workload.
func TestParallelLargeMatchesSequential(t *testing.T) {
	prog := mustProg(t, bigJoinProgram)
	seqEv, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	parEv, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	parEv.SetParallelism(DefaultParallelism())
	seq, par := bigJoinDB(), bigJoinDB()
	if err := seqEv.Eval(seq); err != nil {
		t.Fatal(err)
	}
	if err := parEv.Eval(par); err != nil {
		t.Fatal(err)
	}
	assertSameIDB(t, prog, seq, par, "big join")
	if j := par.Rel(datalog.Pred("j")); j == nil || j.Len() == 0 {
		t.Fatal("join result unexpectedly empty; the workload is not exercising the shards")
	}
}

// --- EvalQuery dependency cone ------------------------------------------

// TestEvalQueryCone verifies that EvalQuery evaluates only the goal's
// dependency cone and leaves unrelated IDB predicates untouched.
func TestEvalQueryCone(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
source s(a:int).
view v(a:int).
a(X) :- r(X).
b(X) :- a(X), s(X).
unrelated(X) :- s(X), not r(X).
`)
	ev, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Set(datalog.Pred("r"), value.RelationOf(1, value.Tuple{value.Int(1)}, value.Tuple{value.Int(2)}))
	db.Set(datalog.Pred("s"), value.RelationOf(1, value.Tuple{value.Int(2)}, value.Tuple{value.Int(3)}))

	// Plant a stale relation for the unrelated predicate: a full Eval would
	// replace it; a cone-restricted EvalQuery must not.
	stale := value.RelationOf(1, value.Tuple{value.Int(99)})
	db.Set(datalog.Pred("unrelated"), stale)

	got, err := ev.EvalQuery(db, datalog.Pred("b"))
	if err != nil {
		t.Fatal(err)
	}
	want := value.RelationOf(1, value.Tuple{value.Int(2)})
	if !got.Equal(want) {
		t.Fatalf("b = %v, want %v", got, want)
	}
	if a := db.Rel(datalog.Pred("a")); a == nil || a.Len() != 2 {
		t.Fatalf("cone predicate a should be evaluated, got %v", a)
	}
	if u := db.Rel(datalog.Pred("unrelated")); u != stale {
		t.Fatalf("unrelated predicate was touched: %v", u)
	}
	if !db.Rel(datalog.Pred("unrelated")).Contains(value.Tuple{value.Int(99)}) {
		t.Fatal("stale contents of unrelated predicate were replaced")
	}

	// A full Eval still recomputes everything.
	if err := ev.Eval(db); err != nil {
		t.Fatal(err)
	}
	wantU := value.RelationOf(1, value.Tuple{value.Int(3)})
	if u := db.Rel(datalog.Pred("unrelated")); !u.Equal(wantU) {
		t.Fatalf("after full Eval, unrelated = %v, want %v", u, wantU)
	}
}

// TestEvalQueryUnknownGoal keeps the pre-cone behavior for a goal with no
// rules: an empty relation, no error.
func TestEvalQueryUnknownGoal(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
a(X) :- r(X).
`)
	ev, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Set(datalog.Pred("r"), value.RelationOf(1, value.Tuple{value.Int(1)}))
	got, err := ev.EvalQuery(db, datalog.Pred("nosuch"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Fatalf("unknown goal should yield an empty relation, got %v", got)
	}
}
