package eval

import (
	"math/rand"
	"testing"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/value"
)

// This file differential-tests the compiled evaluator against a tiny,
// obviously-correct reference implementation: naive bottom-up evaluation by
// enumerating every total assignment of the rule variables over the active
// domain. No indexes, no join ordering — just the textbook semantics.

// refEval evaluates the program naively and returns the database extended
// with the IDB relations.
func refEval(t *testing.T, prog *datalog.Program, db *Database) *Database {
	t.Helper()
	order, err := analysis.Stratify(prog)
	if err != nil {
		t.Fatal(err)
	}
	out := db.Clone()

	// Active domain: every value in the database plus program constants.
	seen := make(map[string]bool)
	var domain []value.Value
	addVal := func(v value.Value) {
		k := value.Tuple{v}.Key()
		if !seen[k] {
			seen[k] = true
			domain = append(domain, v)
		}
	}
	for _, p := range db.Preds() {
		db.Rel(p).Each(func(tu value.Tuple) {
			for _, v := range tu {
				addVal(v)
			}
		})
	}
	for _, r := range prog.Rules {
		if r.Head != nil {
			for _, tm := range r.Head.Args {
				if tm.IsConst() {
					addVal(tm.Const)
				}
			}
		}
		for _, l := range r.Body {
			if l.Atom != nil {
				for _, tm := range l.Atom.Args {
					if tm.IsConst() {
						addVal(tm.Const)
					}
				}
			} else {
				if l.Builtin.L.IsConst() {
					addVal(l.Builtin.L.Const)
				}
				if l.Builtin.R.IsConst() {
					addVal(l.Builtin.R.Const)
				}
			}
		}
	}

	holds := func(env map[string]value.Value, l datalog.Literal) bool {
		resolve := func(tm datalog.Term) (value.Value, bool) {
			switch tm.Kind {
			case datalog.TermConst:
				return tm.Const, true
			case datalog.TermVar:
				v, ok := env[tm.Var]
				return v, ok
			default:
				return value.Value{}, false // anonymous: handled per-atom
			}
		}
		if l.Builtin != nil {
			lv, _ := resolve(l.Builtin.L)
			rv, _ := resolve(l.Builtin.R)
			res := l.Builtin.Op.Eval(lv, rv)
			if l.Neg {
				return !res
			}
			return res
		}
		rel := out.Rel(l.Atom.Pred)
		match := false
		if rel != nil {
			rel.Each(func(tu value.Tuple) {
				if match {
					return
				}
				ok := true
				for i, tm := range l.Atom.Args {
					if tm.IsAnon() {
						continue
					}
					v, bound := resolve(tm)
					if !bound || !v.Equal(tu[i]) {
						ok = false
						break
					}
				}
				if ok {
					match = true
				}
			})
		}
		if l.Neg {
			return !match
		}
		return match
	}

	for _, sym := range order {
		rules := prog.RulesFor(sym)
		rel := value.NewRelation(rules[0].Head.Arity())
		for _, r := range rules {
			vars := r.Vars()
			env := make(map[string]value.Value)
			var enumerate func(i int)
			enumerate = func(i int) {
				if i == len(vars) {
					for _, l := range r.Body {
						if !holds(env, l) {
							return
						}
					}
					tu := make(value.Tuple, len(r.Head.Args))
					for j, tm := range r.Head.Args {
						if tm.IsConst() {
							tu[j] = tm.Const
						} else {
							tu[j] = env[tm.Var]
						}
					}
					rel.Add(tu)
					return
				}
				for _, v := range domain {
					env[vars[i]] = v
					enumerate(i + 1)
				}
				delete(env, vars[i])
			}
			enumerate(0)
		}
		out.Set(sym, rel)
	}
	return out
}

// randomProgramCorpus is a set of hand-shaped programs covering the
// evaluator's features: joins, negation, anonymous variables, constants,
// comparisons, equality binding, repeated variables, multi-rule unions,
// stratified aux chains.
var referenceCorpus = []string{
	`
source r(a:int).
source s(a:int).
view v(a:int).
u(X) :- r(X).
u(X) :- s(X).
d(X) :- r(X), not s(X).
`,
	`
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int).
j(X,Z) :- r(X,Y), s(Y,Z).
k(X) :- r(X,X).
l(X) :- r(X,_), not s(X,_).
`,
	`
source r(a:int, b:int).
view v(a:int, b:int).
m(X,Y) :- r(X,Y), Y > 1.
-r(X,Y) :- m(X,Y), not v(X,Y).
+r(X,Y) :- v(X,Y), not r(X,Y), X <= 2.
`,
	`
source r(a:int, b:int).
view v(a:int).
c1(X,Y) :- r(X,Y), Y = 2.
c2(X,Y) :- r(X,Y), not Y = 2.
c3(X,2) :- r(X,_).
c4(X,Y) :- r(X,Z), Y = Z.
`,
	`
source p(a:int).
source q(a:int).
view v(a:int).
a1(X) :- p(X), not q(X).
a2(X) :- q(X), not a1(X).
a3(X) :- a2(X), p(X).
a4(X) :- a3(X), X < 3, X >= 0, X <> 1.
`,
}

func TestCompiledEvaluatorMatchesReference(t *testing.T) {
	forceParallelPath(t) // the parallel evaluator must agree even on tiny EDBs
	rng := rand.New(rand.NewSource(99))
	for pi, src := range referenceCorpus {
		prog := mustProg(t, src)
		ev, err := New(prog)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		evPar, err := New(prog)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		evPar.SetParallelism(4)
		// Determine EDB relations and arities from declarations and use.
		edb := map[string]int{}
		for _, s := range prog.Sources {
			edb[s.Name] = s.Arity()
		}
		edb[prog.View.Name] = prog.View.Arity()

		for trial := 0; trial < 40; trial++ {
			db := NewDatabase()
			for name, arity := range edb {
				rel := value.NewRelation(arity)
				for i := 0; i < rng.Intn(6); i++ {
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					rel.Add(tu)
				}
				db.Set(datalog.Pred(name), rel)
			}
			want := refEval(t, prog, db)
			got := db.Clone()
			if err := ev.Eval(got); err != nil {
				t.Fatal(err)
			}
			gotPar := db.Clone()
			if err := evPar.Eval(gotPar); err != nil {
				t.Fatal(err)
			}
			for sym := range prog.IDBPreds() {
				a := got.Rel(sym)
				b := want.Rel(sym)
				if (a == nil) != (b == nil) || (a != nil && !a.Equal(b)) {
					t.Fatalf("program %d trial %d: %s differs\ncompiled=%v\nreference=%v\ninput:\n%s",
						pi, trial, sym, a, b, db)
				}
				p := gotPar.Rel(sym)
				if (p == nil) != (b == nil) || (p != nil && !p.Equal(b)) {
					t.Fatalf("program %d trial %d: parallel %s differs\nparallel=%v\nreference=%v\ninput:\n%s",
						pi, trial, sym, p, b, db)
				}
			}
		}
	}
}
