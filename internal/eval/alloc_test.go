package eval

import (
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Allocation-regression guards for the PR 1 hot paths. The parallel
// evaluator merges per-worker partial relations and resolves indexes up
// front; none of that may reintroduce per-tuple allocations into the warm
// paths below. testing.AllocsPerRun bounds are exact where the path is
// allocation-free and small fixed budgets where Go's map/closure machinery
// makes zero unattainable — either way, a per-tuple regression (allocations
// scaling with relation or delta size) trips them loudly.

func allocGuardDB(n int) *Database {
	db := NewDatabase()
	rel := value.NewRelation(2)
	for i := 0; i < n; i++ {
		rel.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 100))})
	}
	db.Set(datalog.Pred("r"), rel)
	return db
}

// A warm index probe hashes the key projection in place: zero allocations.
func TestAllocsIndexProbe(t *testing.T) {
	db := allocGuardDB(50000)
	p := datalog.Pred("r")
	positions := []int{0}
	key := value.Tuple{value.Int(31234)}
	db.Index(p, positions) // warm
	if allocs := testing.AllocsPerRun(200, func() {
		if len(db.Lookup(p, positions, key)) != 1 {
			t.Fatal("probe must hit exactly one tuple")
		}
	}); allocs != 0 {
		t.Errorf("warm index probe allocates %v objects per run, want 0", allocs)
	}
}

// The prepared read-only probe used by parallel workers is the same pure
// lookup: zero allocations.
func TestAllocsPreparedProbe(t *testing.T) {
	db := allocGuardDB(50000)
	ix := db.Index(datalog.Pred("r"), []int{0})
	key := value.Tuple{value.Int(1234)}
	if allocs := testing.AllocsPerRun(200, func() {
		if len(ix.lookup(key)) != 1 {
			t.Fatal("probe must hit exactly one tuple")
		}
	}); allocs != 0 {
		t.Errorf("prepared probe allocates %v objects per run, want 0", allocs)
	}
}

// Relation membership hashes the tuple in place: zero allocations.
func TestAllocsContains(t *testing.T) {
	db := allocGuardDB(50000)
	rel := db.Rel(datalog.Pred("r"))
	hit := value.Tuple{value.Int(777), value.Int(77)}
	miss := value.Tuple{value.Int(-5), value.Int(0)}
	if allocs := testing.AllocsPerRun(200, func() {
		if !rel.Contains(hit) || rel.Contains(miss) {
			t.Fatal("membership answers changed")
		}
	}); allocs != 0 {
		t.Errorf("Contains allocates %v objects per run, want 0", allocs)
	}
}

// Applying a delta maintains the relation and its live indexes in place.
// The budget is a small constant (hash-bucket map bookkeeping when a bucket
// empties and is re-created); what the guard forbids is scaling with the
// base relation or with index count.
func TestAllocsInsertDeleteWithIndexes(t *testing.T) {
	db := allocGuardDB(50000)
	p := datalog.Pred("r")
	db.Index(p, []int{0})
	db.Index(p, []int{1})
	tu := value.Tuple{value.Int(900001), value.Int(3)}
	// Warm one cycle so steady-state bucket slices exist.
	db.Insert(p, tu)
	db.Delete(p, tu)
	const budget = 8
	if allocs := testing.AllocsPerRun(200, func() {
		db.Insert(p, tu)
		db.Delete(p, tu)
	}); allocs > budget {
		t.Errorf("insert+delete with 2 live indexes allocates %v objects per run, budget %d", allocs, budget)
	}
}

// A full ApplyDeltas round (non-contradiction check + index-maintaining
// insert/delete) against a large base relation stays within a fixed budget
// independent of the base size.
func TestAllocsApplyDeltas(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int).
view v(a:int, b:int).
+r(X,Y) :- +v(X,Y), not r(X,Y).
`)
	db := allocGuardDB(50000)
	db.Index(datalog.Pred("r"), []int{0})
	ins := value.RelationOf(2, value.Tuple{value.Int(700001), value.Int(1)})
	db.Set(datalog.Ins("r"), ins)
	db.Set(datalog.Del("r"), value.NewRelation(2))
	// First application inserts the tuple; subsequent rounds are no-ops
	// (set semantics) and must not allocate per delta tuple.
	if _, _, err := ApplyDeltas(db, prog.Sources); err != nil {
		t.Fatal(err)
	}
	const budget = 8
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := ApplyDeltas(db, prog.Sources); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Errorf("steady-state ApplyDeltas allocates %v objects per run, budget %d", allocs, budget)
	}
}

// The counted-probe hot path of the IVM state: adjusting the support of a
// warm tuple (bucket probe + in-place count update) allocates nothing, in
// both directions.
func TestAllocsCountedAdjust(t *testing.T) {
	c := value.NewCounted(2)
	tu := value.Tuple{value.Int(7), value.Int(7)}
	c.Adjust(tu, 2) // warm: entry exists from here on
	if allocs := testing.AllocsPerRun(200, func() {
		c.Adjust(tu, 1)
		c.Adjust(tu, -1)
	}); allocs != 0 {
		t.Errorf("warm counted adjust allocates %v objects per run, want 0", allocs)
	}
}

// A steady-state EvalDelta round — one-tuple delta against a large base —
// stays within a fixed budget independent of the base size: the counted
// probes, old-version reads and index maintenance are all O(|Δ|).
func TestAllocsEvalDeltaSteadyState(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int).
source s(b:int).
view v(a:int).
big(X,Y) :- r(X,Y), s(Y).
neg(X) :- r(X,_), not s(X).
`)
	ev, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := allocGuardDB(50000)
	srel := value.NewRelation(1)
	for i := 0; i < 100; i++ {
		srel.Add(value.Tuple{value.Int(int64(i))})
	}
	db.Set(datalog.Pred("s"), srel)
	db.Set(datalog.Pred("v"), value.NewRelation(1))
	if _, err := ev.EvalDelta(db, nil); err != nil { // init counts
		t.Fatal(err)
	}
	p := datalog.Pred("r")
	tu := value.Tuple{value.Int(900001), value.Int(5)}
	d := NewDelta(2)
	// A fixed budget: maps, per-predicate delta relations and the emitted
	// head tuples — none of it scales with the 50k-tuple base.
	const budget = 120
	if allocs := testing.AllocsPerRun(100, func() {
		d.Ins, d.Del = value.NewRelation(2), value.NewRelation(2)
		db.Insert(p, tu)
		d.Ins.Add(tu)
		if _, err := ev.EvalDelta(db, map[datalog.PredSym]Delta{p: d}); err != nil {
			t.Fatal(err)
		}
		db.Delete(p, tu)
		d.Ins, d.Del = value.NewRelation(2), value.NewRelation(2)
		d.Del.Add(tu)
		if _, err := ev.EvalDelta(db, map[datalog.PredSym]Delta{p: d}); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Errorf("steady-state EvalDelta allocates %v objects per run, budget %d", allocs, budget)
	}
}
