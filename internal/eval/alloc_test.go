package eval

import (
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Allocation-regression guards for the PR 1 hot paths. The parallel
// evaluator merges per-worker partial relations and resolves indexes up
// front; none of that may reintroduce per-tuple allocations into the warm
// paths below. testing.AllocsPerRun bounds are exact where the path is
// allocation-free and small fixed budgets where Go's map/closure machinery
// makes zero unattainable — either way, a per-tuple regression (allocations
// scaling with relation or delta size) trips them loudly.

func allocGuardDB(n int) *Database {
	db := NewDatabase()
	rel := value.NewRelation(2)
	for i := 0; i < n; i++ {
		rel.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 100))})
	}
	db.Set(datalog.Pred("r"), rel)
	return db
}

// A warm index probe hashes the key projection in place: zero allocations.
func TestAllocsIndexProbe(t *testing.T) {
	db := allocGuardDB(50000)
	p := datalog.Pred("r")
	positions := []int{0}
	key := value.Tuple{value.Int(31234)}
	db.Index(p, positions) // warm
	if allocs := testing.AllocsPerRun(200, func() {
		if len(db.Lookup(p, positions, key)) != 1 {
			t.Fatal("probe must hit exactly one tuple")
		}
	}); allocs != 0 {
		t.Errorf("warm index probe allocates %v objects per run, want 0", allocs)
	}
}

// The prepared read-only probe used by parallel workers is the same pure
// lookup: zero allocations.
func TestAllocsPreparedProbe(t *testing.T) {
	db := allocGuardDB(50000)
	ix := db.Index(datalog.Pred("r"), []int{0})
	key := value.Tuple{value.Int(1234)}
	if allocs := testing.AllocsPerRun(200, func() {
		if len(ix.lookup(key)) != 1 {
			t.Fatal("probe must hit exactly one tuple")
		}
	}); allocs != 0 {
		t.Errorf("prepared probe allocates %v objects per run, want 0", allocs)
	}
}

// Relation membership hashes the tuple in place: zero allocations.
func TestAllocsContains(t *testing.T) {
	db := allocGuardDB(50000)
	rel := db.Rel(datalog.Pred("r"))
	hit := value.Tuple{value.Int(777), value.Int(77)}
	miss := value.Tuple{value.Int(-5), value.Int(0)}
	if allocs := testing.AllocsPerRun(200, func() {
		if !rel.Contains(hit) || rel.Contains(miss) {
			t.Fatal("membership answers changed")
		}
	}); allocs != 0 {
		t.Errorf("Contains allocates %v objects per run, want 0", allocs)
	}
}

// Applying a delta maintains the relation and its live indexes in place.
// The budget is a small constant (hash-bucket map bookkeeping when a bucket
// empties and is re-created); what the guard forbids is scaling with the
// base relation or with index count.
func TestAllocsInsertDeleteWithIndexes(t *testing.T) {
	db := allocGuardDB(50000)
	p := datalog.Pred("r")
	db.Index(p, []int{0})
	db.Index(p, []int{1})
	tu := value.Tuple{value.Int(900001), value.Int(3)}
	// Warm one cycle so steady-state bucket slices exist.
	db.Insert(p, tu)
	db.Delete(p, tu)
	const budget = 8
	if allocs := testing.AllocsPerRun(200, func() {
		db.Insert(p, tu)
		db.Delete(p, tu)
	}); allocs > budget {
		t.Errorf("insert+delete with 2 live indexes allocates %v objects per run, budget %d", allocs, budget)
	}
}

// A full ApplyDeltas round (non-contradiction check + index-maintaining
// insert/delete) against a large base relation stays within a fixed budget
// independent of the base size.
func TestAllocsApplyDeltas(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int).
view v(a:int, b:int).
+r(X,Y) :- +v(X,Y), not r(X,Y).
`)
	db := allocGuardDB(50000)
	db.Index(datalog.Pred("r"), []int{0})
	ins := value.RelationOf(2, value.Tuple{value.Int(700001), value.Int(1)})
	db.Set(datalog.Ins("r"), ins)
	db.Set(datalog.Del("r"), value.NewRelation(2))
	// First application inserts the tuple; subsequent rounds are no-ops
	// (set semantics) and must not allocate per delta tuple.
	if _, _, err := ApplyDeltas(db, prog.Sources); err != nil {
		t.Fatal(err)
	}
	const budget = 8
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := ApplyDeltas(db, prog.Sources); err != nil {
			t.Fatal(err)
		}
	}); allocs > budget {
		t.Errorf("steady-state ApplyDeltas allocates %v objects per run, budget %d", allocs, budget)
	}
}
