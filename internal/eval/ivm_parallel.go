// Parallel delta propagation and sharded counted initialization for the
// counting IVM (ivm.go), reusing the level scheduler discipline of
// parallel.go: predicates of one DAG level are independent, so a level's
// delta rules (or counted init rules) can run concurrently after a serial
// prepare phase resolves every index the workers will probe. Workers only
// read the database (hashIndex.lookup and Relation iteration are pure) and
// adjust per-predicate private state — support counts and partial
// relations — which the barrier then applies serially in level order, so
// parallel propagation produces byte-for-byte the deltas, counts and
// relations of the sequential path (ivm_test.go pins this differentially).
//
// Both paths gate on parallelMinWork: a steady-state single-transaction
// delta (a handful of tuples) stays on the sequential path and keeps its
// allocation profile; only wide coalesced batches — the group-commit write
// pipeline of the engine — and bulk counted inits fan out.
package eval

import (
	"birds/internal/datalog"
	"birds/internal/value"
)

// evalDeltaLevelParallel propagates one level's delta rules with up to
// e.parallelism workers, one task per predicate (a predicate's rules adjust
// its private support counts, so the predicate is the finest safe grain).
// Net deltas are applied at the barrier, serially, in level order.
func (e *Evaluator) evalDeltaLevelParallel(dc *deltaCtx, level []datalog.PredSym, out map[datalog.PredSym]Delta) error {
	// Serial prepare: resolve every index an applicable delta rule may
	// probe, so the parallel phase never mutates the database.
	active := level[:0:0]
	for _, sym := range level {
		applicable := false
		for _, dr := range e.deltaRules[sym] {
			if _, ok := dc.changed[dr.driver]; ok {
				dr.prepare(dc.db)
				applicable = true
			}
		}
		if applicable {
			active = append(active, sym)
		}
	}
	if len(active) == 0 {
		return nil
	}
	defer func() {
		for _, sym := range active {
			for _, dr := range e.deltaRules[sym] {
				dr.reset()
			}
		}
	}()

	inss := make([]*value.Relation, len(active))
	dels := make([]*value.Relation, len(active))
	errs := make([]error, len(active))
	runTasks(e.parallelism, len(active), func(i int) {
		inss[i], dels[i], errs[i] = e.deltaForPred(dc, active[i])
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, sym := range active {
		e.applyPredDelta(dc, sym, inss[i], dels[i], out)
	}
	return nil
}

// initIVMParallel is initIVM with the counted full evaluation of each level
// fanned out: rules are prepared serially (read-only probe contexts, as in
// evalParallel), the outer scan of a large rule is sharded across workers,
// and each task counts derivations into a private CountedRelation; the
// barrier merges the partial counts per predicate (support counts are sums
// over disjoint derivation sets, so the merge is order-independent) and
// installs the materialized relations in level order.
func (e *Evaluator) initIVMParallel(db *Database) (map[datalog.PredSym]Delta, error) {
	var ec *evalCtx
	if e.mode == ExecStreaming {
		ec = newEvalCtx()
	}
	counts := make(map[datalog.PredSym]*value.CountedRelation, len(e.order))
	out := make(map[datalog.PredSym]Delta)
	for _, level := range e.levels {
		weight := 0
		for _, sym := range level {
			for _, cr := range e.rules[sym] {
				weight += cr.outerWeight(db)
			}
		}
		if weight < parallelMinWork {
			for _, sym := range level {
				cnt := value.NewCounted(e.arities[sym])
				rel := value.NewRelation(e.arities[sym])
				for _, cr := range e.rules[sym] {
					if err := runFull(db, ec, cr, func(t value.Tuple) bool {
						if appeared, _ := cnt.Adjust(t, 1); appeared {
							rel.Add(t)
						}
						return true
					}); err != nil {
						return nil, err
					}
				}
				e.installCounted(db, sym, rel, out)
				counts[sym] = cnt
			}
			continue
		}

		// Serial prepare, then one task per (rule, shard) counting into a
		// private partial.
		type initTask struct {
			cr        *compiledRule
			rc        *runCtx
			out       *value.CountedRelation
			shardStep int
			shard     int
			nshards   int
		}
		var tasks []initTask
		partials := make([][]*value.CountedRelation, len(level))
		for si, sym := range level {
			arity := e.arities[sym]
			for _, cr := range e.rules[sym] {
				plan, rc := cr.preparePlan(db, ec)
				shardStep, nshards := plan.shardPlan(rc, e.parallelism)
				for s := 0; s < nshards; s++ {
					partial := value.NewCounted(arity)
					partials[si] = append(partials[si], partial)
					tasks = append(tasks, initTask{
						cr: plan, rc: rc, out: partial,
						shardStep: shardStep, shard: s, nshards: nshards,
					})
				}
			}
		}
		errs := make([]error, len(tasks))
		runTasks(e.parallelism, len(tasks), func(ti int) {
			t := &tasks[ti]
			en := t.cr.newEnv()
			en.shardStep, en.shard, en.nshards = t.shardStep, t.shard, t.nshards
			_, errs[ti] = t.cr.exec(t.rc, en, 0, func(tu value.Tuple) bool {
				t.out.Adjust(tu, 1)
				return true
			})
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Barrier merge: sum the partial counts per predicate. Each
		// derivation was counted by exactly one task (shards partition the
		// outer scan), so summed counts equal the sequential counts.
		for si, sym := range level {
			cnt := value.NewCounted(e.arities[sym])
			rel := value.NewRelation(e.arities[sym])
			for _, partial := range partials[si] {
				partial.Each(func(t value.Tuple, n int) {
					if appeared, _ := cnt.Adjust(t, n); appeared {
						rel.Add(t)
					}
				})
			}
			e.installCounted(db, sym, rel, out)
			counts[sym] = cnt
		}
	}
	e.ivm = &ivmState{db: db, counts: counts}
	return out, nil
}
