package eval

import (
	"fmt"
	"strings"
)

// Explain renders the compiled query plans: for every rule, the chosen
// literal order and, per step, whether it scans, probes a hash index (and
// on which argument positions), or tests membership directly. The output is
// for humans debugging strategy performance — e.g. verifying that an
// incrementalized program is driven by the small delta relations instead
// of scanning a base table.
func (e *Evaluator) Explain() string {
	var b strings.Builder
	for _, sym := range e.order {
		for _, cr := range e.rules[sym] {
			writeRulePlan(&b, cr)
		}
	}
	for _, cr := range e.constraints {
		writeRulePlan(&b, cr)
	}
	return b.String()
}

func writeRulePlan(b *strings.Builder, cr *compiledRule) {
	fmt.Fprintf(b, "rule %s\n", cr.rule)
	for i := range cr.steps {
		st := &cr.steps[i]
		switch st.kind {
		case stepScan:
			if len(st.keyPos) == 0 {
				fmt.Fprintf(b, "  %d. scan %s (full)\n", i+1, st.pred)
			} else {
				fmt.Fprintf(b, "  %d. probe %s via index on positions %v\n", i+1, st.pred, st.keyPos)
			}
		case stepNegAtom:
			if st.fullKey {
				fmt.Fprintf(b, "  %d. anti-join %s by direct membership\n", i+1, st.pred)
			} else {
				fmt.Fprintf(b, "  %d. anti-join %s via index on positions %v\n", i+1, st.pred, st.keyPos)
			}
		case stepBuiltin:
			switch {
			case st.bindLt, st.bindRt:
				fmt.Fprintf(b, "  %d. bind via equality\n", i+1)
			default:
				neg := ""
				if st.neg {
					neg = "negated "
				}
				fmt.Fprintf(b, "  %d. filter %s%s\n", i+1, neg, st.op)
			}
		}
	}
}
