// Counting-based incremental view maintenance (IVM) for the compiled
// evaluator. EvalDelta keeps every IDB relation materialized together with
// per-tuple support counts (the number of derivations currently producing
// the tuple) and, given net insert/delete deltas on the EDB relations,
// propagates ±Δ through the rule DAG level by level instead of recomputing
// any relation from scratch.
//
// For one rule H :- L1, ..., Ln the change of the derivation multiset under
// a database change old → new telescopes into the classic delta expansion
//
//	Δ(L1 ⋈ … ⋈ Ln) = Σ_i  L1ⁿᵉʷ ⋈ … ⋈ L_{i-1}ⁿᵉʷ ⋈ ΔLi ⋈ L_{i+1}ᵒˡᵈ ⋈ … ⋈ Lnᵒˡᵈ
//
// which is exact for the support counts: every derivation that exists after
// the change but not before is produced exactly once with sign +1, and every
// derivation that disappeared exactly once with sign −1. A head tuple enters
// its relation when its support crosses 0 → positive and leaves when it
// returns to 0, so negation is exact per stratum (a tuple "dies" only when
// its last derivation is gone) — counting IVM is exact for the nonrecursive
// stratified NR-Datalog¬ class this evaluator accepts, no over-deletion /
// re-derivation pass needed.
//
// For a positive literal, ΔLi ranges over the relation's net tuple delta.
// For a negated literal not q(ā), the literal is a pure filter (safety
// guarantees its variables are bound elsewhere), and ΔLi ranges over the
// projections of q's delta tuples onto the literal's bound positions whose
// truth value actually flipped: a projection key flips to true when the last
// matching q tuple disappeared, and to false when the first one appeared.
// Old versions of relations are never snapshotted: a literal in old mode
// reads the current (new) relation adjusted through the delta — tuples of
// Δ⁺ are skipped and tuples of Δ⁻ are added back — so one propagation step
// costs O(|Δ| · joins), never O(|DB|).
package eval

import (
	"birds/internal/datalog"
	"birds/internal/value"
)

// Delta is the net set-level change of one relation across an update:
// Ins holds tuples that are present now and were absent before, Del tuples
// that were present before and are absent now. The two sets are disjoint,
// and the relation the delta describes is already at its new state when the
// delta is handed to EvalDelta.
type Delta struct {
	Ins, Del *value.Relation
}

// NewDelta returns an empty delta of the given arity.
func NewDelta(arity int) Delta {
	return Delta{Ins: value.NewRelation(arity), Del: value.NewRelation(arity)}
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool {
	return (d.Ins == nil || d.Ins.Empty()) && (d.Del == nil || d.Del.Empty())
}

// ivmState is the maintenance state EvalDelta keeps between calls: the
// database whose IDB relations the support counts describe. The state is
// valid only while every change to db's EDB relations flows through
// EvalDelta; a full evaluation that actually changes an IDB relation drops
// it (a no-op evaluation leaves the materialized state — and therefore the
// counts describing it — intact).
type ivmState struct {
	db     *Database
	counts map[datalog.PredSym]*value.CountedRelation
}

// InvalidateIVM drops the maintenance state; the next EvalDelta
// re-initializes the support counts with one full counted evaluation.
// Callers use it when db's relations changed behind the evaluator's back.
func (e *Evaluator) InvalidateIVM() { e.ivm = nil }

// IVMReady reports whether EvalDelta has maintenance state for db, i.e.
// whether the next EvalDelta call will propagate in O(|Δ|) instead of
// re-initializing.
func (e *Evaluator) IVMReady(db *Database) bool { return e.ivm != nil && e.ivm.db == db }

// EvalDelta incrementally maintains every IDB relation of db under the
// given net EDB deltas. db must already be at its new EDB state (deltas
// applied); edb maps each changed EDB predicate to its net delta. The IDB
// relations of db are updated in place (indexes maintained incrementally),
// and the returned map holds the net delta of every IDB relation that
// changed.
//
// The first call on a database (or the first after a full Eval invalidated
// the state) runs one counted full evaluation — O(|DB|) — to establish the
// support counts; every later call costs O(|Δ|) join work. On error the
// maintenance state is dropped and db's IDB relations must be considered
// stale (re-establish them with Eval).
//
// Like Eval, EvalDelta must not be called concurrently with any other
// method of the evaluator or with reads of db.
func (e *Evaluator) EvalDelta(db *Database, edb map[datalog.PredSym]Delta) (map[datalog.PredSym]Delta, error) {
	if !e.IVMReady(db) {
		return e.initIVM(db)
	}
	if e.deltaRules == nil {
		if err := e.compileDeltaRules(); err != nil {
			return nil, err
		}
	}
	changed := make(map[datalog.PredSym]Delta, len(edb))
	for p, d := range edb {
		if !d.Empty() {
			changed[p] = d
		}
	}
	out := make(map[datalog.PredSym]Delta)
	if len(changed) == 0 {
		return out, nil
	}
	dc := &deltaCtx{db: db, changed: changed}
	// Propagate level by level: predicates of one level are independent (a
	// level's rules only read strictly lower levels), so a wide level whose
	// coalesced delta is large enough can fan out across workers. Small
	// deltas — the steady-state single-transaction case — stay on the
	// sequential path and keep its allocation profile.
	for _, level := range e.levels {
		if e.parallelism > 1 && len(level) > 1 && e.levelDeltaWork(level, changed) >= parallelMinWork {
			if err := e.evalDeltaLevelParallel(dc, level, out); err != nil {
				e.ivm = nil // counts partially adjusted: state is unusable
				return nil, err
			}
			continue
		}
		for _, sym := range level {
			if err := e.evalDeltaPred(dc, sym, out); err != nil {
				e.ivm = nil // counts partially adjusted: state is unusable
				return nil, err
			}
		}
	}
	return out, nil
}

// evalDeltaPred runs every applicable delta rule of one predicate on the
// calling goroutine, adjusts the support counts, applies the resulting net
// delta to db and records it — the unit both the sequential path and the
// parallel scheduler's small-level fallback run.
func (e *Evaluator) evalDeltaPred(dc *deltaCtx, sym datalog.PredSym, out map[datalog.PredSym]Delta) error {
	ins, del, err := e.deltaForPred(dc, sym)
	if err != nil {
		return err
	}
	e.applyPredDelta(dc, sym, ins, del, out)
	return nil
}

// deltaForPred computes (without applying) the net delta of one predicate
// under the changed-set of dc, adjusting the predicate's support counts.
// The returned relations are nil when no delta rule of the predicate was
// driven by a changed relation.
func (e *Evaluator) deltaForPred(dc *deltaCtx, sym datalog.PredSym) (*value.Relation, *value.Relation, error) {
	cnt := e.ivm.counts[sym]
	var ins, del *value.Relation
	emit := func(t value.Tuple, sign int) {
		appeared, vanished := cnt.Adjust(t, sign)
		if appeared {
			// A tuple that vanished earlier in this predicate's pass and
			// reappears now is a net no-op, and vice versa.
			if !del.Remove(t) {
				ins.Add(t)
			}
		}
		if vanished {
			if !ins.Remove(t) {
				del.Add(t)
			}
		}
	}
	for _, dr := range e.deltaRules[sym] {
		d, ok := dc.changed[dr.driver]
		if !ok {
			continue
		}
		if ins == nil {
			ins = value.NewRelation(e.arities[sym])
			del = value.NewRelation(e.arities[sym])
		}
		if err := dr.run(dc, d, emit); err != nil {
			return nil, nil, err
		}
	}
	return ins, del, nil
}

// applyPredDelta installs a predicate's computed net delta: the store is
// adjusted in place (indexes maintained) and the delta joins the changed
// set so higher levels propagate it further. Applying after the predicate's
// own rules ran (its rules never read it — the program is nonrecursive)
// keeps this level's old versions reconstructible through recorded deltas.
func (e *Evaluator) applyPredDelta(dc *deltaCtx, sym datalog.PredSym, ins, del *value.Relation, out map[datalog.PredSym]Delta) {
	if ins == nil || (ins.Empty() && del.Empty()) {
		return
	}
	del.Each(func(t value.Tuple) { dc.db.Delete(sym, t) })
	ins.Each(func(t value.Tuple) { dc.db.Insert(sym, t) })
	nd := Delta{Ins: ins, Del: del}
	dc.changed[sym] = nd
	out[sym] = nd
}

// levelDeltaWork estimates the propagation work of one level as the total
// number of driver delta tuples across the level's applicable delta rules —
// the delta analogue of outerWeight.
func (e *Evaluator) levelDeltaWork(level []datalog.PredSym, changed map[datalog.PredSym]Delta) int {
	work := 0
	for _, sym := range level {
		for _, dr := range e.deltaRules[sym] {
			if d, ok := changed[dr.driver]; ok {
				if d.Ins != nil {
					work += d.Ins.Len()
				}
				if d.Del != nil {
					work += d.Del.Len()
				}
			}
		}
	}
	return work
}

// initIVM establishes the support counts with one full counted evaluation
// over db's current EDB state and installs the resulting IDB relations. It
// returns the net delta of every IDB relation against what db held before —
// the one O(|DB|) step; all subsequent EvalDelta calls propagate deltas.
func (e *Evaluator) initIVM(db *Database) (map[datalog.PredSym]Delta, error) {
	if e.parallelism > 1 {
		return e.initIVMParallel(db)
	}
	var ec *evalCtx
	if e.mode == ExecStreaming {
		ec = newEvalCtx()
	}
	counts := make(map[datalog.PredSym]*value.CountedRelation, len(e.order))
	out := make(map[datalog.PredSym]Delta)
	for _, sym := range e.order {
		cnt := value.NewCounted(e.arities[sym])
		rel := value.NewRelation(e.arities[sym])
		for _, cr := range e.rules[sym] {
			if err := runFull(db, ec, cr, func(t value.Tuple) bool {
				if appeared, _ := cnt.Adjust(t, 1); appeared {
					rel.Add(t)
				}
				return true
			}); err != nil {
				return nil, err
			}
		}
		e.installCounted(db, sym, rel, out)
		counts[sym] = cnt
	}
	e.ivm = &ivmState{db: db, counts: counts}
	return out, nil
}

// installCounted replaces sym's relation with its freshly counted
// materialization, recording the net delta against what db held before.
func (e *Evaluator) installCounted(db *Database, sym datalog.PredSym, rel *value.Relation, out map[datalog.PredSym]Delta) {
	old := db.Rel(sym)
	db.Update(sym, rel)
	if old == nil || old.Empty() {
		// Fresh install — the delta's insert side is the whole relation. A
		// COW snapshot shares its storage instead of copying O(|rel|)
		// tuples, which at cold start (every IDB relation new) would
		// double the init's materialized footprint.
		if !rel.Empty() {
			out[sym] = Delta{Ins: rel.Snapshot(), Del: value.NewRelation(e.arities[sym])}
		}
		return
	}
	d := Delta{Ins: rel.Minus(old), Del: old.Minus(rel)}
	if !d.Empty() {
		out[sym] = d
	}
}

// SupportCount reports the maintained support count of tuple t in relation
// sym (0 when no state is held) — diagnostics and tests only.
func (e *Evaluator) SupportCount(sym datalog.PredSym, t value.Tuple) int {
	if e.ivm == nil {
		return 0
	}
	if c := e.ivm.counts[sym]; c != nil {
		return c.Count(t)
	}
	return 0
}

// --- delta plan compilation ----------------------------------------------

// deltaRule is the compiled plan of one (rule, driver literal) pair of the
// delta expansion: the driver literal is bound from delta tuples (or flip
// keys, for a negated driver) and the remaining literals — annotated old or
// new by their position relative to the driver in the original body order —
// are joined with the same greedy ordering full plans use.
type deltaRule struct {
	rule   *datalog.Rule
	driver datalog.PredSym // predicate whose delta drives this plan
	neg    bool            // negated driver: delta keys flip the guard
	dargs  []argSlot       // driver literal argument slots
	dkey   []int           // negated driver: non-anonymous arg positions
	nvars  int
	steps  []step
	head   []argSlot
	en     *env
	dnew   []int // scratch: env slots bound by the driver

	// Prepared probe state for the parallel propagation path: per-step hash
	// indexes (keyed steps only) and the negated driver's guard index,
	// resolved serially by prepare before workers run so the parallel phase
	// never builds an index (hashIndex.lookup is a pure read). All nil on
	// the sequential path, which probes lazily through the Database.
	ixs   []*hashIndex
	drvIx *hashIndex
}

// prepare resolves every index this plan may probe, mutating the database
// (index construction) on the calling goroutine; reset clears the prepared
// state so later sequential runs go back to lazy probing.
func (dr *deltaRule) prepare(db *Database) {
	for i := range dr.steps {
		st := &dr.steps[i]
		switch st.kind {
		case stepScan:
			if len(st.keyPos) > 0 {
				dr.ixs[i] = db.Index(st.pred, st.keyPos)
			}
		case stepNegAtom:
			if !st.fullKey {
				dr.ixs[i] = db.Index(st.pred, st.keyPos)
			}
		}
	}
	if dr.neg && len(dr.dkey) > 0 {
		dr.drvIx = db.Index(dr.driver, dr.dkey)
	}
}

func (dr *deltaRule) reset() {
	for i := range dr.ixs {
		dr.ixs[i] = nil
	}
	dr.drvIx = nil
}

// compileDeltaRules builds the delta plans for every rule: one plan per
// body atom (builtins are static and never drive a delta).
func (e *Evaluator) compileDeltaRules() error {
	e.deltaRules = make(map[datalog.PredSym][]*deltaRule)
	for _, sym := range e.order {
		for _, cr := range e.rules[sym] {
			r := cr.rule
			for di, l := range r.Body {
				if l.Atom == nil {
					continue
				}
				dr, err := compileDeltaRule(r, di)
				if err != nil {
					return err
				}
				e.deltaRules[sym] = append(e.deltaRules[sym], dr)
			}
		}
	}
	return nil
}

// compileDeltaRule compiles the delta plan of rule r driven by body
// literal di (which must be an atom).
func compileDeltaRule(r *datalog.Rule, di int) (*deltaRule, error) {
	drv := r.Body[di]
	vi := &varIndexer{idx: make(map[string]int)}
	dr := &deltaRule{rule: r, driver: drv.Atom.Pred, neg: drv.Neg}

	bound := make(map[string]bool)
	for i, t := range drv.Atom.Args {
		dr.dargs = append(dr.dargs, termSlot(vi, t))
		if drv.Neg && !t.IsAnon() {
			dr.dkey = append(dr.dkey, i)
		}
		if t.IsVar() {
			bound[t.Var] = true
		}
	}

	rem := make([]datalog.Literal, 0, len(r.Body)-1)
	oldOf := make([]bool, 0, len(r.Body)-1)
	for j, l := range r.Body {
		if j == di {
			continue
		}
		rem = append(rem, l)
		oldOf = append(oldOf, j > di)
	}
	steps, err := compileBody(vi, bound, rem, oldOf, r)
	if err != nil {
		return nil, err
	}
	dr.steps = steps
	if r.Head != nil {
		for _, t := range r.Head.Args {
			dr.head = append(dr.head, termSlot(vi, t))
		}
	}
	dr.nvars = len(vi.idx)
	dr.en = newEnvFor(dr.steps, dr.nvars)
	dr.dnew = make([]int, 0, len(dr.dargs))
	dr.ixs = make([]*hashIndex, len(dr.steps))
	return dr, nil
}

// --- delta plan execution ------------------------------------------------

// deltaCtx resolves old- and new-version relation reads during one
// propagation pass. New versions are the database's current relations; old
// versions are reconstructed through the recorded per-predicate deltas —
// skip Δ⁺ tuples, add back Δ⁻ tuples — so no relation is ever snapshotted.
type deltaCtx struct {
	db      *Database
	changed map[datalog.PredSym]Delta
}

// oldEach iterates the old version of p until fn returns false; it reports
// whether the iteration ran to completion.
func (dc *deltaCtx) oldEach(p datalog.PredSym, fn func(value.Tuple) bool) bool {
	rel := dc.db.Rel(p)
	d, ok := dc.changed[p]
	if !ok {
		if rel == nil {
			return true
		}
		return rel.EachUntil(fn)
	}
	if rel != nil {
		if !rel.EachUntil(func(t value.Tuple) bool {
			if d.Ins != nil && d.Ins.Contains(t) {
				return true
			}
			return fn(t)
		}) {
			return false
		}
	}
	if d.Del != nil {
		return d.Del.EachUntil(fn)
	}
	return true
}

// lookup probes the new version of p on positions: through the prepared
// index ix when the parallel path resolved one (a pure read), lazily
// through the database otherwise.
func (dc *deltaCtx) lookup(ix *hashIndex, p datalog.PredSym, positions []int, key value.Tuple) []value.Tuple {
	if ix != nil {
		return ix.lookup(key)
	}
	return dc.db.Lookup(p, positions, key)
}

// oldProbe iterates the old-version tuples of p matching key on positions
// until fn returns false; it reports whether the iteration completed.
func (dc *deltaCtx) oldProbe(ix *hashIndex, p datalog.PredSym, positions []int, key value.Tuple, fn func(value.Tuple) bool) bool {
	d, ok := dc.changed[p]
	if !ok {
		for _, t := range dc.lookup(ix, p, positions, key) {
			if !fn(t) {
				return false
			}
		}
		return true
	}
	for _, t := range dc.lookup(ix, p, positions, key) {
		if d.Ins != nil && d.Ins.Contains(t) {
			continue
		}
		if !fn(t) {
			return false
		}
	}
	if d.Del != nil {
		return d.Del.EachUntil(func(t value.Tuple) bool {
			if !projMatches(t, positions, key) {
				return true
			}
			return fn(t)
		})
	}
	return true
}

// oldContains reports membership of t in the old version of p.
func (dc *deltaCtx) oldContains(p datalog.PredSym, t value.Tuple) bool {
	d, ok := dc.changed[p]
	if !ok {
		rel := dc.db.Rel(p)
		return rel != nil && rel.Contains(t)
	}
	if d.Del != nil && d.Del.Contains(t) {
		return true
	}
	rel := dc.db.Rel(p)
	return rel != nil && rel.Contains(t) && !(d.Ins != nil && d.Ins.Contains(t))
}

// oldHasMatch reports whether the old version of p holds any tuple matching
// key on positions.
func (dc *deltaCtx) oldHasMatch(ix *hashIndex, p datalog.PredSym, positions []int, key value.Tuple) bool {
	found := false
	dc.oldProbe(ix, p, positions, key, func(value.Tuple) bool {
		found = true
		return false
	})
	return found
}

// oldEmpty reports whether the old version of p held no tuples at all.
func (dc *deltaCtx) oldEmpty(p datalog.PredSym) bool {
	empty := true
	dc.oldEach(p, func(value.Tuple) bool {
		empty = false
		return false
	})
	return empty
}

// run executes the delta plan for one driver delta, emitting every signed
// head derivation.
func (dr *deltaRule) run(dc *deltaCtx, d Delta, emit func(value.Tuple, int)) error {
	en := dr.en
	for i := range en.set {
		en.set[i] = false
	}
	if !dr.neg {
		if err := dr.runPositive(dc, en, d.Ins, +1, emit); err != nil {
			return err
		}
		return dr.runPositive(dc, en, d.Del, -1, emit)
	}
	return dr.runNegated(dc, en, d, emit)
}

// runPositive drives the plan from the tuples of one signed delta set of a
// positive driver literal.
func (dr *deltaRule) runPositive(dc *deltaCtx, en *env, rel *value.Relation, sign int, emit func(value.Tuple, int)) error {
	if rel == nil || rel.Empty() {
		return nil
	}
	var err error
	rel.EachUntil(func(t value.Tuple) bool {
		err = dr.driveTuple(dc, en, t, sign, emit)
		return err == nil
	})
	return err
}

// driveTuple binds the driver literal against one delta tuple and runs the
// remaining steps with the given sign.
func (dr *deltaRule) driveTuple(dc *deltaCtx, en *env, t value.Tuple, sign int, emit func(value.Tuple, int)) error {
	newly := dr.dnew[:0]
	ok := true
	for j, s := range dr.dargs {
		switch {
		case s.anon:
		case s.isVar:
			if en.set[s.v] {
				if !en.vals[s.v].Equal(t[j]) {
					ok = false
				}
			} else {
				en.vals[s.v] = t[j]
				en.set[s.v] = true
				newly = append(newly, s.v)
			}
		default:
			if !s.c.Equal(t[j]) {
				ok = false
			}
		}
		if !ok {
			break
		}
	}
	var err error
	if ok {
		err = dr.exec(dc, en, 0, sign, emit)
	}
	for _, v := range newly {
		en.set[v] = false
	}
	return err
}

// runNegated drives the plan from the flipped guard keys of a negated
// driver literal not q(ā): a key (the projection of a q delta tuple onto
// the literal's non-anonymous positions) flips the guard to true when the
// last matching q tuple disappeared, and to false when the first appeared.
// Keys are deduplicated — several delta tuples sharing a projection flip
// the guard once.
func (dr *deltaRule) runNegated(dc *deltaCtx, en *env, d Delta, emit func(value.Tuple, int)) error {
	q := dr.driver
	if len(dr.dkey) == 0 {
		// Fully anonymous guard not q(_,…,_): truth is "q is empty".
		rel := dc.db.Rel(q)
		newEmpty := rel == nil || rel.Empty()
		if d.Del != nil && !d.Del.Empty() && newEmpty {
			return dr.exec(dc, en, 0, +1, emit)
		}
		if d.Ins != nil && !d.Ins.Empty() && dc.oldEmpty(q) {
			return dr.exec(dc, en, 0, -1, emit)
		}
		return nil
	}

	drive := func(deltaSide *value.Relation, sign int) error {
		if deltaSide == nil || deltaSide.Empty() {
			return nil
		}
		seen := value.NewRelation(len(dr.dkey))
		var err error
		deltaSide.EachUntil(func(t value.Tuple) bool {
			key := make(value.Tuple, len(dr.dkey))
			if !dr.negDriverKey(t, key) {
				return true // tuple never matched the literal's pattern
			}
			if !seen.Add(key) {
				return true
			}
			if sign > 0 {
				// q tuples left: flipped to true only if no match remains.
				if len(dc.lookup(dr.drvIx, q, dr.dkey, key)) > 0 {
					return true
				}
			} else {
				// q tuples arrived: flipped to false only if none matched before.
				if dc.oldHasMatch(dr.drvIx, q, dr.dkey, key) {
					return true
				}
			}
			err = dr.driveKey(dc, en, key, sign, emit)
			return err == nil
		})
		return err
	}
	if err := drive(d.Del, +1); err != nil {
		return err
	}
	return drive(d.Ins, -1)
}

// negDriverKey projects q-tuple t onto the literal's non-anonymous
// positions into key, reporting whether t is consistent with the literal's
// constants and repeated variables.
func (dr *deltaRule) negDriverKey(t value.Tuple, key value.Tuple) bool {
	for k, pos := range dr.dkey {
		s := dr.dargs[pos]
		if !s.isVar && !s.c.Equal(t[pos]) {
			return false
		}
		key[k] = t[pos]
	}
	for k, pos := range dr.dkey {
		s := dr.dargs[pos]
		if !s.isVar {
			continue
		}
		for k2 := k + 1; k2 < len(dr.dkey); k2++ {
			s2 := dr.dargs[dr.dkey[k2]]
			if s2.isVar && s2.v == s.v && !key[k].Equal(key[k2]) {
				return false
			}
		}
	}
	return true
}

// driveKey binds the negated driver's variables from a flipped key and runs
// the remaining steps.
func (dr *deltaRule) driveKey(dc *deltaCtx, en *env, key value.Tuple, sign int, emit func(value.Tuple, int)) error {
	newly := dr.dnew[:0]
	for k, pos := range dr.dkey {
		s := dr.dargs[pos]
		if !s.isVar || en.set[s.v] {
			continue
		}
		en.vals[s.v] = key[k]
		en.set[s.v] = true
		newly = append(newly, s.v)
	}
	err := dr.exec(dc, en, 0, sign, emit)
	for _, v := range newly {
		en.set[v] = false
	}
	return err
}

// exec runs steps[i:] over old/new relation versions per step annotation,
// emitting every signed head derivation. It mirrors compiledRule.exec minus
// early termination (delta propagation always enumerates everything).
func (dr *deltaRule) exec(dc *deltaCtx, en *env, i, sign int, emit func(value.Tuple, int)) error {
	if i == len(dr.steps) {
		t := make(value.Tuple, len(dr.head))
		for j, s := range dr.head {
			t[j] = en.get(s)
		}
		emit(t, sign)
		return nil
	}
	st := &dr.steps[i]
	switch st.kind {
	case stepBuiltin:
		switch {
		case st.bindLt:
			en.vals[st.left.v] = en.get(st.right)
			en.set[st.left.v] = true
			err := dr.exec(dc, en, i+1, sign, emit)
			en.set[st.left.v] = false
			return err
		case st.bindRt:
			en.vals[st.right.v] = en.get(st.left)
			en.set[st.right.v] = true
			err := dr.exec(dc, en, i+1, sign, emit)
			en.set[st.right.v] = false
			return err
		default:
			ok := st.op.Eval(en.get(st.left), en.get(st.right))
			if st.neg {
				ok = !ok
			}
			if !ok {
				return nil
			}
			return dr.exec(dc, en, i+1, sign, emit)
		}

	case stepNegAtom:
		if st.fullKey {
			t := en.scratch[i]
			for j, s := range st.args {
				t[j] = en.get(s)
			}
			var present bool
			if st.old {
				present = dc.oldContains(st.pred, t)
			} else {
				rel := dc.db.Rel(st.pred)
				present = rel != nil && rel.Contains(t)
			}
			if present {
				return nil
			}
			return dr.exec(dc, en, i+1, sign, emit)
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		var present bool
		if st.old {
			present = dc.oldHasMatch(dr.ixs[i], st.pred, st.keyPos, key)
		} else {
			present = len(dc.lookup(dr.ixs[i], st.pred, st.keyPos, key)) > 0
		}
		if present {
			return nil
		}
		return dr.exec(dc, en, i+1, sign, emit)

	default: // stepScan
		tryTuple := func(t value.Tuple) error {
			newly := en.newly[i][:0]
			ok := true
			for j, s := range st.args {
				switch {
				case s.anon:
				case s.isVar:
					if en.set[s.v] {
						if !en.vals[s.v].Equal(t[j]) {
							ok = false
						}
					} else {
						en.vals[s.v] = t[j]
						en.set[s.v] = true
						newly = append(newly, s.v)
					}
				default:
					if !s.c.Equal(t[j]) {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			var err error
			if ok {
				err = dr.exec(dc, en, i+1, sign, emit)
			}
			for _, v := range newly {
				en.set[v] = false
			}
			return err
		}

		if len(st.keyPos) == 0 {
			var err error
			iter := func(t value.Tuple) bool {
				err = tryTuple(t)
				return err == nil
			}
			if st.old {
				dc.oldEach(st.pred, iter)
			} else if rel := dc.db.Rel(st.pred); rel != nil {
				rel.EachUntil(iter)
			}
			return err
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		if st.old {
			var err error
			dc.oldProbe(dr.ixs[i], st.pred, st.keyPos, key, func(t value.Tuple) bool {
				err = tryTuple(t)
				return err == nil
			})
			return err
		}
		for _, t := range dc.lookup(dr.ixs[i], st.pred, st.keyPos, key) {
			if err := tryTuple(t); err != nil {
				return err
			}
		}
		return nil
	}
}
