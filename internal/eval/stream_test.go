package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Differential harness for the streaming executor (stream.go): streaming and
// materialized execution must agree with each other and with the naive
// reference evaluator over the random-program corpus, at parallelism 1, 2
// and 8; the counted-IVM initialization must produce bit-identical support
// counts in both modes; and the streaming path's per-output-tuple allocation
// budget is pinned so lazy pipelines never regress into per-probe
// allocations. Run with -race: prepared streaming contexts are shared
// read-only by parallel workers, and that discipline is part of the test.

var execModes = []ExecMode{ExecStreaming, ExecMaterialized}

// streamEvaluators compiles prog once per (mode, parallelism) combination.
func streamEvaluators(t *testing.T, prog *datalog.Program) map[string]*Evaluator {
	t.Helper()
	evs := make(map[string]*Evaluator)
	for _, mode := range execModes {
		for _, p := range []int{1, 2, 8} {
			ev, err := New(prog)
			if err != nil {
				t.Fatal(err)
			}
			ev.SetExecMode(mode)
			ev.SetParallelism(p)
			evs[fmt.Sprintf("%s/p%d", mode, p)] = ev
		}
	}
	return evs
}

// TestStreamingModesMatchReferenceFuzz generates random well-formed
// programs and EDBs and asserts streaming ≡ materialized ≡ reference for
// every (mode, parallelism) combination.
func TestStreamingModesMatchReferenceFuzz(t *testing.T) {
	forceParallelPath(t) // tiny EDBs must still exercise shard/merge
	rng := rand.New(rand.NewSource(4321))
	const programs, trials = 15, 3
	for pi := 0; pi < programs; pi++ {
		src := genProgram(rng)
		prog := mustProg(t, src)
		evs := streamEvaluators(t, prog)
		for trial := 0; trial < trials; trial++ {
			db := genEDB(rng)
			want := refEval(t, prog, db)
			for label, ev := range evs {
				got := db.Clone()
				if err := ev.Eval(got); err != nil {
					t.Fatalf("program %d trial %d %s: %v\n%s", pi, trial, label, err, src)
				}
				for sym := range prog.IDBPreds() {
					w, g := want.Rel(sym), got.Rel(sym)
					if (g == nil) != (w == nil) || (g != nil && !g.Equal(w)) {
						t.Fatalf("program %d trial %d %s: %s differs from reference\ngot=%v\nref=%v\nprogram:\n%s\nEDB:\n%s",
							pi, trial, label, sym, g, w, src, db)
					}
				}
			}
		}
	}
}

// TestStreamingCorpusModesMatch runs the hand-shaped corpus (joins,
// negation, constants, comparisons, equality binding, unions) through every
// (mode, parallelism) combination against the reference.
func TestStreamingCorpusModesMatch(t *testing.T) {
	forceParallelPath(t)
	rng := rand.New(rand.NewSource(55))
	for pi, src := range referenceCorpus {
		prog := mustProg(t, src)
		evs := streamEvaluators(t, prog)
		edb := map[string]int{}
		for _, s := range prog.Sources {
			edb[s.Name] = s.Arity()
		}
		edb[prog.View.Name] = prog.View.Arity()
		for trial := 0; trial < 10; trial++ {
			db := NewDatabase()
			for name, arity := range edb {
				rel := value.NewRelation(arity)
				for i := 0; i < rng.Intn(6); i++ {
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					rel.Add(tu)
				}
				db.Set(datalog.Pred(name), rel)
			}
			want := refEval(t, prog, db)
			for label, ev := range evs {
				got := db.Clone()
				if err := ev.Eval(got); err != nil {
					t.Fatal(err)
				}
				assertSameIDB(t, prog, got, want, fmt.Sprintf("corpus %d trial %d %s", pi, trial, label))
			}
		}
	}
}

// assertSameCounts fails unless the two evaluators hold bit-identical
// support counts: the same tuples with the same counts for every IDB
// predicate.
func assertSameCounts(t *testing.T, prog *datalog.Program, a, b *Evaluator, label string) {
	t.Helper()
	if a.ivm == nil || b.ivm == nil {
		t.Fatalf("%s: missing IVM state (a=%v b=%v)", label, a.ivm != nil, b.ivm != nil)
	}
	for sym := range prog.IDBPreds() {
		ca, cb := a.ivm.counts[sym], b.ivm.counts[sym]
		if (ca == nil) != (cb == nil) {
			t.Fatalf("%s: counts for %s present=%v vs %v", label, sym, ca != nil, cb != nil)
		}
		if ca == nil {
			continue
		}
		ca.Each(func(tu value.Tuple, n int) {
			if got := cb.Count(tu); got != n {
				t.Errorf("%s: support of %s%v = %d vs %d", label, sym, tu, n, got)
			}
		})
		cb.Each(func(tu value.Tuple, n int) {
			if got := ca.Count(tu); got != n {
				t.Errorf("%s: support of %s%v = %d vs %d", label, sym, tu, got, n)
			}
		})
	}
}

// TestStreamingCountedInitCountsIdentical pins the counted-IVM
// initialization: streaming and materialized init must produce the same
// IDB relations, the same reported deltas, and bit-identical support
// counts, at parallelism 1, 2 and 8.
func TestStreamingCountedInitCountsIdentical(t *testing.T) {
	forceParallelPath(t)
	rng := rand.New(rand.NewSource(99177))
	corpus := append([]string{}, referenceCorpus...)
	for i := 0; i < 8; i++ {
		corpus = append(corpus, genProgram(rng))
	}
	for pi, src := range corpus {
		prog := mustProg(t, src)
		for trial := 0; trial < 3; trial++ {
			db := genEDB(rng)
			// Corpus programs may use sources outside genEDB's trio.
			for _, s := range prog.Sources {
				if db.Rel(datalog.Pred(s.Name)) == nil {
					rel := value.NewRelation(s.Arity())
					for i := 0; i < rng.Intn(6); i++ {
						tu := make(value.Tuple, s.Arity())
						for j := range tu {
							tu[j] = value.Int(int64(rng.Intn(4)))
						}
						rel.Add(tu)
					}
					db.Set(datalog.Pred(s.Name), rel)
				}
			}
			if db.Rel(datalog.Pred(prog.View.Name)) == nil {
				db.Set(datalog.Pred(prog.View.Name), value.NewRelation(prog.View.Arity()))
			}
			for _, p := range []int{1, 2, 8} {
				label := fmt.Sprintf("program %d trial %d p=%d", pi, trial, p)
				evStream, err := New(prog)
				if err != nil {
					t.Fatal(err)
				}
				evStream.SetExecMode(ExecStreaming)
				evStream.SetParallelism(p)
				evMat, err := New(prog)
				if err != nil {
					t.Fatal(err)
				}
				evMat.SetExecMode(ExecMaterialized)
				evMat.SetParallelism(p)

				dbS, dbM := db.Clone(), db.Clone()
				outS, err := evStream.EvalDelta(dbS, nil)
				if err != nil {
					t.Fatalf("%s: streaming init: %v\n%s", label, err, src)
				}
				outM, err := evMat.EvalDelta(dbM, nil)
				if err != nil {
					t.Fatalf("%s: materialized init: %v\n%s", label, err, src)
				}
				assertSameIDB(t, prog, dbS, dbM, label)
				assertSameCounts(t, prog, evStream, evMat, label)
				if len(outS) != len(outM) {
					t.Fatalf("%s: init deltas differ: %d vs %d predicates", label, len(outS), len(outM))
				}
				for sym, dS := range outS {
					dM, ok := outM[sym]
					if !ok {
						t.Fatalf("%s: init delta for %s only in streaming", label, sym)
					}
					if !dS.Ins.Equal(dM.Ins) || !dS.Del.Equal(dM.Del) {
						t.Fatalf("%s: init delta for %s differs\nstream=+%v -%v\nmat=+%v -%v",
							label, sym, dS.Ins, dS.Del, dM.Ins, dM.Del)
					}
				}
			}
		}
	}
}

// TestStreamingPerTupleAllocBudget pins the streaming path's allocation
// profile on a join-heavy evaluation: the per-output-tuple cost is the head
// tuple plus set-insertion bookkeeping — a small constant. A regression
// that allocates per probe (a closure or key copy in the inner join loop)
// multiplies the ratio and trips the guard.
func TestStreamingPerTupleAllocBudget(t *testing.T) {
	prog := mustProg(t, `
source fact(a:int, b:int).
source dim(b:int, c:int).
view v(a:int).
out(X,Z) :- dim(Y,Z), fact(X,Y).
`)
	ev, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	const nFact, nDim = 20000, 200
	fact := value.NewRelation(2)
	for i := 0; i < nFact; i++ {
		fact.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % nDim))})
	}
	dim := value.NewRelation(2)
	for k := 0; k < nDim; k++ {
		dim.Add(value.Tuple{value.Int(int64(k)), value.Int(int64(k * 7))})
	}
	db.Set(datalog.Pred("fact"), fact)
	db.Set(datalog.Pred("dim"), dim)

	if err := ev.Eval(db); err != nil { // warm plans and envs
		t.Fatal(err)
	}
	out := db.Rel(datalog.Pred("out"))
	if out == nil || out.Len() != nFact {
		t.Fatalf("join produced %v tuples, want %d", out, nFact)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: head tuple + relation insertion, plus the evaluation's fixed
	// overhead (ephemeral dim table, output relation growth) amortized over
	// 20k outputs. Comfortably above the measured steady state, far below
	// the 1-per-probe regression this guards against.
	const budget = 8.0
	if perTuple := allocs / nFact; perTuple > budget {
		t.Errorf("streaming Eval allocates %.2f objects per output tuple (%.0f total), budget %.1f",
			perTuple, allocs, budget)
	}
}
