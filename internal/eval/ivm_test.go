package eval

import (
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// fuzzKnob reads an integer override from the environment, for heavier
// local sweeps (e.g. IVM_FUZZ_SEED=7 IVM_FUZZ_TRIALS=50 go test -run
// EvalDeltaMatches ./internal/eval/); CI runs the deterministic defaults.
func fuzzKnob(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// Differential fuzz for counting-based IVM: random DML sequences over the
// EDB, asserting after every step that EvalDelta-maintained IDB relations
// are set-identical to a full recompute and to the naive reference
// evaluator, and that the reported IDB deltas exactly bridge consecutive
// states.

// ivmCorpus extends the reference corpus with negation-heavy and
// projection-heavy shapes that stress the flip-key handling of negated
// delta drivers (anonymous variables, repeated variables, constants,
// negation chains across strata, fully anonymous guards).
var ivmCorpus = append(referenceCorpus,
	`
source r(a:int, b:int).
source s(a:int).
view v(a:int).
n1(X) :- r(X,_), not s(X).
n2(X,Y) :- r(X,Y), not r(Y,X).
n3(X) :- s(X), not r(X,X).
`,
	`
source r(a:int, b:int).
source s(a:int, b:int).
view v(a:int).
g(X) :- r(X,_), not s(X,_).
h(X) :- r(X,_), not s(_,_).
k(X) :- r(X,Y), not s(X,Y), not s(Y,X).
`,
	`
source p(a:int).
source q(a:int).
view v(a:int).
w1(X) :- p(X), not q(X).
w2(X) :- q(X), not w1(X).
w3(X) :- w2(X), not w1(X), X < 3.
w4(X) :- p(X), not w3(X), not q(X).
`,
	`
source r(a:int, b:int).
view v(a:int).
j(X,Z) :- r(X,Y), r(Y,Z).
t(X) :- j(X,X).
u(X) :- r(X,_), not j(X,_).
`,
)

// applyRandomDML mutates one random EDB tuple in db, accumulating the net
// change into deltas (exact net semantics: an insert cancelling a pending
// delete nets out, and vice versa).
func applyRandomDML(rng *rand.Rand, db *Database, edb map[string]int, deltas map[datalog.PredSym]Delta) {
	names := make([]string, 0, len(edb))
	for n := range edb {
		names = append(names, n)
	}
	// Deterministic pick order regardless of map iteration.
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	name := names[rng.Intn(len(names))]
	p := datalog.Pred(name)
	arity := edb[name]
	d, ok := deltas[p]
	if !ok {
		d = NewDelta(arity)
		deltas[p] = d
	}
	t := make(value.Tuple, arity)
	for j := range t {
		t[j] = value.Int(int64(rng.Intn(4)))
	}
	if rng.Intn(2) == 0 {
		if db.Insert(p, t) {
			if !d.Del.Remove(t) {
				d.Ins.Add(t)
			}
		}
	} else {
		if db.Delete(p, t) {
			if !d.Ins.Remove(t) {
				d.Del.Add(t)
			}
		}
	}
}

func TestEvalDeltaMatchesFullRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(int64(fuzzKnob("IVM_FUZZ_SEED", 4242))))
	trials := fuzzKnob("IVM_FUZZ_TRIALS", 6)
	for pi, src := range ivmCorpus {
		prog := mustProg(t, src)
		evIVM, err := New(prog)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		evFull, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}

		edb := map[string]int{}
		for _, s := range prog.Sources {
			edb[s.Name] = s.Arity()
		}
		edb[prog.View.Name] = prog.View.Arity()

		for trial := 0; trial < trials; trial++ {
			db := NewDatabase()
			for name, arity := range edb {
				rel := value.NewRelation(arity)
				for i := 0; i < rng.Intn(8); i++ {
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					rel.Add(tu)
				}
				db.Set(datalog.Pred(name), rel)
			}
			// First call initializes the support counts (full counted eval).
			if _, err := evIVM.EvalDelta(db, nil); err != nil {
				t.Fatalf("program %d: init: %v", pi, err)
			}

			for step := 0; step < 30; step++ {
				// Snapshot IDB state to validate the reported deltas bridge it.
				prev := make(map[datalog.PredSym]*value.Relation)
				for sym := range prog.IDBPreds() {
					prev[sym] = db.RelOrEmpty(sym, evIVM.arities[sym]).Clone()
				}

				deltas := make(map[datalog.PredSym]Delta)
				nOps := 1 + rng.Intn(4)
				for k := 0; k < nOps; k++ {
					applyRandomDML(rng, db, edb, deltas)
				}
				idbDeltas, err := evIVM.EvalDelta(db, deltas)
				if err != nil {
					t.Fatalf("program %d step %d: EvalDelta: %v", pi, step, err)
				}

				// Full recompute over a clone of the post-DML EDB.
				full := NewDatabase()
				for name, arity := range edb {
					full.Set(datalog.Pred(name), db.RelOrEmpty(datalog.Pred(name), arity).Clone())
				}
				if err := evFull.Eval(full); err != nil {
					t.Fatal(err)
				}
				ref := refEval(t, prog, full)

				for sym := range prog.IDBPreds() {
					got := db.RelOrEmpty(sym, evIVM.arities[sym])
					want := full.RelOrEmpty(sym, evIVM.arities[sym])
					if !got.Equal(want) {
						t.Fatalf("program %d trial %d step %d: %s: incremental %v != full %v\nEDB:\n%s",
							pi, trial, step, sym, got, want, db)
					}
					refRel := ref.RelOrEmpty(sym, evIVM.arities[sym])
					if !want.Equal(refRel) {
						t.Fatalf("program %d trial %d step %d: %s: full %v != reference %v",
							pi, trial, step, sym, want, refRel)
					}
					// The reported delta must bridge prev → got exactly.
					d, ok := idbDeltas[sym]
					if !ok {
						d = NewDelta(got.Arity())
					}
					bridged := prev[sym].Clone()
					if d.Del != nil {
						bridged.SubtractAll(d.Del)
					}
					if d.Ins != nil {
						bridged.UnionWith(d.Ins)
					}
					if !bridged.Equal(got) {
						t.Fatalf("program %d trial %d step %d: %s: delta %v/%v does not bridge %v -> %v",
							pi, trial, step, sym, d.Ins, d.Del, prev[sym], got)
					}
					// Deltas must be normalized: disjoint and effective.
					if d.Ins != nil && d.Del != nil && !d.Ins.Intersect(d.Del).Empty() {
						t.Fatalf("program %d step %d: %s: overlapping delta", pi, step, sym)
					}
				}
			}
		}
	}
}

// TestEvalDeltaAfterFullEvalReinitializes pins the invalidation contract: a
// full Eval whose output differs from the materialized state drops the
// counts, and the next EvalDelta re-initializes rather than propagating
// against stale state — while a no-op Eval (nothing changed, so the counts
// still describe the installed relations exactly) keeps the state, and a
// later EvalDelta propagates incrementally instead of re-initializing.
func TestEvalDeltaAfterFullEvalReinitializes(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
source s(a:int).
view v(a:int).
d(X) :- r(X), not s(X).
`)
	ev, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Set(datalog.Pred("r"), value.RelationOf(1, value.Tuple{value.Int(1)}, value.Tuple{value.Int(2)}))
	db.Set(datalog.Pred("s"), value.RelationOf(1, value.Tuple{value.Int(2)}))
	if _, err := ev.EvalDelta(db, nil); err != nil {
		t.Fatal(err)
	}
	if !ev.IVMReady(db) {
		t.Fatal("expected IVM state after EvalDelta")
	}

	// Regression (ISSUE 9): a full Eval over an unchanged database is a
	// no-op per predicate, so the support counts survive it.
	if err := ev.Eval(db); err != nil {
		t.Fatal(err)
	}
	if !ev.IVMReady(db) {
		t.Fatal("no-op full Eval must keep IVM state")
	}
	if got := ev.SupportCount(datalog.Pred("d"), value.Tuple{value.Int(1)}); got != 1 {
		t.Fatalf("support of d(1) after no-op Eval = %d, want 1", got)
	}

	// Mutate the EDB outside EvalDelta: the next full Eval produces a
	// different d, which must invalidate the counts.
	db.Insert(datalog.Pred("r"), value.Tuple{value.Int(3)})
	if err := ev.Eval(db); err != nil {
		t.Fatal(err)
	}
	if ev.IVMReady(db) {
		t.Fatal("full Eval with changed output must invalidate IVM state")
	}
	// The next EvalDelta re-initializes against the current EDB.
	if _, err := ev.EvalDelta(db, nil); err != nil {
		t.Fatal(err)
	}
	want := value.RelationOf(1, value.Tuple{value.Int(1)}, value.Tuple{value.Int(3)})
	if got := db.Rel(datalog.Pred("d")); !got.Equal(want) {
		t.Fatalf("d = %v, want %v", got, want)
	}
	if !ev.IVMReady(db) {
		t.Fatal("expected IVM state after re-init")
	}
}

// TestEvalDeltaParallelMatchesSequential runs the IVM fuzz with a parallel
// evaluator (thresholds forced down so the counted init shards and every
// wide-enough level fans out) against a sequential one, asserting after
// every step that the maintained IDB relations AND the reported deltas are
// identical — the determinism contract of the parallel propagation path.
// Run under -race: the serial-prepare / pure-probe discipline of the
// parallel phase is part of what is tested.
func TestEvalDeltaParallelMatchesSequential(t *testing.T) {
	forceParallelPath(t)
	rng := rand.New(rand.NewSource(int64(fuzzKnob("IVM_FUZZ_SEED", 77))))
	trials := fuzzKnob("IVM_FUZZ_TRIALS", 3)
	for pi, src := range ivmCorpus {
		prog := mustProg(t, src)
		evSeq, err := New(prog)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		evPar, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		evPar.SetParallelism(4)

		edb := map[string]int{}
		for _, s := range prog.Sources {
			edb[s.Name] = s.Arity()
		}
		edb[prog.View.Name] = prog.View.Arity()

		for trial := 0; trial < trials; trial++ {
			dbSeq, dbPar := NewDatabase(), NewDatabase()
			for name, arity := range edb {
				rel := value.NewRelation(arity)
				for i := 0; i < rng.Intn(10); i++ {
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					rel.Add(tu)
				}
				dbSeq.Set(datalog.Pred(name), rel)
				dbPar.Set(datalog.Pred(name), rel.Clone())
			}
			// Init: sequential counted eval vs sharded parallel counted eval.
			dSeq, err := evSeq.EvalDelta(dbSeq, nil)
			if err != nil {
				t.Fatalf("program %d: seq init: %v", pi, err)
			}
			dPar, err := evPar.EvalDelta(dbPar, nil)
			if err != nil {
				t.Fatalf("program %d: par init: %v", pi, err)
			}
			assertSameDeltas(t, dSeq, dPar, "init")
			assertSameIDB(t, prog, dbSeq, dbPar, "init")

			for step := 0; step < 20; step++ {
				deltasSeq := make(map[datalog.PredSym]Delta)
				deltasPar := make(map[datalog.PredSym]Delta)
				nOps := 1 + rng.Intn(6)
				for k := 0; k < nOps; k++ {
					// Apply the same random DML to both databases.
					names := make([]string, 0, len(edb))
					for n := range edb {
						names = append(names, n)
					}
					sort.Strings(names)
					name := names[rng.Intn(len(names))]
					arity := edb[name]
					tu := make(value.Tuple, arity)
					for j := range tu {
						tu[j] = value.Int(int64(rng.Intn(4)))
					}
					ins := rng.Intn(2) == 0
					applyDMLTo(dbSeq, deltasSeq, name, arity, tu, ins)
					applyDMLTo(dbPar, deltasPar, name, arity, tu.Clone(), ins)
				}
				outSeq, err := evSeq.EvalDelta(dbSeq, deltasSeq)
				if err != nil {
					t.Fatalf("program %d step %d: seq: %v", pi, step, err)
				}
				outPar, err := evPar.EvalDelta(dbPar, deltasPar)
				if err != nil {
					t.Fatalf("program %d step %d: par: %v", pi, step, err)
				}
				assertSameDeltas(t, outSeq, outPar, "step")
				assertSameIDB(t, prog, dbSeq, dbPar, "step")
				// Support counts must agree too: they are the state future
				// propagation correctness depends on.
				for sym := range prog.IDBPreds() {
					dbSeq.RelOrEmpty(sym, evSeq.arities[sym]).Each(func(tu value.Tuple) {
						if cs, cp := evSeq.SupportCount(sym, tu), evPar.SupportCount(sym, tu); cs != cp {
							t.Fatalf("program %d step %d: %s%v: support %d (seq) != %d (par)", pi, step, sym, tu, cs, cp)
						}
					})
				}
			}
		}
	}
}

// applyDMLTo applies one insert/delete to db, folding the net change into
// deltas the way the engine's write path does.
func applyDMLTo(db *Database, deltas map[datalog.PredSym]Delta, name string, arity int, tu value.Tuple, ins bool) {
	p := datalog.Pred(name)
	d, ok := deltas[p]
	if !ok {
		d = NewDelta(arity)
		deltas[p] = d
	}
	if ins {
		if db.Insert(p, tu) {
			if !d.Del.Remove(tu) {
				d.Ins.Add(tu)
			}
		}
	} else {
		if db.Delete(p, tu) {
			if !d.Ins.Remove(tu) {
				d.Del.Add(tu)
			}
		}
	}
}

// assertSameDeltas fails unless the two reported delta maps are identical.
func assertSameDeltas(t *testing.T, a, b map[datalog.PredSym]Delta, label string) {
	t.Helper()
	relEq := func(x, y *value.Relation) bool {
		switch {
		case x == nil:
			return y == nil || y.Empty()
		case y == nil:
			return x.Empty()
		default:
			return x.Equal(y)
		}
	}
	for sym, da := range a {
		db, ok := b[sym]
		if !ok {
			t.Fatalf("%s: delta for %s reported sequentially but not in parallel (%v/%v)", label, sym, da.Ins, da.Del)
		}
		if !relEq(da.Ins, db.Ins) || !relEq(da.Del, db.Del) {
			t.Fatalf("%s: delta for %s differs: seq %v/%v, par %v/%v", label, sym, da.Ins, da.Del, db.Ins, db.Del)
		}
	}
	for sym := range b {
		if _, ok := a[sym]; !ok {
			t.Fatalf("%s: delta for %s reported in parallel but not sequentially", label, sym)
		}
	}
}
