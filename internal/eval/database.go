// Package eval implements bottom-up stratified evaluation of the
// nonrecursive Datalog dialect of the paper over in-memory relations,
// including delta-relation application S ⊕ ΔS (§3.1).
//
// Rule bodies are compiled to join plans: literals are greedily reordered so
// that bound-variable lookups happen through hash indexes. Indexes live on
// the Database and are maintained incrementally across updates, which is
// what lets incrementalized strategies (∂put, Section 5) run in time
// proportional to the view delta rather than the base tables — the effect
// Figure 6 measures.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Database maps predicate symbols to relations. It also owns the hash
// indexes built for join plans; indexes are maintained incrementally by
// Insert and Delete and dropped by Set.
type Database struct {
	rels    map[datalog.PredSym]*value.Relation
	indexes map[indexID]*hashIndex
}

// indexID identifies an index by predicate and key positions.
type indexID struct {
	pred datalog.PredSym
	mask string // comma-joined positions, e.g. "0,2"
}

// hashIndex maps the projection of a tuple onto key positions to the tuples
// having that projection.
type hashIndex struct {
	positions []int
	buckets   map[string][]value.Tuple
}

func maskOf(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = fmt.Sprintf("%d", p)
	}
	return strings.Join(parts, ",")
}

func projectKey(t value.Tuple, positions []int) string {
	proj := make(value.Tuple, len(positions))
	for i, p := range positions {
		proj[i] = t[p]
	}
	return proj.Key()
}

func (ix *hashIndex) add(t value.Tuple) {
	k := projectKey(t, ix.positions)
	ix.buckets[k] = append(ix.buckets[k], t)
}

func (ix *hashIndex) remove(t value.Tuple) {
	k := projectKey(t, ix.positions)
	bucket := ix.buckets[k]
	for i, u := range bucket {
		if u.Equal(t) {
			bucket[i] = bucket[len(bucket)-1]
			ix.buckets[k] = bucket[:len(bucket)-1]
			return
		}
	}
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		rels:    make(map[datalog.PredSym]*value.Relation),
		indexes: make(map[indexID]*hashIndex),
	}
}

// Rel returns the relation for p, or nil if absent.
func (db *Database) Rel(p datalog.PredSym) *value.Relation { return db.rels[p] }

// RelOrEmpty returns the relation for p, or an empty relation of the given
// arity if absent (without storing it).
func (db *Database) RelOrEmpty(p datalog.PredSym, arity int) *value.Relation {
	if r := db.rels[p]; r != nil {
		return r
	}
	return value.NewRelation(arity)
}

// Set installs rel as the relation for p, dropping any indexes on p.
func (db *Database) Set(p datalog.PredSym, rel *value.Relation) {
	db.rels[p] = rel
	for id := range db.indexes {
		if id.pred == p {
			delete(db.indexes, id)
		}
	}
}

// Ensure returns the relation for p, creating an empty one of the given
// arity if absent.
func (db *Database) Ensure(p datalog.PredSym, arity int) *value.Relation {
	if r := db.rels[p]; r != nil {
		return r
	}
	r := value.NewRelation(arity)
	db.rels[p] = r
	return r
}

// Insert adds t to p's relation, maintaining indexes. It reports whether
// the database changed.
func (db *Database) Insert(p datalog.PredSym, t value.Tuple) bool {
	r := db.rels[p]
	if r == nil {
		r = value.NewRelation(len(t))
		db.rels[p] = r
	}
	if !r.Add(t) {
		return false
	}
	for id, ix := range db.indexes {
		if id.pred == p {
			ix.add(t)
		}
	}
	return true
}

// Delete removes t from p's relation, maintaining indexes. It reports
// whether the database changed.
func (db *Database) Delete(p datalog.PredSym, t value.Tuple) bool {
	r := db.rels[p]
	if r == nil || !r.Remove(t) {
		return false
	}
	for id, ix := range db.indexes {
		if id.pred == p {
			ix.remove(t)
		}
	}
	return true
}

// Index returns (building if needed) a maintained hash index on p keyed by
// the given positions.
func (db *Database) Index(p datalog.PredSym, positions []int) *hashIndex {
	id := indexID{pred: p, mask: maskOf(positions)}
	if ix := db.indexes[id]; ix != nil {
		return ix
	}
	ix := &hashIndex{positions: positions, buckets: make(map[string][]value.Tuple)}
	if r := db.rels[p]; r != nil {
		r.Each(func(t value.Tuple) { ix.add(t) })
	}
	db.indexes[id] = ix
	return ix
}

// Lookup returns the tuples of p whose projection on positions equals key.
func (db *Database) Lookup(p datalog.PredSym, positions []int, key value.Tuple) []value.Tuple {
	return db.Index(p, positions).buckets[key.Key()]
}

// IndexStats describes one live index, for diagnostics.
type IndexStats struct {
	Pred      datalog.PredSym
	Positions string
	Buckets   int
	MaxBucket int
}

// Indexes reports the live indexes and their bucket shapes (diagnostics).
func (db *Database) Indexes() []IndexStats {
	var out []IndexStats
	for id, ix := range db.indexes {
		max := 0
		for _, b := range ix.buckets {
			if len(b) > max {
				max = len(b)
			}
		}
		out = append(out, IndexStats{Pred: id.pred, Positions: id.mask, Buckets: len(ix.buckets), MaxBucket: max})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred.String() < out[j].Pred.String()
		}
		return out[i].Positions < out[j].Positions
	})
	return out
}

// Preds returns the predicates present, sorted for determinism.
func (db *Database) Preds() []datalog.PredSym {
	out := make([]datalog.PredSym, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Delta < out[j].Delta
	})
	return out
}

// Clone returns a deep copy of the database (indexes are not copied; they
// rebuild lazily).
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for p, r := range db.rels {
		out.rels[p] = r.Clone()
	}
	return out
}

// Equal reports whether two databases hold the same relations for the given
// predicates.
func (db *Database) Equal(other *Database, preds []datalog.PredSym) bool {
	for _, p := range preds {
		a, b := db.rels[p], other.rels[p]
		switch {
		case a == nil && b == nil:
		case a == nil:
			if !b.Empty() {
				return false
			}
		case b == nil:
			if !a.Empty() {
				return false
			}
		default:
			if !a.Equal(b) {
				return false
			}
		}
	}
	return true
}

// String renders the database deterministically, for tests and debugging.
func (db *Database) String() string {
	var b strings.Builder
	for _, p := range db.Preds() {
		fmt.Fprintf(&b, "%s = %s\n", p, db.rels[p])
	}
	return b.String()
}
