// Package eval implements bottom-up stratified evaluation of the
// nonrecursive Datalog dialect of the paper over in-memory relations,
// including delta-relation application S ⊕ ΔS (§3.1).
//
// Rule bodies are compiled to join plans: literals are greedily reordered so
// that bound-variable lookups happen through hash indexes. Indexes live on
// the Database and are maintained incrementally across updates, which is
// what lets incrementalized strategies (∂put, Section 5) run in time
// proportional to the view delta rather than the base tables — the effect
// Figure 6 measures.
package eval

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Database maps predicate symbols to relations. It also owns the hash
// indexes built for join plans, registered per predicate so that Insert and
// Delete maintain only the affected indexes. Indexes are maintained
// incrementally across updates and rebuilt in place by Update; Set drops
// them.
type Database struct {
	rels    map[datalog.PredSym]*value.Relation
	indexes map[datalog.PredSym][]*hashIndex
}

// hashIndex maps the hash of a tuple's projection onto key positions to the
// tuples having that projection. Buckets are keyed by the 64-bit projection
// hash; within a bucket, tuples are grouped by distinct projection, so a
// probe resolves hash collisions by comparing the key against one
// representative per group — O(groups) ≈ O(1), never O(bucket).
type hashIndex struct {
	positions []int
	buckets   map[uint64][]indexGroup
	// hot records whether the index was probed since the last Update; a
	// relation replacement drops cold indexes (e.g. one-off WHERE-clause
	// probes) instead of eagerly rebuilding them forever.
	hot bool
}

// indexGroup is the set of tuples sharing one exact key projection. rep is
// any tuple of the group; its projection defines the group (tuples are
// immutable once indexed, so rep stays valid even after it is removed from
// tuples).
type indexGroup struct {
	rep    value.Tuple
	tuples []value.Tuple
}

// maskOf renders key positions as "0,2" for diagnostics (IndexStats).
func maskOf(positions []int) string {
	var b strings.Builder
	for i, p := range positions {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

// keyHash hashes the projection of t onto the index's key positions in
// place, without materializing the projected tuple.
func (ix *hashIndex) keyHash(t value.Tuple) uint64 {
	h := value.HashSeed
	for _, p := range ix.positions {
		h = value.HashMix(h, t[p])
	}
	return h
}

// projMatches reports whether t's projection onto positions equals key
// element-wise.
func projMatches(t value.Tuple, positions []int, key value.Tuple) bool {
	for i, p := range positions {
		if !t[p].Equal(key[i]) {
			return false
		}
	}
	return true
}

// projEqual reports whether two tuples agree on the key positions.
func projEqual(t, u value.Tuple, positions []int) bool {
	for _, p := range positions {
		if !t[p].Equal(u[p]) {
			return false
		}
	}
	return true
}

func (ix *hashIndex) add(t value.Tuple) {
	h := ix.keyHash(t)
	bucket := ix.buckets[h]
	for gi := range bucket {
		if projEqual(bucket[gi].rep, t, ix.positions) {
			bucket[gi].tuples = append(bucket[gi].tuples, t)
			return
		}
	}
	ix.buckets[h] = append(bucket, indexGroup{rep: t, tuples: []value.Tuple{t}})
}

func (ix *hashIndex) remove(t value.Tuple) {
	h := ix.keyHash(t)
	bucket := ix.buckets[h]
	for gi := range bucket {
		g := &bucket[gi]
		if !projEqual(g.rep, t, ix.positions) {
			continue
		}
		for i, u := range g.tuples {
			if u.Equal(t) {
				g.tuples[i] = g.tuples[len(g.tuples)-1]
				g.tuples = g.tuples[:len(g.tuples)-1]
				break
			}
		}
		if len(g.tuples) == 0 {
			if len(bucket) == 1 {
				delete(ix.buckets, h)
			} else {
				bucket[gi] = bucket[len(bucket)-1]
				ix.buckets[h] = bucket[:len(bucket)-1]
			}
		}
		return
	}
}

// lookup returns the tuples whose projection on the index's key positions
// equals key. It is a pure read — no allocation, no mutation — and is safe
// to call concurrently from many goroutines as long as the index (and the
// indexed relation) is not being mutated; the parallel evaluator relies on
// this after resolving indexes in its serial prepare phase.
func (ix *hashIndex) lookup(key value.Tuple) []value.Tuple {
	h := value.HashSeed
	for _, v := range key {
		h = value.HashMix(h, v)
	}
	// Hash collisions are rare: the bucket almost always holds one group,
	// whose representative is compared against the key once.
	for _, g := range ix.buckets[h] {
		if projMatches(g.rep, ix.positions, key) {
			return g.tuples
		}
	}
	return nil
}

// rebuild repopulates the index from rel, reusing the bucket map.
func (ix *hashIndex) rebuild(rel *value.Relation) {
	clear(ix.buckets)
	if rel != nil {
		rel.Each(ix.add)
	}
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{
		rels:    make(map[datalog.PredSym]*value.Relation),
		indexes: make(map[datalog.PredSym][]*hashIndex),
	}
}

// Rel returns the relation for p, or nil if absent.
func (db *Database) Rel(p datalog.PredSym) *value.Relation { return db.rels[p] }

// RelOrEmpty returns the relation for p, or an empty relation of the given
// arity if absent (without storing it).
func (db *Database) RelOrEmpty(p datalog.PredSym, arity int) *value.Relation {
	if r := db.rels[p]; r != nil {
		return r
	}
	return value.NewRelation(arity)
}

// Set installs rel as the relation for p, dropping any indexes on p.
func (db *Database) Set(p datalog.PredSym, rel *value.Relation) {
	db.rels[p] = rel
	delete(db.indexes, p)
}

// Update installs rel as the relation for p like Set, but keeps the
// indexes on p that were probed since the last replacement, rebuilding
// their buckets from rel in place; indexes that went unprobed are dropped
// (they rebuild lazily if ever needed again). The evaluator uses it when
// replacing IDB relations so that join indexes built in one evaluation
// survive to the next, without paying forever for one-off ad-hoc probes.
func (db *Database) Update(p datalog.PredSym, rel *value.Relation) {
	db.rels[p] = rel
	ixs := db.indexes[p]
	kept := ixs[:0]
	for _, ix := range ixs {
		if !ix.hot {
			continue
		}
		ix.hot = false
		ix.rebuild(rel)
		kept = append(kept, ix)
	}
	if len(kept) == 0 {
		delete(db.indexes, p)
	} else {
		db.indexes[p] = kept
	}
}

// Ensure returns the relation for p, creating an empty one of the given
// arity if absent.
func (db *Database) Ensure(p datalog.PredSym, arity int) *value.Relation {
	if r := db.rels[p]; r != nil {
		return r
	}
	r := value.NewRelation(arity)
	db.rels[p] = r
	return r
}

// Insert adds t to p's relation, maintaining only p's indexes. It reports
// whether the database changed. The relation takes ownership of t.
func (db *Database) Insert(p datalog.PredSym, t value.Tuple) bool {
	r := db.rels[p]
	if r == nil {
		r = value.NewRelation(len(t))
		db.rels[p] = r
	}
	if !r.Add(t) {
		return false
	}
	for _, ix := range db.indexes[p] {
		ix.add(t)
	}
	return true
}

// Delete removes t from p's relation, maintaining only p's indexes. It
// reports whether the database changed.
func (db *Database) Delete(p datalog.PredSym, t value.Tuple) bool {
	r := db.rels[p]
	if r == nil || !r.Remove(t) {
		return false
	}
	for _, ix := range db.indexes[p] {
		ix.remove(t)
	}
	return true
}

// Index returns (building if needed) a maintained hash index on p keyed by
// the given positions.
func (db *Database) Index(p datalog.PredSym, positions []int) *hashIndex {
	for _, ix := range db.indexes[p] {
		if slices.Equal(ix.positions, positions) {
			ix.hot = true
			return ix
		}
	}
	ix := &hashIndex{positions: positions, buckets: make(map[uint64][]indexGroup), hot: true}
	if r := db.rels[p]; r != nil {
		r.Each(ix.add)
	}
	db.indexes[p] = append(db.indexes[p], ix)
	return ix
}

// existingIndex returns the maintained index on p for exactly the given
// positions, or nil, without building one and without marking it hot — the
// streaming evaluator's way of reusing an index somebody else already pays
// for, while never causing the Database to build or keep one.
func (db *Database) existingIndex(p datalog.PredSym, positions []int) *hashIndex {
	for _, ix := range db.indexes[p] {
		if slices.Equal(ix.positions, positions) {
			return ix
		}
	}
	return nil
}

// Lookup returns the tuples of p whose projection on positions equals key.
// The probe hashes key in place; no per-probe tuple or key string is
// allocated. The returned slice is owned by the index and must not be
// mutated or retained across updates.
func (db *Database) Lookup(p datalog.PredSym, positions []int, key value.Tuple) []value.Tuple {
	return db.Index(p, positions).lookup(key)
}

// LookupExisting probes an already-built index on p for positions without
// building one and without touching any index bookkeeping — a pure read,
// safe concurrently with other readers as long as no writer mutates the
// database. ok reports whether such an index exists; when false the caller
// must fall back to a scan or build the index under exclusive access. An
// index probed only through LookupExisting is not marked hot, so a
// subsequent Update of the relation may drop it; base-table relations,
// which are maintained by Insert/Delete rather than replaced, keep it.
func (db *Database) LookupExisting(p datalog.PredSym, positions []int, key value.Tuple) (tuples []value.Tuple, ok bool) {
	for _, ix := range db.indexes[p] {
		if slices.Equal(ix.positions, positions) {
			return ix.lookup(key), true
		}
	}
	return nil, false
}

// IndexStats describes one live index, for diagnostics.
type IndexStats struct {
	Pred      datalog.PredSym
	Positions string
	Buckets   int
	MaxBucket int
}

// Indexes reports the live indexes and their bucket shapes (diagnostics).
func (db *Database) Indexes() []IndexStats {
	var out []IndexStats
	for p, ixs := range db.indexes {
		for _, ix := range ixs {
			groups, max := 0, 0
			for _, bucket := range ix.buckets {
				groups += len(bucket)
				for _, g := range bucket {
					if len(g.tuples) > max {
						max = len(g.tuples)
					}
				}
			}
			out = append(out, IndexStats{Pred: p, Positions: maskOf(ix.positions), Buckets: groups, MaxBucket: max})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred.String() < out[j].Pred.String()
		}
		return out[i].Positions < out[j].Positions
	})
	return out
}

// Preds returns the predicates present, sorted for determinism.
func (db *Database) Preds() []datalog.PredSym {
	out := make([]datalog.PredSym, 0, len(db.rels))
	for p := range db.rels {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Delta < out[j].Delta
	})
	return out
}

// Clone returns a deep copy of the database (indexes are not copied; they
// rebuild lazily).
func (db *Database) Clone() *Database {
	out := NewDatabase()
	for p, r := range db.rels {
		out.rels[p] = r.Clone()
	}
	return out
}

// Equal reports whether two databases hold the same relations for the given
// predicates.
func (db *Database) Equal(other *Database, preds []datalog.PredSym) bool {
	for _, p := range preds {
		a, b := db.rels[p], other.rels[p]
		switch {
		case a == nil && b == nil:
		case a == nil:
			if !b.Empty() {
				return false
			}
		case b == nil:
			if !a.Empty() {
				return false
			}
		default:
			if !a.Equal(b) {
				return false
			}
		}
	}
	return true
}

// String renders the database deterministically, for tests and debugging.
func (db *Database) String() string {
	var b strings.Builder
	for _, p := range db.Preds() {
		fmt.Fprintf(&b, "%s = %s\n", p, db.rels[p])
	}
	return b.String()
}
