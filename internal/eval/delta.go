package eval

import (
	"fmt"

	"birds/internal/datalog"
	"birds/internal/value"
)

// ContradictionError reports a well-definedness violation at runtime: the
// putback program derived both +r(t) and -r(t) for the same tuple t
// (Definition 3.1).
type ContradictionError struct {
	Relation string
	Tuple    value.Tuple
}

func (e *ContradictionError) Error() string {
	return fmt.Sprintf("eval: contradictory delta on %s: tuple %s is both inserted and deleted",
		e.Relation, e.Tuple)
}

// CheckNonContradictory verifies that for every source relation the derived
// insertion and deletion sets are disjoint (the ΔS of §3.1 must be
// non-contradictory before it can be applied).
func CheckNonContradictory(db *Database, sources []*datalog.RelDecl) error {
	for _, s := range sources {
		ins := db.Rel(datalog.Ins(s.Name))
		del := db.Rel(datalog.Del(s.Name))
		if ins == nil || del == nil {
			continue
		}
		small, other := ins, del
		if del.Len() < ins.Len() {
			small, other = del, ins
		}
		var bad value.Tuple
		small.EachUntil(func(t value.Tuple) bool {
			if other.Contains(t) {
				bad = t
				return false
			}
			return true
		})
		if bad != nil {
			return &ContradictionError{Relation: s.Name, Tuple: bad}
		}
	}
	return nil
}

// ApplyDeltas applies the evaluated delta relations to the source relations
// in place: Ri ← (Ri \ Δ−Ri) ∪ Δ+Ri. It first checks non-contradiction.
// Index structures on db are maintained incrementally. It returns the
// number of tuples actually deleted and inserted.
func ApplyDeltas(db *Database, sources []*datalog.RelDecl) (deleted, inserted int, err error) {
	if err := CheckNonContradictory(db, sources); err != nil {
		return 0, 0, err
	}
	for _, s := range sources {
		p := datalog.Pred(s.Name)
		db.Ensure(p, s.Arity())
		if del := db.Rel(datalog.Del(s.Name)); del != nil {
			del.Each(func(t value.Tuple) {
				if db.Delete(p, t) {
					deleted++
				}
			})
		}
		if ins := db.Rel(datalog.Ins(s.Name)); ins != nil {
			ins.Each(func(t value.Tuple) {
				if db.Insert(p, t) {
					inserted++
				}
			})
		}
	}
	return deleted, inserted, nil
}

// ApplyDeltasExact is ApplyDeltas returning, instead of counts, the exact
// net delta of every source whose contents changed — the shape the
// counting-IVM propagation (EvalDelta) consumes. Tuples whose membership
// did not change (inserting a present tuple, deleting an absent one) are
// excluded.
func ApplyDeltasExact(db *Database, sources []*datalog.RelDecl) (map[datalog.PredSym]Delta, error) {
	if err := CheckNonContradictory(db, sources); err != nil {
		return nil, err
	}
	out := make(map[datalog.PredSym]Delta, len(sources))
	for _, s := range sources {
		p := datalog.Pred(s.Name)
		db.Ensure(p, s.Arity())
		d := NewDelta(s.Arity())
		if del := db.Rel(datalog.Del(s.Name)); del != nil {
			del.Each(func(t value.Tuple) {
				if db.Delete(p, t) {
					d.Del.Add(t)
				}
			})
		}
		if ins := db.Rel(datalog.Ins(s.Name)); ins != nil {
			ins.Each(func(t value.Tuple) {
				if db.Insert(p, t) {
					d.Ins.Add(t)
				}
			})
		}
		if !d.Empty() {
			out[p] = d
		}
	}
	return out, nil
}

// SnapshotSources returns deep copies of the source relations of db, for
// comparing database states around an update (e.g. the GetPut check).
func SnapshotSources(db *Database, sources []*datalog.RelDecl) map[string]*value.Relation {
	out := make(map[string]*value.Relation, len(sources))
	for _, s := range sources {
		out[s.Name] = db.RelOrEmpty(datalog.Pred(s.Name), s.Arity()).Clone()
	}
	return out
}

// SourcesEqual reports whether the source relations of db match a snapshot.
func SourcesEqual(db *Database, sources []*datalog.RelDecl, snap map[string]*value.Relation) bool {
	for _, s := range sources {
		if !db.RelOrEmpty(datalog.Pred(s.Name), s.Arity()).Equal(snap[s.Name]) {
			return false
		}
	}
	return true
}

// ClearDeltas resets the delta relations of every source to empty, to be
// called between successive putback evaluations. Indexes on the delta
// predicates (if any rule probes them by key) are kept and emptied rather
// than dropped.
func ClearDeltas(db *Database, sources []*datalog.RelDecl) {
	for _, s := range sources {
		db.Update(datalog.Ins(s.Name), value.NewRelation(s.Arity()))
		db.Update(datalog.Del(s.Name), value.NewRelation(s.Arity()))
	}
}

// Put runs one full putback step over db: evaluate the compiled putdelta
// program, check non-contradiction, and apply the deltas to the sources.
// db must contain the source relations and the (updated) view relation.
func Put(e *Evaluator, db *Database, sources []*datalog.RelDecl) error {
	if err := e.Eval(db); err != nil {
		return err
	}
	if _, _, err := ApplyDeltas(db, sources); err != nil {
		return err
	}
	return nil
}
