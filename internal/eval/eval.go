package eval

import (
	"fmt"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/value"
)

// Evaluator is a compiled, reusable bottom-up evaluator for a nonrecursive
// Datalog program. Compile once with New, then call Eval repeatedly as the
// EDB changes. An Evaluator (and the Database it runs over) is not safe
// for concurrent use; callers serialize (the engine holds one lock per
// transaction).
type Evaluator struct {
	prog        *datalog.Program
	order       []datalog.PredSym
	rules       map[datalog.PredSym][]*compiledRule
	constraints []*compiledRule
	arities     map[datalog.PredSym]int
}

// New stratifies and compiles the program. It fails on recursive or unsafe
// programs and on head arity conflicts.
func New(prog *datalog.Program) (*Evaluator, error) {
	order, err := analysis.Stratify(prog)
	if err != nil {
		return nil, err
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, err
	}
	e := &Evaluator{
		prog:    prog,
		order:   order,
		rules:   make(map[datalog.PredSym][]*compiledRule),
		arities: make(map[datalog.PredSym]int),
	}
	for _, r := range prog.Rules {
		cr, err := compileRule(r)
		if err != nil {
			return nil, err
		}
		if r.IsConstraint() {
			e.constraints = append(e.constraints, cr)
			continue
		}
		h := r.Head.Pred
		if a, ok := e.arities[h]; ok && a != r.Head.Arity() {
			return nil, fmt.Errorf("eval: predicate %s defined with arities %d and %d", h, a, r.Head.Arity())
		}
		e.arities[h] = r.Head.Arity()
		e.rules[h] = append(e.rules[h], cr)
	}
	return e, nil
}

// Program returns the compiled program.
func (e *Evaluator) Program() *datalog.Program { return e.prog }

// IDBOrder returns the bottom-up evaluation order of IDB predicates.
func (e *Evaluator) IDBOrder() []datalog.PredSym { return e.order }

// Eval computes every IDB relation bottom-up and stores the results in db
// (replacing any previous IDB contents). The EDB relations of db are read
// but not modified.
func (e *Evaluator) Eval(db *Database) error {
	for _, sym := range e.order {
		out := value.NewRelation(e.arities[sym])
		for _, cr := range e.rules[sym] {
			if err := cr.run(db, func(t value.Tuple) bool {
				out.Add(t)
				return true
			}); err != nil {
				return err
			}
		}
		// Update, not Set: keep any join indexes on the IDB predicate alive,
		// rebuilt from the fresh relation, instead of dropping them to be
		// lazily reconstructed on the next evaluation.
		db.Update(sym, out)
	}
	return nil
}

// EvalQuery evaluates the program and returns the relation for goal.
func (e *Evaluator) EvalQuery(db *Database, goal datalog.PredSym) (*value.Relation, error) {
	if err := e.Eval(db); err != nil {
		return nil, err
	}
	if r := db.Rel(goal); r != nil {
		return r, nil
	}
	return value.NewRelation(e.arities[goal]), nil
}

// Violations evaluates the integrity constraints over db (IDB relations
// must already be evaluated if constraints mention them) and returns the
// violated constraint rules.
func (e *Evaluator) Violations(db *Database) ([]*datalog.Rule, error) {
	var out []*datalog.Rule
	for _, cr := range e.constraints {
		found := false
		if err := cr.run(db, func(value.Tuple) bool {
			found = true
			return false // one witness is enough
		}); err != nil {
			return nil, err
		}
		if found {
			out = append(out, cr.rule)
		}
	}
	return out, nil
}

// --- rule compilation -------------------------------------------------

// stepKind discriminates plan steps.
type stepKind uint8

const (
	stepScan    stepKind = iota // iterate/probe a positive atom
	stepNegAtom                 // check a negated atom is unmatched
	stepBuiltin                 // evaluate or bind through a built-in
)

// argSlot describes one atom argument in a compiled step.
type argSlot struct {
	anon  bool
	isVar bool
	v     int         // env slot when isVar
	c     value.Value // constant otherwise
}

// step is one operation of a rule plan.
type step struct {
	kind stepKind
	// scan / negated atom:
	pred    datalog.PredSym
	args    []argSlot
	keyPos  []int // positions bound at entry (probe key); nil = full scan
	fullKey bool  // negation with every position bound: direct Contains
	// builtin:
	neg    bool
	op     datalog.CmpOp
	left   argSlot
	right  argSlot
	bindLt bool // equality binds the left slot
	bindRt bool // equality binds the right slot
}

// compiledRule is an executable plan for one rule. The plan owns its
// runtime environment (variable bindings plus per-step scratch buffers),
// allocated once at compile time and reused across runs — the Evaluator is
// documented as not safe for concurrent use, and the engine serializes
// evaluations under its write lock.
type compiledRule struct {
	rule  *datalog.Rule
	nvars int
	steps []step
	head  []argSlot // nil for constraints
	en    env
}

// varIndexer assigns dense indexes to variable names.
type varIndexer struct {
	idx map[string]int
}

func (vi *varIndexer) slot(name string) int {
	if i, ok := vi.idx[name]; ok {
		return i
	}
	i := len(vi.idx)
	vi.idx[name] = i
	return i
}

func termSlot(vi *varIndexer, t datalog.Term) argSlot {
	switch t.Kind {
	case datalog.TermAnon:
		return argSlot{anon: true}
	case datalog.TermVar:
		return argSlot{isVar: true, v: vi.slot(t.Var)}
	default:
		return argSlot{c: t.Const}
	}
}

// compileRule orders the body literals greedily so every step's inputs are
// bound when it runs, and precomputes probe-key positions for hash lookups.
func compileRule(r *datalog.Rule) (*compiledRule, error) {
	vi := &varIndexer{idx: make(map[string]int)}
	cr := &compiledRule{rule: r}

	type pending struct {
		lit datalog.Literal
	}
	remaining := make([]pending, len(r.Body))
	for i, l := range r.Body {
		remaining[i] = pending{lit: l}
	}

	bound := make(map[string]bool)
	allBound := func(vars []string) bool {
		for _, v := range vars {
			if !bound[v] {
				return false
			}
		}
		return true
	}

	// rank returns the priority of a literal given current bindings, or -1
	// if the literal is not ready. Lower ranks run earlier.
	rank := func(l datalog.Literal) int {
		if l.Builtin != nil {
			b := l.Builtin
			if !l.Neg && b.Op == datalog.OpEq {
				lb := !b.L.IsVar() || bound[b.L.Var]
				rb := !b.R.IsVar() || bound[b.R.Var]
				if lb || rb {
					return 0 // binds or filters immediately
				}
				return -1
			}
			if allBound(l.Vars()) {
				return 1
			}
			return -1
		}
		if l.Neg {
			if allBound(l.Atom.Vars()) {
				return 2
			}
			return -1
		}
		// Positive atom: always ready. Prefer small delta relations as the
		// outer loop, then atoms connected to the current bindings.
		shares := false
		for _, v := range l.Atom.Vars() {
			if bound[v] {
				shares = true
				break
			}
		}
		switch {
		case l.Atom.Pred.IsDelta():
			return 3 // delta relations are small: best outer loop
		case shares:
			return 4
		case len(bound) == 0:
			return 5
		default:
			return 6 // would form a cross product; last resort
		}
	}

	for len(remaining) > 0 {
		best, bestRank := -1, int(^uint(0)>>1)
		for i, p := range remaining {
			if rk := rank(p.lit); rk >= 0 && rk < bestRank {
				best, bestRank = i, rk
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eval: rule %q is unsafe: no evaluable literal order", r)
		}
		l := remaining[best].lit
		remaining = append(remaining[:best], remaining[best+1:]...)

		switch {
		case l.Builtin != nil:
			b := l.Builtin
			st := step{kind: stepBuiltin, neg: l.Neg, op: b.Op}
			st.left = termSlot(vi, b.L)
			st.right = termSlot(vi, b.R)
			if !l.Neg && b.Op == datalog.OpEq {
				lb := !b.L.IsVar() || bound[b.L.Var]
				rb := !b.R.IsVar() || bound[b.R.Var]
				switch {
				case !lb && rb:
					st.bindLt = true
					bound[b.L.Var] = true
				case lb && !rb:
					st.bindRt = true
					bound[b.R.Var] = true
				}
			}
			cr.steps = append(cr.steps, st)
		case l.Neg:
			st := step{kind: stepNegAtom, pred: l.Atom.Pred}
			full := true
			for _, t := range l.Atom.Args {
				st.args = append(st.args, termSlot(vi, t))
				if t.IsAnon() {
					full = false
				}
			}
			if full {
				st.fullKey = true
			} else {
				for i, t := range l.Atom.Args {
					if !t.IsAnon() {
						st.keyPos = append(st.keyPos, i)
					}
				}
			}
			cr.steps = append(cr.steps, st)
		default:
			st := step{kind: stepScan, pred: l.Atom.Pred}
			hasBoundVar := false
			for i, t := range l.Atom.Args {
				slot := termSlot(vi, t)
				st.args = append(st.args, slot)
				if t.IsConst() || (t.IsVar() && bound[t.Var]) {
					st.keyPos = append(st.keyPos, i)
				}
				if t.IsVar() && bound[t.Var] {
					hasBoundVar = true
				}
			}
			// A probe key made only of constants (e.g. the outer scan of
			// tasks(T,N,U,0)) would build a maintained index on a
			// low-selectivity column whose huge buckets make later
			// Insert/Delete maintenance linear. Scan and filter instead —
			// same asymptotic cost for the query itself.
			if !hasBoundVar {
				st.keyPos = nil
			}
			for _, t := range l.Atom.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
			cr.steps = append(cr.steps, st)
		}
	}

	if r.Head != nil {
		for _, t := range r.Head.Args {
			if t.IsAnon() {
				return nil, fmt.Errorf("eval: rule %q: anonymous variable in head", r)
			}
			cr.head = append(cr.head, termSlot(vi, t))
		}
	}
	cr.nvars = len(vi.idx)
	cr.en = env{
		vals:    make([]value.Value, cr.nvars),
		set:     make([]bool, cr.nvars),
		scratch: make([]value.Tuple, len(cr.steps)),
		newly:   make([][]int, len(cr.steps)),
	}
	for i := range cr.steps {
		st := &cr.steps[i]
		switch st.kind {
		case stepNegAtom:
			if st.fullKey {
				cr.en.scratch[i] = make(value.Tuple, len(st.args))
			} else {
				cr.en.scratch[i] = make(value.Tuple, len(st.keyPos))
			}
		case stepScan:
			cr.en.scratch[i] = make(value.Tuple, len(st.keyPos))
			cr.en.newly[i] = make([]int, 0, len(st.args))
		}
	}
	return cr, nil
}

// --- rule execution ---------------------------------------------------

// env is the runtime variable binding state, plus per-step scratch: probe
// keys (or full negation tuples) and newly-bound variable lists, reused
// across probes instead of allocated per tuple.
type env struct {
	vals    []value.Value
	set     []bool
	scratch []value.Tuple
	newly   [][]int
}

func (e *env) get(s argSlot) value.Value {
	if s.isVar {
		return e.vals[s.v]
	}
	return s.c
}

// run executes the plan over db, calling emit for every derived head tuple.
// emit returning false stops the evaluation early.
func (cr *compiledRule) run(db *Database, emit func(value.Tuple) bool) error {
	en := &cr.en
	// exec unsets every binding on the way out, but re-zero defensively so
	// one run can never leak bindings into the next.
	for i := range en.set {
		en.set[i] = false
	}
	_, err := cr.exec(db, en, 0, emit)
	return err
}

// exec runs steps[i:]; it returns false to request early termination.
func (cr *compiledRule) exec(db *Database, en *env, i int, emit func(value.Tuple) bool) (bool, error) {
	if i == len(cr.steps) {
		if cr.head == nil {
			return emit(nil), nil
		}
		t := make(value.Tuple, len(cr.head))
		for j, s := range cr.head {
			t[j] = en.get(s)
		}
		return emit(t), nil
	}
	st := &cr.steps[i]
	switch st.kind {
	case stepBuiltin:
		switch {
		case st.bindLt:
			en.vals[st.left.v] = en.get(st.right)
			en.set[st.left.v] = true
			cont, err := cr.exec(db, en, i+1, emit)
			en.set[st.left.v] = false
			return cont, err
		case st.bindRt:
			en.vals[st.right.v] = en.get(st.left)
			en.set[st.right.v] = true
			cont, err := cr.exec(db, en, i+1, emit)
			en.set[st.right.v] = false
			return cont, err
		default:
			ok := st.op.Eval(en.get(st.left), en.get(st.right))
			if st.neg {
				ok = !ok
			}
			if !ok {
				return true, nil
			}
			return cr.exec(db, en, i+1, emit)
		}

	case stepNegAtom:
		rel := db.Rel(st.pred)
		if rel == nil {
			return cr.exec(db, en, i+1, emit)
		}
		if st.fullKey {
			t := en.scratch[i]
			for j, s := range st.args {
				t[j] = en.get(s)
			}
			if rel.Contains(t) {
				return true, nil
			}
			return cr.exec(db, en, i+1, emit)
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		if len(db.Lookup(st.pred, st.keyPos, key)) > 0 {
			return true, nil
		}
		return cr.exec(db, en, i+1, emit)

	default: // stepScan
		rel := db.Rel(st.pred)
		if rel == nil {
			return true, nil
		}
		tryTuple := func(t value.Tuple) (bool, error) {
			newly := en.newly[i][:0]
			ok := true
			for j, s := range st.args {
				switch {
				case s.anon:
				case s.isVar:
					if en.set[s.v] {
						if !en.vals[s.v].Equal(t[j]) {
							ok = false
						}
					} else {
						en.vals[s.v] = t[j]
						en.set[s.v] = true
						newly = append(newly, s.v)
					}
				default:
					if !s.c.Equal(t[j]) {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			var cont = true
			var err error
			if ok {
				cont, err = cr.exec(db, en, i+1, emit)
			}
			for _, v := range newly {
				en.set[v] = false
			}
			return cont, err
		}

		if len(st.keyPos) == 0 {
			var cont = true
			var err error
			rel.EachUntil(func(t value.Tuple) bool {
				cont, err = tryTuple(t)
				return err == nil && cont
			})
			return cont, err
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		for _, t := range db.Lookup(st.pred, st.keyPos, key) {
			cont, err := tryTuple(t)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
}
