package eval

import (
	"fmt"
	"runtime"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/value"
)

// Evaluator is a compiled, reusable bottom-up evaluator for a nonrecursive
// Datalog program. Compile once with New, then call Eval repeatedly as the
// EDB changes. An Evaluator (and the Database it runs over) is not safe
// for concurrent use by multiple callers; callers serialize (the engine
// holds one lock per transaction). With SetParallelism(>1) a single Eval
// call fans its work out over worker goroutines internally; results are
// identical to the sequential evaluation.
type Evaluator struct {
	prog        *datalog.Program
	order       []datalog.PredSym
	levels      [][]datalog.PredSym // topological leveling of order: level i depends only on levels < i
	deps        map[datalog.PredSym][]datalog.PredSym
	rules       map[datalog.PredSym][]*compiledRule
	constraints []*compiledRule
	arities     map[datalog.PredSym]int
	parallelism int
	mode        ExecMode // full-eval execution mode; zero value = ExecStreaming

	// Counting-based incremental view maintenance state (ivm.go): the
	// per-IDB support counts EvalDelta keeps, and the compiled delta plans
	// (one per rule and driver literal). deltaRules is built lazily on the
	// first EvalDelta; ivm is dropped whenever a full evaluation replaces
	// the IDB relations it describes.
	deltaRules map[datalog.PredSym][]*deltaRule
	ivm        *ivmState
}

// New stratifies and compiles the program. It fails on recursive or unsafe
// programs and on head arity conflicts.
func New(prog *datalog.Program) (*Evaluator, error) {
	order, err := analysis.Stratify(prog)
	if err != nil {
		return nil, err
	}
	if err := analysis.CheckSafety(prog); err != nil {
		return nil, err
	}
	e := &Evaluator{
		prog:        prog,
		order:       order,
		rules:       make(map[datalog.PredSym][]*compiledRule),
		arities:     make(map[datalog.PredSym]int),
		parallelism: 1,
	}
	for _, r := range prog.Rules {
		cr, err := compileRule(r)
		if err != nil {
			return nil, err
		}
		if r.IsConstraint() {
			e.constraints = append(e.constraints, cr)
			continue
		}
		h := r.Head.Pred
		if a, ok := e.arities[h]; ok && a != r.Head.Arity() {
			return nil, fmt.Errorf("eval: predicate %s defined with arities %d and %d", h, a, r.Head.Arity())
		}
		e.arities[h] = r.Head.Arity()
		e.rules[h] = append(e.rules[h], cr)
	}

	// Restrict the dependency graph to IDB predicates and level the DAG:
	// level(p) = 1 + max level of p's IDB dependencies. Predicates of one
	// level are independent and can be evaluated concurrently.
	idb := prog.IDBPreds()
	e.deps = make(map[datalog.PredSym][]datalog.PredSym, len(order))
	for sym, ds := range analysis.Deps(prog) {
		for _, d := range ds {
			if idb[d] {
				e.deps[sym] = append(e.deps[sym], d)
			}
		}
	}
	lvl := make(map[datalog.PredSym]int, len(order))
	for _, sym := range order {
		l := 0
		for _, d := range e.deps[sym] {
			if dl := lvl[d] + 1; dl > l {
				l = dl
			}
		}
		lvl[sym] = l
		for len(e.levels) <= l {
			e.levels = append(e.levels, nil)
		}
		e.levels[l] = append(e.levels[l], sym)
	}
	return e, nil
}

// Program returns the compiled program.
func (e *Evaluator) Program() *datalog.Program { return e.prog }

// IDBOrder returns the bottom-up evaluation order of IDB predicates.
func (e *Evaluator) IDBOrder() []datalog.PredSym { return e.order }

// DefaultParallelism is the GOMAXPROCS-derived worker count used when a
// caller asks for parallel evaluation without picking a number.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// SetParallelism sets the number of worker goroutines one Eval call may use.
// p <= 0 selects DefaultParallelism; p == 1 (the default) evaluates on the
// calling goroutine. Parallel and sequential evaluation produce identical
// relations — set-identical under Relation.Equal, with the same
// lookup-observable index contents: rule outputs are sets, shards partition
// tuples by hash bucket, and per-worker partial results are merged in a
// fixed order after a level barrier. SetParallelism must not be called
// concurrently with Eval.
func (e *Evaluator) SetParallelism(p int) {
	if p <= 0 {
		p = DefaultParallelism()
	}
	e.parallelism = p
}

// Parallelism reports the configured worker count.
func (e *Evaluator) Parallelism() int { return e.parallelism }

// Eval computes every IDB relation bottom-up and stores the results in db
// (replacing any previous IDB contents). The EDB relations of db are read
// but not modified.
func (e *Evaluator) Eval(db *Database) error {
	return e.evalPreds(db, nil)
}

// evalPreds evaluates the IDB predicates for which include returns true (a
// nil include evaluates all), level by level. In streaming mode (the
// default) each rule runs its cheapest driver variant over ephemeral probe
// tables shared through one per-evaluation context; materialized mode keeps
// the compile-time join order and maintained indexes.
func (e *Evaluator) evalPreds(db *Database, include map[datalog.PredSym]bool) error {
	var ec *evalCtx
	if e.mode == ExecStreaming {
		ec = newEvalCtx()
	}
	if e.parallelism > 1 {
		return e.evalParallel(db, ec, include)
	}
	for _, sym := range e.order {
		if include != nil && !include[sym] {
			continue
		}
		var err error
		if ec != nil {
			err = e.evalPredStreaming(db, ec, sym)
		} else {
			err = e.evalPredSequential(db, sym)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// installEval installs one predicate's freshly evaluated relation. A full
// evaluation replacing IDB relations wholesale invalidates any support
// counts EvalDelta keeps — except when the evaluation is a no-op for the
// predicate (the new relation equals the installed one): then the
// materialized state is untouched and valid maintenance state for db
// survives. Counts are dropped lazily, on the first output that actually
// changed. The equality check is the safety net for databases mutated
// behind the evaluator's back; under EvalDelta's documented contract
// (every EDB change flows through it) surviving counts already describe
// the current EDB exactly.
func (e *Evaluator) installEval(db *Database, sym datalog.PredSym, out *value.Relation) {
	if e.IVMReady(db) {
		old := db.Rel(sym)
		if (old == nil && out.Empty()) || (old != nil && old.Equal(out)) {
			return
		}
		e.ivm = nil
	}
	// Update, not Set: keep any join indexes on the IDB predicate alive,
	// rebuilt from the fresh relation, instead of dropping them to be
	// lazily reconstructed on the next evaluation.
	db.Update(sym, out)
}

// evalPredSequential evaluates one IDB predicate's rules on the calling
// goroutine and installs the result — the unit both the sequential
// evaluator and the parallel scheduler's small-level fallback run, so the
// two paths cannot drift apart.
func (e *Evaluator) evalPredSequential(db *Database, sym datalog.PredSym) error {
	out := value.NewRelation(e.arities[sym])
	for _, cr := range e.rules[sym] {
		if err := cr.run(db, func(t value.Tuple) bool {
			out.Add(t)
			return true
		}); err != nil {
			return err
		}
	}
	e.installEval(db, sym, out)
	return nil
}

// cone returns the goal's dependency cone: the IDB predicates transitively
// reachable from goal (including goal itself) through the rule bodies.
func (e *Evaluator) cone(goal datalog.PredSym) map[datalog.PredSym]bool {
	out := make(map[datalog.PredSym]bool)
	if _, ok := e.arities[goal]; !ok {
		return out
	}
	var visit func(sym datalog.PredSym)
	visit = func(sym datalog.PredSym) {
		if out[sym] {
			return
		}
		out[sym] = true
		for _, d := range e.deps[sym] {
			visit(d)
		}
	}
	visit(goal)
	return out
}

// EvalQuery evaluates the goal's dependency cone — only the IDB predicates
// the goal transitively reads, not the whole program — and returns the
// relation for goal. IDB predicates outside the cone are left untouched in
// db.
func (e *Evaluator) EvalQuery(db *Database, goal datalog.PredSym) (*value.Relation, error) {
	if err := e.evalPreds(db, e.cone(goal)); err != nil {
		return nil, err
	}
	if r := db.Rel(goal); r != nil {
		return r, nil
	}
	return value.NewRelation(e.arities[goal]), nil
}

// Violations evaluates the integrity constraints over db (IDB relations
// must already be evaluated if constraints mention them) and returns the
// violated constraint rules.
func (e *Evaluator) Violations(db *Database) ([]*datalog.Rule, error) {
	var out []*datalog.Rule
	for _, cr := range e.constraints {
		found := false
		if err := cr.run(db, func(value.Tuple) bool {
			found = true
			return false // one witness is enough
		}); err != nil {
			return nil, err
		}
		if found {
			out = append(out, cr.rule)
		}
	}
	return out, nil
}

// --- rule compilation -------------------------------------------------

// stepKind discriminates plan steps.
type stepKind uint8

const (
	stepScan    stepKind = iota // iterate/probe a positive atom
	stepNegAtom                 // check a negated atom is unmatched
	stepBuiltin                 // evaluate or bind through a built-in
)

// argSlot describes one atom argument in a compiled step.
type argSlot struct {
	anon  bool
	isVar bool
	v     int         // env slot when isVar
	c     value.Value // constant otherwise
}

// step is one operation of a rule plan.
type step struct {
	kind stepKind
	// scan / negated atom:
	pred    datalog.PredSym
	args    []argSlot
	keyPos  []int // positions bound at entry (probe key); nil = full scan
	fullKey bool  // negation with every position bound: direct Contains
	old     bool  // delta plans only: read the pre-delta version of pred
	// builtin:
	neg    bool
	op     datalog.CmpOp
	left   argSlot
	right  argSlot
	bindLt bool // equality binds the left slot
	bindRt bool // equality binds the right slot
}

// compiledRule is an executable plan for one rule. The plan owns a runtime
// environment (variable bindings plus per-step scratch buffers) allocated
// once at compile time and reused across sequential runs; parallel workers
// get private environments from newEnv instead.
type compiledRule struct {
	rule  *datalog.Rule
	nvars int
	steps []step
	head  []argSlot // nil for constraints
	en    *env
	rc    runCtx // reusable lazy-probe context for sequential runs

	// variants are alternative plans for the streaming executor, one per
	// positive body atom forced first as the streamed outer scan (stream.go);
	// pickVariant chooses among them per evaluation by build-side cost.
	// Variants have their own variable numbering and environments and no
	// variants of their own.
	variants []*compiledRule
}

// varIndexer assigns dense indexes to variable names.
type varIndexer struct {
	idx map[string]int
}

func (vi *varIndexer) slot(name string) int {
	if i, ok := vi.idx[name]; ok {
		return i
	}
	i := len(vi.idx)
	vi.idx[name] = i
	return i
}

func termSlot(vi *varIndexer, t datalog.Term) argSlot {
	switch t.Kind {
	case datalog.TermAnon:
		return argSlot{anon: true}
	case datalog.TermVar:
		return argSlot{isVar: true, v: vi.slot(t.Var)}
	default:
		return argSlot{c: t.Const}
	}
}

// compileRule compiles the rule's primary plan (greedy literal order) and
// its streaming driver variants: one extra plan per positive body atom,
// with that atom forced to run first as a full outer scan. A variant whose
// forced order is unevaluable is skipped; the primary plan's order is the
// correctness baseline.
func compileRule(r *datalog.Rule) (*compiledRule, error) {
	cr, err := compilePlan(r, -1)
	if err != nil {
		return nil, err
	}
	for di, l := range r.Body {
		if l.Atom == nil || l.Neg {
			continue
		}
		if v, err := compilePlan(r, di); err == nil {
			cr.variants = append(cr.variants, v)
		}
	}
	return cr, nil
}

// compilePlan orders the body literals greedily so every step's inputs are
// bound when it runs, and precomputes probe-key positions for hash lookups.
// driver >= 0 forces body literal driver (a positive atom) to run first as
// a full scan — constants and repeated variables filter during the scan —
// with the remaining literals greedily ordered against its bindings;
// driver < 0 lets the greedy ordering pick freely.
func compilePlan(r *datalog.Rule, driver int) (*compiledRule, error) {
	vi := &varIndexer{idx: make(map[string]int)}
	cr := &compiledRule{rule: r}
	bound := make(map[string]bool)
	lits := r.Body
	if driver >= 0 {
		dl := r.Body[driver]
		st := step{kind: stepScan, pred: dl.Atom.Pred}
		for _, t := range dl.Atom.Args {
			st.args = append(st.args, termSlot(vi, t))
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		cr.steps = append(cr.steps, st)
		lits = make([]datalog.Literal, 0, len(r.Body)-1)
		for j, l := range r.Body {
			if j != driver {
				lits = append(lits, l)
			}
		}
	}
	steps, err := compileBody(vi, bound, lits, nil, r)
	if err != nil {
		return nil, err
	}
	cr.steps = append(cr.steps, steps...)

	if r.Head != nil {
		for _, t := range r.Head.Args {
			if t.IsAnon() {
				return nil, fmt.Errorf("eval: rule %q: anonymous variable in head", r)
			}
			cr.head = append(cr.head, termSlot(vi, t))
		}
	}
	cr.nvars = len(vi.idx)
	cr.en = cr.newEnv()
	return cr, nil
}

// compileBody greedily orders the literals so every step's inputs are bound
// when it runs, and precomputes probe-key positions for hash lookups. bound
// seeds the variables already bound on entry (empty for a full rule plan; a
// delta plan seeds the variables its driver literal binds). oldOf, when
// non-nil, marks per literal whether the step must read the pre-delta (old)
// version of its relation — the annotation delta plans use to implement the
// new/Δ/old join expansion; it is aligned with lits.
func compileBody(vi *varIndexer, bound map[string]bool, lits []datalog.Literal, oldOf []bool, r *datalog.Rule) ([]step, error) {
	var steps []step
	type pending struct {
		lit datalog.Literal
		old bool
	}
	remaining := make([]pending, len(lits))
	for i, l := range lits {
		remaining[i] = pending{lit: l}
		if oldOf != nil {
			remaining[i].old = oldOf[i]
		}
	}

	allBound := func(vars []string) bool {
		for _, v := range vars {
			if !bound[v] {
				return false
			}
		}
		return true
	}

	// rank returns the priority of a literal given current bindings, or -1
	// if the literal is not ready. Lower ranks run earlier.
	rank := func(l datalog.Literal) int {
		if l.Builtin != nil {
			b := l.Builtin
			if !l.Neg && b.Op == datalog.OpEq {
				lb := !b.L.IsVar() || bound[b.L.Var]
				rb := !b.R.IsVar() || bound[b.R.Var]
				if lb || rb {
					return 0 // binds or filters immediately
				}
				return -1
			}
			if allBound(l.Vars()) {
				return 1
			}
			return -1
		}
		if l.Neg {
			if allBound(l.Atom.Vars()) {
				return 2
			}
			return -1
		}
		// Positive atom: always ready. Prefer small delta relations as the
		// outer loop, then atoms connected to the current bindings.
		shares := false
		for _, v := range l.Atom.Vars() {
			if bound[v] {
				shares = true
				break
			}
		}
		switch {
		case l.Atom.Pred.IsDelta():
			return 3 // delta relations are small: best outer loop
		case shares:
			return 4
		case len(bound) == 0:
			return 5
		default:
			return 6 // would form a cross product; last resort
		}
	}

	for len(remaining) > 0 {
		best, bestRank := -1, int(^uint(0)>>1)
		for i, p := range remaining {
			if rk := rank(p.lit); rk >= 0 && rk < bestRank {
				best, bestRank = i, rk
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("eval: rule %q is unsafe: no evaluable literal order", r)
		}
		l, oldMode := remaining[best].lit, remaining[best].old
		remaining = append(remaining[:best], remaining[best+1:]...)

		switch {
		case l.Builtin != nil:
			b := l.Builtin
			st := step{kind: stepBuiltin, neg: l.Neg, op: b.Op}
			st.left = termSlot(vi, b.L)
			st.right = termSlot(vi, b.R)
			if !l.Neg && b.Op == datalog.OpEq {
				lb := !b.L.IsVar() || bound[b.L.Var]
				rb := !b.R.IsVar() || bound[b.R.Var]
				switch {
				case !lb && rb:
					st.bindLt = true
					bound[b.L.Var] = true
				case lb && !rb:
					st.bindRt = true
					bound[b.R.Var] = true
				}
			}
			steps = append(steps, st)
		case l.Neg:
			st := step{kind: stepNegAtom, pred: l.Atom.Pred, old: oldMode}
			full := true
			for _, t := range l.Atom.Args {
				st.args = append(st.args, termSlot(vi, t))
				if t.IsAnon() {
					full = false
				}
			}
			if full {
				st.fullKey = true
			} else {
				for i, t := range l.Atom.Args {
					if !t.IsAnon() {
						st.keyPos = append(st.keyPos, i)
					}
				}
			}
			steps = append(steps, st)
		default:
			st := step{kind: stepScan, pred: l.Atom.Pred, old: oldMode}
			hasBoundVar := false
			for i, t := range l.Atom.Args {
				slot := termSlot(vi, t)
				st.args = append(st.args, slot)
				if t.IsConst() || (t.IsVar() && bound[t.Var]) {
					st.keyPos = append(st.keyPos, i)
				}
				if t.IsVar() && bound[t.Var] {
					hasBoundVar = true
				}
			}
			// A probe key made only of constants (e.g. the outer scan of
			// tasks(T,N,U,0)) would build a maintained index on a
			// low-selectivity column whose huge buckets make later
			// Insert/Delete maintenance linear. Scan and filter instead —
			// same asymptotic cost for the query itself.
			if !hasBoundVar {
				st.keyPos = nil
			}
			for _, t := range l.Atom.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
			steps = append(steps, st)
		}
	}
	return steps, nil
}

// --- rule execution ---------------------------------------------------

// env is the runtime variable binding state, plus per-step scratch: probe
// keys (or full negation tuples) and newly-bound variable lists, reused
// across probes instead of allocated per tuple. A parallel worker's env also
// carries its shard assignment for the rule's partitioned outer scan.
type env struct {
	vals    []value.Value
	set     []bool
	scratch []value.Tuple
	newly   [][]int
	// shard assignment: at step shardStep the scan iterates only the
	// tuples of hash shard shard/nshards. shardStep < 0 disables sharding.
	shardStep int
	shard     int
	nshards   int
}

// newEnv allocates a fresh runtime environment for the rule: the compiled
// plan itself is immutable at run time, so one plan can drive many envs
// concurrently (one per parallel worker).
func (cr *compiledRule) newEnv() *env {
	return newEnvFor(cr.steps, cr.nvars)
}

// newEnvFor builds a runtime environment (bindings plus per-step scratch)
// for any compiled step sequence — full rule plans and delta plans alike.
func newEnvFor(steps []step, nvars int) *env {
	en := &env{
		vals:      make([]value.Value, nvars),
		set:       make([]bool, nvars),
		scratch:   make([]value.Tuple, len(steps)),
		newly:     make([][]int, len(steps)),
		shardStep: -1,
	}
	for i := range steps {
		st := &steps[i]
		switch st.kind {
		case stepNegAtom:
			if st.fullKey {
				en.scratch[i] = make(value.Tuple, len(st.args))
			} else {
				en.scratch[i] = make(value.Tuple, len(st.keyPos))
			}
		case stepScan:
			en.scratch[i] = make(value.Tuple, len(st.keyPos))
			en.newly[i] = make([]int, 0, len(st.args))
		}
	}
	return en
}

func (e *env) get(s argSlot) value.Value {
	if s.isVar {
		return e.vals[s.v]
	}
	return s.c
}

// runCtx resolves a plan's relation reads and index probes. In lazy mode
// (rels == nil) it goes through the Database, building maintained indexes on
// demand — the materialized-mode sequential path. In prepared mode every
// step's relation and probe structure was resolved up front (prepare for the
// materialized parallel path, prepareStream for the streaming path), making
// execution a pure read over the database: that is the read-only evaluation
// snapshot parallel workers run against. A keyed step probes, in order of
// preference, its ephemeral join/exist table (streaming), its resolved
// maintained index, or the Database lazily.
type runCtx struct {
	db   *Database
	rels []*value.Relation // per step; nil slice = lazy mode
	ixs  []*hashIndex      // per step; non-nil for keyed steps resolved to a maintained index
	tabs []*joinTable      // per step; streaming mode: ephemeral full join table
	exts []*existTable     // per step; streaming mode: ephemeral distinct-key table (negation)
}

// relAt returns the relation read by step i.
func (rc *runCtx) relAt(i int, p datalog.PredSym) *value.Relation {
	if rc.rels != nil {
		return rc.rels[i]
	}
	return rc.db.Rel(p)
}

// lookupAt probes the resolved index (or, lazily, the database) of keyed
// step i, returning the matching tuples. The streaming path's ephemeral
// tables are probed through tabAt/cursor instead — a value-type cursor, so
// the per-outer-tuple probe stays allocation-free.
func (rc *runCtx) lookupAt(i int, st *step, key value.Tuple) []value.Tuple {
	if rc.ixs != nil && rc.ixs[i] != nil {
		return rc.ixs[i].lookup(key)
	}
	return rc.db.Lookup(st.pred, st.keyPos, key)
}

// tabAt returns the ephemeral join table of keyed step i, or nil.
func (rc *runCtx) tabAt(i int) *joinTable {
	if rc.tabs == nil {
		return nil
	}
	return rc.tabs[i]
}

// hasMatchAt reports whether keyed step i has any tuple matching key — the
// existence probe negated atoms need.
func (rc *runCtx) hasMatchAt(i int, st *step, key value.Tuple) bool {
	if rc.exts != nil && rc.exts[i] != nil {
		return rc.exts[i].has(key)
	}
	if jt := rc.tabAt(i); jt != nil {
		return jt.hasMatch(key)
	}
	return len(rc.lookupAt(i, st, key)) > 0
}

// prepare resolves every relation and index the plan may touch, mutating the
// database (index construction) on the calling goroutine so that the
// returned context — shared read-only by the rule's workers — needs no
// synchronization. Eagerly resolving a keyed step's index matches what the
// lazy path's first probe would build.
func (cr *compiledRule) prepare(db *Database) *runCtx {
	rc := &runCtx{
		db:   db,
		rels: make([]*value.Relation, len(cr.steps)),
		ixs:  make([]*hashIndex, len(cr.steps)),
	}
	for i := range cr.steps {
		st := &cr.steps[i]
		switch st.kind {
		case stepScan:
			rc.rels[i] = db.Rel(st.pred)
			if len(st.keyPos) > 0 {
				rc.ixs[i] = db.Index(st.pred, st.keyPos)
			}
		case stepNegAtom:
			rc.rels[i] = db.Rel(st.pred)
			if !st.fullKey {
				rc.ixs[i] = db.Index(st.pred, st.keyPos)
			}
		}
	}
	return rc
}

// shardPlan decides how the rule's outer scan is partitioned across p
// workers: the first scan step, when it is a full scan over a relation large
// enough to amortize per-worker environments. Rules driven by keyed probes
// or small relations (delta-driven incremental rules in particular) run as
// a single task.
func (cr *compiledRule) shardPlan(rc *runCtx, p int) (shardStep, nshards int) {
	for i := range cr.steps {
		st := &cr.steps[i]
		if st.kind != stepScan {
			continue
		}
		if len(st.keyPos) != 0 {
			return -1, 1
		}
		rel := rc.rels[i]
		if rel == nil || rel.Len() < shardMinTuples {
			return -1, 1
		}
		return i, p
	}
	return -1, 1
}

// run executes the plan over db, calling emit for every derived head tuple.
// emit returning false stops the evaluation early.
func (cr *compiledRule) run(db *Database, emit func(value.Tuple) bool) error {
	en := cr.en
	// exec unsets every binding on the way out, but re-zero defensively so
	// one run can never leak bindings into the next.
	for i := range en.set {
		en.set[i] = false
	}
	cr.rc.db = db
	_, err := cr.exec(&cr.rc, en, 0, emit)
	return err
}

// exec runs steps[i:]; it returns false to request early termination.
func (cr *compiledRule) exec(rc *runCtx, en *env, i int, emit func(value.Tuple) bool) (bool, error) {
	if i == len(cr.steps) {
		if cr.head == nil {
			return emit(nil), nil
		}
		t := make(value.Tuple, len(cr.head))
		for j, s := range cr.head {
			t[j] = en.get(s)
		}
		return emit(t), nil
	}
	st := &cr.steps[i]
	switch st.kind {
	case stepBuiltin:
		switch {
		case st.bindLt:
			en.vals[st.left.v] = en.get(st.right)
			en.set[st.left.v] = true
			cont, err := cr.exec(rc, en, i+1, emit)
			en.set[st.left.v] = false
			return cont, err
		case st.bindRt:
			en.vals[st.right.v] = en.get(st.left)
			en.set[st.right.v] = true
			cont, err := cr.exec(rc, en, i+1, emit)
			en.set[st.right.v] = false
			return cont, err
		default:
			ok := st.op.Eval(en.get(st.left), en.get(st.right))
			if st.neg {
				ok = !ok
			}
			if !ok {
				return true, nil
			}
			return cr.exec(rc, en, i+1, emit)
		}

	case stepNegAtom:
		rel := rc.relAt(i, st.pred)
		if rel == nil {
			return cr.exec(rc, en, i+1, emit)
		}
		if st.fullKey {
			t := en.scratch[i]
			for j, s := range st.args {
				t[j] = en.get(s)
			}
			if rel.Contains(t) {
				return true, nil
			}
			return cr.exec(rc, en, i+1, emit)
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		if rc.hasMatchAt(i, st, key) {
			return true, nil
		}
		return cr.exec(rc, en, i+1, emit)

	default: // stepScan
		rel := rc.relAt(i, st.pred)
		if rel == nil {
			return true, nil
		}
		tryTuple := func(t value.Tuple) (bool, error) {
			newly := en.newly[i][:0]
			ok := true
			for j, s := range st.args {
				switch {
				case s.anon:
				case s.isVar:
					if en.set[s.v] {
						if !en.vals[s.v].Equal(t[j]) {
							ok = false
						}
					} else {
						en.vals[s.v] = t[j]
						en.set[s.v] = true
						newly = append(newly, s.v)
					}
				default:
					if !s.c.Equal(t[j]) {
						ok = false
					}
				}
				if !ok {
					break
				}
			}
			var cont = true
			var err error
			if ok {
				cont, err = cr.exec(rc, en, i+1, emit)
			}
			for _, v := range newly {
				en.set[v] = false
			}
			return cont, err
		}

		if len(st.keyPos) == 0 {
			var cont = true
			var err error
			iter := func(t value.Tuple) bool {
				cont, err = tryTuple(t)
				return err == nil && cont
			}
			if en.shardStep == i {
				rel.EachShardUntil(en.nshards, en.shard, iter)
			} else {
				rel.EachUntil(iter)
			}
			return cont, err
		}
		key := en.scratch[i]
		for j, p := range st.keyPos {
			key[j] = en.get(st.args[p])
		}
		if jt := rc.tabAt(i); jt != nil {
			for c := jt.cursor(key); ; {
				t, ok := c.next()
				if !ok {
					break
				}
				cont, err := tryTuple(t)
				if err != nil || !cont {
					return cont, err
				}
			}
			return true, nil
		}
		for _, t := range rc.lookupAt(i, st, key) {
			cont, err := tryTuple(t)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
}
