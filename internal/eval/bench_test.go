package eval

import (
	"fmt"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Micro-benchmarks of the evaluation engine: scan, indexed join, negation
// anti-join, and delta-driven evaluation. These are the primitives whose
// costs determine the Figure 6 curves.

func benchDB(n int) *Database {
	db := NewDatabase()
	r := value.NewRelation(2)
	s := value.NewRelation(2)
	for i := 0; i < n; i++ {
		r.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 100))})
		s.Add(value.Tuple{value.Int(int64(i % 100)), value.Int(int64(i))})
	}
	db.Set(datalog.Pred("r"), r)
	db.Set(datalog.Pred("s"), s)
	return db
}

func benchEval(b *testing.B, src string, n int) {
	b.Helper()
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := New(prog)
	if err != nil {
		b.Fatal(err)
	}
	db := benchDB(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.Eval(db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalSelection(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchEval(b, `
source r(a:int, b:int).
view v(a:int).
sel(X,Y) :- r(X,Y), Y > 50.
`, n)
		})
	}
}

func BenchmarkEvalIndexedJoin(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchEval(b, `
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int).
j(X,Z) :- r(X,Y), s(Y,Z), Z < 10.
`, n)
		})
	}
}

func BenchmarkEvalNegation(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchEval(b, `
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int).
anti(X,Y) :- r(X,Y), not s(Y,_).
`, n)
		})
	}
}

// Delta-driven evaluation must be independent of the base size: the delta
// relation is the outer loop and the base relation is probed by index.
func BenchmarkEvalDeltaDriven(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prog, err := datalog.Parse(`
source r(a:int, b:int).
view v(a:int, b:int).
-r(X,Y) :- r(X,Y), Y > 50, -v(X,Y).
`)
			if err != nil {
				b.Fatal(err)
			}
			ev, err := New(prog)
			if err != nil {
				b.Fatal(err)
			}
			db := benchDB(n)
			db.Set(datalog.Del("v"), value.RelationOf(2,
				value.Tuple{value.Int(7), value.Int(7 % 100)}))
			// Warm the index.
			if err := ev.Eval(db); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ev.Eval(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvalParallel measures the level-parallel, hash-sharded evaluator
// against the sequential one on scan- and join-heavy rules over a large
// EDB — the speedup source for the Figure 6 "original" (full-strategy)
// mode. p=1 is the sequential baseline; p=max is GOMAXPROCS workers.
func BenchmarkEvalParallel(b *testing.B) {
	src := `
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int).
j(X,Z) :- r(X,Y), s(Y,Z), Z < 40.
sel(X,Y) :- r(X,Y), Y > 10.
anti(X,Y) :- r(X,Y), not s(Y,_).
top(X) :- j(X,Z), Z > 5.
`
	prog, err := datalog.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	// A selective join partner: ~4 matches per key instead of benchDB's
	// n/100, so the output stays proportional to n.
	mkDB := func(n int) *Database {
		db := NewDatabase()
		r := value.NewRelation(2)
		s := value.NewRelation(2)
		for i := 0; i < n; i++ {
			r.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % (n / 4)))})
		}
		for k := 0; k < n/4; k++ {
			s.Add(value.Tuple{value.Int(int64(k)), value.Int(int64(k % 50))})
		}
		db.Set(datalog.Pred("r"), r)
		db.Set(datalog.Pred("s"), s)
		return db
	}
	for _, n := range []int{100000, 400000} {
		for _, par := range []struct {
			name string
			p    int
		}{{"p=1", 1}, {"p=max", 0}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, par.name), func(b *testing.B) {
				ev, err := New(prog)
				if err != nil {
					b.Fatal(err)
				}
				ev.SetParallelism(par.p)
				db := mkDB(n)
				// Warm indexes once so every iteration measures evaluation,
				// not index construction.
				if err := ev.Eval(db); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := ev.Eval(db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkDatabaseLookup measures a warm-index point probe: the key
// projection is hashed in place, so the probe itself must not allocate.
func BenchmarkDatabaseLookup(b *testing.B) {
	db := benchDB(100000)
	p := datalog.Pred("r")
	positions := []int{0}
	key := value.Tuple{value.Int(51234)}
	db.Index(p, positions) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(db.Lookup(p, positions, key)) != 1 {
			b.Fatal("probe must hit exactly one tuple")
		}
	}
}

// BenchmarkPutDelta measures one full putback step (evaluate the putdelta
// program, check non-contradiction, apply the source deltas) against a
// large base relation with warm indexes — the per-update cost the paper's
// Figure 6 argues stays proportional to the view delta.
func BenchmarkPutDelta(b *testing.B) {
	prog, err := datalog.Parse(`
source r(a:int, b:int).
view v(a:int, b:int).
+r(X,Y) :- +v(X,Y), not r(X,Y).
-r(X,Y) :- -v(X,Y), r(X,Y).
`)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := New(prog)
	if err != nil {
		b.Fatal(err)
	}
	db := benchDB(100000)
	// Warm the indexes with one throwaway round.
	db.Set(datalog.Ins("v"), value.RelationOf(2, value.Tuple{value.Int(-1), value.Int(0)}))
	db.Set(datalog.Del("v"), value.NewRelation(2))
	if err := Put(ev, db, prog.Sources); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := int64(200000 + i)
		db.Update(datalog.Ins("v"), value.RelationOf(2, value.Tuple{value.Int(id), value.Int(1)}))
		db.Update(datalog.Del("v"), value.RelationOf(2, value.Tuple{value.Int(id - 1), value.Int(1)}))
		if err := Put(ev, db, prog.Sources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatabaseInsertDeleteWithIndexes(b *testing.B) {
	db := NewDatabase()
	p := datalog.Pred("r")
	rel := value.NewRelation(2)
	for i := 0; i < 100000; i++ {
		rel.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % 100))})
	}
	db.Set(p, rel)
	// Two live indexes to maintain.
	db.Index(p, []int{0})
	db.Index(p, []int{1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := value.Tuple{value.Int(int64(200000 + i)), value.Int(3)}
		db.Insert(p, t)
		db.Delete(p, t)
	}
}
