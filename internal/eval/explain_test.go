package eval

import (
	"strings"
	"testing"
)

func TestExplainShowsDeltaDrivenPlan(t *testing.T) {
	// An incrementalized-style rule: the small delta relation must be the
	// outer loop, the base relation probed by index.
	e := mustEval(t, `
source r(a:int, b:int).
view v(a:int, b:int).
_|_ :- v(X,Y), X > 100.
-r(X,Y) :- r(X,Y), Y > 2, -v(X,Y).
`)
	out := e.Explain()
	for _, want := range []string{
		"rule -r(X, Y)",
		"1. scan -v (full)",
		"probe r via index on positions [0 1]",
		"filter >",
		"rule _|_",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// The delta scan must come before the base-relation probe.
	if strings.Index(out, "scan -v") > strings.Index(out, "probe r") {
		t.Errorf("delta relation should drive the plan:\n%s", out)
	}
}

func TestExplainMembershipAntiJoin(t *testing.T) {
	e := mustEval(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X), not r(X).
d(X) :- v(X), not r(_).
`)
	out := e.Explain()
	if !strings.Contains(out, "anti-join r by direct membership") {
		t.Errorf("full-key negation should test membership:\n%s", out)
	}
	if !strings.Contains(out, "anti-join r via index on positions []") &&
		!strings.Contains(out, "anti-join r via index") {
		t.Errorf("projected negation should use an index:\n%s", out)
	}
}

func TestExplainEqualityBinding(t *testing.T) {
	e := mustEval(t, `
source r(a:int, b:string).
view v(a:int).
+r(X,Y) :- v(X), Y = 'unknown', not r(X,Y).
`)
	out := e.Explain()
	if !strings.Contains(out, "bind via equality") {
		t.Errorf("equality binding not reported:\n%s", out)
	}
}
