package eval

import (
	"math/rand"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

func mustProg(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustEval(t *testing.T, src string) *Evaluator {
	t.Helper()
	e, err := New(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func ints(vals ...int64) *value.Relation {
	r := value.NewRelation(1)
	for _, v := range vals {
		r.Add(value.Tuple{value.Int(v)})
	}
	return r
}

func pairs(vals ...[2]int64) *value.Relation {
	r := value.NewRelation(2)
	for _, v := range vals {
		r.Add(value.Tuple{value.Int(v[0]), value.Int(v[1])})
	}
	return r
}

// Example 3.1 of the paper: the union view putback program, with the exact
// instance from the paper.
func TestExample31UnionPut(t *testing.T) {
	e := mustEval(t, `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r1"), ints(1))
	db.Set(datalog.Pred("r2"), ints(2, 4))
	db.Set(datalog.Pred("v"), ints(1, 3, 4))

	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Ins("r1")); !got.Equal(ints(3)) {
		t.Errorf("Δ+r1 = %v, want {3}", got)
	}
	if got := db.Rel(datalog.Del("r2")); !got.Equal(ints(2)) {
		t.Errorf("Δ-r2 = %v, want {2}", got)
	}
	if got := db.Rel(datalog.Del("r1")); !got.Empty() {
		t.Errorf("Δ-r1 = %v, want empty", got)
	}

	del, ins, err := ApplyDeltas(db, e.Program().Sources)
	if err != nil {
		t.Fatal(err)
	}
	if del != 1 || ins != 1 {
		t.Errorf("applied %d deletions, %d insertions; want 1, 1", del, ins)
	}
	// S' = {r1(1), r1(3), r2(4)} as in the paper.
	if got := db.Rel(datalog.Pred("r1")); !got.Equal(ints(1, 3)) {
		t.Errorf("r1' = %v, want {1, 3}", got)
	}
	if got := db.Rel(datalog.Pred("r2")); !got.Equal(ints(4)) {
		t.Errorf("r2' = %v, want {4}", got)
	}
}

func TestAuxiliaryIDBAndStrata(t *testing.T) {
	// m is an intermediate IDB relation used under negation downstream.
	e := mustEval(t, `
source r(a:int, b:int).
view v(a:int, b:int).
m(X,Y) :- r(X,Y), Y > 2.
-r(X,Y) :- m(X,Y), not v(X,Y).
+r(X,Y) :- v(X,Y), not r(X,Y).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), pairs([2]int64{1, 1}, [2]int64{2, 3}, [2]int64{3, 9}))
	db.Set(datalog.Pred("v"), pairs([2]int64{2, 3}))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Pred("m")); !got.Equal(pairs([2]int64{2, 3}, [2]int64{3, 9})) {
		t.Errorf("m = %v", got)
	}
	if got := db.Rel(datalog.Del("r")); !got.Equal(pairs([2]int64{3, 9})) {
		t.Errorf("Δ-r = %v, want {(3,9)}", got)
	}
}

func TestConstantsInAtomsAndEqualities(t *testing.T) {
	e := mustEval(t, `
source male(e:string).
source female(e:string).
view people(e:string, g:string).
+male(E) :- people(E,'M'), not male(E).
+female(E) :- people(E,G), G = 'F', not female(E).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("male"), value.RelationOf(1, value.Tuple{value.Str("bob")}))
	db.Set(datalog.Pred("female"), value.NewRelation(1))
	people := value.NewRelation(2)
	people.Add(value.Tuple{value.Str("bob"), value.Str("M")})
	people.Add(value.Tuple{value.Str("joe"), value.Str("M")})
	people.Add(value.Tuple{value.Str("ann"), value.Str("F")})
	db.Set(datalog.Pred("people"), people)

	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Ins("male")); got.Len() != 1 || !got.Contains(value.Tuple{value.Str("joe")}) {
		t.Errorf("Δ+male = %v, want {joe}", got)
	}
	if got := db.Rel(datalog.Ins("female")); got.Len() != 1 || !got.Contains(value.Tuple{value.Str("ann")}) {
		t.Errorf("Δ+female = %v, want {ann}", got)
	}
}

func TestEqualityBindingChains(t *testing.T) {
	e := mustEval(t, `
source r(a:int, b:string).
view v(a:int).
+r(X,Y) :- v(X), not r(X,'unknown'), Y = 'unknown'.
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), value.NewRelation(2))
	db.Set(datalog.Pred("v"), ints(7))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	want := value.Tuple{value.Int(7), value.Str("unknown")}
	if got := db.Rel(datalog.Ins("r")); got.Len() != 1 || !got.Contains(want) {
		t.Errorf("Δ+r = %v, want {(7,'unknown')}", got)
	}
}

func TestAnonymousInNegatedAtom(t *testing.T) {
	// retired(E) :- residents(E,B,G), not ced(E,_): NOT EXISTS semantics.
	e := mustEval(t, `
source residents(e:string, b:string).
source ced(e:string, d:string).
view unused(e:string).
retired(E) :- residents(E,B), not ced(E,_).
`)
	db := NewDatabase()
	res := value.NewRelation(2)
	res.Add(value.Tuple{value.Str("ann"), value.Str("1960")})
	res.Add(value.Tuple{value.Str("bob"), value.Str("1970")})
	db.Set(datalog.Pred("residents"), res)
	ced := value.NewRelation(2)
	ced.Add(value.Tuple{value.Str("bob"), value.Str("sales")})
	db.Set(datalog.Pred("ced"), ced)
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	got := db.Rel(datalog.Pred("retired"))
	if got.Len() != 1 || !got.Contains(value.Tuple{value.Str("ann")}) {
		t.Errorf("retired = %v, want {ann}", got)
	}
}

func TestAnonymousInPositiveAtom(t *testing.T) {
	e := mustEval(t, `
source r(a:int, b:int).
view v(a:int).
proj(X) :- r(X,_).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), pairs([2]int64{1, 10}, [2]int64{1, 20}, [2]int64{2, 30}))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Pred("proj")); !got.Equal(ints(1, 2)) {
		t.Errorf("proj = %v, want {1,2}", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	e := mustEval(t, `
source r(a:int, b:int).
view v(a:int).
diag(X) :- r(X,X).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), pairs([2]int64{1, 1}, [2]int64{1, 2}, [2]int64{3, 3}))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Pred("diag")); !got.Equal(ints(1, 3)) {
		t.Errorf("diag = %v, want {1,3}", got)
	}
}

func TestJoinUsesIndex(t *testing.T) {
	e := mustEval(t, `
source s1(a:int, b:int).
source s2(b:int, c:int).
view v(a:int).
j(X,Y,Z) :- s1(X,Y), s2(Y,Z).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("s1"), pairs([2]int64{1, 10}, [2]int64{2, 20}))
	db.Set(datalog.Pred("s2"), pairs([2]int64{10, 100}, [2]int64{10, 101}, [2]int64{30, 300}))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	got := db.Rel(datalog.Pred("j"))
	if got.Len() != 2 ||
		!got.Contains(value.Tuple{value.Int(1), value.Int(10), value.Int(100)}) ||
		!got.Contains(value.Tuple{value.Int(1), value.Int(10), value.Int(101)}) {
		t.Errorf("join = %v", got)
	}
}

func TestComparisonsAndNegatedBuiltins(t *testing.T) {
	e := mustEval(t, `
source r(a:int).
view v(a:int).
mid(X) :- r(X), not X < 2, not X > 4.
ne(X)  :- r(X), X <> 3.
le(X)  :- r(X), X <= 2.
ge(X)  :- r(X), X >= 4.
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1, 2, 3, 4, 5))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Pred("mid")); !got.Equal(ints(2, 3, 4)) {
		t.Errorf("mid = %v", got)
	}
	if got := db.Rel(datalog.Pred("ne")); !got.Equal(ints(1, 2, 4, 5)) {
		t.Errorf("ne = %v", got)
	}
	if got := db.Rel(datalog.Pred("le")); !got.Equal(ints(1, 2)) {
		t.Errorf("le = %v", got)
	}
	if got := db.Rel(datalog.Pred("ge")); !got.Equal(ints(4, 5)) {
		t.Errorf("ge = %v", got)
	}
}

func TestStringComparisonDates(t *testing.T) {
	e := mustEval(t, `
source residents(e:string, b:date).
view v(e:string).
in1962(E) :- residents(E,B), not B < '1962-01-01', not B > '1962-12-31'.
`)
	db := NewDatabase()
	r := value.NewRelation(2)
	r.Add(value.Tuple{value.Str("ann"), value.Str("1962-05-17")})
	r.Add(value.Tuple{value.Str("bob"), value.Str("1961-12-31")})
	r.Add(value.Tuple{value.Str("cat"), value.Str("1963-01-01")})
	db.Set(datalog.Pred("residents"), r)
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	got := db.Rel(datalog.Pred("in1962"))
	if got.Len() != 1 || !got.Contains(value.Tuple{value.Str("ann")}) {
		t.Errorf("in1962 = %v, want {ann}", got)
	}
}

func TestViolations(t *testing.T) {
	e := mustEval(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), X > 2.
_|_ :- v(X), r(X), X < 0.
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints())
	db.Set(datalog.Pred("v"), ints(1, 2))
	vs, err := e.Violations(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("no violation expected, got %v", vs)
	}
	db.Set(datalog.Pred("v"), ints(1, 5))
	vs, err = e.Violations(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Errorf("one violation expected, got %v", vs)
	}
}

func TestContradictionDetected(t *testing.T) {
	e := mustEval(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X).
-r(X) :- v(X), r(X).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1))
	db.Set(datalog.Pred("v"), ints(1))
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ApplyDeltas(db, e.Program().Sources); err == nil {
		t.Fatal("expected contradiction error")
	} else if _, ok := err.(*ContradictionError); !ok {
		t.Fatalf("want ContradictionError, got %T: %v", err, err)
	}
}

func TestNewRejectsBadPrograms(t *testing.T) {
	bad := []string{
		// recursive
		"source r(a:int).\nview v(a:int).\na(X) :- b(X).\nb(X) :- a(X).",
		// unsafe
		"source r(a:int).\nview v(a:int).\n+r(X) :- v(Y).",
		// arity conflict
		"source r(a:int,b:int).\nview v(a:int).\na(X) :- v(X).\na(X,Y) :- r(X,Y).",
		// anonymous head variable
		"source r(a:int,b:int).\nview v(a:int).\n+r(X,_) :- v(X).",
	}
	for _, src := range bad {
		if _, err := New(mustProg(t, src)); err == nil {
			t.Errorf("New should reject:\n%s", src)
		}
	}
}

func TestEvalQueryAndEmptyGoal(t *testing.T) {
	e := mustEval(t, `
source r(a:int).
view v(a:int).
big(X) :- r(X), X > 100.
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1, 2))
	got, err := e.EvalQuery(db, datalog.Pred("big"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Empty() {
		t.Errorf("big = %v, want empty", got)
	}
}

func TestDatabaseIndexMaintenance(t *testing.T) {
	db := NewDatabase()
	p := datalog.Pred("r")
	db.Set(p, pairs([2]int64{1, 10}, [2]int64{2, 20}))
	// Build an index, then mutate through the database.
	if got := db.Lookup(p, []int{0}, value.Tuple{value.Int(1)}); len(got) != 1 {
		t.Fatalf("lookup before mutation = %v", got)
	}
	db.Insert(p, value.Tuple{value.Int(1), value.Int(11)})
	if got := db.Lookup(p, []int{0}, value.Tuple{value.Int(1)}); len(got) != 2 {
		t.Errorf("lookup after insert = %v", got)
	}
	db.Delete(p, value.Tuple{value.Int(1), value.Int(10)})
	if got := db.Lookup(p, []int{0}, value.Tuple{value.Int(1)}); len(got) != 1 {
		t.Errorf("lookup after delete = %v", got)
	}
	// Set drops the index; a later lookup rebuilds it.
	db.Set(p, pairs([2]int64{5, 50}))
	if got := db.Lookup(p, []int{0}, value.Tuple{value.Int(5)}); len(got) != 1 {
		t.Errorf("lookup after Set = %v", got)
	}
	if got := db.Lookup(p, []int{0}, value.Tuple{value.Int(1)}); len(got) != 0 {
		t.Errorf("stale index entries after Set: %v", got)
	}
}

func TestDatabaseCloneAndEqual(t *testing.T) {
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1))
	c := db.Clone()
	c.Insert(datalog.Pred("r"), value.Tuple{value.Int(2)})
	if db.Rel(datalog.Pred("r")).Len() != 1 {
		t.Error("Clone shares relations")
	}
	preds := []datalog.PredSym{datalog.Pred("r")}
	if db.Equal(c, preds) {
		t.Error("Equal should detect difference")
	}
	c.Delete(datalog.Pred("r"), value.Tuple{value.Int(2)})
	if !db.Equal(c, preds) {
		t.Error("Equal should match again")
	}
	// nil relation treated as empty.
	other := NewDatabase()
	empty := NewDatabase()
	empty.Set(datalog.Pred("x"), ints())
	if !other.Equal(empty, []datalog.PredSym{datalog.Pred("x")}) {
		t.Error("nil vs empty relation should be equal")
	}
}

func TestSnapshotHelpers(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X), not r(X).
`)
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1))
	snap := SnapshotSources(db, prog.Sources)
	if !SourcesEqual(db, prog.Sources, snap) {
		t.Error("snapshot should match immediately")
	}
	db.Insert(datalog.Pred("r"), value.Tuple{value.Int(2)})
	if SourcesEqual(db, prog.Sources, snap) {
		t.Error("snapshot should detect change")
	}
	ClearDeltas(db, prog.Sources)
	if !db.Rel(datalog.Ins("r")).Empty() || !db.Rel(datalog.Del("r")).Empty() {
		t.Error("ClearDeltas should reset delta relations")
	}
}

func TestPutHelper(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X), not r(X).
-r(X) :- r(X), not v(X).
`)
	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Set(datalog.Pred("r"), ints(1, 2))
	db.Set(datalog.Pred("v"), ints(2, 3))
	if err := Put(e, db, prog.Sources); err != nil {
		t.Fatal(err)
	}
	if got := db.Rel(datalog.Pred("r")); !got.Equal(ints(2, 3)) {
		t.Errorf("r after put = %v, want {2,3}", got)
	}
}

// Property: identity strategy round-trips random databases — after put with
// V = R the source is unchanged (GetPut instance), and after put with a
// random V the source equals V (PutGet instance for the identity view).
func TestIdentityStrategyProperty(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X), not r(X).
-r(X) :- r(X), not v(X).
`)
	e, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	randomRel := func() *value.Relation {
		r := value.NewRelation(1)
		for i := 0; i < rng.Intn(8); i++ {
			r.Add(value.Tuple{value.Int(int64(rng.Intn(10)))})
		}
		return r
	}
	for trial := 0; trial < 100; trial++ {
		src := randomRel()
		db := NewDatabase()
		db.Set(datalog.Pred("r"), src.Clone())
		db.Set(datalog.Pred("v"), src.Clone())
		if err := Put(e, db, prog.Sources); err != nil {
			t.Fatal(err)
		}
		if !db.Rel(datalog.Pred("r")).Equal(src) {
			t.Fatalf("GetPut violated: %v -> %v", src, db.Rel(datalog.Pred("r")))
		}
		v := randomRel()
		db.Set(datalog.Pred("v"), v.Clone())
		if err := Put(e, db, prog.Sources); err != nil {
			t.Fatal(err)
		}
		if !db.Rel(datalog.Pred("r")).Equal(v) {
			t.Fatalf("PutGet violated: view %v -> source %v", v, db.Rel(datalog.Pred("r")))
		}
	}
}

// Regression: a probe key consisting only of constants must not create a
// maintained index — such indexes key on low-selectivity columns (e.g. the
// done flag of tasks(T,N,U,0)) and make every later Insert/Delete scan a
// huge bucket. See EXPERIMENTS.md (Figure 6c investigation).
func TestNoConstantOnlyIndexes(t *testing.T) {
	e := mustEval(t, `
source tasks(tid:int, tname:string, uid:int, done:int).
source users(uid:int, uname:string).
view ot(tid:int, tname:string, uid:int).
ot2(T,N,U) :- tasks(T,N,U,0), users(U,_).
`)
	db := NewDatabase()
	tasks := value.NewRelation(4)
	for i := 0; i < 100; i++ {
		tasks.Add(value.Tuple{value.Int(int64(i)), value.Str("t"), value.Int(int64(i % 10)), value.Int(int64(i % 2))})
	}
	users := value.NewRelation(2)
	for i := 0; i < 10; i++ {
		users.Add(value.Tuple{value.Int(int64(i)), value.Str("u")})
	}
	db.Set(datalog.Pred("tasks"), tasks)
	db.Set(datalog.Pred("users"), users)
	if err := e.Eval(db); err != nil {
		t.Fatal(err)
	}
	for _, st := range db.Indexes() {
		if st.Pred == datalog.Pred("tasks") && st.Positions == "3" {
			t.Fatalf("constant-only index on tasks(done) must not exist: %+v", db.Indexes())
		}
	}
	// The plan confirms: tasks is scanned, users is probed by the bound U.
	plan := e.Explain()
	if !strings.Contains(plan, "scan tasks (full)") {
		t.Errorf("tasks should be a full scan:\n%s", plan)
	}
	if !strings.Contains(plan, "probe users via index on positions [0]") {
		t.Errorf("users should be probed:\n%s", plan)
	}
}
