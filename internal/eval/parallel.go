// Parallel evaluation: the IDB dependency DAG is leveled topologically and
// the predicates of one level are evaluated concurrently; within a rule, the
// outermost full scan fans out across hash shards of its relation (reusing
// the relation's bucket layout — no data movement). Workers run over a
// read-only prepared context (relations and indexes resolved serially up
// front) and emit into private partial relations, merged in a fixed order
// after the level barrier. Relations are sets, shards partition tuples by
// hash, and the merge order is deterministic, so parallel evaluation
// produces relations set-identical (Relation.Equal, same lookup-observable
// index contents) to sequential evaluation — the property the differential
// and determinism tests in parallel_test.go pin down. Internal bucket and
// slice ordering, which no evaluator API exposes as meaningful, may differ.
package eval

import (
	"sync"

	"birds/internal/datalog"
	"birds/internal/value"
)

// The parallel thresholds are variables only so tests can force the
// parallel machinery onto tiny relations; production code treats them as
// constants.
var (
	// shardMinTuples is the smallest outer-scan relation worth splitting
	// across workers: below this, per-worker environments and partial
	// relations cost more than the scan.
	shardMinTuples = 1024

	// parallelMinWork is the smallest total outer-scan size for which a
	// level leaves the sequential path at all. Delta-driven incremental
	// evaluations (a handful of tuples per relation) stay on the exact
	// allocation profile the sequential evaluator has.
	parallelMinWork = 2048
)

// runTasks runs n tasks with at most p concurrent workers (task i runs
// run(i)) and returns after all complete — the worker-pool scaffolding
// shared by the full-evaluation scheduler, the parallel counted init and
// the parallel delta propagation. run must do its own error capture (e.g.
// into a per-task slot); panics are not recovered, matching the
// sequential path.
func runTasks(p, n int, run func(int)) {
	sem := make(chan struct{}, p)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			run(i)
		}(i)
	}
	wg.Wait()
}

// parallelTask is one unit of work: one rule, one shard of its outer scan,
// emitting into a private partial relation.
type parallelTask struct {
	cr        *compiledRule
	rc        *runCtx
	out       *value.Relation
	shardStep int
	shard     int
	nshards   int
}

// outerWeight estimates a rule's evaluation work as the size of its outer
// full scan (the relation the plan iterates before any probes); keyed-probe
// and empty outer scans count as 1.
func (cr *compiledRule) outerWeight(db *Database) int {
	for i := range cr.steps {
		st := &cr.steps[i]
		if st.kind != stepScan {
			continue
		}
		if len(st.keyPos) != 0 {
			return 1
		}
		if rel := db.Rel(st.pred); rel != nil {
			return rel.Len()
		}
		return 1
	}
	return 1
}

// evalParallel evaluates the (included) IDB predicates level by level with
// up to e.parallelism workers per level. A non-nil ec selects streaming
// execution: the serial prepare phase picks each rule's cheapest driver
// variant and builds its ephemeral probe tables (shared through ec), and
// the variant's outer driver scan is what fans out across hash shards —
// a worker owns one shard-rooted pipeline and merges after the barrier.
func (e *Evaluator) evalParallel(db *Database, ec *evalCtx, include map[datalog.PredSym]bool) error {
	p := e.parallelism
	for _, level := range e.levels {
		syms := level
		if include != nil {
			syms = syms[:0:0]
			for _, sym := range level {
				if include[sym] {
					syms = append(syms, sym)
				}
			}
		}
		if len(syms) == 0 {
			continue
		}

		// A level whose rules only touch a few tuples is cheaper on the
		// sequential path (no goroutines, no partial relations, reused
		// rule environments).
		weight := 0
		for _, sym := range syms {
			for _, cr := range e.rules[sym] {
				weight += cr.outerWeight(db)
			}
		}
		if weight < parallelMinWork {
			for _, sym := range syms {
				var err error
				if ec != nil {
					err = e.evalPredStreaming(db, ec, sym)
				} else {
					err = e.evalPredSequential(db, sym)
				}
				if err != nil {
					return err
				}
			}
			continue
		}

		// Serial prepare: resolve every relation and probe structure the
		// level's rules touch, so the parallel phase is a pure read of db.
		var tasks []parallelTask
		partials := make([][]*value.Relation, len(syms))
		for si, sym := range syms {
			arity := e.arities[sym]
			for _, cr := range e.rules[sym] {
				plan, rc := cr.preparePlan(db, ec)
				shardStep, nshards := plan.shardPlan(rc, p)
				for s := 0; s < nshards; s++ {
					partial := value.NewRelation(arity)
					partials[si] = append(partials[si], partial)
					tasks = append(tasks, parallelTask{
						cr: plan, rc: rc, out: partial,
						shardStep: shardStep, shard: s, nshards: nshards,
					})
				}
			}
		}

		// Parallel phase: every task runs the full plan with a private
		// environment; the sharded task's outer scan iterates only its
		// hash shard. Nothing mutates db until the barrier below.
		errs := make([]error, len(tasks))
		runTasks(p, len(tasks), func(ti int) {
			t := &tasks[ti]
			en := t.cr.newEnv()
			en.shardStep, en.shard, en.nshards = t.shardStep, t.shard, t.nshards
			_, errs[ti] = t.cr.exec(t.rc, en, 0, func(tu value.Tuple) bool {
				t.out.Add(tu)
				return true
			})
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		// Barrier merge, lock-free: workers are done, partials are merged
		// on this goroutine. Set-semantic union makes the merged content
		// independent of the merge order; the base is the largest partial
		// (a deterministic choice — shard contents are deterministic) so
		// the bulk of the tuples is adopted instead of re-inserted, and a
		// single-task predicate adopts its partial outright.
		for si, sym := range syms {
			parts := partials[si]
			if len(parts) == 0 { // unreachable: every IDB predicate has a rule
				db.Update(sym, value.NewRelation(e.arities[sym]))
				continue
			}
			base := 0
			for i := 1; i < len(parts); i++ {
				if parts[i].Len() > parts[base].Len() {
					base = i
				}
			}
			out := parts[base]
			for i, partial := range parts {
				if i != base {
					out.UnionWith(partial)
				}
			}
			e.installEval(db, sym, out)
		}
	}
	return nil
}

// preparePlan resolves one rule for a parallel run: in streaming mode (ec
// non-nil) the cheapest driver variant with its ephemeral tables, in
// materialized mode the primary plan with its maintained indexes. The
// returned plan is what tasks must execute (variants have their own
// variable numbering).
func (cr *compiledRule) preparePlan(db *Database, ec *evalCtx) (*compiledRule, *runCtx) {
	if ec != nil {
		v := cr.pickVariant(db)
		return v, v.prepareStream(db, ec)
	}
	return cr, cr.prepare(db)
}
