package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the replay path as a log directory's
// contents: Replay must never panic or hang, must classify every input as
// clean, torn-tail, or ErrCorrupt, and on a non-error outcome must deliver
// a contiguous LSN sequence from which a fresh Open can continue appending
// (the recovery contract). split places a segment boundary mid-stream so
// the multi-segment walk (including boundaries that tear a frame in half)
// is fuzzed too; split 0 writes the bytes as the legacy wal.log.
func FuzzReplay(f *testing.F) {
	// Seeds: real logs produced by the writer itself — single-segment,
	// multi-segment (rotation), pinned truncations at and off frame
	// boundaries, a flipped byte mid-log, and trailing garbage.
	build := func(n int, segBytes int64) []byte {
		dir := f.TempDir()
		l, err := Open(nil, dir, 1, segBytes)
		if err != nil {
			f.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
				f.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			f.Fatal(err)
		}
		var all []byte
		for _, name := range Segments(nil, dir) {
			b, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				f.Fatal(err)
			}
			all = append(all, b...)
		}
		return all
	}
	full := build(5, 0)
	multi := build(6, 64)
	f.Add([]byte{}, uint16(0))
	f.Add(full, uint16(0))
	f.Add(full, uint16(len(full)/2))
	f.Add(full[:len(full)-3], uint16(0))
	f.Add(full[:frameHeader], uint16(0))
	f.Add(full[:frameHeader+1], uint16(0))
	corrupt := append([]byte(nil), full...)
	corrupt[frameHeader+2] ^= 0xff
	f.Add(corrupt, uint16(0))
	f.Add(append(append([]byte(nil), full...), 0xde, 0xad, 0xbe, 0xef), uint16(0))
	f.Add(multi, uint16(len(multi)/3))
	f.Add(multi, uint16(len(multi)-1))

	f.Fuzz(func(t *testing.T, data []byte, split uint16) {
		dir := t.TempDir()
		if s := int(split); s > 0 && s < len(data) {
			writeFileT(t, filepath.Join(dir, segName(1)), data[:s])
			writeFileT(t, filepath.Join(dir, segName(1<<40)), data[s:])
		} else {
			writeFileT(t, filepath.Join(dir, LogName), data)
		}

		var lsns []uint64
		res, err := Replay(nil, dir, 0, func(r *Record) error {
			lsns = append(lsns, r.LSN)
			return nil
		})
		for i, lsn := range lsns {
			if lsn != uint64(i+1) {
				t.Fatalf("delivered LSN %d at position %d; want contiguous from 1 (err=%v)", lsn, i, err)
			}
		}
		if res.Replayed != len(lsns) {
			t.Fatalf("Replayed = %d, delivered %d", res.Replayed, len(lsns))
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("replay error is not ErrCorrupt: %v", err)
			}
			return
		}
		if res.Last != uint64(len(lsns)) {
			t.Fatalf("Last = %d after %d records", res.Last, len(lsns))
		}

		// Clean or torn-tail: the directory is recoverable — Open must trim
		// any torn tail and accept the next append, and a second replay must
		// extend the same contiguous sequence by exactly that record.
		l, err := Open(nil, dir, res.Last+1, 0)
		if err != nil {
			t.Fatalf("open after clean replay (torn=%v): %v", res.TornTail, err)
		}
		if _, err := l.Append(KindTxn, oneRow(99), true); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		res2, err := Replay(nil, dir, 0, func(r *Record) error { return nil })
		if err != nil {
			t.Fatalf("replay after append: %v", err)
		}
		if res2.TornTail {
			t.Fatal("torn tail resurfaced after Open trimmed it")
		}
		if res2.Replayed != res.Replayed+1 || res2.Last != res.Last+1 {
			t.Fatalf("after append: replayed %d last %d, want %d and %d",
				res2.Replayed, res2.Last, res.Replayed+1, res.Last+1)
		}
	})
}

func writeFileT(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
