package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"birds/internal/value"
)

// A checkpoint is an atomic snapshot of everything the log's row deltas are
// relative to: the DDL catalog (base-table schemas, view putback programs
// with their validated get rules, batching and durability options) and the
// full contents of every base table, stamped with the LSN of the last log
// record whose effects it includes. Materialized views and their support
// counts are deliberately absent: recovery re-derives them from base state
// through the counted initialization, proving the IVM layer a pure function
// of the base tables (and keeping checkpoints proportional to base data,
// not base + derived data).
//
// File layout: magic, then the same binary encoding as log records, then a
// trailing CRC32-Castagnoli over everything before it. Checkpoints are
// written to a temp file, fsynced, renamed into place
// (checkpoint-<LSN 16-hex>.ckpt) and the directory fsynced — a crash
// leaves either the old generation or the complete new one, never a
// partial file under the live name.

// Checkpoint is a decoded snapshot.
type Checkpoint struct {
	// LSN is the sequence number of the last log record included in the
	// snapshot; recovery replays records with larger LSNs only.
	LSN uint64

	Tables []TableState
	Views  []ViewState

	// Batching, when non-nil, restores group-commit routing (DB.SetBatching)
	// on recovery.
	Batching *BatchConfig
	// Sync, CheckpointEvery and SegmentBytes restore the durability
	// options on recovery.
	Sync            SyncMode
	CheckpointEvery int
	SegmentBytes    int64
	// Parallelism restores the engine's evaluator worker budget (0 = the
	// engine default, i.e. sequential until SetParallelism is called).
	Parallelism int
}

// TableState is one base table: schema and full contents.
type TableState struct {
	Name  string
	Attrs []AttrState
	Rows  []value.Tuple
}

// AttrState is one attribute of a checkpointed table schema.
type AttrState struct {
	Name string
	Type string
}

// ViewState is one registered view, as re-creatable DDL: the putback
// program source, the validated get rules (so recovery skips re-running
// the validation oracle), and the maintenance mode.
type ViewState struct {
	Program     string   // putback program in concrete syntax
	Get         []string // validated get rules in concrete syntax
	Incremental bool
}

// BatchConfig mirrors engine.BatchOptions without importing the engine
// (which imports this package).
type BatchConfig struct {
	MaxTxns       int
	FlushInterval time.Duration
}

const (
	ckptMagic  = "BIRDSCKPT\x02"
	ckptSuffix = ".ckpt"
	ckptPrefix = "checkpoint-"
	tmpSuffix  = ".tmp"
)

// ckptName renders the live file name of a checkpoint at lsn; the 16-hex
// zero-padded LSN makes lexicographic order equal LSN order.
func ckptName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, lsn, ckptSuffix)
}

// WriteCheckpoint atomically persists ck into dir and removes strictly
// older checkpoint generations on success. Newer generations are left
// alone: a synchronous checkpoint (DDL, explicit request) may land while a
// background one at an earlier LSN is still being written, and whichever
// finishes last must not delete the other's newer state. A failed write
// leaves no temp file behind; if even the cleanup fails (the disk is truly
// hostile), the next Open sweeps strays. fsys nil means the process
// filesystem.
func WriteCheckpoint(fsys FS, dir string, ck *Checkpoint) error {
	fsys = realFS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload := encodeCheckpoint(ck)

	tmp, err := fsys.CreateTemp(dir, ckptPrefix+"*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); fsys.Remove(tmpName) }
	if _, err := tmp.Write(payload); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	live := filepath.Join(dir, ckptName(ck.LSN))
	if err := fsys.Rename(tmpName, live); err != nil {
		// A torn rename may leave a partial copy under the live name; its
		// checksum makes recovery fall back to the previous generation, and
		// the next successful checkpoint removes it as an older generation.
		fsys.Remove(tmpName)
		return err
	}
	if err := syncDir(fsys, dir); err != nil {
		return err
	}
	// The new generation is durable; older generations (and stray temp
	// files) are redundant. Removal failures are ignored — stale files are
	// skipped by LSN order on recovery.
	for _, name := range checkpointFiles(fsys, dir) {
		if name < ckptName(ck.LSN) {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// sweepTemp removes stray checkpoint temp files left by an interrupted or
// failed checkpoint whose own cleanup also failed. Called on Open, before
// any new checkpoint activity.
func sweepTemp(fsys FS, dir string) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, tmpSuffix) {
			fsys.Remove(filepath.Join(dir, name))
		}
	}
}

// LatestCheckpoint loads the newest checkpoint in dir that decodes and
// passes its checksum, falling back to older generations. It returns
// (nil, nil) when dir holds no checkpoint at all — the empty-state
// baseline; a dir whose every checkpoint is corrupt is an error. fsys nil
// means the process filesystem.
func LatestCheckpoint(fsys FS, dir string) (*Checkpoint, error) {
	fsys = realFS(fsys)
	names := checkpointFiles(fsys, dir)
	if len(names) == 0 {
		return nil, nil
	}
	// Newest first: names embed the LSN zero-padded, so lexicographic
	// descending is LSN descending.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var firstErr error
	for _, name := range names {
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ck, err := decodeCheckpoint(data)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wal: checkpoint %s: %w", name, err)
			}
			continue
		}
		return ck, nil
	}
	return nil, fmt.Errorf("wal: no valid checkpoint in %s: %w", dir, firstErr)
}

// checkpointFiles lists the live checkpoint file names in dir (temp files
// excluded), unsorted.
func checkpointFiles(fsys FS, dir string) []string {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix) {
			if _, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix), 16, 64); err == nil {
				out = append(out, name)
			}
		}
	}
	return out
}

// --- checkpoint encoding --------------------------------------------------

func encodeCheckpoint(ck *Checkpoint) []byte {
	buf := []byte(ckptMagic)
	buf = binary.AppendUvarint(buf, ck.LSN)
	buf = append(buf, byte(ck.Sync))
	buf = binary.AppendUvarint(buf, uint64(ck.CheckpointEvery))
	buf = binary.AppendVarint(buf, ck.SegmentBytes)
	buf = binary.AppendVarint(buf, int64(ck.Parallelism))
	if ck.Batching != nil {
		buf = append(buf, 1)
		buf = binary.AppendVarint(buf, int64(ck.Batching.MaxTxns))
		buf = binary.AppendVarint(buf, int64(ck.Batching.FlushInterval))
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Tables)))
	for _, t := range ck.Tables {
		buf = appendString(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(len(t.Attrs)))
		for _, a := range t.Attrs {
			buf = appendString(buf, a.Name)
			buf = appendString(buf, a.Type)
		}
		buf = appendTuples(buf, t.Rows)
	}
	buf = binary.AppendUvarint(buf, uint64(len(ck.Views)))
	for _, v := range ck.Views {
		buf = appendString(buf, v.Program)
		buf = binary.AppendUvarint(buf, uint64(len(v.Get)))
		for _, g := range v.Get {
			buf = appendString(buf, g)
		}
		if v.Incremental {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

func decodeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < len(ckptMagic)+4 {
		return nil, errors.New("truncated checkpoint")
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return nil, errors.New("bad checkpoint magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("checkpoint checksum mismatch")
	}
	d := &decoder{data: body, off: len(ckptMagic)}
	ck := &Checkpoint{}
	ck.LSN = d.uvarint()
	ck.Sync = SyncMode(d.byte())
	ck.CheckpointEvery = int(d.uvarint())
	ck.SegmentBytes = d.varint()
	ck.Parallelism = int(d.varint())
	if d.byte() == 1 {
		ck.Batching = &BatchConfig{
			MaxTxns:       int(d.varint()),
			FlushInterval: time.Duration(d.varint()),
		}
	}
	nt := int(d.uvarint())
	for i := 0; i < nt && d.err == nil; i++ {
		var t TableState
		t.Name = d.string()
		na := int(d.uvarint())
		for j := 0; j < na && d.err == nil; j++ {
			t.Attrs = append(t.Attrs, AttrState{Name: d.string(), Type: d.string()})
		}
		t.Rows = d.tuples(len(t.Attrs))
		ck.Tables = append(ck.Tables, t)
	}
	nv := int(d.uvarint())
	for i := 0; i < nv && d.err == nil; i++ {
		var v ViewState
		v.Program = d.string()
		ng := int(d.uvarint())
		for j := 0; j < ng && d.err == nil; j++ {
			v.Get = append(v.Get, d.string())
		}
		v.Incremental = d.byte() == 1
		ck.Views = append(ck.Views, v)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%d trailing bytes in checkpoint", len(body)-d.off)
	}
	return ck, nil
}
