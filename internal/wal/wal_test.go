package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"birds/internal/value"
)

func tup(vs ...value.Value) value.Tuple { return value.Tuple(vs) }

func testRecords() [][]TableDelta {
	return [][]TableDelta{
		{{Name: "items", Arity: 3, Ins: []value.Tuple{
			tup(value.Int(1), value.Str("a"), value.Float(1.5)),
			tup(value.Int(2), value.Str("it's"), value.Bool(true)),
		}}},
		{{Name: "items", Arity: 3, Del: []value.Tuple{
			tup(value.Int(1), value.Str("a"), value.Float(1.5)),
		}}, {Name: "owners", Arity: 2, Ins: []value.Tuple{
			tup(value.Int(7), value.Null()),
		}}},
		{{Name: "owners", Arity: 2, Ins: []value.Tuple{
			tup(value.Int(8), value.Int(-12345678901)),
		}, Del: []value.Tuple{
			tup(value.Int(7), value.Null()),
		}}},
	}
}

// appendAll writes the test records and closes the log, returning the dir.
func appendAll(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(nil, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KindTxn, KindBatch, KindBulkLoad}
	for i, tables := range testRecords() {
		lsn, err := l.Append(kinds[i%len(kinds)], tables, true)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func replayAll(t *testing.T, dir string, afterLSN uint64) ([]*Record, ReplayResult, error) {
	t.Helper()
	var recs []*Record
	res, err := Replay(nil, dir, afterLSN, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	return recs, res, err
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := appendAll(t)
	recs, res, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornTail || res.Replayed != 3 || res.Last != 3 {
		t.Fatalf("unexpected replay result %+v", res)
	}
	want := testRecords()
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d", i, rec.LSN)
		}
		if len(rec.Tables) != len(want[i]) {
			t.Fatalf("record %d: %d tables, want %d", i, len(rec.Tables), len(want[i]))
		}
		for j, td := range rec.Tables {
			w := want[i][j]
			if td.Name != w.Name || td.Arity != w.Arity {
				t.Fatalf("record %d table %d: %q/%d", i, j, td.Name, td.Arity)
			}
			for k, tu := range td.Ins {
				if !tu.Equal(w.Ins[k]) {
					t.Fatalf("record %d table %d ins %d: %s != %s", i, j, k, tu, w.Ins[k])
				}
			}
			for k, tu := range td.Del {
				if !tu.Equal(w.Del[k]) {
					t.Fatalf("record %d table %d del %d: %s != %s", i, j, k, tu, w.Del[k])
				}
			}
		}
	}

	// afterLSN skips covered records without replaying them.
	recs, res, err = replayAll(t, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 3 || res.Skipped != 2 {
		t.Fatalf("afterLSN=2: got %d records, result %+v", len(recs), res)
	}
}

// TestTornTailSkippedAtEveryOffset truncates the log at every byte offset:
// replay must never error, and must deliver exactly the records whose
// frames fit completely below the truncation point.
func TestTornTailSkippedAtEveryOffset(t *testing.T) {
	dir := appendAll(t)
	full, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	// The truncated copies are written under the legacy single-file name,
	// so this doubles as coverage for the pre-segment replay path.
	// Frame boundaries, computed by a clean replay of prefix sizes.
	boundaries := frameBoundaries(t, full)
	for cut := 0; cut <= len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, LogName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, res, err := replayAll(t, tdir, 0)
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		wantComplete := 0
		for _, b := range boundaries {
			if b <= cut {
				wantComplete++
			}
		}
		if len(recs) != wantComplete {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), wantComplete)
		}
		// Any cut that is not exactly a frame boundary (or the empty file)
		// leaves torn trailing bytes.
		wantTorn := cut != 0
		if wantComplete > 0 && cut == boundaries[wantComplete-1] {
			wantTorn = false
		}
		if res.TornTail != wantTorn {
			t.Fatalf("cut=%d: TornTail=%v, want %v", cut, res.TornTail, wantTorn)
		}
	}
}

// frameBoundaries returns the cumulative end offsets of each frame.
func frameBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	var out []int
	off := 0
	for off < len(data) {
		_, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			t.Fatalf("bad frame at offset %d", off)
		}
		off += frameLen
		out = append(out, off)
	}
	return out
}

// TestMidLogCorruptionIsHardError flips one byte inside the FIRST record's
// payload: later records are intact, so replay must refuse to skip.
func TestMidLogCorruptionIsHardError(t *testing.T) {
	dir := appendAll(t)
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff // inside record 1's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = replayAll(t, dir, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestTrailingCorruptRecordSkipped flips a byte inside the LAST record:
// with nothing valid after it, the checksum failure reads as a torn tail.
func TestTrailingCorruptRecordSkipped(t *testing.T) {
	dir := appendAll(t)
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := frameBoundaries(t, data)
	last := boundaries[len(boundaries)-2] // start of final frame
	data[last+frameHeader+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !res.TornTail {
		t.Fatalf("got %d records, result %+v; want 2 records and a torn tail", len(recs), res)
	}
}

func TestReplayMissingLogIsEmpty(t *testing.T) {
	recs, res, err := replayAll(t, t.TempDir(), 0)
	if err != nil || len(recs) != 0 || res.TornTail {
		t.Fatalf("recs=%d res=%+v err=%v", len(recs), res, err)
	}
}

func TestAppendAfterReopenContinuesLSN(t *testing.T) {
	dir := appendAll(t)
	l, err := Open(nil, dir, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(KindTxn, []TableDelta{{Name: "items", Arity: 1, Ins: []value.Tuple{tup(value.Int(9))}}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("got LSN %d, want 4", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := replayAll(t, dir, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

// oneRow is a minimal single-table delta for append tests.
func oneRow(v int64) []TableDelta {
	return []TableDelta{{Name: "items", Arity: 1, Ins: []value.Tuple{tup(value.Int(v))}}}
}

// TestAppendErrorPoisonsLog injects a clean write failure: the append must
// surface it, and every later append or sync must fail with ErrPoisoned —
// the log never retries a file whose page-cache state is unknown.
func TestAppendErrorPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 1)
	l, err := Open(ffs, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(KindTxn, oneRow(1), true); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	ffs.Inject(&Rule{Op: OpWrite, Err: boom, Once: true})
	if _, err := l.Append(KindTxn, oneRow(2), true); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	// The fault is gone, but the log must stay poisoned anyway.
	if _, err := l.Append(KindTxn, oneRow(3), true); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failure: want ErrPoisoned, got %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync after failure: want ErrPoisoned, got %v", err)
	}
	if err := l.Poisoned(); !errors.Is(err, ErrPoisoned) || !errors.Is(err, boom) {
		t.Fatalf("Poisoned() = %v; want ErrPoisoned wrapping the cause", err)
	}
	if got := l.LastLSN(); got != 1 {
		t.Fatalf("LSN consumed by failed append: last=%d", got)
	}
}

// TestShortWritePoisonsAndRecoveryTrims injects a torn append (half the
// frame persists): the log must poison itself, and replay must deliver
// exactly the acknowledged records, reporting the torn tail.
func TestShortWritePoisonsAndRecoveryTrims(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 1)
	l, err := Open(ffs, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindTxn, oneRow(1), true); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&Rule{Op: OpWrite, ShortWrite: true, Once: true})
	if _, err := l.Append(KindTxn, oneRow(2), false); err == nil {
		t.Fatal("short write did not error")
	}
	if _, err := l.Append(KindTxn, oneRow(3), false); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned, got %v", err)
	}
	l.Close()
	recs, res, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !res.TornTail {
		t.Fatalf("got %d records, result %+v; want 1 record and a torn tail", len(recs), res)
	}
	// Open trims the torn bytes and appends where the valid prefix ends.
	l2, err := Open(ffs, dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(KindTxn, oneRow(2), true); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	recs, res, err = replayAll(t, dir, 0)
	if err != nil || len(recs) != 2 || res.TornTail {
		t.Fatalf("after trim+append: recs=%d res=%+v err=%v", len(recs), res, err)
	}
}

// TestSyncErrorPoisonsLog injects an fsync failure on a synced append.
func TestSyncErrorPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 1)
	l, err := Open(ffs, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ffs.Inject(&Rule{Op: OpSync, Err: ErrNoSpace, Path: segPrefix, Once: true})
	if _, err := l.Append(KindTxn, oneRow(1), true); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, err := l.Append(KindTxn, oneRow(2), true); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("want ErrPoisoned, got %v", err)
	}
}

// TestSegmentRotation drives the log across a tiny rotation threshold and
// checks the segment layout, replay, and GC watermark behavior.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(nil, dir, 1, 128) // rotate every ~128 bytes
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 1; i <= n; i++ {
		if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	segs := Segments(nil, dir)
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %v", segs)
	}
	// Replay concatenates segments into one contiguous stream.
	recs, res, err := replayAll(t, dir, 0)
	if err != nil || len(recs) != n || res.Segments != len(segs) {
		t.Fatalf("recs=%d res=%+v err=%v", len(recs), res, err)
	}
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.LSN)
		}
	}
	// RotateForCheckpoint seals the active segment; removing below the
	// returned watermark must keep every record at or after it.
	watermark, err := l.RotateForCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RemoveSegmentsBelow(watermark); err != nil {
		t.Fatal(err)
	}
	recs, _, err = replayAll(t, dir, watermark-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n-int(watermark)+1 {
		t.Fatalf("after GC: %d records from LSN %d, want %d", len(recs), watermark, n-int(watermark)+1)
	}
	if _, err := l.Append(KindTxn, oneRow(99), true); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

// TestRotationCreateFailureDegradesGracefully: if the next segment cannot
// be created, the log keeps appending to the (oversized) current one
// rather than failing writes.
func TestRotationCreateFailureDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 1)
	l, err := Open(ffs, dir, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ffs.Inject(&Rule{Op: OpOpen, Path: segPrefix}) // every segment create fails
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	ffs.Clear()
	recs, _, err := replayAll(t, dir, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if got := len(Segments(ffs, dir)); got != 1 {
		t.Fatalf("rotation happened despite create failures: %d segments", got)
	}
}

// TestReplayCorruptionAcrossSegments: a torn tail in a NON-final segment
// followed by valid records in a later segment is corruption, not a torn
// tail.
func TestReplayCorruptionAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(nil, dir, 1, 1) // rotate on every append
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs := Segments(nil, dir)
	if len(segs) != 3 {
		t.Fatalf("want 3 segments, got %v", segs)
	}
	// Truncate the middle segment mid-frame.
	mid := filepath.Join(dir, segs[1])
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mid, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := replayAll(t, dir, 0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	// Truncating the FINAL segment instead is an ordinary torn tail.
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segs[2])
	data, err = os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res, err := replayAll(t, dir, 0)
	if err != nil || len(recs) != 2 || !res.TornTail {
		t.Fatalf("recs=%d res=%+v err=%v", len(recs), res, err)
	}
}

// TestCheckpointRenameFailureLeavesNoTemp: a failed checkpoint rename must
// not leave its temp file, and a torn rename's partial live file must fall
// back to the previous generation — then be swept by the next success.
func TestCheckpointRenameFailureLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, 1)
	if err := WriteCheckpoint(ffs, dir, &Checkpoint{LSN: 1}); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(&Rule{Op: OpRename, TornRename: true, Once: true})
	if err := WriteCheckpoint(ffs, dir, &Checkpoint{LSN: 2}); err == nil {
		t.Fatal("torn rename did not error")
	}
	for _, name := range listDir(t, dir) {
		if strings.HasSuffix(name, tmpSuffix) {
			t.Fatalf("temp file left behind: %s", name)
		}
	}
	// The partial generation-2 file fails its checksum; generation 1 loads.
	ck, err := LatestCheckpoint(ffs, dir)
	if err != nil || ck.LSN != 1 {
		t.Fatalf("ck=%+v err=%v; want fallback to LSN 1", ck, err)
	}
	// The next successful checkpoint replaces everything older.
	if err := WriteCheckpoint(ffs, dir, &Checkpoint{LSN: 3}); err != nil {
		t.Fatal(err)
	}
	ck, err = LatestCheckpoint(ffs, dir)
	if err != nil || ck.LSN != 3 {
		t.Fatalf("ck=%+v err=%v", ck, err)
	}
	names := listDir(t, dir)
	if len(names) != 1 || names[0] != ckptName(3) {
		t.Fatalf("stale files not removed: %v", names)
	}
}

// TestOpenSweepsStaleTemps: temp files stranded by a crashed checkpoint
// (its cleanup also failed) are removed on the next Open.
func TestOpenSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, ckptPrefix+"12345"+tmpSuffix)
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(nil, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stale temp not swept: %v", err)
	}
}

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpoint{
		LSN:             42,
		Sync:            SyncOnFlush,
		CheckpointEvery: 512,
		Parallelism:     4,
		Batching:        &BatchConfig{MaxTxns: 64, FlushInterval: 5 * time.Millisecond},
		Tables: []TableState{{
			Name:  "items",
			Attrs: []AttrState{{"iid", "int"}, {"iname", "string"}},
			Rows:  []value.Tuple{tup(value.Int(1), value.Str("a")), tup(value.Int(2), value.Str("b"))},
		}, {
			Name:  "empty",
			Attrs: []AttrState{{"x", "int"}},
		}},
		Views: []ViewState{{
			Program:     "source items(iid:int, iname:string).\nview v(iid:int, iname:string).\n-items(I,N) :- items(I,N), not v(I,N).\n",
			Get:         []string{"v(I,N) :- items(I,N)."},
			Incremental: true,
		}},
	}
	if err := WriteCheckpoint(nil, dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 42 || got.Sync != SyncOnFlush || got.CheckpointEvery != 512 || got.Parallelism != 4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Batching == nil || got.Batching.MaxTxns != 64 || got.Batching.FlushInterval != 5*time.Millisecond {
		t.Fatalf("batching mismatch: %+v", got.Batching)
	}
	if len(got.Tables) != 2 || got.Tables[0].Name != "items" || len(got.Tables[0].Rows) != 2 ||
		got.Tables[1].Name != "empty" || len(got.Tables[1].Rows) != 0 {
		t.Fatalf("tables mismatch: %+v", got.Tables)
	}
	if got.Tables[0].Attrs[1] != (AttrState{"iname", "string"}) {
		t.Fatalf("attrs mismatch: %+v", got.Tables[0].Attrs)
	}
	if len(got.Views) != 1 || got.Views[0].Program != ck.Views[0].Program ||
		len(got.Views[0].Get) != 1 || got.Views[0].Get[0] != ck.Views[0].Get[0] || !got.Views[0].Incremental {
		t.Fatalf("views mismatch: %+v", got.Views)
	}
}

// TestLatestCheckpointFallsBack corrupts the newest generation; the older
// valid one must be loaded instead.
func TestLatestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(nil, dir, &Checkpoint{LSN: 1}); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(filepath.Join(dir, ckptName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(nil, dir, &Checkpoint{LSN: 2}); err != nil {
		t.Fatal(err)
	}
	// WriteCheckpoint removed generation 1; restore it, then corrupt 2.
	if err := os.WriteFile(filepath.Join(dir, ckptName(1)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, ckptName(2))
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LatestCheckpoint(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.LSN != 1 {
		t.Fatalf("loaded LSN %d, want fallback to 1", ck.LSN)
	}
}

func TestLatestCheckpointEmptyDir(t *testing.T) {
	ck, err := LatestCheckpoint(nil, t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("ck=%v err=%v", ck, err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, m := range []SyncMode{SyncOff, SyncOnCommit, SyncOnFlush} {
		got, err := ParseSyncMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseSyncMode("nope"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}

// TestTornTailInOlderSegmentIsCorrupt: torn bytes are tolerated only in
// the newest non-empty segment — a crash can only tear the final append,
// so garbage followed by ANY data in a later segment is corruption, not a
// torn tail, even when that later data never decodes as a record.
func TestTornTailInOlderSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(nil, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, append(data, 0xde, 0xad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(4)), []byte{0xbe, 0xef}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(nil, dir, 0, func(*Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay: %v, want ErrCorrupt", err)
	}

	// An EMPTY later segment is the legitimate interrupted-rotation shape:
	// the torn tail stays a torn tail.
	if err := os.WriteFile(filepath.Join(dir, segName(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(nil, dir, 0, func(*Record) error { return nil })
	if err != nil || !res.TornTail || res.Last != 3 {
		t.Fatalf("replay with empty trailing segment: res=%+v err=%v", res, err)
	}
}

// TestOpenDropsTrailingEmptySegments: Open must remove empty trailing
// segments and trim the torn tail of the newest non-empty one, so the next
// append can never strand torn bytes in the middle of the log.
func TestOpenDropsTrailingEmptySegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(nil, dir, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.Append(KindTxn, oneRow(int64(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg1 := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg1, append(data, 0x01, 0x02, 0x03), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(4)), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = Open(nil, dir, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindTxn, oneRow(4), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	res, err := Replay(nil, dir, 0, func(r *Record) error { lsns = append(lsns, r.LSN); return nil })
	if err != nil || res.TornTail {
		t.Fatalf("replay after recovery append: res=%+v err=%v", res, err)
	}
	if len(lsns) != 4 || lsns[3] != 4 {
		t.Fatalf("replayed %v, want LSNs 1..4", lsns)
	}
}
