package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"birds/internal/value"
)

func tup(vs ...value.Value) value.Tuple { return value.Tuple(vs) }

func testRecords() [][]TableDelta {
	return [][]TableDelta{
		{{Name: "items", Arity: 3, Ins: []value.Tuple{
			tup(value.Int(1), value.Str("a"), value.Float(1.5)),
			tup(value.Int(2), value.Str("it's"), value.Bool(true)),
		}}},
		{{Name: "items", Arity: 3, Del: []value.Tuple{
			tup(value.Int(1), value.Str("a"), value.Float(1.5)),
		}}, {Name: "owners", Arity: 2, Ins: []value.Tuple{
			tup(value.Int(7), value.Null()),
		}}},
		{{Name: "owners", Arity: 2, Ins: []value.Tuple{
			tup(value.Int(8), value.Int(-12345678901)),
		}, Del: []value.Tuple{
			tup(value.Int(7), value.Null()),
		}}},
	}
}

// appendAll writes the test records and closes the log, returning the dir.
func appendAll(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KindTxn, KindBatch, KindBulkLoad}
	for i, tables := range testRecords() {
		lsn, err := l.Append(kinds[i%len(kinds)], tables, true)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got LSN %d", i, lsn)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func replayAll(t *testing.T, dir string, afterLSN uint64) ([]*Record, ReplayResult, error) {
	t.Helper()
	var recs []*Record
	res, err := Replay(dir, afterLSN, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	return recs, res, err
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := appendAll(t)
	recs, res, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TornTail || res.Replayed != 3 || res.Last != 3 {
		t.Fatalf("unexpected replay result %+v", res)
	}
	want := testRecords()
	for i, rec := range recs {
		if rec.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d", i, rec.LSN)
		}
		if len(rec.Tables) != len(want[i]) {
			t.Fatalf("record %d: %d tables, want %d", i, len(rec.Tables), len(want[i]))
		}
		for j, td := range rec.Tables {
			w := want[i][j]
			if td.Name != w.Name || td.Arity != w.Arity {
				t.Fatalf("record %d table %d: %q/%d", i, j, td.Name, td.Arity)
			}
			for k, tu := range td.Ins {
				if !tu.Equal(w.Ins[k]) {
					t.Fatalf("record %d table %d ins %d: %s != %s", i, j, k, tu, w.Ins[k])
				}
			}
			for k, tu := range td.Del {
				if !tu.Equal(w.Del[k]) {
					t.Fatalf("record %d table %d del %d: %s != %s", i, j, k, tu, w.Del[k])
				}
			}
		}
	}

	// afterLSN skips covered records without replaying them.
	recs, res, err = replayAll(t, dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].LSN != 3 || res.Skipped != 2 {
		t.Fatalf("afterLSN=2: got %d records, result %+v", len(recs), res)
	}
}

// TestTornTailSkippedAtEveryOffset truncates the log at every byte offset:
// replay must never error, and must deliver exactly the records whose
// frames fit completely below the truncation point.
func TestTornTailSkippedAtEveryOffset(t *testing.T) {
	dir := appendAll(t)
	full, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries, computed by a clean replay of prefix sizes.
	boundaries := frameBoundaries(t, full)
	for cut := 0; cut <= len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, LogName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, res, err := replayAll(t, tdir, 0)
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		wantComplete := 0
		for _, b := range boundaries {
			if b <= cut {
				wantComplete++
			}
		}
		if len(recs) != wantComplete {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), wantComplete)
		}
		// Any cut that is not exactly a frame boundary (or the empty file)
		// leaves torn trailing bytes.
		wantTorn := cut != 0
		if wantComplete > 0 && cut == boundaries[wantComplete-1] {
			wantTorn = false
		}
		if res.TornTail != wantTorn {
			t.Fatalf("cut=%d: TornTail=%v, want %v", cut, res.TornTail, wantTorn)
		}
	}
}

// frameBoundaries returns the cumulative end offsets of each frame.
func frameBoundaries(t *testing.T, data []byte) []int {
	t.Helper()
	var out []int
	off := 0
	for off < len(data) {
		_, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			t.Fatalf("bad frame at offset %d", off)
		}
		off += frameLen
		out = append(out, off)
	}
	return out
}

// TestMidLogCorruptionIsHardError flips one byte inside the FIRST record's
// payload: later records are intact, so replay must refuse to skip.
func TestMidLogCorruptionIsHardError(t *testing.T) {
	dir := appendAll(t)
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeader+2] ^= 0xff // inside record 1's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = replayAll(t, dir, 0)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

// TestTrailingCorruptRecordSkipped flips a byte inside the LAST record:
// with nothing valid after it, the checksum failure reads as a torn tail.
func TestTrailingCorruptRecordSkipped(t *testing.T) {
	dir := appendAll(t)
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	boundaries := frameBoundaries(t, data)
	last := boundaries[len(boundaries)-2] // start of final frame
	data[last+frameHeader+1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, res, err := replayAll(t, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || !res.TornTail {
		t.Fatalf("got %d records, result %+v; want 2 records and a torn tail", len(recs), res)
	}
}

func TestReplayMissingLogIsEmpty(t *testing.T) {
	recs, res, err := replayAll(t, t.TempDir(), 0)
	if err != nil || len(recs) != 0 || res.TornTail {
		t.Fatalf("recs=%d res=%+v err=%v", len(recs), res, err)
	}
}

func TestAppendAfterReopenContinuesLSN(t *testing.T) {
	dir := appendAll(t)
	l, err := Open(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(KindTxn, []TableDelta{{Name: "items", Arity: 1, Ins: []value.Tuple{tup(value.Int(9))}}}, false)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 4 {
		t.Fatalf("got LSN %d, want 4", lsn)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := replayAll(t, dir, 0)
	if err != nil || len(recs) != 4 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestInjectAppendError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	boom := errors.New("boom")
	l.InjectAppendError(boom)
	if _, err := l.Append(KindTxn, nil, true); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	sz, err := l.Size()
	if err != nil || sz != 0 {
		t.Fatalf("failed append wrote bytes: size=%d err=%v", sz, err)
	}
	l.InjectAppendError(nil)
	if _, err := l.Append(KindTxn, nil, true); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 1 {
		t.Fatalf("LSN consumed by failed append: last=%d", got)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck := &Checkpoint{
		LSN:             42,
		Sync:            SyncOnFlush,
		CheckpointEvery: 512,
		Parallelism:     4,
		Batching:        &BatchConfig{MaxTxns: 64, FlushInterval: 5 * time.Millisecond},
		Tables: []TableState{{
			Name:  "items",
			Attrs: []AttrState{{"iid", "int"}, {"iname", "string"}},
			Rows:  []value.Tuple{tup(value.Int(1), value.Str("a")), tup(value.Int(2), value.Str("b"))},
		}, {
			Name:  "empty",
			Attrs: []AttrState{{"x", "int"}},
		}},
		Views: []ViewState{{
			Program:     "source items(iid:int, iname:string).\nview v(iid:int, iname:string).\n-items(I,N) :- items(I,N), not v(I,N).\n",
			Get:         []string{"v(I,N) :- items(I,N)."},
			Incremental: true,
		}},
	}
	if err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 42 || got.Sync != SyncOnFlush || got.CheckpointEvery != 512 || got.Parallelism != 4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Batching == nil || got.Batching.MaxTxns != 64 || got.Batching.FlushInterval != 5*time.Millisecond {
		t.Fatalf("batching mismatch: %+v", got.Batching)
	}
	if len(got.Tables) != 2 || got.Tables[0].Name != "items" || len(got.Tables[0].Rows) != 2 ||
		got.Tables[1].Name != "empty" || len(got.Tables[1].Rows) != 0 {
		t.Fatalf("tables mismatch: %+v", got.Tables)
	}
	if got.Tables[0].Attrs[1] != (AttrState{"iname", "string"}) {
		t.Fatalf("attrs mismatch: %+v", got.Tables[0].Attrs)
	}
	if len(got.Views) != 1 || got.Views[0].Program != ck.Views[0].Program ||
		len(got.Views[0].Get) != 1 || got.Views[0].Get[0] != ck.Views[0].Get[0] || !got.Views[0].Incremental {
		t.Fatalf("views mismatch: %+v", got.Views)
	}
}

// TestLatestCheckpointFallsBack corrupts the newest generation; the older
// valid one must be loaded instead.
func TestLatestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, &Checkpoint{LSN: 1}); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(filepath.Join(dir, ckptName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, &Checkpoint{LSN: 2}); err != nil {
		t.Fatal(err)
	}
	// WriteCheckpoint removed generation 1; restore it, then corrupt 2.
	if err := os.WriteFile(filepath.Join(dir, ckptName(1)), old, 0o644); err != nil {
		t.Fatal(err)
	}
	path2 := filepath.Join(dir, ckptName(2))
	data, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.LSN != 1 {
		t.Fatalf("loaded LSN %d, want fallback to 1", ck.LSN)
	}
}

func TestLatestCheckpointEmptyDir(t *testing.T) {
	ck, err := LatestCheckpoint(t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("ck=%v err=%v", ck, err)
	}
}

func TestParseSyncMode(t *testing.T) {
	for _, m := range []SyncMode{SyncOff, SyncOnCommit, SyncOnFlush} {
		got, err := ParseSyncMode(m.String())
		if err != nil || got != m {
			t.Fatalf("round-trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseSyncMode("nope"); err == nil {
		t.Fatal("want error for unknown mode")
	}
}
