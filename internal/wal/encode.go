package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"birds/internal/value"
)

// Binary value encoding shared by log records and checkpoints. One byte of
// kind tag, then a kind-specific payload:
//
//	null    (nothing)
//	int     varint
//	float   8 bytes IEEE-754 bits, little-endian
//	string  uvarint length + bytes
//	bool    1 byte
//
// A tuple is uvarint arity + values; a tuple list is uvarint count +
// tuples. The encoding is exact (no float formatting round-trip) and
// self-delimiting, so record payloads need no padding.

const (
	tagNull byte = iota
	tagInt
	tagFloat
	tagString
	tagBool
	tagTrue // bool true folded into the tag; tagBool is false
)

var errTruncated = errors.New("wal: truncated payload")

func appendValue(buf []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(buf, tagNull)
	case value.KindInt:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, v.AsInt())
	case value.KindFloat:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.AsFloat()))
	case value.KindString:
		buf = append(buf, tagString)
		return appendString(buf, v.AsString())
	case value.KindBool:
		if v.AsBool() {
			return append(buf, tagTrue)
		}
		return append(buf, tagBool)
	default:
		panic(fmt.Sprintf("wal: cannot encode value kind %s", v.Kind()))
	}
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendTuple(buf []byte, t value.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t)))
	for _, v := range t {
		buf = appendValue(buf, v)
	}
	return buf
}

func appendTuples(buf []byte, ts []value.Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		buf = appendTuple(buf, t)
	}
	return buf
}

// decoder is a cursor over an encoded payload. The first error sticks; the
// typed readers return zero values after it, so decode loops can run
// unguarded and check err once.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.data) {
		d.fail(errTruncated)
		return 0
	}
	b := d.data[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail(errTruncated)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.data)-d.off) < n {
		d.fail(errTruncated)
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) value() value.Value {
	switch tag := d.byte(); tag {
	case tagNull:
		return value.Null()
	case tagInt:
		return value.Int(d.varint())
	case tagFloat:
		if d.err != nil {
			return value.Null()
		}
		if len(d.data)-d.off < 8 {
			d.fail(errTruncated)
			return value.Null()
		}
		bits := binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
		return value.Float(math.Float64frombits(bits))
	case tagString:
		return value.Str(d.string())
	case tagBool:
		return value.Bool(false)
	case tagTrue:
		return value.Bool(true)
	default:
		if d.err == nil {
			d.fail(fmt.Errorf("wal: unknown value tag %d", tag))
		}
		return value.Null()
	}
}

func (d *decoder) tuple(arity int) value.Tuple {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if n != arity {
		d.fail(fmt.Errorf("wal: tuple arity %d, relation declares %d", n, arity))
		return nil
	}
	t := make(value.Tuple, n)
	for i := 0; i < n; i++ {
		t[i] = d.value()
	}
	return t
}

func (d *decoder) tuples(arity int) []value.Tuple {
	n := int(d.uvarint())
	if d.err != nil {
		return nil
	}
	if n > len(d.data)-d.off { // each tuple costs ≥ 1 byte
		d.fail(errTruncated)
		return nil
	}
	out := make([]value.Tuple, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, d.tuple(arity))
	}
	return out
}
