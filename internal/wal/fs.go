package wal

import (
	"io/fs"
	"os"
)

// FS is the filesystem seam every durable-path file operation goes
// through: log segment appends, checkpoint temp/rename dances, recovery
// reads, directory fsyncs. Production code uses the process filesystem
// (osFS, the nil default everywhere an FS is accepted); tests substitute
// a FaultFS that injects short writes, fsync errors, ENOSPC, torn renames
// and open failures at chosen points. Keeping the seam this small — seven
// calls, one file handle — is what makes the fault matrix tractable: every
// way the storage stack can betray us is one of these calls returning an
// error or doing partial work.
type FS interface {
	// OpenFile opens path like os.OpenFile. Opening a directory read-only
	// (for syncDir) must work as it does for the OS.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new unique temp file in dir like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
}

// File is the open-file surface the WAL needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Stat() (fs.FileInfo, error)
	Name() string
}

// osFS is the production FS: the process filesystem, verbatim.
type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                    { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(path string) ([]byte, error)        { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)  { return os.ReadDir(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)       { return os.Stat(path) }

// realFS resolves the nil-means-OS convention in one place.
func realFS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}

// syncDir fsyncs a directory so a just-renamed or just-created file
// survives a machine crash.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
