package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
)

// FaultFS wraps an FS and injects storage faults at chosen points: the
// test half of the FS seam. A fault is armed as a Rule matched against
// every operation of its class (optionally filtered by a path substring,
// so a rule can hit WAL segments but not checkpoint temp files) and fires
// either on the Nth matching call or with a probability. The fault
// classes cover the ways real storage fails:
//
//   - Err on write/sync/open/rename/remove/truncate: EIO, ENOSPC, …
//   - ShortWrite: write() persists a prefix of the buffer, then errors —
//     the torn-append case recovery's torn-tail rule exists for;
//   - TornRename: rename() leaves a partial copy of the source at the
//     destination and errors — the non-atomic-rename case the checkpoint
//     checksum + generation fallback exist for.
//
// FaultFS is exported (rather than living in a _test.go) so the engine
// and server fault harnesses can drive it through DurabilityOptions.FS.
type FaultFS struct {
	mu    sync.Mutex
	inner FS
	rng   *rand.Rand
	rules []*Rule
	ops   map[Op]int // operations seen, per class
	fired int        // rules fired so far
}

// Op classifies a filesystem operation for rule matching.
type Op uint8

const (
	OpOpen Op = iota + 1
	OpCreateTemp
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpCreateTemp:
		return "create-temp"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// ErrInjected is the default error a firing rule returns (wrapped in an
// *os.PathError carrying the operation and path).
var ErrInjected = errors.New("injected fault")

// ErrNoSpace is a ready-made ENOSPC for Rule.Err.
var ErrNoSpace = syscall.ENOSPC

// Rule arms one fault.
type Rule struct {
	// Op is the operation class the rule matches (required).
	Op Op
	// Path, when non-empty, restricts the rule to operations whose path
	// contains it as a substring.
	Path string
	// AfterN fires the rule on the Nth matching operation from arming
	// (1 = the very next one). Zero with P == 0 also means "the next one".
	AfterN int
	// P, when non-zero, fires the rule on each matching operation with
	// this probability instead of deterministically at AfterN.
	P float64
	// Err is the error to return; nil means ErrInjected.
	Err error
	// ShortWrite, for OpWrite, persists roughly half the buffer before
	// failing (a torn append) instead of failing cleanly.
	ShortWrite bool
	// TornRename, for OpRename, copies a prefix of the source to the
	// destination before failing (a non-atomic rename).
	TornRename bool
	// Once disarms the rule after its first firing; otherwise it keeps
	// firing on every subsequent match.
	Once bool

	seen  int
	fires int
}

// NewFaultFS wraps inner (nil = the process filesystem) with no rules
// armed; seed drives probabilistic rules.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	return &FaultFS{
		inner: realFS(inner),
		rng:   rand.New(rand.NewSource(seed)),
		ops:   make(map[Op]int),
	}
}

// Inject arms a rule. The *Rule is retained; Fires reports its count.
func (f *FaultFS) Inject(r *Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, r)
}

// Clear disarms every rule.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// OpCount returns how many operations of class op have been observed.
func (f *FaultFS) OpCount(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[op]
}

// Fired returns how many rule firings have occurred in total.
func (f *FaultFS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Fires reports how many times r has fired.
func (r *Rule) Fires() int { return r.fires }

// check records one operation and returns the rule that fires on it, if
// any.
func (f *FaultFS) check(op Op, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[op]++
	for i, r := range f.rules {
		if r == nil || r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		fire := false
		if r.P > 0 {
			fire = f.rng.Float64() < r.P
		} else {
			n := r.AfterN
			if n <= 0 {
				n = 1
			}
			// From the Nth match on; Once limits the rule to that one firing.
			fire = r.seen >= n
		}
		if !fire {
			continue
		}
		r.fires++
		f.fired++
		if r.Once {
			f.rules[i] = nil
		}
		return r
	}
	return nil
}

func (r *Rule) err(op, path string) error {
	e := r.Err
	if e == nil {
		e = ErrInjected
	}
	return &os.PathError{Op: op, Path: path, Err: e}
}

func (f *FaultFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	// Read-only opens (recovery reads, dir fsync handles) pass through:
	// OpOpen targets the write path, where an open failure must degrade
	// gracefully. Injecting into reads is not part of the fault matrix.
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0 {
		if r := f.check(OpOpen, path); r != nil {
			return nil, r.err("open", path)
		}
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if r := f.check(OpCreateTemp, dir+"/"+pattern); r != nil {
		return nil, r.err("createtemp", dir)
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.check(OpRename, newpath); r != nil {
		if r.TornRename {
			// Non-atomic rename: a prefix of the source lands under the
			// destination name, the source survives, and the call errors.
			if data, rerr := f.inner.ReadFile(oldpath); rerr == nil {
				if dst, werr := f.inner.OpenFile(newpath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644); werr == nil {
					dst.Write(data[:len(data)/2])
					dst.Close()
				}
			}
		}
		return r.err("rename", newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if r := f.check(OpRemove, path); r != nil {
		return r.err("remove", path)
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) { return f.inner.ReadFile(path) }

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) { return f.inner.ReadDir(path) }

func (f *FaultFS) Stat(path string) (fs.FileInfo, error) { return f.inner.Stat(path) }

// faultFile routes per-handle operations back through the FaultFS rules.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.fs.check(OpWrite, ff.inner.Name()); r != nil {
		if r.ShortWrite && len(p) > 0 {
			n, _ := ff.inner.Write(p[:(len(p)+1)/2])
			return n, r.err("write", ff.inner.Name())
		}
		return 0, r.err("write", ff.inner.Name())
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	if r := ff.fs.check(OpSync, ff.inner.Name()); r != nil {
		return r.err("sync", ff.inner.Name())
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if r := ff.fs.check(OpTruncate, ff.inner.Name()); r != nil {
		return r.err("truncate", ff.inner.Name())
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Close() error                              { return ff.inner.Close() }
func (ff *faultFile) Seek(off int64, whence int) (int64, error) { return ff.inner.Seek(off, whence) }
func (ff *faultFile) Stat() (fs.FileInfo, error)                { return ff.inner.Stat() }
func (ff *faultFile) Name() string                              { return ff.inner.Name() }
