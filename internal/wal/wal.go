// Package wal is the crash-consistency substrate of the engine: an
// appending, length-prefixed, CRC32-checksummed log of net row deltas
// (write-ahead log) plus atomic snapshot checkpoints of the base tables and
// the DDL catalog. Together they give the in-memory engine a durability
// contract:
//
//   - every point at which writes become visible — a direct transaction
//     commit, a group-commit batch flush, a bulk load — appends exactly one
//     record *before* the write is acknowledged;
//   - a checkpoint captures base tables and catalog at a log sequence
//     number (LSN), after which fully-covered segments can be removed;
//     materialized views are deliberately NOT checkpointed — recovery
//     re-derives them from base state through the evaluator's counted
//     initialization, which is what makes the IVM layer provably a pure
//     function of the base tables;
//   - recovery loads the latest valid checkpoint and replays the log tail.
//
// The log is split into size-bounded segments named wal-<first LSN>.log
// (16-hex zero-padded, so lexicographic order is LSN order); a legacy
// single-file wal.log replays as the oldest segment. Appends rotate to a
// fresh segment once the active one crosses the threshold, and a
// checkpoint rotates unconditionally so that every record it covers lives
// in a sealed segment that can be garbage-collected the moment the
// checkpoint is durable — which is what lets checkpoint writing proceed in
// the background while new appends land in the next segment.
//
// Torn-tail contract: a crash can truncate the log at any byte offset. A
// trailing record that is incomplete (the log ends inside its frame) or
// fails its checksum is a torn write of the crashed process and is skipped
// silently — the transaction it described was never acknowledged at that
// sync level. The torn tail is only ever legal at the very end of the log:
// a bad frame followed by further well-formed records (in the same segment
// or any later one) is NOT a torn write but mid-log rot, and replaying
// past it would diverge from the acknowledged history, so recovery reports
// a hard error instead of guessing.
//
// Failure semantics (the fsyncgate rule): after ANY failed write, fsync or
// truncate the kernel page cache is in an unknown state — a retry that
// appears to succeed may still lose the original pages. The log therefore
// poisons itself on the first such failure: the failing call returns the
// real error (the caller rolls back its in-memory state exactly as for any
// failed append) and every later Append/Sync fails fast with ErrPoisoned
// until the log is discarded and the directory re-opened through recovery.
//
// Record frame layout (little-endian):
//
//	[4 bytes payload length][4 bytes CRC32-Castagnoli of payload][payload]
//
// Payload layout: record kind (1 byte), LSN (uvarint), then per-relation
// net deltas (name, arity, inserted tuples, deleted tuples) in the binary
// value encoding of encode.go.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"birds/internal/value"
)

// SyncMode selects when the log is fsynced.
type SyncMode uint8

const (
	// SyncOff never fsyncs: records reach the OS on write and the disk
	// whenever the OS flushes (or on Close). Fastest; a machine crash can
	// lose recent acknowledged writes, a process crash cannot.
	SyncOff SyncMode = iota
	// SyncOnCommit fsyncs every record — direct transactions, batch
	// flushes and bulk loads alike. Every acknowledged write survives a
	// machine crash.
	SyncOnCommit
	// SyncOnFlush fsyncs group-commit flush records (and checkpoints) but
	// lets direct per-transaction records ride along until the next sync.
	// With batching enabled this amortizes one fsync across the whole
	// batch, exactly as the flush amortizes the view-maintenance pass.
	SyncOnFlush
)

// String renders the mode as its flag spelling (off / commit / flush).
func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncOnCommit:
		return "commit"
	case SyncOnFlush:
		return "flush"
	default:
		return fmt.Sprintf("syncmode(%d)", uint8(m))
	}
}

// ParseSyncMode parses the flag spelling of a sync mode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "commit":
		return SyncOnCommit, nil
	case "flush":
		return SyncOnFlush, nil
	}
	return SyncOff, fmt.Errorf("wal: unknown sync mode %q (want off, commit or flush)", s)
}

// Kind discriminates log records.
type Kind uint8

const (
	// KindTxn is one direct (unbatched) transaction commit: the exact net
	// row delta of the transaction, per affected base table.
	KindTxn Kind = iota + 1
	// KindBatch is one group-commit flush: the coalesced net row delta of
	// every transaction in the batch, per affected base table.
	KindBatch
	// KindBulkLoad is one LoadTable call: the rows actually inserted
	// (duplicates of existing rows excluded), as an insert-only delta.
	KindBulkLoad
)

func (k Kind) String() string {
	switch k {
	case KindTxn:
		return "txn"
	case KindBatch:
		return "batch"
	case KindBulkLoad:
		return "bulk-load"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TableDelta is the net row delta of one base table inside a record. For
// KindBulkLoad, Del is empty.
type TableDelta struct {
	Name  string
	Arity int
	Ins   []value.Tuple
	Del   []value.Tuple
}

// Record is one decoded log record.
type Record struct {
	Kind   Kind
	LSN    uint64
	Tables []TableDelta
}

// LogName is the legacy single-file log name; directories written before
// segmentation hold one and it replays as the oldest segment. New appends
// always go to named segments.
const LogName = "wal.log"

const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

// DefaultSegmentBytes is the rotation threshold when the caller passes 0.
const DefaultSegmentBytes int64 = 4 << 20

// segName renders the file name of the segment whose first record has the
// given LSN; 16-hex zero-padding makes lexicographic order LSN order.
func segName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, lsn, segSuffix)
}

// segLSN parses a segment file name back to its first LSN.
func segLSN(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// Segments lists the log files in dir in replay order: the legacy wal.log
// first (if present), then named segments ascending by first LSN. fsys nil
// means the process filesystem.
func Segments(fsys FS, dir string) []string {
	fsys = realFS(fsys)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var legacy []string
	var segs []string
	for _, e := range entries {
		name := e.Name()
		if name == LogName {
			legacy = append(legacy, name)
			continue
		}
		if _, ok := segLSN(name); ok {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs) // zero-padded hex: lexicographic == LSN order
	return append(legacy, segs...)
}

// HasLogData reports whether dir holds any non-empty log segment. fsys nil
// means the process filesystem.
func HasLogData(fsys FS, dir string) bool {
	fsys = realFS(fsys)
	for _, name := range Segments(fsys, dir) {
		if st, err := fsys.Stat(filepath.Join(dir, name)); err == nil && st.Size() > 0 {
			return true
		}
	}
	return false
}

const frameHeader = 8 // 4 bytes length + 4 bytes CRC

// maxRecordBytes bounds a single record frame (1 GiB); a length prefix
// beyond it can only be corruption.
const maxRecordBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-log corruption: a record that fails its checksum
// (or does not decode) but is followed by further well-formed records, so
// it cannot be the torn tail of a crashed append.
var ErrCorrupt = errors.New("wal: mid-log corruption")

// ErrPoisoned reports that an earlier write/sync/truncate failure left the
// log's on-disk state unknown, so further appends are refused until the
// directory is re-opened through recovery (the fsyncgate rule: never
// retry against a file whose page-cache state you cannot trust).
var ErrPoisoned = errors.New("wal: log poisoned by earlier storage failure")

// Log is an open write-ahead log. Append/Sync serialize on an internal
// mutex; the engine additionally calls them under its own write lock,
// which is what orders records identically to execution order.
type Log struct {
	mu       sync.Mutex
	fsys     FS
	f        File
	dir      string
	nextLSN  uint64
	segStart uint64 // first LSN the active segment holds (or will hold)
	segBytes int64  // rotation threshold; < 0 disables rotation
	size     int64  // bytes in the active segment
	buf      []byte
	dirty    bool  // bytes appended since the last fsync
	poisoned error // first storage failure; non-nil refuses all appends
}

// Open opens the log inside dir, positioned to append. nextLSN is the LSN
// the next appended record receives; callers derive it from the
// checkpoint/replay they performed before opening. fsys nil means the
// process filesystem; segBytes is the rotation threshold (0 = default,
// negative = never rotate).
//
// Appends continue into the newest existing segment after trimming any
// torn tail it carries (the trimmed bytes are by definition
// unacknowledged); if the directory holds no segment — or only a legacy
// wal.log, which is never appended to — a fresh segment is created. Stray
// checkpoint temp files from an interrupted checkpoint are swept here.
func Open(fsys FS, dir string, nextLSN uint64, segBytes int64) (*Log, error) {
	fsys = realFS(fsys)
	if segBytes == 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepTemp(fsys, dir)

	// The legacy wal.log is never appended to, but a torn tail it carries
	// must still be trimmed here: new records go to named segments, which
	// replay after it, and any data following torn bytes reads as mid-log
	// corruption. The trimmed bytes are by definition unacknowledged.
	if data, err := fsys.ReadFile(filepath.Join(dir, LogName)); err == nil {
		valid, verr := validPrefixLen(data)
		if verr != nil {
			return nil, fmt.Errorf("%s: %w", LogName, verr)
		}
		if valid < len(data) {
			f, err := fsys.OpenFile(filepath.Join(dir, LogName), os.O_RDWR, 0o644)
			if err != nil {
				return nil, err
			}
			terr := f.Truncate(int64(valid))
			if cerr := f.Close(); terr == nil {
				terr = cerr
			}
			if terr != nil {
				return nil, terr
			}
		}
	}

	l := &Log{fsys: fsys, dir: dir, nextLSN: nextLSN, segBytes: segBytes}
	segs := Segments(fsys, dir)
	// Drop empty trailing segments (leftovers of an interrupted rotation):
	// they hold no records, and appending into one would strand a torn
	// tail of the previous segment in the middle of the log.
	for len(segs) > 0 {
		name := segs[len(segs)-1]
		if name == LogName {
			break
		}
		st, err := fsys.Stat(filepath.Join(dir, name))
		if err != nil || st.Size() > 0 {
			break
		}
		if fsys.Remove(filepath.Join(dir, name)) != nil {
			break // keep appending into it; a record makes it non-empty
		}
		segs = segs[:len(segs)-1]
	}
	newest := ""
	if n := len(segs); n > 0 {
		if name := segs[n-1]; name != LogName {
			newest = name
		}
	}
	if newest == "" {
		if err := l.createSegmentLocked(nextLSN); err != nil {
			return nil, err
		}
		return l, nil
	}

	// Append into the newest named segment: find the end of its valid
	// frame prefix and trim anything after it, so a new append can never
	// resurrect torn bytes into a mid-log corruption.
	path := filepath.Join(dir, newest)
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	valid, err := validPrefixLen(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", newest, err)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	start, _ := segLSN(newest)
	l.f = f
	l.segStart = start
	l.size = int64(valid)
	return l, nil
}

// validPrefixLen returns the byte length of the longest prefix of data
// consisting of complete, checksum-valid frames. Trailing bytes beyond it
// must be a torn tail: if any valid frame follows them, that is mid-log
// corruption and an error.
func validPrefixLen(data []byte) (int, error) {
	off := 0
	for off < len(data) {
		_, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			if frameLen > 0 && anyValidFrame(data[off+frameLen:]) {
				return 0, fmt.Errorf("%w: bad record at byte offset %d", ErrCorrupt, off)
			}
			return off, nil
		}
		off += frameLen
	}
	return off, nil
}

// createSegmentLocked opens a fresh active segment whose first record
// will carry lsn, and fsyncs the directory so the file itself survives a
// machine crash.
func (l *Log) createSegmentLocked(lsn uint64) error {
	f, err := l.fsys.OpenFile(filepath.Join(l.dir, segName(lsn)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.fsys, l.dir); err != nil {
		f.Close()
		l.fsys.Remove(filepath.Join(l.dir, segName(lsn)))
		return err
	}
	l.f = f
	l.segStart = lsn
	l.size = 0
	return nil
}

// Dir returns the durability directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recently appended record (0 if none
// since the log was opened at LSN 1).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Poisoned returns nil while the log is healthy, or an ErrPoisoned-wrapped
// error naming the storage failure that killed it.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned == nil {
		return nil
	}
	return l.poisonedErrLocked()
}

func (l *Log) poisonLocked(err error) {
	if l.poisoned == nil {
		l.poisoned = err
	}
}

func (l *Log) poisonedErrLocked() error {
	return fmt.Errorf("%w: %w", ErrPoisoned, l.poisoned)
}

// Append encodes one record, assigns it the next LSN, writes its frame and
// — when sync is true — fsyncs the log. The record is acknowledged (and the
// LSN consumed) only on success: a failed append leaves no acknowledged
// state behind, so the caller rolls its in-memory state back and reports
// the write as failed. A write or sync failure additionally poisons the
// log (see ErrPoisoned): any bytes a partial write left behind become a
// permanent torn tail that recovery skips, because nothing is ever
// appended after them.
func (l *Log) Append(kind Kind, tables []TableDelta, sync bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return 0, l.poisonedErrLocked()
	}
	if l.segBytes > 0 && l.size >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	payload := encodeRecord(l.buf[:0], kind, lsn, tables)
	l.buf = payload[:0] // keep the (possibly grown) scratch buffer

	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	// One writev-style append: header and payload in a single Write call,
	// so a crash tears at a byte offset inside one frame, never interleaves
	// frames.
	frame := append(hdr[:], payload...)
	if n, err := l.f.Write(frame); err != nil || n < len(frame) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// The partial write left a torn (unacknowledged) tail; poisoning
		// guarantees no later append lands after it, so recovery skips it.
		l.poisonLocked(err)
		return 0, err
	}
	l.size += int64(len(frame))
	l.dirty = true
	l.nextLSN++
	if sync {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// rotateLocked seals the active segment (fsyncing its tail) and starts a
// fresh one at the next LSN. A sync failure poisons the log and is
// returned; a failure to create or persist the new segment is graceful —
// the log keeps appending to the current segment and retries rotation on
// the next threshold crossing.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	old := l.f
	oldStart, oldSize := l.segStart, l.size
	if err := l.createSegmentLocked(l.nextLSN); err != nil {
		// Keep writing the oversized segment; availability beats rotation.
		l.f, l.segStart, l.size = old, oldStart, oldSize
		return nil
	}
	old.Close() // already synced; close errors carry no data risk
	return nil
}

// RotateForCheckpoint seals the active segment so a checkpoint cut at the
// current last LSN covers only sealed segments, and returns the first LSN
// of the (possibly fresh) active segment: every segment below it is
// garbage the moment that checkpoint is durable. An empty active segment
// is returned as-is.
func (l *Log) RotateForCheckpoint() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return 0, l.poisonedErrLocked()
	}
	if l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return l.segStart, nil
}

// RemoveSegmentsBelow deletes every sealed log file whose records all
// predate startLSN: named segments with first LSN < startLSN and the
// legacy wal.log (only ever present alongside a later checkpoint or
// segment). Removal failures are non-fatal — stale segments only cost
// replay skips — so only the first error is reported.
func (l *Log) RemoveSegmentsBelow(startLSN uint64) error {
	l.mu.Lock()
	fsys, dir, active := l.fsys, l.dir, l.segStart
	l.mu.Unlock()
	var firstErr error
	for _, name := range Segments(fsys, dir) {
		lsn, ok := segLSN(name)
		if name == LogName {
			lsn, ok = 0, true
		}
		if !ok || lsn >= startLSN || lsn == active {
			continue
		}
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Sync fsyncs any appended-but-unsynced records. A failure poisons the
// log: the unsynced tail is in unknown page-cache state and retrying the
// fsync cannot bring it back (the fsyncgate rule).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return l.poisonedErrLocked()
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		l.poisonLocked(err)
		return err
	}
	l.dirty = false
	return nil
}

// Size returns the byte size of the active segment.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size, nil
}

// SegmentStart returns the first LSN of the active segment.
func (l *Log) SegmentStart() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segStart
}

// Close fsyncs and closes the log file. A poisoned log is closed without
// syncing — its state is unknown and recovery is the only way forward.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if l.poisoned != nil {
		l.f.Close()
		l.f = nil
		return nil
	}
	serr := l.syncLocked()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayResult summarizes one log replay.
type ReplayResult struct {
	// Last is the LSN of the last record delivered (afterLSN if none).
	Last uint64
	// Replayed counts the records delivered to the callback.
	Replayed int
	// Skipped counts well-formed records at or below afterLSN (already
	// covered by the checkpoint) that were not delivered.
	Skipped int
	// TornTail reports that trailing bytes were discarded as a torn write.
	TornTail bool
	// Segments counts the log files read (legacy wal.log included).
	Segments int
}

// Replay reads the log at dir — the legacy wal.log, then every named
// segment in LSN order — and delivers every record with LSN > afterLSN to
// fn, in log order. Incomplete or checksum-failing trailing records are
// skipped silently (TornTail is set), but only at the very end of the
// log: a bad record followed by a well-formed record in the same segment,
// or by ANY data in a later segment, is mid-log corruption and returns
// ErrCorrupt. (A crash can only tear the final append, and rotation seals
// a segment with its last frame complete — so torn bytes live in the
// newest non-empty segment or nowhere; empty trailing segments from an
// interrupted rotation are fine.) A missing or empty log replays as
// empty. fsys nil means the process filesystem.
func Replay(fsys FS, dir string, afterLSN uint64, fn func(*Record) error) (ReplayResult, error) {
	fsys = realFS(fsys)
	res := ReplayResult{Last: afterLSN}
	torn := false
	for _, name := range Segments(fsys, dir) {
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				continue
			}
			return res, err
		}
		res.Segments++
		if torn && len(data) > 0 {
			return res, fmt.Errorf("%w: %s holds data after a torn tail in an earlier segment", ErrCorrupt, name)
		}
		off := 0
		for off < len(data) {
			rec, frameLen, ok := decodeFrame(data[off:])
			if !ok {
				// The frame at off is incomplete, checksum-failing or
				// undecodable. If any complete, checksum-valid frame
				// follows it in this segment, the log rotted in the
				// middle; otherwise this is the torn tail of a crashed
				// append (later segments are checked above).
				if frameLen > 0 && anyValidFrame(data[off+frameLen:]) {
					return res, fmt.Errorf("%w: bad record at byte offset %d of %s", ErrCorrupt, off, name)
				}
				torn = true
				res.TornTail = true
				break
			}
			off += frameLen
			if rec.LSN <= afterLSN {
				res.Skipped++
				continue
			}
			if rec.LSN != res.Last+1 {
				return res, fmt.Errorf("%w: record LSN %d after LSN %d (gap)", ErrCorrupt, rec.LSN, res.Last)
			}
			if err := fn(rec); err != nil {
				return res, err
			}
			res.Last = rec.LSN
			res.Replayed++
		}
	}
	return res, nil
}

// decodeFrame decodes the frame at the start of data. ok is false when the
// frame is incomplete, fails its checksum, or does not decode. frameLen is
// non-zero only for a COMPLETE frame (its bytes are all present, so a
// caller can resync past it); an incomplete frame extends to end-of-data
// and nothing can follow it.
func decodeFrame(data []byte) (rec *Record, frameLen int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n > maxRecordBytes {
		return nil, 0, false
	}
	frameLen = frameHeader + n
	if len(data) < frameLen {
		return nil, 0, false
	}
	payload := data[frameHeader:frameLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, frameLen, false
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, frameLen, false
	}
	return rec, frameLen, true
}

// anyValidFrame reports whether data contains a complete, checksum-valid
// record frame at its start (the resync probe behind the mid-log-corruption
// distinction: after a bad frame whose length field is intact, the next
// frame starts right after it).
func anyValidFrame(data []byte) bool {
	for len(data) >= frameHeader {
		rec, frameLen, ok := decodeFrame(data)
		if ok && rec != nil {
			return true
		}
		if frameLen == 0 || frameLen > len(data) {
			return false
		}
		data = data[frameLen:]
	}
	return false
}

// --- record encoding ------------------------------------------------------

func encodeRecord(buf []byte, kind Kind, lsn uint64, tables []TableDelta) []byte {
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = appendString(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(t.Arity))
		buf = appendTuples(buf, t.Ins)
		buf = appendTuples(buf, t.Del)
	}
	return buf
}

func decodeRecord(payload []byte) (*Record, error) {
	d := &decoder{data: payload}
	rec := &Record{Kind: Kind(d.byte())}
	rec.LSN = d.uvarint()
	nt := int(d.uvarint())
	if d.err == nil && nt > len(payload) { // arity-free sanity bound
		return nil, fmt.Errorf("wal: implausible table count %d", nt)
	}
	for i := 0; i < nt && d.err == nil; i++ {
		var t TableDelta
		t.Name = d.string()
		t.Arity = int(d.uvarint())
		t.Ins = d.tuples(t.Arity)
		t.Del = d.tuples(t.Arity)
		rec.Tables = append(rec.Tables, t)
	}
	if d.err == nil && d.off != len(payload) {
		return nil, fmt.Errorf("wal: %d trailing bytes in record", len(payload)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	switch rec.Kind {
	case KindTxn, KindBatch, KindBulkLoad:
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	return rec, nil
}
