// Package wal is the crash-consistency substrate of the engine: an
// appending, length-prefixed, CRC32-checksummed log of net row deltas
// (write-ahead log) plus atomic snapshot checkpoints of the base tables and
// the DDL catalog. Together they give the in-memory engine a durability
// contract:
//
//   - every point at which writes become visible — a direct transaction
//     commit, a group-commit batch flush, a bulk load — appends exactly one
//     record *before* the write is acknowledged;
//   - a checkpoint captures base tables and catalog at a log sequence
//     number (LSN), after which the log can be truncated; materialized
//     views are deliberately NOT checkpointed — recovery re-derives them
//     from base state through the evaluator's counted initialization,
//     which is what makes the IVM layer provably a pure function of the
//     base tables;
//   - recovery loads the latest valid checkpoint and replays the log tail.
//
// Torn-tail contract: a crash can truncate the log at any byte offset. A
// trailing record that is incomplete (the file ends inside its frame) or
// fails its checksum is a torn write of the crashed process and is skipped
// silently — the transaction it described was never acknowledged at that
// sync level. A checksum failure followed by further well-formed records is
// NOT a torn write: it means the middle of the log rotted, replaying past
// it would diverge from the acknowledged history, and recovery reports a
// hard error instead of guessing.
//
// Record frame layout (little-endian):
//
//	[4 bytes payload length][4 bytes CRC32-Castagnoli of payload][payload]
//
// Payload layout: record kind (1 byte), LSN (uvarint), then per-relation
// net deltas (name, arity, inserted tuples, deleted tuples) in the binary
// value encoding of encode.go.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"birds/internal/value"
)

// SyncMode selects when the log is fsynced.
type SyncMode uint8

const (
	// SyncOff never fsyncs: records reach the OS on write and the disk
	// whenever the OS flushes (or on Close). Fastest; a machine crash can
	// lose recent acknowledged writes, a process crash cannot.
	SyncOff SyncMode = iota
	// SyncOnCommit fsyncs every record — direct transactions, batch
	// flushes and bulk loads alike. Every acknowledged write survives a
	// machine crash.
	SyncOnCommit
	// SyncOnFlush fsyncs group-commit flush records (and checkpoints) but
	// lets direct per-transaction records ride along until the next sync.
	// With batching enabled this amortizes one fsync across the whole
	// batch, exactly as the flush amortizes the view-maintenance pass.
	SyncOnFlush
)

// String renders the mode as its flag spelling (off / commit / flush).
func (m SyncMode) String() string {
	switch m {
	case SyncOff:
		return "off"
	case SyncOnCommit:
		return "commit"
	case SyncOnFlush:
		return "flush"
	default:
		return fmt.Sprintf("syncmode(%d)", uint8(m))
	}
}

// ParseSyncMode parses the flag spelling of a sync mode.
func ParseSyncMode(s string) (SyncMode, error) {
	switch s {
	case "off":
		return SyncOff, nil
	case "commit":
		return SyncOnCommit, nil
	case "flush":
		return SyncOnFlush, nil
	}
	return SyncOff, fmt.Errorf("wal: unknown sync mode %q (want off, commit or flush)", s)
}

// Kind discriminates log records.
type Kind uint8

const (
	// KindTxn is one direct (unbatched) transaction commit: the exact net
	// row delta of the transaction, per affected base table.
	KindTxn Kind = iota + 1
	// KindBatch is one group-commit flush: the coalesced net row delta of
	// every transaction in the batch, per affected base table.
	KindBatch
	// KindBulkLoad is one LoadTable call: the rows actually inserted
	// (duplicates of existing rows excluded), as an insert-only delta.
	KindBulkLoad
)

func (k Kind) String() string {
	switch k {
	case KindTxn:
		return "txn"
	case KindBatch:
		return "batch"
	case KindBulkLoad:
		return "bulk-load"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TableDelta is the net row delta of one base table inside a record. For
// KindBulkLoad, Del is empty.
type TableDelta struct {
	Name  string
	Arity int
	Ins   []value.Tuple
	Del   []value.Tuple
}

// Record is one decoded log record.
type Record struct {
	Kind   Kind
	LSN    uint64
	Tables []TableDelta
}

// LogName is the log's file name inside a durability directory.
const LogName = "wal.log"

const frameHeader = 8 // 4 bytes length + 4 bytes CRC

// maxRecordBytes bounds a single record frame (1 GiB); a length prefix
// beyond it can only be corruption.
const maxRecordBytes = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports mid-log corruption: a record that fails its checksum
// (or does not decode) but is followed by further well-formed records, so
// it cannot be the torn tail of a crashed append.
var ErrCorrupt = errors.New("wal: mid-log corruption")

// Log is an open write-ahead log. Append/Sync/Truncate serialize on an
// internal mutex; the engine additionally calls them under its own write
// lock, which is what orders records identically to execution order.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	dir     string
	nextLSN uint64
	buf     []byte
	dirty   bool // bytes appended since the last fsync

	// failAppend, when non-nil, makes the next Append fail with this error
	// before writing anything — fault injection for the crash harness
	// (tests only).
	failAppend error
}

// Open opens (creating if absent) the log inside dir, positioned to append.
// nextLSN is the LSN the next appended record receives; callers derive it
// from the checkpoint/replay they performed before opening.
func Open(dir string, nextLSN uint64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, LogName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f, dir: dir, nextLSN: nextLSN}, nil
}

// Dir returns the durability directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recently appended record (0 if none
// since the log was opened at LSN 1).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// InjectAppendError arms (or with nil disarms) append fault injection: the
// next Append fails with err before writing anything. Tests only — it is
// how the crash harness pins down the store-untouched-on-log-failure
// contract without an actual I/O error.
func (l *Log) InjectAppendError(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.failAppend = err
}

// Append encodes one record, assigns it the next LSN, writes its frame and
// — when sync is true — fsyncs the log. The record is acknowledged (and the
// LSN consumed) only on success: a failed append leaves the log exactly as
// it was, so the caller can roll its in-memory state back and report the
// write as failed.
func (l *Log) Append(kind Kind, tables []TableDelta, sync bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failAppend != nil {
		err := l.failAppend
		return 0, err
	}
	lsn := l.nextLSN
	payload := encodeRecord(l.buf[:0], kind, lsn, tables)
	l.buf = payload[:0] // keep the (possibly grown) scratch buffer

	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	// One writev-style append: header and payload in a single Write call,
	// so a crash tears at a byte offset inside one frame, never interleaves
	// frames.
	frame := append(hdr[:], payload...)
	if _, err := l.f.Write(frame); err != nil {
		// A partial write would leave a torn (unacknowledged) tail, which
		// recovery skips — the contract holds even here.
		return 0, err
	}
	l.dirty = true
	l.nextLSN++
	if sync {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// Sync fsyncs any appended-but-unsynced records.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	return nil
}

// Truncate empties the log — called after a checkpoint made every record
// redundant. Records keep their monotonically increasing LSNs across
// truncations, so replay remains unambiguous even if a crash lands between
// a checkpoint rename and this truncation (the stale records' LSNs are ≤
// the checkpoint LSN and are skipped).
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(0); err != nil {
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	l.dirty = false
	return l.f.Sync()
}

// Size returns the current byte size of the log file.
func (l *Log) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, err := l.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Close fsyncs and closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	serr := l.f.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// ReplayResult summarizes one log replay.
type ReplayResult struct {
	// Last is the LSN of the last record delivered (afterLSN if none).
	Last uint64
	// Replayed counts the records delivered to the callback.
	Replayed int
	// Skipped counts well-formed records at or below afterLSN (already
	// covered by the checkpoint) that were not delivered.
	Skipped int
	// TornTail reports that trailing bytes were discarded as a torn write.
	TornTail bool
}

// Replay reads the log at dir and delivers every record with LSN >
// afterLSN to fn, in log order. Incomplete or checksum-failing trailing
// records are skipped silently (TornTail is set); a bad record followed by
// further well-formed records is mid-log corruption and returns ErrCorrupt.
// A missing log file replays as empty.
func Replay(dir string, afterLSN uint64, fn func(*Record) error) (ReplayResult, error) {
	res := ReplayResult{Last: afterLSN}
	data, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return res, nil
		}
		return res, err
	}

	off := 0
	for off < len(data) {
		rec, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			// The frame at off is incomplete, checksum-failing or
			// undecodable. If any complete, checksum-valid frame follows
			// it, the log rotted in the middle; otherwise this is the torn
			// tail of a crashed append.
			if frameLen > 0 && anyValidFrame(data[off+frameLen:]) {
				return res, fmt.Errorf("%w: bad record at byte offset %d", ErrCorrupt, off)
			}
			res.TornTail = true
			return res, nil
		}
		off += frameLen
		if rec.LSN <= afterLSN {
			res.Skipped++
			continue
		}
		if rec.LSN != res.Last+1 {
			return res, fmt.Errorf("%w: record LSN %d after LSN %d (gap)", ErrCorrupt, rec.LSN, res.Last)
		}
		if err := fn(rec); err != nil {
			return res, err
		}
		res.Last = rec.LSN
		res.Replayed++
	}
	return res, nil
}

// decodeFrame decodes the frame at the start of data. ok is false when the
// frame is incomplete, fails its checksum, or does not decode. frameLen is
// non-zero only for a COMPLETE frame (its bytes are all present, so a
// caller can resync past it); an incomplete frame extends to end-of-data
// and nothing can follow it.
func decodeFrame(data []byte) (rec *Record, frameLen int, ok bool) {
	if len(data) < frameHeader {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	if n > maxRecordBytes {
		return nil, 0, false
	}
	frameLen = frameHeader + n
	if len(data) < frameLen {
		return nil, 0, false
	}
	payload := data[frameHeader:frameLen]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, frameLen, false
	}
	rec, err := decodeRecord(payload)
	if err != nil {
		return nil, frameLen, false
	}
	return rec, frameLen, true
}

// anyValidFrame reports whether data contains a complete, checksum-valid
// record frame at its start (the resync probe behind the mid-log-corruption
// distinction: after a bad frame whose length field is intact, the next
// frame starts right after it).
func anyValidFrame(data []byte) bool {
	for len(data) >= frameHeader {
		rec, frameLen, ok := decodeFrame(data)
		if ok && rec != nil {
			return true
		}
		if frameLen == 0 || frameLen > len(data) {
			return false
		}
		data = data[frameLen:]
	}
	return false
}

// --- record encoding ------------------------------------------------------

func encodeRecord(buf []byte, kind Kind, lsn uint64, tables []TableDelta) []byte {
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, lsn)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	for _, t := range tables {
		buf = appendString(buf, t.Name)
		buf = binary.AppendUvarint(buf, uint64(t.Arity))
		buf = appendTuples(buf, t.Ins)
		buf = appendTuples(buf, t.Del)
	}
	return buf
}

func decodeRecord(payload []byte) (*Record, error) {
	d := &decoder{data: payload}
	rec := &Record{Kind: Kind(d.byte())}
	rec.LSN = d.uvarint()
	nt := int(d.uvarint())
	if d.err == nil && nt > len(payload) { // arity-free sanity bound
		return nil, fmt.Errorf("wal: implausible table count %d", nt)
	}
	for i := 0; i < nt && d.err == nil; i++ {
		var t TableDelta
		t.Name = d.string()
		t.Arity = int(d.uvarint())
		t.Ins = d.tuples(t.Arity)
		t.Del = d.tuples(t.Arity)
		rec.Tables = append(rec.Tables, t)
	}
	if d.err == nil && d.off != len(payload) {
		return nil, fmt.Errorf("wal: %d trailing bytes in record", len(payload)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	switch rec.Kind {
	case KindTxn, KindBatch, KindBulkLoad:
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	return rec, nil
}
