package fol

import (
	"fmt"

	"birds/internal/datalog"
)

// Unfolder translates Datalog queries over a program into equivalent FO
// formulas, following the inductive construction in the proof of Lemma 3.1:
// an IDB predicate unfolds into the disjunction over its rules of the
// existential closure of its body, with IDB body atoms unfolded recursively
// and every other predicate kept as an EDB atom.
type Unfolder struct {
	prog  *datalog.Program
	rules map[datalog.PredSym][]*datalog.Rule
	fresh *Fresh
}

// NewUnfolder prepares an unfolder for the program. The program must be
// nonrecursive (callers are expected to have run analysis.Stratify).
func NewUnfolder(prog *datalog.Program) *Unfolder {
	u := &Unfolder{
		prog:  prog,
		rules: make(map[datalog.PredSym][]*datalog.Rule),
		fresh: NewFresh("_u"),
	}
	for _, r := range prog.Rules {
		if !r.IsConstraint() {
			u.rules[r.Head.Pred] = append(u.rules[r.Head.Pred], r)
		}
	}
	return u
}

// IsIDB reports whether sym is defined by rules in the program.
func (u *Unfolder) IsIDB(sym datalog.PredSym) bool { return len(u.rules[sym]) > 0 }

// Pred returns the FO formula asserting sym(args), with IDB predicates
// unfolded. args must contain only variables and constants (use fresh
// variables in place of anonymous ones).
func (u *Unfolder) Pred(sym datalog.PredSym, args []datalog.Term) Formula {
	rules := u.rules[sym]
	if len(rules) == 0 {
		// EDB atom: delta-marked EDB predicates keep their marker in the
		// predicate name so +v / -v remain distinct relations.
		return &Atom{Pred: sym.String(), Args: args}
	}
	disjuncts := make([]Formula, 0, len(rules))
	for _, r := range rules {
		disjuncts = append(disjuncts, u.rule(r, args))
	}
	return NewOr(disjuncts...)
}

// rule instantiates one rule of sym at the given call arguments.
func (u *Unfolder) rule(r *datalog.Rule, args []datalog.Term) Formula {
	if len(args) != r.Head.Arity() {
		panic(fmt.Sprintf("fol: arity mismatch unfolding %s", r.Head.Pred))
	}
	// Map rule head variables to the call arguments; repeated head
	// variables and head constants become equalities.
	sub := make(map[string]datalog.Term)
	var conj []Formula
	for i, ht := range r.Head.Args {
		call := args[i]
		switch {
		case ht.IsConst():
			conj = append(conj, &Cmp{Op: datalog.OpEq, L: call, R: ht})
		case ht.IsVar():
			if prev, ok := sub[ht.Var]; ok {
				conj = append(conj, &Cmp{Op: datalog.OpEq, L: call, R: prev})
			} else {
				sub[ht.Var] = call
			}
		default:
			panic("fol: anonymous variable in rule head")
		}
	}
	body, exist := u.bodyFormulas(r.Body, sub)
	conj = append(conj, body...)
	return NewExists(exist, NewAnd(conj...))
}

// bodyFormulas converts rule-body literals to formulas under the variable
// substitution sub, allocating fresh existential variables for unmapped
// rule variables. Anonymous variables in a positive atom become rule-level
// existentials; anonymous variables in a negated atom are quantified
// inside the negation — ¬ced(E,_) means ¬∃D ced(E,D), the NOT EXISTS
// semantics the evaluator implements.
func (u *Unfolder) bodyFormulas(body []datalog.Literal, sub map[string]datalog.Term) ([]Formula, []string) {
	var out []Formula
	var exist []string
	mapVar := func(t datalog.Term) datalog.Term {
		if r, ok := sub[t.Var]; ok {
			return r
		}
		v := u.fresh.Next()
		sub[t.Var] = datalog.V(v)
		exist = append(exist, v)
		return datalog.V(v)
	}
	for _, l := range body {
		var f Formula
		if l.Atom != nil {
			var local []string
			mapped := make([]datalog.Term, len(l.Atom.Args))
			for i, t := range l.Atom.Args {
				switch t.Kind {
				case datalog.TermAnon:
					v := u.fresh.Next()
					if l.Neg {
						local = append(local, v)
					} else {
						exist = append(exist, v)
					}
					mapped[i] = datalog.V(v)
				case datalog.TermVar:
					mapped[i] = mapVar(t)
				default:
					mapped[i] = t
				}
			}
			f = u.Pred(l.Atom.Pred, mapped)
			if l.Neg {
				f = NewNot(NewExists(local, f))
			}
		} else {
			m := func(t datalog.Term) datalog.Term {
				if t.Kind == datalog.TermVar {
					return mapVar(t)
				}
				return t
			}
			f = &Cmp{Op: l.Builtin.Op, L: m(l.Builtin.L), R: m(l.Builtin.R)}
			if l.Neg {
				f = NewNot(f)
			}
		}
		out = append(out, f)
	}
	return out, exist
}

// QueryVars returns canonical free variables Y1..Yk for a query of arity k.
func QueryVars(k int) []datalog.Term {
	out := make([]datalog.Term, k)
	for i := range out {
		out[i] = datalog.V(fmt.Sprintf("Y%d", i+1))
	}
	return out
}

// ConstraintSentence converts an integrity constraint ⊥ :- body into the
// existentially closed sentence ∃X, Φ(X) whose unsatisfiability over
// (S, V) is required by the constraint, unfolding IDB predicates.
func (u *Unfolder) ConstraintSentence(r *datalog.Rule) Formula {
	if !r.IsConstraint() {
		panic("fol: ConstraintSentence on a non-constraint rule")
	}
	// Every body variable is existential.
	body, exist := u.bodyFormulas(r.Body, make(map[string]datalog.Term))
	return NewExists(exist, NewAnd(body...))
}
