package fol

import (
	"testing"

	"birds/internal/datalog"
)

func atomF(pred string, vars ...string) *Atom {
	args := make([]datalog.Term, len(vars))
	for i, v := range vars {
		args[i] = datalog.V(v)
	}
	return &Atom{Pred: pred, Args: args}
}

func TestToSRNF(t *testing.T) {
	a, b := atomF("r", "X"), atomF("s", "X")
	// ¬(a ∧ b) → ¬a ∨ ¬b
	f := ToSRNF(NewNot(NewAnd(a, b)))
	if or, ok := f.(*Or); !ok || len(or.Fs) != 2 {
		t.Errorf("De Morgan ∧ failed: %s", f)
	}
	// ¬(a ∨ b) → ¬a ∧ ¬b
	f = ToSRNF(NewNot(NewOr(a, b)))
	if and, ok := f.(*And); !ok || len(and.Fs) != 2 {
		t.Errorf("De Morgan ∨ failed: %s", f)
	}
	// ¬¬a → a
	if g := ToSRNF(NewNot(NewNot(a))); !Equal(g, a) {
		t.Errorf("double negation not folded: %s", g)
	}
	// Truth folding under negation.
	if ToSRNF(NewNot(True)) != False {
		t.Error("¬⊤ should fold to ⊥")
	}
	// No ∧/∨ directly under ¬ anywhere in the result.
	deep := NewNot(NewAnd(a, NewNot(NewOr(b, a))))
	var check func(Formula) bool
	check = func(f Formula) bool {
		switch g := f.(type) {
		case *Not:
			switch g.F.(type) {
			case *And, *Or:
				return false
			}
			return check(g.F)
		case *And:
			for _, s := range g.Fs {
				if !check(s) {
					return false
				}
			}
		case *Or:
			for _, s := range g.Fs {
				if !check(s) {
					return false
				}
			}
		case *Exists:
			return check(g.F)
		}
		return true
	}
	if got := ToSRNF(deep); !check(got) {
		t.Errorf("SRNF violated: %s", got)
	}
}

func TestRangeRestricted(t *testing.T) {
	a := atomF("r", "X", "Y")
	eqConst := &Cmp{Op: datalog.OpEq, L: datalog.V("Z"), R: datalog.CInt(1)}
	eqVar := &Cmp{Op: datalog.OpEq, L: datalog.V("Z"), R: datalog.V("X")}
	cmp := &Cmp{Op: datalog.OpLt, L: datalog.V("W"), R: datalog.CInt(5)}

	if vars, bottom := SortedRR(a); bottom || len(vars) != 2 {
		t.Errorf("rr(atom) = %v,%v", vars, bottom)
	}
	if vars, _ := SortedRR(NewAnd(a, eqConst)); len(vars) != 3 {
		t.Errorf("rr with x=c = %v", vars)
	}
	if vars, _ := SortedRR(NewAnd(a, eqVar)); len(vars) != 3 {
		t.Errorf("rr with x=y chain = %v", vars)
	}
	if vars, _ := SortedRR(NewAnd(a, cmp)); len(vars) != 2 {
		t.Errorf("comparison should not restrict: %v", vars)
	}
	// Disjunction intersects.
	if vars, _ := SortedRR(NewOr(atomF("r", "X", "Y"), atomF("s", "X"))); len(vars) != 1 || vars[0] != "X" {
		t.Errorf("rr(∨) = %v", vars)
	}
	// ∃ with unrestricted quantified variable → ⊥.
	bad := NewExists([]string{"Q"}, NewAnd(a, NewNot(atomF("s", "Q", "X"))))
	if _, bottom := SortedRR(bad); !bottom {
		t.Error("unrestricted quantified variable should give ⊥")
	}
}

func TestIsSafeRange(t *testing.T) {
	a := atomF("r", "X", "Y")
	cases := []struct {
		f    Formula
		want bool
	}{
		{a, true},
		{NewAnd(a, NewNot(atomF("s", "X"))), true},
		{NewNot(atomF("s", "X")), false},   // free var only under ¬
		{NewOr(a, atomF("s", "X")), false}, // disjuncts restrict different sets
		{NewExists([]string{"Y"}, a), true},
		{NewAnd(atomF("s", "X"), &Cmp{Op: datalog.OpEq, L: datalog.V("Y"), R: datalog.CInt(3)}), true},
	}
	for i, c := range cases {
		if got := IsSafeRange(c.f); got != c.want {
			t.Errorf("case %d: IsSafeRange(%s) = %v, want %v", i, c.f, got, c.want)
		}
	}
}

func TestIsGNFO(t *testing.T) {
	r := atomF("r", "X", "Y")
	sXY := atomF("s", "X", "Y")
	sX := atomF("s", "X")
	cases := []struct {
		name string
		f    Formula
		want bool
	}{
		{"atom", r, true},
		{"guarded negation", NewAnd(r, NewNot(sXY)), true},
		{"guard covers subset", NewAnd(r, NewNot(sX)), true},
		{"unguarded negation", NewAnd(sX, NewNot(sXY)), false}, // Y not covered
		{"negated sentence", NewNot(NewExists([]string{"X"}, sX)), true},
		{"bare negation with free var", NewNot(sX), false},
		{"equality guard", NewAnd(
			&Cmp{Op: datalog.OpEq, L: datalog.V("X"), R: datalog.CInt(1)},
			NewNot(sX)), true},
		{"var-const comparison", NewAnd(r, &Cmp{Op: datalog.OpGt, L: datalog.V("X"), R: datalog.CInt(2)}), true},
		{"var-var comparison", NewAnd(r, &Cmp{Op: datalog.OpLt, L: datalog.V("X"), R: datalog.V("Y")}), false},
		{"disjunction", NewOr(r, sXY), true},
	}
	for _, c := range cases {
		if got := IsGNFO(c.f); got != c.want {
			t.Errorf("%s: IsGNFO(%s) = %v, want %v", c.name, c.f, got, c.want)
		}
	}
}

// Unfolded LVGN programs must produce GNFO formulas (the core of
// Lemma 3.1), and derived get definitions must be safe range.
func TestUnfoldedLVGNIsGNFOAndSafeRange(t *testing.T) {
	prog := mustProg(t, `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`)
	u := NewUnfolder(prog)
	for _, sym := range []datalog.PredSym{datalog.Del("r1"), datalog.Del("r2"), datalog.Ins("r1")} {
		f := u.Pred(sym, QueryVars(1))
		if !IsGNFO(f) {
			t.Errorf("unfolded %s is not GNFO: %s", sym, f)
		}
		if !IsSafeRange(f) {
			t.Errorf("unfolded %s is not safe range: %s", sym, f)
		}
	}
}

// The inner-join definition of footnote 6 is not guarded negation when it
// appears under negation spanning two atoms.
func TestFootnote7PrimaryKeyNotGNFO(t *testing.T) {
	// ∃B1,B2: r(A,B1) ∧ r(A,B2) ∧ ¬(B1 = B2) — the negated equality's
	// variables span two different atoms, so no single guard covers them.
	f := NewExists([]string{"B1", "B2"}, NewAnd(
		atomF("r", "A", "B1"),
		atomF("r", "A", "B2"),
		NewNot(&Cmp{Op: datalog.OpEq, L: datalog.V("B1"), R: datalog.V("B2")}),
	))
	if IsGNFO(f) {
		t.Error("primary-key constraint body should not be GNFO (footnote 7)")
	}
}
