package fol

import (
	"sort"

	"birds/internal/datalog"
)

// This file implements the formal apparatus of Appendix B: safe-range
// normal form (SRNF), the range-restricted-variable computation rr(φ), the
// safe-range test, and the guarded-negation (GNFO) syntax check of §3.2 /
// Lemma 3.1. ToDatalog (todatalog.go) consumes formulas in this shape.

// ToSRNF rewrites a formula into safe-range normal form: no universal
// quantifiers or implications exist in this AST to begin with, so SRNF
// amounts to pushing negation through double negations, conjunctions and
// disjunctions until no ∧ or ∨ occurs directly below a ¬.
func ToSRNF(f Formula) Formula {
	switch g := f.(type) {
	case *Not:
		switch inner := g.F.(type) {
		case *Not:
			return ToSRNF(inner.F)
		case *And:
			out := make([]Formula, len(inner.Fs))
			for i, s := range inner.Fs {
				out[i] = ToSRNF(NewNot(s))
			}
			return NewOr(out...)
		case *Or:
			out := make([]Formula, len(inner.Fs))
			for i, s := range inner.Fs {
				out[i] = ToSRNF(NewNot(s))
			}
			return NewAnd(out...)
		case Truth:
			return Truth{B: !inner.B}
		default:
			return NewNot(ToSRNF(g.F))
		}
	case *And:
		out := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			out[i] = ToSRNF(s)
		}
		return NewAnd(out...)
	case *Or:
		out := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			out[i] = ToSRNF(s)
		}
		return NewOr(out...)
	case *Exists:
		return NewExists(g.Vars, ToSRNF(g.F))
	default:
		return f
	}
}

// rrResult is the result of the range-restriction computation: either a
// set of variables or ⊥ (some quantified variable is not restricted).
type rrResult struct {
	bottom bool
	vars   map[string]bool
}

func rrVars(vs ...string) rrResult {
	m := make(map[string]bool, len(vs))
	for _, v := range vs {
		m[v] = true
	}
	return rrResult{vars: m}
}

func (r rrResult) union(o rrResult) rrResult {
	if r.bottom || o.bottom {
		return rrResult{bottom: true}
	}
	out := make(map[string]bool, len(r.vars)+len(o.vars))
	for v := range r.vars {
		out[v] = true
	}
	for v := range o.vars {
		out[v] = true
	}
	return rrResult{vars: out}
}

func (r rrResult) intersect(o rrResult) rrResult {
	// ⊥ ∩ Z = ⊥ per Appendix B.
	if r.bottom || o.bottom {
		return rrResult{bottom: true}
	}
	out := make(map[string]bool)
	for v := range r.vars {
		if o.vars[v] {
			out[v] = true
		}
	}
	return rrResult{vars: out}
}

// RangeRestricted computes rr(φ) following the inductive definition of
// Appendix B (extended with comparison predicates, which restrict
// nothing). The formula should be in SRNF.
func RangeRestricted(f Formula) rrResult {
	switch g := f.(type) {
	case *Atom:
		var vs []string
		for _, t := range g.Args {
			if t.IsVar() {
				vs = append(vs, t.Var)
			}
		}
		return rrVars(vs...)
	case *Cmp:
		// x = a restricts x; x < a etc. restrict nothing.
		if g.Op == datalog.OpEq {
			if g.L.IsVar() && g.R.IsConst() {
				return rrVars(g.L.Var)
			}
			if g.R.IsVar() && g.L.IsConst() {
				return rrVars(g.R.Var)
			}
		}
		return rrVars()
	case *Not:
		return rrVars()
	case *And:
		// Conjunction unions; x = y equalities extend the set when one
		// side is already restricted.
		out := rrVars()
		var eqs []*Cmp
		for _, s := range g.Fs {
			if c, ok := s.(*Cmp); ok && c.Op == datalog.OpEq && c.L.IsVar() && c.R.IsVar() {
				eqs = append(eqs, c)
				continue
			}
			out = out.union(RangeRestricted(s))
		}
		if out.bottom {
			return out
		}
		for changed := true; changed; {
			changed = false
			for _, c := range eqs {
				l, r := out.vars[c.L.Var], out.vars[c.R.Var]
				if l != r {
					out.vars[c.L.Var] = true
					out.vars[c.R.Var] = true
					changed = true
				}
			}
		}
		return out
	case *Or:
		if len(g.Fs) == 0 {
			return rrVars()
		}
		out := RangeRestricted(g.Fs[0])
		for _, s := range g.Fs[1:] {
			out = out.intersect(RangeRestricted(s))
		}
		return out
	case *Exists:
		inner := RangeRestricted(g.F)
		if inner.bottom {
			return inner
		}
		for _, v := range g.Vars {
			if !inner.vars[v] {
				return rrResult{bottom: true}
			}
		}
		out := rrVars()
		for v := range inner.vars {
			out.vars[v] = true
		}
		for _, v := range g.Vars {
			delete(out.vars, v)
		}
		return out
	default: // Truth
		return rrVars()
	}
}

// IsSafeRange reports whether φ is a safe-range formula:
// rr(φ) = free(φ). The formula is normalized to SRNF first.
func IsSafeRange(f Formula) bool {
	n := ToSRNF(f)
	rr := RangeRestricted(n)
	if rr.bottom {
		return false
	}
	free := FreeVars(n)
	if len(rr.vars) != len(free) {
		return false
	}
	for v := range free {
		if !rr.vars[v] {
			return false
		}
	}
	return true
}

// IsGNFO reports whether φ is a guarded-negation first-order formula per
// the grammar of Bárány et al. used in §3.2:
//
//	φ ::= R(t...) | t1 = t2 | φ∧φ | φ∨φ | ∃x φ | α ∧ ¬φ
//
// where, in α ∧ ¬φ, the guard α is an atom (or an equality with a
// constant) containing every free variable of φ. Comparisons of a variable
// against a constant are admitted like unary atoms (the C<c/C>c encoding of
// Lemma 3.1's proof).
func IsGNFO(f Formula) bool { return gnfo(f) }

func gnfo(f Formula) bool {
	switch g := f.(type) {
	case *Atom, Truth:
		return true
	case *Cmp:
		// Equality freely; comparisons only variable-vs-constant.
		if g.Op == datalog.OpEq {
			return true
		}
		lv, rv := g.L.IsVar(), g.R.IsVar()
		return (lv && g.R.IsConst()) || (rv && g.L.IsConst()) || (!lv && !rv)
	case *Exists:
		return gnfo(g.F)
	case *Or:
		for _, s := range g.Fs {
			if !gnfo(s) {
				return false
			}
		}
		return true
	case *And:
		// Every negated conjunct must be guarded by positive conjuncts.
		guards := guardedSets(g.Fs)
		for _, s := range g.Fs {
			n, ok := s.(*Not)
			if !ok {
				if !gnfo(s) {
					return false
				}
				continue
			}
			if !gnfo(n.F) {
				return false
			}
			if !coveredByGuard(FreeVars(n.F), guards) {
				return false
			}
		}
		return true
	case *Not:
		// A bare negation is guarded only if it has no free variables.
		return gnfo(g.F) && len(FreeVars(g.F)) == 0
	default:
		return false
	}
}

// guardedSets collects, from the positive conjuncts, the variable sets
// usable as guards: each positive atom's variables, extended by variables
// equated to constants (which guard themselves, per Lemma 3.1's proof).
func guardedSets(fs []Formula) (sets []map[string]bool) {
	constVars := make(map[string]bool)
	for _, s := range fs {
		if c, ok := s.(*Cmp); ok && c.Op == datalog.OpEq {
			if c.L.IsVar() && c.R.IsConst() {
				constVars[c.L.Var] = true
			}
			if c.R.IsVar() && c.L.IsConst() {
				constVars[c.R.Var] = true
			}
		}
	}
	for _, s := range fs {
		if a, ok := s.(*Atom); ok {
			set := make(map[string]bool, len(a.Args))
			for _, t := range a.Args {
				if t.IsVar() {
					set[t.Var] = true
				}
			}
			for v := range constVars {
				set[v] = true
			}
			sets = append(sets, set)
		}
	}
	if len(sets) == 0 && len(constVars) > 0 {
		sets = append(sets, constVars)
	}
	return sets
}

func coveredByGuard(free map[string]bool, guards []map[string]bool) bool {
	if len(free) == 0 {
		return true
	}
	for _, g := range guards {
		ok := true
		for v := range free {
			if !g[v] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// SortedRR returns rr(φ) as a sorted slice (⊥ reported separately), for
// tests and diagnostics.
func SortedRR(f Formula) (vars []string, bottom bool) {
	rr := RangeRestricted(ToSRNF(f))
	if rr.bottom {
		return nil, true
	}
	for v := range rr.vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars, false
}
