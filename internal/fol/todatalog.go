package fol

import (
	"fmt"

	"birds/internal/analysis"
	"birds/internal/datalog"
)

// ToDatalog translates a safe-range FO formula f with the given free
// variables into an equivalent Datalog query: a set of rules defining
// goal(free...), possibly with auxiliary predicates for nested negated
// subformulas (Appendix B of the paper).
//
// Nested negations that are not safe-range on their own are repaired with
// the push-into-negated-quantifier rewriting of Appendix B: the positive
// conjuncts of the enclosing conjunction are pushed inside the negation
// (p ∧ ¬q ≡ p ∧ ¬(p ∧ q)).
func ToDatalog(f Formula, free []string, goal string) ([]*datalog.Rule, error) {
	tr := &translator{prefix: goal}
	if err := tr.translate(f, free, goal); err != nil {
		return nil, err
	}
	return tr.rules, nil
}

type translator struct {
	rules  []*datalog.Rule
	prefix string
	nAux   int
}

func (tr *translator) nextAux() string {
	tr.nAux++
	return fmt.Sprintf("%s_nf%d", tr.prefix, tr.nAux)
}

func (tr *translator) translate(f Formula, free []string, goal string) error {
	djs := DisjunctiveForm(f)
	for _, c := range djs {
		if err := tr.buildRule(c, free, goal); err != nil {
			return err
		}
	}
	return nil
}

// buildRule emits one rule goal(free...) :- conjunct. Nested negated
// subformulas become auxiliary predicates.
func (tr *translator) buildRule(c Conjunct, free []string, goal string) error {
	if len(free) == 0 {
		return fmt.Errorf("fol: cannot translate a sentence (nullary query) to Datalog")
	}
	// Positive atoms of the conjunct, used as guards for unsafe nested
	// negations.
	var positives []Formula
	for _, part := range c.Parts {
		if a, ok := part.(*Atom); ok {
			positives = append(positives, a)
		}
	}

	var body []datalog.Literal
	for _, part := range c.Parts {
		switch g := part.(type) {
		case Truth:
			if !g.B {
				return nil // unsatisfiable disjunct: no rule
			}
		case *Atom:
			body = append(body, datalog.Pos(atomToDatalog(g)))
		case *Cmp:
			body = append(body, datalog.Literal{Builtin: &datalog.Builtin{Op: g.Op, L: g.L, R: g.R}})
		case *Not:
			lit, err := tr.negLiteral(g.F, positives)
			if err != nil {
				return err
			}
			body = append(body, *lit)
		default:
			return fmt.Errorf("fol: unexpected %T conjunct after normalization", part)
		}
	}

	// Drop duplicate conjuncts (common after unfolding, e.g. the r(Y) ∧
	// ... ∧ r(Y) shape of the GetPut sentences).
	seen := make(map[string]bool, len(body))
	dedup := body[:0]
	for _, l := range body {
		k := l.String()
		if !seen[k] {
			seen[k] = true
			dedup = append(dedup, l)
		}
	}
	body = dedup

	headArgs := make([]datalog.Term, len(free))
	for i, v := range free {
		headArgs[i] = datalog.V(v)
	}
	rule := datalog.NewRule(datalog.NewAtom(datalog.Pred(goal), headArgs...), body...)
	if err := analysis.CheckRuleSafety(rule); err != nil {
		return fmt.Errorf("fol: derived rule is not range restricted: %w", err)
	}
	tr.rules = append(tr.rules, rule)
	return nil
}

// negLiteral converts a negated subformula into a body literal, creating an
// auxiliary predicate when the subformula is not atomic.
func (tr *translator) negLiteral(inner Formula, positives []Formula) (*datalog.Literal, error) {
	switch g := inner.(type) {
	case *Atom:
		l := datalog.Negated(atomToDatalog(g))
		return &l, nil
	case *Cmp:
		l := datalog.NegCmp(g.Op, g.L, g.R)
		return &l, nil
	case Truth:
		if g.B {
			return nil, fmt.Errorf("fol: conjunct ¬⊤ is unsatisfiable")
		}
		// ¬⊥ is trivially true: encode as 0 = 0.
		l := datalog.Cmp(datalog.OpEq, datalog.CInt(0), datalog.CInt(0))
		return &l, nil
	}

	W := SortedFreeVars(inner)
	if len(W) == 0 {
		return nil, fmt.Errorf("fol: nested negated sentence %s has no free variables; push a guard first", inner)
	}

	// First attempt: translate the subformula as is.
	if lit, err := tr.tryAux(inner, W); err == nil {
		return lit, nil
	}

	// Repair: push the positive guards of the enclosing conjunction inside
	// the negation (p ∧ ¬q ≡ p ∧ ¬(p ∧ q)), then quantify the guard-only
	// variables.
	guarded := NewAnd(append(append([]Formula{}, positives...), inner)...)
	wSet := make(map[string]bool, len(W))
	for _, v := range W {
		wSet[v] = true
	}
	var extra []string
	for _, v := range SortedFreeVars(guarded) {
		if !wSet[v] {
			extra = append(extra, v)
		}
	}
	return tr.tryAux(NewExists(extra, guarded), W)
}

// tryAux translates sub as an auxiliary predicate over free variables W and
// returns the literal ¬aux(W...). Rules are only committed on success.
func (tr *translator) tryAux(sub Formula, W []string) (*datalog.Literal, error) {
	attempt := &translator{prefix: tr.prefix, nAux: tr.nAux}
	name := attempt.nextAux()
	if err := attempt.translate(sub, W, name); err != nil {
		return nil, err
	}
	tr.rules = append(tr.rules, attempt.rules...)
	tr.nAux = attempt.nAux
	args := make([]datalog.Term, len(W))
	for i, v := range W {
		args[i] = datalog.V(v)
	}
	l := datalog.Negated(datalog.NewAtom(datalog.Pred(name), args...))
	return &l, nil
}

// atomToDatalog converts an FO atom back to a Datalog atom, decoding the
// +r / -r delta-predicate encoding.
func atomToDatalog(a *Atom) *datalog.Atom {
	return datalog.NewAtom(predSym(a.Pred), a.Args...)
}
