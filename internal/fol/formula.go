// Package fol is the first-order-logic substrate of the validation
// algorithm: FO formulas, the Datalog-to-FO unfolding used in the proof of
// Lemma 3.1, the linear-view normal form and φ1/φ2/φ3 decomposition of
// Lemma 4.2 (Claim 1), finite-model evaluation, and the translation from
// safe-range FO formulas back to Datalog queries (Appendix B), which is how
// the view definition get is derived from a putback program.
package fol

import (
	"fmt"
	"sort"
	"strings"

	"birds/internal/datalog"
)

// Formula is a first-order formula over relational atoms, equalities and
// comparisons. Implementations: *Atom, *Cmp, *Not, *And, *Or, *Exists,
// Truth.
type Formula interface {
	isFormula()
	String() string
}

// Atom is a relational atom r(t1, ..., tk). After unfolding, every atom
// refers to an EDB relation. Terms are datalog terms restricted to
// variables and constants (no anonymous variables).
type Atom struct {
	Pred string
	Args []datalog.Term
}

// Cmp is a built-in predicate t1 op t2.
type Cmp struct {
	Op   datalog.CmpOp
	L, R datalog.Term
}

// Not is negation.
type Not struct {
	F Formula
}

// And is conjunction; an empty And is ⊤.
type And struct {
	Fs []Formula
}

// Or is disjunction; an empty Or is ⊥.
type Or struct {
	Fs []Formula
}

// Exists is existential quantification over one or more variables.
type Exists struct {
	Vars []string
	F    Formula
}

// Truth is a truth constant: ⊤ or ⊥.
type Truth struct {
	B bool
}

func (*Atom) isFormula()   {}
func (*Cmp) isFormula()    {}
func (*Not) isFormula()    {}
func (*And) isFormula()    {}
func (*Or) isFormula()     {}
func (*Exists) isFormula() {}
func (Truth) isFormula()   {}

// True and False are the truth constants.
var (
	True  = Truth{B: true}
	False = Truth{B: false}
)

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

func (c *Cmp) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

func (n *Not) String() string { return "¬(" + n.F.String() + ")" }

func (a *And) String() string {
	if len(a.Fs) == 0 {
		return "⊤"
	}
	parts := make([]string, len(a.Fs))
	for i, f := range a.Fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

func (o *Or) String() string {
	if len(o.Fs) == 0 {
		return "⊥"
	}
	parts := make([]string, len(o.Fs))
	for i, f := range o.Fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

func (e *Exists) String() string {
	return "∃" + strings.Join(e.Vars, ",") + ". " + e.F.String()
}

func (t Truth) String() string {
	if t.B {
		return "⊤"
	}
	return "⊥"
}

// NewAnd builds a conjunction, flattening nested Ands and truth constants.
func NewAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case Truth:
			if !g.B {
				return False
			}
		case *And:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return &And{Fs: out}
}

// NewOr builds a disjunction, flattening nested Ors and truth constants.
func NewOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch g := f.(type) {
		case Truth:
			if g.B {
				return True
			}
		case *Or:
			out = append(out, g.Fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return &Or{Fs: out}
}

// NewNot builds a negation, folding double negation and truth constants.
func NewNot(f Formula) Formula {
	switch g := f.(type) {
	case Truth:
		return Truth{B: !g.B}
	case *Not:
		return g.F
	}
	return &Not{F: f}
}

// NewExists quantifies f over vars, dropping variables that do not occur
// free in f and collapsing nested quantifiers.
func NewExists(vars []string, f Formula) Formula {
	free := FreeVars(f)
	var kept []string
	for _, v := range vars {
		if free[v] {
			kept = append(kept, v)
		}
	}
	if len(kept) == 0 {
		return f
	}
	if e, ok := f.(*Exists); ok {
		return &Exists{Vars: append(kept, e.Vars...), F: e.F}
	}
	return &Exists{Vars: kept, F: f}
}

// FreeVars returns the free variables of f.
func FreeVars(f Formula) map[string]bool {
	out := make(map[string]bool)
	collectFree(f, out, make(map[string]bool))
	return out
}

func collectFree(f Formula, out, bound map[string]bool) {
	switch g := f.(type) {
	case *Atom:
		for _, t := range g.Args {
			if t.IsVar() && !bound[t.Var] {
				out[t.Var] = true
			}
		}
	case *Cmp:
		for _, t := range []datalog.Term{g.L, g.R} {
			if t.IsVar() && !bound[t.Var] {
				out[t.Var] = true
			}
		}
	case *Not:
		collectFree(g.F, out, bound)
	case *And:
		for _, sub := range g.Fs {
			collectFree(sub, out, bound)
		}
	case *Or:
		for _, sub := range g.Fs {
			collectFree(sub, out, bound)
		}
	case *Exists:
		inner := make(map[string]bool, len(bound)+len(g.Vars))
		for v := range bound {
			inner[v] = true
		}
		for _, v := range g.Vars {
			inner[v] = true
		}
		collectFree(g.F, out, inner)
	case Truth:
	}
}

// SortedFreeVars returns the free variables of f in sorted order.
func SortedFreeVars(f Formula) []string {
	m := FreeVars(f)
	out := make([]string, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Preds returns the set of predicate names occurring in f.
func Preds(f Formula) map[string]bool {
	out := make(map[string]bool)
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case *Atom:
			out[g.Pred] = true
		case *Not:
			walk(g.F)
		case *And:
			for _, s := range g.Fs {
				walk(s)
			}
		case *Or:
			for _, s := range g.Fs {
				walk(s)
			}
		case *Exists:
			walk(g.F)
		}
	}
	walk(f)
	return out
}

// Fresh generates fresh variable names.
type Fresh struct {
	n      int
	prefix string
}

// NewFresh returns a generator producing prefix0, prefix1, ...
func NewFresh(prefix string) *Fresh { return &Fresh{prefix: prefix} }

// Next returns the next fresh name.
func (f *Fresh) Next() string {
	f.n++
	return fmt.Sprintf("%s%d", f.prefix, f.n)
}

// Substitute applies a variable substitution to f, renaming every bound
// variable to a fresh name first so capture cannot occur.
func Substitute(f Formula, sub map[string]datalog.Term, fresh *Fresh) Formula {
	return subst(f, sub, fresh)
}

func substTerm(t datalog.Term, sub map[string]datalog.Term) datalog.Term {
	if t.IsVar() {
		if r, ok := sub[t.Var]; ok {
			return r
		}
	}
	return t
}

func subst(f Formula, sub map[string]datalog.Term, fresh *Fresh) Formula {
	switch g := f.(type) {
	case *Atom:
		args := make([]datalog.Term, len(g.Args))
		for i, t := range g.Args {
			args[i] = substTerm(t, sub)
		}
		return &Atom{Pred: g.Pred, Args: args}
	case *Cmp:
		return &Cmp{Op: g.Op, L: substTerm(g.L, sub), R: substTerm(g.R, sub)}
	case *Not:
		return NewNot(subst(g.F, sub, fresh))
	case *And:
		out := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			out[i] = subst(s, sub, fresh)
		}
		return NewAnd(out...)
	case *Or:
		out := make([]Formula, len(g.Fs))
		for i, s := range g.Fs {
			out[i] = subst(s, sub, fresh)
		}
		return NewOr(out...)
	case *Exists:
		inner := make(map[string]datalog.Term, len(sub)+len(g.Vars))
		for k, v := range sub {
			inner[k] = v
		}
		vars := make([]string, len(g.Vars))
		for i, v := range g.Vars {
			nv := fresh.Next()
			vars[i] = nv
			inner[v] = datalog.V(nv)
		}
		return NewExists(vars, subst(g.F, inner, fresh))
	default:
		return f
	}
}

// Equal reports structural equality of formulas (after construction-time
// normalization; it does not attempt semantic equivalence).
func Equal(a, b Formula) bool { return a.String() == b.String() }

// Constants returns every constant occurring in f.
func Constants(f Formula) []datalog.Term {
	var out []datalog.Term
	seen := make(map[string]bool)
	addTerm := func(t datalog.Term) {
		if t.IsConst() && !seen[t.String()] {
			seen[t.String()] = true
			out = append(out, t)
		}
	}
	var walk func(Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case *Atom:
			for _, t := range g.Args {
				addTerm(t)
			}
		case *Cmp:
			addTerm(g.L)
			addTerm(g.R)
		case *Not:
			walk(g.F)
		case *And:
			for _, s := range g.Fs {
				walk(s)
			}
		case *Or:
			for _, s := range g.Fs {
				walk(s)
			}
		case *Exists:
			walk(g.F)
		}
	}
	walk(f)
	return out
}
