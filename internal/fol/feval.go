package fol

import (
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// Model is a finite structure over which formulas are evaluated: a database
// plus the active domain used for quantification.
type Model struct {
	DB     *eval.Database
	Domain []value.Value
}

// NewModel builds a model whose domain is the active domain of db extended
// with the given extra values (typically the constants of the formula to be
// evaluated).
func NewModel(db *eval.Database, extra ...value.Value) *Model {
	seen := value.NewRelation(1)
	var dom []value.Value
	add := func(v value.Value) {
		if seen.Add(value.Tuple{v}) {
			dom = append(dom, v)
		}
	}
	for _, p := range db.Preds() {
		db.Rel(p).Each(func(t value.Tuple) {
			for _, v := range t {
				add(v)
			}
		})
	}
	for _, v := range extra {
		add(v)
	}
	return &Model{DB: db, Domain: dom}
}

// Env is a variable assignment.
type Env map[string]value.Value

// termValue resolves a term under the environment; it panics on an unbound
// variable, which indicates evaluating a formula with free variables not
// covered by the environment.
func termValue(t datalog.Term, env Env) value.Value {
	if t.IsConst() {
		return t.Const
	}
	v, ok := env[t.Var]
	if !ok {
		panic("fol: unbound variable " + t.Var + " during evaluation")
	}
	return v
}

// Eval evaluates f over the model under env. Quantifiers range over the
// model's domain. The evaluation is the standard Tarskian semantics; it is
// exponential in quantifier depth but the models used by the bounded
// satisfiability oracle are tiny.
func (m *Model) Eval(f Formula, env Env) bool {
	switch g := f.(type) {
	case Truth:
		return g.B
	case *Atom:
		rel := m.DB.Rel(predSym(g.Pred))
		if rel == nil {
			return false
		}
		t := make(value.Tuple, len(g.Args))
		for i, a := range g.Args {
			t[i] = termValue(a, env)
		}
		return rel.Contains(t)
	case *Cmp:
		return g.Op.Eval(termValue(g.L, env), termValue(g.R, env))
	case *Not:
		return !m.Eval(g.F, env)
	case *And:
		for _, s := range g.Fs {
			if !m.Eval(s, env) {
				return false
			}
		}
		return true
	case *Or:
		for _, s := range g.Fs {
			if m.Eval(s, env) {
				return true
			}
		}
		return false
	case *Exists:
		return m.evalExists(g.Vars, g.F, env)
	default:
		panic("fol: unknown formula type")
	}
}

func (m *Model) evalExists(vars []string, body Formula, env Env) bool {
	if len(vars) == 0 {
		return m.Eval(body, env)
	}
	v, rest := vars[0], vars[1:]
	saved, had := env[v]
	for _, d := range m.Domain {
		env[v] = d
		if m.evalExists(rest, body, env) {
			if had {
				env[v] = saved
			} else {
				delete(env, v)
			}
			return true
		}
	}
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
	return false
}

// predSym recovers a PredSym from its printed form (+r, -r, r), the
// encoding used by the unfolder for EDB atoms.
func predSym(name string) datalog.PredSym {
	if len(name) > 0 {
		switch name[0] {
		case '+':
			return datalog.Ins(name[1:])
		case '-':
			return datalog.Del(name[1:])
		}
	}
	return datalog.Pred(name)
}

// Sat reports whether the existentially closed sentence holds in the model.
func (m *Model) Sat(sentence Formula) bool {
	vars := SortedFreeVars(sentence)
	return m.Eval(NewExists(vars, sentence), Env{})
}
