package fol

import (
	"math/rand"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

func mustProg(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const unionSrc = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func randomDB(rng *rand.Rand, preds map[string]int, domain int) *eval.Database {
	db := eval.NewDatabase()
	for name, arity := range preds {
		r := value.NewRelation(arity)
		n := rng.Intn(4)
		for i := 0; i < n; i++ {
			t := make(value.Tuple, arity)
			for j := range t {
				t[j] = value.Int(int64(rng.Intn(domain)))
			}
			r.Add(t)
		}
		db.Set(predSym(name), r)
	}
	return db
}

// Unfolded formulas must agree with direct Datalog evaluation on random
// databases — the semantic core of Lemma 3.1's construction.
func TestUnfoldAgreesWithEvaluation(t *testing.T) {
	prog := mustProg(t, unionSrc)
	u := NewUnfolder(prog)
	ev, err := eval.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	goals := []datalog.PredSym{datalog.Del("r1"), datalog.Del("r2"), datalog.Ins("r1")}
	formulas := make(map[datalog.PredSym]Formula)
	for _, g := range goals {
		formulas[g] = u.Pred(g, QueryVars(1))
	}

	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		db := randomDB(rng, map[string]int{"r1": 1, "r2": 1, "v": 1}, 4)
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
		m := NewModel(db, value.Int(0), value.Int(1), value.Int(2), value.Int(3))
		for _, g := range goals {
			rel := db.Rel(g)
			for _, d := range m.Domain {
				want := rel.Contains(value.Tuple{d})
				got := m.Eval(formulas[g], Env{"Y1": d})
				if got != want {
					t.Fatalf("trial %d: %s(%v): formula=%v datalog=%v\nformula: %s\ndb:\n%s",
						trial, g, d, got, want, formulas[g], db)
				}
			}
		}
	}
}

// Unfolding handles auxiliary IDB predicates, constants in heads and
// repeated head variables.
func TestUnfoldAuxAndHeadPatterns(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int).
view v(a:int).
big(X) :- r(X,Y), Y > 2.
same(X) :- r(X,X).
tagged(X,1) :- r(X,_).
-r(X,Y) :- r(X,Y), big(X), not v(X).
`)
	u := NewUnfolder(prog)
	ev, err := eval.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	fBig := u.Pred(datalog.Pred("big"), QueryVars(1))
	fSame := u.Pred(datalog.Pred("same"), QueryVars(1))
	fTagged := u.Pred(datalog.Pred("tagged"), QueryVars(2))
	fDel := u.Pred(datalog.Del("r"), QueryVars(2))

	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 120; trial++ {
		db := randomDB(rng, map[string]int{"r": 2, "v": 1}, 4)
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
		m := NewModel(db, value.Int(0), value.Int(1), value.Int(2), value.Int(3))
		for _, d := range m.Domain {
			if got, want := m.Eval(fBig, Env{"Y1": d}), db.Rel(datalog.Pred("big")).Contains(value.Tuple{d}); got != want {
				t.Fatalf("big(%v): formula=%v datalog=%v", d, got, want)
			}
			if got, want := m.Eval(fSame, Env{"Y1": d}), db.Rel(datalog.Pred("same")).Contains(value.Tuple{d}); got != want {
				t.Fatalf("same(%v): formula=%v datalog=%v", d, got, want)
			}
			for _, d2 := range m.Domain {
				env := Env{"Y1": d, "Y2": d2}
				if got, want := m.Eval(fTagged, env), db.Rel(datalog.Pred("tagged")).Contains(value.Tuple{d, d2}); got != want {
					t.Fatalf("tagged(%v,%v): formula=%v datalog=%v", d, d2, got, want)
				}
				if got, want := m.Eval(fDel, env), db.Rel(datalog.Del("r")).Contains(value.Tuple{d, d2}); got != want {
					t.Fatalf("-r(%v,%v): formula=%v datalog=%v", d, d2, got, want)
				}
			}
		}
	}
}

// Example 4.1 of the paper: decomposing the union strategy's steady-state
// sentences must yield φ2 ≡ r1 ∨ r2 (the derived get), φ1 ≡ ¬r1 ∧ ¬r2, and
// no view-free sentence.
func TestDecomposeExample41(t *testing.T) {
	prog := mustProg(t, unionSrc)
	u := NewUnfolder(prog)
	y := QueryVars(1)
	rAtom := func(name string) Formula { return &Atom{Pred: name, Args: y} }

	sentences := []Formula{
		NewAnd(u.Pred(datalog.Del("r1"), y), rAtom("r1")),
		NewAnd(u.Pred(datalog.Del("r2"), y), rAtom("r2")),
		NewAnd(u.Pred(datalog.Ins("r1"), y), NewNot(rAtom("r1"))),
	}
	d, err := Decompose(sentences, "v", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Phi3) != 0 {
		t.Errorf("φ3 should be empty, got %v", d.Phi3)
	}

	// Check semantic equivalences over all two-element source databases.
	wantPhi2 := NewOr(&Atom{Pred: "r1", Args: []datalog.Term{datalog.V("Y1")}},
		&Atom{Pred: "r2", Args: []datalog.Term{datalog.V("Y1")}})
	vals := []value.Value{value.Int(0), value.Int(1)}
	for mask := 0; mask < 16; mask++ {
		db := eval.NewDatabase()
		r1, r2 := value.NewRelation(1), value.NewRelation(1)
		if mask&1 != 0 {
			r1.Add(value.Tuple{vals[0]})
		}
		if mask&2 != 0 {
			r1.Add(value.Tuple{vals[1]})
		}
		if mask&4 != 0 {
			r2.Add(value.Tuple{vals[0]})
		}
		if mask&8 != 0 {
			r2.Add(value.Tuple{vals[1]})
		}
		db.Set(datalog.Pred("r1"), r1)
		db.Set(datalog.Pred("r2"), r2)
		m := NewModel(db, vals...)
		for _, d0 := range vals {
			env := Env{"Y1": d0}
			if got, want := m.Eval(d.Phi2, env), m.Eval(wantPhi2, env); got != want {
				t.Fatalf("φ2 mismatch at %v: got %v want %v\nφ2 = %s", d0, got, want, d.Phi2)
			}
			// φ1 ∧ φ2 must be unsatisfiable (the existence condition).
			if m.Eval(d.Phi1, env) && m.Eval(d.Phi2, env) {
				t.Fatalf("φ1 ∧ φ2 satisfiable at %v:\nφ1 = %s\nφ2 = %s", d0, d.Phi1, d.Phi2)
			}
		}
	}
}

func TestDecomposeConstantsAndConstraints(t *testing.T) {
	prog := mustProg(t, `
source male(e:string).
view people(e:string, g:string).
+male(E) :- people(E,'M'), not male(E).
-male(E) :- male(E), not people(E,'M').
_|_ :- people(E,G), G = 'X'.
`)
	u := NewUnfolder(prog)
	y := QueryVars(1)
	sentences := []Formula{
		NewAnd(u.Pred(datalog.Ins("male"), y), NewNot(&Atom{Pred: "male", Args: y})),
		NewAnd(u.Pred(datalog.Del("male"), y), &Atom{Pred: "male", Args: y}),
		u.ConstraintSentence(prog.Constraints()[0]),
	}
	d, err := Decompose(sentences, "people", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Phi3) != 0 {
		t.Errorf("φ3 should be empty: %v", d.Phi3)
	}
	// φ2 should be male(Y1) ∧ Y2 = 'M' semantically.
	db := eval.NewDatabase()
	maleRel := value.NewRelation(1)
	maleRel.Add(value.Tuple{value.Str("bob")})
	db.Set(datalog.Pred("male"), maleRel)
	m := NewModel(db, value.Str("bob"), value.Str("M"), value.Str("X"), value.Str("F"))
	cases := []struct {
		e, g string
		want bool
	}{
		{"bob", "M", true},
		{"bob", "F", false},
		{"M", "M", false},
	}
	for _, c := range cases {
		got := m.Eval(d.Phi2, Env{"Y1": value.Str(c.e), "Y2": value.Str(c.g)})
		if got != c.want {
			t.Errorf("φ2(%s,%s) = %v, want %v\nφ2 = %s", c.e, c.g, got, c.want, d.Phi2)
		}
	}
	// The constraint contributes G = 'X' to φ1: people('bob','X') must be
	// excluded from any steady state.
	if !m.Eval(d.Phi1, Env{"Y1": value.Str("bob"), "Y2": value.Str("X")}) {
		t.Errorf("φ1 should forbid G='X'\nφ1 = %s", d.Phi1)
	}
}

func TestDecomposeRejectsSelfJoin(t *testing.T) {
	v := func(args ...datalog.Term) Formula { return &Atom{Pred: "v", Args: args} }
	s := NewAnd(v(datalog.V("A")), v(datalog.V("B")))
	if _, err := Decompose([]Formula{s}, "v", 1); err == nil {
		t.Fatal("self-join should be rejected")
	}
	nested := NewNot(NewExists([]string{"Z"}, NewAnd(v(datalog.V("Z")), &Atom{Pred: "r", Args: []datalog.Term{datalog.V("Z")}})))
	if _, err := Decompose([]Formula{NewAnd(&Atom{Pred: "r", Args: []datalog.Term{datalog.V("A")}}, nested)}, "v", 1); err == nil {
		t.Fatal("view nested under negation should be rejected")
	}
}

func TestToDatalogRoundTrip(t *testing.T) {
	// φ2 of the union example: translate to Datalog, evaluate, compare
	// with FO evaluation on random databases.
	prog := mustProg(t, unionSrc)
	u := NewUnfolder(prog)
	y := QueryVars(1)
	sentences := []Formula{
		NewAnd(u.Pred(datalog.Del("r1"), y), &Atom{Pred: "r1", Args: y}),
		NewAnd(u.Pred(datalog.Del("r2"), y), &Atom{Pred: "r2", Args: y}),
		NewAnd(u.Pred(datalog.Ins("r1"), y), NewNot(&Atom{Pred: "r1", Args: y})),
	}
	d, err := Decompose(sentences, "v", 1)
	if err != nil {
		t.Fatal(err)
	}
	rules, err := ToDatalog(d.Phi2, d.ViewVars, "v")
	if err != nil {
		t.Fatal(err)
	}
	getProg := &datalog.Program{
		Sources: prog.Sources,
		Rules:   rules,
	}
	ev, err := eval.New(getProg)
	if err != nil {
		t.Fatalf("derived get program does not compile: %v\n%s", err, getProg)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng, map[string]int{"r1": 1, "r2": 1}, 4)
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
		m := NewModel(db, value.Int(0), value.Int(1), value.Int(2), value.Int(3))
		got := db.Rel(datalog.Pred("v"))
		for _, d0 := range m.Domain {
			want := m.Eval(d.Phi2, Env{"Y1": d0})
			if got.Contains(value.Tuple{d0}) != want {
				t.Fatalf("derived get disagrees with φ2 at %v\nrules:\n%s", d0, getProg)
			}
		}
	}
}

func TestToDatalogNestedNegationGuard(t *testing.T) {
	// f(Y1) = r(Y1) ∧ ¬∃Z (s(Y1,Z) ∧ ¬t(Z)) — the nested negation needs an
	// auxiliary predicate; ¬t(Z) inside is only safe after guard pushing.
	f := NewAnd(
		&Atom{Pred: "r", Args: []datalog.Term{datalog.V("Y1")}},
		NewNot(NewExists([]string{"Z"}, NewAnd(
			&Atom{Pred: "s", Args: []datalog.Term{datalog.V("Y1"), datalog.V("Z")}},
			NewNot(&Atom{Pred: "t", Args: []datalog.Term{datalog.V("Z")}}),
		))),
	)
	rules, err := ToDatalog(f, []string{"Y1"}, "q")
	if err != nil {
		t.Fatal(err)
	}
	prog := &datalog.Program{Rules: rules}
	ev, err := eval.New(prog)
	if err != nil {
		t.Fatalf("%v\n%s", err, prog)
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		db := randomDB(rng, map[string]int{"r": 1, "s": 2, "t": 1}, 3)
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
		m := NewModel(db, value.Int(0), value.Int(1), value.Int(2))
		got := db.Rel(datalog.Pred("q"))
		for _, d0 := range m.Domain {
			want := m.Eval(f, Env{"Y1": d0})
			if got.Contains(value.Tuple{d0}) != want {
				t.Fatalf("nested negation translation wrong at %v\n%s", d0, prog)
			}
		}
	}
}

func TestToDatalogErrors(t *testing.T) {
	// A sentence (no free variables) cannot become a Datalog query head.
	if _, err := ToDatalog(&Atom{Pred: "r", Args: []datalog.Term{datalog.CInt(1)}}, nil, "q"); err == nil {
		t.Error("nullary query should be rejected")
	}
	// ¬r(Y1) alone is not range restricted.
	if _, err := ToDatalog(NewNot(&Atom{Pred: "r", Args: []datalog.Term{datalog.V("Y1")}}), []string{"Y1"}, "q"); err == nil {
		t.Error("unsafe formula should be rejected")
	}
}

func TestFormulaConstructorsNormalize(t *testing.T) {
	a := &Atom{Pred: "r", Args: []datalog.Term{datalog.V("X")}}
	if NewAnd() != True || NewOr() != False {
		t.Error("empty connectives should fold to truth constants")
	}
	if NewAnd(a, False) != False || NewOr(a, True) != True {
		t.Error("absorbing elements wrong")
	}
	if NewAnd(True, a) != Formula(a) || NewOr(False, a) != Formula(a) {
		t.Error("identity elements wrong")
	}
	if NewNot(NewNot(a)) != Formula(a) {
		t.Error("double negation should fold")
	}
	if NewNot(True) != False || NewNot(False) != True {
		t.Error("negated truth constants wrong")
	}
	flat := NewAnd(NewAnd(a, a), a)
	if and, ok := flat.(*And); !ok || len(and.Fs) != 3 {
		t.Errorf("nested And should flatten: %v", flat)
	}
	// Exists drops unused variables.
	if NewExists([]string{"Z"}, a) != Formula(a) {
		t.Error("Exists over unused variable should vanish")
	}
	e := NewExists([]string{"X"}, a)
	if _, ok := e.(*Exists); !ok {
		t.Errorf("Exists over used variable should remain: %v", e)
	}
}

func TestFreeVarsAndSubstitute(t *testing.T) {
	inner := NewAnd(
		&Atom{Pred: "r", Args: []datalog.Term{datalog.V("X"), datalog.V("Z")}},
		&Cmp{Op: datalog.OpLt, L: datalog.V("Z"), R: datalog.CInt(5)},
	)
	f := NewExists([]string{"Z"}, inner)
	fv := FreeVars(f)
	if !fv["X"] || fv["Z"] || len(fv) != 1 {
		t.Errorf("FreeVars = %v", fv)
	}
	// Substituting X := Z must not capture the bound Z.
	g := Substitute(f, map[string]datalog.Term{"X": datalog.V("Z")}, NewFresh("_t"))
	gv := FreeVars(g)
	if !gv["Z"] || len(gv) != 1 {
		t.Errorf("after substitution FreeVars = %v", gv)
	}
	if strings.Contains(g.String(), "∃Z") {
		t.Errorf("bound variable not renamed: %s", g)
	}
}

func TestConstantsCollection(t *testing.T) {
	f := NewAnd(
		&Atom{Pred: "r", Args: []datalog.Term{datalog.CStr("M"), datalog.V("X")}},
		&Cmp{Op: datalog.OpGt, L: datalog.V("X"), R: datalog.CInt(2)},
		&Cmp{Op: datalog.OpGt, L: datalog.V("X"), R: datalog.CInt(2)},
	)
	cs := Constants(f)
	if len(cs) != 2 {
		t.Errorf("Constants = %v", cs)
	}
}

func TestModelSat(t *testing.T) {
	db := eval.NewDatabase()
	r := value.NewRelation(1)
	r.Add(value.Tuple{value.Int(1)})
	db.Set(datalog.Pred("r"), r)
	m := NewModel(db)
	sat := &Atom{Pred: "r", Args: []datalog.Term{datalog.V("X")}}
	if !m.Sat(sat) {
		t.Error("∃X r(X) should hold")
	}
	unsat := NewAnd(sat, NewNot(sat))
	if m.Sat(unsat) {
		t.Error("contradiction should not hold")
	}
}
