package fol

import (
	"fmt"

	"birds/internal/datalog"
)

// Conjunct is one flattened disjunct of a sentence: a set of conjuncts that
// are atoms, comparisons, or negated subformulas, with every variable
// implicitly existentially quantified (the sentence level of Lemma 4.2).
type Conjunct struct {
	Parts []Formula
}

// Formula reassembles the conjunct as an existentially closed sentence.
func (c Conjunct) Formula() Formula {
	body := NewAnd(c.Parts...)
	vars := SortedFreeVars(body)
	return NewExists(vars, body)
}

// DisjunctiveForm flattens an existentially closed sentence into its
// disjuncts: existentials are hoisted (bound variables are already unique
// after unfolding), disjunctions distribute over conjunctions, and negated
// subformulas are kept opaque.
func DisjunctiveForm(f Formula) []Conjunct {
	return disjuncts(f)
}

func disjuncts(f Formula) []Conjunct {
	switch g := f.(type) {
	case *Or:
		var out []Conjunct
		for _, s := range g.Fs {
			out = append(out, disjuncts(s)...)
		}
		return out
	case *Exists:
		return disjuncts(g.F)
	case *And:
		// Cartesian product of the children's disjuncts.
		out := []Conjunct{{}}
		for _, s := range g.Fs {
			ds := disjuncts(s)
			var next []Conjunct
			for _, acc := range out {
				for _, d := range ds {
					parts := make([]Formula, 0, len(acc.Parts)+len(d.Parts))
					parts = append(parts, acc.Parts...)
					parts = append(parts, d.Parts...)
					next = append(next, Conjunct{Parts: parts})
				}
			}
			out = next
		}
		return out
	case Truth:
		if g.B {
			return []Conjunct{{}}
		}
		return nil
	default:
		// Atom, Cmp, Not: a single conjunct.
		return []Conjunct{{Parts: []Formula{f}}}
	}
}

// Decomposition is the linear-view normal form of Lemma 4.2 (Claim 1): the
// steady-state condition over (S, V) splits into
//
//	(S,V) ⊭ ∃Y, v(Y) ∧ φ1(Y)     — φ1 bounds the view from above
//	(S,V) ⊭ ∃Y, ¬v(Y) ∧ φ2(Y)    — φ2 bounds the view from below
//	(S,V) ⊭ φ3                   — view-free sentences over S alone
//
// A steady-state view exists iff φ3 is unsatisfiable and ∃Y, φ1 ∧ φ2 is
// unsatisfiable, and then get = φ2 is one valid view definition (§4.3).
type Decomposition struct {
	ViewName string
	ViewVars []string // canonical Y1..Ym
	Phi1     Formula  // free vars ⊆ ViewVars
	Phi2     Formula  // free vars ⊆ ViewVars
	Phi3     []Formula
}

// Decompose rewrites the given existentially closed sentences — each of
// which must not be satisfied by (S, V) — into the linear-view normal form.
// Each disjunct may contain at most one direct view literal (guaranteed for
// programs satisfying the linear-view restriction); a view atom nested
// inside a negated subformula is rejected.
func Decompose(sentences []Formula, viewName string, viewArity int) (*Decomposition, error) {
	d := &Decomposition{ViewName: viewName}
	for i := 0; i < viewArity; i++ {
		d.ViewVars = append(d.ViewVars, fmt.Sprintf("Y%d", i+1))
	}
	fresh := NewFresh("_d")
	var phi1, phi2 []Formula

	for _, s := range sentences {
		for _, conj := range DisjunctiveForm(s) {
			viewIdx := -1
			viewNeg := false
			for i, part := range conj.Parts {
				atom, neg := directAtom(part)
				if atom == nil {
					if containsPred(part, viewName) {
						return nil, fmt.Errorf("fol: view %s occurs inside a nested subformula; the program is outside the linear-view fragment", viewName)
					}
					continue
				}
				if atom.Pred != viewName {
					continue
				}
				if viewIdx >= 0 {
					return nil, fmt.Errorf("fol: disjunct has two view literals (self-join on the view)")
				}
				viewIdx, viewNeg = i, neg
			}
			if viewIdx < 0 {
				d.Phi3 = append(d.Phi3, conj.Formula())
				continue
			}
			psi, err := canonicalizeView(conj, viewIdx, d.ViewVars, fresh)
			if err != nil {
				return nil, err
			}
			if viewNeg {
				phi2 = append(phi2, psi)
			} else {
				phi1 = append(phi1, psi)
			}
		}
	}
	d.Phi1 = NewOr(phi1...)
	d.Phi2 = NewOr(phi2...)
	return d, nil
}

// directAtom returns the atom if part is an atom or the negation of an
// atom, along with the negation flag.
func directAtom(part Formula) (*Atom, bool) {
	switch g := part.(type) {
	case *Atom:
		return g, false
	case *Not:
		if a, ok := g.F.(*Atom); ok {
			return a, true
		}
	}
	return nil, false
}

func containsPred(f Formula, name string) bool { return Preds(f)[name] }

// canonicalizeView removes the view literal at index vi from the conjunct
// and rewrites the rest over the canonical view variables: constants and
// repeated variables in the view atom become equalities, the remaining
// variables are renamed, and every non-view variable is existentially
// quantified. The result is the coefficient ψ of the view literal.
func canonicalizeView(conj Conjunct, vi int, viewVars []string, fresh *Fresh) (Formula, error) {
	atom, _ := directAtom(conj.Parts[vi])
	if len(atom.Args) != len(viewVars) {
		return nil, fmt.Errorf("fol: view atom arity %d does not match declared arity %d", len(atom.Args), len(viewVars))
	}
	sub := make(map[string]datalog.Term)
	var eqs []Formula
	for i, t := range atom.Args {
		y := datalog.V(viewVars[i])
		switch {
		case t.IsConst():
			eqs = append(eqs, &Cmp{Op: datalog.OpEq, L: y, R: t})
		case t.IsVar():
			if prev, ok := sub[t.Var]; ok {
				eqs = append(eqs, &Cmp{Op: datalog.OpEq, L: y, R: prev})
			} else {
				sub[t.Var] = y
			}
		default:
			return nil, fmt.Errorf("fol: anonymous variable in view atom (projection on the view)")
		}
	}
	var rest []Formula
	rest = append(rest, eqs...)
	for i, part := range conj.Parts {
		if i == vi {
			continue
		}
		rest = append(rest, Substitute(part, sub, fresh))
	}
	body := NewAnd(rest...)
	// Quantify everything that is not a canonical view variable.
	isView := make(map[string]bool, len(viewVars))
	for _, v := range viewVars {
		isView[v] = true
	}
	var exist []string
	for _, v := range SortedFreeVars(body) {
		if !isView[v] {
			exist = append(exist, v)
		}
	}
	return NewExists(exist, body), nil
}
