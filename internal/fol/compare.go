package fol

import (
	"fmt"
	"sort"

	"birds/internal/datalog"
	"birds/internal/value"
)

// This file implements the comparison-predicate encoding from the proof of
// Lemma 3.1 (Appendix A.2): comparisons X < c and X > c are replaced by
// fresh unary predicates C<c(X) and C>c(X), and a GNFO sentence Φ
// axiomatizes those predicates over the totally ordered constants
// c1 < c2 < ... < cn, so that satisfiability with genuine comparisons
// coincides with satisfiability of the encoded formula together with Φ.

// cmpPredName names the encoding predicate for op against constant c.
func cmpPredName(lt bool, c value.Value) string {
	dir := "gt"
	if lt {
		dir = "lt"
	}
	return fmt.Sprintf("__%s_%s", dir, c.String())
}

// EncodeComparisons rewrites every variable-vs-constant comparison in f
// into an encoding atom (folding ≤/≥/≠ into <, > and = first), returning
// the rewritten formula and the sorted integer constants that appeared in
// comparisons. Comparisons between two constants are evaluated; other
// shapes (variable vs variable) are rejected, as in LVGN-Datalog.
func EncodeComparisons(f Formula) (Formula, []value.Value, error) {
	constSet := make(map[int64]bool)
	var rewrite func(Formula) (Formula, error)
	encodeCmp := func(op datalog.CmpOp, x datalog.Term, c value.Value) (Formula, error) {
		if c.Kind() != value.KindInt {
			return nil, fmt.Errorf("fol: comparison axiomatization supports integer constants, got %s", c)
		}
		constSet[c.AsInt()] = true
		mk := func(lt bool) Formula {
			return &Atom{Pred: cmpPredName(lt, c), Args: []datalog.Term{x}}
		}
		eq := Formula(&Cmp{Op: datalog.OpEq, L: x, R: datalog.C(c)})
		switch op {
		case datalog.OpLt:
			return mk(true), nil
		case datalog.OpGt:
			return mk(false), nil
		case datalog.OpLe:
			return NewOr(mk(true), eq), nil
		case datalog.OpGe:
			return NewOr(mk(false), eq), nil
		case datalog.OpNe:
			return NewOr(mk(true), mk(false)), nil
		default:
			return eq, nil
		}
	}
	rewrite = func(f Formula) (Formula, error) {
		switch g := f.(type) {
		case *Cmp:
			if g.Op == datalog.OpEq {
				return g, nil
			}
			switch {
			case g.L.IsConst() && g.R.IsConst():
				return Truth{B: g.Op.Eval(g.L.Const, g.R.Const)}, nil
			case g.L.IsVar() && g.R.IsConst():
				return encodeCmp(g.Op, g.L, g.R.Const)
			case g.L.IsConst() && g.R.IsVar():
				// c op X  ≡  X op' c with the mirrored operator.
				var mirror datalog.CmpOp
				switch g.Op {
				case datalog.OpLt:
					mirror = datalog.OpGt
				case datalog.OpGt:
					mirror = datalog.OpLt
				case datalog.OpLe:
					mirror = datalog.OpGe
				case datalog.OpGe:
					mirror = datalog.OpLe
				default:
					mirror = g.Op
				}
				return encodeCmp(mirror, g.R, g.L.Const)
			default:
				return nil, fmt.Errorf("fol: cannot encode variable-vs-variable comparison %s", g)
			}
		case *Not:
			inner, err := rewrite(g.F)
			if err != nil {
				return nil, err
			}
			return NewNot(inner), nil
		case *And:
			out := make([]Formula, len(g.Fs))
			for i, s := range g.Fs {
				var err error
				if out[i], err = rewrite(s); err != nil {
					return nil, err
				}
			}
			return NewAnd(out...), nil
		case *Or:
			out := make([]Formula, len(g.Fs))
			for i, s := range g.Fs {
				var err error
				if out[i], err = rewrite(s); err != nil {
					return nil, err
				}
			}
			return NewOr(out...), nil
		case *Exists:
			inner, err := rewrite(g.F)
			if err != nil {
				return nil, err
			}
			return NewExists(g.Vars, inner), nil
		default:
			return f, nil
		}
	}
	out, err := rewrite(f)
	if err != nil {
		return nil, nil, err
	}
	consts := make([]value.Value, 0, len(constSet))
	keys := make([]int64, 0, len(constSet))
	for k := range constSet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		consts = append(consts, value.Int(k))
	}
	return out, consts, nil
}

// ComparisonAxiom builds the sentence Φ of Lemma 3.1's proof for the
// sorted integer constants c1 < ... < cn: every domain element X falls
// into exactly one of the 2n+1 order positions (below c1, equal to some
// ci, strictly between ci and ci+1, above cn), with the corresponding
// truth values of every C<cj(X) and C>cj(X). Positions with an empty gap
// (ci+1 = ci + 1) contribute ⊥. The sentence is expressed as
// ¬∃X ¬(ϕ1 ∨ ... ∨ ϕ2n+1).
func ComparisonAxiom(consts []value.Value) Formula {
	n := len(consts)
	if n == 0 {
		return True
	}
	x := datalog.V("X")
	lt := func(i int) Formula {
		return &Atom{Pred: cmpPredName(true, consts[i]), Args: []datalog.Term{x}}
	}
	gt := func(i int) Formula {
		return &Atom{Pred: cmpPredName(false, consts[i]), Args: []datalog.Term{x}}
	}
	eq := func(i int) Formula {
		return &Cmp{Op: datalog.OpEq, L: x, R: datalog.C(consts[i])}
	}

	// position describes the truth value of every C predicate given X's
	// order position: rel(i) = -1 below ci, 0 equal, +1 above.
	position := func(rel func(i int) int) Formula {
		var conj []Formula
		for i := 0; i < n; i++ {
			switch rel(i) {
			case -1:
				conj = append(conj, lt(i), NewNot(eq(i)), NewNot(gt(i)))
			case 0:
				conj = append(conj, NewNot(lt(i)), eq(i), NewNot(gt(i)))
			default:
				conj = append(conj, NewNot(lt(i)), NewNot(eq(i)), gt(i))
			}
		}
		return NewAnd(conj...)
	}

	var cases []Formula
	// X < c1 (integers always have a value below the minimum).
	cases = append(cases, position(func(i int) int { return -1 }))
	for k := 0; k < n; k++ {
		k := k
		// X = ck.
		cases = append(cases, position(func(i int) int {
			switch {
			case i < k:
				return 1
			case i == k:
				return 0
			default:
				return -1
			}
		}))
		// ck < X < ck+1, only when the integer gap is nonempty.
		if k+1 < n && consts[k+1].AsInt()-consts[k].AsInt() > 1 {
			cases = append(cases, position(func(i int) int {
				if i <= k {
					return 1
				}
				return -1
			}))
		}
	}
	// X > cn.
	cases = append(cases, position(func(i int) int { return 1 }))

	return NewNot(NewExists([]string{"X"}, NewNot(NewOr(cases...))))
}

// ComparisonRelations materializes the encoding predicates over a domain:
// for each constant c, C<c = {x ∈ dom : x < c} and C>c = {x ∈ dom : x > c}.
// Used to build models on which an encoded formula can be evaluated.
func ComparisonRelations(consts []value.Value, dom []value.Value) map[string]*value.Relation {
	out := make(map[string]*value.Relation, 2*len(consts))
	for _, c := range consts {
		ltRel := value.NewRelation(1)
		gtRel := value.NewRelation(1)
		for _, d := range dom {
			if d.Compare(c) < 0 {
				ltRel.Add(value.Tuple{d})
			}
			if d.Compare(c) > 0 {
				gtRel.Add(value.Tuple{d})
			}
		}
		out[cmpPredName(true, c)] = ltRel
		out[cmpPredName(false, c)] = gtRel
	}
	return out
}
