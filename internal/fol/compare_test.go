package fol

import (
	"math/rand"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

func TestEncodeComparisonsShapes(t *testing.T) {
	x := datalog.V("X")
	mk := func(op datalog.CmpOp) Formula {
		return &Cmp{Op: op, L: x, R: datalog.CInt(5)}
	}
	// < and > become single atoms; <=, >=, <> become disjunctions.
	for _, c := range []struct {
		op      datalog.CmpOp
		substr  string
		wantsOr bool
	}{
		{datalog.OpLt, "__lt_5", false},
		{datalog.OpGt, "__gt_5", false},
		{datalog.OpLe, "__lt_5", true},
		{datalog.OpGe, "__gt_5", true},
		{datalog.OpNe, "__lt_5", true},
	} {
		enc, consts, err := EncodeComparisons(mk(c.op))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(enc.String(), c.substr) {
			t.Errorf("%v encoding = %s", c.op, enc)
		}
		if _, isOr := enc.(*Or); isOr != c.wantsOr {
			t.Errorf("%v: disjunction = %v, want %v (%s)", c.op, isOr, c.wantsOr, enc)
		}
		if len(consts) != 1 || consts[0].AsInt() != 5 {
			t.Errorf("constants = %v", consts)
		}
	}
	// Mirrored constant-on-left comparison.
	enc, _, err := EncodeComparisons(&Cmp{Op: datalog.OpLt, L: datalog.CInt(3), R: x})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(enc.String(), "__gt_3") {
		t.Errorf("3 < X should encode as __gt_3(X): %s", enc)
	}
	// Ground comparisons fold.
	enc, _, err = EncodeComparisons(&Cmp{Op: datalog.OpLt, L: datalog.CInt(1), R: datalog.CInt(2)})
	if err != nil || enc != True {
		t.Errorf("1 < 2 should fold to ⊤: %v %v", enc, err)
	}
	// Variable-vs-variable rejected.
	if _, _, err := EncodeComparisons(&Cmp{Op: datalog.OpLt, L: x, R: datalog.V("Y")}); err == nil {
		t.Error("X < Y should be rejected")
	}
	// Equality passes through untouched.
	eq := &Cmp{Op: datalog.OpEq, L: x, R: datalog.CInt(1)}
	enc, consts, err := EncodeComparisons(eq)
	if err != nil || enc != Formula(eq) || len(consts) != 0 {
		t.Errorf("equality should pass through: %v %v %v", enc, consts, err)
	}
}

// The encoded formula over faithful comparison relations must agree with
// the original formula on random models, and those models must satisfy the
// axiom Φ — the semantic content of the Lemma 3.1 reduction.
func TestEncodingAgreesWithSemantics(t *testing.T) {
	x := datalog.V("X")
	orig := NewAnd(
		&Atom{Pred: "r", Args: []datalog.Term{x}},
		NewOr(
			&Cmp{Op: datalog.OpLt, L: x, R: datalog.CInt(2)},
			NewAnd(
				&Cmp{Op: datalog.OpGt, L: x, R: datalog.CInt(5)},
				NewNot(&Cmp{Op: datalog.OpGe, L: x, R: datalog.CInt(9)}),
			),
		),
	)
	enc, consts, err := EncodeComparisons(orig)
	if err != nil {
		t.Fatal(err)
	}
	axiom := ComparisonAxiom(consts)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		db := eval.NewDatabase()
		var dom []value.Value
		r := value.NewRelation(1)
		for i := 0; i < 6; i++ {
			v := value.Int(int64(rng.Intn(14) - 2))
			dom = append(dom, v)
			if rng.Intn(2) == 0 {
				r.Add(value.Tuple{v})
			}
		}
		db.Set(datalog.Pred("r"), r)
		full := append(append([]value.Value{}, dom...), consts...)
		for name, rel := range ComparisonRelations(consts, full) {
			db.Set(datalog.Pred(name), rel)
		}
		m := NewModel(db, full...)
		if !m.Eval(axiom, Env{}) {
			t.Fatalf("faithful comparison relations must satisfy Φ (dom=%v)", dom)
		}
		for _, d := range dom {
			env := Env{"X": d}
			if got, want := m.Eval(enc, env), m.Eval(orig, env); got != want {
				t.Fatalf("encoding disagrees at X=%v: enc=%v orig=%v", d, got, want)
			}
		}
	}
}

// Inconsistent comparison relations must violate the axiom.
func TestAxiomRejectsInconsistentRelations(t *testing.T) {
	consts := []value.Value{value.Int(2), value.Int(5)}
	axiom := ComparisonAxiom(consts)
	dom := []value.Value{value.Int(0), value.Int(3), value.Int(7)}

	db := eval.NewDatabase()
	full := append(append([]value.Value{}, dom...), consts...)
	rels := ComparisonRelations(consts, full)
	// Sanity: the uncorrupted relations satisfy Φ.
	{
		clean := eval.NewDatabase()
		for name, rel := range rels {
			clean.Set(datalog.Pred(name), rel.Clone())
		}
		if !NewModel(clean, full...).Eval(axiom, Env{}) {
			t.Fatal("faithful relations should satisfy Φ")
		}
	}
	// Corrupt: claim 0 < 2 is false.
	rels[cmpPredName(true, value.Int(2))].Remove(value.Tuple{value.Int(0)})
	for name, rel := range rels {
		db.Set(datalog.Pred(name), rel)
	}
	m := NewModel(db, append(dom, consts...)...)
	if m.Eval(axiom, Env{}) {
		t.Fatal("corrupted comparison relations must violate Φ")
	}
}

// Adjacent integers leave no room strictly between them: the axiom must
// reject an element claimed to lie between 2 and 3.
func TestAxiomEmptyGap(t *testing.T) {
	consts := []value.Value{value.Int(2), value.Int(3)}
	axiom := ComparisonAxiom(consts)
	db := eval.NewDatabase()
	// A phantom element e with C>2(e) and C<3(e) but e ∉ {2,3}: no integer
	// satisfies this, so any model claiming it must violate Φ. Use a
	// non-integer stand-in to dodge the equality cases.
	e := value.Str("phantom")
	rels := ComparisonRelations(consts, consts)
	rels[cmpPredName(false, value.Int(2))].Add(value.Tuple{e})
	rels[cmpPredName(true, value.Int(3))].Add(value.Tuple{e})
	for name, rel := range rels {
		db.Set(datalog.Pred(name), rel)
	}
	m := NewModel(db, append([]value.Value{e}, consts...)...)
	if m.Eval(axiom, Env{}) {
		t.Fatal("an element strictly between 2 and 3 must violate Φ")
	}
	if ComparisonAxiom(nil) != True {
		t.Error("no constants: Φ is trivially true")
	}
}
