package engine

import (
	"fmt"
	"sort"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
	"birds/internal/wal"
)

// StmtKind discriminates DML statements.
type StmtKind uint8

// DML statement kinds.
const (
	StmtInsert StmtKind = iota
	StmtDelete
	StmtUpdate
)

// Condition is one WHERE conjunct: column op literal.
type Condition struct {
	Col string
	Op  datalog.CmpOp
	Val value.Value
}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Col string
	Val value.Value
}

// Statement is a DML statement against a table or view.
//
// Row is stored by the engine by reference on execution (relations do not
// defensively copy tuples); it must not be mutated after the statement is
// passed to Exec.
type Statement struct {
	Kind   StmtKind
	Target string
	Row    value.Tuple  // INSERT
	Where  []Condition  // DELETE / UPDATE
	Set    []Assignment // UPDATE
}

// Insert builds an INSERT statement. The row values are captured in a
// fresh tuple at the call site when passed as literals; a caller expanding
// an existing slice (Insert(t, row...)) hands over ownership and must not
// mutate that slice afterwards.
func Insert(target string, row ...value.Value) Statement {
	return Statement{Kind: StmtInsert, Target: target, Row: value.Tuple(row)}
}

// Delete builds a DELETE statement.
func Delete(target string, where ...Condition) Statement {
	return Statement{Kind: StmtDelete, Target: target, Where: where}
}

// Update builds an UPDATE statement.
func Update(target string, set []Assignment, where ...Condition) Statement {
	return Statement{Kind: StmtUpdate, Target: target, Set: set, Where: where}
}

// Eq is the common equality condition.
func Eq(col string, v value.Value) Condition {
	return Condition{Col: col, Op: datalog.OpEq, Val: v}
}

// Exec runs the statements as one transaction (BEGIN ... END). All
// statements must target the same relation; for a view target, the
// combined view delta is derived per Algorithm 2 and propagated through
// the view's update strategy to the sources. On any error nothing is
// applied.
//
// With batching enabled (SetBatching), table transactions are admitted to
// the current batch and take effect — including the incremental
// maintenance of dependent views — at the next flush; see Batcher for the
// group-commit contract. Without batching every transaction propagates
// immediately.
func (db *DB) Exec(stmts ...Statement) error {
	// Re-load on a closed batcher: a concurrent SetBatching swaps in a
	// replacement, and the write must route to it (not run directly, which
	// would leapfrog transactions already staged there). Only a nil load —
	// batching disabled — falls through to the direct path.
	for {
		b := db.batcher.Load()
		if b == nil {
			return db.execDirect(stmts)
		}
		if err := b.Exec(stmts...); err != errBatcherClosed {
			return err
		}
		// The loaded batcher is closed. If it is still the installed one
		// (the caller Closed the handle directly instead of StopBatching),
		// uninstall it so the next iteration runs direct; if it was
		// swapped meanwhile, the next iteration picks up the replacement.
		db.batcher.CompareAndSwap(b, nil)
	}
}

// execDirect is the unbatched transaction path: one engine write lock, one
// view-maintenance pass.
func (db *DB) execDirect(stmts []Statement) error {
	if len(stmts) == 0 {
		return nil
	}
	if err := oneTarget(stmts); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ro != nil {
		return db.readOnlyErrLocked()
	}
	target := stmts[0].Target
	if _, ok := db.tables[target]; ok {
		return db.execTable(target, stmts)
	}
	if _, ok := db.views[target]; ok {
		return db.execView(target, stmts)
	}
	return fmt.Errorf("engine: unknown relation %q", target)
}

// oneTarget checks the transaction's statements share a single target.
func oneTarget(stmts []Statement) error {
	target := stmts[0].Target
	for _, s := range stmts[1:] {
		if s.Target != target {
			return fmt.Errorf("engine: a transaction must target a single relation (%q vs %q)", target, s.Target)
		}
	}
	return nil
}

// --- statements against base tables -------------------------------------

// execTable applies the statements to a base table, accumulating the
// transaction's exact net row delta — an insert cancelling an earlier
// delete (and vice versa) nets out, and no-op statements contribute
// nothing — and feeds it into the incremental maintenance of the dependent
// views. A transaction with a net-empty delta leaves every view untouched.
// A statement error rolls the already-applied part of the delta back, so a
// failed transaction leaves the store (and every maintained view) exactly
// as it was — the atomicity Exec promises.
func (db *DB) execTable(name string, stmts []Statement) error {
	decl := db.tables[name]
	p := datalog.Pred(name)
	d := eval.NewDelta(decl.Arity())
	insert := func(r value.Tuple) {
		if db.store.Insert(p, r) {
			if !d.Del.Remove(r) {
				d.Ins.Add(r)
			}
		}
	}
	remove := func(r value.Tuple) {
		if db.store.Delete(p, r) {
			if !d.Ins.Remove(r) {
				d.Del.Add(r)
			}
		}
	}
	match := func(where []Condition) ([]value.Tuple, error) {
		return db.matchRows(name, decl, where)
	}
	rollback := func() {
		d.Ins.Each(func(r value.Tuple) { db.store.Delete(p, r) })
		d.Del.Each(func(r value.Tuple) { db.store.Insert(p, r) })
	}
	if err := runTableStmts(name, decl, stmts, match, insert, remove); err != nil {
		// Roll the applied part of the delta back: atomicity.
		rollback()
		return err
	}
	if d.Empty() {
		return nil
	}
	// One WAL record per direct transaction, before the write is
	// acknowledged. A failed append unwinds the store: the transaction must
	// not survive in memory when it cannot survive a crash.
	if err := db.logWrite(wal.KindTxn, walTxnDelta(name, decl.Arity(), d)); err != nil {
		rollback()
		return err
	}
	changed := map[string]eval.Delta{name: d}
	db.maintainViews(changed, nil)
	db.publishLocked(changed)
	db.autoCheckpointLocked()
	return nil
}

// runTableStmts is the statement loop shared by the direct write path
// (execTable) and batch admission (Batcher.admitTable): the transaction
// semantics — arity validation, WHERE matching, UPDATE as delete-then-
// insert of the matched rows — live here once, parameterized over the
// effective state the statements run against (the store directly, or the
// store overlaid with staged batch deltas).
func runTableStmts(name string, decl *datalog.RelDecl, stmts []Statement,
	match func([]Condition) ([]value.Tuple, error),
	insert, remove func(value.Tuple)) error {
	for _, s := range stmts {
		switch s.Kind {
		case StmtInsert:
			if len(s.Row) != decl.Arity() {
				return fmt.Errorf("engine: INSERT arity mismatch on %q", name)
			}
			insert(s.Row)
		case StmtDelete:
			rows, err := match(s.Where)
			if err != nil {
				return err
			}
			for _, r := range rows {
				remove(r)
			}
		case StmtUpdate:
			rows, err := match(s.Where)
			if err != nil {
				return err
			}
			updated, err := applyAssignments(decl, rows, s.Set)
			if err != nil {
				return err
			}
			for _, r := range rows {
				remove(r)
			}
			for _, r := range updated {
				insert(r)
			}
		}
	}
	return nil
}

// --- statements against views --------------------------------------------

// execView derives the transaction's view delta (Algorithm 2), checks the
// constraints, propagates through the strategy cascade, and applies the
// resulting plan atomically.
func (db *DB) execView(name string, stmts []Statement) error {
	v := db.views[name]
	if db.dirty[name] {
		if err := db.refresh(name); err != nil {
			return err
		}
	}
	ins, del, err := db.viewDelta(name, v.Decl, stmts)
	if err != nil {
		return err
	}

	pl := newPlan()
	if err := db.propagate(name, ins, del, pl); err != nil {
		return err
	}
	return db.applyPlan(pl)
}

// viewDelta implements Algorithm 2: fold the per-statement insertion and
// deletion sets into ΔV, with later statements overriding earlier ones.
func (db *DB) viewDelta(name string, decl *datalog.RelDecl, stmts []Statement) (ins, del *value.Relation, err error) {
	arity := decl.Arity()
	ins, del = value.NewRelation(arity), value.NewRelation(arity)

	// matchEffective returns the rows of (V \ del) ∪ ins matching where.
	matchEffective := func(where []Condition) ([]value.Tuple, error) {
		base, err := db.matchRows(name, decl, where)
		if err != nil {
			return nil, err
		}
		var out []value.Tuple
		for _, r := range base {
			if !del.Contains(r) {
				out = append(out, r)
			}
		}
		for _, r := range ins.Tuples() {
			okRow, err := rowMatches(decl, r, where)
			if err != nil {
				return nil, err
			}
			if okRow {
				out = append(out, r)
			}
		}
		return out, nil
	}

	for _, s := range stmts {
		var plus, minus []value.Tuple
		switch s.Kind {
		case StmtInsert:
			if len(s.Row) != arity {
				return nil, nil, fmt.Errorf("engine: INSERT arity mismatch on %q", name)
			}
			plus = []value.Tuple{s.Row}
		case StmtDelete:
			minus, err = matchEffective(s.Where)
			if err != nil {
				return nil, nil, err
			}
		case StmtUpdate:
			minus, err = matchEffective(s.Where)
			if err != nil {
				return nil, nil, err
			}
			plus, err = applyAssignments(decl, minus, s.Set)
			if err != nil {
				return nil, nil, err
			}
		}
		// ΔV+ ← (ΔV+ \ δ−) ∪ δ+ ; ΔV− ← (ΔV− ∪ δ−) \ δ+ (Algorithm 2,
		// with a statement's own deletions applied before its insertions —
		// an UPDATE rewriting a row to itself is a net no-op, per
		// Appendix D's "deletions followed by insertions").
		for _, r := range minus {
			ins.Remove(r)
			del.Add(r)
		}
		for _, r := range plus {
			ins.Add(r)
			del.Remove(r)
		}
	}
	return ins, del, nil
}

// plan accumulates the changes of one transaction before anything is
// applied, so that a failed constraint or contradiction aborts cleanly.
type plan struct {
	ins map[string]*value.Relation // per relation (base tables and views)
	del map[string]*value.Relation
}

func newPlan() *plan {
	return &plan{ins: make(map[string]*value.Relation), del: make(map[string]*value.Relation)}
}

func (p *plan) add(name string, arity int, ins, del *value.Relation) {
	if p.ins[name] == nil {
		p.ins[name] = value.NewRelation(arity)
		p.del[name] = value.NewRelation(arity)
	}
	p.ins[name].UnionWith(ins)
	p.del[name].UnionWith(del)
}

// propagate evaluates the update strategy of view name against the view
// delta and records the source deltas in the plan, cascading into sources
// that are themselves views.
func (db *DB) propagate(name string, ins, del *value.Relation, pl *plan) error {
	v := db.views[name]
	cur := db.store.RelOrEmpty(datalog.Pred(name), v.Decl.Arity())
	// Normalize: inserting a present tuple and deleting an absent one are
	// no-ops under set semantics.
	normIns := value.NewRelation(v.Decl.Arity())
	ins.Each(func(t value.Tuple) {
		if !cur.Contains(t) {
			normIns.Add(t)
		}
	})
	normDel := value.NewRelation(v.Decl.Arity())
	del.Each(func(t value.Tuple) {
		if cur.Contains(t) {
			normDel.Add(t)
		}
	})
	if normIns.Empty() && normDel.Empty() {
		return nil
	}
	pl.add(name, v.Decl.Arity(), normIns, normDel)

	deltas := make(map[string][2]*value.Relation) // source -> (ins, del)
	if v.Incremental {
		if err := db.evalIncremental(v, normIns, normDel, deltas); err != nil {
			return err
		}
	} else {
		if err := db.evalFull(name, v, normIns, normDel, deltas); err != nil {
			return err
		}
	}

	for _, s := range v.sources {
		d, ok := deltas[s]
		if !ok {
			continue
		}
		if _, isTable := db.tables[s]; isTable {
			pl.add(s, db.tables[s].Arity(), d[0], d[1])
			continue
		}
		if err := db.propagate(s, d[0], d[1], pl); err != nil {
			return err
		}
	}
	return nil
}

// evalIncremental runs ∂put: the store is extended with the view delta
// relations +v / -v, the incremental program is evaluated, and the source
// deltas are collected. Cost is proportional to the view delta once the
// store's indexes are warm.
func (db *DB) evalIncremental(v *View, ins, del *value.Relation, deltas map[string][2]*value.Relation) error {
	// The ∂put and constraint programs overwrite their IDB relations in the
	// shared store; drop the get-side counts that described them.
	db.invalidateForStrategyRun(v)
	name := v.Decl.Name
	// Update keeps any indexes on the view-delta predicates alive across
	// transactions instead of dropping and lazily rebuilding them.
	db.store.Update(datalog.Ins(name), ins)
	db.store.Update(datalog.Del(name), del)
	defer func() {
		db.store.Update(datalog.Ins(name), value.NewRelation(v.Decl.Arity()))
		db.store.Update(datalog.Del(name), value.NewRelation(v.Decl.Arity()))
	}()

	// Admissibility: constraints checked against the inserted tuples.
	if err := v.consEval.Eval(db.store); err != nil {
		return err
	}
	violated, err := v.consEval.Violations(db.store)
	if err != nil {
		return err
	}
	if len(violated) > 0 {
		return fmt.Errorf("engine: view update on %q rejected: constraint %s violated", name, violated[0])
	}

	if err := v.incEval.Eval(db.store); err != nil {
		return err
	}
	collectDeltas(db.store, v, deltas)
	return nil
}

// evalFull runs the original putdelta over (S, V ⊕ ΔV): the view relation
// is temporarily replaced by the updated view, the full strategy is
// evaluated (cost proportional to the base tables), and the source deltas
// are collected.
func (db *DB) evalFull(name string, v *View, ins, del *value.Relation, deltas map[string][2]*value.Relation) error {
	// The strategy evaluation overwrites its IDB relations in the shared
	// store; drop the get-side counts that described them.
	db.invalidateForStrategyRun(v)
	p := datalog.Pred(name)
	old := db.store.RelOrEmpty(p, v.Decl.Arity())
	updated := old.Clone()
	updated.SubtractAll(del)
	updated.UnionWith(ins)
	db.store.Update(p, updated)
	defer db.store.Update(p, old)

	ev := v.Strategy.Evaluator()
	if err := ev.Eval(db.store); err != nil {
		return err
	}
	violated, err := ev.Violations(db.store)
	if err != nil {
		return err
	}
	if len(violated) > 0 {
		return fmt.Errorf("engine: view update on %q rejected: constraint %s violated", name, violated[0])
	}
	collectDeltas(db.store, v, deltas)
	return nil
}

// collectDeltas clones the evaluated ±source relations out of the store.
func collectDeltas(store *eval.Database, v *View, deltas map[string][2]*value.Relation) {
	for _, s := range v.Strategy.Prog.Sources {
		ins := store.RelOrEmpty(datalog.Ins(s.Name), s.Arity()).Clone()
		del := store.RelOrEmpty(datalog.Del(s.Name), s.Arity()).Clone()
		if ins.Empty() && del.Empty() {
			continue
		}
		deltas[s.Name] = [2]*value.Relation{ins, del}
	}
}

// applyPlan validates the accumulated plan (no relation may both insert and
// delete the same tuple) and applies it to the store, maintaining indexes.
// The exact net delta of every applied relation — only rows whose
// membership actually changed — then drives the incremental maintenance of
// the dependent views outside the plan; views inside the plan were updated
// exactly and stay clean.
func (db *DB) applyPlan(pl *plan) error {
	names := make([]string, 0, len(pl.ins))
	for n := range pl.ins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if common := pl.ins[n].Intersect(pl.del[n]); !common.Empty() {
			return fmt.Errorf("engine: contradictory updates on %q: tuple %s both inserted and deleted",
				n, common.Tuples()[0])
		}
	}
	changed := make(map[string]eval.Delta, len(names))
	keep := make(map[string]bool)
	for _, n := range names {
		p := datalog.Pred(n)
		d := eval.NewDelta(pl.ins[n].Arity())
		pl.del[n].Each(func(t value.Tuple) {
			if db.store.Delete(p, t) {
				d.Del.Add(t)
			}
		})
		pl.ins[n].Each(func(t value.Tuple) {
			if db.store.Insert(p, t) {
				d.Ins.Add(t)
			}
		})
		if !d.Empty() {
			changed[n] = d
		}
		if _, isView := db.views[n]; isView {
			keep[n] = true // maintained exactly by the plan
		}
	}
	// One WAL record for the whole view-targeted transaction, holding only
	// its base-table deltas (view rows are derived state — recovery
	// re-materializes them from the recovered base tables). A failed append
	// unwinds everything the plan applied, views included.
	if err := db.logWrite(wal.KindTxn, db.walTableDeltas(changed)); err != nil {
		for n, d := range changed {
			p := datalog.Pred(n)
			d.Ins.Each(func(t value.Tuple) { db.store.Delete(p, t) })
			d.Del.Each(func(t value.Tuple) { db.store.Insert(p, t) })
		}
		return err
	}
	db.maintainViews(changed, keep)
	db.publishLocked(changed)
	db.autoCheckpointLocked()
	return nil
}

// --- row matching ---------------------------------------------------------

// colIndex resolves a column name to its position.
func colIndex(decl *datalog.RelDecl, col string) (int, error) {
	for i, a := range decl.Attrs {
		if a.Name == col {
			return i, nil
		}
	}
	return 0, fmt.Errorf("engine: relation %q has no column %q", decl.Name, col)
}

// rowMatches evaluates the conditions against one row.
func rowMatches(decl *datalog.RelDecl, row value.Tuple, where []Condition) (bool, error) {
	for _, c := range where {
		i, err := colIndex(decl, c.Col)
		if err != nil {
			return false, err
		}
		if !c.Op.Eval(row[i], c.Val) {
			return false, nil
		}
	}
	return true, nil
}

// eqProbe normalizes the equality conjuncts of a WHERE clause into a hash
// probe: sorted, deduplicated key positions and the corresponding key.
// positions is nil when the clause has no equality conjunct (callers must
// scan); none reports a contradictory equality pair, which matches nothing.
func eqProbe(decl *datalog.RelDecl, where []Condition) (positions []int, key value.Tuple, none bool, err error) {
	var eqPos []int
	var eqVals []value.Value
	for _, c := range where {
		if c.Op != datalog.OpEq {
			continue
		}
		i, err := colIndex(decl, c.Col)
		if err != nil {
			return nil, nil, false, err
		}
		eqPos = append(eqPos, i)
		eqVals = append(eqVals, c.Val)
	}
	if len(eqPos) == 0 {
		return nil, nil, false, nil
	}
	if len(eqPos) == 1 { // the common point-lookup: no dedup bookkeeping
		return eqPos, value.Tuple{eqVals[0]}, false, nil
	}
	// Deduplicate positions for the index key (repeated columns in the
	// WHERE clause are legal but would corrupt the mask).
	type pv struct {
		pos int
		val value.Value
	}
	seen := make(map[int]pv)
	ordered := eqPos[:0:0]
	for k, pos := range eqPos {
		if prev, ok := seen[pos]; ok {
			if !prev.val.Equal(eqVals[k]) {
				return nil, nil, true, nil // contradictory equalities match nothing
			}
			continue
		}
		seen[pos] = pv{pos, eqVals[k]}
		ordered = append(ordered, pos)
	}
	sort.Ints(ordered)
	key = make(value.Tuple, len(ordered))
	for k, pos := range ordered {
		key[k] = seen[pos].val
	}
	return ordered, key, false, nil
}

// matchRows returns the stored rows of a relation matching the conditions,
// probing a hash index on the equality columns when possible.
func (db *DB) matchRows(name string, decl *datalog.RelDecl, where []Condition) ([]value.Tuple, error) {
	positions, key, none, err := eqProbe(decl, where)
	if err != nil || none {
		return nil, err
	}
	p := datalog.Pred(name)
	var candidates []value.Tuple
	if positions != nil {
		candidates = db.store.Lookup(p, positions, key)
	} else {
		candidates = db.store.RelOrEmpty(p, decl.Arity()).Tuples()
	}
	var out []value.Tuple
	for _, r := range candidates {
		ok, err := rowMatches(decl, r, where)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// applyAssignments produces the updated versions of rows under SET clauses.
func applyAssignments(decl *datalog.RelDecl, rows []value.Tuple, set []Assignment) ([]value.Tuple, error) {
	out := make([]value.Tuple, 0, len(rows))
	for _, r := range rows {
		nr := r.Clone()
		for _, a := range set {
			i, err := colIndex(decl, a.Col)
			if err != nil {
				return nil, err
			}
			nr[i] = a.Val
		}
		out = append(out, nr)
	}
	return out, nil
}
