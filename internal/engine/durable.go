package engine

import (
	"fmt"
	"sort"
	"sync"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
	"birds/internal/wal"
)

// This file wires the write-ahead log (internal/wal) into the engine's
// write paths, giving the in-memory database crash-consistent durability:
//
//   - every point at which writes become visible appends one WAL record
//     BEFORE the write is acknowledged: execTable (one record per direct
//     transaction), applyPlan (one record per view-targeted transaction,
//     holding the base-table deltas its putback cascade produced),
//     Batcher.flushLocked (ONE record per group-commit batch, so the fsync
//     is amortized across the batch exactly like the maintenance pass),
//     and LoadTable (a bulk-load record);
//   - a failed append leaves the store untouched (the hook sites roll
//     back) and the write reports an error — the WAL never acknowledges a
//     write the store didn't take, and the store never keeps a write the
//     WAL didn't take. The failed append also poisoned the log (the
//     fsyncgate rule: a file whose page-cache state is unknown is never
//     retried), so the engine transitions to read-only degraded mode
//     (degrade.go): reads keep working, writes fail fast with ErrReadOnly
//     until DB.Reopen recovers from disk;
//   - periodic checkpoints snapshot the base tables plus the DDL catalog
//     and garbage-collect fully-covered WAL segments; views and their
//     support counts are NOT checkpointed — Recover re-derives them from
//     base state through the counted IVM initialization. Automatic
//     checkpoints run in the BACKGROUND: the trigger (under the write
//     lock) takes O(1) copy-on-write snapshots of the base tables and
//     rotates the log, then a goroutine encodes and persists them while
//     new appends land in the next segment — a checkpoint never stalls
//     writes for the duration of its disk I/O;
//   - Recover loads the latest valid checkpoint, replays the WAL tail
//     (skipping a torn trailing record, erroring on mid-log corruption)
//     and leaves the engine identical to an uninterrupted run over the
//     same acknowledged prefix of writes.
//
// All WAL appends happen under the engine write lock, which is what makes
// log order identical to commit order without any extra coordination.

// DefaultCheckpointEvery is the automatic-checkpoint trigger used when
// DurabilityOptions.CheckpointEvery is 0: a snapshot is taken (and covered
// segments removed) after this many WAL records.
const DefaultCheckpointEvery = 4096

// DurabilityOptions configures EnableDurability.
type DurabilityOptions struct {
	// Dir is the durability directory (WAL + checkpoints). Created if
	// absent; must not already hold durable state (recover that with
	// Recover instead).
	Dir string
	// Sync selects when the WAL is fsynced: wal.SyncOff (never),
	// wal.SyncOnCommit (every record) or wal.SyncOnFlush (group-commit
	// flush records only, amortizing one fsync across the batch).
	Sync wal.SyncMode
	// CheckpointEvery is the number of WAL records between automatic
	// checkpoints. 0 selects DefaultCheckpointEvery; negative disables
	// automatic checkpoints (explicit Checkpoint only).
	CheckpointEvery int
	// SegmentBytes is the WAL segment rotation threshold. 0 selects
	// wal.DefaultSegmentBytes; negative keeps one unbounded segment.
	SegmentBytes int64
	// FS, when non-nil, substitutes the filesystem behind every durable
	// file operation — the fault-injection seam (wal.FaultFS). nil is the
	// process filesystem.
	FS wal.FS
}

// durability is the engine-side durability state, guarded by db.mu (every
// write path already holds the write lock at its WAL hook) — except
// ckptWG, which Reopen/DisableDurability wait on WITHOUT holding db.mu
// (the background checkpoint goroutine takes db.mu to finish).
type durability struct {
	log       *wal.Log
	opts      DurabilityOptions
	sinceCkpt int   // records appended since the last checkpoint cut
	ckptErr   error // last automatic-checkpoint failure (retried, surfaced by Checkpoint)
	ckptBusy  bool  // a background checkpoint is writing
	ckptWG    sync.WaitGroup
}

// EnableDurability opens a write-ahead log in opts.Dir and takes an
// initial checkpoint of the current state (catalog plus base tables), so
// every subsequent write is recoverable. The directory must not already
// contain durable state — re-open that with Recover, which replays it.
func (db *DB) EnableDurability(opts DurabilityOptions) error {
	if opts.Dir == "" {
		return fmt.Errorf("engine: durability requires a directory")
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dur != nil {
		return fmt.Errorf("engine: durability already enabled (dir %s)", db.dur.opts.Dir)
	}
	if hasDurableState(opts.FS, opts.Dir) {
		return fmt.Errorf("engine: %s already holds durable state; use Recover", opts.Dir)
	}
	log, err := wal.Open(opts.FS, opts.Dir, 1, opts.SegmentBytes)
	if err != nil {
		return err
	}
	db.dur = &durability{log: log, opts: opts}
	if err := db.checkpointLocked(); err != nil {
		db.dur = nil
		log.Close()
		return fmt.Errorf("engine: initial checkpoint: %w", err)
	}
	return nil
}

// HasDurableState reports whether dir holds recoverable durable state (a
// checkpoint or a non-empty WAL): true means open the directory with
// Recover, false means a fresh EnableDurability is safe.
func HasDurableState(dir string) bool { return hasDurableState(nil, dir) }

// hasDurableState reports whether dir holds a checkpoint or a non-empty
// WAL (an unreadable checkpoint also counts — refusing is the safe side).
func hasDurableState(fsys wal.FS, dir string) bool {
	if ck, err := wal.LatestCheckpoint(fsys, dir); err != nil || ck != nil {
		return true
	}
	return wal.HasLogData(fsys, dir)
}

// Durable reports whether a write-ahead log is attached.
func (db *DB) Durable() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dur != nil
}

// LastLSN returns the log sequence number of the most recent WAL record
// (0 when none, or when durability is off). Diagnostics and tests.
func (db *DB) LastLSN() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.dur == nil {
		return 0
	}
	return db.dur.log.LastLSN()
}

// WALLog exposes the attached log for tests and benchmarks; nil when
// durability is off.
func (db *DB) WALLog() *wal.Log {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.dur == nil {
		return nil
	}
	return db.dur.log
}

// DisableDurability syncs and detaches the write-ahead log, waiting out
// any background checkpoint first. The directory remains recoverable
// (checkpoint + log tail). Detaching also clears read-only degraded mode:
// without a log there is nothing left to protect.
func (db *DB) DisableDurability() error {
	db.mu.Lock()
	d := db.dur
	db.dur = nil
	db.ro = nil
	db.mu.Unlock()
	if d == nil {
		return nil
	}
	d.ckptWG.Wait()
	return d.log.Close()
}

// Close flushes any pending batch, syncs and detaches the write-ahead log.
// The DB remains usable as a purely in-memory engine afterwards.
func (db *DB) Close() error {
	berr := db.StopBatching()
	derr := db.DisableDurability()
	if berr != nil {
		return berr
	}
	return derr
}

// Checkpoint synchronously snapshots the base tables and the DDL catalog,
// then removes fully-covered WAL segments. If an earlier automatic
// checkpoint failed, the error surfaces here (the write it followed was
// durable regardless — the log still held every record).
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.dur == nil {
		return fmt.Errorf("engine: durability is not enabled")
	}
	if db.ro != nil {
		return db.readOnlyErrLocked()
	}
	if err := db.checkpointLocked(); err != nil {
		return err
	}
	err := db.dur.ckptErr
	db.dur.ckptErr = nil
	return err
}

// ckptSnap is a checkpoint cut captured under the write lock: the catalog
// and an O(1) copy-on-write snapshot of every base table, stamped at the
// last LSN, plus the first LSN of the active segment after the cut's
// rotation — every sealed segment below it is garbage once the snapshot
// is durable. Encoding and persisting a ckptSnap needs no engine lock.
type ckptSnap struct {
	ck     *wal.Checkpoint
	rels   []*value.Relation // per-table COW snapshots, parallel to ck.Tables
	gcFrom uint64
}

// snapshotLocked cuts a checkpoint at the current last LSN: it rotates
// the log so the cut covers only sealed segments, captures the catalog,
// and snapshots every base table copy-on-write — O(tables), not O(rows).
// Must run under the write lock, at a point where the store contains the
// effects of every appended record (never between an append and its store
// apply).
func (db *DB) snapshotLocked() (*ckptSnap, error) {
	d := db.dur
	gcFrom, err := d.log.RotateForCheckpoint()
	if err != nil {
		return nil, err
	}
	ck := &wal.Checkpoint{
		LSN:             d.log.LastLSN(),
		Sync:            d.opts.Sync,
		CheckpointEvery: d.opts.CheckpointEvery,
		SegmentBytes:    d.opts.SegmentBytes,
		Parallelism:     db.parallelism,
	}
	if b := db.batcher.Load(); b != nil {
		ck.Batching = &wal.BatchConfig{MaxTxns: b.opts.MaxTxns, FlushInterval: b.opts.FlushInterval}
	}
	snap := &ckptSnap{ck: ck, gcFrom: gcFrom}
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		decl := db.tables[n]
		ts := wal.TableState{Name: n}
		for _, a := range decl.Attrs {
			ts.Attrs = append(ts.Attrs, wal.AttrState{Name: a.Name, Type: a.Type})
		}
		ck.Tables = append(ck.Tables, ts)
		snap.rels = append(snap.rels, db.store.RelOrEmpty(datalog.Pred(n), decl.Arity()).Snapshot())
	}
	// Views in dependency order (sources first), so recovery can re-create
	// them with every source already registered.
	for _, n := range db.viewOrder {
		v := db.views[n]
		vs := wal.ViewState{Program: v.Strategy.Prog.String(), Incremental: v.Incremental}
		for _, r := range v.Get {
			vs.Get = append(vs.Get, r.String())
		}
		ck.Views = append(ck.Views, vs)
	}
	return snap, nil
}

// persist encodes the snapshot's rows from its COW relations, writes the
// checkpoint atomically and removes the WAL segments it covers. It takes
// no engine locks: the background checkpoint path runs it concurrently
// with new writes.
func (d *durability) persist(s *ckptSnap) error {
	for i := range s.ck.Tables {
		rel := s.rels[i]
		rows := make([]value.Tuple, 0, rel.Len())
		rel.Each(func(t value.Tuple) { rows = append(rows, t) })
		s.ck.Tables[i].Rows = rows
	}
	if err := wal.WriteCheckpoint(d.opts.FS, d.opts.Dir, s.ck); err != nil {
		return err
	}
	// Covered segments are redundant now; removal failures only cost
	// replay skips on the next recovery.
	d.log.RemoveSegmentsBelow(s.gcFrom)
	return nil
}

// checkpointLocked cuts and persists a checkpoint synchronously, under
// the write lock. DDL, explicit Checkpoint, EnableDurability and Recover
// come through here; the automatic trigger uses the background path.
func (db *DB) checkpointLocked() error {
	snap, err := db.snapshotLocked()
	if err != nil {
		return err
	}
	if err := db.dur.persist(snap); err != nil {
		return err
	}
	db.dur.sinceCkpt = 0
	return nil
}

// logWrite appends one WAL record for a write that is about to be (or has
// just been) applied to the store, fsyncing per the configured mode. It
// must run under the engine write lock. On error nothing was acknowledged;
// the caller must roll its store changes back and fail the write — and the
// engine has transitioned to read-only degraded mode, because the log is
// poisoned (see degrade.go).
func (db *DB) logWrite(kind wal.Kind, tables []wal.TableDelta) error {
	if db.ro != nil {
		return db.readOnlyErrLocked()
	}
	d := db.dur
	if d == nil || len(tables) == 0 {
		return nil
	}
	sync := false
	switch d.opts.Sync {
	case wal.SyncOnCommit:
		sync = true
	case wal.SyncOnFlush:
		sync = kind == wal.KindBatch
	}
	if _, err := d.log.Append(kind, tables, sync); err != nil {
		// The log poisoned itself; fail all further writes until Reopen.
		db.ro = err
		return fmt.Errorf("engine: wal append: %w", err)
	}
	d.sinceCkpt++
	return nil
}

// autoCheckpointLocked starts a background checkpoint when the
// record-count trigger is due: the cut (COW table snapshots + log
// rotation, O(tables)) happens here under the write lock, then a goroutine
// encodes and persists it while subsequent writes append to the fresh
// segment. Must run under the write lock, only after the store reflects
// every appended record. At most one background checkpoint runs at a time;
// a failure is retried on the next trigger and surfaced by the next
// explicit Checkpoint — the writes themselves are durable either way (the
// log still holds them).
func (db *DB) autoCheckpointLocked() {
	d := db.dur
	if d == nil || d.opts.CheckpointEvery <= 0 || d.sinceCkpt < d.opts.CheckpointEvery {
		return
	}
	if d.ckptBusy || db.ro != nil {
		return
	}
	snap, err := db.snapshotLocked()
	if err != nil {
		d.ckptErr = err
		return
	}
	prior := d.sinceCkpt
	d.sinceCkpt = 0
	d.ckptBusy = true
	d.ckptWG.Add(1)
	go func() {
		defer d.ckptWG.Done()
		err := d.persist(snap)
		db.mu.Lock()
		d.ckptBusy = false
		if err != nil {
			d.ckptErr = err
			d.sinceCkpt += prior // re-arm the trigger: the records are still uncovered
		}
		db.mu.Unlock()
	}()
}

// ddlCheckpointLocked persists a DDL change (CreateTable, CreateView) by
// taking a synchronous checkpoint — the catalog lives in checkpoints, not
// in WAL records. Must run under the write lock. Unlike automatic
// checkpoints the error is returned: a DDL statement whose catalog entry
// is not durable must fail (and be rolled back by the caller), or recovery
// would replay row records against a relation it does not know.
func (db *DB) ddlCheckpointLocked() error {
	if db.dur == nil {
		return nil
	}
	if db.ro != nil {
		return db.readOnlyErrLocked()
	}
	return db.checkpointLocked()
}

// walTxnDelta renders one table's net delta as a WAL record body.
func walTxnDelta(name string, arity int, d eval.Delta) []wal.TableDelta {
	return []wal.TableDelta{{Name: name, Arity: arity, Ins: d.Ins.Tuples(), Del: d.Del.Tuples()}}
}

// walTableDeltas renders the base-table subset of a changed-relations map
// as a WAL record body, sorted by table name for determinism. View deltas
// are excluded: views are derived state, rebuilt from base tables on
// recovery.
func (db *DB) walTableDeltas(changed map[string]eval.Delta) []wal.TableDelta {
	names := make([]string, 0, len(changed))
	for n := range changed {
		if _, ok := db.tables[n]; ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]wal.TableDelta, 0, len(names))
	for _, n := range names {
		d := changed[n]
		out = append(out, wal.TableDelta{
			Name:  n,
			Arity: db.tables[n].Arity(),
			Ins:   d.Ins.Tuples(),
			Del:   d.Del.Tuples(),
		})
	}
	return out
}

// --- recovery -------------------------------------------------------------

// RecoverStats summarizes a recovery.
type RecoverStats struct {
	// CheckpointLSN is the LSN of the loaded checkpoint (0 for the initial
	// one).
	CheckpointLSN uint64
	// LastLSN is the LSN of the last WAL record applied; LastLSN -
	// CheckpointLSN records were replayed from the log tail.
	LastLSN uint64
	// Replayed counts the WAL records applied on top of the checkpoint.
	Replayed int
	// TornTail reports that the WAL ended in a torn (unacknowledged)
	// record, which was skipped.
	TornTail bool
}

// Recover rebuilds a database from the durable state in dir: it loads the
// latest valid checkpoint, replays the WAL segments after it (skipping a
// torn trailing record — an append the crashed process never acknowledged
// — and erroring on mid-log corruption), re-creates the views from the
// checkpointed catalog and re-derives their materializations AND support
// counts from base state through the counted IVM initialization. The
// returned engine has durability re-enabled on dir (with the checkpointed
// sync mode and batching options restored) and is identical, relation for
// relation and count for count, to an uninterrupted run over the same
// acknowledged writes.
func Recover(dir string) (*DB, RecoverStats, error) { return RecoverFS(nil, dir) }

// RecoverFS is Recover through an injected filesystem (nil = the process
// filesystem); the recovered engine keeps using it for all durable I/O.
func RecoverFS(fsys wal.FS, dir string) (*DB, RecoverStats, error) {
	var stats RecoverStats
	ck, err := wal.LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, stats, err
	}
	if ck == nil {
		if !wal.HasLogData(fsys, dir) {
			return nil, stats, fmt.Errorf("engine: no durable state in %s", dir)
		}
		// A log without any checkpoint can only be the leftover of a crash
		// inside EnableDurability, before the initial checkpoint landed;
		// no write was ever acknowledged against it.
		ck = &wal.Checkpoint{}
	}
	stats.CheckpointLSN = ck.LSN

	db := NewDB()
	if ck.Parallelism > 0 {
		db.parallelism = ck.Parallelism
	}

	// Base tables: schema from the catalog, rows from the snapshot.
	for _, ts := range ck.Tables {
		decl := &datalog.RelDecl{Name: ts.Name}
		for _, a := range ts.Attrs {
			decl.Attrs = append(decl.Attrs, datalog.AttrDecl{Name: a.Name, Type: a.Type})
		}
		if err := db.CreateTable(decl); err != nil {
			return nil, stats, fmt.Errorf("engine: recover table %q: %w", ts.Name, err)
		}
		p := datalog.Pred(ts.Name)
		for _, row := range ts.Rows {
			db.store.Insert(p, row)
		}
	}

	// WAL tail: net row deltas on top of the checkpointed base state.
	res, err := wal.Replay(fsys, dir, ck.LSN, func(rec *wal.Record) error {
		for _, td := range rec.Tables {
			decl, ok := db.tables[td.Name]
			if !ok {
				return fmt.Errorf("engine: wal record %d targets unknown table %q", rec.LSN, td.Name)
			}
			if decl.Arity() != td.Arity {
				return fmt.Errorf("engine: wal record %d: table %q arity %d, catalog says %d",
					rec.LSN, td.Name, td.Arity, decl.Arity())
			}
			p := datalog.Pred(td.Name)
			for _, t := range td.Del {
				db.store.Delete(p, t)
			}
			for _, t := range td.Ins {
				db.store.Insert(p, t)
			}
		}
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	stats.LastLSN = res.Last
	stats.Replayed = res.Replayed
	stats.TornTail = res.TornTail

	// Views: re-create from the catalog (validation already ran in the
	// original session — the checkpointed get rules carry its result),
	// then initialize the counting IVM over the recovered base state, so
	// the engine resumes on the incremental path with exactly the support
	// counts an uninterrupted run would hold.
	for _, vs := range ck.Views {
		prog, err := datalog.Parse(vs.Program)
		if err != nil {
			return nil, stats, fmt.Errorf("engine: recover view program: %w", err)
		}
		var get []*datalog.Rule
		for _, g := range vs.Get {
			r, err := datalog.ParseRule(g)
			if err != nil {
				return nil, stats, fmt.Errorf("engine: recover get rule %q: %w", g, err)
			}
			get = append(get, r)
		}
		if _, err := db.CreateViewFromProgram(prog, ViewOptions{
			SkipValidation: true,
			ExpectedGet:    get,
			Incremental:    vs.Incremental,
		}); err != nil {
			return nil, stats, fmt.Errorf("engine: recover view: %w", err)
		}
	}
	for _, n := range db.viewOrder {
		v := db.views[n]
		if _, err := v.getEval.EvalDelta(db.store, nil); err != nil {
			// Counted init failed; leave the view on the full-refresh
			// fallback (it is already materialized and clean).
			v.getEval.InvalidateIVM()
			continue
		}
		for _, w := range v.getOverlap {
			w.getEval.InvalidateIVM()
		}
	}

	// Group-commit routing comes back before the fresh checkpoint below, so
	// the new checkpoint carries the batching config forward to the next
	// recovery.
	if ck.Batching != nil {
		db.SetBatching(BatchOptions{MaxTxns: ck.Batching.MaxTxns, FlushInterval: ck.Batching.FlushInterval})
	}

	// Re-attach the log where the replay ended and take a fresh
	// checkpoint: the torn tail (if any) is discarded for good, and the
	// next crash recovers from here.
	opts := DurabilityOptions{
		Dir:             dir,
		Sync:            ck.Sync,
		CheckpointEvery: ck.CheckpointEvery,
		SegmentBytes:    ck.SegmentBytes,
		FS:              fsys,
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = DefaultCheckpointEvery
	}
	log, err := wal.Open(fsys, dir, res.Last+1, ck.SegmentBytes)
	if err != nil {
		return nil, stats, err
	}
	db.mu.Lock()
	db.dur = &durability{log: log, opts: opts}
	if err := db.checkpointLocked(); err != nil {
		db.dur = nil
		db.mu.Unlock()
		log.Close()
		return nil, stats, fmt.Errorf("engine: post-recovery checkpoint: %w", err)
	}
	db.mu.Unlock()

	return db, stats, nil
}
