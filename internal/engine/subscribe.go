package engine

import (
	"fmt"
	"sort"

	"birds/internal/cdc"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// Live view subscriptions (change-data-capture).
//
// The counting IVM computes the exact net delta of every maintained view
// at every visibility point and used to throw it away after maintainViews.
// Subscribe exposes it: each visibility point that publishes a WAL record
// also publishes its per-relation deltas to the cdc.Hub, under the same
// write lock — so hub sequence order is commit order, and a batch's deltas
// share one sequence number (all-or-nothing visibility, same as readers).
//
// The hub is nil until the first Subscribe, and publish hooks bail on a
// nil or quiet hub before allocating anything: the steady-state write path
// with zero subscribers is unchanged.

// Subscribe opens a change-data-capture subscription on a table or view.
// The returned subscription's first event is a Resync carrying an O(1)
// copy-on-write snapshot taken under the engine write lock, so folding the
// event stream into it (cdc.ApplyEvent) reproduces the live relation at
// every event's sequence number. See the cdc package for the delivery
// contract (ordering, bounded buffers, slow-consumer policies, resync).
//
// Exactly one goroutine should consume the subscription via Recv, and must
// Close it when done. Subscribing to a stale view refreshes it first.
// Subscriptions survive read-only degradation (reads keep working) and
// Reopen (the consumer sees a Resync against the recovered state).
func (db *DB) Subscribe(name string, opts cdc.SubOptions) (*cdc.Subscription, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	decl := db.relDecl(name)
	if decl == nil {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	if db.dirty[name] {
		if err := db.refresh(name); err != nil {
			return nil, err
		}
	}
	if db.hub == nil {
		db.hub = cdc.NewHub()
	}
	h := db.hub
	snap := db.store.RelOrEmpty(datalog.Pred(name), decl.Arity()).Snapshot()
	// The resync pull: invoked by the consumer (never the publisher) when
	// the subscription was marked lost and its buffered prefix is drained.
	// It re-acquires the engine lock, refreshes the relation if the loss
	// left it dirty, snapshots it, and re-arms the subscription before the
	// lock is released — so no event published after the snapshot can be
	// missed, and every event already in flight has a smaller seq.
	var sub *cdc.Subscription
	resnap := func() (*value.Relation, uint64, error) {
		db.mu.Lock()
		defer db.mu.Unlock()
		d := db.relDecl(name)
		if d == nil {
			return nil, 0, fmt.Errorf("engine: unknown relation %q", name)
		}
		if db.dirty[name] {
			if err := db.refresh(name); err != nil {
				return nil, 0, err
			}
		}
		s := db.store.RelOrEmpty(datalog.Pred(name), d.Arity()).Snapshot()
		seq := h.Seq()
		sub.Rearm(seq)
		return s, seq, nil
	}
	sub = h.Subscribe(name, snap, opts, resnap)
	return sub, nil
}

// publishLocked fans one visibility point's net deltas out to the
// subscription hub: one Publish call, one sequence number, all changed
// relations together. Views the maintenance pass could only mark dirty
// (fallback: bulk load, dirty source, maintenance error) have no delta —
// their subscribers are marked lost instead, surfacing as an explicit
// Resync rather than silent divergence. Must run under the write lock,
// after maintainViews; with no subscribers it returns before allocating.
func (db *DB) publishLocked(changed map[string]eval.Delta) {
	h := db.hub
	if h == nil || h.Quiet() {
		return
	}
	var ups []cdc.Update
	for name, d := range changed {
		if d.Empty() || !h.Subscribed(name) {
			continue
		}
		ups = append(ups, cdc.Update{View: name, Inserts: d.Ins.Tuples(), Deletes: d.Del.Tuples()})
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].View < ups[j].View })
	var lost []string
	for _, name := range db.viewOrder {
		if db.dirty[name] && h.Subscribed(name) {
			lost = append(lost, name)
		}
	}
	h.Publish(ups, lost)
}

// CDCStats returns the subscription hub's aggregate counters (zero when
// nothing ever subscribed).
func (db *DB) CDCStats() cdc.HubStats {
	db.mu.RLock()
	h := db.hub
	db.mu.RUnlock()
	if h == nil {
		return cdc.HubStats{}
	}
	return h.Stats()
}

// SnapshotAt returns an O(1) copy-on-write snapshot of a relation together
// with the hub sequence number it corresponds to, taken under one write
// lock acquisition (a stale view is refreshed first). The mirror harness
// uses it to compare a subscriber's reconstruction against the live view
// at a known sequence number; with no hub the sequence is 0.
func (db *DB) SnapshotAt(name string) (*value.Relation, uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	decl := db.relDecl(name)
	if decl == nil {
		return nil, 0, fmt.Errorf("engine: unknown relation %q", name)
	}
	if db.dirty[name] {
		if err := db.refresh(name); err != nil {
			return nil, 0, err
		}
	}
	var seq uint64
	if db.hub != nil {
		seq = db.hub.Seq()
	}
	return db.store.RelOrEmpty(datalog.Pred(name), decl.Arity()).Snapshot(), seq, nil
}
