package engine

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"birds/internal/datalog"
	"birds/internal/value"
)

// This file provides the SQL front end of the engine: the DML statements
// the paper's trigger programs respond to (INSERT / DELETE / UPDATE, §6.1
// and Appendix D) parsed from SQL text, including multi-statement
// transactions (BEGIN ...; END).
//
// Supported grammar (case-insensitive keywords; a trailing semicolon per
// statement):
//
//	INSERT INTO t VALUES (1, 'a'), (2, 'b');
//	DELETE FROM t WHERE a = 1 AND b > 'x';
//	UPDATE t SET a = 2, b = 'y' WHERE c <> 3;
//	BEGIN; <statements> END;

// ParseSQL parses a sequence of DML statements. BEGIN/END markers are
// accepted and ignored (Exec always runs its statements as one
// transaction).
func ParseSQL(src string) ([]Statement, error) {
	toks, err := sqlLex(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	var out []Statement
	for !p.eof() {
		if p.peekKw("BEGIN") || p.peekKw("END") {
			p.next()
			p.accept(";")
			continue
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st...)
		if !p.accept(";") && !p.eof() {
			return nil, fmt.Errorf("engine: expected ';' near %q", p.cur())
		}
	}
	return out, nil
}

// ExecSQL parses and executes DML statements as one transaction.
func (db *DB) ExecSQL(src string) error {
	stmts, err := ParseSQL(src)
	if err != nil {
		return err
	}
	return db.Exec(stmts...)
}

// --- lexer -----------------------------------------------------------------

func sqlLex(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == ';' || c == '=':
			toks = append(toks, string(c))
			i++
		case c == '<':
			if i+1 < len(src) && (src[i+1] == '>' || src[i+1] == '=') {
				toks = append(toks, src[i:i+2])
				i += 2
			} else {
				toks = append(toks, "<")
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, ">=")
				i += 2
			} else {
				toks = append(toks, ">")
				i++
			}
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, "<>")
				i += 2
			} else {
				return nil, fmt.Errorf("engine: unexpected '!' in SQL")
			}
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= len(src) {
					return nil, fmt.Errorf("engine: unterminated SQL string literal")
				}
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, "'"+sb.String())
			i = j + 1
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("engine: unexpected character %q in SQL", c)
		}
	}
	return toks, nil
}

// --- parser ----------------------------------------------------------------

type sqlParser struct {
	toks []string
	pos  int
}

func (p *sqlParser) eof() bool { return p.pos >= len(p.toks) }
func (p *sqlParser) cur() string {
	if p.eof() {
		return "<end>"
	}
	return p.toks[p.pos]
}
func (p *sqlParser) next() string {
	t := p.cur()
	p.pos++
	return t
}
func (p *sqlParser) peekKw(kw string) bool {
	return !p.eof() && strings.EqualFold(p.toks[p.pos], kw)
}
func (p *sqlParser) acceptKw(kw string) bool {
	if p.peekKw(kw) {
		p.pos++
		return true
	}
	return false
}
func (p *sqlParser) accept(tok string) bool {
	if !p.eof() && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}
func (p *sqlParser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return fmt.Errorf("engine: expected %s, found %q", kw, p.cur())
	}
	return nil
}
func (p *sqlParser) expect(tok string) error {
	if !p.accept(tok) {
		return fmt.Errorf("engine: expected %q, found %q", tok, p.cur())
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.cur()
	if p.eof() || !identLike(t) {
		return "", fmt.Errorf("engine: expected identifier, found %q", t)
	}
	p.pos++
	return t, nil
}

func identLike(s string) bool {
	if s == "" {
		return false
	}
	c := rune(s[0])
	return unicode.IsLetter(c) || c == '_'
}

func (p *sqlParser) literal() (value.Value, error) {
	t := p.cur()
	switch {
	case p.eof():
		return value.Value{}, fmt.Errorf("engine: expected a literal")
	case strings.HasPrefix(t, "'"):
		p.pos++
		return value.Str(t[1:]), nil
	case t == "-" || t[0] == '-' || unicode.IsDigit(rune(t[0])):
		p.pos++
		if strings.Contains(t, ".") {
			f, err := strconv.ParseFloat(t, 64)
			if err != nil {
				return value.Value{}, fmt.Errorf("engine: bad numeric literal %q", t)
			}
			return value.Float(f), nil
		}
		n, err := strconv.ParseInt(t, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("engine: bad numeric literal %q", t)
		}
		return value.Int(n), nil
	case strings.EqualFold(t, "TRUE"):
		p.pos++
		return value.Bool(true), nil
	case strings.EqualFold(t, "FALSE"):
		p.pos++
		return value.Bool(false), nil
	case strings.EqualFold(t, "NULL"):
		p.pos++
		return value.Null(), nil
	default:
		return value.Value{}, fmt.Errorf("engine: expected a literal, found %q", t)
	}
}

// statement parses one DML statement; INSERT with a multi-row VALUES list
// expands into several statements.
func (p *sqlParser) statement() ([]Statement, error) {
	switch {
	case p.acceptKw("INSERT"):
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("VALUES"); err != nil {
			return nil, err
		}
		var out []Statement
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row value.Tuple
			for {
				v, err := p.literal()
				if err != nil {
					return nil, err
				}
				row = append(row, v)
				if p.accept(",") {
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			out = append(out, Statement{Kind: StmtInsert, Target: table, Row: row})
			if p.accept(",") {
				continue
			}
			break
		}
		return out, nil

	case p.acceptKw("DELETE"):
		if err := p.expectKw("FROM"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		where, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		return []Statement{{Kind: StmtDelete, Target: table, Where: where}}, nil

	case p.acceptKw("UPDATE"):
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("SET"); err != nil {
			return nil, err
		}
		var set []Assignment
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			set = append(set, Assignment{Col: col, Val: v})
			if p.accept(",") {
				continue
			}
			break
		}
		where, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		return []Statement{{Kind: StmtUpdate, Target: table, Set: set, Where: where}}, nil
	}
	return nil, fmt.Errorf("engine: expected INSERT, DELETE or UPDATE, found %q", p.cur())
}

// whereClause parses an optional WHERE with AND-joined conditions.
func (p *sqlParser) whereClause() ([]Condition, error) {
	if !p.acceptKw("WHERE") {
		return nil, nil
	}
	var out []Condition
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		var op datalog.CmpOp
		switch p.next() {
		case "=":
			op = datalog.OpEq
		case "<>":
			op = datalog.OpNe
		case "<":
			op = datalog.OpLt
		case ">":
			op = datalog.OpGt
		case "<=":
			op = datalog.OpLe
		case ">=":
			op = datalog.OpGe
		default:
			return nil, fmt.Errorf("engine: expected comparison operator in WHERE")
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		out = append(out, Condition{Col: col, Op: op, Val: v})
		if p.acceptKw("AND") {
			continue
		}
		break
	}
	return out, nil
}
