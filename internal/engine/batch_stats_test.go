package engine

import (
	"testing"

	"birds/internal/value"
)

// Tests for the Batcher's observability and acknowledgment surface:
// Stats() counters across a forced flush, the coalesced-away-rows
// accounting, and the ExecWait/ExecAsync commit tickets the server's
// acknowledgment point is built on.

// statsBatcher builds the maintainDB fixture with a manual-flush batcher
// (no size trigger, no interval trigger — flushes happen only when the
// test says so).
func statsBatcher(t *testing.T) (*DB, *Batcher) {
	t.Helper()
	db := maintainDB(t)
	return db, db.Batch(BatchOptions{MaxTxns: -1})
}

func TestBatcherStatsAcrossForcedFlush(t *testing.T) {
	_, b := statsBatcher(t)

	if s := b.Stats(); s != (BatcherStats{}) {
		t.Fatalf("fresh batcher stats = %+v, want zero", s)
	}

	// Three admitted transactions; the second and third cancel out, so the
	// flush applies one net row and coalesces two away.
	if err := b.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := b.Exec(Insert("r1", value.Int(2), value.Int(2))); err != nil {
		t.Fatal(err)
	}
	if err := b.Exec(Delete("r1", Eq("a", value.Int(2)))); err != nil {
		t.Fatal(err)
	}

	s := b.Stats()
	want := BatcherStats{Admitted: 3, Seq: 3, Pending: 3}
	if s != want {
		t.Fatalf("pre-flush stats = %+v, want %+v", s, want)
	}

	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	s = b.Stats()
	want = BatcherStats{Admitted: 3, Seq: 3, Flushes: 1, FlushedTxns: 3, FlushedRows: 1, CoalescedRows: 2}
	if s != want {
		t.Fatalf("post-flush stats = %+v, want %+v", s, want)
	}

	// An empty flush is not counted.
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().Flushes; got != 1 {
		t.Fatalf("flushes after empty flush = %d, want 1", got)
	}
}

func TestBatcherStatsDirectPath(t *testing.T) {
	_, b := statsBatcher(t)

	// Stage one table transaction, then write through a view: the direct
	// path flushes the pending batch first, applies alone, and is counted
	// as direct, not admitted.
	if err := b.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := b.Exec(Insert("r2", value.Int(1), value.Int(7))); err != nil {
		t.Fatal(err)
	}
	seq, c, err := b.ExecAsync(Delete("j", Eq("a", value.Int(1))))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.Admitted != 2 || s.Direct != 1 || s.Seq != 3 || seq != 3 {
		t.Fatalf("direct-path stats = %+v (direct seq %d), want admitted 2, direct 1, seq 3", s, seq)
	}
	if s.Flushes != 1 || s.FlushedTxns != 2 || s.Pending != 0 {
		t.Fatalf("direct-path flush stats = %+v, want 1 flush of 2 txns, 0 pending", s)
	}
}

func TestExecWaitBlocksUntilFlush(t *testing.T) {
	_, b := statsBatcher(t)

	type ack struct {
		seq uint64
		err error
	}
	done := make(chan ack, 1)
	go func() {
		seq, err := b.ExecWait(Insert("r1", value.Int(3), value.Int(3)))
		done <- ack{seq, err}
	}()

	// ExecWait must be blocked: the manual batcher has no flush trigger.
	for b.Pending() == 0 {
	}
	select {
	case a := <-done:
		t.Fatalf("ExecWait returned (%d, %v) before any flush", a.seq, a.err)
	default:
	}

	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	a := <-done
	if a.err != nil || a.seq != 1 {
		t.Fatalf("ExecWait = (%d, %v), want (1, nil)", a.seq, a.err)
	}
}

func TestExecAsyncCommitResolvedBySizeTrigger(t *testing.T) {
	db := maintainDB(t)
	b := db.Batch(BatchOptions{MaxTxns: 2})

	_, c1, err := b.ExecAsync(Insert("r1", value.Int(4), value.Int(4)))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c1.Done():
		t.Fatal("first transaction's commit resolved before the batch filled")
	default:
	}
	_, c2, err := b.ExecAsync(Insert("r1", value.Int(5), value.Int(5)))
	if err != nil {
		t.Fatal(err)
	}
	// The second admission hit the size trigger: both commits resolve.
	if err := c1.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatal(err)
	}
	rel, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("r1 has %d rows after size-triggered flush, want 2", rel.Len())
	}
}
