package engine

import (
	"context"
	"testing"
	"time"

	"birds/internal/cdc"
	"birds/internal/value"
)

// Tests for the engine's CDC publish hooks: every visibility point (direct
// transaction, view-targeted transaction, group-commit flush, bulk load)
// either carries the exact net delta or — on the dirty-flag fallback —
// marks subscribers lost so they resync instead of silently diverging.

func cdcRecv(t *testing.T, sub *cdc.Subscription) cdc.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	ev, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return ev
}

// drainTo receives events until the mirror's seq reaches the hub seq,
// folding each into the mirror.
func drainTo(t *testing.T, sub *cdc.Subscription, mirror *value.Relation, target uint64) *value.Relation {
	t.Helper()
	for {
		ev := cdcRecv(t, sub)
		mirror = cdc.ApplyEvent(mirror, ev)
		if ev.Seq >= target {
			return mirror
		}
	}
}

func TestSubscribeViewMirrorsGet(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(10))); err != nil {
		t.Fatal(err)
	}

	sub, err := db.Subscribe("j", cdc.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	first := cdcRecv(t, sub)
	if !first.Resync || first.Snapshot == nil {
		t.Fatalf("first event must be the initial snapshot, got %+v", first)
	}
	mirror := cdc.ApplyEvent(nil, first)

	// Direct transactions on both source tables; each changes j.
	if err := db.Exec(Insert("r1", value.Int(7), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(20))); err != nil {
		t.Fatal(err)
	}
	// View-targeted transaction: delete from j propagates to r1 and
	// publishes the view's own delta.
	if err := db.Exec(Delete("j", Eq("c", value.Int(10)))); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		ev := cdcRecv(t, sub)
		if ev.Resync {
			t.Fatalf("unexpected resync on exact-delta paths: %+v", ev)
		}
		mirror = cdc.ApplyEvent(mirror, ev)
	}
	want, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if !mirror.Equal(want) {
		t.Fatalf("mirror %v != live view %v", mirror, want)
	}
	if st := sub.Stats(); st.LagSeqs != 0 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBulkLoadFallbackResync is the regression test for the maintenance
// fallback: LoadTable marks dependent views dirty without computing a
// view delta, so a view subscriber must be resynced — never left on its
// stale mirror.
func TestBulkLoadFallbackResync(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(10))); err != nil {
		t.Fatal(err)
	}

	viewSub, err := db.Subscribe("j", cdc.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer viewSub.Close()
	tableSub, err := db.Subscribe("r1", cdc.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tableSub.Close()
	viewMirror := cdc.ApplyEvent(nil, cdcRecv(t, viewSub))
	tableMirror := cdc.ApplyEvent(nil, cdcRecv(t, tableSub))

	rows := []value.Tuple{tup(1, 1), tup(2, 1), tup(3, 99)}
	if err := db.LoadTable("r1", rows); err != nil {
		t.Fatal(err)
	}

	// The table subscriber gets the exact inserted delta.
	ev := cdcRecv(t, tableSub)
	if ev.Resync || len(ev.Inserts) != 3 {
		t.Fatalf("table subscriber: want exact 3-row delta, got %+v", ev)
	}
	tableMirror = cdc.ApplyEvent(tableMirror, ev)
	wantR1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !tableMirror.Equal(wantR1) {
		t.Fatalf("table mirror %v != live %v", tableMirror, wantR1)
	}

	// The view subscriber has no delta to get — it must see exactly one
	// resync whose snapshot is the refreshed view.
	ev = cdcRecv(t, viewSub)
	if !ev.Resync {
		t.Fatalf("view subscriber: want resync after bulk load, got %+v", ev)
	}
	viewMirror = cdc.ApplyEvent(viewMirror, ev)
	wantJ, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if !viewMirror.Equal(wantJ) {
		t.Fatalf("view mirror %v != live view %v after resync", viewMirror, wantJ)
	}
	if wantJ.Len() != 2 {
		t.Fatalf("fixture: want 2 join rows, got %v", wantJ)
	}
	if st := viewSub.Stats(); st.Resyncs != 1 {
		t.Fatalf("want exactly one resync, got %+v", st)
	}

	// The stream is healthy again: the next write delivers an exact delta.
	if err := db.Exec(Insert("r2", value.Int(99), value.Int(5))); err != nil {
		t.Fatal(err)
	}
	ev = cdcRecv(t, viewSub)
	if ev.Resync || len(ev.Inserts) != 1 {
		t.Fatalf("want exact delta after resync, got %+v", ev)
	}
}

// TestSlowConsumerDoesNotBlockWrites parks a subscriber (never Recv-ing)
// and checks the write path stays non-blocking under the default drop
// policy, then drains: buffered prefix, exactly one resync, mirror
// bit-identical to the live view.
func TestSlowConsumerDoesNotBlockWrites(t *testing.T) {
	db := maintainDB(t)
	sub, err := db.Subscribe("j", cdc.SubOptions{Buffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const writes = 300
	start := time.Now()
	for i := 0; i < writes; i++ {
		if err := db.Exec(Insert("r1", value.Int(int64(i)), value.Int(1))); err != nil {
			t.Fatal(err)
		}
		if err := db.Exec(Insert("r2", value.Int(1), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	// Generous wall-time bound: 600 unbatched IVM transactions take well
	// under this; a write path blocking on the stalled subscriber would
	// not (default block deadline would add 10ms per overflowing publish).
	if el := time.Since(start); el > 30*time.Second {
		t.Fatalf("writes took %v with a stalled subscriber", el)
	}

	st := sub.Stats()
	if st.Buffered > 8 {
		t.Fatalf("ring overflowed its bound: %+v", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("expected drops with a stalled subscriber: %+v", st)
	}

	_, target, err := db.SnapshotAt("j")
	if err != nil {
		t.Fatal(err)
	}
	// The first event is the initial snapshot (a Resync by construction);
	// loss resyncs are counted from the second event on.
	mirror := cdc.ApplyEvent(nil, cdcRecv(t, sub))
	resyncs := 0
	for {
		ev := cdcRecv(t, sub)
		if ev.Resync {
			resyncs++
		}
		mirror = cdc.ApplyEvent(mirror, ev)
		if ev.Seq >= target {
			break
		}
	}
	if resyncs != 1 {
		t.Fatalf("want exactly one resync on drain, got %d", resyncs)
	}
	want, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if !mirror.Equal(want) {
		t.Fatalf("mirror has %d rows, live view %d", mirror.Len(), want.Len())
	}
	if hs := db.CDCStats(); hs.Resyncs != 1 || hs.Subscribers != 1 {
		t.Fatalf("hub stats: %+v", hs)
	}
}

// TestBlockPolicyBoundsWriteDelay: a stalled block-policy subscriber may
// delay the writer once (its deadline), then is lost and never consulted
// again until it resyncs.
func TestBlockPolicyBoundsWriteDelay(t *testing.T) {
	db := maintainDB(t)
	sub, err := db.Subscribe("r1", cdc.SubOptions{
		Buffer:        1,
		Policy:        cdc.BlockWithDeadline,
		BlockDeadline: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const writes = 20
	start := time.Now()
	for i := 0; i < writes; i++ {
		if err := db.Exec(Insert("r1", value.Int(int64(i)), value.Int(0))); err != nil {
			t.Fatal(err)
		}
	}
	// One deadline wait for the first overflow, then drop-until-resync:
	// nowhere near writes×deadline.
	if el := time.Since(start); el > writes*50*time.Millisecond/2 {
		t.Fatalf("block policy delayed %d writes by %v — deadline must bound total delay to one wait", writes, el)
	}

	_, target, err := db.SnapshotAt("r1")
	if err != nil {
		t.Fatal(err)
	}
	mirror := drainTo(t, sub, nil, target)
	want, _ := db.Get("r1")
	if !mirror.Equal(want) {
		t.Fatalf("mirror %d rows != live %d rows", mirror.Len(), want.Len())
	}
	if st := sub.Stats(); st.Resyncs != 1 {
		t.Fatalf("want exactly one resync, got %+v", st)
	}
}

// TestBatchFlushIsOneVisibilityPoint: transactions coalesced by a Batcher
// become visible together, so subscribers see them as one event with one
// sequence number per relation.
func TestBatchFlushIsOneVisibilityPoint(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(10))); err != nil {
		t.Fatal(err)
	}
	r1Sub, err := db.Subscribe("r1", cdc.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r1Sub.Close()
	jSub, err := db.Subscribe("j", cdc.SubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer jSub.Close()
	cdcRecv(t, r1Sub) // initial snapshots
	cdcRecv(t, jSub)

	b := db.Batch(BatchOptions{MaxTxns: -1})
	for i := 0; i < 5; i++ {
		if err := b.Exec(Insert("r1", value.Int(int64(i)), value.Int(1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	evR1 := cdcRecv(t, r1Sub)
	evJ := cdcRecv(t, jSub)
	if evR1.Resync || len(evR1.Inserts) != 5 {
		t.Fatalf("want one 5-row batch delta on r1, got %+v", evR1)
	}
	if evJ.Resync || len(evJ.Inserts) != 5 {
		t.Fatalf("want one 5-row maintained delta on j, got %+v", evJ)
	}
	if evR1.Seq != evJ.Seq {
		t.Fatalf("one flush split into seqs %d and %d", evR1.Seq, evJ.Seq)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeUnknownRelation: the error surfaces at Subscribe, not on
// the stream.
func TestSubscribeUnknownRelation(t *testing.T) {
	db := maintainDB(t)
	if _, err := db.Subscribe("nope", cdc.SubOptions{}); err == nil {
		t.Fatal("want error for unknown relation")
	}
	// No hub state should leak from the failed subscribe.
	if st := db.CDCStats(); st.Subscribers != 0 {
		t.Fatalf("failed subscribe leaked state: %+v", st)
	}
}
