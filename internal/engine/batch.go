package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
	"birds/internal/wal"
)

// errBatcherClosed is returned by a closed Batcher handle; DB.Exec routing
// treats it as "batching was just disabled" and retries directly.
var errBatcherClosed = errors.New("engine: batcher is closed")

// This file is the group-commit write pipeline: a Batcher admits table
// transactions without taking the engine's exclusive lock, stages their
// validated net row deltas in a coalesced per-table buffer (an insert
// cancelling a staged delete nets out, no-op statements contribute
// nothing), and flushes the whole buffer as ONE view-maintenance pass —
// so N writes cost one delta propagation instead of N. PR 3 made every
// write O(|Δ|); batching amortizes the per-pass fixed cost (per-view
// EvalDelta invocation, delta bookkeeping, lock traffic) across the batch,
// and hands the maintenance pass a wide coalesced delta the parallel
// propagation path of internal/eval can fan out across workers.
//
// Consistency contract (group commit):
//
//   - Admission is atomic per transaction: a statement error (bad arity,
//     unknown column, contradictory WHERE) rolls back only that
//     transaction's staged contribution; the rest of the batch is
//     unaffected.
//   - Readers (Get, Rel, Snapshot) observe only fully-flushed batches.
//     Staged transactions live outside the store until flush, and the
//     flush applies the whole batch — base rows plus the incremental
//     maintenance of every dependent view — under the engine's write lock,
//     so a copy-on-write snapshot taken at any moment holds either none or
//     all of a batch, never a partial one.
//   - Within a batch, transactions read their own and earlier admitted
//     transactions' effects (statement matching runs against the last
//     flushed state overlaid with the staged delta), so admitting
//     transactions t1..tn and flushing is equivalent to executing t1..tn
//     serially one-at-a-time — the property the differential harness in
//     batch_test.go pins down.
//   - View-targeted transactions and reads of the engine bypass staging:
//     a view update first flushes the pending batch (its trigger must
//     evaluate against flushed state), then runs the normal propagation
//     path. Direct writes that bypass a handle Batcher (LoadTable, Exec on
//     another DB handle) serialize at the flush point: the flush re-checks
//     every staged row against the store, so views are still maintained
//     with exact net deltas, but statement matching of already-admitted
//     transactions will not have seen those writes.
//
// Lock discipline: admissions serialize on the batcher's own mutex and
// read the store under the engine's read lock (statement matching probes
// existing hash indexes read-only and falls back to a scan, scheduling the
// index build for after admission), so admissions run concurrently with
// readers and never pay the maintenance lock; only the flush takes the
// engine write lock. Lock order is always batcher.mu → engine.mu.

// DefaultBatchSize is the size trigger used when BatchOptions.MaxTxns is 0.
const DefaultBatchSize = 64

// BatchOptions configures a Batcher.
type BatchOptions struct {
	// MaxTxns flushes the batch when this many transactions have been
	// admitted since the last flush. 0 selects DefaultBatchSize; negative
	// disables the size trigger (flush on interval or explicitly).
	MaxTxns int
	// FlushInterval, when positive, flushes a non-empty batch this long
	// after its first admission, bounding the staleness a batched write
	// can have for readers.
	FlushInterval time.Duration
}

// Batcher is a group-commit handle on a DB: Exec admits transactions into
// the current batch, Flush propagates the coalesced batch as one
// view-maintenance pass. Safe for concurrent use.
type Batcher struct {
	db   *DB
	opts BatchOptions

	mu sync.Mutex
	// stage holds the coalesced per-table net deltas of the batch in
	// flight, as relations Ins(t)/Del(t) in a private eval.Database —
	// which maintains hash indexes over them incrementally, so statement
	// matching probes the staged rows in O(1) instead of scanning them
	// (the difference between O(1) and O(batch) per admission).
	stage    *eval.Database
	staged   map[string]int // tables with staged deltas → arity
	txns     int            // transactions admitted since the last flush
	wantIx   []wantedIndex  // WHERE probes that missed a store index during admission
	timer    *time.Timer
	armed    bool
	deadline time.Time // when the armed interval trigger is due
	closed   bool

	// ticket is the commit handle of the batch in flight: every admitted
	// transaction shares it, and the flush that applies (or fails) the
	// batch resolves it. Created lazily at the first admission after a
	// flush; nil while no transaction is staged.
	ticket *flushTicket

	// Counters behind Stats(). seq is the admission sequence number: it
	// increments under b.mu for every successfully admitted (or, for view
	// targets, directly executed) transaction, so it is exactly the
	// serialization order the group-commit contract promises — replaying
	// transactions in seq order on a fresh engine reproduces the state.
	seq           uint64
	admitted      uint64 // table transactions admitted into batches
	direct        uint64 // view-targeted transactions (flush + direct path)
	flushes       uint64 // flushes that had at least one staged transaction
	flushedTxns   uint64 // transactions carried by those flushes
	flushedRows   uint64 // net delta rows applied by those flushes
	coalescedRows uint64 // staged rows cancelled or pruned before apply
	stagedRows    uint64 // rows contributed by the batch in flight
}

// BatcherStats is a snapshot of a Batcher's counters (see Stats).
type BatcherStats struct {
	// Admitted counts table transactions admitted into batches; Direct
	// counts view-targeted transactions, which flush the pending batch and
	// run the unbatched propagation path. Seq is the admission sequence
	// number of the most recent transaction (Admitted + Direct).
	Admitted, Direct, Seq uint64
	// Flushes counts flushes that carried at least one transaction;
	// FlushedTxns the transactions those flushes applied; FlushedRows the
	// net delta rows they handed to view maintenance; CoalescedRows the
	// staged rows that cancelled against each other (or were pruned
	// against the store) and therefore never cost a maintenance pass.
	Flushes, FlushedTxns, FlushedRows, CoalescedRows uint64
	// Pending is the current queue depth: transactions admitted since the
	// last flush.
	Pending int
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatcherStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatcherStats{
		Admitted:      b.admitted,
		Direct:        b.direct,
		Seq:           b.seq,
		Flushes:       b.flushes,
		FlushedTxns:   b.flushedTxns,
		FlushedRows:   b.flushedRows,
		CoalescedRows: b.coalescedRows,
		Pending:       b.txns,
	}
}

// flushTicket is the shared commit handle of one batch: done closes when the
// batch's flush completes, with err set write-once before the close.
type flushTicket struct {
	done chan struct{}
	err  error
}

// resolvedTicket builds an already-resolved ticket carrying err.
func resolvedTicket(err error) *flushTicket {
	t := &flushTicket{done: make(chan struct{}), err: err}
	close(t.done)
	return t
}

// Commit is the flush handle an admitted transaction can wait on: Done
// closes when the batch holding the transaction has been flushed (its WAL
// record appended and its effects visible to readers), Err reports the
// flush outcome and is valid only after Done. A flush error means the
// transaction was NOT acknowledged — it stays staged and may still commit
// with a later flush retry, so callers must treat it as indeterminate.
type Commit struct{ t *flushTicket }

// Done returns a channel that closes when the transaction's batch has been
// flushed.
func (c Commit) Done() <-chan struct{} { return c.t.done }

// Err reports the flush outcome; call it only after Done is closed.
func (c Commit) Err() error { return c.t.err }

// Wait blocks until the transaction's batch is flushed and returns the
// flush outcome.
func (c Commit) Wait() error {
	<-c.t.done
	return c.t.err
}

// resolveTicketLocked resolves the current batch's commit handle, if any
// transaction is waiting on it. Must be called with b.mu held.
func (b *Batcher) resolveTicketLocked(err error) {
	if b.ticket == nil {
		return
	}
	b.ticket.err = err
	close(b.ticket.done)
	b.ticket = nil
}

type wantedIndex struct {
	pred      datalog.PredSym
	positions []int
}

// Batch returns a new group-commit handle on the database. The handle is
// independent of SetBatching: transactions admitted through it are staged
// until its Flush/Close (or its size/interval triggers), while db.Exec
// keeps its configured behavior.
func (db *DB) Batch(opts BatchOptions) *Batcher {
	if opts.MaxTxns == 0 {
		opts.MaxTxns = DefaultBatchSize
	}
	return &Batcher{db: db, opts: opts, stage: eval.NewDatabase(), staged: make(map[string]int)}
}

// SetBatching routes every subsequent db.Exec through a new group-commit
// Batcher with the given options and returns it. A previously installed
// batcher is flushed and closed. Use StopBatching (or SetBatching on a
// fresh handle) to restore immediate per-transaction propagation.
func (db *DB) SetBatching(opts BatchOptions) *Batcher {
	b := db.Batch(opts)
	if old := db.batcher.Swap(b); old != nil {
		old.Close()
	}
	return b
}

// StopBatching flushes and uninstalls the batcher installed by SetBatching,
// restoring immediate per-transaction propagation. It is a no-op when
// batching is not enabled.
func (db *DB) StopBatching() error {
	if old := db.batcher.Swap(nil); old != nil {
		return old.Close()
	}
	return nil
}

// Flush propagates the pending batch of the installed batcher, if any.
func (db *DB) Flush() error {
	if b := db.batcher.Load(); b != nil {
		return b.Flush()
	}
	return nil
}

// Batching reports whether Exec currently routes through a batcher.
func (db *DB) Batching() bool { return db.batcher.Load() != nil }

// Exec admits one transaction into the current batch. Table transactions
// are validated and staged (visible to later admissions, invisible to
// readers until flush); the batch flushes when the size or interval
// trigger fires, or on Flush/Close. A view-targeted transaction flushes
// the pending batch first and then runs the unbatched propagation path.
// Statement errors roll back only this transaction's staged contribution.
//
// Exec acknowledges admission, not commit: the transaction's effects (and,
// with durability enabled, its WAL record) land at the batch's flush. It
// surfaces a flush error only when the admission itself triggered the
// flush; callers that must not acknowledge a write before it is flushed —
// a network server under the durability contract — use ExecWait.
func (b *Batcher) Exec(stmts ...Statement) error {
	_, c, err := b.ExecAsync(stmts...)
	if err != nil {
		return err
	}
	select {
	case <-c.Done(): // this admission flushed the batch (or ran direct)
		return c.Err()
	default: // staged; a later trigger will flush
		return nil
	}
}

// ExecWait admits one transaction like Exec, then blocks until the batch
// holding it has flushed — so a nil return means the transaction is applied,
// visible to readers, and (with durability enabled) in the write-ahead log,
// fsynced per the configured mode. It returns the transaction's admission
// sequence number: replaying transactions in sequence order on a fresh
// engine reproduces the database state (the group-commit serialization
// contract, pinned by the server's differential harness).
func (b *Batcher) ExecWait(stmts ...Statement) (uint64, error) {
	seq, c, err := b.ExecAsync(stmts...)
	if err != nil {
		return seq, err
	}
	return seq, c.Wait()
}

// ExecAsync admits one transaction and returns without waiting for the
// flush: seq is the admission sequence number and c the commit handle to
// wait on. A non-nil err means the transaction was rejected (statement
// error, unknown relation, closed batcher) and nothing was staged; c then
// carries the same error, already resolved. For a view-targeted
// transaction — which flushes the batch and runs the direct path — and for
// an admission that itself triggered the size flush, c is already resolved
// on return.
func (b *Batcher) ExecAsync(stmts ...Statement) (seq uint64, c Commit, err error) {
	fail := func(err error) (uint64, Commit, error) {
		return 0, Commit{t: resolvedTicket(err)}, err
	}
	if len(stmts) == 0 {
		return 0, Commit{t: resolvedTicket(nil)}, nil
	}
	if err := oneTarget(stmts); err != nil {
		return fail(err)
	}
	target := stmts[0].Target

	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fail(errBatcherClosed)
	}

	db := b.db
	db.mu.RLock()
	var roErr error
	if db.ro != nil {
		roErr = db.readOnlyErrLocked()
	}
	decl, isTable := db.tables[target]
	_, isView := db.views[target]
	db.mu.RUnlock()
	if roErr != nil {
		// Degraded mode: fail fast at admission rather than staging work
		// that the flush would reject anyway.
		return fail(roErr)
	}
	switch {
	case isTable:
	case isView:
		// View updates must evaluate their trigger against flushed state,
		// and their putback plan applies (and maintains views) immediately.
		if err := b.flushLocked(); err != nil {
			return fail(err)
		}
		if err := db.execDirect(stmts); err != nil {
			return fail(err)
		}
		b.seq++
		b.direct++
		return b.seq, Commit{t: resolvedTicket(nil)}, nil
	default:
		return fail(fmt.Errorf("engine: unknown relation %q", target))
	}

	rows, err := b.admitTable(target, decl, stmts)
	if err != nil {
		return fail(err)
	}
	b.buildWantedIndexes()
	b.txns++
	b.seq++
	b.admitted++
	b.stagedRows += uint64(rows)
	seq = b.seq
	if b.ticket == nil {
		b.ticket = &flushTicket{done: make(chan struct{})}
	}
	c = Commit{t: b.ticket}
	if b.opts.MaxTxns > 0 && b.txns >= b.opts.MaxTxns {
		// The flush resolves c (with its error, if any); admission itself
		// succeeded, so err stays nil.
		_ = b.flushLocked()
		return seq, c, nil
	}
	b.armTimerLocked()
	return seq, c, nil
}

// Pending reports the number of transactions admitted since the last flush.
func (b *Batcher) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.txns
}

// Flush applies the staged batch: base-table rows enter the store and every
// dependent view is maintained incrementally in ONE pass over the coalesced
// net delta, all under the engine write lock, so readers switch from the
// pre-batch to the post-batch state atomically.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

// Close flushes the pending batch and permanently closes the handle.
func (b *Batcher) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	err := b.flushLocked()
	b.closed = true
	return err
}

// Discard drops the staged batch without flushing it and closes the
// handle. The staged transactions were never WAL-logged, so dropping them
// keeps the store and the log in agreement — this is the degraded-mode
// retirement path (DB.Reopen), where flushing is impossible. A pending
// commit ticket resolves with cause (errBatcherClosed when nil), so
// waiters learn their transactions were not applied.
func (b *Batcher) Discard(cause error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.disarmTimerLocked()
	if b.txns > 0 {
		if cause == nil {
			cause = errBatcherClosed
		}
		b.resolveTicketLocked(fmt.Errorf("engine: batch discarded before flush: %w", cause))
	} else {
		b.resolveTicketLocked(nil)
	}
	b.stage = eval.NewDatabase()
	b.staged = make(map[string]int)
	b.txns = 0
	b.stagedRows = 0
	b.closed = true
}

// flushLocked is Flush with b.mu held. It resolves the batch's commit
// handle: with nil once the batch is applied and visible, or with the WAL
// append error when the flush failed — the batch then stays staged, so
// waiters that saw the error must treat their transactions as
// indeterminate (a later flush retries the identical batch).
func (b *Batcher) flushLocked() error {
	b.disarmTimerLocked()
	if b.txns == 0 {
		b.resolveTicketLocked(nil)
		return nil
	}
	names := make([]string, 0, len(b.staged))
	for n := range b.staged {
		names = append(names, n)
	}
	sort.Strings(names)

	db := b.db
	db.mu.Lock()
	defer db.mu.Unlock()

	// Phase 1 (read-only): make the staged deltas exact against the current
	// store, pruning rows a direct writer preempted between admission and
	// flush (a staged delete of a row no longer present, a staged insert of
	// a row now present). In the common case nothing is pruned and the
	// staged relations themselves become the delta (the stage gets fresh
	// ones below). The store is not touched yet: the WAL record must be
	// appended before any effect becomes visible, and a failed append must
	// leave both the store and the staged batch exactly as they were.
	changed := make(map[string]eval.Delta, len(names))
	var pruned []value.Tuple
	for _, n := range names {
		arity := b.staged[n]
		rel := db.store.RelOrEmpty(datalog.Pred(n), arity)
		ins := b.stage.RelOrEmpty(datalog.Ins(n), arity)
		del := b.stage.RelOrEmpty(datalog.Del(n), arity)
		pruned = pruned[:0]
		del.Each(func(t value.Tuple) {
			if !rel.Contains(t) {
				pruned = append(pruned, t)
			}
		})
		for _, t := range pruned {
			del.Remove(t)
		}
		pruned = pruned[:0]
		ins.Each(func(t value.Tuple) {
			if rel.Contains(t) {
				pruned = append(pruned, t)
			}
		})
		for _, t := range pruned {
			ins.Remove(t)
		}
		if !ins.Empty() || !del.Empty() {
			changed[n] = eval.Delta{Ins: ins, Del: del}
		}
	}

	// Phase 2: one WAL record for the whole batch (this is where the
	// group-commit fsync amortization happens — one sync per batch, not per
	// transaction). On failure the batch stays staged and the store is
	// untouched; the caller sees the error and nothing was acknowledged, so
	// a later flush can retry the identical batch.
	if err := db.logWrite(wal.KindBatch, db.walTableDeltas(changed)); err != nil {
		b.resolveTicketLocked(err)
		return err
	}

	// Phase 3: apply. Every row applies by construction (phase 1 checked it
	// against the store, which no one has touched since — we hold the write
	// lock). Then reset the staged relations through Update, which keeps
	// their hot probe indexes alive (rebuilt over the empty relation) for
	// the next batch's admissions; the old relations live on as the delta.
	for _, n := range names {
		arity := b.staged[n]
		p := datalog.Pred(n)
		if d, ok := changed[n]; ok {
			d.Del.Each(func(t value.Tuple) { db.store.Delete(p, t) })
			d.Ins.Each(func(t value.Tuple) { db.store.Insert(p, t) })
		}
		b.stage.Update(datalog.Ins(n), value.NewRelation(arity))
		b.stage.Update(datalog.Del(n), value.NewRelation(arity))
	}
	clear(b.staged)
	var net uint64
	for _, d := range changed {
		net += uint64(d.Ins.Len() + d.Del.Len())
	}
	b.flushes++
	b.flushedTxns += uint64(b.txns)
	b.flushedRows += net
	b.coalescedRows += b.stagedRows - net
	b.stagedRows = 0
	b.txns = 0
	if len(changed) > 0 {
		db.maintainViews(changed, nil)
		db.publishLocked(changed)
	}
	db.autoCheckpointLocked()
	b.resolveTicketLocked(nil)
	return nil
}

// armTimerLocked starts the interval trigger for the batch in flight.
func (b *Batcher) armTimerLocked() {
	if b.opts.FlushInterval <= 0 || b.armed || b.txns == 0 {
		return
	}
	b.armed = true
	b.deadline = time.Now().Add(b.opts.FlushInterval)
	if b.timer == nil {
		b.timer = time.AfterFunc(b.opts.FlushInterval, b.timerFlush)
		return
	}
	b.timer.Reset(b.opts.FlushInterval)
}

// timerFlush is the interval trigger's callback. A firing can be stale:
// the timer may have gone off for an earlier batch just as it was being
// disarmed (Stop reports the miss but cannot recall the callback), in
// which case a later arm's Reset leaves this invocation pending alongside
// the rescheduled one. The deadline check makes stale firings reschedule
// to the live batch's due time instead of flushing it early.
func (b *Batcher) timerFlush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed || !b.armed {
		return
	}
	if d := time.Until(b.deadline); d > 0 {
		b.timer.Reset(d)
		return
	}
	b.armed = false
	// Flushing staged table deltas cannot fail; maintenance errors degrade
	// views to the dirty/refresh fallback.
	_ = b.flushLocked()
}

// disarmTimerLocked stops the interval trigger, if armed.
func (b *Batcher) disarmTimerLocked() {
	if b.timer != nil && b.armed {
		b.timer.Stop()
	}
	b.armed = false
}

// buildWantedIndexes builds, under the engine write lock, the hash indexes
// admission probes fell back to scanning for — once per (table, column
// set), so subsequent admissions probe read-only.
func (b *Batcher) buildWantedIndexes() {
	if len(b.wantIx) == 0 {
		return
	}
	b.db.mu.Lock()
	for _, w := range b.wantIx {
		b.db.store.Index(w.pred, w.positions)
	}
	b.db.mu.Unlock()
	b.wantIx = b.wantIx[:0]
}

// admitTable validates and stages one table transaction: its statements
// run against the effective relation state (last flushed store overlaid
// with the staged batch delta and the transaction's own local delta), and
// the resulting net row delta merges into the staged batch only if every
// statement succeeded. The store is only read, under the engine read lock.
// It returns the number of net delta rows the transaction contributed
// (before cross-transaction cancellation), which feeds the coalescing
// counters behind Stats.
func (b *Batcher) admitTable(name string, decl *datalog.RelDecl, stmts []Statement) (int, error) {
	arity := decl.Arity()
	pendIns := b.stage.Ensure(datalog.Ins(name), arity)
	pendDel := b.stage.Ensure(datalog.Del(name), arity)
	l := eval.NewDelta(arity) // this transaction's local delta

	db := b.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	p := datalog.Pred(name)

	effContains := func(t value.Tuple) bool {
		switch {
		case l.Ins.Contains(t):
			return true
		case l.Del.Contains(t):
			return false
		case pendIns.Contains(t):
			return true
		case pendDel.Contains(t):
			return false
		}
		rel := db.store.Rel(p)
		return rel != nil && rel.Contains(t)
	}
	insert := func(t value.Tuple) {
		if effContains(t) {
			return
		}
		if !l.Del.Remove(t) {
			l.Ins.Add(t)
		}
	}
	remove := func(t value.Tuple) {
		if !effContains(t) {
			return
		}
		if !l.Ins.Remove(t) {
			l.Del.Add(t)
		}
	}

	match := func(where []Condition) ([]value.Tuple, error) {
		return b.matchEffective(name, decl, where, l)
	}
	if err := runTableStmts(name, decl, stmts, match, insert, remove); err != nil {
		return 0, err // l is discarded: nothing staged, per-txn rollback
	}

	// Commit: merge the transaction's local delta into the staged batch,
	// cancelling insert/delete pairs across transactions. Insert/Delete on
	// the stage maintain its probe indexes incrementally.
	insP, delP := datalog.Ins(name), datalog.Del(name)
	l.Del.Each(func(t value.Tuple) {
		if !b.stage.Delete(insP, t) {
			b.stage.Insert(delP, t)
		}
	})
	l.Ins.Each(func(t value.Tuple) {
		if !b.stage.Delete(delP, t) {
			b.stage.Insert(insP, t)
		}
	})
	if !l.Empty() {
		b.staged[name] = arity
	}
	return l.Ins.Len() + l.Del.Len(), nil
}

// matchEffective returns the rows matching where in the effective state
// (store ⊖ staged deletions ⊕ staged insertions, batch and transaction
// layers). Store candidates come from an existing hash index when one
// covers the equality columns — a pure read — and otherwise from a scan,
// with the index build scheduled for after admission; staged-insertion
// candidates probe the stage database's own maintained indexes. Must be
// called with db.mu read-held and b.mu held.
func (b *Batcher) matchEffective(name string, decl *datalog.RelDecl, where []Condition, l eval.Delta) ([]value.Tuple, error) {
	positions, key, none, err := eqProbe(decl, where)
	if err != nil || none {
		return nil, err
	}
	p := datalog.Pred(name)
	insP := datalog.Ins(name)
	pendDel := b.stage.RelOrEmpty(datalog.Del(name), decl.Arity())
	out := value.NewRelation(decl.Arity())
	addIfLive := func(t value.Tuple) error {
		ok, err := rowMatches(decl, t, where)
		if err != nil {
			return err
		}
		if ok && !pendDel.Contains(t) && !l.Del.Contains(t) {
			out.Add(t)
		}
		return nil
	}
	// Store candidates.
	storeScan := positions == nil
	if !storeScan {
		if tuples, ok := b.db.store.LookupExisting(p, positions, key); ok {
			for _, t := range tuples {
				if err := addIfLive(t); err != nil {
					return nil, err
				}
			}
		} else {
			b.wantIx = append(b.wantIx, wantedIndex{pred: p, positions: positions})
			storeScan = true // scan this time; the index exists next time
		}
	}
	if storeScan {
		var ierr error
		b.db.store.RelOrEmpty(p, decl.Arity()).EachUntil(func(t value.Tuple) bool {
			ierr = addIfLive(t)
			return ierr == nil
		})
		if ierr != nil {
			return nil, ierr
		}
	}
	// Staged-insertion candidates: part of the effective state, shadowed
	// only by transaction-local deletions. The stage is private to the
	// batcher, so building its index here mutates nothing shared.
	addStaged := func(t value.Tuple) error {
		ok, err := rowMatches(decl, t, where)
		if err != nil {
			return err
		}
		if ok && !l.Del.Contains(t) {
			out.Add(t)
		}
		return nil
	}
	if positions != nil {
		for _, t := range b.stage.Lookup(insP, positions, key) {
			if err := addStaged(t); err != nil {
				return nil, err
			}
		}
	} else {
		var serr error
		b.stage.RelOrEmpty(insP, decl.Arity()).EachUntil(func(t value.Tuple) bool {
			serr = addStaged(t)
			return serr == nil
		})
		if serr != nil {
			return nil, serr
		}
	}
	// Transaction-local insertions (bounded by this transaction's own
	// statements — a linear pass is fine).
	var lerr error
	l.Ins.EachUntil(func(t value.Tuple) bool {
		ok, err := rowMatches(decl, t, where)
		if err != nil {
			lerr = err
			return false
		}
		if ok {
			out.Add(t)
		}
		return true
	})
	if lerr != nil {
		return nil, lerr
	}
	return out.Tuples(), nil
}
