package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// Tests for the incremental write path: DML against base tables feeds net
// row deltas straight into the dependent views (counting IVM), the dirty
// flag is only the fallback, and engine reads serve O(1) copy-on-write
// snapshots that stay safe across concurrent writers.

// maintainDB builds tables r1(a,b), r2(b,c) with a join view j, a
// negation view lonely, and a view stacked on j — registered without
// oracle validation (the get definitions are known) so the test exercises
// maintenance, not validation.
func maintainDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	for _, d := range []string{"r1(a:int, b:int).", "r2(b:int, c:int)."} {
		if err := db.CreateTable(mustDecl(t, d)); err != nil {
			t.Fatal(err)
		}
	}
	join := `
source r1(a:int, b:int).
source r2(b:int, c:int).
view j(a:int, c:int).
-r1(A,B) :- r1(A,B), not jkeep(A).
jkeep(A) :- j(A,_).
`
	joinGet := "j(A,C) :- r1(A,B), r2(B,C)."
	if err := createUnvalidated(db, join, joinGet); err != nil {
		t.Fatal(err)
	}
	lonely := `
source r1(a:int, b:int).
source r2(b:int, c:int).
view lonely(a:int).
-r1(A,B) :- r1(A,B), not lonely(A).
`
	lonelyGet := "lonely(A) :- r1(A,B), not r2(B,_)."
	if err := createUnvalidated(db, lonely, lonelyGet); err != nil {
		t.Fatal(err)
	}
	top := `
source j(a:int, c:int).
view top(a:int).
-j(A,C) :- j(A,C), not top(A).
`
	topGet := "top(A) :- j(A,_), not j(_,A)."
	if err := createUnvalidated(db, top, topGet); err != nil {
		t.Fatal(err)
	}
	return db
}

func createUnvalidated(db *DB, program, get string) error {
	rules, err := parseRules(get)
	if err != nil {
		return err
	}
	_, err = db.CreateView(program, ViewOptions{SkipValidation: true, ExpectedGet: rules})
	return err
}

func parseRules(src string) ([]*datalog.Rule, error) {
	var out []*datalog.Rule
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		r, err := datalog.ParseRule(line)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// expectedView recomputes a view's contents from scratch on an independent
// database, as the differential reference.
func expectedView(t *testing.T, db *DB, name string) *value.Relation {
	t.Helper()
	v := db.View(name)
	if v == nil {
		t.Fatalf("no view %q", name)
	}
	ref := eval.NewDatabase()
	for _, info := range db.Relations() {
		if info.Kind == "table" {
			rel, err := db.Rel(info.Name)
			if err != nil {
				t.Fatal(err)
			}
			ref.Set(datalog.Pred(info.Name), rel.Clone())
		}
	}
	// Materialize bottom-up so view-over-view references resolve.
	var materialize func(n string)
	materialize = func(n string) {
		w := db.View(n)
		if w == nil || ref.Rel(datalog.Pred(n)) != nil {
			return
		}
		for _, s := range w.sources {
			materialize(s)
		}
		ev, err := eval.New(w.getEval.Program())
		if err != nil {
			t.Fatal(err)
		}
		rel, err := ev.EvalQuery(ref, datalog.Pred(n))
		if err != nil {
			t.Fatal(err)
		}
		ref.Set(datalog.Pred(n), rel.Clone())
	}
	materialize(name)
	return ref.RelOrEmpty(datalog.Pred(name), v.Decl.Arity())
}

// TestDMLMaintainsViewsIncrementally is the engine-level differential: a
// random DML sequence against the base tables, asserting after every
// transaction that each view (join, negation, view-over-view) stays clean
// (never falls back to the dirty/full-refresh path) and matches a full
// recompute from scratch.
func TestDMLMaintainsViewsIncrementally(t *testing.T) {
	db := maintainDB(t)
	rng := rand.New(rand.NewSource(7))
	tables := []struct {
		name string
		cols [2]string
	}{{"r1", [2]string{"a", "b"}}, {"r2", [2]string{"b", "c"}}}
	views := []string{"j", "lonely", "top"}

	// One write to warm the maintenance state (the first call initializes
	// the support counts).
	if err := db.Exec(Insert("r1", value.Int(0), value.Int(0))); err != nil {
		t.Fatal(err)
	}

	for step := 0; step < 120; step++ {
		tb := tables[rng.Intn(len(tables))]
		row := tup(rng.Intn(5), rng.Intn(5))
		var err error
		switch rng.Intn(3) {
		case 0:
			err = db.Exec(Insert(tb.name, row...))
		case 1:
			err = db.Exec(Delete(tb.name, Eq(tb.cols[0], row[0])))
		default:
			err = db.Exec(Update(tb.name,
				[]Assignment{{Col: tb.cols[1], Val: row[1]}},
				Eq(tb.cols[0], row[0])))
		}
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		for _, vn := range views {
			if db.Stale(vn) {
				t.Fatalf("step %d: view %q fell back to the dirty path", step, vn)
			}
			got, err := db.Rel(vn)
			if err != nil {
				t.Fatal(err)
			}
			want := expectedView(t, db, vn)
			if !got.Equal(want) {
				t.Fatalf("step %d: view %q = %v, want %v", step, vn, got, want)
			}
		}
	}
}

// TestNetEmptyTransactionSkipsMaintenance pins the skip: a transaction
// whose net delta is empty (insert+delete of the same row, re-insert of a
// present row, delete of an absent row) performs no view maintenance at
// all and leaves every view clean and unchanged.
func TestNetEmptyTransactionSkipsMaintenance(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(2))); err != nil {
		t.Fatal(err)
	}
	before, err := db.Rel("j")
	if err != nil {
		t.Fatal(err)
	}
	beforeSnap := before.Clone()

	for _, stmts := range [][]Statement{
		{Insert("r1", value.Int(8), value.Int(8)), Delete("r1", Eq("a", value.Int(8)))},
		{Insert("r1", value.Int(1), value.Int(2))},                                         // already present
		{Delete("r1", Eq("a", value.Int(77)))},                                             // absent
		{Update("r1", []Assignment{{Col: "b", Val: value.Int(2)}}, Eq("a", value.Int(1)))}, // identity update
	} {
		if err := db.Exec(stmts...); err != nil {
			t.Fatal(err)
		}
		if db.Stale("j") || db.Stale("lonely") || db.Stale("top") {
			t.Fatalf("net-empty transaction %v marked a view stale", stmts)
		}
	}
	after, err := db.Rel("j")
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(beforeSnap) {
		t.Fatalf("net-empty transactions changed j: %v -> %v", beforeSnap, after)
	}
}

// TestViewUpdateMaintainsSiblings: updating through a view cascades exact
// deltas into the base tables; sibling views over the same tables must be
// maintained incrementally (stay clean) and agree with a full recompute.
func TestViewUpdateMaintainsSiblings(t *testing.T) {
	db := maintainDB(t)
	// Warm every view's maintenance state with a base write.
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(3))); err != nil {
		t.Fatal(err)
	}
	for _, vn := range []string{"j", "lonely", "top"} {
		if _, err := db.Rel(vn); err != nil {
			t.Fatal(err)
		}
	}
	// Delete through the join view: -r1 cascades into the base table.
	if err := db.Exec(Delete("j", Eq("a", value.Int(1)))); err != nil {
		t.Fatal(err)
	}
	if db.Stale("lonely") {
		t.Fatal("sibling view went stale instead of being maintained")
	}
	for _, vn := range []string{"j", "lonely", "top"} {
		got, err := db.Rel(vn)
		if err != nil {
			t.Fatal(err)
		}
		if want := expectedView(t, db, vn); !got.Equal(want) {
			t.Fatalf("view %q = %v, want %v", vn, got, want)
		}
	}
}

// TestBulkLoadFallsBackToRefresh: LoadTable takes the dirty path (a bulk
// load is cheaper to recompute than to propagate row by row), the next
// read refreshes, and subsequent DML returns to incremental maintenance.
func TestBulkLoadFallsBackToRefresh(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r2", []value.Tuple{tup(1, 2), tup(1, 3)}); err != nil {
		t.Fatal(err)
	}
	if !db.Stale("j") {
		t.Fatal("bulk load should mark dependent views stale")
	}
	got, err := db.Rel("j") // refresh
	if err != nil {
		t.Fatal(err)
	}
	if want := expectedView(t, db, "j"); !got.Equal(want) {
		t.Fatalf("after bulk load: j = %v, want %v", got, want)
	}
	// Back to incremental: the next write must keep the view clean and right.
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(9))); err != nil {
		t.Fatal(err)
	}
	if db.Stale("j") {
		t.Fatal("DML after refresh should maintain incrementally")
	}
	got, _ = db.Rel("j")
	if want := expectedView(t, db, "j"); !got.Equal(want) {
		t.Fatalf("after post-load DML: j = %v, want %v", got, want)
	}
}

// TestCollidingAuxPredicatesStayCorrect: two views whose get programs both
// materialize an auxiliary predicate named "aux" overwrite each other's
// relation in the shared store. Maintenance must survive this (mutual IVM
// invalidation — each view re-initializes after the other ran) and both
// views must stay correct across interleaved DML.
func TestCollidingAuxPredicatesStayCorrect(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int, b:int).")); err != nil {
		t.Fatal(err)
	}
	evens := `
source r(a:int, b:int).
view evens(a:int).
-r(A,B) :- r(A,B), not evens(A).
`
	evensGet := `
aux(A) :- r(A,B), B < 2.
evens(A) :- aux(A).
`
	if err := createUnvalidated(db, evens, evensGet); err != nil {
		t.Fatal(err)
	}
	odds := `
source r(a:int, b:int).
view odds(a:int).
-r(A,B) :- r(A,B), not odds(A).
`
	oddsGet := `
aux(A) :- r(A,B), B >= 2.
odds(A) :- aux(A).
`
	if err := createUnvalidated(db, odds, oddsGet); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for step := 0; step < 60; step++ {
		row := tup(rng.Intn(4), rng.Intn(4))
		var err error
		if rng.Intn(2) == 0 {
			err = db.Exec(Insert("r", row...))
		} else {
			err = db.Exec(Delete("r", Eq("a", row[0]), Eq("b", row[1])))
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, vn := range []string{"evens", "odds"} {
			got, err := db.Rel(vn)
			if err != nil {
				t.Fatal(err)
			}
			if want := expectedView(t, db, vn); !got.Equal(want) {
				t.Fatalf("step %d: %s = %v, want %v", step, vn, got, want)
			}
		}
	}
}

// TestCreateViewInvalidatesCollidingCounts: registering a NEW view whose
// get program shares an auxiliary predicate with an existing maintained
// view clobbers that aux relation during the initial materialization; the
// existing view's counts must be dropped then, or its next maintenance
// would join deltas against the wrong aux contents.
func TestCreateViewInvalidatesCollidingCounts(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int, b:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(mustDecl(t, "s(a:int).")); err != nil {
		t.Fatal(err)
	}
	va := `
source r(a:int, b:int).
source s(a:int).
view va(a:int).
-s(A) :- s(A), not va(A).
`
	vaGet := `
aux(A) :- r(A,B), B < 10.
va(A) :- s(A), aux(A).
`
	if err := createUnvalidated(db, va, vaGet); err != nil {
		t.Fatal(err)
	}
	// Establish va's maintenance state: aux = {1, 5}.
	if err := db.Exec(Insert("r", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r", value.Int(5), value.Int(2))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("s", value.Int(1))); err != nil {
		t.Fatal(err)
	}
	// Register vb, whose get program redefines aux: the creation refresh
	// overwrites the shared aux relation in the store.
	vb := `
source r(a:int, b:int).
view vb(a:int).
-r(A,B) :- r(A,B), not vb(A).
`
	vbGet := `
aux(A) :- r(A,B), B >= 100.
vb(A) :- aux(A).
`
	if err := createUnvalidated(db, vb, vbGet); err != nil {
		t.Fatal(err)
	}
	// va's next maintenance must re-initialize, not trust stale counts.
	if err := db.Exec(Insert("s", value.Int(5))); err != nil {
		t.Fatal(err)
	}
	got, err := db.Rel("va")
	if err != nil {
		t.Fatal(err)
	}
	want := value.RelationOf(1, tup(1), tup(5))
	if !got.Equal(want) {
		t.Fatalf("va = %v, want %v (stale counts survived CreateView collision)", got, want)
	}
}

// TestFailedTableTransactionRollsBack: a table transaction that errors
// mid-way (arity mismatch, bad WHERE column) must leave the store exactly
// as it was — otherwise clean views with live maintenance counts would
// silently diverge from the base table forever.
func TestFailedTableTransactionRollsBack(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r2", value.Int(1), value.Int(5))); err != nil {
		t.Fatal(err)
	}
	r1Before, _ := db.Rel("r1")
	r1Snap := r1Before.Clone()

	// Statement 1 applies, statement 2 errors: the transaction must undo
	// statement 1.
	if err := db.Exec(Insert("r1", value.Int(99), value.Int(99)), Insert("r1", value.Int(7))); err == nil {
		t.Fatal("expected arity error")
	}
	if err := db.Exec(Insert("r1", value.Int(99), value.Int(99)), Delete("r1", Condition{Col: "nope", Op: datalog.OpEq, Val: value.Int(0)})); err == nil {
		t.Fatal("expected unknown-column error")
	}
	r1After, _ := db.Rel("r1")
	if !r1After.Equal(r1Snap) {
		t.Fatalf("failed transaction left residue: %v, want %v", r1After, r1Snap)
	}
	for _, vn := range []string{"j", "lonely", "top"} {
		got, err := db.Rel(vn)
		if err != nil {
			t.Fatal(err)
		}
		if want := expectedView(t, db, vn); !got.Equal(want) {
			t.Fatalf("view %q diverged after failed transaction: %v, want %v", vn, got, want)
		}
	}
	// The next successful write must still maintain correctly.
	if err := db.Exec(Insert("r1", value.Int(2), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Rel("j")
	if want := expectedView(t, db, "j"); !got.Equal(want) {
		t.Fatalf("j after recovery = %v, want %v", got, want)
	}
}

// TestFailedBulkLoadAppliesNothing: LoadTable with a bad row must not
// insert any rows (views were never told about them).
func TestFailedBulkLoadAppliesNothing(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	before, _ := db.Rel("r1")
	snap := before.Clone()
	err := db.LoadTable("r1", []value.Tuple{tup(50, 50), tup(51)})
	if err == nil {
		t.Fatal("expected arity error")
	}
	after, _ := db.Rel("r1")
	if !after.Equal(snap) {
		t.Fatalf("failed bulk load left residue: %v, want %v", after, snap)
	}
	if got, want := expectedView(t, db, "j"), func() *value.Relation { r, _ := db.Rel("j"); return r }(); !want.Equal(got) {
		t.Fatalf("view j diverged after failed load: %v, want %v", want, got)
	}
}

// TestGetSnapshotImmutable: a snapshot taken before a transaction keeps
// observing the pre-transaction state.
func TestGetSnapshotImmutable(t *testing.T) {
	db := setupUnion(t, false)
	snapV, err := db.Get("v")
	if err != nil {
		t.Fatal(err)
	}
	snapR1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	wantV, wantR1 := snapV.Clone(), snapR1.Clone()
	if err := db.Exec(Insert("v", value.Int(42))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r2", value.Int(43))); err != nil {
		t.Fatal(err)
	}
	if !snapV.Equal(wantV) || !snapR1.Equal(wantR1) {
		t.Fatalf("snapshots changed under a writer: v=%v r1=%v", snapV, snapR1)
	}
	cur, _ := db.Rel("v")
	if !cur.Contains(tup(42)) {
		t.Fatal("live relation missed the write")
	}
}

// TestGetSnapshotRace is the satellite race test: O(1) snapshot readers
// iterating the very relations concurrent writers mutate in place — table
// and maintained view alike — must be race-clean (run under -race in CI)
// and always observe a consistent set.
func TestGetSnapshotRace(t *testing.T) {
	db := setupUnion(t, false)
	if _, err := db.Rel("v"); err != nil {
		t.Fatal(err)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 32)

	for w := 0; w < 2; w++ {
		w := w
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 40; i++ {
				x := value.Int(int64(1000 + w*100 + i))
				if err := db.Exec(Insert("r1", x)); err != nil {
					errs <- err
					return
				}
				if err := db.Exec(Delete("r1", Eq("a", x))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range []string{"r1", "v"} {
					snap, err := db.Get(name)
					if err != nil {
						errs <- err
						return
					}
					n := 0
					snap.Each(func(value.Tuple) { n++ })
					if n != snap.Len() {
						errs <- fmt.Errorf("snapshot of %s inconsistent: iterated %d, Len %d", name, n, snap.Len())
						return
					}
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if !v.Equal(value.RelationOf(1, tup(1), tup(2), tup(4))) {
		t.Fatalf("v = %v after churn", v)
	}
}
