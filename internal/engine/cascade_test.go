package engine

import (
	"strings"
	"testing"

	"birds/internal/value"
)

// Failure injection: a strategy whose deltas collide inside one transaction
// must abort atomically without touching any relation.
func TestContradictoryPlanAborts(t *testing.T) {
	// Two sibling views over the same base table with opposing strategies
	// cannot run in one transaction — but a single strategy producing both
	// +r(t) and -r(t) is caught by the putback evaluation itself; here we
	// exercise the planner's cross-check by cascading into the same
	// relation from a diamond-shaped view stack.
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r", []value.Tuple{tup(1), tup(2)}); err != nil {
		t.Fatal(err)
	}
	// An identity view over r.
	idView := `
source r(a:int).
view w(a:int).
+r(X) :- w(X), not r(X).
-r(X) :- r(X), not w(X).
`
	if _, err := db.CreateView(idView, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	// A view over w that mirrors it; updating it cascades into w then r.
	topView := `
source w(a:int).
view top(a:int).
+w(X) :- top(X), not w(X).
-w(X) :- w(X), not top(X).
`
	if _, err := db.CreateView(topView, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("top", value.Int(9))); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Rel("r")
	if !r.Contains(tup(9)) {
		t.Fatalf("two-level cascade failed: %v", r)
	}
	w, _ := db.Rel("w")
	topRel, _ := db.Rel("top")
	if !w.Contains(tup(9)) || !topRel.Contains(tup(9)) {
		t.Error("intermediate views not maintained")
	}
}

// A view whose materialization is stale because a sibling updated a shared
// base table must refresh transparently on read.
func TestSiblingViewsStayConsistent(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r", []value.Tuple{tup(1), tup(5)}); err != nil {
		t.Fatal(err)
	}
	small := `
source r(a:int).
view small(a:int).
_|_ :- small(X), not X < 3.
+r(X) :- small(X), not r(X).
-r(X) :- r(X), X < 3, not small(X).
`
	big := `
source r(a:int).
view big(a:int).
_|_ :- big(X), X < 3.
+r(X) :- big(X), not r(X).
-r(X) :- r(X), not X < 3, not big(X).
`
	if _, err := db.CreateView(small, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateView(big, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	// Update through big; small must see the change on its next read (it
	// shares the base table).
	if err := db.Exec(Insert("big", value.Int(7))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("small", value.Int(0))); err != nil {
		t.Fatal(err)
	}
	smallRel, err := db.Rel("small")
	if err != nil {
		t.Fatal(err)
	}
	bigRel, err := db.Rel("big")
	if err != nil {
		t.Fatal(err)
	}
	if !smallRel.Equal(value.RelationOf(1, tup(0), tup(1))) {
		t.Errorf("small = %v, want {0,1}", smallRel)
	}
	if !bigRel.Equal(value.RelationOf(1, tup(5), tup(7))) {
		t.Errorf("big = %v, want {5,7}", bigRel)
	}
	r, _ := db.Rel("r")
	if !r.Equal(value.RelationOf(1, tup(0), tup(1), tup(5), tup(7))) {
		t.Errorf("r = %v", r)
	}
}

// Rejections deep in a cascade must leave every level untouched.
func TestCascadeConstraintRejectionAtomic(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r", []value.Tuple{tup(5)}); err != nil {
		t.Fatal(err)
	}
	// Lower view rejects values > 100 (the deletion rule only touches the
	// in-range tuples the view can legitimately drop).
	lower := `
source r(a:int).
view w(a:int).
_|_ :- w(X), X > 100.
+r(X) :- w(X), not r(X).
-r(X) :- r(X), not X > 100, not w(X).
`
	upper := `
source w(a:int).
view top(a:int).
+w(X) :- top(X), not w(X).
-w(X) :- w(X), not top(X).
`
	if _, err := db.CreateView(lower, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateView(upper, ViewOptions{Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	err := db.Exec(Insert("top", value.Int(500)))
	if err == nil {
		t.Fatal("lower-level constraint must reject the cascade")
	}
	if !strings.Contains(err.Error(), "constraint") {
		t.Errorf("unexpected error: %v", err)
	}
	for _, rel := range []string{"r", "w", "top"} {
		got, _ := db.Rel(rel)
		if !got.Equal(value.RelationOf(1, tup(5))) {
			t.Errorf("%s = %v after rejected cascade, want {5}", rel, got)
		}
	}
}

// Algorithm 2 corner cases: update-then-delete of the same row, and an
// update that rewrites a row back to itself.
func TestTransactionAlgorithm2Corners(t *testing.T) {
	db := setupUnion(t, false)
	// Update 2 -> 7, then delete 7: net effect is only the deletion of 2.
	if err := db.Exec(
		Update("v", []Assignment{{Col: "a", Val: value.Int(7)}}, Eq("a", value.Int(2))),
		Delete("v", Eq("a", value.Int(7))),
	); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if v.Contains(tup(2)) || v.Contains(tup(7)) {
		t.Errorf("v = %v", v)
	}
	// Identity update: no change at all.
	before, _ := db.Rel("r1")
	before = before.Clone()
	if err := db.Exec(Update("v", []Assignment{{Col: "a", Val: value.Int(1)}}, Eq("a", value.Int(1)))); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Rel("r1")
	if !after.Equal(before) {
		t.Errorf("identity update changed r1: %v -> %v", before, after)
	}
}

// DELETE with a non-equality WHERE falls back to a scan and still works.
func TestDeleteWithRangeCondition(t *testing.T) {
	db := setupUnion(t, true)
	if err := db.Exec(Delete("v", Condition{Col: "a", Op: 3 /* OpGt */, Val: value.Int(1)})); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if v.Len() != 1 || !v.Contains(tup(1)) {
		t.Errorf("v = %v, want {1}", v)
	}
}

// Repeated equality conditions on the same column are legal; contradictory
// ones match nothing.
func TestRepeatedEqualityConditions(t *testing.T) {
	db := setupUnion(t, false)
	if err := db.Exec(Delete("v", Eq("a", value.Int(2)), Eq("a", value.Int(2)))); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if v.Contains(tup(2)) {
		t.Error("duplicate equality condition should still match")
	}
	before, _ := db.Rel("v")
	before = before.Clone()
	if err := db.Exec(Delete("v", Eq("a", value.Int(1)), Eq("a", value.Int(4)))); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Rel("v")
	if !after.Equal(before) {
		t.Error("contradictory equalities should match nothing")
	}
}
