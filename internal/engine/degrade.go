package engine

import (
	"errors"
	"fmt"
)

// Read-only degraded mode.
//
// When a durable write fails (WAL append, fsync, segment rotation), the
// log has poisoned itself — the fsyncgate rule: after a failed write or
// fsync the kernel may have dropped the dirty pages while keeping the file
// position, so retrying the append could silently skip bytes. The engine
// therefore stops accepting writes entirely: the in-flight transaction or
// batch was rolled back by its hook site (the store never kept a write the
// WAL didn't take), and every later write fails fast with ErrReadOnly
// while reads, snapshots and view queries keep being served from the
// intact in-memory state.
//
// The only way back is DB.Reopen: it discards the in-memory state and the
// poisoned log handle, re-runs recovery from the durable files (which
// contain exactly the acknowledged writes), and swaps the recovered state
// in. If the disk is still failing, Reopen fails and the engine stays
// degraded — still serving reads.

// ErrReadOnly is returned (wrapped) by every write path while the engine
// is in read-only degraded mode. Test with errors.Is.
var ErrReadOnly = errors.New("engine: read-only (degraded after storage failure)")

// ReadOnly returns the storage failure that forced read-only degraded
// mode, or nil when the engine accepts writes.
func (db *DB) ReadOnly() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ro
}

// readOnlyErrLocked renders the degraded-mode error, wrapping ErrReadOnly
// around the root cause. Callers hold db.mu (read or write).
func (db *DB) readOnlyErrLocked() error {
	return fmt.Errorf("%w: %v", ErrReadOnly, db.ro)
}

// Reopen recovers the engine from its own durability directory after a
// storage failure forced read-only degraded mode: it waits out any
// background checkpoint, discards the in-memory state and the poisoned
// log, re-runs recovery from disk (checkpoint + WAL tail — exactly the
// acknowledged writes), and swaps the recovered state in, re-arming
// durability and clearing degraded mode. Batching configuration survives.
// On failure the engine stays degraded (reads keep working) and Reopen can
// be retried.
func (db *DB) Reopen() error {
	db.mu.Lock()
	if db.dur == nil {
		db.mu.Unlock()
		return fmt.Errorf("engine: reopen: durability is not enabled")
	}
	if db.ro == nil {
		db.mu.Unlock()
		return fmt.Errorf("engine: reopen: engine is not in read-only mode")
	}
	if db.reopening {
		db.mu.Unlock()
		return fmt.Errorf("engine: reopen already in progress")
	}
	db.reopening = true
	d := db.dur
	roErr := db.readOnlyErrLocked()
	db.mu.Unlock()

	fail := func(err error) error {
		db.mu.Lock()
		db.reopening = false
		db.mu.Unlock()
		return err
	}

	// Wait for any in-flight background checkpoint without holding db.mu
	// (its goroutine takes db.mu to finish).
	d.ckptWG.Wait()

	// Retire the old batcher: anything staged was never logged, so it is
	// correctly dropped; a pending flush ticket resolves with ErrReadOnly.
	if old := db.batcher.Swap(nil); old != nil {
		old.Discard(roErr)
	}
	d.log.Close() // poisoned: Close skips the sync, just releases the fd

	db2, _, err := RecoverFS(d.opts.FS, d.opts.Dir)
	if err != nil {
		return fail(fmt.Errorf("engine: reopen: %w", err))
	}

	// The recovered engine's batcher (restored from the checkpointed
	// config) is bound to db2's mutex; strip it and re-create it on db
	// after the swap.
	var batchOpts *BatchOptions
	if b2 := db2.batcher.Swap(nil); b2 != nil {
		o := b2.opts
		batchOpts = &o
		b2.Discard(errBatcherClosed)
	}

	db.mu.Lock()
	db.store = db2.store
	db.tables = db2.tables
	db.views = db2.views
	db.dirty = db2.dirty
	db.viewOrder = db2.viewOrder
	db.parallelism = db2.parallelism
	db.dur = db2.dur
	db.ro = nil
	db.reopening = false
	// The hub survives the swap (subscriptions are handles into this DB,
	// not its state), but no delta relates the old state to the recovered
	// one: every subscriber must resync against it.
	if db.hub != nil {
		db.hub.MarkAllLost()
	}
	db.mu.Unlock()

	if batchOpts != nil {
		db.SetBatching(*batchOpts)
	}
	return nil
}
