package engine

import (
	"sync"
	"testing"

	"birds/internal/value"
)

// Concurrent readers and writers must serialize without races or lost
// updates (run under -race in CI).
func TestConcurrentExecAndRead(t *testing.T) {
	db := setupUnion(t, true)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				x := value.Int(int64(100 + w*1000 + i))
				if err := db.Exec(Insert("v", x)); err != nil {
					errs <- err
					return
				}
				if _, err := db.Rel("v"); err != nil {
					errs <- err
					return
				}
				if err := db.Exec(Delete("v", Eq("a", x))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All workers' tuples were inserted then deleted: back to the start.
	v, err := db.Rel("v")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.RelationOf(1, tup(1), tup(2), tup(4))) {
		t.Errorf("v = %v after concurrent churn", v)
	}
}

func TestConcurrentReadersOnly(t *testing.T) {
	db := setupUnion(t, false)
	// Materialize once so every subsequent read is a clean-view read and
	// stays on the RLock fast path.
	if _, err := db.Rel("v"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Rel("v"); err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Rel("r1"); err != nil {
					t.Error(err)
					return
				}
				db.IsView("v")
				db.View("v")
				db.Relations()
			}
		}()
	}
	wg.Wait()
}

// Readers racing a writer over a view the writer keeps updating: since
// base-table DML maintains the view's relation in place (counting IVM),
// concurrent readers go through Get, whose O(1) copy-on-write snapshot
// must never race (run under -race in CI) or observe an inconsistent view.
func TestConcurrentReadersWithInvalidatingWriter(t *testing.T) {
	db := setupUnion(t, false)
	var writer, readers sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := value.Int(int64(1000 + i))
			// Writing the base table marks the view stale.
			if err := db.Exec(Insert("r1", x)); err != nil {
				t.Error(err)
				return
			}
			if err := db.Exec(Delete("r1", Eq("a", x))); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				v, err := db.Get("v")
				if err != nil {
					t.Error(err)
					return
				}
				// The union view always contains the stable base tuples.
				for _, want := range []value.Tuple{tup(1), tup(2), tup(4)} {
					if !v.Contains(want) {
						t.Errorf("view missing stable tuple %v", want)
						return
					}
				}
			}
		}()
	}
	// Snapshot readers on the very table the writer mutates in place: Rel
	// would race here (the returned relation is live), Snapshot must not.
	for w := 0; w < 2; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 50; i++ {
				snap, err := db.Snapshot("r1")
				if err != nil {
					t.Error(err)
					return
				}
				if !snap.Contains(tup(1)) {
					t.Error("snapshot of r1 lost stable tuple (1)")
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		readers.Add(2)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				db.Relations()
				db.IsView("v")
			}
		}()
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				if _, err := db.Rel("r2"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
