package engine

import (
	"sync"
	"testing"

	"birds/internal/value"
)

// Concurrent readers and writers must serialize without races or lost
// updates (run under -race in CI).
func TestConcurrentExecAndRead(t *testing.T) {
	db := setupUnion(t, true)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				x := value.Int(int64(100 + w*1000 + i))
				if err := db.Exec(Insert("v", x)); err != nil {
					errs <- err
					return
				}
				if _, err := db.Rel("v"); err != nil {
					errs <- err
					return
				}
				if err := db.Exec(Delete("v", Eq("a", x))); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All workers' tuples were inserted then deleted: back to the start.
	v, err := db.Rel("v")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(value.RelationOf(1, tup(1), tup(2), tup(4))) {
		t.Errorf("v = %v after concurrent churn", v)
	}
}

func TestConcurrentReadersOnly(t *testing.T) {
	db := setupUnion(t, false)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Rel("v"); err != nil {
					t.Error(err)
					return
				}
				db.IsView("v")
				db.View("v")
			}
		}()
	}
	wg.Wait()
}
