package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"birds/internal/value"
	"birds/internal/wal"
)

// Fault-matrix differential harness: drive a randomized DML stream through
// a durable engine whose filesystem injects one fault class at a
// randomized point, then verify the full durability contract:
//
//   - acked ⊆ recovered ⊆ attempted. Recovery from the (healed) disk
//     reproduces every acknowledged transaction — support counts included —
//     plus at most the one atomic write unit that was in flight when the
//     log poisoned itself. That unit is genuinely ambiguous at the storage
//     layer: a record whose bytes reached the file before its fsync failed
//     replays (it was attempted, and it is a complete, checksummed frame),
//     while a record that never hit the file, or hit it torn, does not.
//     Nothing else may appear, and nothing acked may be missing.
//   - After a fault on the durable-write path the engine is in read-only
//     degraded mode: reads keep working, every write fails fast with
//     ErrReadOnly, and Reopen recovers in place and restores writes.
//   - Checkpoint-path faults (temp create, torn rename, GC remove) and
//     segment-rotation faults are non-fatal: writes keep flowing and no
//     acknowledged data is lost.
//
// Acknowledgment points match the production ones: direct Exec for the
// unbatched path, Commit.Wait (the group-commit flush, birds-serve's 200)
// for the batched path — batched trials admit transactions in groups of
// MaxTxns so whole batches coalesce into single WAL records.
//
// Segment rotation (tiny SegmentBytes) and background checkpoints (small
// CheckpointEvery) both run hot during every trial. Tunables:
// BIRDS_FAULT_TRIALS (default 3 per class), BIRDS_FAULT_SEED (default 1).
// Run under -race: background checkpointing concurrency is part of what
// is tested.

// faultDegrade is a fault class's expectation about degraded mode.
type faultDegrade int

const (
	degradeEither faultDegrade = iota // depends on where the fault lands
	degradeIfFired                    // fired ⇒ the engine must be read-only
	degradeNever                      // the fault is non-fatal by design
)

// faultClass arms one kind of storage betrayal at a randomized point.
type faultClass struct {
	name    string
	degrade faultDegrade
	rule    func(rng *rand.Rand) *wal.Rule
}

var faultClasses = []faultClass{
	{"append-eio", degradeIfFired, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpWrite, Path: "wal-", Err: errors.New("injected EIO"), AfterN: 1 + rng.Intn(20), Once: true}
	}},
	{"append-short-write", degradeIfFired, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpWrite, Path: "wal-", ShortWrite: true, AfterN: 1 + rng.Intn(20), Once: true}
	}},
	// No path filter: lands on segment appends (fatal), segment-create dir
	// syncs, or checkpoint temp syncs (both non-fatal) as the dice decide.
	{"fsync-enospc", degradeEither, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpSync, Err: wal.ErrNoSpace, AfterN: 1 + rng.Intn(20), Once: true}
	}},
	{"segment-create-failure", degradeNever, func(rng *rand.Rand) *wal.Rule {
		// Not Once: every rotation attempt fails until cleared, proving
		// the log keeps accepting appends into the oversized segment.
		return &wal.Rule{Op: wal.OpOpen, Path: "wal-", Err: wal.ErrNoSpace, AfterN: 1 + rng.Intn(3)}
	}},
	{"checkpoint-temp-failure", degradeNever, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpCreateTemp, Err: wal.ErrNoSpace, AfterN: 1 + rng.Intn(3), Once: true}
	}},
	{"checkpoint-torn-rename", degradeNever, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpRename, Path: "checkpoint-", TornRename: true, AfterN: 1 + rng.Intn(3), Once: true}
	}},
	{"gc-remove-failure", degradeNever, func(rng *rand.Rand) *wal.Rule {
		return &wal.Rule{Op: wal.OpRemove, Err: errors.New("injected EACCES"), AfterN: 1 + rng.Intn(5)}
	}},
}

func TestFaultMatrix(t *testing.T) {
	trials := crashEnvInt("BIRDS_FAULT_TRIALS", 3)
	if testing.Short() {
		trials = 1
	}
	baseSeed := int64(crashEnvInt("BIRDS_FAULT_SEED", 1))
	for _, fc := range faultClasses {
		t.Run(fc.name, func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				runFaultTrial(t, fc, baseSeed*1000+int64(trial))
			}
		})
	}
}

// faultAttempt is one operation of a trial's stream with its outcome:
// acked (the durability ack point returned nil) or ambiguous (it failed
// WITH the storage fault itself, so its record may or may not have reached
// the file — the one unit recovery is allowed to resurrect).
type faultAttempt struct {
	op        crashOp
	acked     bool
	ambiguous bool
}

func runFaultTrial(t *testing.T, fc faultClass, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	ffs := wal.NewFaultFS(nil, seed)

	db := maintainDB(t)
	if err := db.EnableDurability(DurabilityOptions{
		Dir:             dir,
		Sync:            wal.SyncOnCommit,
		CheckpointEvery: 7,   // background checkpoints run hot
		SegmentBytes:    512, // rotation runs hot
		FS:              ffs,
	}); err != nil {
		t.Fatal(err)
	}
	const groupSize = 4
	useBatch := rng.Intn(2) == 0
	var bt *Batcher
	if useBatch {
		db.SetBatching(BatchOptions{MaxTxns: groupSize, FlushInterval: time.Millisecond})
		bt = db.batcher.Load()
	}
	label := fmt.Sprintf("%s seed=%d batch=%v", fc.name, seed, useBatch)

	// Arm the fault after setup, so every trial starts from a healthy
	// engine and the fault lands mid-stream at an FS-op-count offset.
	ffs.Inject(fc.rule(rng))

	// The attempted stream. classify records an op's outcome at its ack
	// point; an error that is not the read-only fast-fail is the storage
	// fault surfacing, which makes the op's write unit ambiguous.
	attempts := make([]faultAttempt, 0, 64)
	classify := func(idx int, err error) {
		attempts[idx].acked = err == nil
		attempts[idx].ambiguous = err != nil && !errors.Is(err, ErrReadOnly)
	}
	// Batched trials admit DML in groups of MaxTxns: the whole group
	// coalesces into one flush (one WAL record), and every member is
	// classified by its own Commit.Wait — the production ack point.
	type pending struct {
		idx int
		c   Commit
	}
	var group []pending
	settle := func() {
		for _, p := range group {
			classify(p.idx, p.c.Wait())
		}
		group = group[:0]
	}
	runStmt := func(idx int, s Statement) {
		if !useBatch {
			classify(idx, db.Exec(s))
			return
		}
		_, c, err := bt.ExecAsync(s)
		if err != nil {
			classify(idx, err) // rejected at admission: nothing staged
			return
		}
		group = append(group, pending{idx, c})
		if len(group) == groupSize {
			settle()
		}
	}
	const nOps = 60
	for i := 0; i < nOps; i++ {
		attempts = append(attempts, faultAttempt{})
		switch {
		case i == nOps/3:
			settle() // direct ops must not leapfrog staged transactions
			rows := []value.Tuple{tup(90, 90), tup(91, 91)}
			op := func(db *DB) error { return db.LoadTable("r1", rows) }
			attempts[i].op = op
			classify(i, op(db))
		case i == nOps/2:
			settle()
			op := stmtOp(Delete("j", Eq("a", value.Int(int64(rng.Intn(5))))))
			attempts[i].op = op
			classify(i, op(db))
		case i == 2*nOps/3:
			settle()
			op := func(db *DB) error {
				if db.Durable() {
					// Checkpoint failures are non-fatal; the error only
					// reports that the snapshot didn't advance.
					_ = db.Checkpoint()
				}
				return nil
			}
			attempts[i].op = op
			classify(i, op(db))
		default:
			s := batchStmt(rng)
			attempts[i].op = stmtOp(s)
			runStmt(i, s)
		}
	}
	settle()

	degraded := db.ReadOnly() != nil
	switch fc.degrade {
	case degradeIfFired:
		if ffs.Fired() > 0 && !degraded {
			t.Fatalf("%s: fault fired %d time(s) but the engine is not degraded", label, ffs.Fired())
		}
	case degradeNever:
		if degraded {
			t.Fatalf("%s: non-fatal fault class degraded the engine: %v", label, db.ReadOnly())
		}
	}

	ffs.Clear() // the disk heals; recovery and Reopen run clean

	if degraded {
		// Degraded: reads must still serve, writes must fail fast, and
		// Reopen must restore the acked state and accept writes again.
		if _, err := db.Get("r1"); err != nil {
			t.Fatalf("%s: read while degraded: %v", label, err)
		}
		if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); !errors.Is(err, ErrReadOnly) {
			t.Fatalf("%s: write while degraded: got %v, want ErrReadOnly", label, err)
		}
		if err := db.Reopen(); err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		if err := db.ReadOnly(); err != nil {
			t.Fatalf("%s: still degraded after reopen: %v", label, err)
		}
	}

	// Differential oracle. refMin replays exactly the acked ops; if the
	// live state differs, the ambiguous in-flight unit must account for it
	// in full — refMin plus the ambiguous ops, and nothing else.
	buildRef := func(withAmbiguous bool) *DB {
		ref := maintainDB(t)
		for i, a := range attempts {
			if !a.acked && !(withAmbiguous && a.ambiguous) {
				continue
			}
			if err := a.op(ref); err != nil {
				t.Fatalf("%s: reference op %d: %v", label, i, err)
			}
		}
		return ref
	}
	ref := buildRef(false)
	if d := diffDurableState(t, db, ref); d != "" {
		nAmb := 0
		for _, a := range attempts {
			if a.ambiguous {
				nAmb++
			}
		}
		if nAmb == 0 {
			t.Fatalf("%s: lost acked state with no write in flight: %s", label, d)
		}
		ref = buildRef(true)
		if d := diffDurableState(t, db, ref); d != "" {
			t.Fatalf("%s: state matches neither acked nor acked+in-flight: %s", label, d)
		}
	}

	// Continuation: the engine accepts writes and stays in lockstep.
	for i := 0; i < 8; i++ {
		s := batchStmt(rng)
		if err := db.Exec(s); err != nil {
			t.Fatalf("%s: continuation op %d: %v", label, i, err)
		}
		if err := ref.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}

	// Cold recovery from the healed disk: bit-identical to the reference.
	rec, _, err := RecoverFS(ffs, dir)
	if err != nil {
		t.Fatalf("%s: cold recover: %v", label, err)
	}
	assertSameDurableState(t, rec, ref, label+" (cold recovery)")
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
