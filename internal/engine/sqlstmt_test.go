package engine

import (
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/value"
)

func TestParseSQLInsert(t *testing.T) {
	stmts, err := ParseSQL("INSERT INTO v VALUES (3, 'abc', 2.5, TRUE);")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 || stmts[0].Kind != StmtInsert || stmts[0].Target != "v" {
		t.Fatalf("stmts = %+v", stmts)
	}
	row := stmts[0].Row
	if len(row) != 4 || row[0].AsInt() != 3 || row[1].AsString() != "abc" ||
		row[2].AsFloat() != 2.5 || !row[3].AsBool() {
		t.Fatalf("row = %v", row)
	}
}

func TestParseSQLMultiRowInsert(t *testing.T) {
	stmts, err := ParseSQL("insert into t values (1), (2), (3);")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("want 3 statements, got %d", len(stmts))
	}
	for i, s := range stmts {
		if s.Row[0].AsInt() != int64(i+1) {
			t.Errorf("row %d = %v", i, s.Row)
		}
	}
}

func TestParseSQLDeleteAndUpdate(t *testing.T) {
	stmts, err := ParseSQL(`
DELETE FROM v WHERE a = 2 AND b > '1962-01-01';
UPDATE v SET a = 7, b = 'x' WHERE a <> -1;
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("want 2 statements, got %d", len(stmts))
	}
	del := stmts[0]
	if del.Kind != StmtDelete || len(del.Where) != 2 {
		t.Fatalf("delete = %+v", del)
	}
	if del.Where[0].Op != datalog.OpEq || del.Where[1].Op != datalog.OpGt {
		t.Errorf("ops = %v %v", del.Where[0].Op, del.Where[1].Op)
	}
	up := stmts[1]
	if up.Kind != StmtUpdate || len(up.Set) != 2 || len(up.Where) != 1 {
		t.Fatalf("update = %+v", up)
	}
	if up.Where[0].Op != datalog.OpNe || up.Where[0].Val.AsInt() != -1 {
		t.Errorf("where = %+v", up.Where[0])
	}
}

func TestParseSQLTransactionMarkers(t *testing.T) {
	stmts, err := ParseSQL("BEGIN; INSERT INTO v VALUES (1); DELETE FROM v WHERE a = 1; END;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("markers should be skipped: %+v", stmts)
	}
}

func TestParseSQLQuotedStrings(t *testing.T) {
	stmts, err := ParseSQL("INSERT INTO v VALUES ('it''s');")
	if err != nil {
		t.Fatal(err)
	}
	if stmts[0].Row[0].AsString() != "it's" {
		t.Errorf("escaped quote wrong: %v", stmts[0].Row[0])
	}
}

func TestParseSQLOperatorsAndComparisons(t *testing.T) {
	stmts, err := ParseSQL("DELETE FROM v WHERE a <= 3 AND b >= 4 AND c != 5 AND d < 6;")
	if err != nil {
		t.Fatal(err)
	}
	w := stmts[0].Where
	want := []datalog.CmpOp{datalog.OpLe, datalog.OpGe, datalog.OpNe, datalog.OpLt}
	for i, op := range want {
		if w[i].Op != op {
			t.Errorf("cond %d op = %v, want %v", i, w[i].Op, op)
		}
	}
}

func TestParseSQLErrors(t *testing.T) {
	bad := []string{
		"INSERT v VALUES (1);",           // missing INTO
		"INSERT INTO v VALUES 1;",        // missing parens
		"INSERT INTO v VALUES (1;",       // unbalanced
		"DELETE v;",                      // missing FROM
		"UPDATE v a = 1;",                // missing SET
		"SELECT * FROM v;",               // unsupported statement
		"DELETE FROM v WHERE a ~ 2;",     // bad operator
		"INSERT INTO v VALUES ('abc);",   // unterminated string
		"DELETE FROM v WHERE a = 1 !",    // stray bang
		"INSERT INTO v VALUES (1) junk;", // trailing garbage
	}
	for _, src := range bad {
		if _, err := ParseSQL(src); err == nil {
			t.Errorf("ParseSQL(%q) should fail", src)
		}
	}
}

func TestExecSQLEndToEnd(t *testing.T) {
	db := setupUnion(t, true)
	if err := db.ExecSQL("BEGIN; INSERT INTO v VALUES (3); DELETE FROM v WHERE a = 2; END;"); err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Rel("r1")
	r2, _ := db.Rel("r2")
	if !r1.Contains(value.Tuple{value.Int(3)}) {
		t.Errorf("r1 = %v", r1)
	}
	if r2.Contains(value.Tuple{value.Int(2)}) {
		t.Errorf("r2 = %v", r2)
	}
	// Parse errors surface.
	if err := db.ExecSQL("DROP TABLE r1;"); err == nil {
		t.Error("unsupported SQL should fail")
	}
	if !strings.Contains(db.ExecSQL("SELECT 1;").Error(), "expected INSERT") {
		t.Error("error message should mention supported statements")
	}
}

func TestExecSQLUpdateThroughView(t *testing.T) {
	db := setupUnion(t, false)
	if err := db.ExecSQL("UPDATE v SET a = 9 WHERE a = 4;"); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if v.Contains(value.Tuple{value.Int(4)}) || !v.Contains(value.Tuple{value.Int(9)}) {
		t.Errorf("v = %v", v)
	}
}
