package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"birds/internal/datalog"
	"birds/internal/value"
	"birds/internal/wal"
)

// Crash-injection harness for the durability layer: recovery after a crash
// at ANY byte of the write-ahead log must leave the engine bit-identical to
// an uninterrupted run over the acknowledged prefix of writes — base
// tables, view contents, AND the counting IVM's support counts. Two fault
// models: truncate-the-log-after-N-bytes (every frame boundary plus
// mid-frame cuts, simulating a torn append), and kill-and-restart of a real
// child process mid-write-storm (SIGKILL, no shutdown path runs).

// crashOp is one recorded operation, applied identically to the durable
// primary and to the in-memory reference.
type crashOp func(*DB) error

func stmtOp(s Statement) crashOp { return func(db *DB) error { return db.Exec(s) } }

// makeCrashOps builds a deterministic operation stream over the maintainDB
// fixture: random single-statement transactions against r1/r2 (the
// execTable WAL hook), one bulk load (the KindBulkLoad hook plus the
// stale-view fallback), one view-targeted transaction (the applyPlan hook),
// and optionally one mid-stream checkpoint (log truncation under live
// traffic).
func makeCrashOps(seed int64, n int, withCheckpoint bool) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case i == n/3:
			rows := make([]value.Tuple, 0, 6)
			for k := 0; k < 6; k++ {
				rows = append(rows, tup(50+k, 50+k))
			}
			ops = append(ops, func(db *DB) error { return db.LoadTable("r1", rows) })
		case i == n/2:
			s := Delete("j", Eq("a", value.Int(int64(rng.Intn(5)))))
			ops = append(ops, stmtOp(s))
		case withCheckpoint && i == 2*n/3:
			ops = append(ops, func(db *DB) error {
				if db.Durable() {
					return db.Checkpoint()
				}
				return nil // the in-memory reference skips it
			})
		default:
			ops = append(ops, stmtOp(batchStmt(rng)))
		}
	}
	return ops
}

var crashRels = []string{"r1", "r2", "j", "lonely", "top"}
var crashViews = []string{"j", "lonely", "top"}

// initCounts forces every view's counting IVM into the initialized steady
// state (refreshing stale views first), so support counts are comparable
// between a recovered engine and an in-memory reference regardless of
// which side last took the full-refresh fallback.
func initCounts(t *testing.T, db *DB) {
	t.Helper()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, n := range db.viewOrder {
		if db.dirty[n] {
			if err := db.refresh(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, n := range db.viewOrder {
		if _, err := db.views[n].getEval.EvalDelta(db.store, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// assertSameDurableState is the differential oracle: every base table and
// view relation equal, and every view tuple's support count equal.
func assertSameDurableState(t *testing.T, got, want *DB, label string) {
	t.Helper()
	if d := diffDurableState(t, got, want); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
}

// diffDurableState compares got against want like assertSameDurableState
// but reports the first mismatch instead of failing, so a caller can probe
// multiple admissible reference states (the fault matrix's recovered ⊆
// attempted check). It still fails the test on infrastructure errors.
func diffDurableState(t *testing.T, got, want *DB) string {
	t.Helper()
	for _, name := range crashRels {
		g, err := got.Get(name)
		if err != nil {
			t.Fatalf("recovered %s: %v", name, err)
		}
		w, err := want.Get(name)
		if err != nil {
			t.Fatalf("reference %s: %v", name, err)
		}
		if !g.Equal(w) {
			return fmt.Sprintf("%s = %v, want %v", name, g, w)
		}
	}
	initCounts(t, got)
	initCounts(t, want)
	for _, name := range crashViews {
		gv, wv := got.View(name), want.View(name)
		p := datalog.Pred(name)
		rel, err := want.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		diff := ""
		rel.Each(func(tp value.Tuple) {
			if diff != "" {
				return
			}
			wc := wv.getEval.SupportCount(p, tp)
			if wc <= 0 {
				t.Fatalf("reference count for %s%v not initialized", name, tp)
			}
			if gc := gv.getEval.SupportCount(p, tp); gc != wc {
				diff = fmt.Sprintf("view %s support%v = %d, want %d", name, tp, gc, wc)
			}
		})
		if diff != "" {
			return diff
		}
	}
	return ""
}

// frameBoundariesOf walks the frame length fields of a log image and
// returns every complete-frame boundary offset, starting at 0.
func frameBoundariesOf(data []byte) []int {
	bounds := []int{0}
	off := 0
	for off+8 <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if off+8+n > len(data) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// segImage is one WAL segment's name and full contents.
type segImage struct {
	name string
	data []byte
}

// readWAL snapshots the log segments of dir in replay order. Frames never
// span segments, so the concatenation of the images is the contiguous
// record stream.
func readWAL(t *testing.T, dir string) []segImage {
	t.Helper()
	var out []segImage
	for _, name := range wal.Segments(nil, dir) {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, segImage{name: name, data: data})
	}
	return out
}

// concatWAL joins segment images into the contiguous record stream.
func concatWAL(segs []segImage) []byte {
	var all []byte
	for _, s := range segs {
		all = append(all, s.data...)
	}
	return all
}

// writeWALCut materializes the first cut bytes of the concatenated stream
// into dir, preserving the original segment boundaries: segments fully
// below the cut are copied whole, the segment holding the cut is
// truncated, later segments are omitted — exactly the on-disk shape of a
// crash at that point.
func writeWALCut(t *testing.T, dir string, segs []segImage, cut int) {
	t.Helper()
	for _, s := range segs {
		n := len(s.data)
		if cut < n {
			n = cut
		}
		if err := os.WriteFile(filepath.Join(dir, s.name), s.data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		cut -= n
		if cut <= 0 {
			break
		}
	}
}

// walBytes sums the sizes of dir's log segments.
func walBytes(dir string) int64 {
	var total int64
	for _, name := range wal.Segments(nil, dir) {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
			total += st.Size()
		}
	}
	return total
}

// copyCheckpoints copies the checkpoint generation files from src to dst.
func copyCheckpoints(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "checkpoint-") || !strings.HasSuffix(e.Name(), ".ckpt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWALTruncationDifferential is the truncate-after-N-bytes fault
// injection: run a deterministic op stream on a durable engine, then for
// cut points across the whole log — every frame boundary and mid-frame
// offsets — recover from (checkpoints + log[:cut]) and diff against an
// in-memory reference that executed exactly the acknowledged prefix. A cut
// inside a frame is the torn tail of a crashed append: the partial record
// was never acknowledged and must be skipped silently.
func TestWALTruncationDifferential(t *testing.T) {
	for trial, withCkpt := range []bool{false, true} {
		t.Run(fmt.Sprintf("midCheckpoint=%v", withCkpt), func(t *testing.T) {
			const nOps = 45
			ops := makeCrashOps(97+int64(trial), nOps, withCkpt)

			primaryDir := t.TempDir()
			db := maintainDB(t)
			if err := db.EnableDurability(DurabilityOptions{Dir: primaryDir, Sync: wal.SyncOff, CheckpointEvery: -1}); err != nil {
				t.Fatal(err)
			}
			// lsnAfter maps each op to the log position after it: the
			// acknowledged prefix for a recovery at LSN L is every op with
			// lsnAfter ≤ L (no-op transactions append nothing and change
			// nothing, so they ride along with the preceding LSN).
			lsnAfter := make([]uint64, nOps)
			for i, op := range ops {
				if err := op(db); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
				lsnAfter[i] = db.LastLSN()
			}
			if err := db.DisableDurability(); err != nil {
				t.Fatal(err)
			}

			segs := readWAL(t, primaryDir)
			logData := concatWAL(segs)
			bounds := frameBoundariesOf(logData)
			cutSet := make(map[int]bool)
			for i, b := range bounds {
				cutSet[b] = true
				if i > 0 { // a mid-frame cut: torn tail
					cutSet[(bounds[i-1]+b)/2] = true
				}
			}
			cutSet[len(logData)] = true
			cuts := make([]int, 0, len(cutSet))
			for c := range cutSet {
				cuts = append(cuts, c)
			}
			sort.Ints(cuts)

			// The reference advances monotonically with the (ascending)
			// cuts, so the whole sweep costs one pass over the op stream.
			ref := maintainDB(t)
			refApplied := 0
			for _, cut := range cuts {
				dir := t.TempDir()
				copyCheckpoints(t, primaryDir, dir)
				writeWALCut(t, dir, segs, cut)
				rec, stats, err := Recover(dir)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				for refApplied < nOps && lsnAfter[refApplied] <= stats.LastLSN {
					if err := ops[refApplied](ref); err != nil {
						t.Fatalf("reference op %d: %v", refApplied, err)
					}
					refApplied++
				}
				label := fmt.Sprintf("cut %d/%d (LSN %d, torn=%v)", cut, len(logData), stats.LastLSN, stats.TornTail)
				assertSameDurableState(t, rec, ref, label)
				if err := rec.Close(); err != nil {
					t.Fatal(err)
				}
			}

			// Post-recovery continuation: the engine recovered from the full
			// log keeps running in lockstep with the reference.
			dir := t.TempDir()
			copyCheckpoints(t, primaryDir, dir)
			writeWALCut(t, dir, segs, len(logData))
			rec, _, err := Recover(dir)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range makeCrashOps(7+int64(trial), 12, false) {
				if err := op(rec); err != nil {
					t.Fatalf("continuation op %d on recovered: %v", i, err)
				}
				if err := op(ref); err != nil {
					t.Fatalf("continuation op %d on reference: %v", i, err)
				}
			}
			assertSameDurableState(t, rec, ref, "post-recovery continuation")
		})
	}
}

// TestRecoverMidLogCorruption pins the other half of the torn-tail
// contract: a corrupt record FOLLOWED by well-formed records is not a torn
// tail — acknowledged writes would be silently lost — so recovery must
// refuse with a hard error.
func TestRecoverMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	db := maintainDB(t)
	if err := db.EnableDurability(DurabilityOptions{Dir: dir, Sync: wal.SyncOff, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Exec(Insert("r1", value.Int(int64(i)), value.Int(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.DisableDurability(); err != nil {
		t.Fatal(err)
	}
	segs := readWAL(t, dir)
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %d", len(segs))
	}
	logPath := filepath.Join(dir, segs[0].name)
	data := segs[0].data
	data[8+2] ^= 0xff // a payload byte of the first record
	if err := os.WriteFile(logPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Recover(dir); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Recover on mid-log corruption: got %v, want ErrCorrupt", err)
	}
}

// TestCheckpointDuringBatchAdmission pins the checkpoint/batch race: a
// checkpoint taken while transactions sit admitted-but-unflushed must not
// cover them (they are not yet acknowledged, not yet in the WAL), and the
// later flush record must land strictly after the checkpoint LSN — so the
// batch survives a crash through the log tail, not the snapshot.
func TestCheckpointDuringBatchAdmission(t *testing.T) {
	dir := t.TempDir()
	db := maintainDB(t)
	if err := db.EnableDurability(DurabilityOptions{Dir: dir, Sync: wal.SyncOnFlush, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	db.SetBatching(BatchOptions{MaxTxns: -1}) // explicit flush only
	ref := maintainDB(t)

	stmts := []Statement{
		Insert("r1", value.Int(1), value.Int(2)),
		Insert("r2", value.Int(2), value.Int(3)),
		Insert("r1", value.Int(3), value.Int(2)),
	}
	for _, s := range stmts {
		if err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
		if err := ref.Exec(s); err != nil {
			t.Fatal(err)
		}
	}

	ckLSN := db.LastLSN()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.LastLSN(); got != ckLSN {
		t.Fatalf("checkpoint consumed LSNs: %d -> %d", ckLSN, got)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := db.LastLSN(); got != ckLSN+1 {
		t.Fatalf("flush record LSN = %d, want %d (strictly after the checkpoint)", got, ckLSN+1)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	rec, stats, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CheckpointLSN != ckLSN || stats.Replayed != 1 {
		t.Fatalf("recovery loaded checkpoint %d and replayed %d records, want checkpoint %d and 1 record",
			stats.CheckpointLSN, stats.Replayed, ckLSN)
	}
	if !rec.Batching() {
		t.Fatal("recovery did not restore the batching configuration")
	}
	assertSameDurableState(t, rec, ref, "batch admitted across a checkpoint")
}

// TestFlushAppendErrorDegradesToReadOnly pins the group-commit
// acknowledgment contract under a storage failure: when the batch's WAL
// append fails, the flush reports the error, the store and every view
// stay exactly as they were (nothing unlogged is ever visible), and the
// engine transitions to read-only degraded mode — the poisoned log is
// never retried. Reads keep working throughout; Reopen recovers from disk
// and restores writes.
func TestFlushAppendErrorDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	ffs := wal.NewFaultFS(nil, 1)
	db := maintainDB(t)
	if err := db.EnableDurability(DurabilityOptions{Dir: dir, Sync: wal.SyncOff, CheckpointEvery: -1, FS: ffs}); err != nil {
		t.Fatal(err)
	}
	ref := maintainDB(t)

	// One durable committed write before the failure: it must survive the
	// whole episode.
	pre := Insert("r1", value.Int(1), value.Int(1))
	if err := db.Exec(pre); err != nil {
		t.Fatal(err)
	}
	if err := ref.Exec(pre); err != nil {
		t.Fatal(err)
	}

	bt := db.Batch(BatchOptions{MaxTxns: -1})
	stmts := []Statement{
		Insert("r1", value.Int(7), value.Int(8)),
		Insert("r2", value.Int(8), value.Int(9)),
	}
	for _, s := range stmts {
		if err := bt.Exec(s); err != nil {
			t.Fatal(err)
		}
	}

	before := make(map[string]*value.Relation)
	for _, name := range crashRels {
		r, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		before[name] = r
	}

	boom := errors.New("injected: device out of space")
	ffs.Inject(&wal.Rule{Op: wal.OpWrite, Err: boom, Once: true})
	if err := bt.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush with failing append: got %v, want the injected error", err)
	}
	for _, name := range crashRels {
		r, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Equal(before[name]) {
			t.Fatalf("failed flush mutated %s: %v, was %v", name, r, before[name])
		}
	}

	// The engine is degraded: every write path fails fast with ErrReadOnly
	// (the poisoned log is never retried), reads keep being served.
	if err := db.ReadOnly(); err == nil {
		t.Fatal("failed flush did not degrade the engine")
	}
	if err := db.Exec(Insert("r1", value.Int(2), value.Int(2))); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("direct write while degraded: got %v, want ErrReadOnly", err)
	}
	if err := bt.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("flush retry while degraded: got %v, want ErrReadOnly", err)
	}
	if err := db.LoadTable("r1", []value.Tuple{tup(3, 3)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("bulk load while degraded: got %v, want ErrReadOnly", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("checkpoint while degraded: got %v, want ErrReadOnly", err)
	}
	if _, err := db.Get("r1"); err != nil {
		t.Fatalf("read while degraded: %v", err)
	}

	// Reopen recovers from disk: exactly the acknowledged writes (the
	// failed batch was never logged, so it is gone), then writes work.
	if err := db.Reopen(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := db.ReadOnly(); err != nil {
		t.Fatalf("still degraded after reopen: %v", err)
	}
	assertSameDurableState(t, db, ref, "after reopen")
	for _, s := range stmts {
		if err := db.Exec(s); err != nil {
			t.Fatalf("write after reopen: %v", err)
		}
		if err := ref.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	assertSameDurableState(t, db, ref, "continuation after reopen")

	// And the continuation is durable: recover the directory cold.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := RecoverFS(ffs, dir)
	if err != nil {
		t.Fatal(err)
	}
	assertSameDurableState(t, rec, ref, "recovered after reopen continuation")
}

// effectiveStmt is the kill-and-restart op stream: every op has a non-empty
// net delta by construction, so op i is exactly WAL record i+1 and a
// recovered LastLSN identifies the acknowledged op prefix.
func effectiveStmt(i int) Statement {
	switch i % 4 {
	case 0:
		return Insert("r1", value.Int(int64(i)), value.Int(int64(i)))
	case 1:
		return Insert("r2", value.Int(int64(i)), value.Int(int64(i)))
	case 2: // op i-1 put r2(i-1, i-1) there; rewrite its c column
		return Update("r2",
			[]Assignment{{Col: "c", Val: value.Int(int64(i + 1000))}},
			Eq("b", value.Int(int64(i-1))))
	default: // op i-3 put r1(i-3, i-3) there; no other op touches it
		return Delete("r1", Eq("a", value.Int(int64(i-3))))
	}
}

func crashEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// TestCrashRestartDifferential is the kill-and-restart harness: a child
// process (this test binary re-exec'd) runs a deterministic write storm
// with fsync-on-commit until the parent SIGKILLs it mid-flight — no
// shutdown path runs, the log ends wherever the kernel left it. The parent
// recovers the directory and diffs against a reference that executed
// exactly the acknowledged prefix, then runs both onward in lockstep.
// Tunables: BIRDS_CRASH_TRIALS (default 2), BIRDS_CRASH_SEED (kill-timing
// seed, default 1).
func TestCrashRestartDifferential(t *testing.T) {
	if dir := os.Getenv("BIRDS_CRASH_DIR"); dir != "" {
		// Child mode: write until killed.
		db := maintainDB(t)
		if err := db.EnableDurability(DurabilityOptions{Dir: dir, Sync: wal.SyncOnCommit, CheckpointEvery: -1}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1<<20; i++ {
			if err := db.Exec(effectiveStmt(i)); err != nil {
				t.Fatal(err)
			}
		}
		select {} // outlived the storm; wait for the kill
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	trials := crashEnvInt("BIRDS_CRASH_TRIALS", 2)
	if testing.Short() {
		trials = 1
	}
	rng := rand.New(rand.NewSource(int64(crashEnvInt("BIRDS_CRASH_SEED", 1))))

	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		var childOut bytes.Buffer
		cmd := exec.Command(exe, "-test.run", "^TestCrashRestartDifferential$")
		cmd.Env = append(os.Environ(), "BIRDS_CRASH_DIR="+dir)
		cmd.Stdout = &childOut
		cmd.Stderr = &childOut
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}

		deadline := time.Now().Add(30 * time.Second)
		for {
			if walBytes(dir) > 256 {
				break
			}
			if time.Now().After(deadline) {
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("trial %d: child never started writing; output:\n%s", trial, childOut.String())
			}
			time.Sleep(2 * time.Millisecond)
		}
		time.Sleep(time.Duration(2+rng.Intn(40)) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		rec, stats, err := Recover(dir)
		if err != nil {
			t.Fatalf("trial %d: recover: %v\nchild output:\n%s", trial, err, childOut.String())
		}
		n := int(stats.LastLSN)
		ref := maintainDB(t)
		for i := 0; i < n; i++ {
			if err := ref.Exec(effectiveStmt(i)); err != nil {
				t.Fatalf("trial %d: reference op %d: %v", trial, i, err)
			}
		}
		label := fmt.Sprintf("trial %d (killed at LSN %d, torn=%v)", trial, stats.LastLSN, stats.TornTail)
		assertSameDurableState(t, rec, ref, label)

		for i := n; i < n+8; i++ {
			if err := rec.Exec(effectiveStmt(i)); err != nil {
				t.Fatalf("%s: continuation op %d on recovered: %v", label, i, err)
			}
			if err := ref.Exec(effectiveStmt(i)); err != nil {
				t.Fatalf("%s: continuation op %d on reference: %v", label, i, err)
			}
		}
		assertSameDurableState(t, rec, ref, label+" continuation")
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
