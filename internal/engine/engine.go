// Package engine is the relational execution substrate standing in for
// PostgreSQL in the paper's experiments (§6.1): an in-memory RDBMS with
// base tables, materialized updatable views, DML statements, transactions
// (Algorithm 2's view-delta derivation), and INSTEAD OF trigger semantics.
//
// Registering a view installs its validated putback strategy as the
// trigger. A view update derives the view delta ΔV from the DML statements,
// checks the integrity constraints, evaluates the strategy (the original
// putdelta, or the incrementalized ∂put of Section 5), and applies the
// source deltas. A source that is itself a view cascades the propagation —
// the view-over-view updating of the §3.3 case study (residents1962 updates
// residents, which updates the base tables).
package engine

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"birds/internal/cdc"
	"birds/internal/core"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/sat"
	"birds/internal/value"
	"birds/internal/wal"
)

// DB is an in-memory relational database with updatable views. All public
// methods are safe for concurrent use. Transactions serialize on a write
// lock; read-only operations (Rel on tables and clean views, IsView, View,
// Relations) run concurrently under a read lock. Reading a stale view
// upgrades to the write lock, because rematerialization mutates the store.
type DB struct {
	mu          sync.RWMutex
	store       *eval.Database
	tables      map[string]*datalog.RelDecl
	views       map[string]*View
	dirty       map[string]bool // views whose materialization is stale
	viewOrder   []string        // views in dependency order (sources first); rebuilt on CreateView
	parallelism int             // evaluator workers for views (0 = sequential)
	execMode    eval.ExecMode   // execution strategy for view evaluators (zero = streaming)

	// batcher, when non-nil, routes Exec through the group-commit write
	// pipeline (batch.go). Atomic so Exec can read it without taking the
	// engine lock (the batcher has its own lock discipline).
	batcher atomic.Pointer[Batcher]

	// dur, when non-nil, is the crash-durability state (durable.go): the
	// attached write-ahead log and checkpoint policy. Guarded by mu — every
	// write path holds the write lock at its WAL hook, which is what makes
	// log order identical to commit order.
	dur *durability

	// hub, when non-nil, is the change-data-capture subscription hub
	// (subscribe.go). Created lazily by the first Subscribe and kept for
	// the life of the DB (it survives Reopen — subscriptions outlive a
	// state swap by resyncing). Guarded by mu; every publish site holds
	// the write lock, so hub sequence order is commit order.
	hub *cdc.Hub

	// ro, when non-nil, is the storage failure that forced read-only
	// degraded mode (degrade.go): every write path fails fast with
	// ErrReadOnly until Reopen recovers from disk. Guarded by mu.
	ro error
	// reopening guards against concurrent Reopen calls. Guarded by mu.
	reopening bool
}

// View is a registered updatable view: its schema, validated strategy
// (the INSTEAD OF trigger), derived get, and compiled evaluators.
type View struct {
	Decl        *datalog.RelDecl
	Strategy    *core.Putback
	Get         []*datalog.Rule
	Incremental bool

	getEval  *eval.Evaluator
	incEval  *eval.Evaluator // ∂put (nil unless Incremental)
	consEval *eval.Evaluator // delta-substituted constraints (nil unless Incremental)
	sources  []string        // source relation names (tables or views)

	// getIDB holds the IDB predicates of the get program — the relations
	// (view plus auxiliaries) the counting IVM of getEval materializes and
	// maintains. allIDB additionally covers the strategy, ∂put and
	// constraint programs, whose evaluation overwrites those relations in
	// the shared store; both sets drive the cross-view IVM invalidation in
	// maintain.go.
	getIDB map[datalog.PredSym]bool
	allIDB map[datalog.PredSym]bool
	// Precomputed at registration (the sets above are fixed then):
	// getOverlap lists the other views whose get programs share a
	// predicate with this view's get program (mutual — maintaining or
	// refreshing one clobbers the other's counted relations); allOverlap
	// lists the views whose get programs share a predicate with ANY of
	// this view's programs (running this view's putback machinery clobbers
	// their counted relations).
	getOverlap []*View
	allOverlap []*View
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		store:  eval.NewDatabase(),
		tables: make(map[string]*datalog.RelDecl),
		views:  make(map[string]*View),
		dirty:  make(map[string]bool),
	}
}

// SetParallelism sets the number of worker goroutines the evaluators behind
// view operations (materialization, trigger evaluation, constraint checks)
// may use, for existing and future views. p <= 0 selects the
// GOMAXPROCS-derived default; 1 restores sequential evaluation. Transactions
// still serialize on the engine's write lock — parallelism is inside one
// evaluation, and results are identical to sequential evaluation.
func (db *DB) SetParallelism(p int) {
	if p <= 0 {
		p = eval.DefaultParallelism()
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.parallelism = p
	for _, v := range db.views {
		v.setParallelism(p)
	}
}

// setParallelism applies the worker budget to every evaluator of the view.
func (v *View) setParallelism(p int) {
	v.getEval.SetParallelism(p)
	if v.incEval != nil {
		v.incEval.SetParallelism(p)
	}
	if v.consEval != nil {
		v.consEval.SetParallelism(p)
	}
	v.Strategy.Evaluator().SetParallelism(p)
}

// SetExecMode selects the execution strategy for full evaluations behind
// view operations, for existing and future views: eval.ExecStreaming (the
// default) pipelines joins through ephemeral hash tables built on the small
// side; eval.ExecMaterialized restores the index-everything executor. The
// two produce identical results — materialized mode exists as the
// differential oracle and as an escape hatch. Incremental delta propagation
// is unaffected either way.
func (db *DB) SetExecMode(m eval.ExecMode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.execMode = m
	for _, v := range db.views {
		v.setExecMode(m)
	}
}

// setExecMode applies the execution strategy to every evaluator of the view.
func (v *View) setExecMode(m eval.ExecMode) {
	v.getEval.SetExecMode(m)
	if v.incEval != nil {
		v.incEval.SetExecMode(m)
	}
	if v.consEval != nil {
		v.consEval.SetExecMode(m)
	}
	v.Strategy.Evaluator().SetExecMode(m)
}

// CreateTable registers a base table.
func (db *DB) CreateTable(decl *datalog.RelDecl) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[decl.Name]; ok {
		return fmt.Errorf("engine: table %q already exists", decl.Name)
	}
	if _, ok := db.views[decl.Name]; ok {
		return fmt.Errorf("engine: %q already exists as a view", decl.Name)
	}
	db.tables[decl.Name] = decl
	db.store.Ensure(datalog.Pred(decl.Name), decl.Arity())
	// DDL lives in checkpoints, not WAL records: a new table must be in the
	// durable catalog before any row record can target it. A table the
	// catalog cannot hold cannot exist.
	if err := db.ddlCheckpointLocked(); err != nil {
		delete(db.tables, decl.Name)
		return fmt.Errorf("engine: create table %q: %w", decl.Name, err)
	}
	return nil
}

// ViewOptions configures CreateView.
type ViewOptions struct {
	// ExpectedGet optionally provides the intended view definition; the
	// validator confirms it or derives one.
	ExpectedGet []*datalog.Rule
	// Incremental installs the ∂put program of Section 5 instead of the
	// original putdelta.
	Incremental bool
	// SkipValidation trusts the strategy without running Algorithm 1
	// (ExpectedGet is then required). Used by benchmarks that validate
	// separately.
	SkipValidation bool
	// Oracle overrides the validation oracle configuration.
	Oracle *sat.Config
	// Parallelism overrides the engine's evaluator worker count for this
	// view: 0 inherits DB.SetParallelism, 1 forces sequential evaluation,
	// > 1 uses that many workers, < 0 the GOMAXPROCS-derived default.
	Parallelism int
}

// CreateView parses, validates and registers an updatable view from a
// putback program, then materializes it.
func (db *DB) CreateView(src string, opts ViewOptions) (*View, error) {
	prog, err := datalog.Parse(src)
	if err != nil {
		return nil, err
	}
	return db.CreateViewFromProgram(prog, opts)
}

// CreateViewFromProgram is CreateView for an already-parsed program.
func (db *DB) CreateViewFromProgram(prog *datalog.Program, opts ViewOptions) (*View, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if prog.View == nil {
		return nil, fmt.Errorf("engine: putback program must declare a view")
	}
	name := prog.View.Name
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("engine: %q already exists as a table", name)
	}
	if _, ok := db.views[name]; ok {
		return nil, fmt.Errorf("engine: view %q already exists", name)
	}
	for _, s := range prog.Sources {
		existing := db.relDecl(s.Name)
		if existing == nil {
			return nil, fmt.Errorf("engine: source relation %q does not exist", s.Name)
		}
		if existing.Arity() != s.Arity() {
			return nil, fmt.Errorf("engine: source %q has arity %d, program declares %d",
				s.Name, existing.Arity(), s.Arity())
		}
	}

	pb, err := core.NewPutback(prog)
	if err != nil {
		return nil, err
	}
	v := &View{Decl: prog.View, Strategy: pb, Incremental: opts.Incremental}
	for _, s := range prog.Sources {
		v.sources = append(v.sources, s.Name)
	}

	if opts.SkipValidation {
		if opts.ExpectedGet == nil {
			return nil, fmt.Errorf("engine: SkipValidation requires ExpectedGet")
		}
		v.Get = opts.ExpectedGet
	} else {
		vopts := core.DefaultOptions()
		if opts.Oracle != nil {
			vopts.Oracle = *opts.Oracle
		}
		res, err := core.Validate(pb, opts.ExpectedGet, vopts)
		if err != nil {
			return nil, err
		}
		if !res.Valid {
			return nil, fmt.Errorf("engine: invalid update strategy for view %q: %w", name, res.Failure)
		}
		v.Get = res.Get
	}

	if v.getEval, err = eval.New(core.GetProgram(prog, v.Get)); err != nil {
		return nil, fmt.Errorf("engine: get program for %q: %w", name, err)
	}
	if opts.Incremental {
		inc, err := core.Incrementalize(prog)
		if err != nil {
			return nil, err
		}
		if v.incEval, err = eval.New(inc); err != nil {
			return nil, fmt.Errorf("engine: ∂put for %q: %w", name, err)
		}
		if v.consEval, err = deltaConstraintEvaluator(prog); err != nil {
			return nil, err
		}
	}

	v.getIDB = make(map[datalog.PredSym]bool)
	idbPredsOf(v.getEval.Program(), v.getIDB)
	v.allIDB = make(map[datalog.PredSym]bool)
	idbPredsOf(v.getEval.Program(), v.allIDB)
	idbPredsOf(v.Strategy.Prog, v.allIDB)
	if v.incEval != nil {
		idbPredsOf(v.incEval.Program(), v.allIDB)
	}
	if v.consEval != nil {
		idbPredsOf(v.consEval.Program(), v.allIDB)
	}

	par := opts.Parallelism
	switch {
	case par == 0:
		par = db.parallelism
	case par < 0:
		par = eval.DefaultParallelism()
	}
	if par > 0 {
		v.setParallelism(par)
	}
	v.setExecMode(db.execMode)

	// The initial materialization below may overwrite auxiliary relations
	// an existing view's get program also materializes; those views' counts
	// must not survive it. The new view's own overlap lists are built only
	// after its refresh succeeds (registerMaintenance), so sweep directly.
	for _, w := range db.views {
		if predsIntersect(w.getIDB, v.getIDB) {
			w.getEval.InvalidateIVM()
		}
	}
	db.views[name] = v
	db.dirty[name] = true
	if err := db.refresh(name); err != nil {
		delete(db.views, name)
		return nil, err
	}
	db.registerMaintenance(v)
	// Persist the catalog change (view program, validated get rules,
	// maintenance mode) before acknowledging the DDL; roll the registration
	// back if it cannot be made durable.
	if err := db.ddlCheckpointLocked(); err != nil {
		delete(db.views, name)
		delete(db.dirty, name)
		db.unregisterMaintenance(v)
		return nil, fmt.Errorf("engine: create view %q: %w", name, err)
	}
	return v, nil
}

// deltaConstraintEvaluator builds an evaluator for the constraints with the
// view atom substituted by the insertion delta +v, so that admissibility of
// an update is checked against the inserted tuples only (deletions cannot
// introduce a violation of a linear-view constraint, and previously present
// tuples were checked by earlier transactions).
func deltaConstraintEvaluator(prog *datalog.Program) (*eval.Evaluator, error) {
	view := prog.View.Name
	p := &datalog.Program{Sources: prog.Sources, View: prog.View}
	needed := make(map[datalog.PredSym]bool)
	for _, r := range prog.Constraints() {
		nr := r.Clone()
		for i := range nr.Body {
			l := &nr.Body[i]
			if l.Atom == nil {
				continue
			}
			if !l.Neg && l.Atom.Pred == datalog.Pred(view) {
				l.Atom.Pred = datalog.Ins(view)
			} else {
				needed[l.Atom.Pred] = true
			}
		}
		p.Rules = append(p.Rules, nr)
	}
	// Pull in only the auxiliary rules the constraint bodies actually
	// reach; copying every auxiliary rule would re-materialize relations
	// over the full base tables on every update and destroy the O(ΔV)
	// bound the incremental mode exists for.
	for changed := true; changed; {
		changed = false
		for _, r := range prog.NonConstraintRules() {
			if r.Head.Pred.IsDelta() || !needed[r.Head.Pred] {
				continue
			}
			for _, l := range r.Body {
				if l.Atom != nil && !needed[l.Atom.Pred] {
					needed[l.Atom.Pred] = true
					changed = true
				}
			}
		}
	}
	for _, r := range prog.NonConstraintRules() {
		if !r.Head.Pred.IsDelta() && needed[r.Head.Pred] {
			p.Rules = append(p.Rules, r.Clone())
		}
	}
	return eval.New(p)
}

// relDecl returns the declaration of a table or view, or nil.
func (db *DB) relDecl(name string) *datalog.RelDecl {
	if d, ok := db.tables[name]; ok {
		return d
	}
	if v, ok := db.views[name]; ok {
		return v.Decl
	}
	return nil
}

// Decl returns the declaration of a registered table or view, or nil.
// Declared attribute types are enforced at engine boundaries that choose
// to (the network server does); the engine core itself only checks arity.
func (db *DB) Decl(name string) *datalog.RelDecl {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.relDecl(name)
}

// IsView reports whether name is a registered view.
func (db *DB) IsView(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.views[name]
	return ok
}

// View returns the registered view, or nil.
func (db *DB) View(name string) *View {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.views[name]
}

// Stale reports whether a view's materialization is currently stale — the
// fallback state in which the next read fully recomputes it. Steady-state
// DML keeps views clean (maintained incrementally in place); bulk loads
// and maintenance failures mark them stale. Tables are never stale.
func (db *DB) Stale(name string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.dirty[name]
}

// Rel returns the current contents of a table or view (recomputing a stale
// view first). The returned relation must not be mutated, and it is live:
// a later transaction on the same relation updates it in place, so
// iterating it concurrently with writes to that relation is a data race.
// Callers that read while other goroutines may write should use Get, which
// returns an immutable O(1) copy-on-write snapshot instead.
//
// Tables and clean views are served under the read lock, so concurrent
// readers do not serialize. A stale view re-acquires the write lock
// (rematerialization mutates the store) and rechecks, since another
// transaction may have intervened.
func (db *DB) Rel(name string) (*value.Relation, error) {
	return db.read(name, false)
}

// read is the shared protocol behind Rel and Get: serve tables and clean
// views under the read lock; upgrade to the write lock (and recheck —
// another transaction may have intervened) to refresh a stale view. With
// snap the relation is wrapped in a copy-on-write snapshot before the lock
// is released, so no writer can slip in between resolution and snapshot.
func (db *DB) read(name string, snap bool) (*value.Relation, error) {
	out := func(r *value.Relation) *value.Relation {
		if snap {
			return r.Snapshot()
		}
		return r
	}
	db.mu.RLock()
	if d, ok := db.tables[name]; ok {
		r := out(db.store.RelOrEmpty(datalog.Pred(name), d.Arity()))
		db.mu.RUnlock()
		return r, nil
	}
	if v, ok := db.views[name]; ok && !db.dirty[name] {
		r := out(db.store.RelOrEmpty(datalog.Pred(name), v.Decl.Arity()))
		db.mu.RUnlock()
		return r, nil
	}
	db.mu.RUnlock()

	db.mu.Lock()
	defer db.mu.Unlock()
	if d, ok := db.tables[name]; ok {
		return out(db.store.RelOrEmpty(datalog.Pred(name), d.Arity())), nil
	}
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("engine: unknown relation %q", name)
	}
	if db.dirty[name] {
		if err := db.refresh(name); err != nil {
			return nil, err
		}
	}
	return out(db.store.RelOrEmpty(datalog.Pred(name), v.Decl.Arity())), nil
}

// Get returns an immutable snapshot of the current contents of a table or
// view (recomputing a stale view first). Taking the snapshot is O(1) — it
// shares the relation's storage copy-on-write, so no tuples are copied on
// the read path — and the snapshot keeps observing exactly the state at
// the time of the call: later transactions quietly divert the live
// relation onto private storage before mutating it. Snapshots are safe to
// iterate concurrently with writers; do not mutate them.
//
// Tables and clean views are served under the read lock, so concurrent
// readers do not serialize. A stale view re-acquires the write lock
// (rematerialization mutates the store) and rechecks, since another
// transaction may have intervened.
func (db *DB) Get(name string) (*value.Relation, error) {
	return db.read(name, true)
}

// Snapshot returns an immutable snapshot of the current contents of a
// table or view, safe to iterate while later transactions run. It is Get
// under its historical name: since snapshots went copy-on-write it no
// longer copies the relation, so there is no reason to prefer Rel for
// read-heavy workloads.
func (db *DB) Snapshot(name string) (*value.Relation, error) {
	return db.Get(name)
}

// GetAll returns immutable snapshots of several relations taken under ONE
// lock acquisition, so the returned map is a mutually consistent cut of the
// database: no transaction (and in particular no group-commit flush) can
// interleave between the individual snapshots. A view's snapshot therefore
// agrees exactly with the base-table snapshots it derives from — the
// atomic-visibility contract the server's torn-batch checker pins down.
// Each snapshot is O(1) copy-on-write, like Get's.
func (db *DB) GetAll(names ...string) (map[string]*value.Relation, error) {
	out := make(map[string]*value.Relation, len(names))
	db.mu.RLock()
	clean := true
	for _, n := range names {
		if _, ok := db.tables[n]; ok {
			continue
		}
		if _, ok := db.views[n]; !ok || db.dirty[n] {
			clean = false
			break
		}
	}
	if clean {
		for _, n := range names {
			d := db.relDecl(n)
			out[n] = db.store.RelOrEmpty(datalog.Pred(n), d.Arity()).Snapshot()
		}
		db.mu.RUnlock()
		return out, nil
	}
	db.mu.RUnlock()

	// A stale view (or an unknown name) forces the write lock:
	// rematerialization mutates the store. Recheck everything — another
	// transaction may have intervened.
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, n := range names {
		d := db.relDecl(n)
		if d == nil {
			return nil, fmt.Errorf("engine: unknown relation %q", n)
		}
		if db.dirty[n] {
			if err := db.refresh(n); err != nil {
				return nil, err
			}
		}
		out[n] = db.store.RelOrEmpty(datalog.Pred(n), d.Arity()).Snapshot()
	}
	return out, nil
}

// refresh fully rematerializes a view (and, first, its stale sources) —
// the fallback path for views whose incremental maintenance state is
// unavailable (bulk loads, maintenance errors, stale sources). Steady-state
// DML never comes through here: maintainViews adjusts clean views in place
// and leaves the dirty flag unset.
func (db *DB) refresh(name string) error {
	v := db.views[name]
	for _, s := range v.sources {
		if db.dirty[s] {
			if err := db.refresh(s); err != nil {
				return err
			}
		}
	}
	rel, err := v.getEval.EvalQuery(db.store, datalog.Pred(name))
	if err != nil {
		return err
	}
	// Eval already installed the freshly built (uniquely owned) relation
	// for the view predicate; installing again would redundantly rebuild
	// its indexes. Only install when the goal had no rules and EvalQuery
	// synthesized an empty relation.
	if p := datalog.Pred(name); db.store.Rel(p) != rel {
		db.store.Update(p, rel)
	}
	// The full evaluation above replaced this view's get-program relations
	// in the shared store; any other view materializing a same-named
	// auxiliary must not trust its counts anymore. (EvalQuery already
	// dropped v's own counts.)
	for _, w := range v.getOverlap {
		w.getEval.InvalidateIVM()
	}
	db.dirty[name] = false
	return nil
}

// markDependentsDirty flags every view that transitively reads any of the
// changed relations, except those in keep (already maintained exactly).
func (db *DB) markDependentsDirty(changed map[string]bool, keep map[string]bool) {
	for progress := true; progress; {
		progress = false
		for name, v := range db.views {
			if db.dirty[name] || keep[name] {
				continue
			}
			for _, s := range v.sources {
				if changed[s] || db.dirty[s] {
					db.dirty[name] = true
					changed[name] = true
					progress = true
					break
				}
			}
		}
	}
}

// LoadTable bulk-inserts rows into a base table (marking dependent views
// stale). The engine takes ownership of the row tuples — they are stored
// by reference, not copied — so callers must not mutate them afterwards
// (in particular, do not reuse one row buffer across loop iterations).
func (db *DB) LoadTable(name string, rows []value.Tuple) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.ro != nil {
		return db.readOnlyErrLocked()
	}
	decl, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("engine: unknown table %q", name)
	}
	// Validate every row before inserting any: a mid-load failure must not
	// leave rows in the store that dependent views were never told about.
	for _, r := range rows {
		if len(r) != decl.Arity() {
			return fmt.Errorf("engine: row arity %d does not match table %q arity %d", len(r), name, decl.Arity())
		}
	}
	p := datalog.Pred(name)
	inserted := make([]value.Tuple, 0, len(rows))
	for _, r := range rows {
		if db.store.Insert(p, r) {
			inserted = append(inserted, r)
		}
	}
	// One bulk-load WAL record for the whole load (rows already present are
	// excluded — replaying the record from the pre-load state reproduces
	// exactly the membership change the load made). The stale-view fallback
	// below and the WAL cannot disagree: a bulk load marks dependent views
	// dirty for a full refresh from base state, and recovery likewise
	// rebuilds every view from the recovered base state, so a crash at any
	// point yields the same refreshed views an uninterrupted run would.
	if len(inserted) > 0 {
		if err := db.logWrite(wal.KindBulkLoad, []wal.TableDelta{{Name: name, Arity: decl.Arity(), Ins: inserted}}); err != nil {
			for _, r := range inserted {
				db.store.Delete(p, r)
			}
			return err
		}
	}
	changed := map[string]bool{name: true}
	db.markDependentsDirty(changed, nil)
	// A bulk load is a visibility point like any other: subscribers of the
	// table get the exact inserted delta; subscribers of the views just
	// marked dirty are marked lost by publishLocked's dirty scan (no view
	// delta exists on this path) and resync instead of silently diverging.
	if h := db.hub; h != nil && !h.Quiet() {
		ch := make(map[string]eval.Delta, 1)
		if len(inserted) > 0 && h.Subscribed(name) {
			d := eval.NewDelta(decl.Arity())
			for _, r := range inserted {
				d.Ins.Add(r)
			}
			ch[name] = d
		}
		db.publishLocked(ch)
	}
	db.autoCheckpointLocked()
	return nil
}

// Relations lists the registered base tables and views, sorted, with a
// kind marker ("table" or "view").
func (db *DB) Relations() []RelationInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []RelationInfo
	for name, d := range db.tables {
		out = append(out, RelationInfo{Name: name, Kind: "table", Decl: d})
	}
	for name, v := range db.views {
		out = append(out, RelationInfo{Name: name, Kind: "view", Decl: v.Decl, Incremental: v.Incremental})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationInfo describes one registered relation.
type RelationInfo struct {
	Name        string
	Kind        string // "table" or "view"
	Decl        *datalog.RelDecl
	Incremental bool // views only: running the ∂put program
}

// Store exposes the underlying evaluation database for benchmarks and
// tests. It is not synchronized; do not use it concurrently with other
// operations.
func (db *DB) Store() *eval.Database { return db.store }
