package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"birds/internal/datalog"
	"birds/internal/value"
)

// Trust harness for the group-commit write pipeline: differential fuzzing
// (random DML through a Batcher ≡ the same statements applied serially
// one-at-a-time), per-transaction rollback inside a batch, snapshot
// isolation across flush boundaries, and a concurrent-admission race test.
// Run under -race: the admission-under-read-lock discipline is part of
// what is tested.

// batchStmt builds the random statement of one fuzz step against the
// maintainDB fixture tables (r1, r2).
func batchStmt(rng *rand.Rand) Statement {
	tables := []struct {
		name string
		cols [2]string
	}{{"r1", [2]string{"a", "b"}}, {"r2", [2]string{"b", "c"}}}
	tb := tables[rng.Intn(len(tables))]
	row := tup(rng.Intn(5), rng.Intn(5))
	switch rng.Intn(4) {
	case 0:
		return Insert(tb.name, row...)
	case 1:
		return Delete(tb.name, Eq(tb.cols[0], row[0]))
	case 2:
		// Non-equality WHERE exercises the scan-based effective match.
		return Delete(tb.name, Condition{Col: tb.cols[1], Op: datalog.OpLt, Val: row[1]})
	default:
		return Update(tb.name,
			[]Assignment{{Col: tb.cols[1], Val: row[1]}},
			Eq(tb.cols[0], row[0]))
	}
}

// assertSameEngineState fails unless both databases hold identical tables
// and identical, non-stale views.
func assertSameEngineState(t *testing.T, got, want *DB, label string) {
	t.Helper()
	for _, name := range []string{"r1", "r2", "j", "lonely", "top"} {
		g, err := got.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		w, err := want.Get(name)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !g.Equal(w) {
			t.Fatalf("%s: %s = %v, want %v", label, name, g, w)
		}
	}
	for _, vn := range []string{"j", "lonely", "top"} {
		if got.Stale(vn) {
			t.Fatalf("%s: view %q fell off the incremental path under batching", label, vn)
		}
	}
}

// TestBatcherDifferential is the core group-commit guarantee: admitting
// random transactions t1..tn through a Batcher and flushing (explicitly, by
// size trigger, or at Close) yields exactly the state of executing t1..tn
// serially one-at-a-time — base tables, view contents, and view cleanliness
// alike. Compared at every flush boundary, not just at the end.
func TestBatcherDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		dbSerial := maintainDB(t)
		dbBatch := maintainDB(t)
		bt := dbBatch.Batch(BatchOptions{MaxTxns: 2 + rng.Intn(6)})

		for step := 0; step < 150; step++ {
			s := batchStmt(rng)
			if err := dbSerial.Exec(s); err != nil {
				t.Fatalf("trial %d step %d: serial: %v", trial, step, err)
			}
			if err := bt.Exec(s); err != nil {
				t.Fatalf("trial %d step %d: batched: %v", trial, step, err)
			}
			if rng.Intn(10) == 0 {
				if err := bt.Flush(); err != nil {
					t.Fatal(err)
				}
			}
			if bt.Pending() == 0 {
				assertSameEngineState(t, dbBatch, dbSerial, fmt.Sprintf("trial %d step %d", trial, step))
			}
		}
		if err := bt.Close(); err != nil {
			t.Fatal(err)
		}
		assertSameEngineState(t, dbBatch, dbSerial, fmt.Sprintf("trial %d final", trial))
	}
}

// TestBatcherTxnRollback pins per-transaction atomicity inside a batch: a
// transaction that fails mid-admission contributes nothing, while the
// surrounding admitted transactions flush normally.
func TestBatcherTxnRollback(t *testing.T) {
	dbSerial := maintainDB(t)
	dbBatch := maintainDB(t)
	bt := dbBatch.Batch(BatchOptions{MaxTxns: -1})

	good1 := Insert("r1", value.Int(1), value.Int(2))
	good2 := Insert("r2", value.Int(2), value.Int(3))
	if err := dbSerial.Exec(good1); err != nil {
		t.Fatal(err)
	}
	if err := dbSerial.Exec(good2); err != nil {
		t.Fatal(err)
	}
	if err := bt.Exec(good1); err != nil {
		t.Fatal(err)
	}
	// Multi-statement transaction whose second statement fails: the first
	// statement's staged effect must roll back with it.
	err := bt.Exec(
		Insert("r1", value.Int(4), value.Int(4)),
		Delete("r1", Eq("nosuchcol", value.Int(0))),
	)
	if err == nil {
		t.Fatal("expected error from bad column")
	}
	if err := bt.Exec(Insert("r1", value.Int(9), value.Int(9), value.Int(9))); err == nil {
		t.Fatal("expected arity error")
	}
	if err := bt.Exec(good2); err != nil {
		t.Fatal(err)
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	assertSameEngineState(t, dbBatch, dbSerial, "after rollback")
	if r, _ := dbBatch.Get("r1"); r.Contains(tup(4, 4)) {
		t.Fatal("rolled-back transaction leaked into the store")
	}
}

// TestBatchSnapshotIsolation pins the consistency contract: a reader
// holding a DB.Get snapshot never observes a partially-flushed batch — the
// snapshot shows either none or all of a batch's effect on that relation,
// and snapshots taken mid-batch keep showing the pre-batch state after the
// flush. (As with all engine reads, Rel returns a live reference instead:
// under batching, exactly as under direct writes, it must not be iterated
// concurrently with a flush — use Get.)
func TestBatchSnapshotIsolation(t *testing.T) {
	db := maintainDB(t)
	if err := db.Exec(Insert("r1", value.Int(0), value.Int(0))); err != nil { // warm counts
		t.Fatal(err)
	}
	bt := db.Batch(BatchOptions{MaxTxns: -1})

	preR1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	preJ, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}

	const K = 20
	for i := 0; i < K; i++ {
		if err := bt.Exec(Insert("r1", value.Int(int64(100+i)), value.Int(1))); err != nil {
			t.Fatal(err)
		}
		if err := bt.Exec(Insert("r2", value.Int(1), value.Int(int64(100+i)))); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-batch: staged transactions are invisible to readers.
	midR1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !midR1.Equal(preR1) {
		t.Fatalf("mid-batch read observes staged rows: %v", midR1)
	}

	// Concurrent readers during the flush must see the batch's effect on a
	// relation all-or-nothing: every snapshot holds 0 or K of the batch
	// rows, and the join view likewise jumps atomically.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap, err := db.Get("r1")
				if err != nil {
					errs <- err.Error()
					return
				}
				n := 0
				for i := 0; i < K; i++ {
					if snap.Contains(tup(100+i, 1)) {
						n++
					}
				}
				if n != 0 && n != K {
					errs <- fmt.Sprintf("partial batch visible: %d of %d rows", n, K)
					return
				}
			}
		}()
	}
	if err := bt.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}

	// Snapshots taken before the flush keep the pre-batch state.
	if preR1.Contains(tup(100, 1)) || preJ.Contains(tup(100, 100)) {
		t.Fatal("pre-flush snapshot mutated by the flush")
	}
	if n := preR1.Len(); n != midR1.Len() {
		t.Fatalf("pre-flush snapshot changed size: %d vs %d", n, midR1.Len())
	}
	// Post-flush reads have the whole batch, views included and clean.
	postJ, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if !postJ.Contains(tup(100, 100)) {
		t.Fatalf("join view missing batch effect: %v", postJ)
	}
	if db.Stale("j") {
		t.Fatal("view fell off the incremental path")
	}
}

// TestBatcherConcurrentAdmission races many writers through one installed
// batcher (db.Exec routed) with a small size trigger, so admissions and
// flushes interleave. Writers touch disjoint key ranges, so every
// interleaving is serially equivalent to the same statements in any order;
// the final state must match a serial reference. Run under -race.
func TestBatcherConcurrentAdmission(t *testing.T) {
	dbBatch := maintainDB(t)
	dbSerial := maintainDB(t)
	dbBatch.SetBatching(BatchOptions{MaxTxns: 8})
	if !dbBatch.Batching() {
		t.Fatal("batching not installed")
	}

	const writers, perWriter = 4, 40
	stmtsOf := func(w int) []Statement {
		rng := rand.New(rand.NewSource(int64(1000 + w)))
		base := 100 * (w + 1)
		var out []Statement
		for i := 0; i < perWriter; i++ {
			a := base + rng.Intn(20)
			switch rng.Intn(3) {
			case 0:
				out = append(out, Insert("r1", value.Int(int64(a)), value.Int(int64(rng.Intn(5)))))
			case 1:
				out = append(out, Insert("r2", value.Int(int64(rng.Intn(5)+base)), value.Int(int64(a))))
			default:
				out = append(out, Delete("r1", Eq("a", value.Int(int64(a)))))
			}
		}
		return out
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, s := range stmtsOf(w) {
				if err := dbBatch.Exec(s); err != nil {
					errs <- err
					return
				}
				if _, err := dbBatch.Get("j"); err != nil { // concurrent snapshot reader
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := dbBatch.StopBatching(); err != nil {
		t.Fatal(err)
	}
	if dbBatch.Batching() {
		t.Fatal("batching still installed after StopBatching")
	}

	for w := 0; w < writers; w++ {
		for _, s := range stmtsOf(w) {
			if err := dbSerial.Exec(s); err != nil {
				t.Fatal(err)
			}
		}
	}
	assertSameEngineState(t, dbBatch, dbSerial, "concurrent vs serial")
}

// TestSetBatchingRouting pins the Exec routing: with batching installed,
// writes are invisible until DB.Flush; a view-targeted Exec flushes the
// pending batch first; StopBatching restores immediate propagation.
func TestSetBatchingRouting(t *testing.T) {
	db := maintainDB(t)
	db.SetBatching(BatchOptions{MaxTxns: -1})
	if err := db.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	r1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Contains(tup(1, 1)) {
		t.Fatal("staged write visible before flush")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	r1, err = db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Contains(tup(1, 1)) {
		t.Fatal("flushed write not visible")
	}

	// A view-targeted transaction flushes the staged batch before running.
	if err := db.Exec(Insert("r1", value.Int(7), value.Int(7))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r2", value.Int(7), value.Int(8))); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Delete("j", Eq("a", value.Int(7)))); err != nil {
		t.Fatal(err)
	}
	j, err := db.Get("j")
	if err != nil {
		t.Fatal(err)
	}
	if j.Contains(tup(7, 8)) {
		t.Fatalf("view delete did not see the flushed batch: %v", j)
	}

	if err := db.StopBatching(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r1", value.Int(2), value.Int(2))); err != nil {
		t.Fatal(err)
	}
	r1, err = db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Contains(tup(2, 2)) {
		t.Fatal("unbatched write not immediately visible")
	}
}

// TestBatcherIntervalFlush pins the interval trigger: a non-empty batch
// flushes FlushInterval after its first admission without any further
// writes or explicit Flush.
func TestBatcherIntervalFlush(t *testing.T) {
	db := maintainDB(t)
	bt := db.Batch(BatchOptions{MaxTxns: -1, FlushInterval: 20 * time.Millisecond})
	defer bt.Close()
	if err := bt.Exec(Insert("r1", value.Int(1), value.Int(1))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r1, err := db.Get("r1")
		if err != nil {
			t.Fatal(err)
		}
		if r1.Contains(tup(1, 1)) {
			if got := bt.Pending(); got != 0 {
				t.Fatalf("flushed but %d transactions still pending", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("interval trigger never flushed the batch")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestClosedInstalledBatcherFallsBack pins the routing edge the retry loop
// must not spin on: Close called directly on the batcher SetBatching
// installed (instead of StopBatching) uninstalls it on the next Exec,
// which then runs — and is immediately visible — on the direct path.
func TestClosedInstalledBatcherFallsBack(t *testing.T) {
	db := maintainDB(t)
	bt := db.SetBatching(BatchOptions{MaxTxns: -1})
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("r1", value.Int(5), value.Int(5))); err != nil {
		t.Fatal(err)
	}
	r1, err := db.Get("r1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Contains(tup(5, 5)) {
		t.Fatal("write through a closed installed batcher not applied directly")
	}
	if db.Batching() {
		t.Fatal("closed batcher still installed after fallback")
	}
}
