package engine

import (
	"strings"
	"testing"

	"birds/internal/value"
)

func TestLoadCSV(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "items(iid:int, iname:string, price:float, instock:bool).")); err != nil {
		t.Fatal(err)
	}
	csvData := `iid,iname,price,instock
1,hammer,9.5,true
2,kite,3,false
`
	n, err := db.LoadCSV("items", strings.NewReader(csvData), true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d rows, want 2", n)
	}
	rel, _ := db.Rel("items")
	want := value.Tuple{value.Int(1), value.Str("hammer"), value.Float(9.5), value.Bool(true)}
	if !rel.Contains(want) {
		t.Errorf("items = %v", rel)
	}
}

func TestLoadCSVNoHeader(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
		t.Fatal(err)
	}
	n, err := db.LoadCSV("r", strings.NewReader("1\n2\n3\n"), false)
	if err != nil || n != 3 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int, b:bool).")); err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"notanumber,true\n", // bad int
		"1,notabool\n",      // bad bool
		"1\n",               // wrong field count
	}
	for _, c := range cases {
		if _, err := db.LoadCSV("r", strings.NewReader(c), false); err == nil {
			t.Errorf("LoadCSV(%q) should fail", c)
		}
	}
	if _, err := db.LoadCSV("nope", strings.NewReader("1\n"), false); err == nil {
		t.Error("unknown table should fail")
	}
}

func TestDumpCSVRoundTrip(t *testing.T) {
	db := setupUnion(t, false)
	var sb strings.Builder
	if err := db.DumpCSV("v", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a\n") {
		t.Errorf("missing header: %q", out)
	}
	for _, want := range []string{"1", "2", "4"} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("dump missing %s:\n%s", want, out)
		}
	}
	// Round trip into a fresh table.
	db2 := NewDB()
	if err := db2.CreateTable(mustDecl(t, "t(a:int).")); err != nil {
		t.Fatal(err)
	}
	n, err := db2.LoadCSV("t", strings.NewReader(out), true)
	if err != nil || n != 3 {
		t.Fatalf("round trip: n=%d err=%v", n, err)
	}
}
