package engine

import (
	"sort"

	"birds/internal/datalog"
	"birds/internal/eval"
)

// This file wires the evaluator's counting-based IVM (eval.EvalDelta) into
// the engine's write path: DML against base tables (and the source deltas a
// view update cascades into them) feed net row deltas straight into every
// clean dependent view, so steady-state writes cost O(|Δ|) instead of the
// O(|DB|) full rematerialization the dirty flag used to force on the next
// read. The dirty flag remains as the fallback — bulk loads, maintenance
// errors and stale sources still mark a view dirty and refresh() fully
// recomputes it on the next read.
//
// The per-write bookkeeping is O(registered views): the dependency order
// and the predicate-overlap lists are precomputed at registration
// (registerMaintenance), not rebuilt per transaction.

// registerMaintenance precomputes the maintenance structures after a view
// is successfully registered: the dependency-ordered view list and the
// predicate-overlap lists driving cross-view IVM invalidation. Both depend
// only on the set of registered views, which changes only here. Must run
// under the write lock.
func (db *DB) registerMaintenance(v *View) {
	for _, w := range db.views {
		if w == v {
			continue
		}
		if predsIntersect(v.getIDB, w.getIDB) {
			v.getOverlap = append(v.getOverlap, w)
			w.getOverlap = append(w.getOverlap, v)
		}
		if predsIntersect(w.getIDB, v.allIDB) {
			v.allOverlap = append(v.allOverlap, w)
		}
		if predsIntersect(v.getIDB, w.allIDB) {
			w.allOverlap = append(w.allOverlap, v)
		}
	}

	db.rebuildViewOrder()
}

// rebuildViewOrder recomputes the dependency-ordered view list: topological
// order over view sources, ties broken by name. Must run under the write
// lock.
func (db *DB) rebuildViewOrder() {
	names := make([]string, 0, len(db.views))
	for n := range db.views {
		names = append(names, n)
	}
	sort.Strings(names)
	seen := make(map[string]bool, len(names))
	order := make([]string, 0, len(names))
	var visit func(n string)
	visit = func(n string) {
		w, ok := db.views[n]
		if !ok || seen[n] {
			return
		}
		seen[n] = true
		for _, s := range w.sources {
			visit(s)
		}
		order = append(order, n)
	}
	for _, n := range names {
		visit(n)
	}
	db.viewOrder = order
}

// unregisterMaintenance reverses registerMaintenance for a view whose
// registration is being rolled back (a failed DDL checkpoint must not leave
// a view the durable catalog does not know): it strips v from every
// sibling's overlap lists and rebuilds the dependency order. Must run under
// the write lock, after v was removed from db.views.
func (db *DB) unregisterMaintenance(v *View) {
	drop := func(list []*View) []*View {
		out := list[:0]
		for _, w := range list {
			if w != v {
				out = append(out, w)
			}
		}
		return out
	}
	for _, w := range db.views {
		w.getOverlap = drop(w.getOverlap)
		w.allOverlap = drop(w.allOverlap)
	}
	db.rebuildViewOrder()
}

// maintainViews propagates the net deltas of changed relations into the
// registered views, in dependency order. A clean view whose sources changed
// is maintained incrementally through its get evaluator's counting IVM —
// its materialization, auxiliary relations and indexes are adjusted in
// place, and its own net delta joins the changed set so views stacked on
// top of it are maintained the same way. Views in keep were updated exactly
// by the caller (the putback plan of a view-targeted transaction) and are
// only consulted for their recorded deltas. Fallbacks:
//
//   - a view that is already dirty stays dirty (its counts may not match
//     the store; the next read fully rematerializes it);
//   - a view with a dirty source goes dirty (its input is unknown);
//   - a maintenance error marks the view dirty and drops its counts.
//
// Views none of whose sources changed — including sources whose transaction
// produced a net-empty delta — are skipped outright and stay clean.
// maintainViews must run under the write lock.
func (db *DB) maintainViews(changed map[string]eval.Delta, keep map[string]bool) {
	for _, name := range db.viewOrder {
		if keep[name] {
			continue // maintained exactly by the caller's plan
		}
		if db.dirty[name] {
			continue // stays dirty; refresh() handles it on the next read
		}
		v := db.views[name]
		srcChanged, srcDirty := false, false
		for _, s := range v.sources {
			if db.dirty[s] {
				srcDirty = true
			}
			if d, ok := changed[s]; ok && !d.Empty() {
				srcChanged = true
			}
		}
		if srcDirty {
			db.dirty[name] = true
			continue
		}
		if !srcChanged {
			continue // net-empty delta: nothing to do, view stays clean
		}
		edb := make(map[datalog.PredSym]eval.Delta, len(v.sources))
		for _, s := range v.sources {
			if d, ok := changed[s]; ok {
				edb[datalog.Pred(s)] = d
			}
		}
		out, err := v.getEval.EvalDelta(db.store, edb)
		if err != nil {
			v.getEval.InvalidateIVM()
			db.dirty[name] = true
			continue
		}
		// The call rewrote this view's get-program relations (propagation
		// or re-init); a sibling whose get program shares an auxiliary
		// predicate name now holds counts for a relation this view owns.
		// Normally getOverlap is empty and this is a no-op; on collision
		// the sibling re-initializes on its next maintenance.
		for _, w := range v.getOverlap {
			w.getEval.InvalidateIVM()
		}
		if d, ok := out[datalog.Pred(name)]; ok && !d.Empty() {
			changed[name] = d
		}
	}
}

// invalidateForStrategyRun is called before a view's putback machinery
// (strategy, ∂put, delta constraints) evaluates over the shared store: the
// run overwrites the IDB relations of those programs, so the view's own
// get counts — and those of any view whose get program shares a predicate
// name with any of this view's programs — are no longer trustworthy.
func (db *DB) invalidateForStrategyRun(v *View) {
	v.getEval.InvalidateIVM()
	for _, w := range v.allOverlap {
		w.getEval.InvalidateIVM()
	}
}

// predsIntersect reports whether two predicate sets share an element.
func predsIntersect(a, b map[datalog.PredSym]bool) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for p := range a {
		if b[p] {
			return true
		}
	}
	return false
}

// idbPredsOf collects the non-constraint rule head predicates of a program.
func idbPredsOf(prog *datalog.Program, into map[datalog.PredSym]bool) {
	for _, r := range prog.Rules {
		if !r.IsConstraint() {
			into[r.Head.Pred] = true
		}
	}
}
