package engine

import (
	"testing"
)

// FuzzParseSQL checks the SQL DML parser never panics and that parsed
// statements carry structurally valid payloads.
func FuzzParseSQL(f *testing.F) {
	seeds := []string{
		"INSERT INTO v VALUES (1, 'a');",
		"insert into t values (1), (2), (3);",
		"DELETE FROM v WHERE a = 2 AND b > '1962-01-01';",
		"UPDATE v SET a = 7, b = 'x' WHERE a <> -1;",
		"BEGIN; INSERT INTO v VALUES (1); END;",
		"INSERT INTO v VALUES ('it''s');",
		"DELETE FROM v WHERE a <= 3 AND b >= 4 AND c != 5;",
		"SELECT * FROM v;",
		"INSERT INTO v VALUES (",
		";;;;",
		"UPDATE SET WHERE",
		"DELETE FROM v WHERE a = 'unterminated",
		"INSERT INTO v VALUES (1.5.5);",
		"\xffINSERT\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseSQL(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			switch s.Kind {
			case StmtInsert:
				if s.Row == nil {
					t.Fatalf("INSERT without row: %+v", s)
				}
			case StmtUpdate:
				if len(s.Set) == 0 {
					t.Fatalf("UPDATE without SET: %+v", s)
				}
			case StmtDelete:
				// WHERE may legitimately be empty (delete everything).
			default:
				t.Fatalf("unknown statement kind %d", s.Kind)
			}
			if s.Target == "" {
				t.Fatalf("statement without target: %+v", s)
			}
		}
	})
}
