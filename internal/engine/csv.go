package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"birds/internal/value"
)

// LoadCSV bulk-loads a base table from CSV. Values are converted according
// to the table's declared attribute types (int, float, bool; everything
// else is kept as a string — including dates, whose ISO text form orders
// correctly). When header is true the first record is skipped.
func (db *DB) LoadCSV(name string, r io.Reader, header bool) (int, error) {
	db.mu.Lock()
	decl, ok := db.tables[name]
	db.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("engine: unknown table %q", name)
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = decl.Arity()
	var rows []value.Tuple
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("engine: reading CSV for %q: %w", name, err)
		}
		if first && header {
			first = false
			continue
		}
		first = false
		row := make(value.Tuple, decl.Arity())
		for i, field := range rec {
			v, err := parseCSVValue(field, decl.Attrs[i].Type)
			if err != nil {
				return 0, fmt.Errorf("engine: %q column %s: %w", name, decl.Attrs[i].Name, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := db.LoadTable(name, rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

func parseCSVValue(field, typ string) (value.Value, error) {
	switch typ {
	case "int", "integer":
		n, err := strconv.ParseInt(strings.TrimSpace(field), 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad integer %q", field)
		}
		return value.Int(n), nil
	case "float", "real":
		f, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("bad float %q", field)
		}
		return value.Float(f), nil
	case "bool", "boolean":
		b, err := strconv.ParseBool(strings.TrimSpace(field))
		if err != nil {
			return value.Value{}, fmt.Errorf("bad boolean %q", field)
		}
		return value.Bool(b), nil
	default:
		return value.Str(field), nil
	}
}

// DumpCSV writes the current contents of a table or view as CSV, with a
// header row of the declared attribute names, in deterministic (sorted)
// order.
func (db *DB) DumpCSV(name string, w io.Writer) error {
	// Snapshot, not Rel: the dump iterates outside the lock, and a
	// concurrent transaction mutates the live relation in place.
	rel, err := db.Snapshot(name) // takes the lock and refreshes stale views
	if err != nil {
		return err
	}
	db.mu.RLock()
	decl := db.relDecl(name)
	db.mu.RUnlock()
	cw := csv.NewWriter(w)
	header := make([]string, decl.Arity())
	for i, a := range decl.Attrs {
		header[i] = a.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rel.Sorted() {
		rec := make([]string, len(row))
		for i, v := range row {
			switch v.Kind() {
			case value.KindString:
				rec[i] = v.AsString()
			default:
				rec[i] = strings.Trim(v.String(), "'")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
