package engine

import (
	"math/rand"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/sat"
	"birds/internal/value"
)

func testOracle() *sat.Config {
	return &sat.Config{MaxTuples: 3, RandomTrials: 600, ExhaustiveBudget: 20000, GuideBudget: 20000, Seed: 1}
}

func mustDecl(t *testing.T, src string) *datalog.RelDecl {
	t.Helper()
	p, err := datalog.Parse("source " + src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Sources[0]
}

func tup(vals ...any) value.Tuple {
	out := make(value.Tuple, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = value.Int(int64(x))
		case string:
			out[i] = value.Str(x)
		default:
			panic("unsupported")
		}
	}
	return out
}

const unionView = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func setupUnion(t *testing.T, incremental bool) *DB {
	t.Helper()
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(mustDecl(t, "r2(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r1", []value.Tuple{tup(1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadTable("r2", []value.Tuple{tup(2), tup(4)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateView(unionView, ViewOptions{Incremental: incremental, Oracle: testOracle()}); err != nil {
		t.Fatal(err)
	}
	return db
}

// The Example 3.1 scenario end to end, in both execution modes.
func TestUnionViewUpdate(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		db := setupUnion(t, incremental)
		v, err := db.Rel("v")
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != 3 {
			t.Fatalf("initial view = %v", v)
		}
		// V becomes {1, 3, 4}: insert 3, delete 2.
		if err := db.Exec(Insert("v", value.Int(3))); err != nil {
			t.Fatal(err)
		}
		if err := db.Exec(Delete("v", Eq("a", value.Int(2)))); err != nil {
			t.Fatal(err)
		}
		r1, _ := db.Rel("r1")
		r2, _ := db.Rel("r2")
		if !r1.Equal(value.RelationOf(1, tup(1), tup(3))) {
			t.Errorf("incremental=%v: r1 = %v, want {1,3}", incremental, r1)
		}
		if !r2.Equal(value.RelationOf(1, tup(4))) {
			t.Errorf("incremental=%v: r2 = %v, want {4}", incremental, r2)
		}
		v, _ = db.Rel("v")
		if !v.Equal(value.RelationOf(1, tup(1), tup(3), tup(4))) {
			t.Errorf("incremental=%v: v = %v", incremental, v)
		}
	}
}

func TestTransactionMergesStatements(t *testing.T) {
	db := setupUnion(t, false)
	// Insert 9 then delete it again within one transaction: net no-op on 9,
	// but the delete of 2 still applies (Algorithm 2 merging).
	err := db.Exec(
		Insert("v", value.Int(9)),
		Delete("v", Eq("a", value.Int(9))),
		Delete("v", Eq("a", value.Int(2))),
	)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Rel("r1")
	r2, _ := db.Rel("r2")
	if r1.Contains(tup(9)) || r2.Contains(tup(9)) {
		t.Error("9 should not survive the transaction")
	}
	if r2.Contains(tup(2)) {
		t.Error("2 should be deleted")
	}
}

func TestUpdateStatement(t *testing.T) {
	db := setupUnion(t, false)
	// UPDATE v SET a = 7 WHERE a = 2.
	if err := db.Exec(Update("v", []Assignment{{Col: "a", Val: value.Int(7)}}, Eq("a", value.Int(2)))); err != nil {
		t.Fatal(err)
	}
	v, _ := db.Rel("v")
	if v.Contains(tup(2)) || !v.Contains(tup(7)) {
		t.Errorf("update not applied: %v", v)
	}
	r1, _ := db.Rel("r1")
	r2, _ := db.Rel("r2")
	if !r1.Contains(tup(7)) && !r2.Contains(tup(7)) {
		t.Error("7 must be propagated to a source")
	}
}

func TestConstraintRejection(t *testing.T) {
	const view = `
source r(a:int).
view big(a:int).
_|_ :- big(X), not X > 2.
+r(X) :- big(X), not r(X).
-r(X) :- r(X), X > 2, not big(X).
`
	for _, incremental := range []bool{false, true} {
		db := NewDB()
		if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
			t.Fatal(err)
		}
		if err := db.LoadTable("r", []value.Tuple{tup(1), tup(5)}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateView(view, ViewOptions{Incremental: incremental, Oracle: testOracle()}); err != nil {
			t.Fatal(err)
		}
		err := db.Exec(Insert("big", value.Int(1)))
		if err == nil {
			t.Fatalf("incremental=%v: out-of-range insert must be rejected", incremental)
		}
		if !strings.Contains(err.Error(), "constraint") {
			t.Errorf("incremental=%v: unexpected error %v", incremental, err)
		}
		// Nothing changed.
		r, _ := db.Rel("r")
		if !r.Equal(value.RelationOf(1, tup(1), tup(5))) {
			t.Errorf("incremental=%v: rejected update must not change sources: %v", incremental, r)
		}
		big, _ := db.Rel("big")
		if !big.Equal(value.RelationOf(1, tup(5))) {
			t.Errorf("incremental=%v: rejected update must not change the view: %v", incremental, big)
		}
		// A valid insert still works afterwards.
		if err := db.Exec(Insert("big", value.Int(9))); err != nil {
			t.Fatal(err)
		}
		r, _ = db.Rel("r")
		if !r.Contains(tup(9)) {
			t.Errorf("incremental=%v: valid insert not propagated", incremental)
		}
	}
}

// The §3.3 case study cascade: residents1962 is defined over the updatable
// view residents, which dispatches to the base tables by gender.
func TestViewOverViewCascade(t *testing.T) {
	const residentsView = `
source male(e:string, b:date).
source female(e:string, b:date).
source others(e:string, b:date, g:string).
view residents(e:string, b:date, g:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`
	const r1962View = `
source residents(e:string, b:date, g:string).
view residents1962(e:string, b:date, g:string).
_|_ :- residents1962(E,B,G), B > '1962-12-31'.
_|_ :- residents1962(E,B,G), B < '1962-01-01'.
+residents(E,B,G) :- residents1962(E,B,G), not residents(E,B,G).
-residents(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31', not residents1962(E,B,G).
`
	for _, incremental := range []bool{false, true} {
		db := NewDB()
		for _, d := range []string{
			"male(e:string, b:date).",
			"female(e:string, b:date).",
			"others(e:string, b:date, g:string).",
		} {
			if err := db.CreateTable(mustDecl(t, d)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.LoadTable("male", []value.Tuple{tup("bob", "1962-03-01"), tup("jim", "1950-01-01")}); err != nil {
			t.Fatal(err)
		}
		if err := db.LoadTable("female", []value.Tuple{tup("ann", "1962-07-15")}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateView(residentsView, ViewOptions{Incremental: incremental, Oracle: testOracle()}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateView(r1962View, ViewOptions{Incremental: incremental, Oracle: testOracle()}); err != nil {
			t.Fatal(err)
		}

		v, err := db.Rel("residents1962")
		if err != nil {
			t.Fatal(err)
		}
		if v.Len() != 2 {
			t.Fatalf("incremental=%v: residents1962 = %v", incremental, v)
		}

		// Insert a 1962 female through the TOP view: must cascade through
		// residents into the female base table.
		if err := db.Exec(Insert("residents1962", value.Str("eva"), value.Str("1962-11-30"), value.Str("F"))); err != nil {
			t.Fatal(err)
		}
		female, _ := db.Rel("female")
		if !female.Contains(tup("eva", "1962-11-30")) {
			t.Errorf("incremental=%v: eva must reach the female base table: %v", incremental, female)
		}
		res, _ := db.Rel("residents")
		if !res.Contains(tup("eva", "1962-11-30", "F")) {
			t.Errorf("incremental=%v: residents not maintained: %v", incremental, res)
		}

		// Delete bob through the top view: cascades to male.
		if err := db.Exec(Delete("residents1962", Eq("e", value.Str("bob")))); err != nil {
			t.Fatal(err)
		}
		male, _ := db.Rel("male")
		if male.Contains(tup("bob", "1962-03-01")) {
			t.Errorf("incremental=%v: bob should be deleted from male", incremental)
		}
		if !male.Contains(tup("jim", "1950-01-01")) {
			t.Errorf("incremental=%v: jim (not born 1962) must be untouched", incremental)
		}

		// Out-of-range inserts are rejected by the constraints.
		if err := db.Exec(Insert("residents1962", value.Str("tom"), value.Str("1980-01-01"), value.Str("M"))); err == nil {
			t.Errorf("incremental=%v: 1980 birthdate must violate the constraint", incremental)
		}
	}
}

func TestBaseTableUpdateMarksViewsDirty(t *testing.T) {
	db := setupUnion(t, false)
	if err := db.Exec(Insert("r1", value.Int(42))); err != nil {
		t.Fatal(err)
	}
	v, err := db.Rel("v")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Contains(tup(42)) {
		t.Errorf("view must reflect base-table insert after refresh: %v", v)
	}
	if err := db.Exec(Delete("r1", Eq("a", value.Int(42)))); err != nil {
		t.Fatal(err)
	}
	v, _ = db.Rel("v")
	if v.Contains(tup(42)) {
		t.Errorf("view must reflect base-table delete: %v", v)
	}
}

func TestErrors(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := db.Exec(Insert("nope", value.Int(1))); err == nil {
		t.Error("unknown relation must fail")
	}
	if err := db.Exec(Insert("r1", value.Int(1)), Insert("other", value.Int(2))); err == nil {
		t.Error("multi-target transaction must fail")
	}
	if _, err := db.CreateView("view v(a:int).\n", ViewOptions{}); err == nil {
		t.Error("view without sources in the database must fail")
	}
	if _, err := db.CreateView(unionView, ViewOptions{SkipValidation: true}); err == nil {
		t.Error("SkipValidation without ExpectedGet must fail")
	}
	if _, err := db.Rel("nope"); err == nil {
		t.Error("unknown relation read must fail")
	}
	if err := db.Exec(Delete("r1", Condition{Col: "zzz", Op: datalog.OpEq, Val: value.Int(1)})); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestSkipValidationWithExpectedGet(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateTable(mustDecl(t, "r2(a:int).")); err != nil {
		t.Fatal(err)
	}
	get := []*datalog.Rule{}
	for _, s := range []string{"v(X) :- r1(X).", "v(X) :- r2(X)."} {
		r, err := datalog.ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		get = append(get, r)
	}
	if _, err := db.CreateView(unionView, ViewOptions{SkipValidation: true, ExpectedGet: get}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(Insert("v", value.Int(8))); err != nil {
		t.Fatal(err)
	}
	r1, _ := db.Rel("r1")
	if !r1.Contains(tup(8)) {
		t.Error("strategy should run without validation")
	}
}

func TestInvalidStrategyRejectedAtCreate(t *testing.T) {
	db := NewDB()
	if err := db.CreateTable(mustDecl(t, "r(a:int).")); err != nil {
		t.Fatal(err)
	}
	_, err := db.CreateView(`
source r(a:int).
view v(a:int).
+r(X) :- v(X).
-r(X) :- v(X), r(X).
`, ViewOptions{Oracle: testOracle()})
	if err == nil {
		t.Fatal("ill-defined strategy must be rejected at CREATE VIEW time")
	}
}

// Property: the two execution modes agree on random workloads.
func TestIncrementalMatchesFullOnRandomWorkload(t *testing.T) {
	mk := func(incremental bool) *DB {
		db := NewDB()
		if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable(mustDecl(t, "r2(a:int).")); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateView(unionView, ViewOptions{Incremental: incremental, Oracle: testOracle()}); err != nil {
			t.Fatal(err)
		}
		return db
	}
	full, inc := mk(false), mk(true)
	rng := rand.New(rand.NewSource(77))
	for step := 0; step < 120; step++ {
		x := value.Int(int64(rng.Intn(12)))
		var stmt Statement
		if rng.Intn(2) == 0 {
			stmt = Insert("v", x)
		} else {
			stmt = Delete("v", Eq("a", x))
		}
		e1, e2 := full.Exec(stmt), inc.Exec(stmt)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("step %d: modes disagree on error: full=%v inc=%v", step, e1, e2)
		}
		for _, rel := range []string{"r1", "r2", "v"} {
			a, _ := full.Rel(rel)
			b, _ := inc.Rel(rel)
			if !a.Equal(b) {
				t.Fatalf("step %d: %s diverged:\nfull=%v\ninc=%v", step, rel, a, b)
			}
		}
	}
}

func TestRelationsListing(t *testing.T) {
	db := setupUnion(t, true)
	infos := db.Relations()
	if len(infos) != 3 {
		t.Fatalf("want 3 relations, got %d", len(infos))
	}
	// Sorted: r1, r2, v.
	if infos[0].Name != "r1" || infos[1].Name != "r2" || infos[2].Name != "v" {
		t.Errorf("order wrong: %v", infos)
	}
	if infos[0].Kind != "table" || infos[2].Kind != "view" || !infos[2].Incremental {
		t.Errorf("kinds wrong: %+v", infos)
	}
}

// TestExecModeMatchesOnRandomWorkload drives the same workload through a
// streaming-mode engine (the default) and one switched to materialized
// execution, including a view created after the switch, and requires
// identical state at every step — SetExecMode must change only how full
// evaluations run, never what they compute.
func TestExecModeMatchesOnRandomWorkload(t *testing.T) {
	mk := func(mode eval.ExecMode) *DB {
		db := NewDB()
		if err := db.CreateTable(mustDecl(t, "r1(a:int).")); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable(mustDecl(t, "r2(a:int).")); err != nil {
			t.Fatal(err)
		}
		db.SetExecMode(mode) // before the view: applies to future views too
		if _, err := db.CreateView(unionView, ViewOptions{Oracle: testOracle()}); err != nil {
			t.Fatal(err)
		}
		db.SetExecMode(mode) // after the view: applies to existing views
		return db
	}
	stream, mat := mk(eval.ExecStreaming), mk(eval.ExecMaterialized)
	rng := rand.New(rand.NewSource(31))
	for step := 0; step < 80; step++ {
		x := value.Int(int64(rng.Intn(12)))
		var stmt Statement
		if rng.Intn(2) == 0 {
			stmt = Insert("v", x)
		} else {
			stmt = Delete("v", Eq("a", x))
		}
		e1, e2 := stream.Exec(stmt), mat.Exec(stmt)
		if (e1 == nil) != (e2 == nil) {
			t.Fatalf("step %d: modes disagree on error: streaming=%v materialized=%v", step, e1, e2)
		}
		for _, rel := range []string{"r1", "r2", "v"} {
			a, _ := stream.Rel(rel)
			b, _ := mat.Rel(rel)
			if !a.Equal(b) {
				t.Fatalf("step %d: %s diverged:\nstreaming=%v\nmaterialized=%v", step, rel, a, b)
			}
		}
	}
}
