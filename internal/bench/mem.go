package bench

import (
	"runtime"
	"sync"
	"time"
)

// HeapStats is one peak-memory measurement around an operation: heap sizes
// are bytes of live heap (runtime.MemStats.HeapAlloc).
type HeapStats struct {
	// Base is the live heap after a GC immediately before the operation —
	// the resident state (base tables, engine structures) the operation
	// runs against.
	Base uint64
	// Peak is the largest heap observed while the operation ran (sampled,
	// plus a final read when it returned): base state, outputs, and every
	// transient the operation allocated that a GC had not yet collected.
	// Peak - Base is the operation's working overhead — the axis the
	// streaming executor optimizes.
	Peak uint64
	// Live is the heap after the operation and a GC: what it durably
	// added (e.g. materialized IDB relations).
	Live uint64
}

// PeakOverhead returns Peak - Base, the operation's transient working set.
func (h HeapStats) PeakOverhead() uint64 {
	if h.Peak < h.Base {
		return 0
	}
	return h.Peak - h.Base
}

// LiveOverhead returns Live - Base, what the operation durably allocated.
func (h HeapStats) LiveOverhead() uint64 {
	if h.Live < h.Base {
		return 0
	}
	return h.Live - h.Base
}

// MeasureHeapPeak runs op and samples the heap around it: GC, read the
// base, poll HeapAlloc from a background goroutine (~1ms cadence) while op
// runs, then read a final sample, GC again and read the surviving live
// heap. The sampler can only under-report a very short-lived spike between
// two polls; for the evaluation-scale operations this package measures
// (hundreds of milliseconds and up) the error is negligible.
func MeasureHeapPeak(op func()) HeapStats {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	st := HeapStats{Base: ms.HeapAlloc, Peak: ms.HeapAlloc}

	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var sms runtime.MemStats
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				runtime.ReadMemStats(&sms)
				mu.Lock()
				if sms.HeapAlloc > st.Peak {
					st.Peak = sms.HeapAlloc
				}
				mu.Unlock()
			}
		}
	}()

	op()

	close(stop)
	wg.Wait()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > st.Peak {
		st.Peak = ms.HeapAlloc
	}
	runtime.GC()
	runtime.ReadMemStats(&ms)
	st.Live = ms.HeapAlloc
	return st
}
