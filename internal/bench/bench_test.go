package bench

import (
	"testing"

	"birds/internal/core"
	"birds/internal/engine"
	"birds/internal/sat"
)

func testOptions() core.Options {
	return core.Options{Oracle: sat.Config{
		MaxTuples:        3,
		RandomTrials:     800,
		ExhaustiveBudget: 30000,
		GuideBudget:      30000,
		Seed:             1,
	}}
}

func TestTable1SuiteShape(t *testing.T) {
	entries := Table1()
	if len(entries) != 32 {
		t.Fatalf("Table 1 has 32 rows, got %d", len(entries))
	}
	for i, e := range entries {
		if e.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, e.ID)
		}
		if e.Name == "" || e.Operators == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if e.Program == "" && e.ID != 23 {
			t.Errorf("entry %d (%s) has no program", e.ID, e.Name)
		}
	}
}

// Every expressible benchmark strategy must validate, its LVGN / NR
// classification must match the paper's column, and the expected view
// definition must be confirmed.
func TestTable1Validation(t *testing.T) {
	opts := testOptions()
	for _, e := range Table1() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			row := RunTable1Entry(e, opts)
			if e.Program == "" {
				if row.Err == nil {
					t.Fatal("row 23 must report non-expressibility")
				}
				return
			}
			if row.Err != nil {
				t.Fatalf("infrastructure error: %v", row.Err)
			}
			if row.LVGN != e.WantLVGN {
				t.Errorf("LVGN = %v, paper says %v", row.LVGN, e.WantLVGN)
			}
			if row.NR != e.WantNR {
				t.Errorf("NR-Datalog = %v, paper says %v", row.NR, e.WantNR)
			}
			if !row.Valid {
				t.Fatalf("strategy should validate: %s", row.FailureDetail)
			}
			if !row.UsedExpected {
				t.Errorf("expected get should be confirmed, derivation used instead")
			}
			if row.SQLBytes == 0 {
				t.Error("compiled SQL is empty")
			}
			if row.LOC == 0 {
				t.Error("LOC not recorded")
			}
		})
	}
}

// RunTable1Parallel must reproduce the sequential rows: same order, same
// classification, same validation outcome.
func TestRunTable1ParallelAgrees(t *testing.T) {
	t.Parallel()
	rows := RunTable1Parallel(testOptions(), 0)
	entries := Table1()
	if len(rows) != len(entries) {
		t.Fatalf("got %d rows, want %d", len(rows), len(entries))
	}
	for i, row := range rows {
		e := entries[i]
		if row.Entry.ID != e.ID {
			t.Fatalf("row %d is entry %d; parallel run reordered rows", i, row.Entry.ID)
		}
		if e.Program == "" {
			continue
		}
		if row.Err != nil {
			t.Errorf("%s: %v", e.Name, row.Err)
			continue
		}
		if !row.Valid || row.LVGN != e.WantLVGN || row.NR != e.WantNR {
			t.Errorf("%s: Valid=%v LVGN=%v NR=%v, want valid with LVGN=%v NR=%v (%s)",
				e.Name, row.Valid, row.LVGN, row.NR, e.WantLVGN, e.WantNR, row.FailureDetail)
		}
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{
		{Entry: Table1Entry{ID: 23, Name: "emp_view", Operators: "IJ,P,A"}},
	}
	out := FormatTable1(rows)
	if out == "" {
		t.Fatal("empty formatting")
	}
}

func TestFig6ViewsRunTiny(t *testing.T) {
	for _, v := range Fig6Views() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, incremental := range []bool{false, true} {
				pts, err := RunFig6(v, []int{200, 400}, incremental, 4, 1, 1)
				if err != nil {
					t.Fatalf("incremental=%v: %v", incremental, err)
				}
				if len(pts) != 2 {
					t.Fatalf("want 2 points, got %d", len(pts))
				}
				for _, p := range pts {
					if p.PerUpdate <= 0 {
						t.Errorf("non-positive timing at size %d", p.Size)
					}
				}
			}
		})
	}
}

// The four execution configurations — full vs incremental strategy, each
// sequential and with parallel evaluators — must produce identical view and
// base-table contents on the Figure 6 workloads after the same transaction
// stream. This is the differential harness behind the benchmark's
// parallel-vs-sequential claim.
func TestFig6ModesAgree(t *testing.T) {
	for _, v := range Fig6Views() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			const n = 300
			type cfg struct {
				name        string
				incremental bool
				parallelism int
			}
			cfgs := []cfg{
				{"full-seq", false, 1},
				{"full-par", false, 4},
				{"inc-seq", true, 1},
				{"inc-par", true, 4},
			}
			dbs := make([]*engine.DB, len(cfgs))
			for i, c := range cfgs {
				db, err := SetupFig6(v, n, c.incremental, 7, c.parallelism)
				if err != nil {
					t.Fatalf("%s: %v", c.name, err)
				}
				dbs[i] = db
			}
			for round := 1; round <= 6; round++ {
				for _, txn := range v.Update(n, round) {
					ref := dbs[0].Exec(txn...)
					for i := 1; i < len(dbs); i++ {
						if e := dbs[i].Exec(txn...); (e == nil) != (ref == nil) {
							t.Fatalf("round %d: error mismatch %s vs %s: %v vs %v",
								round, cfgs[0].name, cfgs[i].name, ref, e)
						}
					}
				}
			}
			// Compare the view and every registered base table.
			var names []string
			for _, info := range dbs[0].Relations() {
				names = append(names, info.Name)
			}
			for _, name := range names {
				ref, err := dbs[0].Rel(name)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(dbs); i++ {
					got, err := dbs[i].Rel(name)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(ref) {
						t.Fatalf("%s diverged between %s and %s: %d vs %d tuples",
							name, cfgs[0].name, cfgs[i].name, ref.Len(), got.Len())
					}
				}
			}
		})
	}
}

func TestFig6ViewByName(t *testing.T) {
	if _, err := Fig6ViewByName("luxuryitems"); err != nil {
		t.Error(err)
	}
	if _, err := Fig6ViewByName("nope"); err == nil {
		t.Error("unknown view must fail")
	}
}

// The DML-maintenance fixture must keep its views on the incremental path
// (clean, no dirty fallback) and exactly consistent with a fresh database
// replaying the same writes.
func TestDMLMaintenanceFixture(t *testing.T) {
	const n = 200
	db, err := SetupDMLMaintenance(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if err := DMLMaintenanceTxn(db, n, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, vn := range DMLMaintenanceViews() {
		if db.Stale(vn) {
			t.Fatalf("view %s fell off the incremental path", vn)
		}
	}
	// Replay on a fresh database: contents must agree view by view.
	ref, err := SetupDMLMaintenance(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 25; i++ {
		if err := DMLMaintenanceTxn(ref, n, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, vn := range DMLMaintenanceViews() {
		got, err := db.Rel(vn)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Rel(vn)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s diverged from replay: %v vs %v", vn, got, want)
		}
	}
}
