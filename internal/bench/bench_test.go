package bench

import (
	"testing"

	"birds/internal/core"
	"birds/internal/sat"
)

func testOptions() core.Options {
	return core.Options{Oracle: sat.Config{
		MaxTuples:        3,
		RandomTrials:     800,
		ExhaustiveBudget: 30000,
		GuideBudget:      30000,
		Seed:             1,
	}}
}

func TestTable1SuiteShape(t *testing.T) {
	entries := Table1()
	if len(entries) != 32 {
		t.Fatalf("Table 1 has 32 rows, got %d", len(entries))
	}
	for i, e := range entries {
		if e.ID != i+1 {
			t.Errorf("entry %d has ID %d", i, e.ID)
		}
		if e.Name == "" || e.Operators == "" {
			t.Errorf("entry %d incomplete: %+v", i, e)
		}
		if e.Program == "" && e.ID != 23 {
			t.Errorf("entry %d (%s) has no program", e.ID, e.Name)
		}
	}
}

// Every expressible benchmark strategy must validate, its LVGN / NR
// classification must match the paper's column, and the expected view
// definition must be confirmed.
func TestTable1Validation(t *testing.T) {
	opts := testOptions()
	for _, e := range Table1() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			row := RunTable1Entry(e, opts)
			if e.Program == "" {
				if row.Err == nil {
					t.Fatal("row 23 must report non-expressibility")
				}
				return
			}
			if row.Err != nil {
				t.Fatalf("infrastructure error: %v", row.Err)
			}
			if row.LVGN != e.WantLVGN {
				t.Errorf("LVGN = %v, paper says %v", row.LVGN, e.WantLVGN)
			}
			if row.NR != e.WantNR {
				t.Errorf("NR-Datalog = %v, paper says %v", row.NR, e.WantNR)
			}
			if !row.Valid {
				t.Fatalf("strategy should validate: %s", row.FailureDetail)
			}
			if !row.UsedExpected {
				t.Errorf("expected get should be confirmed, derivation used instead")
			}
			if row.SQLBytes == 0 {
				t.Error("compiled SQL is empty")
			}
			if row.LOC == 0 {
				t.Error("LOC not recorded")
			}
		})
	}
}

func TestFormatTable1(t *testing.T) {
	rows := []Table1Row{
		{Entry: Table1Entry{ID: 23, Name: "emp_view", Operators: "IJ,P,A"}},
	}
	out := FormatTable1(rows)
	if out == "" {
		t.Fatal("empty formatting")
	}
}

func TestFig6ViewsRunTiny(t *testing.T) {
	for _, v := range Fig6Views() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			for _, incremental := range []bool{false, true} {
				pts, err := RunFig6(v, []int{200, 400}, incremental, 4, 1)
				if err != nil {
					t.Fatalf("incremental=%v: %v", incremental, err)
				}
				if len(pts) != 2 {
					t.Fatalf("want 2 points, got %d", len(pts))
				}
				for _, p := range pts {
					if p.PerUpdate <= 0 {
						t.Errorf("non-positive timing at size %d", p.Size)
					}
				}
			}
		})
	}
}

// The two execution modes must produce identical relations on the Figure 6
// workloads.
func TestFig6ModesAgree(t *testing.T) {
	for _, v := range Fig6Views() {
		v := v
		t.Run(v.Name, func(t *testing.T) {
			t.Parallel()
			const n = 300
			full, err := SetupFig6(v, n, false, 7)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := SetupFig6(v, n, true, 7)
			if err != nil {
				t.Fatal(err)
			}
			for round := 1; round <= 6; round++ {
				for _, txn := range v.Update(n, round) {
					e1 := full.Exec(txn...)
					e2 := inc.Exec(txn...)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("round %d: error mismatch: %v vs %v", round, e1, e2)
					}
				}
			}
			viewName := v.Name
			a, err := full.Rel(viewName)
			if err != nil {
				t.Fatal(err)
			}
			b, err := inc.Rel(viewName)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("view diverged between modes: %d vs %d tuples", a.Len(), b.Len())
			}
		})
	}
}

func TestFig6ViewByName(t *testing.T) {
	if _, err := Fig6ViewByName("luxuryitems"); err != nil {
		t.Error(err)
	}
	if _, err := Fig6ViewByName("nope"); err == nil {
		t.Error("unknown view must fail")
	}
}
