// Package bench defines the paper's evaluation workloads: the 32-view
// benchmark of Table 1 (validation results) and the four view-updating
// sweeps of Figure 6. The putback programs are reconstructions of the BIRDS
// benchmark suite, matching each row's operator mix (S selection, P
// projection, SJ semijoin, IJ inner join, LJ left join, U union, D
// difference, A aggregation), constraint classes (PK primary key, FK
// foreign key, ID inclusion dependency, C domain constraint, JD join
// dependency) and LVGN-membership column.
package bench

// Table1Entry is one row of Table 1.
type Table1Entry struct {
	ID          int
	Name        string
	Operators   string
	Constraints string
	Source      string // sources collected from: literature (rows 1-23), Q&A sites (rows 24-32)
	Program     string // the putback program ("" when not expressible, row 23)
	ExpectedGet string // the expected view definition supplied to the validator
	WantLVGN    bool   // the paper's LVGN-Datalog column
	WantNR      bool   // the paper's NR-Datalog column
}

// Table1 returns the benchmark suite in paper order.
func Table1() []Table1Entry {
	return []Table1Entry{
		{
			ID: 1, Name: "car_master", Operators: "P", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source car(cid:int, cname:string, price:int).
view car_master(cid:int, cname:string).
carp(I,N) :- car(I,N,_).
-car(I,N,P) :- car(I,N,P), not car_master(I,N).
+car(I,N,P) :- car_master(I,N), not carp(I,N), P = 0.
`,
			ExpectedGet: `car_master(I,N) :- car(I,N,_).`,
		},
		{
			ID: 2, Name: "goodstudents", Operators: "P,S", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source students(sid:int, sname:string, score:int).
view goodstudents(sid:int, sname:string).
_|_ :- goodstudents(S,N), not S > 0.
ingood(S,N) :- students(S,N,Sc), Sc > 3.
-students(S,N,Sc) :- students(S,N,Sc), Sc > 3, not goodstudents(S,N).
+students(S,N,Sc) :- goodstudents(S,N), not ingood(S,N), Sc = 4.
`,
			ExpectedGet: `goodstudents(S,N) :- students(S,N,Sc), Sc > 3.`,
		},
		{
			ID: 3, Name: "luxuryitems", Operators: "S", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program:     LuxuryItemsProgram,
			ExpectedGet: `luxuryitems(I,N,P) :- items(I,N,P), P > 1000.`,
		},
		{
			ID: 4, Name: "usa_city", Operators: "P,S", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source city(cname:string, country:string, pop:int).
view usa_city(cname:string, pop:int).
_|_ :- usa_city(C,P), not P > 0.
usa(C,P) :- city(C,'USA',P).
-city(C,T,P) :- city(C,T,P), T = 'USA', not usa_city(C,P).
+city(C,T,P) :- usa_city(C,P), not usa(C,P), T = 'USA'.
`,
			ExpectedGet: `usa_city(C,P) :- city(C,'USA',P).`,
		},
		{
			ID: 5, Name: "ced", Operators: "D", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source ed(emp_name:string, dept_name:string).
source eed(emp_name:string, dept_name:string).
view ced(emp_name:string, dept_name:string).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`,
			ExpectedGet: `ced(E,D) :- ed(E,D), not eed(E,D).`,
		},
		{
			ID: 6, Name: "residents1962", Operators: "S", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source residents(emp_name:string, birth_date:date, gender:string).
view residents1962(emp_name:string, birth_date:date, gender:string).
_|_ :- residents1962(E,B,G), B > '1962-12-31'.
_|_ :- residents1962(E,B,G), B < '1962-01-01'.
+residents(E,B,G) :- residents1962(E,B,G), not residents(E,B,G).
-residents(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31', not residents1962(E,B,G).
`,
			ExpectedGet: `residents1962(E,B,G) :- residents(E,B,G), not B < '1962-01-01', not B > '1962-12-31'.`,
		},
		{
			ID: 7, Name: "employees", Operators: "SJ,P", Constraints: "ID",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source residents(emp_name:string, birth_date:date, gender:string).
source ced(emp_name:string, dept_name:string).
view employees(emp_name:string, birth_date:date, gender:string).
_|_ :- employees(E,B,G), not ced(E,_).
+residents(E,B,G) :- employees(E,B,G), not residents(E,B,G).
-residents(E,B,G) :- residents(E,B,G), ced(E,_), not employees(E,B,G).
`,
			ExpectedGet: `employees(E,B,G) :- residents(E,B,G), ced(E,_).`,
		},
		{
			ID: 8, Name: "researchers", Operators: "SJ,S,P", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source emp(ename:string, pos:string).
source projects(ename:string, pname:string).
view researchers(ename:string).
isr(E) :- emp(E,'researcher'), projects(E,_).
-emp(E,P) :- emp(E,P), P = 'researcher', projects(E,_), not researchers(E).
+emp(E,P) :- researchers(E), not isr(E), P = 'researcher'.
+projects(E,P) :- researchers(E), not projects(E,_), P = 'unknown'.
`,
			ExpectedGet: `researchers(E) :- emp(E,'researcher'), projects(E,_).`,
		},
		{
			ID: 9, Name: "retired", Operators: "SJ,P,D", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source residents(emp_name:string, birth_date:date, gender:string).
source ced(emp_name:string, dept_name:string).
view retired(emp_name:string).
-ced(E,D) :- ced(E,D), retired(E).
+ced(E,D) :- residents(E,_,_), not retired(E), not ced(E,_), D = 'unknown'.
+residents(E,B,G) :- retired(E), G = 'unknown', not residents(E,_,_), B = '00-00-00'.
`,
			ExpectedGet: `retired(E) :- residents(E,_,_), not ced(E,_).`,
		},
		{
			ID: 10, Name: "paramountmovies", Operators: "P,S", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source movies(title:string, year:int, studio:string).
view paramountmovies(title:string, year:int).
pm(T,Y) :- movies(T,Y,'Paramount').
-movies(T,Y,S) :- movies(T,Y,S), S = 'Paramount', not paramountmovies(T,Y).
+movies(T,Y,S) :- paramountmovies(T,Y), not pm(T,Y), S = 'Paramount'.
`,
			ExpectedGet: `paramountmovies(T,Y) :- movies(T,Y,'Paramount').`,
		},
		{
			ID: 11, Name: "officeinfo", Operators: "P", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program:     OfficeInfoProgram,
			ExpectedGet: `officeinfo(E,O) :- works(E,O,_).`,
		},
		{
			ID: 12, Name: "vw_brands", Operators: "U,P", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program:     VwBrandsProgram,
			ExpectedGet: "vw_brands(N) :- brands1(_,N).\nvw_brands(N) :- brands2(_,N).",
		},
		{
			ID: 13, Name: "tracks2", Operators: "P", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source tracks(tid:int, title:string, album:string, rating:int).
view tracks2(tid:int, title:string, rating:int).
tr(T,N,R) :- tracks(T,N,_,R).
-tracks(T,N,A,R) :- tracks(T,N,A,R), not tracks2(T,N,R).
+tracks(T,N,A,R) :- tracks2(T,N,R), not tr(T,N,R), A = 'unknown'.
`,
			ExpectedGet: `tracks2(T,N,R) :- tracks(T,N,_,R).`,
		},
		{
			ID: 14, Name: "residents", Operators: "U", Constraints: "",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source male(emp_name:string, birth_date:date).
source female(emp_name:string, birth_date:date).
source others(emp_name:string, birth_date:date, gender:string).
view residents(emp_name:string, birth_date:date, gender:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`,
			ExpectedGet: "residents(E,B,G) :- others(E,B,G).\nresidents(E,B,'F') :- female(E,B).\nresidents(E,B,'M') :- male(E,B).",
		},
		{
			ID: 15, Name: "tracks3", Operators: "S", Constraints: "C",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source tracks(tid:int, title:string, album:string, rating:int).
view tracks3(tid:int, title:string, album:string, rating:int).
_|_ :- tracks3(T,N,A,R), not R > 3.
hi(T,N,A,R) :- tracks(T,N,A,R), R > 3.
-tracks(T,N,A,R) :- hi(T,N,A,R), not tracks3(T,N,A,R).
+tracks(T,N,A,R) :- tracks3(T,N,A,R), not tracks(T,N,A,R).
`,
			ExpectedGet: `tracks3(T,N,A,R) :- tracks(T,N,A,R), R > 3.`,
		},
		{
			ID: 16, Name: "tracks1", Operators: "IJ", Constraints: "PK",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source albums(album:string, quantity:int).
source tracks(tid:int, title:string, album:string).
view tracks1(tid:int, title:string, album:string, quantity:int).
_|_ :- albums(A,Q1), albums(A,Q2), not Q1 = Q2.
_|_ :- tracks(T,N,A), not albums(A,_).
_|_ :- tracks1(T1,N1,A,Q1), tracks1(T2,N2,A,Q2), not Q1 = Q2.
vtracks(T,N,A) :- tracks1(T,N,A,_).
valbums(A) :- tracks1(_,_,A,_).
albq(A,Q) :- tracks1(_,_,A,Q).
+tracks(T,N,A) :- tracks1(T,N,A,Q), not tracks(T,N,A).
-tracks(T,N,A) :- tracks(T,N,A), not vtracks(T,N,A).
+albums(A,Q) :- albq(A,Q), not albums(A,Q).
-albums(A,Q) :- albums(A,Q), valbums(A), not albq(A,Q).
`,
			ExpectedGet: `tracks1(T,N,A,Q) :- tracks(T,N,A), albums(A,Q).`,
		},
		{
			ID: 17, Name: "bstudents", Operators: "IJ,P,S", Constraints: "PK",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source students(sid:int, sname:string).
source grades(sid:int, grade:string).
view bstudents(sid:int, sname:string).
_|_ :- students(S,N1), students(S,N2), not N1 = N2.
_|_ :- bstudents(S,N1), bstudents(S,N2), not N1 = N2.
hasb(S) :- grades(S,'B').
vb(S) :- bstudents(S,_).
+grades(S,G) :- bstudents(S,N), not hasb(S), G = 'B'.
+students(S,N) :- bstudents(S,N), not students(S,N).
-grades(S,G) :- grades(S,G), G = 'B', students(S,_), not vb(S).
-students(S,N) :- students(S,N), vb(S), not bstudents(S,N).
`,
			ExpectedGet: `bstudents(S,N) :- students(S,N), grades(S,'B').`,
		},
		{
			ID: 18, Name: "all_cars", Operators: "IJ", Constraints: "PK, FK",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source cars(cid:int, model:string).
source colors(cid:int, color:string).
view all_cars(cid:int, model:string, color:string).
_|_ :- cars(C,M1), cars(C,M2), not M1 = M2.
_|_ :- colors(C,_), not cars(C,_).
_|_ :- all_cars(C,M1,_), all_cars(C,M2,_), not M1 = M2.
vcar(C,M) :- all_cars(C,M,_).
vcarc(C) :- all_cars(C,_,_).
vcol(C,X) :- all_cars(C,_,X).
+cars(C,M) :- all_cars(C,M,X), not cars(C,M).
+colors(C,X) :- all_cars(C,M,X), not colors(C,X).
-cars(C,M) :- cars(C,M), vcarc(C), not vcar(C,M).
-colors(C,X) :- colors(C,X), not vcol(C,X).
`,
			ExpectedGet: `all_cars(C,M,X) :- cars(C,M), colors(C,X).`,
		},
		{
			ID: 19, Name: "measurement", Operators: "U", Constraints: "C, ID",
			Source: "literature", WantLVGN: true, WantNR: true,
			Program: `
source m1(mid:int, val:int).
source m2(mid:int, val:int).
view measurement(mid:int, val:int).
_|_ :- m1(I,V), not I < 1000.
_|_ :- m2(I,V), I < 1000.
_|_ :- measurement(I,V), not V > 0.
+m1(I,V) :- measurement(I,V), I < 1000, not m1(I,V).
+m2(I,V) :- measurement(I,V), not I < 1000, not m2(I,V).
-m1(I,V) :- m1(I,V), V > 0, not measurement(I,V).
-m2(I,V) :- m2(I,V), V > 0, not measurement(I,V).
`,
			ExpectedGet: "measurement(I,V) :- m1(I,V), V > 0.\nmeasurement(I,V) :- m2(I,V), V > 0.",
		},
		{
			ID: 20, Name: "newpc", Operators: "IJ,P,S", Constraints: "JD",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source pcs(pcid:int, maker:string).
source specs(pcid:int, speed:int).
view newpc(pcid:int, maker:string).
_|_ :- newpc(P,M1), newpc(P,M2), not M1 = M2.
fast(P) :- specs(P,S), S > 2000.
vpc(P) :- newpc(P,_).
+pcs(P,M) :- newpc(P,M), not pcs(P,M).
+specs(P,S) :- newpc(P,M), not fast(P), S = 2001.
-pcs(P,M) :- pcs(P,M), vpc(P), not newpc(P,M).
-specs(P,S) :- specs(P,S), S > 2000, pcs(P,_), not vpc(P).
`,
			ExpectedGet: `newpc(P,M) :- pcs(P,M), specs(P,S), S > 2000.`,
		},
		{
			ID: 21, Name: "activestudents", Operators: "IJ,P,S", Constraints: "PK, JD",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source people(pid:int, pname:string).
source enrolled(pid:int, status:string).
view activestudents(pid:int, pname:string).
_|_ :- people(P,N1), people(P,N2), not N1 = N2.
_|_ :- activestudents(P,N1), activestudents(P,N2), not N1 = N2.
act(P) :- enrolled(P,'active').
vact(P) :- activestudents(P,_).
+people(P,N) :- activestudents(P,N), not people(P,N).
+enrolled(P,S) :- activestudents(P,N), not act(P), S = 'active'.
-people(P,N) :- people(P,N), vact(P), not activestudents(P,N).
-enrolled(P,S) :- enrolled(P,S), S = 'active', people(P,_), not vact(P).
`,
			ExpectedGet: `activestudents(P,N) :- people(P,N), enrolled(P,'active').`,
		},
		{
			ID: 22, Name: "vw_customers", Operators: "IJ,P", Constraints: "PK, FK, JD",
			Source: "literature", WantLVGN: false, WantNR: true,
			Program: `
source customers(cid:int, cname:string).
source accounts(cid:int, balance:int).
view vw_customers(cid:int, cname:string, balance:int).
_|_ :- customers(C,N1), customers(C,N2), not N1 = N2.
_|_ :- accounts(C,B1), accounts(C,B2), not B1 = B2.
_|_ :- accounts(C,_), not customers(C,_).
_|_ :- vw_customers(C,N1,B1), vw_customers(C,N2,B2), not N1 = N2.
_|_ :- vw_customers(C,N1,B1), vw_customers(C,N2,B2), not B1 = B2.
vc(C,N) :- vw_customers(C,N,_).
vcc(C) :- vw_customers(C,_,_).
vb(C,B) :- vw_customers(C,_,B).
+customers(C,N) :- vw_customers(C,N,B), not customers(C,N).
+accounts(C,B) :- vw_customers(C,N,B), not accounts(C,B).
-customers(C,N) :- customers(C,N), vcc(C), not vc(C,N).
-accounts(C,B) :- accounts(C,B), not vb(C,B).
`,
			ExpectedGet: `vw_customers(C,N,B) :- customers(C,N), accounts(C,B).`,
		},
		{
			ID: 23, Name: "emp_view", Operators: "IJ,P,A", Constraints: "",
			Source: "literature", WantLVGN: false, WantNR: false,
			// Aggregation (COUNT/SUM over a join) is not expressible in
			// NR-Datalog with negation; the paper reports '-' for this row.
			Program:     "",
			ExpectedGet: "",
		},
		{
			ID: 24, Name: "ukaz_lok", Operators: "S", Constraints: "C",
			Source: "Q&A sites", WantLVGN: true, WantNR: true,
			Program: `
source lok(lid:int, stav:int).
view ukaz_lok(lid:int, stav:int).
_|_ :- ukaz_lok(L,S), not S > 0.
pos(L,S) :- lok(L,S), S > 0.
-lok(L,S) :- pos(L,S), not ukaz_lok(L,S).
+lok(L,S) :- ukaz_lok(L,S), not lok(L,S).
`,
			ExpectedGet: `ukaz_lok(L,S) :- lok(L,S), S > 0.`,
		},
		{
			ID: 25, Name: "message", Operators: "U", Constraints: "C",
			Source: "Q&A sites", WantLVGN: true, WantNR: true,
			Program: `
source inbox(mid:int, txt:string).
source outbox(mid:int, txt:string).
view message(mid:int, txt:string, dir:string).
_|_ :- message(M,T,D), not D = 'in', not D = 'out'.
+inbox(M,T) :- message(M,T,D), D = 'in', not inbox(M,T).
+outbox(M,T) :- message(M,T,D), D = 'out', not outbox(M,T).
-inbox(M,T) :- inbox(M,T), not message(M,T,'in').
-outbox(M,T) :- outbox(M,T), not message(M,T,'out').
`,
			ExpectedGet: "message(M,T,'in') :- inbox(M,T).\nmessage(M,T,'out') :- outbox(M,T).",
		},
		{
			ID: 26, Name: "outstanding_task", Operators: "P,SJ", Constraints: "ID, C",
			Source: "Q&A sites", WantLVGN: true, WantNR: true,
			Program:     OutstandingTaskProgram,
			ExpectedGet: `outstanding_task(T,N,U) :- tasks(T,N,U,0), users(U,_).`,
		},
		{
			ID: 27, Name: "poi_view", Operators: "P,IJ", Constraints: "PK",
			Source: "Q&A sites", WantLVGN: false, WantNR: true,
			Program: `
source poi(pid:int, pname:string).
source coords(pid:int, lat:int).
view poi_view(pid:int, pname:string, lat:int).
_|_ :- poi(P,N1), poi(P,N2), not N1 = N2.
_|_ :- coords(P,L1), coords(P,L2), not L1 = L2.
_|_ :- coords(P,_), not poi(P,_).
_|_ :- poi_view(P,N1,L1), poi_view(P,N2,L2), not N1 = N2.
_|_ :- poi_view(P,N1,L1), poi_view(P,N2,L2), not L1 = L2.
vn(P,N) :- poi_view(P,N,_).
vp(P) :- poi_view(P,_,_).
vl(P,L) :- poi_view(P,_,L).
+poi(P,N) :- poi_view(P,N,L), not poi(P,N).
+coords(P,L) :- poi_view(P,N,L), not coords(P,L).
-poi(P,N) :- poi(P,N), vp(P), not vn(P,N).
-coords(P,L) :- coords(P,L), not vl(P,L).
`,
			ExpectedGet: `poi_view(P,N,L) :- poi(P,N), coords(P,L).`,
		},
		{
			ID: 28, Name: "phonelist", Operators: "U", Constraints: "C",
			Source: "Q&A sites", WantLVGN: true, WantNR: true,
			Program: `
source personal(pid:int, phone:string).
source work(pid:int, phone:string).
view phonelist(pid:int, phone:string, kind:string).
_|_ :- phonelist(P,N,K), not K = 'personal', not K = 'work'.
+personal(P,N) :- phonelist(P,N,K), K = 'personal', not personal(P,N).
+work(P,N) :- phonelist(P,N,K), K = 'work', not work(P,N).
-personal(P,N) :- personal(P,N), not phonelist(P,N,'personal').
-work(P,N) :- work(P,N), not phonelist(P,N,'work').
`,
			ExpectedGet: "phonelist(P,N,'personal') :- personal(P,N).\nphonelist(P,N,'work') :- work(P,N).",
		},
		{
			ID: 29, Name: "products", Operators: "LJ", Constraints: "PK, FK, C",
			Source: "Q&A sites", WantLVGN: false, WantNR: true,
			Program: `
source prod(pid:int, pname:string, cid:int).
source cats(cid:int, cname:string).
view products(pid:int, pname:string, cname:string).
_|_ :- cats(I,C1), cats(I,C2), not C1 = C2.
_|_ :- cats(I1,C), cats(I2,C), not I1 = I2.
_|_ :- prod(P,N1,I1), prod(P,N2,I2), not N1 = N2.
_|_ :- prod(P,N1,I1), prod(P,N2,I2), not I1 = I2.
_|_ :- prod(P,N,I), not I = -1, not cats(I,_).
_|_ :- products(P,N1,C1), products(P,N2,C2), not N1 = N2.
_|_ :- products(P,N1,C1), products(P,N2,C2), not C1 = C2.
_|_ :- products(P,N,C), not C = 'none', not catname(C).
_|_ :- cats(I,C), I = -1.
_|_ :- cats(I,C), C = 'none'.
catname(C) :- cats(_,C).
+prod(P,N,I) :- products(P,N,C), C = 'none', I = -1, not prod(P,N,I).
+prod(P,N,I) :- products(P,N,C), cats(I,C), not prod(P,N,I).
-prod(P,N,I) :- prod(P,N,I), cats(I,C), not products(P,N,C).
-prod(P,N,I) :- prod(P,N,I), I = -1, not products(P,N,'none').
`,
			ExpectedGet: "products(P,N,C) :- prod(P,N,I), cats(I,C).\nproducts(P,N,'none') :- prod(P,N,I), I = -1.",
		},
		{
			ID: 30, Name: "koncerty", Operators: "IJ", Constraints: "PK",
			Source: "Q&A sites", WantLVGN: false, WantNR: true,
			Program: `
source koncert(kid:int, kapela:string).
source sal(kid:int, mesto:string).
view koncerty(kid:int, kapela:string, mesto:string).
_|_ :- koncert(K,B1), koncert(K,B2), not B1 = B2.
_|_ :- sal(K,M1), sal(K,M2), not M1 = M2.
_|_ :- sal(K,_), not koncert(K,_).
_|_ :- koncerty(K,B1,M1), koncerty(K,B2,M2), not B1 = B2.
_|_ :- koncerty(K,B1,M1), koncerty(K,B2,M2), not M1 = M2.
vk(K,B) :- koncerty(K,B,_).
vkk(K) :- koncerty(K,_,_).
vm(K,M) :- koncerty(K,_,M).
+koncert(K,B) :- koncerty(K,B,M), not koncert(K,B).
+sal(K,M) :- koncerty(K,B,M), not sal(K,M).
-koncert(K,B) :- koncert(K,B), vkk(K), not vk(K,B).
-sal(K,M) :- sal(K,M), not vm(K,M).
`,
			ExpectedGet: `koncerty(K,B,M) :- koncert(K,B), sal(K,M).`,
		},
		{
			ID: 31, Name: "purchaseview", Operators: "P,IJ", Constraints: "PK, FK, JD",
			Source: "Q&A sites", WantLVGN: false, WantNR: true,
			Program: `
source purchases(oid:int, item:string, cid:int).
source custs(cid:int, cname:string).
view purchaseview(oid:int, item:string, cname:string).
_|_ :- purchases(O,I1,C1), purchases(O,I2,C2), not I1 = I2.
_|_ :- purchases(O,I1,C1), purchases(O,I2,C2), not C1 = C2.
_|_ :- custs(C,N1), custs(C,N2), not N1 = N2.
_|_ :- custs(C1,N), custs(C2,N), not C1 = C2.
_|_ :- purchases(O,I,C), not custs(C,_).
_|_ :- purchaseview(O,I1,N1), purchaseview(O,I2,N2), not I1 = I2.
_|_ :- purchaseview(O,I1,N1), purchaseview(O,I2,N2), not N1 = N2.
_|_ :- purchaseview(O,I,N), not custname(N).
custname(N) :- custs(_,N).
+purchases(O,I,C) :- purchaseview(O,I,N), custs(C,N), not purchases(O,I,C).
-purchases(O,I,C) :- purchases(O,I,C), custs(C,N), not purchaseview(O,I,N).
`,
			ExpectedGet: `purchaseview(O,I,N) :- purchases(O,I,C), custs(C,N).`,
		},
		{
			ID: 32, Name: "vehicle_view", Operators: "P,IJ", Constraints: "PK, FK, JD",
			Source: "Q&A sites", WantLVGN: false, WantNR: true,
			Program: `
source vehicles(vid:int, plate:string, oid:int).
source owners(oid:int, oname:string).
view vehicle_view(vid:int, plate:string, oname:string).
_|_ :- vehicles(V,P1,O1), vehicles(V,P2,O2), not P1 = P2.
_|_ :- vehicles(V,P1,O1), vehicles(V,P2,O2), not O1 = O2.
_|_ :- owners(O,N1), owners(O,N2), not N1 = N2.
_|_ :- owners(O1,N), owners(O2,N), not O1 = O2.
_|_ :- vehicles(V,P,O), not owners(O,_).
_|_ :- vehicle_view(V,P1,N1), vehicle_view(V,P2,N2), not P1 = P2.
_|_ :- vehicle_view(V,P1,N1), vehicle_view(V,P2,N2), not N1 = N2.
_|_ :- vehicle_view(V,P,N), not ownername(N).
ownername(N) :- owners(_,N).
+vehicles(V,P,O) :- vehicle_view(V,P,N), owners(O,N), not vehicles(V,P,O).
-vehicles(V,P,O) :- vehicles(V,P,O), owners(O,N), not vehicle_view(V,P,N).
`,
			ExpectedGet: `vehicle_view(V,P,N) :- vehicles(V,P,O), owners(O,N).`,
		},
	}
}

// Programs shared with the Figure 6 workloads.
const (
	// LuxuryItemsProgram is the selection view of Figure 6a.
	LuxuryItemsProgram = `
source items(iid:int, iname:string, price:int).
view luxuryitems(iid:int, iname:string, price:int).
_|_ :- luxuryitems(I,N,P), not P > 1000.
m(I,N,P) :- items(I,N,P), P > 1000.
+items(I,N,P) :- luxuryitems(I,N,P), not items(I,N,P).
-items(I,N,P) :- m(I,N,P), not luxuryitems(I,N,P).
`

	// OfficeInfoProgram is the projection view of Figure 6b.
	OfficeInfoProgram = `
source works(ename:string, office:string, phone:int).
view officeinfo(ename:string, office:string).
wo(E,O) :- works(E,O,_).
-works(E,O,P) :- works(E,O,P), not officeinfo(E,O).
+works(E,O,P) :- officeinfo(E,O), not wo(E,O), P = 0.
`

	// OutstandingTaskProgram is the join (semijoin + projection) view of
	// Figure 6c.
	OutstandingTaskProgram = `
source tasks(tid:int, tname:string, uid:int, done:int).
source users(uid:int, uname:string).
view outstanding_task(tid:int, tname:string, uid:int).
_|_ :- outstanding_task(T,N,U), not users(U,_).
_|_ :- outstanding_task(T,N,U), T < 0.
t0(T,N,U) :- tasks(T,N,U,0).
+tasks(T,N,U,D) :- outstanding_task(T,N,U), not t0(T,N,U), D = 0.
-tasks(T,N,U,D) :- tasks(T,N,U,D), D = 0, users(U,_), not outstanding_task(T,N,U).
`

	// VwBrandsProgram is the union view of Figure 6d.
	VwBrandsProgram = `
source brands1(bid:int, bname:string).
source brands2(bid:int, bname:string).
view vw_brands(bname:string).
_|_ :- vw_brands(N), N = ''.
n1(N) :- brands1(_,N).
n2(N) :- brands2(_,N).
-brands1(I,N) :- brands1(I,N), not vw_brands(N).
-brands2(I,N) :- brands2(I,N), not vw_brands(N).
+brands1(I,N) :- vw_brands(N), not n1(N), not n2(N), I = 0.
`
)
