package bench

import (
	"fmt"
	"math/rand"

	"birds/internal/datalog"
	"birds/internal/engine"
	"birds/internal/value"
	"birds/internal/wal"
)

// DML-maintenance benchmark fixture: a base table of parameterizable size
// with a selection view and a join view registered on top, plus a
// steady-state write transaction. BenchmarkDMLMaintenance (package birds)
// sweeps the base size at a fixed per-transaction delta; with
// counting-based incremental maintenance the per-write cost must stay flat
// as the base grows — the regime of Figure 6's incremental curve, but for
// the engine's table-write path instead of the view-update path.

const dmlLuxuryProgram = `
source items(iid:int, iname:string, price:int).
view luxury(iid:int, iname:string, price:int).
-items(I,N,P) :- items(I,N,P), P > 1000, not luxury(I,N,P).
`

const dmlOwnedProgram = `
source items(iid:int, iname:string, price:int).
source owners(oid:int, iid:int).
view owned(oid:int, iid:int, price:int).
-owners(O,I) :- owners(O,I), not ownedkeep(O).
ownedkeep(O) :- owned(O,_,_).
`

// SetupDMLMaintenance builds an engine database with n base rows in items
// (and n/4 owner rows), a selection view (luxury) and a join view (owned),
// both registered without oracle validation — the benchmark measures
// maintenance, not validation. One warm-up transaction is executed so the
// support counts are initialized and every measured write is steady-state.
func SetupDMLMaintenance(n int, seed int64) (*engine.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDB()
	if err := decl(db, "items(iid:int, iname:string, price:int)."); err != nil {
		return nil, err
	}
	if err := decl(db, "owners(oid:int, iid:int)."); err != nil {
		return nil, err
	}
	rows := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, value.Tuple{ints(i), str(fmt.Sprintf("item%d", i)), ints(rng.Intn(2000) + 1)})
	}
	if err := db.LoadTable("items", rows); err != nil {
		return nil, err
	}
	owners := make([]value.Tuple, 0, n/4+1)
	for i := 0; i <= n/4; i++ {
		owners = append(owners, value.Tuple{ints(i), ints(rng.Intn(n))})
	}
	if err := db.LoadTable("owners", owners); err != nil {
		return nil, err
	}

	luxuryGet, err := datalog.ParseRule("luxury(I,N,P) :- items(I,N,P), P > 1000.")
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateView(dmlLuxuryProgram, engine.ViewOptions{
		SkipValidation: true, ExpectedGet: []*datalog.Rule{luxuryGet},
	}); err != nil {
		return nil, err
	}
	ownedGet, err := datalog.ParseRule("owned(O,I,P) :- owners(O,I), items(I,_,P).")
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateView(dmlOwnedProgram, engine.ViewOptions{
		SkipValidation: true, ExpectedGet: []*datalog.Rule{ownedGet},
	}); err != nil {
		return nil, err
	}

	// Warm-up: the first write initializes the views' support counts (the
	// one O(|DB|) step); measured iterations then run at O(|Δ|).
	if err := DMLMaintenanceTxn(db, n, 0); err != nil {
		return nil, err
	}
	return db, nil
}

// DMLMaintenanceTxn runs the fixed-delta steady-state write of iteration i:
// insert one fresh item row (and every fourth iteration one owner row),
// then delete the rows of the previous iteration, keeping the base size
// constant while every dependent view is maintained in place.
func DMLMaintenanceTxn(db *engine.DB, n, i int) error {
	id := n + i
	if err := db.Exec(engine.Insert("items", ints(id), str(fmt.Sprintf("hot%d", id)), ints(1500))); err != nil {
		return err
	}
	if i%4 == 0 {
		if err := db.Exec(engine.Insert("owners", ints(n+i), ints(id))); err != nil {
			return err
		}
	}
	if i > 0 {
		if err := db.Exec(engine.Delete("items", engine.Eq("iid", ints(id-1)))); err != nil {
			return err
		}
		if (i-1)%4 == 0 {
			if err := db.Exec(engine.Delete("owners", engine.Eq("oid", ints(n+i-1)))); err != nil {
				return err
			}
		}
	}
	return nil
}

// DMLMaintenanceViews names the views the fixture registers, in dependency
// order — callers assert they stay clean (never fall back to the dirty
// path) across the measured writes.
func DMLMaintenanceViews() []string { return []string{"luxury", "owned"} }

// BatchedHotWindow is the number of primed hot rows the batched fixture
// keeps alive: each write deletes the row inserted BatchedHotWindow
// transactions earlier, so at any batch size up to the window no
// insert/delete pair cancels inside a batch — the benchmark measures
// propagation amortization, not coalescing luck.
const BatchedHotWindow = 600

// SetupBatchedDML builds the DML-maintenance fixture at base size n (plus
// the primed hot window) and returns it with a group-commit Batcher that
// flushes every batch transactions. batch=1 degenerates to one maintenance
// pass per write — the unbatched baseline with identical admission
// bookkeeping, which is what BenchmarkBatchedDML's batch-size sweep
// compares against.
func SetupBatchedDML(n, batch int, seed int64) (*engine.DB, *engine.Batcher, error) {
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDB()
	if err := decl(db, "items(iid:int, iname:string, price:int)."); err != nil {
		return nil, nil, err
	}
	if err := decl(db, "owners(oid:int, iid:int)."); err != nil {
		return nil, nil, err
	}
	rows := make([]value.Tuple, 0, n+BatchedHotWindow)
	for i := 0; i < n; i++ {
		rows = append(rows, value.Tuple{ints(i), str(fmt.Sprintf("item%d", i)), ints(rng.Intn(2000) + 1)})
	}
	for i := 0; i < BatchedHotWindow; i++ {
		rows = append(rows, value.Tuple{ints(n + i), str(fmt.Sprintf("hot%d", n+i)), ints(1500)})
	}
	if err := db.LoadTable("items", rows); err != nil {
		return nil, nil, err
	}
	owners := make([]value.Tuple, 0, n/4+1)
	for i := 0; i <= n/4; i++ {
		owners = append(owners, value.Tuple{ints(i), ints(rng.Intn(n))})
	}
	if err := db.LoadTable("owners", owners); err != nil {
		return nil, nil, err
	}

	luxuryGet, err := datalog.ParseRule("luxury(I,N,P) :- items(I,N,P), P > 1000.")
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.CreateView(dmlLuxuryProgram, engine.ViewOptions{
		SkipValidation: true, ExpectedGet: []*datalog.Rule{luxuryGet},
	}); err != nil {
		return nil, nil, err
	}
	ownedGet, err := datalog.ParseRule("owned(O,I,P) :- owners(O,I), items(I,_,P).")
	if err != nil {
		return nil, nil, err
	}
	if _, err := db.CreateView(dmlOwnedProgram, engine.ViewOptions{
		SkipValidation: true, ExpectedGet: []*datalog.Rule{ownedGet},
	}); err != nil {
		return nil, nil, err
	}

	// Warm-up write 0 initializes the support counts (the one O(|DB|)
	// step) and establishes the steady-state alive window {n+1 .. n+W}.
	if err := db.Exec(
		engine.Insert("items", ints(n+BatchedHotWindow), str(fmt.Sprintf("hot%d", n+BatchedHotWindow)), ints(1500)),
		engine.Delete("items", engine.Eq("iid", ints(n))),
	); err != nil {
		return nil, nil, err
	}
	if batch < 1 {
		batch = 1
	}
	return db, db.Batch(engine.BatchOptions{MaxTxns: batch}), nil
}

// BatchedDMLTxn admits steady-state write transaction i (i >= 1) of the
// PR 3 DMLMaintenance stream: insert one fresh hot item and delete the
// previous transaction's — a fixed two-tuple delta per transaction. Within
// a batch, transaction i's insert and transaction i+1's delete hit the
// same row and cancel in the staged buffer, so a batch of K transactions
// coalesces to a ~2-row net delta: this stream measures the full group-
// commit effect (coalescing plus single maintenance pass).
func BatchedDMLTxn(bt *engine.Batcher, n, i int) error {
	id := n + BatchedHotWindow + i
	return bt.Exec(
		engine.Insert("items", ints(id), str(fmt.Sprintf("hot%d", id)), ints(1500)),
		engine.Delete("items", engine.Eq("iid", ints(id-1))),
	)
}

// SetupBatchedDMLDurable is SetupBatchedDML with a write-ahead log attached
// in the given sync mode after the fixture is built — the bulk loads, view
// registrations and warm-up are not part of the measured stream, so every
// measured admission/flush pays exactly the configured durability cost.
// Automatic checkpoints are disabled: the benchmark isolates the per-record
// append/fsync cost (and leaves a log tail for the recovery benchmark).
func SetupBatchedDMLDurable(n, batch int, seed int64, dir string, sync wal.SyncMode) (*engine.DB, *engine.Batcher, error) {
	return SetupBatchedDMLDurableOpts(n, batch, seed,
		engine.DurabilityOptions{Dir: dir, Sync: sync, CheckpointEvery: -1})
}

// SetupBatchedDMLDurableOpts is SetupBatchedDMLDurable with the durability
// configuration fully under the caller's control, so benchmarks can measure
// the segmented-log + background-checkpoint configuration (rotation and
// concurrent snapshot persistence inside the timed region) against the
// plain append-only one.
func SetupBatchedDMLDurableOpts(n, batch int, seed int64, opts engine.DurabilityOptions) (*engine.DB, *engine.Batcher, error) {
	db, bt, err := SetupBatchedDML(n, batch, seed)
	if err != nil {
		return nil, nil, err
	}
	if err := db.EnableDurability(opts); err != nil {
		return nil, nil, err
	}
	return db, bt, nil
}

// BatchedDMLWindowTxn admits steady-state write transaction i (i >= 1) of
// the non-cancelling variant: insert one fresh hot item and delete the one
// that left the BatchedHotWindow-sized window, so no insert/delete pair
// cancels inside a batch (window > any swept batch size) and the flushed
// delta is the full 2·K rows: this stream isolates the amortization of the
// per-pass fixed cost, with zero coalescing.
func BatchedDMLWindowTxn(bt *engine.Batcher, n, i int) error {
	id := n + BatchedHotWindow + i
	return bt.Exec(
		engine.Insert("items", ints(id), str(fmt.Sprintf("hot%d", id)), ints(1500)),
		engine.Delete("items", engine.Eq("iid", ints(n+i))),
	)
}
