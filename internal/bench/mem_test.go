package bench

import (
	"fmt"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// Peak-memory benchmarks for the execution core: the same evaluation run in
// streaming and materialized mode, measured with MeasureHeapPeak. The
// reported peak-MB is the evaluation's working overhead — peak heap above
// the resident base EDB — which is what the streaming executor reduces: the
// materialized path registers maintained hash indexes on the probed (large)
// relations, the streaming path hashes only the small build sides into
// ephemeral tables. BENCH_mem.json at the repo root is the committed
// baseline of this sweep.

// joinHeavyProgram probes the fact table two ways: a fan-out join keyed on
// the non-unique column (the materialized path indexes all of fact by b)
// and a point-lookup join keyed on the unique column (an index with one
// group per fact tuple — the worst case for index heap). Outputs are kept
// small by selective filters/small drivers, so what the measurement
// compares is execution overhead, not output size.
const joinHeavyProgram = `
source fact(a:int, b:int).
source dim(b:int, c:int).
source keys(a:int).
view v(a:int).
wide(X,Z) :- dim(Y,Z), fact(X,Y), Z < %d.
point(Y) :- keys(X), fact(X,Y).
`

// negationHeavyProgram guards a scan of dim with an anti-join against fact
// on its non-unique column: materialized execution builds a full index on
// fact to answer the existence probes; streaming builds an existTable with
// one representative tuple per distinct key.
const negationHeavyProgram = `
source fact(a:int, b:int).
source dim(b:int, c:int).
view v(a:int).
fresh(Y,Z) :- dim(Y,Z), not fact(_,Y).
`

// memJoinDB builds the join-heavy EDB: n facts with b fanning out over
// n/16 distinct values, a dim table over those values, and a sparse key
// set hitting 1% of the unique fact column.
func memJoinDB(n int) *eval.Database {
	db := eval.NewDatabase()
	nDim := n / 16
	fact := value.NewRelation(2)
	for i := 0; i < n; i++ {
		fact.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % nDim))})
	}
	dim := value.NewRelation(2)
	for k := 0; k < nDim; k++ {
		dim.Add(value.Tuple{value.Int(int64(k)), value.Int(int64(k * 7))})
	}
	keys := value.NewRelation(1)
	for k := 0; k < n/100; k++ {
		keys.Add(value.Tuple{value.Int(int64(k * 100))})
	}
	db.Set(datalog.Pred("fact"), fact)
	db.Set(datalog.Pred("dim"), dim)
	db.Set(datalog.Pred("keys"), keys)
	return db
}

// memJoinProg renders the join program with its selectivity threshold: the
// Z < t filter passes ~1% of dim.
func memJoinProg(n int) string {
	return fmt.Sprintf(joinHeavyProgram, (n/16)*7/100)
}

// memNegDB builds the negation-heavy EDB: dim ranges over 10% more key
// values than fact covers, so the anti-join keeps a small output.
func memNegDB(n int) *eval.Database {
	db := eval.NewDatabase()
	nKeys := n / 16
	fact := value.NewRelation(2)
	for i := 0; i < n; i++ {
		fact.Add(value.Tuple{value.Int(int64(i)), value.Int(int64(i % nKeys))})
	}
	dim := value.NewRelation(2)
	for k := 0; k < nKeys+nKeys/10; k++ {
		dim.Add(value.Tuple{value.Int(int64(k)), value.Int(int64(k * 3))})
	}
	db.Set(datalog.Pred("fact"), fact)
	db.Set(datalog.Pred("dim"), dim)
	return db
}

type memShape struct {
	name string
	prog func(n int) string
	edb  func(n int) *eval.Database
}

var memShapes = []memShape{
	{"join", memJoinProg, memJoinDB},
	{"neg", func(int) string { return negationHeavyProgram }, memNegDB},
}

// memSizes sweeps the base-table size from 10k to 1.6M tuples — the top
// size 4× the largest base any previous benchmark evaluated.
var memSizes = []int{10_000, 100_000, 400_000, 1_600_000}

func memProgOf(t testing.TB, src string) *datalog.Program {
	prog, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// measureEval runs one full evaluation of shape at size n in the given
// mode over a fresh database and returns the heap measurement. init
// selects the counted-IVM initialization (EvalDelta's first call) instead
// of a plain Eval.
func measureEval(t testing.TB, shape memShape, n int, mode eval.ExecMode, init bool) HeapStats {
	prog := memProgOf(t, shape.prog(n))
	ev, err := eval.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	ev.SetExecMode(mode)
	db := shape.edb(n)
	return MeasureHeapPeak(func() {
		if init {
			if _, err := ev.EvalDelta(db, nil); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := ev.Eval(db); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalMemory sweeps (shape × size × mode) for full evaluation and
// (join × size × mode) for the counted init, reporting the peak working
// overhead and the durable live overhead in MB alongside wall time.
func BenchmarkEvalMemory(b *testing.B) {
	for _, shape := range memShapes {
		for _, n := range memSizes {
			for _, mode := range []eval.ExecMode{eval.ExecStreaming, eval.ExecMaterialized} {
				b.Run(fmt.Sprintf("%s/n=%d/%s", shape.name, n, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						st := measureEval(b, shape, n, mode, false)
						b.ReportMetric(float64(st.PeakOverhead())/1e6, "peak-MB")
						b.ReportMetric(float64(st.LiveOverhead())/1e6, "live-MB")
					}
				})
			}
		}
	}
	for _, n := range memSizes {
		for _, mode := range []eval.ExecMode{eval.ExecStreaming, eval.ExecMaterialized} {
			b.Run(fmt.Sprintf("init/n=%d/%s", n, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					st := measureEval(b, memShapes[0], n, mode, true)
					b.ReportMetric(float64(st.PeakOverhead())/1e6, "peak-MB")
					b.ReportMetric(float64(st.LiveOverhead())/1e6, "live-MB")
				}
			})
		}
	}
}

// TestMeasureHeapPeakObservesAllocation sanity-checks the sampler: an
// operation holding a 64 MB slice must show up in Peak, and must be gone
// from Live after it is dropped.
func TestMeasureHeapPeakObservesAllocation(t *testing.T) {
	var hold []byte
	st := MeasureHeapPeak(func() {
		hold = make([]byte, 64<<20)
		for i := 0; i < len(hold); i += 4096 {
			hold[i] = byte(i)
		}
		hold = nil
	})
	if got := st.PeakOverhead(); got < 60<<20 {
		t.Errorf("peak overhead %d bytes, want >= 60MB", got)
	}
	if got := st.LiveOverhead(); got > 8<<20 {
		t.Errorf("live overhead %d bytes after dropping the slice, want < 8MB", got)
	}
}

// TestStreamingPeakReduction enforces the headline claim at a mid-size
// base: streaming full evaluation of the join-heavy program must peak at
// least 40% below materialized evaluation. (The committed BENCH_mem.json
// records the full sweep including the 1.6M top size.)
func TestStreamingPeakReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("memory measurement sweep")
	}
	const n = 400_000
	mat := measureEval(t, memShapes[0], n, eval.ExecMaterialized, false)
	stream := measureEval(t, memShapes[0], n, eval.ExecStreaming, false)
	mp, sp := mat.PeakOverhead(), stream.PeakOverhead()
	t.Logf("n=%d: materialized peak overhead %.1f MB, streaming %.1f MB", n, float64(mp)/1e6, float64(sp)/1e6)
	if mp == 0 {
		t.Fatal("materialized measurement collapsed to zero")
	}
	if float64(sp) > 0.6*float64(mp) {
		t.Errorf("streaming peak overhead %.1f MB is not >=40%% below materialized %.1f MB",
			float64(sp)/1e6, float64(mp)/1e6)
	}
}
