package bench

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"birds/internal/core"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/sqlgen"
)

// Table1Row is one measured row of the Table 1 reproduction.
type Table1Row struct {
	Entry          Table1Entry
	LOC            int           // program size in rules
	LVGN           bool          // measured LVGN-Datalog membership
	NR             bool          // measured NR-Datalog membership
	Valid          bool          // Algorithm 1 outcome
	UsedExpected   bool          // expected get confirmed (vs derived)
	FailureDetail  string        // when invalid
	ValidationTime time.Duration // wall time of Validate
	SQLBytes       int           // size of the compiled SQL program
	Err            error         // infrastructure error (parse/compile)
}

// parseDecl parses a single relation declaration like "r(a:int, b:string).".
func parseDecl(src string) (*datalog.RelDecl, error) {
	p, err := datalog.Parse("source " + src)
	if err != nil {
		return nil, err
	}
	if len(p.Sources) != 1 {
		return nil, fmt.Errorf("bench: expected one declaration in %q", src)
	}
	return p.Sources[0], nil
}

// ParseGetRules parses a newline-separated list of view-definition rules.
func ParseGetRules(src string) ([]*datalog.Rule, error) {
	if strings.TrimSpace(src) == "" {
		return nil, nil
	}
	var out []*datalog.Rule
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		r, err := datalog.ParseRule(line)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunTable1Entry validates and compiles one benchmark view.
func RunTable1Entry(e Table1Entry, opts core.Options) Table1Row {
	row := Table1Row{Entry: e}
	if e.Program == "" {
		row.Err = fmt.Errorf("bench: %s: not expressible in NR-Datalog (aggregation)", e.Name)
		return row
	}
	prog, err := datalog.Parse(e.Program)
	if err != nil {
		row.Err = err
		return row
	}
	row.LOC = prog.LOC()
	pb, err := core.NewPutback(prog)
	if err != nil {
		row.Err = err
		return row
	}
	row.LVGN = pb.Class.LVGN()
	row.NR = pb.Class.NRDatalog()

	expected, err := ParseGetRules(e.ExpectedGet)
	if err != nil {
		row.Err = err
		return row
	}
	res, err := core.Validate(pb, expected, opts)
	if err != nil {
		row.Err = err
		return row
	}
	row.Valid = res.Valid
	row.UsedExpected = res.UsedExpected
	row.ValidationTime = res.Elapsed
	if !res.Valid {
		row.FailureDetail = res.Failure.Error()
		return row
	}

	sqlText, err := sqlgen.New(prog).Compile(res.Get)
	if err != nil {
		row.Err = err
		return row
	}
	row.SQLBytes = len(sqlText)
	return row
}

// RunTable1 runs the full benchmark.
func RunTable1(opts core.Options) []Table1Row {
	return RunTable1Parallel(opts, 1)
}

// RunTable1Parallel runs the full benchmark with the entries validated
// concurrently by up to `workers` goroutines. Entry validations are
// independent (each compiles its own putback and oracle), so the rows are
// identical to a sequential run; only wall time changes. workers <= 0
// selects the GOMAXPROCS-derived default.
func RunTable1Parallel(opts core.Options, workers int) []Table1Row {
	entries := Table1()
	rows := make([]Table1Row, len(entries))
	if workers <= 0 {
		workers = eval.DefaultParallelism()
	}
	if workers <= 1 {
		for i, e := range entries {
			rows[i] = RunTable1Entry(e, opts)
		}
		return rows
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, e := range entries {
		wg.Add(1)
		go func(i int, e Table1Entry) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i] = RunTable1Entry(e, opts)
		}(i, e)
	}
	wg.Wait()
	return rows
}

// FormatTable1 renders the rows the way the paper prints Table 1.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-17s %-9s %-12s %-5s %-6s %-5s %-9s %-7s %s\n",
		"ID", "View", "Operator", "Constraint", "LOC", "LVGN", "NR", "Valid", "SQL(B)", "Validation(s)")
	mark := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		if r.Entry.Program == "" {
			fmt.Fprintf(&b, "%-3d %-17s %-9s %-12s %-5s %-6s %-5s %-9s %-7s %s\n",
				r.Entry.ID, r.Entry.Name, r.Entry.Operators, r.Entry.Constraints,
				"-", "no", "no", "-", "-", "- (aggregation not expressible)")
			continue
		}
		if r.Err != nil {
			fmt.Fprintf(&b, "%-3d %-17s error: %v\n", r.Entry.ID, r.Entry.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-3d %-17s %-9s %-12s %-5d %-6s %-5s %-9s %-7d %.3f\n",
			r.Entry.ID, r.Entry.Name, r.Entry.Operators, r.Entry.Constraints,
			r.LOC, mark(r.LVGN), mark(r.NR), mark(r.Valid), r.SQLBytes,
			r.ValidationTime.Seconds())
	}
	return b.String()
}
