package bench

import (
	"fmt"
	"math/rand"
	"time"

	"birds/internal/engine"
	"birds/internal/value"
)

// Fig6View describes one panel of Figure 6: a view program, a data
// generator for the base tables at a given size, and a per-round update
// workload (one insert of a fresh view tuple and one delete of the tuple
// inserted the round before, keeping the database size stable).
type Fig6View struct {
	Name        string
	Program     string
	ExpectedGet string
	Setup       func(db *engine.DB, n int, rng *rand.Rand) error
	// Update returns the statements of round i (i starts at 1).
	Update func(n, round int) [][]engine.Statement
}

func ints(n int) value.Value   { return value.Int(int64(n)) }
func str(s string) value.Value { return value.Str(s) }

func decl(db *engine.DB, src string) error {
	p, err := parseDecl(src)
	if err != nil {
		return err
	}
	return db.CreateTable(p)
}

// Fig6Views returns the four panels of Figure 6.
func Fig6Views() []Fig6View {
	return []Fig6View{
		{
			Name:        "luxuryitems",
			Program:     LuxuryItemsProgram,
			ExpectedGet: `luxuryitems(I,N,P) :- items(I,N,P), P > 1000.`,
			Setup: func(db *engine.DB, n int, rng *rand.Rand) error {
				if err := decl(db, "items(iid:int, iname:string, price:int)."); err != nil {
					return err
				}
				rows := make([]value.Tuple, 0, n)
				for i := 0; i < n; i++ {
					rows = append(rows, value.Tuple{ints(i), str(fmt.Sprintf("item%d", i)), ints(rng.Intn(2000) + 1)})
				}
				return db.LoadTable("items", rows)
			},
			Update: func(n, round int) [][]engine.Statement {
				id := n + round
				out := [][]engine.Statement{{
					engine.Insert("luxuryitems", ints(id), str(fmt.Sprintf("lux%d", id)), ints(1500)),
				}}
				if round > 1 {
					out = append(out, []engine.Statement{
						engine.Delete("luxuryitems", engine.Eq("iid", ints(id-1))),
					})
				}
				return out
			},
		},
		{
			Name:        "officeinfo",
			Program:     OfficeInfoProgram,
			ExpectedGet: `officeinfo(E,O) :- works(E,O,_).`,
			Setup: func(db *engine.DB, n int, rng *rand.Rand) error {
				if err := decl(db, "works(ename:string, office:string, phone:int)."); err != nil {
					return err
				}
				rows := make([]value.Tuple, 0, n)
				for i := 0; i < n; i++ {
					rows = append(rows, value.Tuple{
						str(fmt.Sprintf("emp%d", i)),
						str(fmt.Sprintf("office%d", i%97)),
						ints(rng.Intn(10000)),
					})
				}
				return db.LoadTable("works", rows)
			},
			Update: func(n, round int) [][]engine.Statement {
				id := n + round
				out := [][]engine.Statement{{
					engine.Insert("officeinfo", str(fmt.Sprintf("emp%d", id)), str("office1")),
				}}
				if round > 1 {
					out = append(out, []engine.Statement{
						engine.Delete("officeinfo", engine.Eq("ename", str(fmt.Sprintf("emp%d", id-1)))),
					})
				}
				return out
			},
		},
		{
			Name:        "outstanding_task",
			Program:     OutstandingTaskProgram,
			ExpectedGet: `outstanding_task(T,N,U) :- tasks(T,N,U,0), users(U,_).`,
			Setup: func(db *engine.DB, n int, rng *rand.Rand) error {
				if err := decl(db, "tasks(tid:int, tname:string, uid:int, done:int)."); err != nil {
					return err
				}
				if err := decl(db, "users(uid:int, uname:string)."); err != nil {
					return err
				}
				nUsers := n/10 + 1
				users := make([]value.Tuple, 0, nUsers)
				for i := 0; i < nUsers; i++ {
					users = append(users, value.Tuple{ints(i), str(fmt.Sprintf("user%d", i))})
				}
				if err := db.LoadTable("users", users); err != nil {
					return err
				}
				rows := make([]value.Tuple, 0, n)
				for i := 0; i < n; i++ {
					rows = append(rows, value.Tuple{
						ints(i), str(fmt.Sprintf("task%d", i)), ints(rng.Intn(nUsers)), ints(rng.Intn(2)),
					})
				}
				return db.LoadTable("tasks", rows)
			},
			Update: func(n, round int) [][]engine.Statement {
				id := n + round
				out := [][]engine.Statement{{
					engine.Insert("outstanding_task", ints(id), str(fmt.Sprintf("task%d", id)), ints(0)),
				}}
				if round > 1 {
					out = append(out, []engine.Statement{
						engine.Delete("outstanding_task", engine.Eq("tid", ints(id-1))),
					})
				}
				return out
			},
		},
		{
			Name:        "vw_brands",
			Program:     VwBrandsProgram,
			ExpectedGet: "vw_brands(N) :- brands1(_,N).\nvw_brands(N) :- brands2(_,N).",
			Setup: func(db *engine.DB, n int, rng *rand.Rand) error {
				if err := decl(db, "brands1(bid:int, bname:string)."); err != nil {
					return err
				}
				if err := decl(db, "brands2(bid:int, bname:string)."); err != nil {
					return err
				}
				half := n / 2
				rows1 := make([]value.Tuple, 0, half)
				rows2 := make([]value.Tuple, 0, n-half)
				for i := 0; i < half; i++ {
					rows1 = append(rows1, value.Tuple{ints(i), str(fmt.Sprintf("brandA%d", i))})
				}
				for i := half; i < n; i++ {
					rows2 = append(rows2, value.Tuple{ints(i), str(fmt.Sprintf("brandB%d", i))})
				}
				if err := db.LoadTable("brands1", rows1); err != nil {
					return err
				}
				return db.LoadTable("brands2", rows2)
			},
			Update: func(n, round int) [][]engine.Statement {
				id := n + round
				out := [][]engine.Statement{{
					engine.Insert("vw_brands", str(fmt.Sprintf("brandNew%d", id))),
				}}
				if round > 1 {
					out = append(out, []engine.Statement{
						engine.Delete("vw_brands", engine.Eq("bname", str(fmt.Sprintf("brandNew%d", id-1)))),
					})
				}
				return out
			},
		},
	}
}

// Fig6ViewByName looks a panel up by name.
func Fig6ViewByName(name string) (Fig6View, error) {
	for _, v := range Fig6Views() {
		if v.Name == name {
			return v, nil
		}
	}
	return Fig6View{}, fmt.Errorf("bench: unknown Figure 6 view %q", name)
}

// Fig6Point is one measured point of a sweep.
type Fig6Point struct {
	Size      int
	PerUpdate time.Duration // mean wall time of one view-update transaction
}

// SetupFig6 builds a database of the given size with the view installed in
// the requested execution mode. Validation is skipped (the same strategies
// are validated by the Table 1 harness); the expected get is supplied.
// parallelism is the evaluator worker count (engine.ViewOptions semantics:
// 0/1 sequential, < 0 the GOMAXPROCS-derived default).
func SetupFig6(v Fig6View, n int, incremental bool, seed int64, parallelism int) (*engine.DB, error) {
	db := engine.NewDB()
	rng := rand.New(rand.NewSource(seed))
	if err := v.Setup(db, n, rng); err != nil {
		return nil, err
	}
	get, err := ParseGetRules(v.ExpectedGet)
	if err != nil {
		return nil, err
	}
	if _, err := db.CreateView(v.Program, engine.ViewOptions{
		Incremental:    incremental,
		SkipValidation: true,
		ExpectedGet:    get,
		Parallelism:    parallelism,
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// RunFig6 measures one panel: for each base-table size, the mean time of a
// view-update transaction in the chosen mode (rounds updates, first round
// used as warm-up and excluded).
func RunFig6(v Fig6View, sizes []int, incremental bool, rounds int, seed int64, parallelism int) ([]Fig6Point, error) {
	if rounds < 4 {
		rounds = 4
	}
	var out []Fig6Point
	for _, n := range sizes {
		db, err := SetupFig6(v, n, incremental, seed, parallelism)
		if err != nil {
			return nil, err
		}
		// Two warm-up rounds: the first insert and the first delete build
		// the evaluator's hash indexes, which are maintained incrementally
		// afterwards.
		for round := 1; round <= 2; round++ {
			for _, txn := range v.Update(n, round) {
				if err := db.Exec(txn...); err != nil {
					return nil, err
				}
			}
		}
		var total time.Duration
		measured := 0
		for round := 3; round <= rounds; round++ {
			for _, txn := range v.Update(n, round) {
				start := time.Now()
				if err := db.Exec(txn...); err != nil {
					return nil, err
				}
				total += time.Since(start)
				measured++
			}
		}
		out = append(out, Fig6Point{Size: n, PerUpdate: total / time.Duration(measured)})
	}
	return out, nil
}

// DefaultFig6Sizes is the default base-table sweep. The paper sweeps to
// 3×10^6 tuples on a dedicated server; the default here is scaled for a
// laptop-class run while preserving the linear-vs-flat shape.
func DefaultFig6Sizes() []int { return []int{25000, 50000, 100000, 200000, 400000} }
