package bench

import (
	"strings"
	"testing"

	"birds/internal/analysis"
	"birds/internal/core"
	"birds/internal/datalog"
	"birds/internal/sqlgen"
)

// Every expressible benchmark program must survive a print/reparse round
// trip with identical classification.
func TestTable1PrintRoundTrip(t *testing.T) {
	for _, e := range Table1() {
		if e.Program == "" {
			continue
		}
		p1, err := datalog.Parse(e.Program)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		p2, err := datalog.Parse(p1.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", e.Name, err, p1)
		}
		if p1.String() != p2.String() {
			t.Errorf("%s: round trip differs", e.Name)
		}
		c1, c2 := analysis.Classify(p1), analysis.Classify(p2)
		if c1.LVGN() != c2.LVGN() || c1.NRDatalog() != c2.NRDatalog() {
			t.Errorf("%s: classification changed across round trip", e.Name)
		}
	}
}

// Every expressible benchmark strategy compiles to a complete SQL program.
func TestTable1SQLCompilation(t *testing.T) {
	for _, e := range Table1() {
		if e.Program == "" {
			continue
		}
		prog, err := datalog.Parse(e.Program)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		get, err := ParseGetRules(e.ExpectedGet)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		sqlText, err := sqlgen.New(prog).Compile(get)
		if err != nil {
			t.Fatalf("%s: compile: %v", e.Name, err)
		}
		for _, want := range []string{
			"CREATE OR REPLACE VIEW " + prog.View.Name,
			"CREATE OR REPLACE FUNCTION " + prog.View.Name + "_update_strategy",
			"INSTEAD OF INSERT OR UPDATE OR DELETE ON " + prog.View.Name,
		} {
			if !strings.Contains(sqlText, want) {
				t.Errorf("%s: SQL missing %q", e.Name, want)
			}
		}
		if len(prog.Constraints()) > 0 && !strings.Contains(sqlText, "RAISE EXCEPTION") {
			t.Errorf("%s: constraints not compiled into the trigger", e.Name)
		}
	}
}

// LVGN entries must incrementalize via Lemma 5.2; non-LVGN entries must be
// rejected by the LVGN path but handled by the general Figure 7 pipeline.
func TestTable1Incrementalization(t *testing.T) {
	for _, e := range Table1() {
		if e.Program == "" {
			continue
		}
		prog, err := datalog.Parse(e.Program)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		inc, lvgnErr := core.Incrementalize(prog)
		if e.WantLVGN {
			if lvgnErr != nil {
				t.Errorf("%s: LVGN entry must incrementalize: %v", e.Name, lvgnErr)
				continue
			}
			// ∂put must reference the view deltas rather than the view.
			text := inc.String()
			if !strings.Contains(text, "+"+prog.View.Name+"(") &&
				!strings.Contains(text, "-"+prog.View.Name+"(") {
				t.Errorf("%s: ∂put references no view delta:\n%s", e.Name, text)
			}
		}
		if _, err := core.NewGeneralIncremental(prog); err != nil {
			t.Errorf("%s: general incrementalization failed: %v", e.Name, err)
		}
	}
}

// The classification of each benchmark program is stable and matches the
// paper's column (quick sanity independent of the full validation test).
func TestTable1Classification(t *testing.T) {
	for _, e := range Table1() {
		if e.Program == "" {
			continue
		}
		prog, err := datalog.Parse(e.Program)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		c := analysis.Classify(prog)
		if c.LVGN() != e.WantLVGN {
			t.Errorf("%s: LVGN = %v, paper says %v (%v)", e.Name, c.LVGN(), e.WantLVGN, c.Violations)
		}
		if !c.NRDatalog() {
			t.Errorf("%s: should be NR-Datalog: %v", e.Name, c.Violations)
		}
		if err := analysis.CheckPutbackShape(prog); err != nil {
			t.Errorf("%s: bad shape: %v", e.Name, err)
		}
	}
}
