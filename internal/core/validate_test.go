package core

import (
	"math/rand"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/sat"
	"birds/internal/value"
)

func mustProg(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustPutback(t *testing.T, src string) *Putback {
	t.Helper()
	pb, err := NewPutback(mustProg(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

func mustRules(t *testing.T, srcs ...string) []*datalog.Rule {
	t.Helper()
	var out []*datalog.Rule
	for _, s := range srcs {
		r, err := datalog.ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

// testOptions keeps unit tests fast while preserving the layered search.
func testOptions() Options {
	return Options{Oracle: sat.Config{
		MaxTuples:        3,
		RandomTrials:     800,
		ExhaustiveBudget: 30000,
		GuideBudget:      30000,
		Seed:             1,
	}}
}

const unionSrc = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func TestValidateUnionWithExpectedGet(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	get := mustRules(t, "v(X) :- r1(X).", "v(X) :- r2(X).")
	res, err := Validate(pb, get, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("union strategy should be valid, failure: %v", res.Failure)
	}
	if !res.UsedExpected {
		t.Error("expected get should have been accepted")
	}
	if !res.Class.LVGN() {
		t.Error("union strategy should be LVGN")
	}
}

func TestValidateUnionDerivesGet(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("union strategy should be valid, failure: %v", res.Failure)
	}
	if res.UsedExpected || res.Get == nil {
		t.Fatal("get should have been derived")
	}
	if res.Decomp == nil {
		t.Fatal("derivation should record the decomposition")
	}

	// The derived get must compute R1 ∪ R2 on random instances.
	getEv, err := eval.New(GetProgram(pb.Prog, res.Get))
	if err != nil {
		t.Fatalf("derived get does not compile: %v", err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		db := eval.NewDatabase()
		r1, r2 := value.NewRelation(1), value.NewRelation(1)
		for i := 0; i < rng.Intn(5); i++ {
			r1.Add(value.Tuple{value.Int(int64(rng.Intn(6)))})
		}
		for i := 0; i < rng.Intn(5); i++ {
			r2.Add(value.Tuple{value.Int(int64(rng.Intn(6)))})
		}
		db.Set(datalog.Pred("r1"), r1)
		db.Set(datalog.Pred("r2"), r2)
		got, err := getEv.EvalQuery(db, datalog.Pred("v"))
		if err != nil {
			t.Fatal(err)
		}
		want := r1.Clone()
		want.UnionWith(r2)
		if !got.Equal(want) {
			t.Fatalf("derived get = %v, want %v", got, want)
		}
	}
}

func TestValidateRejectsIllDefined(t *testing.T) {
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X).
-r(X) :- v(X), r(X).
`)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("contradictory program should be invalid")
	}
	if res.Failure.Pass != PassWellDefined {
		t.Errorf("expected well-definedness failure, got %v", res.Failure)
	}
	if res.Failure.Witness == nil {
		t.Error("a witness instance should be reported")
	}
}

func TestValidateRejectsPutGetViolation(t *testing.T) {
	// Deletes view members from the source, inserts non-members: the only
	// steady state is V = ∅, so get = ∅, and any insertion breaks PutGet.
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
-r(X) :- r(X), v(X).
+r(X) :- v(X), not r(X).
`)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("program should fail PutGet")
	}
	if res.Failure.Pass != PassPutGet && res.Failure.Pass != PassWellDefined {
		t.Errorf("unexpected failing pass %q: %v", res.Failure.Pass, res.Failure)
	}
}

func TestValidateRejectsNoSteadyState(t *testing.T) {
	// r1 must be ⊆ V and r2 must be disjoint from V: impossible when
	// r1 ∩ r2 ≠ ∅, so no view definition satisfies GetPut.
	pb := mustPutback(t, `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), v(X).
`)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("program without steady state should be invalid")
	}
	if res.Failure.Pass != PassGetDerivation {
		t.Errorf("expected get-derivation failure, got pass %q: %v", res.Failure.Pass, res.Failure)
	}
	if res.Failure.Witness == nil {
		t.Error("φ1 ∧ φ2 witness should be reported")
	}
}

func TestValidateRejectsViewFreeDelta(t *testing.T) {
	// -r fires regardless of the view: φ3 is satisfiable (any r tuple with
	// a > 5 means no steady state).
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
-r(X) :- r(X), X > 5.
`)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("view-free deletion should be invalid")
	}
	if res.Failure.Pass != PassGetDerivation {
		t.Errorf("expected φ3 failure, got %v", res.Failure)
	}
}

func TestValidateSelectionNeedsConstraint(t *testing.T) {
	base := `
source r(a:int).
view v(a:int).
+r(X) :- v(X), not r(X).
-r(X) :- r(X), X > 2, not v(X).
`
	// Without the constraint: inserting 1 into the view is not reflected
	// by get (selection X > 2), so PutGet fails.
	pb := mustPutback(t, base)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("selection strategy without constraint should fail PutGet")
	}
	if res.Failure.Pass != PassPutGet {
		t.Errorf("expected PutGet failure, got %v", res.Failure)
	}

	// With the domain constraint rejecting out-of-range view tuples, the
	// strategy is valid (the residents1962 pattern of §3.3).
	pb2 := mustPutback(t, base+"_|_ :- v(X), not X > 2.\n")
	res2, err := Validate(pb2, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Valid {
		t.Fatalf("constrained selection strategy should be valid: %v", res2.Failure)
	}

	// And the derived get must be the selection σ_{X>2}(r).
	getEv, err := eval.New(GetProgram(pb2.Prog, res2.Get))
	if err != nil {
		t.Fatalf("derived get does not compile: %v\n%v", err, res2.Get)
	}
	db := eval.NewDatabase()
	r := value.NewRelation(1)
	for _, x := range []int64{1, 2, 3, 7} {
		r.Add(value.Tuple{value.Int(x)})
	}
	db.Set(datalog.Pred("r"), r)
	got, err := getEv.EvalQuery(db, datalog.Pred("v"))
	if err != nil {
		t.Fatal(err)
	}
	want := value.RelationOf(1, value.Tuple{value.Int(3)}, value.Tuple{value.Int(7)})
	if !got.Equal(want) {
		t.Fatalf("derived get = %v, want %v", got, want)
	}
}

func TestValidateExpectedGetWrongFallsBack(t *testing.T) {
	// The expected get (intersection) does not satisfy GetPut with the
	// union strategy; Algorithm 1 falls through to derivation and still
	// certifies validity with the derived union get.
	pb := mustPutback(t, unionSrc)
	wrong := mustRules(t, "v(X) :- r1(X), r2(X).")
	res, err := Validate(pb, wrong, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("should fall back to derivation: %v", res.Failure)
	}
	if res.UsedExpected {
		t.Error("wrong expected get must not be accepted")
	}
}

func TestValidateCaseStudyCed(t *testing.T) {
	// The ced view of §3.3 (set difference): ced = ed \ eed.
	pb := mustPutback(t, `
source ed(e:string, d:string).
source eed(e:string, d:string).
view ced(e:string, d:string).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`)
	get := mustRules(t, "ced(E,D) :- ed(E,D), not eed(E,D).")
	res, err := Validate(pb, get, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("ced strategy should be valid: %v", res.Failure)
	}
	if !res.UsedExpected {
		t.Error("expected difference get should be accepted")
	}
	if !res.Class.LVGN() {
		t.Errorf("ced should be LVGN: %v", res.Class.Violations)
	}
}

func TestValidateResidents(t *testing.T) {
	// The residents union-of-three view of §3.3 with gender dispatch.
	pb := mustPutback(t, `
source male(e:string, b:date).
source female(e:string, b:date).
source others(e:string, b:date, g:string).
view residents(e:string, b:date, g:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'M').
+female(E,B) :- residents(E,B,G), G = 'F', not female(E,B), not others(E,B,G).
-female(E,B) :- female(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`)
	get := mustRules(t,
		"residents(E,B,G) :- others(E,B,G).",
		"residents(E,B,'F') :- female(E,B).",
		"residents(E,B,'M') :- male(E,B).",
	)
	res, err := Validate(pb, get, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("residents strategy should be valid: %v", res.Failure)
	}
	if !res.UsedExpected {
		t.Error("expected residents get should be accepted")
	}
}

func TestValidateResidentsBuggyCaught(t *testing.T) {
	// Mutant: -male forgets the gender filter, deleting every male not in
	// the view at all genders — GetPut breaks (a male row whose view tuple
	// carries gender 'M' is fine, but the mutant deletes rows for views
	// that list the person with a different birthdate only).
	pb := mustPutback(t, `
source male(e:string, b:date).
source others(e:string, b:date, g:string).
view residents(e:string, b:date, g:string).
+male(E,B) :- residents(E,B,'M'), not male(E,B), not others(E,B,'M').
-male(E,B) :- male(E,B), not residents(E,B,'F').
+others(E,B,G) :- residents(E,B,G), not G = 'M', not G = 'F', not others(E,B,G).
-others(E,B,G) :- others(E,B,G), not residents(E,B,G).
`)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("buggy residents mutant should be invalid")
	}
}

func TestPutRejectsConstraintViolation(t *testing.T) {
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), X > 9.
+r(X) :- v(X), not r(X).
-r(X) :- r(X), not v(X).
`)
	db := eval.NewDatabase()
	db.Set(datalog.Pred("r"), value.RelationOf(1, value.Tuple{value.Int(1)}))
	db.Set(datalog.Pred("v"), value.RelationOf(1, value.Tuple{value.Int(1)}, value.Tuple{value.Int(12)}))
	err := pb.Put(db)
	if _, ok := err.(*ConstraintError); !ok {
		t.Fatalf("want ConstraintError, got %v", err)
	}
	// Source must be untouched after rejection.
	if !db.Rel(datalog.Pred("r")).Equal(value.RelationOf(1, value.Tuple{value.Int(1)})) {
		t.Error("rejected update must not modify the source")
	}
}

func TestNewPutbackRejects(t *testing.T) {
	bad := []string{
		// no view
		"source r(a:int).\n+r(X) :- r(X).",
		// recursive
		"source r(a:int).\nview v(a:int).\na(X) :- b(X).\nb(X) :- a(X).\n+r(X) :- a(X).",
		// unsafe
		"source r(a:int).\nview v(a:int).\n+r(X) :- v(Y).",
	}
	for _, src := range bad {
		if _, err := NewPutback(mustProg(t, src)); err == nil {
			t.Errorf("NewPutback should reject:\n%s", src)
		}
	}
}

func TestComposePutGetSemantics(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	get := mustRules(t, "v(X) :- r1(X).", "v(X) :- r2(X).")
	putget, err := ComposePutGet(pb.Prog, get)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := eval.New(putget)
	if err != nil {
		t.Fatal(err)
	}
	getEv, err := eval.New(GetProgram(pb.Prog, get))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(31))
	randRel := func() *value.Relation {
		r := value.NewRelation(1)
		for i := 0; i < rng.Intn(5); i++ {
			r.Add(value.Tuple{value.Int(int64(rng.Intn(5)))})
		}
		return r
	}
	for trial := 0; trial < 80; trial++ {
		r1, r2, v := randRel(), randRel(), randRel()

		// Composed program: new_v over (S, V).
		db := eval.NewDatabase()
		db.Set(datalog.Pred("r1"), r1.Clone())
		db.Set(datalog.Pred("r2"), r2.Clone())
		db.Set(datalog.Pred("v"), v.Clone())
		if err := ev.Eval(db); err != nil {
			t.Fatal(err)
		}
		composed := db.RelOrEmpty(NewViewSym("v"), 1)

		// Direct computation: get(put(S, V)).
		db2 := eval.NewDatabase()
		db2.Set(datalog.Pred("r1"), r1.Clone())
		db2.Set(datalog.Pred("r2"), r2.Clone())
		db2.Set(datalog.Pred("v"), v.Clone())
		if err := pb.Put(db2); err != nil {
			t.Fatal(err)
		}
		direct, err := getEv.EvalQuery(db2, datalog.Pred("v"))
		if err != nil {
			t.Fatal(err)
		}
		if !composed.Equal(direct) {
			t.Fatalf("putget composition wrong:\ncomposed=%v\ndirect=%v\nr1=%v r2=%v v=%v",
				composed, direct, r1, r2, v)
		}
	}
}

func TestComposePutGetCollisionRejected(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
new_r(X) :- v(X).
+r(X) :- new_r(X), not r(X).
`)
	if _, err := ComposePutGet(prog, mustRules(t, "v(X) :- r(X).")); err == nil {
		t.Fatal("new_ name collision should be rejected")
	}
}

func TestValidateElapsedAndBounded(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed should be positive")
	}
	if !res.Bounded {
		t.Error("acceptance is always bounded with this oracle")
	}
}

// Theorem 2.1: a valid put determines get uniquely. Two different valid
// strategies for the same union view (one inserting into r1, one into r2)
// must therefore derive semantically identical view definitions.
func TestTheorem21UniquenessOfGet(t *testing.T) {
	intoR1 := mustPutback(t, unionSrc)
	intoR2 := mustPutback(t, `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r2(X) :- v(X), not r1(X), not r2(X).
`)
	res1, err := Validate(intoR1, nil, testOptions())
	if err != nil || !res1.Valid {
		t.Fatalf("strategy 1: %v %v", err, res1.Failure)
	}
	res2, err := Validate(intoR2, nil, testOptions())
	if err != nil || !res2.Valid {
		t.Fatalf("strategy 2: %v %v", err, res2.Failure)
	}
	ev1, err := eval.New(GetProgram(intoR1.Prog, res1.Get))
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := eval.New(GetProgram(intoR2.Prog, res2.Get))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		db1, db2 := eval.NewDatabase(), eval.NewDatabase()
		for _, name := range []string{"r1", "r2"} {
			rel := value.NewRelation(1)
			for i := 0; i < rng.Intn(6); i++ {
				rel.Add(value.Tuple{value.Int(int64(rng.Intn(8)))})
			}
			db1.Set(datalog.Pred(name), rel.Clone())
			db2.Set(datalog.Pred(name), rel.Clone())
		}
		g1, err := ev1.EvalQuery(db1, datalog.Pred("v"))
		if err != nil {
			t.Fatal(err)
		}
		g2, err := ev2.EvalQuery(db2, datalog.Pred("v"))
		if err != nil {
			t.Fatal(err)
		}
		if !g1.Equal(g2) {
			t.Fatalf("derived gets differ (Theorem 2.1 violated): %v vs %v", g1, g2)
		}
	}
}
