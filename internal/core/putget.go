package core

import (
	"fmt"

	"birds/internal/datalog"
)

// NewSourceSym returns the predicate for the post-update state of a source
// relation (the r_new of §4.4).
func NewSourceSym(name string) datalog.PredSym { return datalog.Pred("new_" + name) }

// NewViewSym returns the predicate for the recomputed view over the updated
// sources (the v_new of §4.4).
func NewViewSym(view string) datalog.PredSym { return datalog.Pred("new_" + view) }

// ComposePutGet builds the putget program of §4.4: the putback program,
// rules deriving each updated source
//
//	new_ri(X) :- ri(X), not -ri(X).
//	new_ri(X) :- +ri(X).
//
// and the get rules rewritten over the updated sources, so that new_v
// computes get(put(S, V)) over the database (S, V).
func ComposePutGet(putdelta *datalog.Program, getRules []*datalog.Rule) (*datalog.Program, error) {
	out := &datalog.Program{Sources: putdelta.Sources, View: putdelta.View}
	used := make(map[string]bool)
	for _, r := range putdelta.Rules {
		if r.IsConstraint() {
			continue // constraints restrict admissible updates; they are checked separately
		}
		out.Rules = append(out.Rules, r.Clone())
		used[r.Head.Pred.Name] = true
	}

	// Updated-source rules.
	for _, s := range putdelta.Sources {
		if used["new_"+s.Name] {
			return nil, fmt.Errorf("core: predicate name new_%s collides with a program predicate", s.Name)
		}
		args := make([]datalog.Term, s.Arity())
		for i := range args {
			args[i] = datalog.V(fmt.Sprintf("X%d", i+1))
		}
		head := datalog.NewAtom(NewSourceSym(s.Name), args...)
		out.Rules = append(out.Rules,
			datalog.NewRule(head.Clone(),
				datalog.Pos(datalog.NewAtom(datalog.Pred(s.Name), args...)),
				datalog.Negated(datalog.NewAtom(datalog.Del(s.Name), args...))),
			datalog.NewRule(head.Clone(),
				datalog.Pos(datalog.NewAtom(datalog.Ins(s.Name), args...))),
		)
	}

	// Get rules over the updated sources: rename the view head and every
	// source or auxiliary predicate into the new_ namespace; builtin
	// literals and constants pass through.
	renames := make(map[string]string)
	renames[putdelta.View.Name] = NewViewSym(putdelta.View.Name).Name
	for _, s := range putdelta.Sources {
		renames[s.Name] = NewSourceSym(s.Name).Name
	}
	getIDB := make(map[string]bool)
	for _, r := range getRules {
		if r.IsConstraint() {
			return nil, fmt.Errorf("core: get program must not contain constraints")
		}
		getIDB[r.Head.Pred.Name] = true
	}
	for name := range getIDB {
		if _, ok := renames[name]; !ok {
			renames[name] = "new_" + name
		}
	}
	for name, renamed := range renames {
		_ = name
		if used[renamed] {
			return nil, fmt.Errorf("core: predicate name %s collides with a program predicate", renamed)
		}
	}
	renameAtom := func(a *datalog.Atom) *datalog.Atom {
		c := a.Clone()
		if n, ok := renames[c.Pred.Name]; ok {
			c.Pred = datalog.PredSym{Name: n, Delta: c.Pred.Delta}
		}
		return c
	}
	for _, r := range getRules {
		if r.Head.Pred.IsDelta() {
			return nil, fmt.Errorf("core: get rule %q must not define a delta relation", r)
		}
		nr := &datalog.Rule{Head: renameAtom(r.Head)}
		for _, l := range r.Body {
			nl := l.Clone()
			if nl.Atom != nil {
				nl.Atom = renameAtom(nl.Atom)
			}
			nr.Body = append(nr.Body, nl)
		}
		out.Rules = append(out.Rules, nr)
	}
	return out, nil
}
