package core

import (
	"strings"
	"testing"
)

func TestCheckLawsAcceptsValidStrategies(t *testing.T) {
	cases := []struct {
		name, src string
		get       []string
	}{
		{"union", unionSrc, []string{"v(X) :- r1(X).", "v(X) :- r2(X)."}},
		{"selection", selectionSrc, []string{"v(X,Y) :- r(X,Y), Y > 2."}},
		{"difference", `
source ed(e:int, d:int).
source eed(e:int, d:int).
view ced(e:int, d:int).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`, []string{"ced(E,D) :- ed(E,D), not eed(E,D)."}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pb := mustPutback(t, c.src)
			get := mustRules(t, c.get...)
			if err := CheckLaws(pb, get, LawsConfig{Trials: 300}); err != nil {
				t.Fatalf("valid strategy rejected: %v", err)
			}
		})
	}
}

func TestCheckLawsCatchesGetPutViolation(t *testing.T) {
	// Deletion rule fires even on view members: put(S, get(S)) ≠ S.
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
-r(X) :- r(X), v(X).
+r(X) :- v(X), not r(X).
`)
	get := mustRules(t, "v(X) :- r(X).")
	err := CheckLaws(pb, get, LawsConfig{Trials: 300})
	if err == nil {
		t.Fatal("GetPut violation not caught")
	}
	lv, ok := err.(*LawViolation)
	if !ok {
		t.Fatalf("want LawViolation, got %T: %v", err, err)
	}
	// Either law may trip first depending on the instance order; the
	// violation must carry a witness instance.
	if lv.Instance == nil {
		t.Error("violation should carry the witness instance")
	}
	if !strings.Contains(lv.Error(), "violated") {
		t.Errorf("error text: %v", lv)
	}
}

func TestCheckLawsCatchesPutGetViolation(t *testing.T) {
	// Insertions are silently dropped for odd values: get(put(S,V')) ≠ V'.
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
+r(X) :- v(X), X > 1, not r(X).
-r(X) :- r(X), not v(X).
`)
	get := mustRules(t, "v(X) :- r(X).")
	err := CheckLaws(pb, get, LawsConfig{Trials: 300})
	lv, ok := err.(*LawViolation)
	if !ok {
		t.Fatalf("PutGet violation not caught: %v", err)
	}
	if lv.Law != "PutGet" && lv.Law != "GetPut" {
		t.Errorf("law = %q", lv.Law)
	}
}

func TestCheckLawsWrongGetRejected(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	wrong := mustRules(t, "v(X) :- r1(X), r2(X).") // intersection, not union
	if err := CheckLaws(pb, wrong, LawsConfig{Trials: 300}); err == nil {
		t.Fatal("wrong get should violate a law")
	}
}

func TestCheckLawsBadGetProgram(t *testing.T) {
	pb := mustPutback(t, unionSrc)
	bad := mustRules(t, "v(X) :- w(Y).") // unsafe
	if err := CheckLaws(pb, bad, LawsConfig{}); err == nil {
		t.Fatal("uncompilable get must error")
	}
}

func TestCheckLawsRespectsConstraints(t *testing.T) {
	// The residents1962-style selection is lawful only because
	// out-of-range updates are inadmissible; CheckLaws must respect Σ.
	pb := mustPutback(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), not X > 2.
+r(X) :- v(X), not r(X).
-r(X) :- r(X), X > 2, not v(X).
`)
	get := mustRules(t, "v(X) :- r(X), X > 2.")
	if err := CheckLaws(pb, get, LawsConfig{Trials: 400}); err != nil {
		t.Fatalf("constrained strategy should satisfy the laws: %v", err)
	}
}
