package core

import (
	"math/rand"
	"strings"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// selectionSrc is Example 5.2 of the paper: a selection view with an
// intermediate relation m.
const selectionSrc = `
source r(a:int, b:int).
view v(a:int, b:int).
_|_ :- v(X,Y), not Y > 2.
+r(X,Y) :- v(X,Y), not r(X,Y).
m(X,Y) :- r(X,Y), Y > 2.
-r(X,Y) :- m(X,Y), not v(X,Y).
`

func TestIncrementalizeLVGNExample52(t *testing.T) {
	prog := mustProg(t, selectionSrc)
	inc, err := IncrementalizeLVGN(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Per the paper, ∂put is:
	//   m(X,Y) :- r(X,Y), Y > 2.
	//   +r(X,Y) :- +v(X,Y), not r(X,Y).
	//   -r(X,Y) :- m(X,Y), -v(X,Y).
	text := inc.String()
	for _, want := range []string{
		"+r(X, Y) :- +v(X, Y), not r(X, Y).",
		"-r(X, Y) :- m(X, Y), -v(X, Y).",
		"m(X, Y) :- r(X, Y), Y > 2.",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("∂put missing rule %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "_|_") {
		t.Error("constraints should be dropped from ∂put")
	}
}

func TestIncrementalizeLVGNRequiresLinearView(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int, c:int).
view v(a:int, b:int).
+r(X,Y,Z) :- v(X,Y), v(Y,Z), not r(X,Y,Z).
`)
	if _, err := IncrementalizeLVGN(prog); err == nil {
		t.Fatal("self-join on the view should be rejected")
	}
}

func TestUnfoldInlinesIntermediate(t *testing.T) {
	prog := mustProg(t, selectionSrc)
	inc, err := Incrementalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	// After unfolding, no delta rule references m, and m's definition is
	// pruned because nothing else uses it.
	for _, r := range inc.Rules {
		if r.IsConstraint() {
			continue
		}
		if r.Head.Pred == datalog.Pred("m") {
			t.Errorf("m should have been pruned:\n%s", inc)
		}
		for _, l := range r.Body {
			if l.Atom != nil && l.Atom.Pred == datalog.Pred("m") {
				t.Errorf("m still referenced in %q", r)
			}
		}
	}
}

func TestUnfoldKeepsNegatedAux(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
source s(a:int).
view v(a:int).
both(X) :- r(X), s(X).
+r(X) :- v(X), not both(X).
`)
	inc := Unfold(prog)
	// both is used under negation: it must survive with its definition.
	found := false
	for _, r := range inc.Rules {
		if !r.IsConstraint() && r.Head.Pred == datalog.Pred("both") {
			found = true
		}
	}
	if !found {
		t.Fatalf("negated aux must be kept:\n%s", inc)
	}
}

func TestUnfoldMultiRuleAux(t *testing.T) {
	// An aux predicate with two rules: unfolding multiplies the delta rule.
	prog := mustProg(t, `
source r1(a:int).
source r2(a:int).
view v(a:int).
u(X) :- r1(X).
u(X) :- r2(X).
-r1(X) :- u(X), not v(X).
`)
	inc := Unfold(prog)
	deltaRules := inc.RulesFor(datalog.Del("r1"))
	if len(deltaRules) != 2 {
		t.Fatalf("want 2 unfolded delta rules, got %d:\n%s", len(deltaRules), inc)
	}
}

func TestUnfoldHeadConstantsAndRepeats(t *testing.T) {
	// Aux with constant and repeated head variables.
	prog := mustProg(t, `
source r(a:int, b:int).
view v(a:int).
tag(X,1) :- r(X,X).
-r(X,Y) :- tag(X,Y), not v(X).
`)
	inc := Unfold(prog)
	ev, err := eval.New(inc)
	if err != nil {
		t.Fatalf("%v\n%s", err, inc)
	}
	evOrig, err := eval.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 80; trial++ {
		db1, db2 := eval.NewDatabase(), eval.NewDatabase()
		r := value.NewRelation(2)
		for i := 0; i < rng.Intn(5); i++ {
			r.Add(value.Tuple{value.Int(int64(rng.Intn(3))), value.Int(int64(rng.Intn(3)))})
		}
		vRel := value.NewRelation(1)
		for i := 0; i < rng.Intn(3); i++ {
			vRel.Add(value.Tuple{value.Int(int64(rng.Intn(3)))})
		}
		db1.Set(datalog.Pred("r"), r.Clone())
		db1.Set(datalog.Pred("v"), vRel.Clone())
		db2.Set(datalog.Pred("r"), r.Clone())
		db2.Set(datalog.Pred("v"), vRel.Clone())
		if err := ev.Eval(db1); err != nil {
			t.Fatal(err)
		}
		if err := evOrig.Eval(db2); err != nil {
			t.Fatal(err)
		}
		got := db1.RelOrEmpty(datalog.Del("r"), 2)
		want := db2.RelOrEmpty(datalog.Del("r"), 2)
		if !got.Equal(want) {
			t.Fatalf("unfolded program disagrees: got %v want %v\nr=%v v=%v\n%s",
				got, want, r, vRel, inc)
		}
	}
}

// The central equivalence of Section 5 (Proposition 5.1 / Lemma 5.2):
// applying the full putback to the updated view equals applying ∂put to
// the view delta, for random sources and random admissible deltas.
func incrementalEquivalenceTrial(t *testing.T, src string, getRules []string, arity int, domain int, seed int64) {
	t.Helper()
	prog := mustProg(t, src)
	pb, err := NewPutback(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Validate(pb, nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Valid {
		t.Fatalf("strategy should be valid: %v", res.Failure)
	}
	getEv, err := eval.New(GetProgram(prog, res.Get))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := Incrementalize(prog)
	if err != nil {
		t.Fatal(err)
	}
	incEv, err := eval.New(inc)
	if err != nil {
		t.Fatalf("%v\n%s", err, inc)
	}

	viewSym := datalog.Pred(prog.View.Name)
	constraintOK := func(db *eval.Database) bool {
		if err := pb.eval.Eval(db); err != nil {
			return false
		}
		violated, err := pb.eval.Violations(db)
		return err == nil && len(violated) == 0
	}

	rng := rand.New(rand.NewSource(seed))
	randTuple := func(n int) value.Tuple {
		tup := make(value.Tuple, n)
		for i := range tup {
			tup[i] = value.Int(int64(rng.Intn(domain)))
		}
		return tup
	}
	trials := 0
	for attempt := 0; attempt < 400 && trials < 100; attempt++ {
		// Random source database.
		srcRels := make(map[string]*value.Relation)
		for _, s := range prog.Sources {
			r := value.NewRelation(s.Arity())
			for i := 0; i < rng.Intn(6); i++ {
				r.Add(randTuple(s.Arity()))
			}
			srcRels[s.Name] = r
		}
		base := eval.NewDatabase()
		for name, r := range srcRels {
			base.Set(datalog.Pred(name), r.Clone())
		}
		view, err := getEv.EvalQuery(base, viewSym)
		if err != nil {
			t.Fatal(err)
		}
		view = view.Clone()

		// Random admissible delta: insertions not in V, deletions from V.
		insV := value.NewRelation(arity)
		delV := value.NewRelation(arity)
		for i := 0; i < rng.Intn(3); i++ {
			tup := randTuple(arity)
			if !view.Contains(tup) {
				insV.Add(tup)
			}
		}
		for _, tup := range view.Tuples() {
			if rng.Intn(4) == 0 {
				delV.Add(tup)
			}
		}
		newView := view.Clone()
		newView.SubtractAll(delV)
		newView.UnionWith(insV)

		// Full path: putdelta over (S, V').
		full := eval.NewDatabase()
		for name, r := range srcRels {
			full.Set(datalog.Pred(name), r.Clone())
		}
		full.Set(viewSym, newView.Clone())
		if !constraintOK(full) {
			continue // inadmissible update; both paths would reject it
		}
		trials++
		if err := pb.Put(full); err != nil {
			t.Fatal(err)
		}

		// Incremental path: ∂put over (S, +v, -v).
		incDB := eval.NewDatabase()
		for name, r := range srcRels {
			incDB.Set(datalog.Pred(name), r.Clone())
		}
		incDB.Set(datalog.Ins(prog.View.Name), insV.Clone())
		incDB.Set(datalog.Del(prog.View.Name), delV.Clone())
		incDB.Set(viewSym, newView.Clone()) // for aux/constraint rules if any
		if err := incEv.Eval(incDB); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eval.ApplyDeltas(incDB, prog.Sources); err != nil {
			t.Fatal(err)
		}

		for _, s := range prog.Sources {
			got := incDB.RelOrEmpty(datalog.Pred(s.Name), s.Arity())
			want := full.RelOrEmpty(datalog.Pred(s.Name), s.Arity())
			if !got.Equal(want) {
				t.Fatalf("incremental path diverges on %s:\nfull=%v\ninc=%v\nΔ+V=%v Δ-V=%v V=%v\n∂put:\n%s",
					s.Name, want, got, insV, delV, view, inc)
			}
		}
	}
	if trials < 20 {
		t.Fatalf("too few admissible trials: %d", trials)
	}
}

func TestIncrementalEquivalenceSelection(t *testing.T) {
	incrementalEquivalenceTrial(t, selectionSrc, nil, 2, 5, 7)
}

func TestIncrementalEquivalenceUnion(t *testing.T) {
	incrementalEquivalenceTrial(t, unionSrc, nil, 1, 6, 11)
}

func TestIncrementalEquivalenceDifference(t *testing.T) {
	incrementalEquivalenceTrial(t, `
source ed(e:int, d:int).
source eed(e:int, d:int).
view ced(e:int, d:int).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`, nil, 2, 4, 13)
}

func TestIncrementalEquivalenceProjection(t *testing.T) {
	incrementalEquivalenceTrial(t, `
source r(a:int, b:int).
view v(a:int, b:int).
+r(X,Y) :- v(X,Y), not r(X,Y).
-r(X,Y) :- r(X,Y), not v(X,Y).
`, nil, 2, 4, 19)
}
