package core

import (
	"fmt"

	"birds/internal/analysis"
	"birds/internal/datalog"
)

// IncrementalizeLVGN derives the incremental program ∂put from a valid
// LVGN-Datalog putback program by Lemma 5.2: in every delta rule, the
// positive view literal v(t) is replaced by +v(t) and the negated view
// literal ¬v(t) by the positive delta literal -v(t). Auxiliary rules are
// kept unchanged; integrity constraints are dropped (the runtime checks
// them against the view delta separately).
//
// The resulting program reads the source relations, the view delta
// relations +v / -v, and — only through unchanged auxiliary rules — never
// the full view, so its cost is proportional to the view delta.
func IncrementalizeLVGN(prog *datalog.Program) (*datalog.Program, error) {
	if err := analysis.CheckLinearView(prog); err != nil {
		return nil, fmt.Errorf("core: Lemma 5.2 requires the linear-view restriction: %w", err)
	}
	view := prog.View.Name
	out := &datalog.Program{Sources: prog.Sources, View: prog.View}
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			continue
		}
		nr := r.Clone()
		if nr.Head.Pred.IsDelta() {
			for i := range nr.Body {
				l := &nr.Body[i]
				if l.Atom == nil || l.Atom.Pred != datalog.Pred(view) {
					continue
				}
				if l.Neg {
					l.Neg = false
					l.Atom.Pred = datalog.Del(view)
				} else {
					l.Atom.Pred = datalog.Ins(view)
				}
			}
		}
		out.Rules = append(out.Rules, nr)
	}
	return out, nil
}

// Unfold inlines the positive non-delta IDB atoms of every delta rule,
// replacing each such atom by the bodies of its defining rules (standard
// resolution-based unfolding for nonrecursive Datalog). This lets the
// evaluator drive ∂put from the small delta relations instead of first
// materializing auxiliary relations over the full base tables — e.g. in
// Example 5.2 the intermediate m(X,Y) :- r(X,Y), Y > 2 is inlined into
// -r(X,Y) :- r(X,Y), Y > 2, -v(X,Y), which evaluates in O(|ΔV|).
//
// Negated IDB atoms are left in place (their defining rules are kept), and
// rules that are still referenced survive; everything unreferenced is
// pruned.
func Unfold(prog *datalog.Program) *datalog.Program {
	rulesFor := make(map[datalog.PredSym][]*datalog.Rule)
	for _, r := range prog.Rules {
		if !r.IsConstraint() {
			rulesFor[r.Head.Pred] = append(rulesFor[r.Head.Pred], r)
		}
	}
	fresh := 0
	freshVar := func() string {
		fresh++
		return fmt.Sprintf("U_%d", fresh)
	}

	// inlineOnce replaces the first positive inlinable IDB atom of the rule
	// by each of its definitions; it returns nil if nothing was inlined.
	var inlineOnce func(r *datalog.Rule) []*datalog.Rule
	inlineOnce = func(r *datalog.Rule) []*datalog.Rule {
		for i, l := range r.Body {
			if l.Neg || l.Atom == nil || l.Atom.Pred.IsDelta() {
				continue
			}
			defs := rulesFor[l.Atom.Pred]
			if len(defs) == 0 {
				continue
			}
			var out []*datalog.Rule
			for _, def := range defs {
				if inlined := resolve(r, i, def, freshVar); inlined != nil {
					out = append(out, inlined)
				}
			}
			return out
		}
		return nil
	}

	var result []*datalog.Rule
	work := append([]*datalog.Rule{}, prog.Rules...)
	for len(work) > 0 {
		r := work[0]
		work = work[1:]
		if r.IsConstraint() || !r.Head.Pred.IsDelta() {
			continue // handled below: only delta rules are unfolded
		}
		if expanded := inlineOnce(r); expanded != nil {
			work = append(expanded, work...)
			continue
		}
		result = append(result, r)
	}

	// Negated auxiliary atoms whose definition is a single rule over a
	// single positive atom rewrite to a direct negated atom: with
	// wo(E,O) :- works(E,O,_), the literal ¬wo(E,O) becomes ¬works(E,O,_).
	// Without this, an incrementalized program would re-materialize wo
	// over the full base table on every update.
	for _, r := range result {
		for i := range r.Body {
			l := &r.Body[i]
			if !l.Neg || l.Atom == nil || l.Atom.Pred.IsDelta() {
				continue
			}
			defs := rulesFor[l.Atom.Pred]
			if len(defs) != 1 {
				continue
			}
			if sub := negInline(l.Atom, defs[0]); sub != nil {
				l.Atom = sub
			}
		}
	}

	// Keep auxiliary rules still referenced (transitively) by negated atoms.
	needed := make(map[datalog.PredSym]bool)
	var markBody func(rules []*datalog.Rule)
	markBody = func(rules []*datalog.Rule) {
		for _, r := range rules {
			for _, l := range r.Body {
				if l.Atom == nil {
					continue
				}
				p := l.Atom.Pred
				if len(rulesFor[p]) > 0 && !needed[p] {
					needed[p] = true
					markBody(rulesFor[p])
				}
			}
		}
	}
	markBody(result)

	out := &datalog.Program{Sources: prog.Sources, View: prog.View}
	for _, r := range prog.Rules {
		if r.IsConstraint() {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		if !r.Head.Pred.IsDelta() && needed[r.Head.Pred] {
			out.Rules = append(out.Rules, r.Clone())
		}
	}
	out.Rules = append(out.Rules, result...)
	return out
}

// negInline rewrites a negated call ¬q(t...) into a negated base atom when
// q is defined by exactly one rule whose body is a single positive atom,
// the head arguments are distinct variables, and every non-head body
// variable occurs just once (so it can become an anonymous variable).
// It returns nil when the definition does not have that shape.
func negInline(call *datalog.Atom, def *datalog.Rule) *datalog.Atom {
	if len(def.Body) != 1 {
		return nil
	}
	lit := def.Body[0]
	if lit.Neg || lit.Atom == nil {
		return nil
	}
	headPos := make(map[string]int)
	for i, t := range def.Head.Args {
		if !t.IsVar() {
			return nil
		}
		if _, dup := headPos[t.Var]; dup {
			return nil
		}
		headPos[t.Var] = i
	}
	seen := make(map[string]int)
	for _, t := range lit.Atom.Args {
		if t.IsVar() {
			seen[t.Var]++
		}
	}
	args := make([]datalog.Term, len(lit.Atom.Args))
	for i, t := range lit.Atom.Args {
		switch {
		case t.IsConst():
			args[i] = t
		case t.IsAnon():
			args[i] = datalog.Anon()
		default:
			if pos, isHead := headPos[t.Var]; isHead {
				args[i] = call.Args[pos]
			} else {
				if seen[t.Var] > 1 {
					return nil // a repeated existential is a join; keep the aux
				}
				args[i] = datalog.Anon()
			}
		}
	}
	return datalog.NewAtom(lit.Atom.Pred, args...)
}

// resolve inlines definition def into rule r at body position i, unifying
// the call arguments with the definition's head. It returns nil when the
// unification fails on conflicting constants (the combination derives
// nothing).
func resolve(r *datalog.Rule, i int, def *datalog.Rule, freshVar func() string) *datalog.Rule {
	call := r.Body[i].Atom

	// Rename the definition's variables apart from the caller's.
	rename := make(map[string]datalog.Term)
	renameTerm := func(t datalog.Term) datalog.Term {
		switch t.Kind {
		case datalog.TermVar:
			if nt, ok := rename[t.Var]; ok {
				return nt
			}
			nt := datalog.V(freshVar())
			rename[t.Var] = nt
			return nt
		case datalog.TermAnon:
			return datalog.V(freshVar())
		default:
			return t
		}
	}
	headArgs := make([]datalog.Term, len(def.Head.Args))
	for j, t := range def.Head.Args {
		headArgs[j] = renameTerm(t)
	}
	body := make([]datalog.Literal, 0, len(def.Body))
	for _, l := range def.Body {
		nl := l.Clone()
		if nl.Atom != nil {
			for j, t := range nl.Atom.Args {
				nl.Atom.Args[j] = renameTerm(t)
			}
		} else {
			nl.Builtin.L = renameTerm(nl.Builtin.L)
			nl.Builtin.R = renameTerm(nl.Builtin.R)
		}
		body = append(body, nl)
	}

	// Unify call args with renamed head args. The renamed head args are
	// fresh variables or constants; bind fresh variables to call terms.
	subst := make(map[string]datalog.Term)
	var extraEqs []datalog.Literal
	for j, ht := range headArgs {
		ct := call.Args[j]
		switch {
		case ht.IsVar():
			if prev, ok := subst[ht.Var]; ok {
				// Repeated head variable: equate the two call terms.
				if prev.IsConst() && ct.IsConst() {
					if !prev.Const.Equal(ct.Const) {
						return nil
					}
				} else if ct.IsAnon() || prev.IsAnon() {
					// Anonymous matches anything; no constraint.
				} else if !prev.Equal(ct) {
					extraEqs = append(extraEqs, datalog.Cmp(datalog.OpEq, prev, ct))
				}
			} else if ct.IsAnon() {
				subst[ht.Var] = datalog.V(freshVar())
			} else {
				subst[ht.Var] = ct
			}
		case ht.IsConst():
			switch {
			case ct.IsConst():
				if !ht.Const.Equal(ct.Const) {
					return nil
				}
			case ct.IsAnon():
				// Matches trivially.
			default: // variable in the call: bind it via equality
				extraEqs = append(extraEqs, datalog.Cmp(datalog.OpEq, ct, ht))
			}
		}
	}
	applySubst := func(t datalog.Term) datalog.Term {
		if t.IsVar() {
			if nt, ok := subst[t.Var]; ok {
				return nt
			}
		}
		return t
	}
	for bi := range body {
		l := &body[bi]
		if l.Atom != nil {
			for j, t := range l.Atom.Args {
				l.Atom.Args[j] = applySubst(t)
			}
		} else {
			l.Builtin.L = applySubst(l.Builtin.L)
			l.Builtin.R = applySubst(l.Builtin.R)
		}
	}

	out := &datalog.Rule{Head: r.Head.Clone()}
	for j, l := range r.Body {
		if j == i {
			out.Body = append(out.Body, body...)
			out.Body = append(out.Body, extraEqs...)
			continue
		}
		out.Body = append(out.Body, l.Clone())
	}
	return out
}

// Incrementalize derives the optimized incremental program for a validated
// putback program: the Lemma 5.2 substitution, delta-rule unfolding, and a
// final simplification pass (duplicate and ground-literal elimination,
// constant propagation). The result reads sources, +v and -v.
func Incrementalize(prog *datalog.Program) (*datalog.Program, error) {
	inc, err := IncrementalizeLVGN(prog)
	if err != nil {
		return nil, err
	}
	return datalog.Simplify(Unfold(inc)), nil
}
