package core

import (
	"fmt"
	"sort"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// This file implements the general incrementalization algorithm of
// Section 5 / Appendix C of the paper, which — unlike the Lemma 5.2
// shortcut — applies to any NR-Datalog¬ putback program, including the
// join views outside LVGN-Datalog.
//
// The pipeline follows the paper exactly:
//
//  1. binarize the program (Lemma C.1) so that every IDB relation is
//     defined from at most two other relations;
//  2. apply the four rewrite rules of Figure 7 (join/selection, negation,
//     projection, union) to derive, for every intermediate relation, rules
//     computing its insertion set (+l), deletion set (-l) and new version
//     (lν) from the view delta;
//  3. for the delta relations ±ri derive only the insertion sets +(±ri)
//     (Step 3), and
//  4. substitute ±ri for +(±ri) (Step 4, justified by Proposition 5.1).
//
// Built-in predicates ride along as unchanged relations, as the paper
// notes. Synthesized predicate names start with "__", which the surface
// syntax cannot produce, so they can never collide with user predicates.

// binKind discriminates binarized step shapes, mirroring Figure 7.
type binKind uint8

const (
	binJoin   binKind = iota // h :- r1, r2 [, builtins]   (join & selection)
	binSingle                // h :- r1 [, builtins]       (unary selection)
	binNeg                   // h :- r1, not r2
	binProj                  // h :- r1                    (projection/decoration)
	binUnion                 // h :- r1.  h :- r2.
)

// binStep is one binarized definition.
type binStep struct {
	kind     binKind
	head     *datalog.Atom
	a1, a2   *datalog.Atom // a2 used by join, neg (the negated atom), union
	builtins []datalog.Literal
	final    bool // head is a delta relation ±ri of the original program
}

// defRules returns the step's definitional rules (used to materialize the
// intermediate relations).
func (s *binStep) defRules() []*datalog.Rule {
	switch s.kind {
	case binJoin:
		body := []datalog.Literal{datalog.Pos(s.a1.Clone()), datalog.Pos(s.a2.Clone())}
		body = append(body, cloneLits(s.builtins)...)
		return []*datalog.Rule{datalog.NewRule(s.head.Clone(), body...)}
	case binSingle:
		body := []datalog.Literal{datalog.Pos(s.a1.Clone())}
		body = append(body, cloneLits(s.builtins)...)
		return []*datalog.Rule{datalog.NewRule(s.head.Clone(), body...)}
	case binNeg:
		return []*datalog.Rule{datalog.NewRule(s.head.Clone(),
			datalog.Pos(s.a1.Clone()), datalog.Negated(s.a2.Clone()))}
	case binProj:
		return []*datalog.Rule{datalog.NewRule(s.head.Clone(), datalog.Pos(s.a1.Clone()))}
	default: // binUnion
		return []*datalog.Rule{
			datalog.NewRule(s.head.Clone(), datalog.Pos(s.a1.Clone())),
			datalog.NewRule(s.head.Clone(), datalog.Pos(s.a2.Clone())),
		}
	}
}

func cloneLits(ls []datalog.Literal) []datalog.Literal {
	out := make([]datalog.Literal, len(ls))
	for i, l := range ls {
		out[i] = l.Clone()
	}
	return out
}

// symKey mangles a (possibly delta-marked) predicate into an identifier.
func symKey(p datalog.PredSym) string {
	switch p.Delta {
	case datalog.Insert:
		return "i_" + p.Name
	case datalog.Delete:
		return "d_" + p.Name
	default:
		return p.Name
	}
}

// Binarizer rewrites a program into binary steps (Lemma C.1).
type binarizer struct {
	prog  *datalog.Program
	steps []*binStep
	nAux  int
	fresh int
}

func (b *binarizer) auxSym() datalog.PredSym {
	b.nAux++
	return datalog.Pred(fmt.Sprintf("__b%d", b.nAux))
}

func (b *binarizer) freshVar() string {
	b.fresh++
	return fmt.Sprintf("BV%d", b.fresh)
}

// atomOf builds an atom with the given variables in sorted order.
func atomOf(p datalog.PredSym, vars []string) *datalog.Atom {
	args := make([]datalog.Term, len(vars))
	for i, v := range vars {
		args[i] = datalog.V(v)
	}
	return datalog.NewAtom(p, args...)
}

func sortedVars(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// binarizeRule decomposes one rule into a chain of steps whose last step
// defines head (the rule's head pred when single-rule, otherwise an aux).
func (b *binarizer) binarizeRule(r *datalog.Rule, head *datalog.Atom, final bool) error {
	// Normalize: positive-atom anonymous variables become fresh variables.
	var positives []*datalog.Atom
	var negAtoms []*datalog.Atom
	var builtins []datalog.Literal
	for _, l := range r.Body {
		switch {
		case l.Builtin != nil:
			nl := l.Clone()
			if nl.Neg {
				nl.Neg = false
				nl.Builtin.Op = nl.Builtin.Op.Negate()
			}
			builtins = append(builtins, nl)
		case l.Neg:
			negAtoms = append(negAtoms, l.Atom.Clone())
		default:
			a := l.Atom.Clone()
			for i, t := range a.Args {
				if t.IsAnon() {
					a.Args[i] = datalog.V(b.freshVar())
				}
			}
			positives = append(positives, a)
		}
	}
	if len(positives) == 0 {
		return fmt.Errorf("core: cannot binarize rule %q: no positive atom", r)
	}

	// Track the variables bound so far and the builtins not yet attached.
	bound := make(map[string]bool)
	addVars := func(a *datalog.Atom) {
		for _, v := range a.Vars() {
			bound[v] = true
		}
	}
	// Equalities with constants bind variables for builtin attachment.
	constEq := make(map[string]bool)
	for _, bl := range builtins {
		if bl.Builtin.Op == datalog.OpEq {
			if bl.Builtin.L.IsVar() && bl.Builtin.R.IsConst() {
				constEq[bl.Builtin.L.Var] = true
			}
			if bl.Builtin.R.IsVar() && bl.Builtin.L.IsConst() {
				constEq[bl.Builtin.R.Var] = true
			}
		}
	}
	pending := append([]datalog.Literal{}, builtins...)
	takeReady := func() []datalog.Literal {
		var ready, rest []datalog.Literal
		for _, bl := range pending {
			ok := true
			for _, v := range bl.Vars() {
				if !bound[v] && !constEq[v] {
					ok = false
					break
				}
			}
			// A variable bound only through a constant equality is
			// introduced by the equality itself; treat it as bound once
			// the equality is attached.
			if ok {
				for _, v := range bl.Vars() {
					bound[v] = true
				}
				ready = append(ready, bl)
			} else {
				rest = append(rest, bl)
			}
		}
		pending = rest
		return ready
	}

	// Join chain over the positive atoms.
	cur := positives[0]
	addVars(cur)
	curBuiltins := takeReady()
	if len(positives) == 1 && len(curBuiltins) > 0 {
		// Unary selection step.
		h := atomOf(b.auxSym(), sortedVars(bound))
		b.steps = append(b.steps, &binStep{kind: binSingle, head: h, a1: cur, builtins: curBuiltins})
		cur = h
		curBuiltins = nil
	}
	// With several positive atoms, builtins over the first atom alone fold
	// into the first join step.
	for i := 1; i < len(positives); i++ {
		next := positives[i]
		addVars(next)
		bs := append(curBuiltins, takeReady()...)
		curBuiltins = nil
		h := atomOf(b.auxSym(), sortedVars(bound))
		b.steps = append(b.steps, &binStep{kind: binJoin, head: h, a1: cur, a2: next, builtins: bs})
		cur = h
	}
	if rest := takeReady(); len(rest) > 0 || len(curBuiltins) > 0 {
		bs := append(curBuiltins, rest...)
		h := atomOf(b.auxSym(), sortedVars(bound))
		b.steps = append(b.steps, &binStep{kind: binSingle, head: h, a1: cur, builtins: bs})
		cur = h
	}
	if len(pending) > 0 {
		return fmt.Errorf("core: cannot binarize rule %q: builtin %s has unbound variables", r, pending[0])
	}

	// Negation chain.
	for _, na := range negAtoms {
		h := atomOf(b.auxSym(), cur.Vars())
		b.steps = append(b.steps, &binStep{kind: binNeg, head: h, a1: cur, a2: na})
		cur = h
	}

	// Final projection/decoration onto the rule head.
	b.steps = append(b.steps, &binStep{kind: binProj, head: head, a1: cur, final: final})
	return nil
}

// binarize rewrites every IDB predicate of the program.
func (b *binarizer) binarize() error {
	order, err := analysis.Stratify(b.prog)
	if err != nil {
		return err
	}
	for _, sym := range order {
		rules := b.prog.RulesFor(sym)
		final := sym.IsDelta()
		if len(rules) == 1 {
			if err := b.binarizeRule(rules[0], rules[0].Head.Clone(), final); err != nil {
				return err
			}
			continue
		}
		// Multiple rules: binarize each into an aux top (keeping the
		// rule's own head terms, so constants and repeats decorate the
		// aux relation), then fold a union tree over canonical variables.
		var tops []*datalog.Atom
		arity := rules[0].Head.Arity()
		unionVars := make([]string, arity)
		for i := range unionVars {
			unionVars[i] = fmt.Sprintf("UV%d", i+1)
		}
		for _, r := range rules {
			aux := b.auxSym()
			defHead := datalog.NewAtom(aux, append([]datalog.Term{}, r.Head.Args...)...)
			if err := b.binarizeRule(r, defHead, false); err != nil {
				return err
			}
			tops = append(tops, atomOf(aux, unionVars))
		}
		cur := tops[0]
		for i := 1; i < len(tops); i++ {
			var head *datalog.Atom
			last := i == len(tops)-1
			if last {
				vars := make([]datalog.Term, arity)
				for j := range vars {
					vars[j] = datalog.V(fmt.Sprintf("UV%d", j+1))
				}
				head = datalog.NewAtom(sym, vars...)
			} else {
				head = atomOf(b.auxSym(), cur.Vars())
			}
			b.steps = append(b.steps, &binStep{
				kind: binUnion, head: head, a1: cur, a2: tops[i], final: last && final,
			})
			cur = head
		}
	}
	return nil
}

// Binarize exposes Lemma C.1: it returns the binarized definitional program
// (equivalent to prog for every IDB relation, via "__b*" intermediates).
func Binarize(prog *datalog.Program) (*datalog.Program, error) {
	b := &binarizer{prog: prog}
	if err := b.binarize(); err != nil {
		return nil, err
	}
	out := &datalog.Program{Sources: prog.Sources, View: prog.View}
	for _, s := range b.steps {
		out.Rules = append(out.Rules, s.defRules()...)
	}
	return out, nil
}

// --- Figure 7 rewrite ------------------------------------------------------

// GeneralIncremental is the general incrementalization of a putback
// program: the Figure 7 delta-rule system over the binarized program,
// together with a driver that maintains the materialized intermediate
// relations across updates.
type GeneralIncremental struct {
	prog   *datalog.Program
	steps  []*binStep
	defsEv *eval.Evaluator // definitional program (materialization + counting IVM)
	// deltaProg is the derived Figure 7 delta/ν program. It is compiled
	// once as a well-formedness check and kept for inspection
	// (DeltaProgram); the runtime mechanism behind the rewrite is the
	// counting IVM of defsEv (see Init/Apply), so the delta program itself
	// is never evaluated.
	deltaProg *datalog.Program
	interSym  []datalog.PredSym
	arities   map[datalog.PredSym]int
}

// nuSym names the new-version relation of p; source relations are
// unchanged, so their ν is the relation itself.
func (g *GeneralIncremental) nuSym(p datalog.PredSym) datalog.PredSym {
	if g.isStatic(p) {
		return p
	}
	return datalog.Pred("__nu_" + symKey(p))
}

// dSym names the insertion/deletion delta of p; the view's deltas are the
// given +v / -v. Static relations have no deltas (nil second result).
func (g *GeneralIncremental) dSym(p datalog.PredSym, ins bool) (datalog.PredSym, bool) {
	if p == datalog.Pred(g.prog.View.Name) {
		if ins {
			return datalog.Ins(p.Name), true
		}
		return datalog.Del(p.Name), true
	}
	if g.isStatic(p) {
		return datalog.PredSym{}, false
	}
	if ins {
		return datalog.Ins("__d_" + symKey(p)), true
	}
	return datalog.Del("__d_" + symKey(p)), true
}

// isStatic reports whether p is an unchanging input (a source relation).
func (g *GeneralIncremental) isStatic(p datalog.PredSym) bool {
	if p.IsDelta() {
		return false
	}
	if p.Name == g.prog.View.Name {
		return false
	}
	return g.prog.Source(p.Name) != nil
}

// reAtom clones a with its predicate replaced.
func reAtom(a *datalog.Atom, p datalog.PredSym) *datalog.Atom {
	c := a.Clone()
	c.Pred = p
	return c
}

// NewGeneralIncremental binarizes the program and derives the Figure 7
// delta rules.
func NewGeneralIncremental(prog *datalog.Program) (*GeneralIncremental, error) {
	b := &binarizer{prog: prog}
	if err := b.binarize(); err != nil {
		return nil, err
	}
	g := &GeneralIncremental{prog: prog, steps: b.steps, arities: make(map[datalog.PredSym]int)}

	defs := &datalog.Program{Sources: prog.Sources, View: prog.View}
	for _, s := range b.steps {
		defs.Rules = append(defs.Rules, s.defRules()...)
		if !s.final {
			g.interSym = append(g.interSym, s.head.Pred)
			g.arities[s.head.Pred] = s.head.Arity()
		}
	}
	defsEv, err := eval.New(defs)
	if err != nil {
		return nil, fmt.Errorf("core: binarized program does not compile: %w", err)
	}
	g.defsEv = defsEv

	delta := &datalog.Program{Sources: prog.Sources, View: prog.View}
	// ν of the view: vν(X) :- v(X), not -v(X).  vν(X) :- +v(X).
	viewArgs := make([]datalog.Term, prog.View.Arity())
	for i := range viewArgs {
		viewArgs[i] = datalog.V(fmt.Sprintf("X%d", i+1))
	}
	vAtom := datalog.NewAtom(datalog.Pred(prog.View.Name), viewArgs...)
	nuV := reAtom(vAtom, g.nuSym(vAtom.Pred))
	delta.Rules = append(delta.Rules,
		datalog.NewRule(nuV.Clone(), datalog.Pos(vAtom.Clone()), datalog.Negated(reAtom(vAtom, datalog.Del(prog.View.Name)))),
		datalog.NewRule(nuV.Clone(), datalog.Pos(reAtom(vAtom, datalog.Ins(prog.View.Name)))),
	)
	for _, s := range b.steps {
		rs, err := g.figure7(s)
		if err != nil {
			return nil, err
		}
		delta.Rules = append(delta.Rules, rs...)
	}
	if _, err := eval.New(delta); err != nil {
		return nil, fmt.Errorf("core: derived delta program does not compile: %w\n%s", err, delta)
	}
	g.deltaProg = delta
	return g, nil
}

// DeltaProgram returns the derived Figure 7 program (for inspection).
func (g *GeneralIncremental) DeltaProgram() *datalog.Program { return g.deltaProg }

// DefinitionProgram returns the binarized definitional program.
func (g *GeneralIncremental) DefinitionProgram() *datalog.Program { return g.defsEv.Program() }

// figure7 emits the delta and ν rules of one step, per Figure 7 of the
// paper. For final steps (delta-relation heads) only the insertion rules
// are emitted, with the head renamed to ±ri itself (Steps 3-4 of §5); the
// old delta relation is empty at the steady state, so its ¬h guard in the
// projection template is dropped.
func (g *GeneralIncremental) figure7(s *binStep) ([]*datalog.Rule, error) {
	var out []*datalog.Rule
	add := func(head *datalog.Atom, body ...datalog.Literal) {
		out = append(out, datalog.NewRule(head, body...))
	}
	// Delta heads of this step.
	dpHead := func() *datalog.Atom {
		if s.final {
			return s.head.Clone() // +(±ri) substituted by ±ri
		}
		p, _ := g.dSym(s.head.Pred, true)
		return reAtom(s.head, p)
	}
	dmHead := func() *datalog.Atom {
		p, _ := g.dSym(s.head.Pred, false)
		return reAtom(s.head, p)
	}
	nuHead := func() *datalog.Atom { return reAtom(s.head, g.nuSym(s.head.Pred)) }

	// Literals over an input atom a: its old version, new version, and
	// deltas (nil when statically empty).
	old := func(a *datalog.Atom, neg bool) datalog.Literal {
		if neg {
			return datalog.Negated(a.Clone())
		}
		return datalog.Pos(a.Clone())
	}
	nu := func(a *datalog.Atom, neg bool) datalog.Literal {
		at := reAtom(a, g.nuSym(a.Pred))
		if neg {
			return datalog.Negated(at)
		}
		return datalog.Pos(at)
	}
	dp := func(a *datalog.Atom) *datalog.Literal {
		p, ok := g.dSym(a.Pred, true)
		if !ok {
			return nil
		}
		l := datalog.Pos(reAtom(a, p))
		return &l
	}
	dm := func(a *datalog.Atom) *datalog.Literal {
		p, ok := g.dSym(a.Pred, false)
		if !ok {
			return nil
		}
		l := datalog.Pos(reAtom(a, p))
		return &l
	}
	withBuiltins := func(ls ...datalog.Literal) []datalog.Literal {
		return append(ls, cloneLits(s.builtins)...)
	}

	switch s.kind {
	case binJoin:
		if !s.final {
			if d := dm(s.a1); d != nil {
				add(dmHead(), withBuiltins(*d, old(s.a2, false))...)
			}
			if d := dm(s.a2); d != nil {
				add(dmHead(), withBuiltins(old(s.a1, false), *d)...)
			}
		}
		if d := dp(s.a1); d != nil {
			add(dpHead(), withBuiltins(*d, nu(s.a2, false))...)
		}
		if d := dp(s.a2); d != nil {
			add(dpHead(), withBuiltins(nu(s.a1, false), *d)...)
		}
		add(nuHead(), withBuiltins(nu(s.a1, false), nu(s.a2, false))...)

	case binSingle:
		if !s.final {
			if d := dm(s.a1); d != nil {
				add(dmHead(), withBuiltins(*d)...)
			}
		}
		if d := dp(s.a1); d != nil {
			add(dpHead(), withBuiltins(*d)...)
		}
		add(nuHead(), withBuiltins(nu(s.a1, false))...)

	case binNeg:
		if !s.final {
			if d := dm(s.a1); d != nil {
				add(dmHead(), *d, old(s.a2, true))
			}
			if d := dp(s.a2); d != nil {
				add(dmHead(), old(s.a1, false), *d)
			}
		}
		if d := dp(s.a1); d != nil {
			add(dpHead(), *d, nu(s.a2, true))
		}
		if d := dm(s.a2); d != nil {
			// The ¬r2ν guard is needed beyond the paper's template when
			// the negated atom projects (anonymous variables): a deleted
			// match may leave other matches alive.
			add(dpHead(), nu(s.a1, false), *d, nu(s.a2, true))
		}
		add(nuHead(), nu(s.a1, false), nu(s.a2, true))

	case binProj:
		if d := dp(s.a1); d != nil {
			if s.final {
				add(dpHead(), *d)
			} else {
				add(dpHead(), *d, old(s.head, true))
			}
		}
		if !s.final {
			if d := dm(s.a1); d != nil {
				// -h(X) :- -r1(X,Y), not r1ν(X,_): anonymize the input
				// positions whose variables do not reach the head.
				headVars := make(map[string]bool)
				for _, v := range s.head.Vars() {
					headVars[v] = true
				}
				check := reAtom(s.a1, g.nuSym(s.a1.Pred))
				for i, t := range check.Args {
					if !t.IsVar() || !headVars[t.Var] {
						check.Args[i] = datalog.Anon()
					}
				}
				add(dmHead(), *d, datalog.Negated(check))
			}
		}
		add(nuHead(), datalog.Pos(reAtom(s.a1, g.nuSym(s.a1.Pred))))

	case binUnion:
		if !s.final {
			if d := dm(s.a1); d != nil {
				add(dmHead(), *d, nu(s.a2, true))
			}
			if d := dm(s.a2); d != nil {
				add(dmHead(), *d, nu(s.a1, true))
			}
		}
		if d := dp(s.a1); d != nil {
			add(dpHead(), *d)
		}
		if d := dp(s.a2); d != nil {
			add(dpHead(), *d)
		}
		add(nuHead(), nu(s.a1, false))
		add(nuHead(), nu(s.a2, false))
	}
	return out, nil
}

// Init materializes the intermediate step relations over db (which must
// hold the source relations and the current view), together with their
// per-tuple support counts: the runtime mechanism behind the Figure 7
// rewrite is the evaluator's counting IVM (eval.EvalDelta), which keeps
// every binarized intermediate — and the final ±ri delta relations —
// maintained under O(|Δ|) propagation instead of re-deriving the ν
// versions from scratch on every update.
func (g *GeneralIncremental) Init(db *eval.Database) error {
	g.defsEv.InvalidateIVM()
	_, err := g.defsEv.EvalDelta(db, nil)
	return err
}

// Apply performs one incremental update. The view delta is applied to the
// materialized view and propagated through the binarized rule DAG by
// support-count maintenance, which leaves the ±ri delta relations holding
// exactly putdelta(S, V ⊕ ΔV) (Proposition 5.1: the insertion sets of the
// delta relations ARE the new source deltas). The source deltas are then
// applied, and the resulting source changes are propagated the same way,
// so every materialized intermediate ends at its post-update version —
// consistent with a fresh Init over the new database — at O(|Δ|) cost.
func (g *GeneralIncremental) Apply(db *eval.Database, insV, delV *value.Relation) error {
	view := datalog.Pred(g.prog.View.Name)
	arity := g.prog.View.Arity()
	db.Ensure(view, arity)
	// Advance the view in place, recording its exact net delta — a tuple
	// deleted and re-inserted nets out, preserving Delta's disjointness
	// invariant even for overlapping insV/delV inputs.
	vd := eval.NewDelta(arity)
	if delV != nil {
		delV.Each(func(t value.Tuple) {
			if db.Delete(view, t) {
				vd.Del.Add(t)
			}
		})
	}
	if insV != nil {
		insV.Each(func(t value.Tuple) {
			if db.Insert(view, t) {
				if !vd.Del.Remove(t) {
					vd.Ins.Add(t)
				}
			}
		})
	}
	if _, err := g.defsEv.EvalDelta(db, map[datalog.PredSym]eval.Delta{view: vd}); err != nil {
		return err
	}
	// ±ri now hold the derived source deltas; apply them and propagate the
	// source changes so the intermediates advance to the post-update state.
	srcDeltas, err := eval.ApplyDeltasExact(db, g.prog.Sources)
	if err != nil {
		return err
	}
	if len(srcDeltas) == 0 {
		return nil
	}
	_, err = g.defsEv.EvalDelta(db, srcDeltas)
	return err
}
