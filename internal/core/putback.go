// Package core implements the paper's primary contribution: the validation
// algorithm for Datalog putback programs (Algorithm 1, Section 4) — with
// derivation of the view definition get from the update strategy via the
// φ1/φ2/φ3 decomposition of Lemma 4.2 — and the incrementalization
// algorithm of Section 5 (Lemma 5.2 and the rewrite system of Appendix C).
package core

import (
	"fmt"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/eval"
)

// Putback is a checked, compiled view update strategy.
type Putback struct {
	Prog  *datalog.Program
	Class analysis.Class
	eval  *eval.Evaluator
}

// NewPutback checks the structural obligations of a putback program (§3.1)
// and compiles it for evaluation. The program must be in NR-Datalog with
// negation and built-ins (nonrecursive and safe); LVGN membership is
// recorded but not required.
func NewPutback(prog *datalog.Program) (*Putback, error) {
	if err := analysis.CheckPutbackShape(prog); err != nil {
		return nil, err
	}
	class := analysis.Classify(prog)
	if !class.NRDatalog() {
		return nil, fmt.Errorf("core: program is outside NR-Datalog¬: %v", class.Violations)
	}
	ev, err := eval.New(prog)
	if err != nil {
		return nil, err
	}
	return &Putback{Prog: prog, Class: class, eval: ev}, nil
}

// Evaluator returns the compiled evaluator for the program.
func (p *Putback) Evaluator() *eval.Evaluator { return p.eval }

// ViewSym returns the view predicate symbol.
func (p *Putback) ViewSym() datalog.PredSym { return datalog.Pred(p.Prog.View.Name) }

// Put performs one putback step on db (sources + updated view): evaluate
// the delta relations, verify non-contradiction, check the integrity
// constraints, and apply the deltas to the source relations.
func (p *Putback) Put(db *eval.Database) error {
	if err := p.eval.Eval(db); err != nil {
		return err
	}
	violated, err := p.eval.Violations(db)
	if err != nil {
		return err
	}
	if len(violated) > 0 {
		return &ConstraintError{Violated: violated}
	}
	_, _, err = eval.ApplyDeltas(db, p.Prog.Sources)
	return err
}

// ConstraintError reports rejected view updates (§3.2.3: "Any view updates
// that violate these constraints are rejected").
type ConstraintError struct {
	Violated []*datalog.Rule
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("core: view update violates %d integrity constraint(s), e.g. %s",
		len(e.Violated), e.Violated[0])
}

// GetProgram packages derived or expected get rules as an evaluable
// program over the putback program's sources.
func GetProgram(putdelta *datalog.Program, getRules []*datalog.Rule) *datalog.Program {
	return &datalog.Program{
		Sources: putdelta.Sources,
		View:    putdelta.View,
		Rules:   getRules,
	}
}
