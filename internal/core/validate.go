package core

import (
	"fmt"
	"time"

	"birds/internal/analysis"
	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/fol"
	"birds/internal/sat"
	"birds/internal/value"
)

// Options configures validation.
type Options struct {
	Oracle sat.Config
}

// DefaultOptions returns the default validation configuration.
func DefaultOptions() Options { return Options{Oracle: sat.DefaultConfig()} }

// Pass names the validation passes of Algorithm 1 (Figure 4).
type Pass string

// The three passes of Algorithm 1, plus the get-derivation sub-pass.
const (
	PassWellDefined   Pass = "well-definedness"
	PassGetPut        Pass = "getput"
	PassGetDerivation Pass = "get-derivation"
	PassPutGet        Pass = "putget"
)

// Failure describes why a putback program was rejected, with the witness
// instance when one was found.
type Failure struct {
	Pass    Pass
	Detail  string
	Witness *eval.Database
}

func (f *Failure) Error() string {
	return fmt.Sprintf("core: %s check failed: %s", f.Pass, f.Detail)
}

// Result is the outcome of Validate.
type Result struct {
	Valid        bool
	Failure      *Failure
	Get          []*datalog.Rule    // the view definition that certifies validity
	UsedExpected bool               // Get came from expected_get rather than derivation
	Class        analysis.Class     // language-fragment classification
	Decomp       *fol.Decomposition // φ1/φ2/φ3 when get was derived
	Elapsed      time.Duration
	Bounded      bool // acceptance relies on the bounded oracle (always true here)
}

// Validate runs Algorithm 1 on a putback program: (1) well-definedness,
// (2) existence of a view definition satisfying GetPut — using expectedGet
// if provided, otherwise deriving get from the φ2 of Lemma 4.2 — and
// (3) the PutGet property. expectedGet, when non-nil, is a set of rules
// defining the view predicate from the sources.
func Validate(pb *Putback, expectedGet []*datalog.Rule, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{Class: pb.Class, Bounded: true}
	oracle := sat.New(opts.Oracle)
	v := newValidator(pb, oracle)

	fail := func(f *Failure) (*Result, error) {
		res.Failure = f
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// Pass 1: well-definedness (§4.2).
	if f := v.checkWellDefined(); f != nil {
		return fail(f)
	}

	// Pass 2: a view definition satisfying GetPut (§4.3).
	var expectedFailure *Failure
	if expectedGet != nil {
		if f := v.checkGetPut(expectedGet); f == nil {
			res.Get = expectedGet
			res.UsedExpected = true
		} else {
			// Per Algorithm 1, a failing expected_get falls through to
			// derivation rather than rejecting outright.
			expectedFailure = f
		}
	}
	if res.Get == nil {
		get, decomp, f := v.deriveGet()
		if f != nil {
			if expectedFailure != nil {
				// Derivation could not repair the failing expected get;
				// the GetPut counterexample is the more useful report.
				expectedFailure.Detail = fmt.Sprintf(
					"expected get does not satisfy GetPut (%s); derivation also failed: %s",
					expectedFailure.Detail, f.Detail)
				return fail(expectedFailure)
			}
			return fail(f)
		}
		res.Get = get
		res.Decomp = decomp
		// The derived get satisfies GetPut by construction; replay the
		// check as a safeguard against oracle blind spots.
		if f := v.checkGetPut(get); f != nil {
			f.Detail = "derived get does not satisfy GetPut: " + f.Detail
			return fail(f)
		}
	}

	// Pass 3: PutGet (§4.4).
	if f := v.checkPutGet(res.Get); f != nil {
		return fail(f)
	}

	res.Valid = true
	res.Elapsed = time.Since(start)
	return res, nil
}

// testFactory adapts a test constructor parameterized by a compiled
// evaluator into a sat.Problem.TestFactory: each parallel search worker
// compiles its own evaluator over prog, because rule plans carry reusable
// scratch state and are not goroutine-safe.
func testFactory(test func(*eval.Evaluator) func(db *eval.Database) bool, prog *datalog.Program) func() func(db *eval.Database) bool {
	return func() func(db *eval.Database) bool {
		ev, err := eval.New(prog)
		if err != nil {
			// The same program already compiled on the sequential path; a
			// failure here would silently turn the witness search into a
			// soundness-destroying no-op, so fail loudly instead.
			panic(fmt.Sprintf("core: parallel search worker cannot recompile validated program: %v", err))
		}
		return test(ev)
	}
}

// validator carries the shared state of one validation run.
type validator struct {
	pb       *Putback
	oracle   *sat.Oracle
	unfolder *fol.Unfolder
	consts   []value.Value
	srcSpecs []sat.RelSpec
	allSpecs []sat.RelSpec // sources + view
}

func newValidator(pb *Putback, oracle *sat.Oracle) *validator {
	v := &validator{
		pb:       pb,
		oracle:   oracle,
		unfolder: fol.NewUnfolder(pb.Prog),
		srcSpecs: sat.SpecsFromDecls(pb.Prog.Sources...),
	}
	v.allSpecs = append(append([]sat.RelSpec{}, v.srcSpecs...),
		sat.SpecsFromDecls(pb.Prog.View)...)
	v.consts = programConstants(pb.Prog)
	return v
}

// programConstants collects every constant of a program's rules.
func programConstants(progs ...*datalog.Program) []value.Value {
	var out []value.Value
	seen := make(map[string]bool)
	add := func(t datalog.Term) {
		if t.IsConst() && !seen[t.Const.String()] {
			seen[t.Const.String()] = true
			out = append(out, t.Const)
		}
	}
	for _, p := range progs {
		for _, r := range p.Rules {
			if r.Head != nil {
				for _, t := range r.Head.Args {
					add(t)
				}
			}
			for _, l := range r.Body {
				if l.Atom != nil {
					for _, t := range l.Atom.Args {
						add(t)
					}
				} else {
					add(l.Builtin.L)
					add(l.Builtin.R)
				}
			}
		}
	}
	return out
}

// checkWellDefined searches for an instance (S, V) satisfying Σ on which
// some +ri and -ri share a tuple — the di predicates of rules (2) in §4.2.
func (v *validator) checkWellDefined() *Failure {
	for _, s := range v.pb.Prog.Sources {
		ins, del := datalog.Ins(s.Name), datalog.Del(s.Name)
		if len(v.pb.Prog.RulesFor(ins)) == 0 || len(v.pb.Prog.RulesFor(del)) == 0 {
			continue // d_i is trivially unsatisfiable
		}
		args := fol.QueryVars(s.Arity())
		guide := fol.NewAnd(v.unfolder.Pred(ins, args), v.unfolder.Pred(del, args))
		name := s.Name
		test := func(ev *eval.Evaluator) func(db *eval.Database) bool {
			return func(db *eval.Database) bool {
				if err := ev.Eval(db); err != nil {
					return false
				}
				if violated, err := ev.Violations(db); err != nil || len(violated) > 0 {
					return false
				}
				insRel := db.RelOrEmpty(datalog.Ins(name), 0)
				delRel := db.RelOrEmpty(datalog.Del(name), 0)
				if insRel.Empty() || delRel.Empty() {
					return false
				}
				return !insRel.Intersect(delRel).Empty()
			}
		}
		witness := v.oracle.Find(sat.Problem{
			Rels:        v.allSpecs,
			ExtraConsts: v.consts,
			Guide:       guide,
			Test:        test(v.pb.eval),
			TestFactory: testFactory(test, v.pb.Prog),
		})
		if witness != nil {
			return &Failure{
				Pass:    PassWellDefined,
				Detail:  fmt.Sprintf("the program derives both +%s(t) and -%s(t) for the same tuple (contradictory ΔS)", s.Name, s.Name),
				Witness: witness,
			}
		}
	}
	return nil
}

// checkGetPut verifies that with the view defined by getRules, the putback
// program produces an empty ΔS on every source database satisfying Σ —
// i.e. put(S, get(S)) = S. It returns a Failure with a witness if GetPut
// does not hold.
func (v *validator) checkGetPut(getRules []*datalog.Rule) *Failure {
	combined := &datalog.Program{Sources: v.pb.Prog.Sources, View: v.pb.Prog.View}
	combined.Rules = append(combined.Rules, getRules...)
	combined.Rules = append(combined.Rules, v.pb.Prog.Rules...)
	ev, err := eval.New(combined)
	if err != nil {
		return &Failure{Pass: PassGetPut, Detail: fmt.Sprintf("cannot compose get with putdelta: %v", err)}
	}

	u := fol.NewUnfolder(combined)
	var disjuncts []fol.Formula
	var deltaSyms []datalog.PredSym
	for _, s := range v.pb.Prog.Sources {
		for _, d := range []datalog.PredSym{datalog.Ins(s.Name), datalog.Del(s.Name)} {
			if len(v.pb.Prog.RulesFor(d)) == 0 {
				continue
			}
			deltaSyms = append(deltaSyms, d)
			disjuncts = append(disjuncts, u.Pred(d, fol.QueryVars(s.Arity())))
		}
	}
	if len(deltaSyms) == 0 {
		return nil // no delta rules at all: put is the identity
	}
	test := func(ev *eval.Evaluator) func(db *eval.Database) bool {
		return func(db *eval.Database) bool {
			if err := ev.Eval(db); err != nil {
				return false
			}
			if violated, err := ev.Violations(db); err != nil || len(violated) > 0 {
				return false
			}
			for _, d := range deltaSyms {
				if rel := db.Rel(d); rel != nil && !rel.Empty() {
					return true
				}
			}
			return false
		}
	}
	witness := v.oracle.Find(sat.Problem{
		Rels:        v.srcSpecs,
		ExtraConsts: programConstants(v.pb.Prog, &datalog.Program{Rules: getRules}),
		Guide:       fol.NewOr(disjuncts...),
		Test:        test(ev),
		TestFactory: testFactory(test, combined),
	})
	if witness != nil {
		return &Failure{
			Pass:    PassGetPut,
			Detail:  "put(S, get(S)) changes the source for some S (GetPut violated)",
			Witness: witness,
		}
	}
	return nil
}

// deriveGet constructs a view definition satisfying GetPut per §4.3: build
// the steady-state sentences, decompose them into φ1/φ2/φ3 (Lemma 4.2),
// check that φ3 and ∃Y, φ1 ∧ φ2 are unsatisfiable, and translate φ2 to a
// Datalog query (Appendix B).
func (v *validator) deriveGet() ([]*datalog.Rule, *fol.Decomposition, *Failure) {
	var sentences []fol.Formula
	for _, s := range v.pb.Prog.Sources {
		args := fol.QueryVars(s.Arity())
		srcAtom := &fol.Atom{Pred: s.Name, Args: args}
		if len(v.pb.Prog.RulesFor(datalog.Del(s.Name))) > 0 {
			sentences = append(sentences, fol.NewAnd(v.unfolder.Pred(datalog.Del(s.Name), args), srcAtom))
		}
		if len(v.pb.Prog.RulesFor(datalog.Ins(s.Name))) > 0 {
			sentences = append(sentences, fol.NewAnd(v.unfolder.Pred(datalog.Ins(s.Name), args), fol.NewNot(srcAtom)))
		}
	}
	// Constraints mentioning the view participate in the decomposition;
	// view-free constraints are preconditions on S, not obligations.
	viewName := v.pb.Prog.View.Name
	for _, c := range v.pb.Prog.Constraints() {
		if constraintMentionsView(c, viewName) {
			sentences = append(sentences, v.unfolder.ConstraintSentence(c))
		}
	}

	decomp, err := fol.Decompose(sentences, viewName, v.pb.Prog.View.Arity())
	if err != nil {
		return nil, nil, &Failure{Pass: PassGetDerivation, Detail: err.Error()}
	}

	// φ3 must be unsatisfiable over source databases satisfying the
	// source-only constraints.
	for _, phi3 := range decomp.Phi3 {
		if w := v.findSourceModel(phi3); w != nil {
			return nil, decomp, &Failure{
				Pass:    PassGetDerivation,
				Detail:  "no steady-state view exists: the view-free condition φ3 is satisfiable, so some source database admits no consistent view",
				Witness: w,
			}
		}
	}
	// ∃Y, φ1 ∧ φ2 must be unsatisfiable.
	conj := fol.NewAnd(decomp.Phi1, decomp.Phi2)
	if t, isTruth := conj.(fol.Truth); !isTruth || t.B {
		if w := v.findSourceModel(conj); w != nil {
			return nil, decomp, &Failure{
				Pass:    PassGetDerivation,
				Detail:  "no steady-state view exists: the lower bound φ2 exceeds the upper bound ¬φ1 (∃Y, φ1 ∧ φ2 is satisfiable)",
				Witness: w,
			}
		}
	}

	getRules, err := fol.ToDatalog(decomp.Phi2, decomp.ViewVars, viewName)
	if err != nil {
		return nil, decomp, &Failure{
			Pass:   PassGetDerivation,
			Detail: fmt.Sprintf("φ2 is not expressible as a Datalog view definition: %v", err),
		}
	}
	return getRules, decomp, nil
}

// findSourceModel searches for a source database satisfying the view-free
// constraints on which sentence holds.
func (v *validator) findSourceModel(sentence fol.Formula) *eval.Database {
	srcCons := v.sourceOnlyConstraintSentences()
	consts := append([]value.Value{}, v.consts...)
	for _, c := range fol.Constants(sentence) {
		consts = append(consts, c.Const)
	}
	// The model check is stateless (a fresh fol.Model per call over the
	// task-local database), so parallel workers can share the closure.
	test := func(db *eval.Database) bool {
		m := fol.NewModel(db, consts...)
		for _, pc := range srcCons {
			if m.Sat(pc) {
				return false // violates a source precondition
			}
		}
		return m.Sat(sentence)
	}
	return v.oracle.Find(sat.Problem{
		Rels:        v.srcSpecs,
		ExtraConsts: consts,
		Guide:       sentence,
		Test:        test,
		TestFactory: func() func(db *eval.Database) bool { return test },
	})
}

func (v *validator) sourceOnlyConstraintSentences() []fol.Formula {
	var out []fol.Formula
	for _, c := range v.pb.Prog.Constraints() {
		if !constraintMentionsView(c, v.pb.Prog.View.Name) {
			out = append(out, v.unfolder.ConstraintSentence(c))
		}
	}
	return out
}

func constraintMentionsView(c *datalog.Rule, view string) bool {
	for _, l := range c.Body {
		if l.Atom != nil && l.Atom.Pred == datalog.Pred(view) {
			return true
		}
	}
	return false
}

// checkPutGet verifies get(put(S, V)) = V for all (S, V) satisfying Σ, by
// composing the putget program of §4.4 and searching for an instance where
// new_v differs from v (the sentences Φ1 and Φ2 of (9) and (10)).
func (v *validator) checkPutGet(getRules []*datalog.Rule) *Failure {
	putget, err := ComposePutGet(v.pb.Prog, getRules)
	if err != nil {
		return &Failure{Pass: PassPutGet, Detail: err.Error()}
	}
	ev, err := eval.New(putget)
	if err != nil {
		return &Failure{Pass: PassPutGet, Detail: fmt.Sprintf("putget program does not compile: %v", err)}
	}
	viewSym := datalog.Pred(v.pb.Prog.View.Name)
	newView := NewViewSym(v.pb.Prog.View.Name)
	arity := v.pb.Prog.View.Arity()

	u := fol.NewUnfolder(putget)
	y := fol.QueryVars(arity)
	vAtom := &fol.Atom{Pred: viewSym.Name, Args: y}
	newF := u.Pred(newView, y)
	guide := fol.NewOr(
		fol.NewAnd(newF, fol.NewNot(vAtom)), // Φ1
		fol.NewAnd(vAtom, fol.NewNot(newF)), // Φ2
	)

	test := func(pbEv, pgEv *eval.Evaluator) func(db *eval.Database) bool {
		return func(db *eval.Database) bool {
			// The updated view must satisfy Σ to be an admissible update.
			if err := pbEv.Eval(db); err != nil {
				return false
			}
			if violated, err := pbEv.Violations(db); err != nil || len(violated) > 0 {
				return false
			}
			if err := pgEv.Eval(db); err != nil {
				return false
			}
			got := db.RelOrEmpty(newView, arity)
			want := db.RelOrEmpty(viewSym, arity)
			return !got.Equal(want)
		}
	}
	witness := v.oracle.Find(sat.Problem{
		Rels:        v.allSpecs,
		ExtraConsts: programConstants(putget),
		Guide:       guide,
		Test:        test(v.pb.eval, ev),
		TestFactory: func() func(db *eval.Database) bool {
			pbEv, err1 := eval.New(v.pb.Prog)
			pgEv, err2 := eval.New(putget)
			if err1 != nil || err2 != nil {
				// Both programs compiled on the sequential path just above;
				// degrading silently would make the PutGet search vacuous.
				panic(fmt.Sprintf("core: parallel putget worker cannot recompile programs: %v / %v", err1, err2))
			}
			return test(pbEv, pgEv)
		},
	})
	if witness != nil {
		return &Failure{
			Pass:    PassPutGet,
			Detail:  "get(put(S, V)) ≠ V for some admissible (S, V) (PutGet violated)",
			Witness: witness,
		}
	}
	return nil
}
