package core

import (
	"math/rand"
	"testing"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// Binarization must preserve the semantics of every original IDB relation
// (Lemma C.1).
func TestBinarizePreservesSemantics(t *testing.T) {
	src := `
source r(a:int, b:int).
source s(b:int, c:int).
view v(a:int, c:int).
j(X,Y,Z) :- r(X,Y), s(Y,Z), Z > 1.
p(X) :- j(X,_,_).
q(X) :- r(X,Y), not s(Y,_), Y > 0.
u(X) :- p(X).
u(X) :- q(X).
u(X) :- v(X,_).
`
	prog := mustProg(t, src)
	bin, err := Binarize(prog)
	if err != nil {
		t.Fatal(err)
	}
	evOrig, err := eval.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	evBin, err := eval.New(bin)
	if err != nil {
		t.Fatalf("binarized program does not compile: %v\n%s", err, bin)
	}
	// Every binarized rule must have at most 2 relation atoms in its body.
	for _, r := range bin.Rules {
		atoms := 0
		for _, l := range r.Body {
			if l.Atom != nil {
				atoms++
			}
		}
		if atoms > 2 {
			t.Errorf("rule %q has %d atoms", r, atoms)
		}
	}

	rng := rand.New(rand.NewSource(3))
	goals := []datalog.PredSym{datalog.Pred("j"), datalog.Pred("p"), datalog.Pred("q"), datalog.Pred("u")}
	for trial := 0; trial < 100; trial++ {
		db1, db2 := eval.NewDatabase(), eval.NewDatabase()
		for _, spec := range []struct {
			name  string
			arity int
		}{{"r", 2}, {"s", 2}, {"v", 2}} {
			rel := value.NewRelation(spec.arity)
			for i := 0; i < rng.Intn(5); i++ {
				tu := make(value.Tuple, spec.arity)
				for j := range tu {
					tu[j] = value.Int(int64(rng.Intn(4)))
				}
				rel.Add(tu)
			}
			db1.Set(datalog.Pred(spec.name), rel.Clone())
			db2.Set(datalog.Pred(spec.name), rel.Clone())
		}
		if err := evOrig.Eval(db1); err != nil {
			t.Fatal(err)
		}
		if err := evBin.Eval(db2); err != nil {
			t.Fatal(err)
		}
		for _, g := range goals {
			a := db1.RelOrEmpty(g, 1)
			b := db2.RelOrEmpty(g, 1)
			if g == datalog.Pred("j") {
				a = db1.RelOrEmpty(g, 3)
				b = db2.RelOrEmpty(g, 3)
			}
			if !a.Equal(b) {
				t.Fatalf("trial %d: %s differs: orig=%v bin=%v\n%s", trial, g, a, b, bin)
			}
		}
	}
}

// generalEquivalenceTrial checks that the Figure 7 incremental pipeline
// computes the same updated sources and view as full putback evaluation,
// across a sequence of random view deltas (so materialized intermediates
// must stay consistent from update to update).
func generalEquivalenceTrial(t *testing.T, src, getSrc string, domain int, seed int64) {
	t.Helper()
	prog := mustProg(t, src)
	pb, err := NewPutback(prog)
	if err != nil {
		t.Fatal(err)
	}
	var getRules []*datalog.Rule
	for _, line := range splitLines(getSrc) {
		r, err := datalog.ParseRule(line)
		if err != nil {
			t.Fatal(err)
		}
		getRules = append(getRules, r)
	}
	getEv, err := eval.New(GetProgram(prog, getRules))
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGeneralIncremental(prog)
	if err != nil {
		t.Fatal(err)
	}

	viewSym := datalog.Pred(prog.View.Name)
	arity := prog.View.Arity()
	rng := rand.New(rand.NewSource(seed))
	randTuple := func(n int) value.Tuple {
		tu := make(value.Tuple, n)
		for i := range tu {
			tu[i] = value.Int(int64(rng.Intn(domain)))
		}
		return tu
	}

	for trial := 0; trial < 30; trial++ {
		// Random initial sources; view = get(S) so the system starts in a
		// steady state.
		srcRels := make(map[string]*value.Relation)
		for _, s := range prog.Sources {
			rel := value.NewRelation(s.Arity())
			for i := 0; i < rng.Intn(6); i++ {
				rel.Add(randTuple(s.Arity()))
			}
			srcRels[s.Name] = rel
		}
		base := eval.NewDatabase()
		for name, rel := range srcRels {
			base.Set(datalog.Pred(name), rel.Clone())
		}
		view, err := getEv.EvalQuery(base, viewSym)
		if err != nil {
			t.Fatal(err)
		}
		view = view.Clone()

		incDB := eval.NewDatabase()
		for name, rel := range srcRels {
			incDB.Set(datalog.Pred(name), rel.Clone())
		}
		incDB.Set(viewSym, view.Clone())
		if err := gi.Init(incDB); err != nil {
			t.Fatal(err)
		}

		refSources := srcRels
		refView := view
		// A chain of updates against the same incremental state.
		for step := 0; step < 4; step++ {
			insV := value.NewRelation(arity)
			delV := value.NewRelation(arity)
			for i := 0; i < rng.Intn(3); i++ {
				tu := randTuple(arity)
				if !refView.Contains(tu) {
					insV.Add(tu)
				}
			}
			for _, tu := range refView.Tuples() {
				if rng.Intn(4) == 0 {
					delV.Add(tu)
				}
			}
			newView := refView.Clone()
			newView.SubtractAll(delV)
			newView.UnionWith(insV)

			// Reference: full putdelta over (S, V').
			full := eval.NewDatabase()
			for name, rel := range refSources {
				full.Set(datalog.Pred(name), rel.Clone())
			}
			full.Set(viewSym, newView.Clone())
			if err := pb.eval.Eval(full); err != nil {
				t.Fatal(err)
			}
			if violated, _ := pb.eval.Violations(full); len(violated) > 0 {
				break // inadmissible; stop this chain
			}
			if _, _, err := eval.ApplyDeltas(full, prog.Sources); err != nil {
				t.Fatal(err)
			}

			// Incremental path.
			if err := gi.Apply(incDB, insV.Clone(), delV.Clone()); err != nil {
				t.Fatal(err)
			}

			for _, s := range prog.Sources {
				got := incDB.RelOrEmpty(datalog.Pred(s.Name), s.Arity())
				want := full.RelOrEmpty(datalog.Pred(s.Name), s.Arity())
				if !got.Equal(want) {
					t.Fatalf("trial %d step %d: %s diverged:\nfull=%v\ninc=%v\nΔ+=%v Δ-=%v\ndelta program:\n%s",
						trial, step, s.Name, want, got, insV, delV, gi.DeltaProgram())
				}
			}
			// Advance the reference state.
			refSources = make(map[string]*value.Relation)
			for _, s := range prog.Sources {
				refSources[s.Name] = full.RelOrEmpty(datalog.Pred(s.Name), s.Arity()).Clone()
			}
			refView = newView
			// Keep the incremental view in sync semantically.
			gotView := incDB.RelOrEmpty(viewSym, arity)
			if !gotView.Equal(newView) {
				t.Fatalf("trial %d step %d: view diverged: %v vs %v", trial, step, gotView, newView)
			}
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			line := s[start:i]
			start = i + 1
			trimmed := ""
			for _, c := range line {
				if c != ' ' && c != '\t' {
					trimmed = line
					break
				}
			}
			if trimmed != "" {
				out = append(out, line)
			}
		}
	}
	return out
}

func TestGeneralIncrementalUnion(t *testing.T) {
	generalEquivalenceTrial(t, unionSrc, "v(X) :- r1(X).\nv(X) :- r2(X).", 6, 5)
}

func TestGeneralIncrementalSelectionWithAux(t *testing.T) {
	generalEquivalenceTrial(t, selectionSrc, "v(X,Y) :- r(X,Y), Y > 2.", 5, 7)
}

func TestGeneralIncrementalDifference(t *testing.T) {
	generalEquivalenceTrial(t, `
source ed(e:int, d:int).
source eed(e:int, d:int).
view ced(e:int, d:int).
+ed(E,D) :- ced(E,D), not ed(E,D).
-eed(E,D) :- ced(E,D), eed(E,D).
+eed(E,D) :- ed(E,D), not ced(E,D), not eed(E,D).
`, "ced(E,D) :- ed(E,D), not eed(E,D).", 4, 11)
}

// The join view (outside LVGN-Datalog, where Lemma 5.2 does not apply) is
// the case the general algorithm exists for.
func TestGeneralIncrementalJoinView(t *testing.T) {
	generalEquivalenceTrial(t, `
source albums(album:int, quantity:int).
source tracks(tid:int, album:int).
view tr(tid:int, album:int, quantity:int).
_|_ :- albums(A,Q1), albums(A,Q2), not Q1 = Q2.
_|_ :- tracks(T,A), not albums(A,_).
_|_ :- tr(T1,A,Q1), tr(T2,A,Q2), not Q1 = Q2.
vtracks(T,A) :- tr(T,A,_).
valbums(A) :- tr(_,A,_).
albq(A,Q) :- tr(_,A,Q).
+tracks(T,A) :- tr(T,A,Q), not tracks(T,A).
-tracks(T,A) :- tracks(T,A), not vtracks(T,A).
+albums(A,Q) :- albq(A,Q), not albums(A,Q).
-albums(A,Q) :- albums(A,Q), valbums(A), not albq(A,Q).
`, "tr(T,A,Q) :- tracks(T,A), albums(A,Q).", 3, 13)
}

func TestGeneralIncrementalSemijoinAnon(t *testing.T) {
	generalEquivalenceTrial(t, `
source tasks(tid:int, uid:int, done:int).
source users(uid:int).
view ot(tid:int, uid:int).
_|_ :- ot(T,U), not users(U).
t0(T,U) :- tasks(T,U,0).
+tasks(T,U,D) :- ot(T,U), not t0(T,U), D = 0.
-tasks(T,U,D) :- tasks(T,U,D), D = 0, users(U), not ot(T,U).
`, "ot(T,U) :- tasks(T,U,0), users(U).", 3, 17)
}

func TestGeneralIncrementalProgramShapes(t *testing.T) {
	prog := mustProg(t, selectionSrc)
	gi, err := NewGeneralIncremental(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Every rule of the delta program must reference only deltas, ν
	// relations, old relations and builtins — and compile.
	if gi.DeltaProgram().LOC() == 0 || gi.DefinitionProgram().LOC() == 0 {
		t.Fatal("programs should be nonempty")
	}
	// The view's ν rules must be present.
	found := false
	for _, r := range gi.DeltaProgram().Rules {
		if r.Head.Pred == datalog.Pred("__nu_v") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing view ν rules:\n%s", gi.DeltaProgram())
	}
}

func TestBinarizeErrors(t *testing.T) {
	// A rule with no positive atom cannot be binarized.
	prog := &datalog.Program{
		Sources: mustProg(t, "source r(a:int).\nview v(a:int).").Sources,
		View:    mustProg(t, "source r(a:int).\nview v(a:int).").View,
		Rules: []*datalog.Rule{
			datalog.NewRule(datalog.NewAtom(datalog.Pred("h"), datalog.CInt(1))),
		},
	}
	if _, err := Binarize(prog); err == nil {
		t.Fatal("fact-only rule should fail binarization")
	}
}
