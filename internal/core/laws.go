package core

import (
	"fmt"
	"math/rand"

	"birds/internal/datalog"
	"birds/internal/eval"
	"birds/internal/value"
)

// LawsConfig bounds the randomized round-trip law check.
type LawsConfig struct {
	Trials    int   // random instances per law (default 200)
	MaxTuples int   // tuples per relation (default 4)
	Seed      int64 // PRNG seed (default 1)
}

// LawViolation is a concrete counterexample to GetPut or PutGet.
type LawViolation struct {
	Law      string // "GetPut" or "PutGet"
	Detail   string
	Instance *eval.Database
}

func (v *LawViolation) Error() string {
	return fmt.Sprintf("core: %s violated: %s", v.Law, v.Detail)
}

// CheckLaws replays the two round-tripping laws of §2.2 on random
// instances: GetPut (put(S, get(S)) = S) over random sources, and PutGet
// (get(put(S, V')) = V') over random sources and random admissible updated
// views. It complements Validate: where Validate searches adversarially
// for tiny counterexamples, CheckLaws exercises larger random instances —
// the property-based-testing angle on the same laws. It returns nil when
// no violation is found within the trial budget.
func CheckLaws(pb *Putback, getRules []*datalog.Rule, cfg LawsConfig) error {
	if cfg.Trials == 0 {
		cfg.Trials = 200
	}
	if cfg.MaxTuples == 0 {
		cfg.MaxTuples = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	getEv, err := eval.New(GetProgram(pb.Prog, getRules))
	if err != nil {
		return fmt.Errorf("core: get program does not compile: %w", err)
	}
	viewSym := datalog.Pred(pb.Prog.View.Name)
	arity := pb.Prog.View.Arity()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := lawPools(pb.Prog)

	randomRel := func(types []string, n int) *value.Relation {
		rel := value.NewRelation(len(types))
		for i := 0; i < n; i++ {
			tu := make(value.Tuple, len(types))
			for j, ty := range types {
				pool := pools[poolKind(ty)]
				tu[j] = pool[rng.Intn(len(pool))]
			}
			rel.Add(tu)
		}
		return rel
	}
	randomSources := func() map[string]*value.Relation {
		out := make(map[string]*value.Relation)
		for _, s := range pb.Prog.Sources {
			types := make([]string, s.Arity())
			for i, a := range s.Attrs {
				types[i] = a.Type
			}
			out[s.Name] = randomRel(types, rng.Intn(cfg.MaxTuples+1))
		}
		return out
	}
	load := func(srcs map[string]*value.Relation) *eval.Database {
		db := eval.NewDatabase()
		for name, rel := range srcs {
			db.Set(datalog.Pred(name), rel.Clone())
		}
		return db
	}
	admissible := func(db *eval.Database) bool {
		if err := pb.eval.Eval(db); err != nil {
			return false
		}
		violated, err := pb.eval.Violations(db)
		return err == nil && len(violated) == 0
	}

	for trial := 0; trial < cfg.Trials; trial++ {
		srcs := randomSources()

		// GetPut: put(S, get(S)) must not change S. Sources on which the
		// computed view violates Σ are outside the contract.
		db := load(srcs)
		view, err := getEv.EvalQuery(db, viewSym)
		if err != nil {
			return err
		}
		view = view.Clone()
		db.Set(viewSym, view.Clone())
		if admissible(db) {
			snap := eval.SnapshotSources(db, pb.Prog.Sources)
			if _, _, err := eval.ApplyDeltas(db, pb.Prog.Sources); err != nil {
				return &LawViolation{Law: "GetPut", Detail: err.Error(), Instance: db}
			}
			if !eval.SourcesEqual(db, pb.Prog.Sources, snap) {
				return &LawViolation{
					Law:      "GetPut",
					Detail:   "put(S, get(S)) changed the source database",
					Instance: db,
				}
			}
		}

		// PutGet: for a random admissible V', get(put(S, V')) = V'.
		db2 := load(srcs)
		viewTypes := make([]string, arity)
		for i, a := range pb.Prog.View.Attrs {
			viewTypes[i] = a.Type
		}
		updated := randomRel(viewTypes, rng.Intn(cfg.MaxTuples+1))
		db2.Set(viewSym, updated.Clone())
		if !admissible(db2) {
			continue // inadmissible update: the strategy may reject it
		}
		if _, _, err := eval.ApplyDeltas(db2, pb.Prog.Sources); err != nil {
			return &LawViolation{Law: "PutGet", Detail: err.Error(), Instance: db2}
		}
		got, err := getEv.EvalQuery(db2, viewSym)
		if err != nil {
			return err
		}
		if !got.Equal(updated) {
			return &LawViolation{
				Law:      "PutGet",
				Detail:   fmt.Sprintf("get(put(S, V')) = %s but V' = %s", got, updated),
				Instance: db2,
			}
		}
	}
	return nil
}

func poolKind(ty string) string {
	switch ty {
	case "int", "integer":
		return "int"
	case "float", "real":
		return "float"
	case "bool", "boolean":
		return "bool"
	default:
		return "string"
	}
}

// lawPools builds per-type value pools around the program's constants,
// reusing the gap-value construction of the satisfiability oracle via a
// tiny sample of extra values.
func lawPools(progs ...*datalog.Program) map[string][]value.Value {
	consts := programConstants(progs...)
	out := map[string][]value.Value{
		"int":    {value.Int(0), value.Int(1), value.Int(2), value.Int(3)},
		"float":  {value.Float(0), value.Float(1.5)},
		"string": {value.Str("a"), value.Str("b"), value.Str("c")},
		"bool":   {value.Bool(false), value.Bool(true)},
	}
	for _, c := range consts {
		k := ""
		switch c.Kind() {
		case value.KindInt:
			k = "int"
			out[k] = append(out[k], value.Int(c.AsInt()-1), c, value.Int(c.AsInt()+1))
		case value.KindFloat:
			k = "float"
			out[k] = append(out[k], c)
		case value.KindString:
			k = "string"
			out[k] = append(out[k], c, value.Str(c.AsString()+"0"))
		case value.KindBool:
			// both already present
		}
	}
	return out
}
