package core

import (
	"testing"

	"birds/internal/datalog"
)

// parallelOptions is testOptions with the oracle's witness search fanned
// out over 4 workers.
func parallelOptions() Options {
	o := testOptions()
	o.Oracle.Parallelism = 4
	return o
}

// Validation outcomes must not depend on the oracle's parallelism: the
// same programs validate (or are rejected in the same pass) sequentially
// and with parallel witness search.
func TestValidateParallelAgreesWithSequential(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		expected []string // expected get rules, nil to derive
		valid    bool
		pass     Pass // failing pass when invalid
	}{
		{
			name:     "union-valid",
			src:      unionSrc,
			expected: []string{"v(X) :- r1(X).", "v(X) :- r2(X)."},
			valid:    true,
		},
		{
			name: "ill-defined",
			src: `
source r(a:int).
view v(a:int).
+r(X) :- v(X).
-r(X) :- v(X), r(X).
`,
			valid: false,
			pass:  PassWellDefined,
		},
		{
			name: "putget-violation",
			src: `
source r(a:int).
view v(a:int).
-r(X) :- r(X), v(X).
+r(X) :- v(X), not r(X).
`,
			valid: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var expected []*datalog.Rule
			if tc.expected != nil {
				expected = mustRules(t, tc.expected...)
			}
			runOne := func(opts Options) *Result {
				pb := mustPutback(t, tc.src)
				res, err := Validate(pb, expected, opts)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			seq := runOne(testOptions())
			par := runOne(parallelOptions())
			if seq.Valid != tc.valid {
				t.Fatalf("sequential Valid = %v, want %v (%v)", seq.Valid, tc.valid, seq.Failure)
			}
			if par.Valid != seq.Valid {
				t.Fatalf("parallel Valid = %v, sequential = %v (parallel failure: %v)", par.Valid, seq.Valid, par.Failure)
			}
			if tc.valid {
				if par.UsedExpected != seq.UsedExpected {
					t.Errorf("UsedExpected diverged: parallel %v, sequential %v", par.UsedExpected, seq.UsedExpected)
				}
				if len(par.Get) != len(seq.Get) {
					t.Errorf("derived get size diverged: parallel %d rules, sequential %d", len(par.Get), len(seq.Get))
				}
			} else if tc.pass != "" {
				if seq.Failure.Pass != tc.pass || par.Failure.Pass != tc.pass {
					t.Errorf("failing pass: sequential %q, parallel %q, want %q",
						seq.Failure.Pass, par.Failure.Pass, tc.pass)
				}
			}
			// Parallel search must still report a concrete witness on
			// rejection.
			if !tc.valid && par.Failure.Witness == nil && seq.Failure.Witness != nil {
				t.Error("parallel rejection lost the witness instance")
			}
		})
	}
}

// Repeated parallel validations of the same program must agree with each
// other (task-indexed witness selection makes the search deterministic).
func TestValidateParallelDeterministic(t *testing.T) {
	src := `
source r(a:int).
view v(a:int).
+r(X) :- v(X).
-r(X) :- v(X), r(X).
`
	var firstDetail string
	for i := 0; i < 3; i++ {
		pb := mustPutback(t, src)
		res, err := Validate(pb, nil, parallelOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Valid {
			t.Fatal("program must be rejected")
		}
		detail := string(res.Failure.Pass) + ": " + res.Failure.Detail + " / " + res.Failure.Witness.String()
		if i == 0 {
			firstDetail = detail
		} else if detail != firstDetail {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, detail, firstDetail)
		}
	}
}
