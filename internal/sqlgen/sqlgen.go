// Package sqlgen compiles the Datalog view definitions and putback
// programs into PostgreSQL-dialect SQL: a CREATE VIEW statement for get and
// an INSTEAD OF trigger program for the update strategy, following §6.1 of
// the paper. The generated text is the artifact whose size Table 1 reports
// ("Compiled SQL (Byte)"); it is also executable on a real PostgreSQL
// installation, while this repository's in-memory engine executes the same
// strategies natively.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"birds/internal/analysis"
	"birds/internal/datalog"
)

// Compiler translates programs over a fixed schema.
type Compiler struct {
	prog  *datalog.Program
	attrs map[string][]string // relation name -> column names
}

// New builds a compiler for the putback program's schema.
func New(prog *datalog.Program) *Compiler {
	c := &Compiler{prog: prog, attrs: make(map[string][]string)}
	for _, s := range prog.Sources {
		c.attrs[s.Name] = attrNames(s)
	}
	if prog.View != nil {
		c.attrs[prog.View.Name] = attrNames(prog.View)
	}
	return c
}

func attrNames(d *datalog.RelDecl) []string {
	out := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		out[i] = a.Name
	}
	return out
}

// columns returns the column names for a predicate, synthesizing col1..colN
// for auxiliary IDB relations.
func (c *Compiler) columns(name string, arity int) []string {
	if cols, ok := c.attrs[name]; ok && len(cols) == arity {
		return cols
	}
	cols := make([]string, arity)
	for i := range cols {
		cols[i] = fmt.Sprintf("col%d", i+1)
	}
	return cols
}

// relName renders a predicate symbol as a SQL table/CTE identifier; delta
// predicates get the __ins/__del suffix convention.
func relName(p datalog.PredSym) string {
	switch p.Delta {
	case datalog.Insert:
		return "__ins_" + p.Name
	case datalog.Delete:
		return "__del_" + p.Name
	default:
		return p.Name
	}
}

// RuleSelect renders one rule as a SELECT statement.
func (c *Compiler) RuleSelect(r *datalog.Rule) (string, error) {
	if r.Head == nil {
		return c.constraintSelect(r)
	}
	body, err := c.bodySQL(r)
	if err != nil {
		return "", err
	}
	cols := c.columns(r.Head.Pred.Name, r.Head.Arity())
	var sel []string
	for i, t := range r.Head.Args {
		expr, err := body.termExpr(t)
		if err != nil {
			return "", fmt.Errorf("sqlgen: rule %q: %w", r, err)
		}
		sel = append(sel, fmt.Sprintf("%s AS %s", expr, cols[i]))
	}
	return "SELECT DISTINCT " + strings.Join(sel, ", ") + body.fromWhere(), nil
}

// constraintSelect renders a constraint body as the EXISTS probe of §6.1.
func (c *Compiler) constraintSelect(r *datalog.Rule) (string, error) {
	body, err := c.bodySQL(r)
	if err != nil {
		return "", err
	}
	return "SELECT 1" + body.fromWhere(), nil
}

// bodyState accumulates FROM aliases and WHERE conditions for a rule body.
type bodyState struct {
	c       *Compiler
	froms   []string
	wheres  []string
	binding map[string]string // variable -> SQL expression
}

func (c *Compiler) bodySQL(r *datalog.Rule) (*bodyState, error) {
	b := &bodyState{c: c, binding: make(map[string]string)}

	// First pass: positive atoms establish aliases and bindings.
	alias := 0
	for _, l := range r.Body {
		if l.Atom == nil || l.Neg {
			continue
		}
		alias++
		a := fmt.Sprintf("t%d", alias)
		b.froms = append(b.froms, fmt.Sprintf("%s AS %s", relName(l.Atom.Pred), a))
		cols := c.columns(l.Atom.Pred.Name, l.Atom.Arity())
		for i, t := range l.Atom.Args {
			ref := a + "." + cols[i]
			switch {
			case t.IsConst():
				b.wheres = append(b.wheres, fmt.Sprintf("%s = %s", ref, t.Const.SQL()))
			case t.IsVar():
				if prev, ok := b.binding[t.Var]; ok {
					b.wheres = append(b.wheres, fmt.Sprintf("%s = %s", ref, prev))
				} else {
					b.binding[t.Var] = ref
				}
			}
		}
	}

	// Positive equalities may bind further variables (X = c, X = Y).
	for changed := true; changed; {
		changed = false
		for _, l := range r.Body {
			if l.Builtin == nil || l.Neg || l.Builtin.Op != datalog.OpEq {
				continue
			}
			lt, rt := l.Builtin.L, l.Builtin.R
			bindOne := func(v datalog.Term, other datalog.Term) bool {
				if !v.IsVar() {
					return false
				}
				if _, ok := b.binding[v.Var]; ok {
					return false
				}
				if expr, err := b.termExpr(other); err == nil {
					b.binding[v.Var] = expr
					return true
				}
				return false
			}
			if bindOne(lt, rt) || bindOne(rt, lt) {
				changed = true
			}
		}
	}

	// Second pass: comparisons, remaining equalities, and negations.
	for _, l := range r.Body {
		switch {
		case l.Builtin != nil:
			le, err := b.termExpr(l.Builtin.L)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: rule %q: %w", r, err)
			}
			re, err := b.termExpr(l.Builtin.R)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: rule %q: %w", r, err)
			}
			// A binding equality is already reflected in the binding map;
			// re-emitting it is harmless (X = X) only when both sides
			// resolve to the same expression, so skip that case.
			if l.Builtin.Op == datalog.OpEq && !l.Neg && le == re {
				continue
			}
			cond := fmt.Sprintf("%s %s %s", le, sqlOp(l.Builtin.Op), re)
			if l.Neg {
				cond = "NOT (" + cond + ")"
			}
			b.wheres = append(b.wheres, cond)
		case l.Neg:
			sub, err := b.notExists(l.Atom)
			if err != nil {
				return nil, fmt.Errorf("sqlgen: rule %q: %w", r, err)
			}
			b.wheres = append(b.wheres, sub)
		}
	}
	return b, nil
}

func (b *bodyState) termExpr(t datalog.Term) (string, error) {
	switch {
	case t.IsConst():
		return t.Const.SQL(), nil
	case t.IsVar():
		if expr, ok := b.binding[t.Var]; ok {
			return expr, nil
		}
		return "", fmt.Errorf("variable %s is not bound by a positive literal", t.Var)
	default:
		return "", fmt.Errorf("anonymous variable has no SQL expression")
	}
}

func (b *bodyState) notExists(a *datalog.Atom) (string, error) {
	cols := b.c.columns(a.Pred.Name, a.Arity())
	var conds []string
	for i, t := range a.Args {
		if t.IsAnon() {
			continue
		}
		expr, err := b.termExpr(t)
		if err != nil {
			return "", err
		}
		conds = append(conds, fmt.Sprintf("n.%s = %s", cols[i], expr))
	}
	where := ""
	if len(conds) > 0 {
		where = " WHERE " + strings.Join(conds, " AND ")
	}
	return fmt.Sprintf("NOT EXISTS (SELECT 1 FROM %s AS n%s)", relName(a.Pred), where), nil
}

func (b *bodyState) fromWhere() string {
	var sb strings.Builder
	if len(b.froms) > 0 {
		sb.WriteString(" FROM ")
		sb.WriteString(strings.Join(b.froms, ", "))
	}
	if len(b.wheres) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(b.wheres, " AND "))
	}
	return sb.String()
}

func sqlOp(op datalog.CmpOp) string {
	if op == datalog.OpEq {
		return "="
	}
	return op.String()
}

// QuerySQL renders a complete Datalog query (the rules defining goal plus
// the auxiliary predicates they depend on) as a WITH query.
func (c *Compiler) QuerySQL(rules []*datalog.Rule, goal datalog.PredSym) (string, error) {
	prog := &datalog.Program{Sources: c.prog.Sources, View: c.prog.View, Rules: rules}
	order, err := analysis.Stratify(prog)
	if err != nil {
		return "", err
	}
	var ctes []string
	for _, sym := range order {
		if sym == goal {
			continue
		}
		sel, err := c.unionSelect(prog.RulesFor(sym))
		if err != nil {
			return "", err
		}
		ctes = append(ctes, fmt.Sprintf("%s AS (%s)", relName(sym), sel))
	}
	main, err := c.unionSelect(prog.RulesFor(goal))
	if err != nil {
		return "", err
	}
	if len(ctes) == 0 {
		return main, nil
	}
	return "WITH " + strings.Join(ctes, ",\n     ") + "\n" + main, nil
}

func (c *Compiler) unionSelect(rules []*datalog.Rule) (string, error) {
	if len(rules) == 0 {
		return "", fmt.Errorf("sqlgen: no rules for goal")
	}
	parts := make([]string, len(rules))
	for i, r := range rules {
		sel, err := c.RuleSelect(r)
		if err != nil {
			return "", err
		}
		parts[i] = sel
	}
	return strings.Join(parts, "\nUNION\n"), nil
}

// CompileView renders CREATE VIEW for the (derived or expected) get rules.
func (c *Compiler) CompileView(getRules []*datalog.Rule) (string, error) {
	q, err := c.QuerySQL(getRules, datalog.Pred(c.prog.View.Name))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("CREATE OR REPLACE VIEW %s AS\n%s;\n", c.prog.View.Name, q), nil
}

// CompileTrigger renders the INSTEAD OF trigger program of §6.1: a PL/pgSQL
// function that derives the view delta from the DML statement, checks the
// integrity constraints, computes each source delta into a temporary table
// and applies it.
func (c *Compiler) CompileTrigger() (string, error) {
	view := c.prog.View.Name
	viewCols := c.columns(view, c.prog.View.Arity())
	var sb strings.Builder

	fmt.Fprintf(&sb, "CREATE OR REPLACE FUNCTION %s_update_strategy() RETURNS TRIGGER\n", view)
	sb.WriteString("LANGUAGE plpgsql SECURITY DEFINER AS $$\nBEGIN\n")

	// Step 1: derive the view delta from the DML statement (Appendix D).
	fmt.Fprintf(&sb, "  -- Deriving changes on the view %s\n", view)
	fmt.Fprintf(&sb, "  CREATE TEMP TABLE IF NOT EXISTS __ins_%s (LIKE %s) ON COMMIT DROP;\n", view, view)
	fmt.Fprintf(&sb, "  CREATE TEMP TABLE IF NOT EXISTS __del_%s (LIKE %s) ON COMMIT DROP;\n", view, view)
	sb.WriteString("  IF TG_OP = 'INSERT' OR TG_OP = 'UPDATE' THEN\n")
	fmt.Fprintf(&sb, "    DELETE FROM __del_%s WHERE ROW(%s) = NEW;\n", view, strings.Join(viewCols, ", "))
	fmt.Fprintf(&sb, "    INSERT INTO __ins_%s SELECT NEW.*;\n", view)
	sb.WriteString("  END IF;\n")
	sb.WriteString("  IF TG_OP = 'DELETE' OR TG_OP = 'UPDATE' THEN\n")
	fmt.Fprintf(&sb, "    DELETE FROM __ins_%s WHERE ROW(%s) = OLD;\n", view, strings.Join(viewCols, ", "))
	fmt.Fprintf(&sb, "    INSERT INTO __del_%s SELECT OLD.*;\n", view)
	sb.WriteString("  END IF;\n\n")

	// Step 2: constraint checks.
	if cons := c.prog.Constraints(); len(cons) > 0 {
		sb.WriteString("  -- Checking constraints\n")
		for _, r := range cons {
			probe, err := c.constraintSelect(r)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  IF EXISTS (%s) THEN\n", probe)
			fmt.Fprintf(&sb, "    RAISE EXCEPTION 'Invalid view update: constraint %% violated', %s;\n",
				sqlStringLiteral(r.String()))
			sb.WriteString("  END IF;\n")
		}
		sb.WriteString("\n")
	}

	// Step 3: compute and apply each source delta.
	sb.WriteString("  -- Calculating and applying delta relations\n")
	for _, s := range sortedSources(c.prog) {
		for _, d := range []datalog.PredSym{datalog.Del(s.Name), datalog.Ins(s.Name)} {
			rules := c.prog.RulesFor(d)
			if len(rules) == 0 {
				continue
			}
			q, err := c.QuerySQL(c.supportRules(d), d)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  CREATE TEMP TABLE %s ON COMMIT DROP AS\n  %s;\n",
				relName(d), indent(q, "  "))
		}
		cols := c.columns(s.Name, s.Arity())
		if len(c.prog.RulesFor(datalog.Del(s.Name))) > 0 {
			fmt.Fprintf(&sb, "  DELETE FROM %s WHERE ROW(%s) IN (SELECT * FROM %s);\n",
				s.Name, strings.Join(cols, ", "), relName(datalog.Del(s.Name)))
		}
		if len(c.prog.RulesFor(datalog.Ins(s.Name))) > 0 {
			fmt.Fprintf(&sb, "  INSERT INTO %s SELECT * FROM %s EXCEPT SELECT * FROM %s;\n",
				s.Name, relName(datalog.Ins(s.Name)), s.Name)
		}
	}

	sb.WriteString("  RETURN NULL;\nEND;\n$$;\n\n")
	fmt.Fprintf(&sb, "DROP TRIGGER IF EXISTS %s_trigger ON %s;\n", view, view)
	fmt.Fprintf(&sb, "CREATE TRIGGER %s_trigger\n  INSTEAD OF INSERT OR UPDATE OR DELETE ON %s\n  FOR EACH ROW EXECUTE PROCEDURE %s_update_strategy();\n",
		view, view, view)
	return sb.String(), nil
}

// CompileIncrementalTrigger renders the trigger program for an
// incrementalized strategy (the ∂put of Section 5): identical scaffolding
// to CompileTrigger, but the delta queries read the view-delta temp tables
// __ins_v / __del_v instead of the full view, which is what makes the
// trigger's cost proportional to the update in the paper's §6.2
// experiment. Pass the program produced by core.Incrementalize.
func (c *Compiler) CompileIncrementalTrigger(dput *datalog.Program) (string, error) {
	if dput.View == nil || dput.View.Name != c.prog.View.Name {
		return "", fmt.Errorf("sqlgen: ∂put program must target view %q", c.prog.View.Name)
	}
	inc := New(dput)
	view := c.prog.View.Name
	viewCols := c.columns(view, c.prog.View.Arity())
	var sb strings.Builder

	fmt.Fprintf(&sb, "CREATE OR REPLACE FUNCTION %s_update_strategy_inc() RETURNS TRIGGER\n", view)
	sb.WriteString("LANGUAGE plpgsql SECURITY DEFINER AS $$\nBEGIN\n")
	fmt.Fprintf(&sb, "  -- Deriving changes on the view %s\n", view)
	fmt.Fprintf(&sb, "  CREATE TEMP TABLE IF NOT EXISTS __ins_%s (LIKE %s) ON COMMIT DROP;\n", view, view)
	fmt.Fprintf(&sb, "  CREATE TEMP TABLE IF NOT EXISTS __del_%s (LIKE %s) ON COMMIT DROP;\n", view, view)
	sb.WriteString("  IF TG_OP = 'INSERT' OR TG_OP = 'UPDATE' THEN\n")
	fmt.Fprintf(&sb, "    DELETE FROM __del_%s WHERE ROW(%s) = NEW;\n", view, strings.Join(viewCols, ", "))
	fmt.Fprintf(&sb, "    INSERT INTO __ins_%s SELECT NEW.*;\n", view)
	sb.WriteString("  END IF;\n")
	sb.WriteString("  IF TG_OP = 'DELETE' OR TG_OP = 'UPDATE' THEN\n")
	fmt.Fprintf(&sb, "    DELETE FROM __ins_%s WHERE ROW(%s) = OLD;\n", view, strings.Join(viewCols, ", "))
	fmt.Fprintf(&sb, "    INSERT INTO __del_%s SELECT OLD.*;\n", view)
	sb.WriteString("  END IF;\n\n")

	// Constraints are checked against the insertion delta (the view atom
	// was substituted by +v when the strategy was incrementalized); the
	// original program's constraints are compiled here with the same
	// substitution the engine uses.
	if cons := c.prog.Constraints(); len(cons) > 0 {
		sb.WriteString("  -- Checking constraints against the inserted tuples\n")
		for _, r := range cons {
			nr := r.Clone()
			for i := range nr.Body {
				l := &nr.Body[i]
				if l.Atom != nil && !l.Neg && l.Atom.Pred == datalog.Pred(view) {
					l.Atom.Pred = datalog.Ins(view)
				}
			}
			probe, err := c.constraintSelect(nr)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  IF EXISTS (%s) THEN\n", probe)
			fmt.Fprintf(&sb, "    RAISE EXCEPTION 'Invalid view update: constraint %% violated', %s;\n",
				sqlStringLiteral(r.String()))
			sb.WriteString("  END IF;\n")
		}
		sb.WriteString("\n")
	}

	sb.WriteString("  -- Calculating and applying delta relations (∂put)\n")
	for _, s := range sortedSources(dput) {
		for _, d := range []datalog.PredSym{datalog.Del(s.Name), datalog.Ins(s.Name)} {
			rules := dput.RulesFor(d)
			if len(rules) == 0 {
				continue
			}
			q, err := inc.QuerySQL(inc.supportRules(d), d)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "  CREATE TEMP TABLE %s ON COMMIT DROP AS\n  %s;\n",
				relName(d), indent(q, "  "))
		}
		cols := c.columns(s.Name, s.Arity())
		if len(dput.RulesFor(datalog.Del(s.Name))) > 0 {
			fmt.Fprintf(&sb, "  DELETE FROM %s WHERE ROW(%s) IN (SELECT * FROM %s);\n",
				s.Name, strings.Join(cols, ", "), relName(datalog.Del(s.Name)))
		}
		if len(dput.RulesFor(datalog.Ins(s.Name))) > 0 {
			fmt.Fprintf(&sb, "  INSERT INTO %s SELECT * FROM %s EXCEPT SELECT * FROM %s;\n",
				s.Name, relName(datalog.Ins(s.Name)), s.Name)
		}
	}

	sb.WriteString("  RETURN NULL;\nEND;\n$$;\n\n")
	fmt.Fprintf(&sb, "DROP TRIGGER IF EXISTS %s_trigger ON %s;\n", view, view)
	fmt.Fprintf(&sb, "CREATE TRIGGER %s_trigger\n  INSTEAD OF INSERT OR UPDATE OR DELETE ON %s\n  FOR EACH ROW EXECUTE PROCEDURE %s_update_strategy_inc();\n",
		view, view, view)
	return sb.String(), nil
}

// supportRules returns the rules needed to evaluate goal: its own rules
// plus transitively referenced auxiliary rules.
func (c *Compiler) supportRules(goal datalog.PredSym) []*datalog.Rule {
	needed := map[datalog.PredSym]bool{goal: true}
	for changed := true; changed; {
		changed = false
		for _, r := range c.prog.Rules {
			if r.IsConstraint() || !needed[r.Head.Pred] {
				continue
			}
			for _, l := range r.Body {
				if l.Atom == nil {
					continue
				}
				p := l.Atom.Pred
				if len(c.prog.RulesFor(p)) > 0 && !needed[p] {
					needed[p] = true
					changed = true
				}
			}
		}
	}
	var out []*datalog.Rule
	for _, r := range c.prog.Rules {
		if !r.IsConstraint() && needed[r.Head.Pred] {
			out = append(out, r)
		}
	}
	return out
}

// Compile produces the complete SQL artifact: base DDL comments, the view
// definition and the trigger program.
func (c *Compiler) Compile(getRules []*datalog.Rule) (string, error) {
	var sb strings.Builder
	sb.WriteString("-- Generated by the BIRDS-Go compiler from a Datalog putback program.\n")
	sb.WriteString("-- Source schema:\n")
	for _, s := range c.prog.Sources {
		fmt.Fprintf(&sb, "--   %s\n", s)
	}
	fmt.Fprintf(&sb, "-- View: %s\n\n", c.prog.View)
	view, err := c.CompileView(getRules)
	if err != nil {
		return "", err
	}
	sb.WriteString(view)
	sb.WriteString("\n")
	trig, err := c.CompileTrigger()
	if err != nil {
		return "", err
	}
	sb.WriteString(trig)
	return sb.String(), nil
}

func sortedSources(p *datalog.Program) []*datalog.RelDecl {
	out := append([]*datalog.RelDecl{}, p.Sources...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func sqlStringLiteral(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}
