package sqlgen

import (
	"strings"
	"testing"

	"birds/internal/datalog"
)

func mustProg(t *testing.T, src string) *datalog.Program {
	t.Helper()
	p, err := datalog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustRules(t *testing.T, srcs ...string) []*datalog.Rule {
	t.Helper()
	var out []*datalog.Rule
	for _, s := range srcs {
		r, err := datalog.ParseRule(s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	return out
}

const unionSrc = `
source r1(a:int).
source r2(a:int).
view v(a:int).
-r1(X) :- r1(X), not v(X).
-r2(X) :- r2(X), not v(X).
+r1(X) :- v(X), not r1(X), not r2(X).
`

func TestRuleSelectBasics(t *testing.T) {
	c := New(mustProg(t, unionSrc))
	r := mustRules(t, "-r1(X) :- r1(X), not v(X).")[0]
	sql, err := c.RuleSelect(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SELECT DISTINCT", "t1.a AS a", "FROM r1 AS t1", "NOT EXISTS", "FROM v AS n", "n.a = t1.a"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SELECT missing %q:\n%s", want, sql)
		}
	}
}

func TestRuleSelectConstantsAndComparisons(t *testing.T) {
	c := New(mustProg(t, `
source female(e:string, b:date).
view residents(e:string, b:date, g:string).
+female(E,B) :- residents(E,B,G), G = 'F', B > '1962-01-01', not female(E,B).
`))
	r := mustRules(t, "+female(E,B) :- residents(E,B,G), G = 'F', B > '1962-01-01', not female(E,B).")[0]
	sql, err := c.RuleSelect(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t1.g = 'F'", "t1.b > '1962-01-01'", "FROM residents AS t1"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SELECT missing %q:\n%s", want, sql)
		}
	}
	// The binding equality G = 'F' must not be duplicated as G = G.
	if strings.Contains(sql, "'F' = 'F'") {
		t.Errorf("redundant equality emitted:\n%s", sql)
	}
}

func TestRuleSelectJoinConditions(t *testing.T) {
	c := New(mustProg(t, `
source s1(a:int, b:int).
source s2(b:int, c:int).
view v(a:int, b:int, c:int).
j(X,Y,Z) :- s1(X,Y), s2(Y,Z).
`))
	r := mustRules(t, "j(X,Y,Z) :- s1(X,Y), s2(Y,Z).")[0]
	sql, err := c.RuleSelect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "t2.b = t1.b") {
		t.Errorf("join condition missing:\n%s", sql)
	}
}

func TestRuleSelectEqualityBoundHeadVar(t *testing.T) {
	c := New(mustProg(t, `
source r(a:int, b:string).
view v(a:int).
+r(X,Y) :- v(X), not r(X,'unknown'), Y = 'unknown'.
`))
	r := mustRules(t, "+r(X,Y) :- v(X), not r(X,'unknown'), Y = 'unknown'.")[0]
	sql, err := c.RuleSelect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "'unknown' AS b") {
		t.Errorf("equality-bound head var should render as literal:\n%s", sql)
	}
	if !strings.Contains(sql, "n.b = 'unknown'") {
		t.Errorf("negated atom constant missing:\n%s", sql)
	}
}

func TestRuleSelectAnonymousInNegation(t *testing.T) {
	c := New(mustProg(t, `
source ced(e:string, d:string).
view retired(e:string).
r1(E) :- ced(E,D), not ced(E,_).
`))
	r := mustRules(t, "r1(E) :- ced(E,D), not ced(E,_).")[0]
	sql, err := c.RuleSelect(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "NOT EXISTS (SELECT 1 FROM ced AS n WHERE n.e = t1.e)") {
		t.Errorf("anonymous position must be unconstrained:\n%s", sql)
	}
}

func TestRuleSelectUnboundVarError(t *testing.T) {
	c := New(mustProg(t, unionSrc))
	r := &datalog.Rule{
		Head: datalog.NewAtom(datalog.Ins("r1"), datalog.V("X")),
		Body: []datalog.Literal{datalog.Negated(datalog.NewAtom(datalog.Pred("v"), datalog.V("X")))},
	}
	if _, err := c.RuleSelect(r); err == nil {
		t.Fatal("unbound head variable should be an error")
	}
}

func TestQuerySQLWithAuxCTE(t *testing.T) {
	prog := mustProg(t, `
source r(a:int, b:int).
view v(a:int, b:int).
m(X,Y) :- r(X,Y), Y > 2.
-r(X,Y) :- m(X,Y), not v(X,Y).
`)
	c := New(prog)
	sql, err := c.QuerySQL(prog.NonConstraintRules(), datalog.Del("r"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WITH m AS (", "FROM m AS t1", "t1.b > 2"} {
		if !strings.Contains(sql, want) {
			t.Errorf("query missing %q:\n%s", want, sql)
		}
	}
}

func TestQuerySQLUnion(t *testing.T) {
	prog := mustProg(t, unionSrc)
	c := New(prog)
	get := mustRules(t, "v(X) :- r1(X).", "v(X) :- r2(X).")
	sql, err := c.QuerySQL(get, datalog.Pred("v"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(sql, "SELECT DISTINCT") != 2 || !strings.Contains(sql, "\nUNION\n") {
		t.Errorf("union query wrong:\n%s", sql)
	}
}

func TestCompileViewAndTrigger(t *testing.T) {
	prog := mustProg(t, `
source r(a:int).
view v(a:int).
_|_ :- v(X), X > 9.
+r(X) :- v(X), not r(X).
-r(X) :- r(X), not v(X).
`)
	c := New(prog)
	sqlText, err := c.Compile(mustRules(t, "v(X) :- r(X)."))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE OR REPLACE VIEW v AS",
		"CREATE OR REPLACE FUNCTION v_update_strategy() RETURNS TRIGGER",
		"INSTEAD OF INSERT OR UPDATE OR DELETE ON v",
		"IF EXISTS (SELECT 1 FROM v AS t1 WHERE t1.a > 9)",
		"RAISE EXCEPTION",
		"CREATE TEMP TABLE __del_r",
		"CREATE TEMP TABLE __ins_r",
		"DELETE FROM r WHERE ROW(a) IN (SELECT * FROM __del_r)",
		"INSERT INTO r SELECT * FROM __ins_r EXCEPT SELECT * FROM r",
		"CREATE TRIGGER v_trigger",
	} {
		if !strings.Contains(sqlText, want) {
			t.Errorf("compiled SQL missing %q", want)
		}
	}
	if len(sqlText) < 500 {
		t.Errorf("compiled SQL suspiciously small: %d bytes", len(sqlText))
	}
}

func TestCompileSkipsMissingDeltas(t *testing.T) {
	// r2 has only a deletion rule: no __ins_r2 table or INSERT statement.
	prog := mustProg(t, unionSrc)
	c := New(prog)
	sqlText, err := c.CompileTrigger()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sqlText, "__ins_r2") {
		t.Errorf("no insertion delta exists for r2:\n%s", sqlText)
	}
	if !strings.Contains(sqlText, "__del_r2") {
		t.Errorf("deletion delta for r2 missing:\n%s", sqlText)
	}
}

func TestCompileDeterministic(t *testing.T) {
	prog := mustProg(t, unionSrc)
	get := mustRules(t, "v(X) :- r1(X).", "v(X) :- r2(X).")
	a, err := New(prog).Compile(get)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(prog).Compile(get)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("compilation is not deterministic")
	}
}

func TestCompileIncrementalTrigger(t *testing.T) {
	// The ∂put of Example 5.2, after incrementalization: delta queries must
	// read the __ins_v/__del_v temp tables rather than the view.
	orig := mustProg(t, `
source r(a:int, b:int).
view v(a:int, b:int).
_|_ :- v(X,Y), not Y > 2.
+r(X,Y) :- v(X,Y), not r(X,Y).
m(X,Y) :- r(X,Y), Y > 2.
-r(X,Y) :- m(X,Y), not v(X,Y).
`)
	dput := mustProg(t, `
source r(a:int, b:int).
view v(a:int, b:int).
+r(X,Y) :- +v(X,Y), not r(X,Y).
-r(X,Y) :- r(X,Y), Y > 2, -v(X,Y).
`)
	c := New(orig)
	sqlText, err := c.CompileIncrementalTrigger(dput)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"v_update_strategy_inc",
		"FROM __ins_v AS t1",
		"__del_v AS t2",
		"IF EXISTS (SELECT 1 FROM __ins_v AS t1 WHERE NOT (t1.b > 2))",
		"CREATE TEMP TABLE __ins_r",
		"CREATE TEMP TABLE __del_r",
	} {
		if !strings.Contains(sqlText, want) {
			t.Errorf("incremental trigger missing %q:\n%s", want, sqlText)
		}
	}
	// Unlike the original trigger, the delta queries never scan the view.
	if strings.Contains(sqlText, "FROM v AS") {
		t.Errorf("incremental trigger must not scan the full view:\n%s", sqlText)
	}
	// Mismatched program rejected.
	other := mustProg(t, "source r(a:int).\nview w(a:int).\n+r(X) :- +w(X), not r(X).")
	if _, err := c.CompileIncrementalTrigger(other); err == nil {
		t.Error("wrong view must be rejected")
	}
}
