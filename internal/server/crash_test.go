package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"birds/internal/engine"
	"birds/internal/value"
	"birds/internal/wal"
)

// Crash-during-serve harness: a child process (this test binary re-exec'd)
// runs a durable server under live concurrent HTTP load until the parent
// SIGKILLs it — no drain, no checkpoint, the WAL ends wherever the kernel
// left it. The parent then restarts the server on the same directory
// (recovery boot) and checks the serving durability contract over HTTP:
//
//   - every ACKNOWLEDGED write survives (a 200 means the flush record was
//     fsynced — SyncOnFlush before the ack),
//   - nothing beyond the ATTEMPTED writes appears (acked ⊆ recovered ⊆
//     attempted; an unacknowledged in-flight transaction is indeterminate
//     and may land either way),
//   - views agree exactly with the recovered base tables,
//   - the recovered server keeps serving: more acknowledged writes land
//     and read back.
//
// Tunables: BIRDS_SERVE_CRASH_TRIALS (default 1), BIRDS_SERVE_CRASH_SEED
// (kill-timing seed, default 1).

const crashAddrFile = "serve-addr.txt"

// crashChildServe is the child mode: build (or recover) the durable
// fixture, bind an ephemeral port, publish the address, serve until
// killed.
func crashChildServe(t *testing.T, dir string) {
	var db *engine.DB
	if engine.HasDurableState(dir) {
		rec, _, err := engine.Recover(dir)
		if err != nil {
			t.Fatalf("child: recover: %v", err)
		}
		db = rec
	} else {
		db = serveFixture(t)
		if err := db.EnableDurability(engine.DurabilityOptions{Dir: dir, Sync: wal.SyncOnFlush}); err != nil {
			t.Fatalf("child: enable durability: %v", err)
		}
	}
	srv := New(db, Config{BatchSize: 8, FlushInterval: 500 * time.Microsecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("child: listen: %v", err)
	}
	// Publish the address atomically: write-then-rename, so the parent
	// never reads a torn file.
	tmp := filepath.Join(dir, crashAddrFile+".tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, crashAddrFile)); err != nil {
		t.Fatal(err)
	}
	if err := http.Serve(ln, srv.Handler()); err != nil {
		t.Fatalf("child: serve: %v", err)
	}
}

// startCrashChild launches the re-exec'd server child on dir and waits for
// it to publish its address.
func startCrashChild(t *testing.T, exe, dir string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	os.Remove(filepath.Join(dir, crashAddrFile))
	var out bytes.Buffer
	cmd := exec.Command(exe, "-test.run", "^TestServeCrashRestartDurability$")
	cmd.Env = append(os.Environ(), "BIRDS_SERVE_CRASH_DIR="+dir)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(filepath.Join(dir, crashAddrFile)); err == nil && len(b) > 0 {
			return cmd, string(b), &out
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never published an address; output:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// crashWriter is one load generator: write i inserts the writer's row
// base+i and deletes every older row in the writer's private range, so
// after any committed prefix the range holds EXACTLY the one row of the
// last committed write — the invariant the recovery oracle checks.
type crashWriter struct {
	w         int
	acked     atomic.Int64 // last acknowledged write index, -1 if none
	attempted atomic.Int64 // last write index sent, -1 if none
}

func (cw *crashWriter) txnBody(i int) map[string]any {
	base := writerBase(cw.w)
	id := base + i
	stmts := []stmtJSON{{
		Op: "insert", Target: "items",
		Row: []wireValue{{value.Int(int64(id))}, {value.Str(fmt.Sprintf("c%d-%d", cw.w, i))}, {value.Int(1500)}},
	}, {
		Op: "delete", Target: "items",
		Where: []condJSON{
			{Col: "iid", Op: ">=", Val: wireValue{value.Int(int64(base))}},
			{Col: "iid", Op: "<", Val: wireValue{value.Int(int64(id))}},
		},
	}}
	return map[string]any{"stmts": stmts}
}

// run writes until the server dies (or stop closes), recording acked and
// attempted indexes.
func (cw *crashWriter) run(client *http.Client, base string, from int, stop <-chan struct{}, ackedTotal *atomic.Int64) {
	for i := from; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		cw.attempted.Store(int64(i))
		buf, err := json.Marshal(cw.txnBody(i))
		if err != nil {
			return
		}
		resp, err := client.Post(base+"/exec", "application/json", bytes.NewReader(buf))
		if err != nil {
			return // the kill landed
		}
		ok := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if !ok {
			return
		}
		cw.acked.Store(int64(i))
		ackedTotal.Add(1)
	}
}

func TestServeCrashRestartDurability(t *testing.T) {
	if dir := os.Getenv("BIRDS_SERVE_CRASH_DIR"); dir != "" {
		crashChildServe(t, dir)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	trials := serveEnvInt("BIRDS_SERVE_CRASH_TRIALS", 1)
	if testing.Short() {
		trials = 1
	}
	rng := rand.New(rand.NewSource(int64(serveEnvInt("BIRDS_SERVE_CRASH_SEED", 1))))
	const writers = 4

	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		cmd, addr, childOut := startCrashChild(t, exe, dir)
		base := "http://" + addr
		client := &http.Client{Timeout: 10 * time.Second}

		// Live load until the parent pulls the plug.
		cws := make([]*crashWriter, writers)
		var ackedTotal atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for w := 0; w < writers; w++ {
			cws[w] = &crashWriter{w: w}
			cws[w].acked.Store(-1)
			cws[w].attempted.Store(-1)
			wg.Add(1)
			go func(cw *crashWriter) {
				defer wg.Done()
				cw.run(client, base, 0, stop, &ackedTotal)
			}(cws[w])
		}
		deadline := time.Now().Add(30 * time.Second)
		for ackedTotal.Load() < 40 {
			if time.Now().After(deadline) {
				close(stop)
				cmd.Process.Kill()
				cmd.Wait()
				t.Fatalf("trial %d: load never reached 40 acked writes; child output:\n%s", trial, childOut.String())
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(time.Duration(rng.Intn(30)) * time.Millisecond)
		cmd.Process.Kill() // SIGKILL: no drain, no checkpoint
		cmd.Wait()
		close(stop)
		wg.Wait()

		// Restart on the same directory: the recovery boot.
		cmd2, addr2, childOut2 := startCrashChild(t, exe, dir)
		base2 := "http://" + addr2
		label := fmt.Sprintf("trial %d (acked %d writes)", trial, ackedTotal.Load())

		rels := fetchRels(t, client, base2, "items", "luxury")
		for w := 0; w < writers; w++ {
			checkRecoveredWriter(t, label, cws[w], rels["items"])
		}
		// Every inserted price clears the luxury bar, so the view must
		// mirror the base table exactly after recovery.
		if !rels["luxury"].Equal(rels["items"]) {
			t.Errorf("%s: recovered luxury != recovered items\nluxury: %v\nitems: %v",
				label, rels["luxury"].Sorted(), rels["items"].Sorted())
		}

		// The recovered server keeps serving: more acknowledged writes.
		for w := 0; w < writers; w++ {
			next := int(cws[w].attempted.Load()) + 2
			buf, err := json.Marshal(cws[w].txnBody(next))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := client.Post(base2+"/exec", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Fatalf("%s: continuation write on recovered server: %v", label, err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: continuation write: HTTP %d", label, resp.StatusCode)
			}
			resp.Body.Close()
			cws[w].acked.Store(int64(next))
			cws[w].attempted.Store(int64(next))
		}
		rels = fetchRels(t, client, base2, "items", "luxury")
		for w := 0; w < writers; w++ {
			checkRecoveredWriter(t, label+" continuation", cws[w], rels["items"])
		}

		cmd2.Process.Kill()
		cmd2.Wait()
		if t.Failed() {
			t.Logf("child 1 output:\n%s\nchild 2 output:\n%s", childOut.String(), childOut2.String())
			t.FailNow()
		}
	}
}

// checkRecoveredWriter asserts the per-writer recovery oracle: the
// writer's private range holds exactly one row, at an index between the
// last acknowledged write (must have survived) and the last attempted one
// (nothing beyond it may exist).
func checkRecoveredWriter(t *testing.T, label string, cw *crashWriter, items *value.Relation) {
	t.Helper()
	base := writerBase(cw.w)
	acked, attempted := cw.acked.Load(), cw.attempted.Load()
	var got []int64
	for _, row := range items.Tuples() {
		id := row[0].AsInt()
		if id >= int64(base) && id < int64(base+1_000_000) {
			got = append(got, id-int64(base))
		}
	}
	switch {
	case len(got) > 1:
		t.Errorf("%s: writer %d: %d rows survived in its range (%v), want exactly one", label, cw.w, len(got), got)
	case len(got) == 0:
		if acked >= 0 {
			t.Errorf("%s: writer %d: acknowledged write %d lost (no row survived)", label, cw.w, acked)
		}
	default:
		if got[0] < acked {
			t.Errorf("%s: writer %d: surviving write %d predates acknowledged write %d (lost an ack)",
				label, cw.w, got[0], acked)
		}
		if got[0] > attempted {
			t.Errorf("%s: writer %d: surviving write %d was never attempted (last attempt %d)",
				label, cw.w, got[0], attempted)
		}
	}
}
