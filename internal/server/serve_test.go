package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"birds/internal/datalog"
	"birds/internal/engine"
	"birds/internal/value"
)

// Concurrent differential harness for the server: N concurrent HTTP
// clients drive DML (structured, SQL, and view-targeted) through /exec
// while readers poll multi-relation snapshots. The oracle is twofold:
//
//  1. Serializability — after the storm, every base table and view must be
//     bit-identical to a serial in-process replay of the acknowledged
//     transactions in seq order (the admission sequence the server returns
//     with each 200).
//  2. Atomic visibility — every mid-storm snapshot must satisfy
//     luxury = σ_{price>1000}(items) within one response: flushes apply
//     whole batches under the engine write lock, so no reader may ever
//     observe a base table without its dependent view (a torn batch).
//
// Tunables: BIRDS_SERVE_SEED (default 1), BIRDS_SERVE_TRIALS (default 1).

const (
	luxuryProgram = `
source items(iid:int, iname:string, price:int).
view luxury(iid:int, iname:string, price:int).
-items(I,N,P) :- items(I,N,P), P > 1000, not luxury(I,N,P).
`
	luxuryGet    = "luxury(I,N,P) :- items(I,N,P), P > 1000."
	ownedProgram = `
source items(iid:int, iname:string, price:int).
source owners(oid:int, iid:int).
view owned(oid:int, iid:int, price:int).
-owners(O,I) :- owners(O,I), not ownedkeep(O).
ownedkeep(O) :- owned(O,_,_).
`
	ownedGet = "owned(O,I,P) :- owners(O,I), items(I,_,P)."
)

var serveRels = []string{"items", "owners", "luxury", "owned"}

// serveFixture builds the test database: items/owners base tables with a
// selection view (luxury) and a join view (owned), registered unvalidated
// — the harness tests the server, not Algorithm 1.
func serveFixture(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	for _, src := range []string{
		"source items(iid:int, iname:string, price:int).",
		"source owners(oid:int, iid:int).",
	} {
		prog, err := datalog.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.CreateTable(prog.Sources[0]); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []struct {
		prog, get   string
		incremental bool
	}{
		{luxuryProgram, luxuryGet, true},
		{ownedProgram, ownedGet, false}, // outside the linear-view fragment
	} {
		get, err := datalog.ParseRule(v.get)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateView(v.prog, engine.ViewOptions{
			SkipValidation: true, ExpectedGet: []*datalog.Rule{get}, Incremental: v.incremental,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(serveFixture(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

func serveEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

// --- wire client ------------------------------------------------------------

func postJSON(t *testing.T, client *http.Client, url, session string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if session != "" {
		req.Header.Set("X-Birds-Session", session)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// fetchRels snapshots the named relations in one atomic /query.
func fetchRels(t *testing.T, client *http.Client, base string, names ...string) map[string]*value.Relation {
	t.Helper()
	code, data := postJSON(t, client, base+"/query", "", map[string]any{"rels": names})
	if code != http.StatusOK {
		t.Fatalf("query %v: HTTP %d: %s", names, code, data)
	}
	var resp struct {
		Relations []relationJSON `json:"relations"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]*value.Relation, len(resp.Relations))
	for _, r := range resp.Relations {
		out[r.Name] = decodeRelation(r)
	}
	return out
}

// --- workload ---------------------------------------------------------------

// wireTxn is one write transaction in both its representations: the wire
// body a client sends and the statements the serial reference replays.
// The statements are derived FROM the wire form (decodeStatement /
// ParseSQL), so the replay exercises the same decoding path the server
// ran.
type wireTxn struct {
	body  map[string]any
	stmts []engine.Statement
}

// ackedTxn is one acknowledged transaction with the serialization position
// the server returned.
type ackedTxn struct {
	seq   uint64
	stmts []engine.Statement
}

func writerBase(w int) int { return 1 + w*1_000_000 }

// makeTxn builds writer w's i-th transaction: the DML-maintenance
// coalescing stream (insert a hot row, delete the previous one), spiced
// with owners transactions (join-view churn), updates, SQL-text
// transactions and occasional view-targeted deletes (the direct path).
// Each transaction targets one relation — the engine's transaction rule.
func makeTxn(t *testing.T, w, i, seed int) wireTxn {
	t.Helper()
	id := writerBase(w) + i
	// Deterministic price mix: some rows below the luxury bar, some above.
	price := 500
	if (id+seed)%3 != 0 {
		price = 1500
	}

	if i%16 == 9 {
		// View-targeted: delete yesterday's row through luxury. If that row
		// is below the bar the delete is a no-op — same on the replay.
		body := map[string]any{"stmts": []stmtJSON{{
			Op: "delete", Target: "luxury",
			Where: []condJSON{{Col: "iid", Op: "=", Val: wireValue{value.Int(int64(id - 1))}}},
		}}}
		return decodeWireTxn(t, body)
	}

	if i%5 == 2 && i > 0 {
		sql := fmt.Sprintf("INSERT INTO items VALUES (%d, 'w%d-%d', %d); DELETE FROM items WHERE iid = %d;",
			id, w, i, price, id-1)
		body := map[string]any{"sql": sql}
		stmts, err := engine.ParseSQL(sql)
		if err != nil {
			t.Fatal(err)
		}
		return wireTxn{body: body, stmts: stmts}
	}

	if i%7 == 3 {
		// Owners churn: point the writer's owner row at the current id
		// (join-view maintenance on both sides of the join).
		stmts := []stmtJSON{{
			Op: "insert", Target: "owners",
			Row: []wireValue{{value.Int(int64(writerBase(w)))}, {value.Int(int64(id))}},
		}}
		if i >= 7 {
			stmts = append(stmts, stmtJSON{
				Op: "delete", Target: "owners",
				Where: []condJSON{
					{Col: "oid", Op: "=", Val: wireValue{value.Int(int64(writerBase(w)))}},
					{Col: "iid", Op: "<", Val: wireValue{value.Int(int64(id))}},
				},
			})
		}
		return decodeWireTxn(t, map[string]any{"stmts": stmts})
	}

	stmts := []stmtJSON{{
		Op: "insert", Target: "items",
		Row: []wireValue{{value.Int(int64(id))}, {value.Str(fmt.Sprintf("w%d-%d", w, i))}, {value.Int(int64(price))}},
	}}
	if i > 0 {
		stmts = append(stmts, stmtJSON{
			Op: "delete", Target: "items",
			Where: []condJSON{{Col: "iid", Op: "=", Val: wireValue{value.Int(int64(id - 1))}}},
		})
	}
	if i%8 == 4 {
		stmts = append(stmts, stmtJSON{
			Op: "update", Target: "items",
			Set:   []setJSON{{Col: "price", Val: wireValue{value.Int(2500)}}},
			Where: []condJSON{{Col: "iid", Op: "=", Val: wireValue{value.Int(int64(id))}}},
		})
	}
	return decodeWireTxn(t, map[string]any{"stmts": stmts})
}

func decodeWireTxn(t *testing.T, body map[string]any) wireTxn {
	t.Helper()
	var stmts []engine.Statement
	for _, sj := range body["stmts"].([]stmtJSON) {
		st, err := decodeStatement(sj)
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	return wireTxn{body: body, stmts: stmts}
}

// --- the differential test --------------------------------------------------

func TestServeConcurrentDifferential(t *testing.T) {
	seed := serveEnvInt("BIRDS_SERVE_SEED", 1)
	trials := serveEnvInt("BIRDS_SERVE_TRIALS", 1)
	writes := serveEnvInt("BIRDS_SERVE_WRITES", 32)
	if testing.Short() {
		writes = 12
	}
	for _, clients := range []int{1, 4, 16} {
		for trial := 0; trial < trials; trial++ {
			t.Run(fmt.Sprintf("clients=%d/trial=%d", clients, trial), func(t *testing.T) {
				runDifferentialStorm(t, clients, writes, seed+trial)
			})
		}
	}
}

func runDifferentialStorm(t *testing.T, clients, writes, seed int) {
	_, ts := startServer(t, Config{BatchSize: 16, FlushInterval: time.Millisecond})
	httpc := ts.Client()

	acked := make([][]ackedTxn, clients)
	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	readerDone := make(chan struct{})

	// The atomic-visibility reader: every multi-relation snapshot must be
	// internally consistent — the selection view exactly σ(items).
	readerErr := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stopReaders:
				return
			default:
			}
			rels := fetchRels(t, httpc, ts.URL, "items", "luxury")
			if err := checkLuxuryCut(rels["items"], rels["luxury"]); err != nil {
				select {
				case readerErr <- err:
				default:
				}
				return
			}
		}
	}()

	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := fmt.Sprintf("writer-%d", w)
			acked[w] = make([]ackedTxn, 0, writes)
			for i := 0; i < writes; i++ {
				txn := makeTxn(t, w, i, seed)
				body := txn.body
				body["session"] = sess
				code, data := postJSON(t, httpc, ts.URL+"/exec", sess, body)
				if code != http.StatusOK {
					t.Errorf("writer %d txn %d: HTTP %d: %s", w, i, code, data)
					return
				}
				var resp struct {
					Seq uint64 `json:"seq"`
				}
				if err := json.Unmarshal(data, &resp); err != nil {
					t.Errorf("writer %d txn %d: %v", w, i, err)
					return
				}
				acked[w] = append(acked[w], ackedTxn{seq: resp.Seq, stmts: txn.stmts})
			}
		}(w)
	}
	wg.Wait()
	close(stopReaders)
	<-readerDone
	select {
	case err := <-readerErr:
		t.Fatalf("torn snapshot observed: %v", err)
	default:
	}
	if t.Failed() {
		t.FailNow() // a writer already reported its error
	}

	// Flush the tail and take the final server-side state.
	if code, data := postJSON(t, httpc, ts.URL+"/flush", "", map[string]any{}); code != http.StatusOK {
		t.Fatalf("flush: HTTP %d: %s", code, data)
	}
	got := fetchRels(t, httpc, ts.URL, serveRels...)

	// Serial replay: every acknowledged transaction, in seq order, on a
	// fresh in-process engine.
	var all []ackedTxn
	for _, a := range acked {
		all = append(all, a...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	for i := 1; i < len(all); i++ {
		if all[i].seq == all[i-1].seq {
			t.Fatalf("duplicate seq %d across acknowledged transactions", all[i].seq)
		}
	}
	ref := serveFixture(t)
	for _, a := range all {
		if err := ref.Exec(a.stmts...); err != nil {
			t.Fatalf("replay seq %d: %v", a.seq, err)
		}
	}
	want, err := ref.GetAll(serveRels...)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range serveRels {
		if !got[name].Equal(want[name]) {
			t.Errorf("%s: server has %d rows, serial replay has %d rows\nserver: %v\nreplay: %v",
				name, got[name].Len(), want[name].Len(), got[name].Sorted(), want[name].Sorted())
		}
	}
}

// checkLuxuryCut asserts one snapshot's internal consistency: the luxury
// view is exactly the price>1000 selection of the items relation fetched
// in the same atomic cut.
func checkLuxuryCut(items, luxury *value.Relation) error {
	if items == nil || luxury == nil {
		return fmt.Errorf("snapshot missing a relation")
	}
	want := value.NewRelation(3)
	for _, row := range items.Tuples() {
		if row[2].AsInt() > 1000 {
			want.Add(row)
		}
	}
	if !luxury.Equal(want) {
		return fmt.Errorf("luxury (%d rows) != σ_price>1000(items) (%d rows) in one cut",
			luxury.Len(), want.Len())
	}
	return nil
}
