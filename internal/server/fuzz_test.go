package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// FuzzHandleExec fuzzes the /exec JSON decoder end to end through the
// handler: arbitrary bodies must produce either a 200 (a decoded, applied
// transaction) or a clean 4xx — never a panic, and never a partial write
// (a rejected request leaves every relation bit-identical). The handler is
// invoked directly (no real listener), so a panic propagates to the fuzz
// driver instead of being swallowed by net/http's connection recovery.

// fuzzServer is the shared fuzz target: one fixture database behind a
// fully synchronous server (batch size 1, no timer), so every accepted
// transaction is flushed by the time the response is written and the
// before/after state comparison races with nothing.
var fuzzServer struct {
	once sync.Once
	mu   sync.Mutex
	srv  *Server
}

func fuzzTarget(t *testing.T) *Server {
	fuzzServer.once.Do(func() {
		db := serveFixture(t)
		fuzzServer.srv = New(db, Config{BatchSize: 1, FlushInterval: -1, RequestTimeout: -1})
	})
	if fuzzServer.srv == nil {
		t.Skip("fuzz fixture failed to build in an earlier iteration")
	}
	return fuzzServer.srv
}

func FuzzHandleExec(f *testing.F) {
	// Seed corpus: the valid shapes, then one mutation of every decode
	// error class the handler distinguishes.
	seeds := []string{
		`{"stmts":[{"op":"insert","target":"items","row":[1,"a",1500]}]}`,
		`{"stmts":[{"op":"delete","target":"items","where":[{"col":"iid","op":"=","val":1}]}]}`,
		`{"stmts":[{"op":"update","target":"items","set":[{"col":"price","val":5}],"where":[{"col":"iid","op":"=","val":1}]}]}`,
		`{"sql":"INSERT INTO items VALUES (2, 'b', 900);"}`,
		`{"stmts":[{"op":"delete","target":"luxury","where":[{"col":"iid","op":"=","val":1}]}]}`,
		`{"stmts":[{"op":"insert","target":"items","row":[1.5,"a",true]}]}`,
		`{"stmts":[{"op":"insert","target":"items","row":[null,null,null]}]}`,
		`{}`,
		`{"sql":"DROP TABLE items;"}`,
		`{"sql":"INSERT INTO","stmts":[{"op":"insert"}]}`,
		`{"stmts":[{"op":"insert","target":"nosuch","row":[1]}]}`,
		`{"stmts":[{"op":"upsert","target":"items","row":[1]}]}`,
		`{"stmts":[{"op":"insert","target":"items","row":[{"nested":1}]}]}`,
		`{"stmts":[{"op":"insert","target":"items","row":[99999999999999999999999]}]}`,
		`{"stmts":[{"op":"delete","target":"items","where":[{"col":"iid","op":"~","val":1}]}]}`,
		`{"stmts":[{"op":"insert","target":"items","row":[1,"a",1500]}]} trailing`,
		`not json at all`,
		`[1,2,3]`,
		`{"stmts":`,
		"{\"sql\":\"INSERT INTO items VALUES (3, '\x00', 1);\"}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, body []byte) {
		srv := fuzzTarget(t)
		fuzzServer.mu.Lock()
		defer fuzzServer.mu.Unlock()

		before, err := srv.db.GetAll(serveRels...)
		if err != nil {
			t.Fatal(err)
		}

		req := httptest.NewRequest("POST", "/exec", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // a panic here fails the fuzz run

		resp := rec.Result()
		if resp.StatusCode != http.StatusOK && (resp.StatusCode < 400 || resp.StatusCode >= 500) {
			t.Fatalf("body %q: HTTP %d, want 200 or 4xx", body, resp.StatusCode)
		}
		raw := rec.Body.Bytes()
		var payload struct {
			OK    bool   `json:"ok"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(raw, &payload); err != nil {
			t.Fatalf("body %q: response is not JSON: %q", body, raw)
		}
		if payload.OK != (resp.StatusCode == http.StatusOK) {
			t.Fatalf("body %q: HTTP %d with ok=%v", body, resp.StatusCode, payload.OK)
		}
		if !payload.OK && payload.Error == "" {
			t.Fatalf("body %q: rejection without an error message", body)
		}

		if resp.StatusCode != http.StatusOK {
			// No partial writes: a rejected transaction changed nothing.
			after, err := srv.db.GetAll(serveRels...)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range serveRels {
				if !after[name].Equal(before[name]) {
					t.Fatalf("body %q: rejected with HTTP %d but %s changed: %v -> %v",
						body, resp.StatusCode, name, before[name].Sorted(), after[name].Sorted())
				}
			}
		}
	})
}

// TestHandleExecRejections pins the decode-error classes the fuzz seeds
// cover, with their expected statuses — a fast deterministic companion to
// the fuzz target.
func TestHandleExecRejections(t *testing.T) {
	_, ts := startServer(t, Config{BatchSize: 1, FlushInterval: -1})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"empty txn", `{}`, http.StatusBadRequest},
		{"both sql and stmts", `{"sql":"INSERT INTO items VALUES (1,'a',1);","stmts":[{"op":"insert","target":"items","row":[1,"a",1]}]}`, http.StatusBadRequest},
		{"malformed json", `{"stmts":`, http.StatusBadRequest},
		{"trailing garbage", `{"stmts":[{"op":"insert","target":"items","row":[1,"a",1]}]}x`, http.StatusBadRequest},
		{"unknown relation", `{"stmts":[{"op":"insert","target":"nosuch","row":[1]}]}`, http.StatusBadRequest},
		{"unknown op", `{"stmts":[{"op":"upsert","target":"items","row":[1]}]}`, http.StatusBadRequest},
		{"bad sql", `{"sql":"DROP TABLE items;"}`, http.StatusBadRequest},
		{"arity mismatch", `{"stmts":[{"op":"insert","target":"items","row":[1]}]}`, http.StatusBadRequest},
		{"type mismatch", `{"stmts":[{"op":"insert","target":"items","row":["a","b","c"]}]}`, http.StatusBadRequest},
		{"non-scalar value", `{"stmts":[{"op":"insert","target":"items","row":[[1],"a",1]}]}`, http.StatusBadRequest},
		{"int overflow", `{"stmts":[{"op":"insert","target":"items","row":[99999999999999999999,"a",1]}]}`, http.StatusBadRequest},
		{"bad operator", `{"stmts":[{"op":"delete","target":"items","where":[{"col":"iid","op":"~","val":1}]}]}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/exec", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
}
